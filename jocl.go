// Package jocl is the public API of this reproduction of "Joint Open
// Knowledge Base Canonicalization and Linking" (Liu et al., SIGMOD
// 2021). It canonicalizes the noun and relation phrases of Open IE
// triples (clustering paraphrases into groups) and links them to a
// curated knowledge base — jointly, with each task reinforcing the
// other through a factor graph with loopy belief propagation.
//
// Minimal usage:
//
//	kb, _ := jocl.NewKB(entities, relations, facts)
//	p, _ := jocl.New(triples, kb, jocl.WithCorpus(sentences))
//	result, _ := p.Run(nil)
//	// result.NPGroups, result.EntityLinks, ...
//
// The heavy lifting lives in internal packages (factor graph engine,
// signals, baselines, benchmark suite); this package defines the
// stable, dependency-free surface a downstream user consumes.
package jocl

import (
	"fmt"
	"io"
	"time"

	"repro/internal/ckb"
	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/okb"
	"repro/internal/ppdb"
	"repro/internal/query"
	"repro/internal/signals"
)

// Triple is one Open IE extraction: (noun phrase, relation phrase,
// noun phrase).
type Triple struct {
	Subject   string
	Predicate string
	Object    string
}

// Entity is a curated-KB entity.
type Entity struct {
	ID      string
	Name    string
	Aliases []string
	Types   []string
}

// Relation is a curated-KB relation.
type Relation struct {
	ID       string
	Name     string
	Category string
	Aliases  []string
}

// Fact is a curated-KB relational fact between entity IDs.
type Fact struct {
	Subject  string
	Relation string
	Object   string
}

// KB is a curated knowledge base the pipeline links against.
type KB struct {
	store *ckb.Store
}

// NewKB builds a curated KB. Duplicate or dangling identifiers are
// rejected.
func NewKB(entities []Entity, relations []Relation, facts []Fact) (*KB, error) {
	es := make([]ckb.Entity, len(entities))
	for i, e := range entities {
		es[i] = ckb.Entity{ID: e.ID, Name: e.Name, Aliases: e.Aliases, Types: e.Types}
	}
	rs := make([]ckb.Relation, len(relations))
	for i, r := range relations {
		rs[i] = ckb.Relation{ID: r.ID, Name: r.Name, Category: r.Category, Aliases: r.Aliases}
	}
	fs := make([]ckb.Fact, len(facts))
	for i, f := range facts {
		fs[i] = ckb.Fact{Subj: f.Subject, Rel: f.Relation, Obj: f.Object}
	}
	store, err := ckb.NewStore(es, rs, fs)
	if err != nil {
		return nil, err
	}
	return &KB{store: store}, nil
}

// AddAnchor records anchor-link statistics (how often a surface form
// refers to an entity), the prior behind the popularity signal. Call
// before building a Pipeline.
func (kb *KB) AddAnchor(surface, entityID string, count int) {
	kb.store.AddAnchor(surface, entityID, count)
}

// Labels supplies optional gold annotations (e.g. a validation split)
// used to learn factor weights and anchor inference. All maps are
// keyed by surface form; an empty entity id means "not in the KB".
type Labels struct {
	EntityLinks   map[string]string // NP surface -> entity id
	RelationLinks map[string]string // RP surface -> relation id
	NPGroupLabels map[string]string // NP surface -> gold group id
	RPGroupLabels map[string]string // RP surface -> gold group id
}

// Result is the joint canonicalization + linking output.
type Result struct {
	// NPGroups / RPGroups partition the distinct noun / relation phrase
	// surface forms into canonicalization groups.
	NPGroups [][]string
	RPGroups [][]string
	// EntityLinks / RelationLinks map each surface form to its KB
	// target ("" = out of KB).
	EntityLinks   map[string]string
	RelationLinks map[string]string
	// Stats describes the factor graph and the inference run.
	Stats Stats
}

// Stats mirrors the core run statistics.
type Stats struct {
	NPPairVariables int
	RPPairVariables int
	LinkVariables   int
	Factors         int
	Sweeps          int
	TrainIterations int
	ConflictFixes   int
}

// Option configures a Pipeline.
type Option func(*options)

type options struct {
	corpus        [][]string
	paraphrases   [][]string
	embedDim      int
	workers       int
	refreshEvery  int
	queryOff      bool
	queryOpts     QueryIndexOptions
	telemetryOff  bool
	telemetryOpts TelemetryOptions
	tracingOff    bool
	traceOpts     TraceOptions
	ingressOn     bool
	ingressOpts   IngressOptions
	cfg           core.Config
}

// queryConfig translates the public query-index options into the
// internal configuration Sessions hand to the stream layer.
func (o *options) queryConfig() query.Config {
	return query.Config{
		Enable:            !o.queryOff,
		MaxLayers:         o.queryOpts.MaxLayers,
		MaxResults:        o.queryOpts.MaxResults,
		RetainGenerations: o.queryOpts.RetainGenerations,
	}
}

// WithCorpus supplies a tokenized text corpus used to train the word
// embeddings behind the distributional-similarity signal. Without it,
// the embedding feature is inert (all-zero similarity) and the
// pipeline relies on the remaining signals.
func WithCorpus(sentences [][]string) Option {
	return func(o *options) { o.corpus = sentences }
}

// WithParaphrases supplies paraphrase groups (a PPDB-style resource):
// phrases within one group are treated as equivalent by the paraphrase
// signal.
func WithParaphrases(groups [][]string) Option {
	return func(o *options) { o.paraphrases = groups }
}

// WithEmbeddingDim overrides the trained embedding dimensionality
// (default 32).
func WithEmbeddingDim(dim int) Option {
	return func(o *options) { o.embedDim = dim }
}

// WithWorkers bounds the per-component inference worker pool of a
// Session (default GOMAXPROCS). Ignored by batch Pipelines.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithRefreshEvery makes a Session rebuild its frozen signal statistics
// (IDF tables, AMIE rules, relation categories) every n ingested
// batches; 0 (the default) never refreshes after the first batch. The
// refreshing batch pays a full re-solve. Ignored by batch Pipelines.
func WithRefreshEvery(n int) Option {
	return func(o *options) { o.refreshEvery = n }
}

// QueryIndexOptions tunes a Session's read-path query index (on by
// default; see Session.QueryEntity and friends). Zero fields take the
// defaults noted per field.
type QueryIndexOptions struct {
	// MaxResults hard-caps the triples any single enumeration query
	// returns, whatever limit the caller asks for (default 1000).
	MaxResults int
	// MaxLayers bounds the index's copy-on-write overlay chain before
	// it is compacted into one base layer (default 4). Smaller values
	// trade more frequent amortized compaction for cheaper lookups.
	MaxLayers int
	// RetainGenerations bounds the ring of published index generations
	// kept live for as-of reads (default 4; minimum 1 — the current
	// generation is always retained). A Query* call with AsOf answers
	// from any retained generation exactly as it did at publish time;
	// generations older than the ring answer ok=false.
	RetainGenerations int
}

// WithQueryIndex tunes the incrementally-maintained query index
// Sessions keep by default. Ignored by batch Pipelines.
func WithQueryIndex(q QueryIndexOptions) Option {
	return func(o *options) {
		o.queryOff = false
		o.queryOpts = q
	}
}

// WithoutQueryIndex disables the query index: Query* methods then
// answer ok=false and ingests skip index maintenance. Ignored by batch
// Pipelines.
func WithoutQueryIndex() Option {
	return func(o *options) { o.queryOff = true }
}

// TelemetryOptions tunes a Session's telemetry (on by default; see
// Session.Telemetry). Zero fields take the defaults noted per field.
type TelemetryOptions struct {
	// TraceRing is the number of recent per-ingest stage traces
	// retained for inspection (default 64).
	TraceRing int
}

// WithTelemetry tunes the metrics registry and ingest tracing Sessions
// keep by default. Ignored by batch Pipelines.
func WithTelemetry(t TelemetryOptions) Option {
	return func(o *options) {
		o.telemetryOff = false
		o.telemetryOpts = t
	}
}

// WithoutTelemetry disables metrics and ingest tracing: ingests skip
// every observation and Session.Telemetry returns nil. It exists for
// overhead A/B measurement; the per-ingest cost of telemetry is a few
// atomic ops per stage. Ignored by batch Pipelines.
func WithoutTelemetry() Option {
	return func(o *options) { o.telemetryOff = true }
}

// TraceOptions tunes a Session's request-scoped tracing (on by default
// whenever telemetry is on; see Session.Tracer). Zero fields take the
// defaults noted per field.
type TraceOptions struct {
	// SlowThreshold is the tail-sampling latency bar: a request trace
	// is retained when the request took at least this long, or ended
	// abnormally (shed, cancelled, poisoned, error). 0 takes the
	// default (1s); negative retains every request trace.
	SlowThreshold time.Duration
	// Capacity bounds each retained-trace store — slow/abnormal
	// request traces and merged-group traces (default 128 each).
	Capacity int
}

// WithTracing tunes the request-scoped span tracing Sessions keep by
// default when telemetry is on: every IngestContext call gets a trace
// id (accepted from the caller's context or generated), its spans
// thread through the ingress queue and the session's stage breakdown,
// and slow or abnormal request traces are retained for inspection.
// Requires telemetry; WithoutTelemetry also disables tracing. Ignored
// by batch Pipelines.
func WithTracing(t TraceOptions) Option {
	return func(o *options) {
		o.tracingOff = false
		o.traceOpts = t
	}
}

// WithoutTracing disables request-scoped tracing while keeping the
// rest of telemetry: Session.Tracer returns nil and every span call
// degrades to a no-op. It exists for overhead A/B measurement (the
// stream bench's tracing_overhead_pct arm). Ignored by batch
// Pipelines.
func WithoutTracing() Option {
	return func(o *options) { o.tracingOff = true }
}

// IngressOptions tunes a Session's asynchronous ingest pipeline
// (WithIngress). Zero fields take the defaults noted per field.
type IngressOptions struct {
	// QueueDepth bounds the batches accepted but not yet prepared
	// (default 64). Submissions beyond it are shed with an
	// OverloadedError.
	QueueDepth int
	// CoalesceDepth caps how many queued batches one merged session
	// ingest may absorb (default 16; 1 disables merging but keeps the
	// prepare/commit pipelining).
	CoalesceDepth int
	// CoalesceWindow, when positive, lets the pipeline linger this
	// long for straggler batches before sealing a merged ingest that
	// is still below CoalesceDepth. Zero (the default) merges only
	// batches already queued — no added latency.
	CoalesceWindow time.Duration
	// ShedDepth is the queue's high-water mark: IngestContext sheds
	// once queue depth reaches it (default QueueDepth).
	ShedDepth int
	// StallAfter is the pipeline watchdog's liveness bar: with work
	// pending and no preparer/committer progress for this long, the
	// pipeline is declared stalled (jocl_watchdog_stalled) and a
	// flight-recorder snapshot is captured (see Session.LastStall).
	// 0 takes the default (60s); negative disables the watchdog.
	StallAfter time.Duration
}

// WithIngress puts a bounded asynchronous ingest queue in front of the
// session: IngestContext submissions queue, adjacent queued batches
// coalesce into one merged ingest (amortizing per-ingest overhead
// without changing the result — merging is equivalence-tested against
// serial ingest), the next batch's signal evaluation and graph build
// overlap the previous batch's belief propagation, and submissions
// beyond the high-water mark are shed with an OverloadedError instead
// of queueing without bound. Close drains the queue. Ignored by batch
// Pipelines.
func WithIngress(in IngressOptions) Option {
	return func(o *options) {
		o.ingressOn = true
		o.ingressOpts = in
	}
}

// SegmentOptions tunes hub-cut graph segmentation (WithSegmentation).
// Zero fields take the defaults noted per field.
type SegmentOptions struct {
	// HubDegreePercentile places the cut threshold on the graph's
	// degree distribution: variables whose factor degree exceeds the
	// degree at this percentile become cut candidates (default 0.99).
	HubDegreePercentile float64
	// MinHubDegree is the absolute degree floor a variable must exceed
	// to be cut (default 8); it keeps small graphs uncut.
	MinHubDegree int
	// MaxBlockVars size-caps the inference blocks: any block larger
	// than this after the threshold cuts is refined by cutting its
	// locally highest-degree variables (negative disables the
	// refinement). Left 0, the cap is auto-tuned from
	// TargetBlocksPerWorker.
	MaxBlockVars int
	// TargetBlocksPerWorker auto-tunes MaxBlockVars when that knob is
	// unset: the cap is chosen so the partition yields roughly this
	// many blocks per inference worker (default 4), keeping the worker
	// pool saturated without shattering the graph. 0 keeps the default
	// ratio; set MaxBlockVars explicitly to bypass auto-tuning.
	TargetBlocksPerWorker int
	// MaxOuterRounds bounds the block-run / boundary-refresh iterations
	// per ingest (default 4).
	MaxOuterRounds int
	// BoundaryTolerance is the convergence threshold on cut-variable
	// belief change between outer rounds (default 0.005). It bounds the
	// approximation the cut introduces.
	BoundaryTolerance float64
	// NoRepair re-derives the partition from scratch on every rebuild
	// instead of repairing the previous build's cut set. Repair is the
	// default — it preserves block identity so warm state survives
	// rebuilds; disabling it exists for A/B comparison.
	NoRepair bool
}

// WithSegmentation makes a Session partition its factor graph with hub
// cuts: the few highest-degree variables — popular phrases whose
// fact-inclusion factors fuse realistic graphs into one giant
// component — are cut out of the inference blocks, their outgoing
// messages frozen during block runs and refreshed between outer
// rounds. Ingests then re-run belief propagation only on the small
// blocks a batch touched, at an approximation cost bounded by
// BoundaryTolerance. Ignored by batch Pipelines.
func WithSegmentation(seg SegmentOptions) Option {
	return func(o *options) {
		o.cfg.Segment = core.SegmentConfig{
			Enable:                true,
			HubDegreePercentile:   seg.HubDegreePercentile,
			MinHubDegree:          seg.MinHubDegree,
			MaxBlockVars:          seg.MaxBlockVars,
			TargetBlocksPerWorker: seg.TargetBlocksPerWorker,
			MaxOuterRounds:        seg.MaxOuterRounds,
			BoundaryTolerance:     seg.BoundaryTolerance,
			NoRepair:              seg.NoRepair,
		}
		if seg.TargetBlocksPerWorker == 0 {
			o.cfg.Segment.TargetBlocksPerWorker = 4
		}
	}
}

// WithMaxCandidates bounds the KB candidates per linking variable.
func WithMaxCandidates(k int) Option {
	return func(o *options) { o.cfg.MaxCandidates = k }
}

// WithoutLinking runs canonicalization only (the paper's JOCLcano).
func WithoutLinking() Option {
	return func(o *options) {
		o.cfg.EnableLink = false
		o.cfg.EnableConsistency = false
		o.cfg.EnableFactIncl = false
	}
}

// WithoutCanonicalization runs linking only (the paper's JOCLlink).
func WithoutCanonicalization() Option {
	return func(o *options) {
		o.cfg.EnableCanon = false
		o.cfg.EnableConsistency = false
		o.cfg.EnableTransitive = false
	}
}

// WithoutInteraction keeps both tasks but removes the consistency
// factors that couple them (ablation of the paper's Section 3.3).
func WithoutInteraction() Option {
	return func(o *options) { o.cfg.EnableConsistency = false }
}

// WithFeatureProfile selects the feature ablation of the paper's
// Table 5 — "single", "double", or "all" (default) — or "extended",
// which adds the two extension signals (attribute overlap, type
// compatibility) beyond the paper.
func WithFeatureProfile(profile string) Option {
	return func(o *options) {
		switch profile {
		case "single":
			o.cfg.Features = core.SingleFeatures()
		case "double":
			o.cfg.Features = core.DoubleFeatures()
		case "extended":
			o.cfg.Features = core.ExtendedFeatures()
		default:
			o.cfg.Features = core.AllFeatures()
		}
	}
}

// WithWeights seeds factor weights by name (e.g. learned on another
// data set's validation split).
func WithWeights(weights map[string]float64) Option {
	return func(o *options) { o.cfg.InitialWeights = weights }
}

// Pipeline is a constructed JOCL system over one triple set + KB.
type Pipeline struct {
	sys *core.System
	res *signals.Resources
}

// New builds a Pipeline over the triples and KB.
func New(triples []Triple, kb *KB, opts ...Option) (*Pipeline, error) {
	if kb == nil {
		return nil, fmt.Errorf("jocl: nil KB")
	}
	o := applyOptions(opts)

	ts := make([]okb.Triple, len(triples))
	for i, t := range triples {
		ts[i] = okb.Triple{Subj: t.Subject, Pred: t.Predicate, Obj: t.Object}
	}
	store := okb.NewStore(ts)

	emb := embedding.Train(o.corpus, embedding.Config{Dim: o.embedDim, Seed: 1})
	pb := ppdb.NewBuilder()
	for _, g := range o.paraphrases {
		pb.AddGroup(g...)
	}
	res := signals.New(store, kb.store, emb, pb.Build())

	sys, err := core.NewSystem(res, o.cfg)
	if err != nil {
		return nil, err
	}
	return &Pipeline{sys: sys, res: res}, nil
}

// Run learns weights from the labels (if any) and performs joint
// inference. Pass nil to run unsupervised with default weights.
func (p *Pipeline) Run(labels *Labels) (*Result, error) {
	var coreLabels *core.Labels
	if labels != nil {
		coreLabels = &core.Labels{
			NPLink:    labels.EntityLinks,
			RPLink:    labels.RelationLinks,
			NPCluster: labels.NPGroupLabels,
			RPCluster: labels.RPGroupLabels,
		}
	}
	return resultFromCore(p.sys.Run(coreLabels)), nil
}

func resultFromCore(r *core.Result) *Result {
	return &Result{
		NPGroups:      r.NPGroups,
		RPGroups:      r.RPGroups,
		EntityLinks:   r.NPLinks,
		RelationLinks: r.RPLinks,
		Stats: Stats{
			NPPairVariables: r.Stats.NPPairVars,
			RPPairVariables: r.Stats.RPPairVars,
			LinkVariables:   r.Stats.NPLinkVars + r.Stats.RPLinkVars,
			Factors:         r.Stats.Factors,
			Sweeps:          r.Stats.Sweeps,
			TrainIterations: r.Stats.TrainIters,
			ConflictFixes:   r.Stats.ConflictFixes,
		},
	}
}

// Weights returns the pipeline's current factor weights by name; after
// a labeled Run these are the learned parameters, suitable for
// WithWeights on another Pipeline.
func (p *Pipeline) Weights() map[string]float64 {
	return p.sys.WeightValues()
}

// ReadTriplesTSV parses triples from tab-separated rows
// (id, subject, predicate, object[, gold columns]).
func ReadTriplesTSV(r io.Reader) ([]Triple, error) {
	ts, err := okb.ReadTSV(r)
	if err != nil {
		return nil, err
	}
	out := make([]Triple, len(ts))
	for i, t := range ts {
		out[i] = Triple{Subject: t.Subj, Predicate: t.Pred, Object: t.Obj}
	}
	return out, nil
}
