package jocl

import "repro/internal/metrics"

// PRF1 bundles precision, recall, and F1.
type PRF1 struct {
	Precision float64
	Recall    float64
	F1        float64
}

// ClusterScores holds the paper's three clustering metrics and their
// average F1 summary.
type ClusterScores struct {
	Macro     PRF1
	Micro     PRF1
	Pairwise  PRF1
	AverageF1 float64
}

// EvaluateClustering scores predicted groups against gold group labels
// (element -> gold group id) with the macro, micro, and pairwise
// metrics of Galárraga et al. (2014). Elements without a gold label
// are ignored.
func EvaluateClustering(groups [][]string, gold map[string]string) ClusterScores {
	s := metrics.Evaluate(groups, gold)
	conv := func(p metrics.PRF1) PRF1 {
		return PRF1{Precision: p.Precision, Recall: p.Recall, F1: p.F1}
	}
	return ClusterScores{
		Macro:     conv(s.Macro),
		Micro:     conv(s.Micro),
		Pairwise:  conv(s.Pairwise),
		AverageF1: s.AverageF1,
	}
}

// LinkingAccuracy returns the fraction of gold-labeled surface forms
// whose predicted link matches the gold target ("" = out of KB).
func LinkingAccuracy(links, gold map[string]string) float64 {
	return metrics.Accuracy(links, gold)
}

// HasFact reports whether the KB contains the fact
// <subject entity, relation, object entity>.
func (kb *KB) HasFact(subjectID, relationID, objectID string) bool {
	return kb.store.HasFact(subjectID, relationID, objectID)
}

// EntityName returns the canonical name of an entity id ("" if
// unknown).
func (kb *KB) EntityName(id string) string {
	if e := kb.store.Entity(id); e != nil {
		return e.Name
	}
	return ""
}

// RelationName returns the canonical name of a relation id ("" if
// unknown).
func (kb *KB) RelationName(id string) string {
	if r := kb.store.Relation(id); r != nil {
		return r.Name
	}
	return ""
}
