package jocl

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/signals"
	"repro/internal/stream"
)

// Benchmark is a synthesized evaluation data set modeled on one of the
// paper's benchmarks (see internal/datasets and DESIGN.md for the
// construction and the substitutions it encodes). It bundles the OIE
// triples, the curated KB with anchor statistics, pre-trained
// embeddings and paraphrase resources, and gold labels for evaluation.
type Benchmark struct {
	ds *datasets.Dataset
	kb *KB

	// Triples are the OIE extractions of the benchmark.
	Triples []Triple

	// Gold labels for evaluation: surface form -> target/group.
	GoldEntityLinks   map[string]string
	GoldRelationLinks map[string]string
	GoldNPGroups      map[string]string
	GoldRPGroups      map[string]string
}

// GenerateBenchmark synthesizes a benchmark data set. profile is
// "reverb45k" or "nytimes2018"; scale 1.0 reproduces the paper's data
// set sizes (45K / 34K triples) and small scales (0.01–0.05) suit
// experimentation.
func GenerateBenchmark(profile string, scale float64) (*Benchmark, error) {
	var p datasets.Profile
	switch profile {
	case "reverb45k":
		p = datasets.ReVerb45K(scale)
	case "nytimes2018":
		p = datasets.NYTimes2018(scale)
	default:
		return nil, fmt.Errorf("jocl: unknown benchmark profile %q (want reverb45k or nytimes2018)", profile)
	}
	ds, err := datasets.Generate(p)
	if err != nil {
		return nil, err
	}
	b := &Benchmark{
		ds:                ds,
		kb:                &KB{store: ds.CKB},
		GoldEntityLinks:   ds.GoldNPLink,
		GoldRelationLinks: ds.GoldRPLink,
		GoldNPGroups:      ds.GoldNPCluster,
		GoldRPGroups:      ds.GoldRPCluster,
	}
	for _, t := range ds.OKB.Triples() {
		b.Triples = append(b.Triples, Triple{Subject: t.Subj, Predicate: t.Pred, Object: t.Obj})
	}
	return b, nil
}

// Name returns the benchmark's profile name.
func (b *Benchmark) Name() string { return b.ds.Profile.Name }

// KB returns the benchmark's curated knowledge base.
func (b *Benchmark) KB() *KB { return b.kb }

// Pipeline builds a Pipeline over the benchmark using its pre-built
// resources (trained embeddings, paraphrase DB, anchor statistics) —
// faster than New, which would retrain them from a corpus.
func (b *Benchmark) Pipeline(opts ...Option) (*Pipeline, error) {
	o := applyOptions(opts)
	res := signals.New(b.ds.OKB, b.ds.CKB, b.ds.Emb, b.ds.PPDB)
	sys, err := core.NewSystem(res, o.cfg)
	if err != nil {
		return nil, err
	}
	return &Pipeline{sys: sys, res: res}, nil
}

// Session opens a streaming session against the benchmark's KB using
// its pre-built resources (trained embeddings, paraphrase DB, anchor
// statistics). Ingest the benchmark's Triples in batches to simulate a
// stream; see also cmd/jocl-serve, which does exactly that over HTTP.
func (b *Benchmark) Session(opts ...Option) (*Session, error) {
	o := applyOptions(opts)
	return newPublicSession(stream.New(b.ds.CKB, b.ds.Emb, b.ds.PPDB, o.streamConfig()), o), nil
}

// RestoreSessionFile reconstructs a streaming session from a
// checkpoint taken against this benchmark's substrate (GenerateBenchmark
// is deterministic, so a restarted process regenerating the same
// profile and scale holds the identical KB, embeddings, and paraphrase
// DB the checkpointing session used). Pass the same options the
// original session was opened with. See jocl.RestoreSession for the
// restore semantics.
func (b *Benchmark) RestoreSessionFile(path string, opts ...Option) (*Session, error) {
	snap, err := checkpoint.Load(path)
	if err != nil {
		return nil, err
	}
	o := applyOptions(opts)
	sess, err := stream.RestoreSnapshot(snap, b.ds.CKB, b.ds.Emb, b.ds.PPDB, o.streamConfig())
	if err != nil {
		return nil, err
	}
	return newPublicSession(sess, o), nil
}

// ValidationLabels returns the gold labels of the benchmark's
// validation split (20% of entities on the ReVerb45K profile; empty on
// NYTimes2018, matching the paper's setup).
func (b *Benchmark) ValidationLabels() *Labels {
	return &Labels{
		EntityLinks:   b.ds.ValidationNPLinks(),
		RelationLinks: b.ds.ValidationRPLinks(),
		NPGroupLabels: b.ds.ValidationNPClusters(),
		RPGroupLabels: b.ds.ValidationRPClusters(),
	}
}

// TestGold restricts a gold map to surfaces that appear in test
// triples, the evaluation protocol used throughout the paper (the
// validation split trains weights, the rest is the test set).
func (b *Benchmark) TestGold(gold map[string]string, nounPhrases bool) map[string]string {
	surf := map[string]bool{}
	for _, ti := range b.ds.TestTriples {
		t := b.ds.OKB.Triple(ti)
		if nounPhrases {
			surf[t.Subj] = true
			surf[t.Obj] = true
		} else {
			surf[t.Pred] = true
		}
	}
	out := make(map[string]string, len(gold))
	for k, v := range gold {
		if surf[k] {
			out[k] = v
		}
	}
	return out
}
