GO ?= go

.PHONY: all build vet test test-race bench bench-stream bench-segment bench-repair bench-query bench-checkpoint bench-intern bench-intern-gate bench-traffic bench-retract bench-profile docs-check serve clean

# The streaming benchmark matrix runs at scale 0.1 with a multi-worker
# session — large enough that identity-layer and allocator costs are
# measurable, matching the committed BENCH_intern.json baseline.
BENCH_SCALE ?= 0.1
BENCH_WORKERS ?= 4

all: build vet test docs-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./internal/stream/ ./internal/factorgraph/ ./internal/query/ ./internal/core/ ./internal/checkpoint/ ./internal/telemetry/ ./internal/trace/ ./internal/ingress/ ./cmd/jocl-serve/

# Regenerate the paper's tables and figures.
bench:
	$(GO) run ./cmd/jocl-bench -exp all

# Streaming-ingest benchmark: incremental session vs full rebuild.
# Emits the BENCH_stream.json artifact.
bench-stream:
	$(GO) run ./cmd/jocl-bench -exp stream -scale $(BENCH_SCALE) -stream-out BENCH_stream.json

# Segmentation benchmark: hub-cut vs no-cut incremental ingest on the
# hub-fused workload. Emits the BENCH_segment.json artifact.
bench-segment:
	$(GO) run ./cmd/jocl-bench -exp segment -scale $(BENCH_SCALE) -segment-out BENCH_segment.json

# Persistent-partition benchmark: repair vs per-build re-partition on
# a rebuild-heavy stream. Emits the BENCH_repair.json artifact.
bench-repair:
	$(GO) run ./cmd/jocl-bench -exp repair -scale $(BENCH_SCALE) -repair-out BENCH_repair.json

# Read-path benchmark: delta-wise query-index maintenance vs full
# rebuild, read QPS under concurrent ingest. Emits BENCH_query.json.
bench-query:
	$(GO) run ./cmd/jocl-bench -exp query -scale $(BENCH_SCALE) -query-out BENCH_query.json

# Durability benchmark: restore-from-checkpoint vs cold full-stream
# replay (target >= 5x), warm continuation, answer equivalence. Emits
# BENCH_checkpoint.json.
bench-checkpoint:
	$(GO) run ./cmd/jocl-bench -exp checkpoint -scale $(BENCH_SCALE) -checkpoint-out BENCH_checkpoint.json

# Interning benchmark: steady-state ingest cost (wall clock + allocator
# traffic) of the id-keyed serving stack against the recorded
# string-keyed baseline, at scale 0.1 with a 0.5 spot check. Overwrites
# the committed BENCH_intern.json baseline artifact.
bench-intern:
	$(GO) run ./cmd/jocl-bench -exp intern -intern-scale $(BENCH_SCALE) -intern-workers $(BENCH_WORKERS) -intern-out BENCH_intern.json

# CI regression gate: re-measure (no spot check, for time) and fail on
# a >20% steady-state allocs/ingest regression against the committed
# BENCH_intern.json.
bench-intern-gate:
	$(GO) run ./cmd/jocl-bench -exp intern -intern-scale $(BENCH_SCALE) -intern-workers $(BENCH_WORKERS) -intern-spot 0 -intern-gate BENCH_intern.json

# Ingress benchmark: open-loop traffic replay against the async
# coalescing ingest queue vs a synchronous session at equal offered
# load (coalescing must cut mean per-batch ingest cost >= 1.3x, shed
# rate 0 below the high-water mark). Emits BENCH_traffic.json.
bench-traffic:
	$(GO) run ./cmd/jocl-bench -exp traffic -scale $(BENCH_SCALE) -traffic-clients 8 -traffic-out BENCH_traffic.json

# Retraction benchmark: retraction cost vs dirty-set size on a loaded
# session, then as-of read throughput over retained generations vs head
# reads. Emits BENCH_retract.json.
bench-retract:
	$(GO) run ./cmd/jocl-bench -exp retract -scale $(BENCH_SCALE) -retract-out BENCH_retract.json

# CPU + heap pprof profiles of the steady-state ingest path (the
# interning benchmark without its spot check). Inspect with
# `go tool pprof cpu.pprof` / `go tool pprof mem.pprof`.
bench-profile:
	$(GO) run ./cmd/jocl-bench -exp intern -intern-scale $(BENCH_SCALE) -intern-workers $(BENCH_WORKERS) -intern-spot 0 -cpuprofile cpu.pprof -memprofile mem.pprof

# Documentation gate: broken relative links in *.md, undocumented
# exported identifiers in the public and documented packages.
docs-check:
	$(GO) run ./cmd/jocl-docscheck

serve:
	$(GO) run ./cmd/jocl-serve -addr :8080

clean:
	rm -f BENCH_stream.json BENCH_segment.json BENCH_repair.json BENCH_query.json BENCH_checkpoint.json BENCH_traffic.json BENCH_retract.json cpu.pprof mem.pprof
