GO ?= go

.PHONY: all build vet test test-race bench bench-stream bench-segment bench-repair bench-query bench-checkpoint docs-check serve clean

all: build vet test docs-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./internal/stream/ ./internal/factorgraph/ ./internal/query/ ./internal/core/ ./internal/checkpoint/ ./internal/telemetry/ ./cmd/jocl-serve/

# Regenerate the paper's tables and figures.
bench:
	$(GO) run ./cmd/jocl-bench -exp all

# Streaming-ingest benchmark: incremental session vs full rebuild.
# Emits the BENCH_stream.json artifact.
bench-stream:
	$(GO) run ./cmd/jocl-bench -exp stream -stream-out BENCH_stream.json

# Segmentation benchmark: hub-cut vs no-cut incremental ingest on the
# hub-fused workload. Emits the BENCH_segment.json artifact.
bench-segment:
	$(GO) run ./cmd/jocl-bench -exp segment -segment-out BENCH_segment.json

# Persistent-partition benchmark: repair vs per-build re-partition on
# a rebuild-heavy stream. Emits the BENCH_repair.json artifact.
bench-repair:
	$(GO) run ./cmd/jocl-bench -exp repair -repair-out BENCH_repair.json

# Read-path benchmark: delta-wise query-index maintenance vs full
# rebuild, read QPS under concurrent ingest. Emits BENCH_query.json.
bench-query:
	$(GO) run ./cmd/jocl-bench -exp query -query-out BENCH_query.json

# Durability benchmark: restore-from-checkpoint vs cold full-stream
# replay (target >= 5x), warm continuation, answer equivalence. Emits
# BENCH_checkpoint.json.
bench-checkpoint:
	$(GO) run ./cmd/jocl-bench -exp checkpoint -checkpoint-out BENCH_checkpoint.json

# Documentation gate: broken relative links in *.md, undocumented
# exported identifiers in the public and documented packages.
docs-check:
	$(GO) run ./cmd/jocl-docscheck

serve:
	$(GO) run ./cmd/jocl-serve -addr :8080

clean:
	rm -f BENCH_stream.json BENCH_segment.json BENCH_repair.json BENCH_query.json BENCH_checkpoint.json
