// News-stream canonicalization: the NYTimes2018 scenario. News text
// mentions many entities the curated KB has never heard of; a quarter
// of the extractions here denote out-of-KB entities. JOCL still
// clusters their surface variants (an emerging entity's aliases form a
// group linked to nothing), which is exactly the signal a KB-population
// team needs: "here is a new entity, mentioned N ways, asserted in M
// triples".
//
//	go run ./examples/newsstream
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"repro"
)

func main() {
	// NYTimes2018-style benchmark: noisier extractions, no validation
	// labels, 25% out-of-KB entities. Weights learned on a ReVerb45K
	// validation split transfer, as in the paper's evaluation.
	reverb, err := jocl.GenerateBenchmark("reverb45k", 0.01)
	if err != nil {
		log.Fatal(err)
	}
	trainer, err := reverb.Pipeline()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := trainer.Run(reverb.ValidationLabels()); err != nil {
		log.Fatal(err)
	}
	learned := trainer.Weights()

	news, err := jocl.GenerateBenchmark("nytimes2018", 0.01)
	if err != nil {
		log.Fatal(err)
	}
	pipeline, err := news.Pipeline(jocl.WithWeights(learned))
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipeline.Run(nil) // no labels: the news stream is unannotated
	if err != nil {
		log.Fatal(err)
	}

	// Split NP groups into linked (KB-known) and emerging (out-of-KB).
	var linked, emerging [][]string
	for _, g := range res.NPGroups {
		if res.EntityLinks[g[0]] != "" {
			linked = append(linked, g)
		} else {
			emerging = append(emerging, g)
		}
	}
	// Emerging entities mentioned under several surface forms are the
	// interesting ones.
	sort.Slice(emerging, func(i, j int) bool { return len(emerging[i]) > len(emerging[j]) })

	fmt.Printf("news OKB: %d triples, %d distinct NPs\n", len(news.Triples), countNPs(res.NPGroups))
	fmt.Printf("groups linked to the KB: %d; emerging (out-of-KB) groups: %d\n\n", len(linked), len(emerging))

	fmt.Println("Top emerging entities (multiple surface forms, no KB target):")
	shown := 0
	for _, g := range emerging {
		if len(g) < 2 {
			break
		}
		fmt.Printf("  {%s}\n", strings.Join(g, ", "))
		if shown++; shown >= 10 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("  (none at this scale — increase the benchmark scale)")
	}

	// Sanity numbers against the generator's (sampled) gold labels.
	acc := jocl.LinkingAccuracy(res.EntityLinks, nonNIL(news.GoldEntityLinks))
	sc := jocl.EvaluateClustering(res.NPGroups, news.GoldNPGroups)
	fmt.Printf("\nentity linking accuracy (sampled gold, in-KB): %.3f\n", acc)
	fmt.Printf("NP canonicalization average F1 (sampled gold): %.3f\n", sc.AverageF1)
}

func countNPs(groups [][]string) int {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	return n
}

func nonNIL(gold map[string]string) map[string]string {
	out := map[string]string{}
	for k, v := range gold {
		if v != "" {
			out[k] = v
		}
	}
	return out
}
