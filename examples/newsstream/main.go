// News-stream canonicalization, now actually streamed: the
// NYTimes2018 scenario served through jocl.Session. News text mentions
// many entities the curated KB has never heard of; a quarter of the
// extractions here denote out-of-KB entities. JOCL still clusters
// their surface variants (an emerging entity's aliases form a group
// linked to nothing), which is exactly the signal a KB-population team
// needs: "here is a new entity, mentioned N ways, asserted in M
// triples".
//
// Where the original example rebuilt the whole pipeline per run, this
// one opens a streaming session, preloads the archive, and then feeds
// the remaining extractions in small batches the way a live feed
// would, printing what each batch cost: how much of the factor graph
// was dirty, how many sweeps the warm-started inference needed, and
// the running emerging-entity count.
//
//	go run ./examples/newsstream
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"repro"
)

func main() {
	// Weights learned on a ReVerb45K validation split transfer, as in
	// the paper's evaluation; the streaming session does not learn
	// online.
	reverb, err := jocl.GenerateBenchmark("reverb45k", 0.01)
	if err != nil {
		log.Fatal(err)
	}
	trainer, err := reverb.Pipeline()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := trainer.Run(reverb.ValidationLabels()); err != nil {
		log.Fatal(err)
	}
	learned := trainer.Weights()

	news, err := jocl.GenerateBenchmark("nytimes2018", 0.01)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := news.Session(jocl.WithWeights(learned))
	if err != nil {
		log.Fatal(err)
	}

	// Preload the archive (what the service already ingested before we
	// joined), then stream the rest in small batches.
	triples := news.Triples
	preload := len(triples) * 7 / 10
	batchSize := (len(triples) - preload) / 5
	if batchSize < 1 {
		batchSize = 1
	}

	fmt.Printf("news stream: %d archived triples, then live batches of ~%d\n\n", preload, batchSize)
	cuts := []int{0, preload}
	for c := preload + batchSize; c < len(triples); c += batchSize {
		cuts = append(cuts, c)
	}
	cuts = append(cuts, len(triples))

	for b := 0; b+1 < len(cuts); b++ {
		st, err := sess.Ingest(triples[cuts[b]:cuts[b+1]])
		if err != nil {
			log.Fatal(err)
		}
		res := sess.Snapshot()
		kind := "live batch"
		if st.Refreshed {
			kind = "preload"
		}
		fmt.Printf("%-10s %4d triples -> %4d total | %d/%d components dirty, %d sweeps, %.0f ms | emerging groups: %d\n",
			kind, st.BatchTriples, st.TotalTriples,
			st.DirtyComponents, st.Components, st.Sweeps,
			st.ConstructMillis+st.InferMillis, len(emergingGroups(res)))
	}

	res := sess.Snapshot()
	emerging := emergingGroups(res)
	sort.Slice(emerging, func(i, j int) bool { return len(emerging[i]) > len(emerging[j]) })

	fmt.Printf("\nfinal state: %d distinct NPs in %d groups\n", countNPs(res.NPGroups), len(res.NPGroups))
	fmt.Println("Top emerging entities (multiple surface forms, no KB target):")
	shown := 0
	for _, g := range emerging {
		if len(g) < 2 {
			break
		}
		fmt.Printf("  {%s}\n", strings.Join(g, ", "))
		if shown++; shown >= 10 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("  (none at this scale — increase the benchmark scale)")
	}

	// Sanity numbers against the generator's (sampled) gold labels.
	acc := jocl.LinkingAccuracy(res.EntityLinks, nonNIL(news.GoldEntityLinks))
	sc := jocl.EvaluateClustering(res.NPGroups, news.GoldNPGroups)
	fmt.Printf("\nentity linking accuracy (sampled gold, in-KB): %.3f\n", acc)
	fmt.Printf("NP canonicalization average F1 (sampled gold): %.3f\n", sc.AverageF1)
}

// emergingGroups returns the NP groups whose members link to no KB
// entity.
func emergingGroups(res *jocl.Result) [][]string {
	var out [][]string
	for _, g := range res.NPGroups {
		if res.EntityLinks[g[0]] == "" {
			out = append(out, g)
		}
	}
	return out
}

func countNPs(groups [][]string) int {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	return n
}

func nonNIL(gold map[string]string) map[string]string {
	out := map[string]string{}
	for k, v := range gold {
		if v != "" {
			out[k] = v
		}
	}
	return out
}
