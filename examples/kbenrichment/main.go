// KB enrichment: the application the paper's introduction motivates.
// Open IE triples cover far more of the world than a curated KB; after
// joint canonicalization and linking, every triple whose subject,
// relation, and object all resolve to KB identifiers — but whose fact
// the KB does not yet contain — is a candidate new fact. This example
// generates a ReVerb45K-style benchmark (whose synthetic KB stores
// only ~45% of the world's facts), runs JOCL, and prints the facts the
// OKB contributes.
//
//	go run ./examples/kbenrichment
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	b, err := jocl.GenerateBenchmark("reverb45k", 0.01)
	if err != nil {
		log.Fatal(err)
	}
	pipeline, err := b.Pipeline()
	if err != nil {
		log.Fatal(err)
	}
	// The validation split supplies the supervision, as in the paper.
	res, err := pipeline.Run(b.ValidationLabels())
	if err != nil {
		log.Fatal(err)
	}

	kb := b.KB()
	type newFact struct {
		subj, rel, obj string
		evidence       int // triples asserting it
	}
	found := map[[3]string]*newFact{}
	for _, t := range b.Triples {
		s := res.EntityLinks[t.Subject]
		r := res.RelationLinks[t.Predicate]
		o := res.EntityLinks[t.Object]
		if s == "" || r == "" || o == "" {
			continue // at least one argument is out of the KB
		}
		if kb.HasFact(s, r, o) {
			continue // already known
		}
		key := [3]string{s, r, o}
		if f := found[key]; f != nil {
			f.evidence++
		} else {
			found[key] = &newFact{subj: s, rel: r, obj: o, evidence: 1}
		}
	}

	facts := make([]*newFact, 0, len(found))
	for _, f := range found {
		facts = append(facts, f)
	}
	sort.Slice(facts, func(i, j int) bool {
		if facts[i].evidence != facts[j].evidence {
			return facts[i].evidence > facts[j].evidence
		}
		return facts[i].subj < facts[j].subj
	})

	fmt.Printf("OKB: %d triples; new facts proposed for the KB: %d\n\n", len(b.Triples), len(facts))
	show := facts
	if len(show) > 15 {
		show = show[:15]
	}
	for _, f := range show {
		fmt.Printf("  %-30s  %-28s  %-30s  (evidence: %d triples)\n",
			kb.EntityName(f.subj), kb.RelationName(f.rel), kb.EntityName(f.obj), f.evidence)
	}
	if len(facts) > len(show) {
		fmt.Printf("  ... and %d more\n", len(facts)-len(show))
	}

	// How trustworthy are the proposals? Check against the generator's
	// ground truth: a proposal is correct when all three links match
	// the gold annotation of some asserting triple.
	correct := 0
	for _, t := range b.Triples {
		s, r, o := res.EntityLinks[t.Subject], res.RelationLinks[t.Predicate], res.EntityLinks[t.Object]
		if s == "" || r == "" || o == "" || kb.HasFact(s, r, o) {
			continue
		}
		if b.GoldEntityLinks[t.Subject] == s &&
			b.GoldRelationLinks[t.Predicate] == r &&
			b.GoldEntityLinks[t.Object] == o {
			correct++
		}
	}
	total := 0
	for _, f := range facts {
		total += f.evidence
	}
	if total > 0 {
		fmt.Printf("\nproposal precision (per asserting triple, vs. gold): %.1f%%\n",
			100*float64(correct)/float64(total))
	}
}
