// Quickstart: the paper's Figure 1 running example, end to end through
// the public API. Three OIE triples mention the University of Maryland
// under two surface forms and express "member of" two ways; JOCL
// clusters the paraphrases and links every group to the curated KB in
// one joint inference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	// The curated KB (Figure 1's right-hand side).
	kb, err := jocl.NewKB(
		[]jocl.Entity{
			{ID: "e1", Name: "maryland", Aliases: []string{"Maryland"}, Types: []string{"location"}},
			{ID: "e2", Name: "universitas 21", Aliases: []string{"U21"}, Types: []string{"organization"}},
			{ID: "e3", Name: "university of virginia", Aliases: []string{"UVA"}, Types: []string{"organization"}},
			{ID: "e4", Name: "university of maryland", Aliases: []string{"UMD"}, Types: []string{"organization"}},
		},
		[]jocl.Relation{
			{ID: "r1", Name: "location.contained_by", Category: "location",
				Aliases: []string{"locate in", "located in"}},
			{ID: "r2", Name: "organizations_founded", Category: "membership",
				Aliases: []string{"be a member of", "member of"}},
		},
		[]jocl.Fact{
			{Subject: "e4", Relation: "r1", Object: "e1"},
			{Subject: "e4", Relation: "r2", Object: "e2"},
			{Subject: "e3", Relation: "r2", Object: "e2"},
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	// Anchor statistics: the popularity prior behind f_pop.
	kb.AddAnchor("Maryland", "e1", 90)
	kb.AddAnchor("UMD", "e4", 40)
	kb.AddAnchor("University of Maryland", "e4", 60)
	kb.AddAnchor("U21", "e2", 20)

	// The OKB: three OIE triples (Figure 1's left-hand side).
	triples := []jocl.Triple{
		{Subject: "University of Maryland", Predicate: "locate in", Object: "Maryland"},
		{Subject: "UMD", Predicate: "be a member of", Object: "Universitas 21"},
		{Subject: "University of Virginia", Predicate: "be an early member of", Object: "U21"},
	}

	// A tiny corpus in which aliases of one entity share contexts, so
	// the distributional signal has something to work with.
	corpus := [][]string{
		{"the", "university", "of", "maryland", "campus", "sits", "near", "college", "park"},
		{"umd", "campus", "sits", "near", "college", "park"},
		{"universitas", "21", "network", "of", "universities", "meets", "annually"},
		{"u21", "network", "of", "universities", "meets", "annually"},
		{"university", "of", "virginia", "charlottesville", "grounds", "historic"},
		{"uva", "charlottesville", "grounds", "historic"},
	}

	pipeline, err := jocl.New(triples, kb,
		jocl.WithCorpus(corpus),
		jocl.WithParaphrases([][]string{
			{"Universitas 21", "U21"},
			{"be a member of", "be an early member of"},
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipeline.Run(nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Noun phrase groups and links:")
	for _, g := range res.NPGroups {
		target := "(out of KB)"
		if id := res.EntityLinks[g[0]]; id != "" {
			target = fmt.Sprintf("%s (%s)", kb.EntityName(id), id)
		}
		fmt.Printf("  {%s} -> %s\n", strings.Join(g, ", "), target)
	}
	fmt.Println("Relation phrase groups and links:")
	for _, g := range res.RPGroups {
		target := "(out of KB)"
		if id := res.RelationLinks[g[0]]; id != "" {
			target = fmt.Sprintf("%s (%s)", kb.RelationName(id), id)
		}
		fmt.Printf("  {%s} -> %s\n", strings.Join(g, ", "), target)
	}
	fmt.Printf("Factor graph: %d factors, converged in %d sweeps\n",
		res.Stats.Factors, res.Stats.Sweeps)
}
