// Ablation walk-through: Table 4 and Figure 4 of the paper in
// miniature, through the public API. Runs JOCL with the interaction
// severed in each direction (canonicalization only, linking only),
// with the consistency factors removed, and with the Table 5 feature
// subsets, and prints how each change moves the two tasks' scores.
//
//	go run ./examples/ablation
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	b, err := jocl.GenerateBenchmark("reverb45k", 0.01)
	if err != nil {
		log.Fatal(err)
	}
	labels := b.ValidationLabels()
	goldGroups := b.TestGold(b.GoldNPGroups, true)
	goldLinks := nonNIL(b.TestGold(b.GoldEntityLinks, true))

	type variant struct {
		name string
		opts []jocl.Option
	}
	variants := []variant{
		{"JOCL (full)", nil},
		{"JOCLcano (no linking)", []jocl.Option{jocl.WithoutLinking()}},
		{"JOCLlink (no canonicalization)", []jocl.Option{jocl.WithoutCanonicalization()}},
		{"no interaction (consistency off)", []jocl.Option{jocl.WithoutInteraction()}},
		{"JOCL-single features", []jocl.Option{jocl.WithFeatureProfile("single")}},
		{"JOCL-double features", []jocl.Option{jocl.WithFeatureProfile("double")}},
	}

	fmt.Printf("%-36s  %10s  %10s\n", "variant", "NP avg F1", "ent acc")
	for _, v := range variants {
		p, err := b.Pipeline(v.opts...)
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.Run(labels)
		if err != nil {
			log.Fatal(err)
		}
		f1 := "-"
		if len(res.NPGroups) > 0 {
			f1 = fmt.Sprintf("%10.3f", jocl.EvaluateClustering(res.NPGroups, goldGroups).AverageF1)
		}
		acc := "-"
		if len(res.EntityLinks) > 0 {
			acc = fmt.Sprintf("%10.3f", jocl.LinkingAccuracy(res.EntityLinks, goldLinks))
		}
		fmt.Printf("%-36s  %10s  %10s\n", v.name, f1, acc)
	}
}

func nonNIL(gold map[string]string) map[string]string {
	out := map[string]string{}
	for k, v := range gold {
		if v != "" {
			out[k] = v
		}
	}
	return out
}
