package jocl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/ingress"
	"repro/internal/okb"
	"repro/internal/ppdb"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Session is the streaming counterpart of Pipeline: it accepts triple
// batches over time, maintains the factor graph incrementally, and
// re-runs belief propagation only on the connected components a batch
// touched, serving the rest from warm-started message state (see
// internal/stream for the mechanics). Use it when extractions arrive
// continuously — a news feed, a crawler — and rebuilding the whole
// pipeline per batch is too slow.
//
// Sessions do not learn weights online: learn them offline with a
// labeled Pipeline.Run, then seed them via WithWeights.
type Session struct {
	s  *stream.Session
	in *ingress.Pipeline // nil unless WithIngress
}

// ErrSessionClosed is returned by IngestContext after Close: the
// session's ingest pipeline no longer accepts batches.
var ErrSessionClosed = errors.New("jocl: session closed")

// ErrRetractNoMatch is returned by Retract/RetractContext when no batch
// member matched a live triple: the session state is unchanged. Serving
// layers map it onto HTTP 404.
var ErrRetractNoMatch = errors.New("jocl: retraction matched no live triples")

// OverloadedError is returned by IngestContext when the session's
// ingest queue (WithIngress) is past its high-water mark: the batch
// was shed without touching the session. RetryAfter is the pipeline's
// estimate of when the backlog will have drained — serving layers map
// it onto HTTP 429 + Retry-After.
type OverloadedError struct {
	// QueueDepth is the queue depth observed at the shed decision.
	QueueDepth int
	// RetryAfter estimates the backlog's drain time (1s–30s).
	RetryAfter time.Duration
}

// Error describes the shed decision.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("jocl: session overloaded (queue depth %d), retry after %s", e.QueueDepth, e.RetryAfter)
}

// IngestStats reports what one ingested batch cost and how much of the
// graph it reused.
type IngestStats struct {
	// Batch is the 1-based ingest sequence number; Refreshed marks
	// batches that rebuilt the frozen signal statistics (first batch, or
	// WithRefreshEvery reached) and therefore re-solved everything.
	Batch        int
	BatchTriples int
	TotalTriples int
	Refreshed    bool

	// Retracted counts the triple positions a Retract call tombstoned
	// (zero for append ingests); RemovedNPs / RemovedRPs the noun and
	// relation phrases whose last live mention went with them (their
	// clusters split, their index entries are deleted).
	Retracted  int
	RemovedNPs int
	RemovedRPs int

	// Components counts the factor graph's partition blocks (exact
	// connected components, or hub-cut blocks under WithSegmentation);
	// DirtyComponents of them were touched by the batch and re-ran
	// belief propagation, CleanComponents were served from cached
	// message state.
	Components      int
	DirtyComponents int
	CleanComponents int
	// Sweeps is the slowest dirty block's sweep count (dirty blocks run
	// in parallel).
	Sweeps int
	// CutVariables counts the hub variables cut out of the blocks and
	// OuterRounds the frozen-boundary rounds this ingest ran (both zero
	// without WithSegmentation).
	CutVariables int
	OuterRounds  int
	// PartitionRepaired marks ingests that repaired the previous
	// build's partition (carrying its cut set and block identities
	// forward) instead of re-deriving it; RepairBlocksReused /
	// RepairBlocksRecut then count the blocks adopted verbatim vs
	// re-cut. PartitionMillis is the wall-clock cost of deriving or
	// repairing this build's partition.
	PartitionRepaired  bool
	RepairBlocksReused int
	RepairBlocksRecut  int
	PartitionMillis    float64

	// ConstructMillis and InferMillis split the batch's wall-clock cost
	// between graph (re)construction and inference; TotalMillis is the
	// whole ingest, end to end.
	ConstructMillis float64
	InferMillis     float64
	TotalMillis     float64

	// IndexMillis is the read-path query-index maintenance this ingest
	// paid; IndexKeys the index keys it rewrote and IndexFull whether
	// it was a from-scratch rebuild (first batch or epoch refresh). All
	// zero when the query index is disabled.
	IndexMillis float64
	IndexKeys   int
	IndexFull   bool

	// CoalescedBatches is the number of submitted batches the session
	// ingest carrying this one merged (1 = this batch rode alone; >1
	// means the stats above describe the merged ingest and are shared
	// by every member batch). Always 1 without WithIngress.
	CoalescedBatches int

	// TraceID identifies this request's trace (32 hex characters, W3C
	// trace-context format) when tracing is enabled: the id adopted
	// from the caller's traceparent (see ContextWithTraceParent) or
	// generated at submission. Empty with tracing off.
	TraceID string
}

// SessionStats is a session's cumulative view.
type SessionStats struct {
	Batches       int
	TotalTriples  int
	NounPhrases   int
	RelPhrases    int
	Refreshes     int
	CachedSignals int
	// Retractions counts committed Retract calls; DeadTriples the
	// tombstoned positions among TotalTriples (live triples =
	// TotalTriples - DeadTriples).
	Retractions int
	DeadTriples int
	// BlocksTouched / BlocksServedWarm total, across all ingests, the
	// partition blocks that re-ran belief propagation and the blocks
	// served from cached messages; CutVariables is the current build's
	// hub-cut count (zero without WithSegmentation).
	BlocksTouched    int
	BlocksServedWarm int
	CutVariables     int
	// PartitionRepairs counts ingests that repaired the previous
	// build's partition instead of re-deriving it, and
	// RepairBlocksReused totals the blocks those repairs carried over
	// verbatim (both zero without WithSegmentation).
	PartitionRepairs   int
	RepairBlocksReused int
	// QueryEnabled reports whether the read-path query index is
	// maintained; QueryGeneration its current generation id,
	// QueryLayers its overlay-chain depth, QueryMaxResults the
	// enumeration cap it enforces, and QueryIndexMillis the cumulative
	// maintenance wall-clock across all ingests. QueryRetained lists
	// the generation ids currently answerable via AsOf, ascending with
	// the current generation last.
	QueryEnabled     bool
	QueryGeneration  int64
	QueryLayers      int
	QueryMaxResults  int
	QueryIndexMillis float64
	QueryRetained    []int64
	LastIngest       *IngestStats
}

// NewSession opens a streaming session against the KB. The same
// options as New apply; WithCorpus supplies the embedding training
// text up front (embeddings are part of the frozen signal state, like
// the KB itself).
func NewSession(kb *KB, opts ...Option) (*Session, error) {
	if kb == nil {
		return nil, fmt.Errorf("jocl: nil KB")
	}
	o := applyOptions(opts)
	emb, db := o.sessionResources()
	return newPublicSession(stream.New(kb.store, emb, db, o.streamConfig()), o), nil
}

// newPublicSession wraps a stream session, standing up the ingress
// pipeline when WithIngress asked for one. The pipeline reports its
// jocl_ingress_* metrics through the session's registry, so one
// /metrics scrape covers queue pressure alongside ingest cost.
func newPublicSession(s *stream.Session, o *options) *Session {
	ps := &Session{s: s}
	if o.ingressOn {
		cfg := ingress.Config{
			QueueDepth:     o.ingressOpts.QueueDepth,
			CoalesceDepth:  o.ingressOpts.CoalesceDepth,
			CoalesceWindow: o.ingressOpts.CoalesceWindow,
			ShedDepth:      o.ingressOpts.ShedDepth,
			StallAfter:     o.ingressOpts.StallAfter,
			Tracer:         s.Tracer(),
		}
		if tel := s.Telemetry(); tel != nil {
			cfg.Registry = tel.Registry
		}
		ps.in = ingress.NewSession(s, cfg)
	}
	return ps
}

// applyOptions folds the options over the session defaults.
func applyOptions(opts []Option) *options {
	o := &options{cfg: core.DefaultConfig(), embedDim: 32}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// sessionResources derives the frozen substrate a session is built on:
// embeddings trained from the corpus option (deterministic given the
// same corpus and dimensionality) and the paraphrase DB. Restore must
// receive the same resources the checkpointing session used, which is
// why both construction and restore share this one derivation.
func (o *options) sessionResources() (*embedding.Model, *ppdb.DB) {
	emb := embedding.Train(o.corpus, embedding.Config{Dim: o.embedDim, Seed: 1})
	pb := ppdb.NewBuilder()
	for _, g := range o.paraphrases {
		pb.AddGroup(g...)
	}
	return emb, pb.Build()
}

// streamConfig translates the public options into the internal stream
// configuration.
func (o *options) streamConfig() stream.Config {
	return stream.Config{
		Core:         o.cfg,
		Workers:      o.workers,
		RefreshEvery: o.refreshEvery,
		Query:        o.queryConfig(),
		Telemetry: telemetry.Config{
			Enable:    !o.telemetryOff,
			TraceRing: o.telemetryOpts.TraceRing,
		},
		Trace: trace.Config{
			Enable:        !o.telemetryOff && !o.tracingOff,
			SlowThreshold: o.traceOpts.SlowThreshold,
			Capacity:      o.traceOpts.Capacity,
		},
	}
}

// Telemetry exposes the session's metrics registry and ingest-trace
// ring (see internal/telemetry): every ingest feeds latency histograms,
// per-stage spans, and subsystem gauges through it, jocl-serve renders
// it at GET /metrics and GET /debug/trace, and jocl-bench digests the
// same histograms into p50/p95/p99 summaries. It returns nil when the
// session was built WithoutTelemetry.
func (s *Session) Telemetry() *telemetry.Telemetry { return s.s.Telemetry() }

// CheckpointFileName is the canonical file name for a session
// checkpoint inside a checkpoint directory (what jocl-serve reads on
// startup and atomically replaces on every checkpoint).
const CheckpointFileName = checkpoint.DefaultFileName

// Checkpoint writes a durable snapshot of the session to w: the
// accumulated triples, epoch markers, learned weights, factor-graph
// warm state (messages, boundary baselines, partition memory), the
// last published result, and the query index's generation — a
// versioned, checksummed format a later RestoreSession resumes from
// warm. Only a brief state capture synchronizes with ingests; the
// serialization runs off the ingest lock, so concurrent Ingest and
// Query* calls proceed undisturbed.
func (s *Session) Checkpoint(w io.Writer) error {
	return s.s.Checkpoint(w)
}

// CheckpointInfo describes a checkpoint that was just written: the
// ingest state the snapshot actually captured (which may trail a
// concurrently committing ingest) and its serialized size.
type CheckpointInfo struct {
	Batches int
	Triples int
	Bytes   int64
}

// CheckpointFile writes the session checkpoint to path atomically
// (temp file, fsync, rename): a crash mid-write leaves the previous
// checkpoint intact, never a torn file. The returned info reports the
// written snapshot itself, not the session's current state.
func (s *Session) CheckpointFile(path string) (CheckpointInfo, error) {
	t0 := time.Now()
	snap := s.s.CheckpointState()
	if err := checkpoint.Save(path, snap); err != nil {
		s.s.ObserveCheckpoint(0, snap.Batches, time.Since(t0), err)
		return CheckpointInfo{}, err
	}
	info := CheckpointInfo{Batches: snap.Batches, Triples: len(snap.Triples)}
	if fi, err := os.Stat(path); err == nil {
		info.Bytes = fi.Size()
	}
	s.s.ObserveCheckpoint(info.Bytes, snap.Batches, time.Since(t0), nil)
	return info, nil
}

// RestoreSession reconstructs a session from a checkpoint written by
// Session.Checkpoint. It must be given the same KB and the same
// options (corpus, paraphrases, weights, segmentation, query index
// configuration) the checkpointing session was built with: those are
// the offline-trained substrate, intentionally not serialized, and a
// mismatch shifts factor potentials so the restored warm state is
// discarded by fingerprint mismatch instead of served warm. The
// restored session resumes exactly where the checkpoint was taken —
// warm blocks stay warm, partition repairs pick up the carried cuts,
// and Query* generations continue with correct staleness accounting.
func RestoreSession(r io.Reader, kb *KB, opts ...Option) (*Session, error) {
	if kb == nil {
		return nil, fmt.Errorf("jocl: nil KB")
	}
	o := applyOptions(opts)
	emb, db := o.sessionResources()
	sess, err := stream.RestoreSession(r, kb.store, emb, db, o.streamConfig())
	if err != nil {
		return nil, err
	}
	return newPublicSession(sess, o), nil
}

// RestoreSessionFile is RestoreSession reading from a checkpoint file
// (verifying its magic, version, and checksum).
func RestoreSessionFile(path string, kb *KB, opts ...Option) (*Session, error) {
	if kb == nil {
		return nil, fmt.Errorf("jocl: nil KB")
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		return nil, err
	}
	o := applyOptions(opts)
	emb, db := o.sessionResources()
	sess, err := stream.RestoreSnapshot(snap, kb.store, emb, db, o.streamConfig())
	if err != nil {
		return nil, err
	}
	return newPublicSession(sess, o), nil
}

// Ingest folds a batch of triples into the session and re-infers
// incrementally. It is IngestContext with a background context.
func (s *Session) Ingest(triples []Triple) (IngestStats, error) {
	return s.IngestContext(context.Background(), triples)
}

// IngestContext folds a batch of triples into the session and blocks
// until its inference has committed. Without WithIngress this is a
// synchronous ingest (ctx is only checked up front). With WithIngress
// the batch is queued: it may coalesce with adjacent queued batches
// into one merged ingest (the returned stats then describe the merged
// ingest, with CoalescedBatches > 1), an overloaded queue sheds it
// with an *OverloadedError, cancelling ctx while it is still queued
// withdraws it before the session ever sees it, and after Close it is
// refused with ErrSessionClosed.
func (s *Session) IngestContext(ctx context.Context, triples []Triple) (IngestStats, error) {
	ts := make([]okb.Triple, len(triples))
	for i, t := range triples {
		ts[i] = okb.Triple{Subj: t.Subject, Pred: t.Predicate, Obj: t.Object}
	}
	if s.in == nil {
		if err := ctx.Err(); err != nil {
			return IngestStats{}, err
		}
		st, err := s.s.IngestTraced(trace.FromContext(ctx), ts)
		if err != nil {
			return IngestStats{}, err
		}
		out := ingestStats(st)
		out.CoalescedBatches = 1
		return out, nil
	}
	res, err := s.in.Submit(ctx, ts)
	if err != nil {
		var shed *ingress.ShedError
		if errors.As(err, &shed) {
			return IngestStats{}, &OverloadedError{QueueDepth: shed.Depth, RetryAfter: shed.RetryAfter}
		}
		if errors.Is(err, ingress.ErrClosed) {
			return IngestStats{}, ErrSessionClosed
		}
		return IngestStats{}, err
	}
	out := ingestStats(res.Stats)
	out.CoalescedBatches = res.Coalesced
	if res.TraceID != "" {
		// Report the request's own trace id, not the merged group's:
		// the caller correlates by the id it sent (or was handed back),
		// and the request trace links to the group trace.
		out.TraceID = res.TraceID
	}
	return out, nil
}

// Retract tombstones every live triple matching a batch member by
// (subject, predicate, object) — duplicate extractions of one fact all
// go at once — and re-infers without the retracted evidence. It is
// RetractContext with a background context.
func (s *Session) Retract(triples []Triple) (IngestStats, error) {
	return s.RetractContext(context.Background(), triples)
}

// RetractContext tombstones the matching triples and blocks until the
// re-inference has committed. Members matching no live triple are
// skipped; a batch matching nothing at all fails with no side effects.
// With WithIngress the retraction is queued like an ingest: its queue
// position is its stream position (appends submitted before it apply
// first, appends after it see the tombstones), adjacent queued
// retractions may coalesce, and overload/cancel/closed behave exactly
// as IngestContext. The session's frozen signal statistics still count
// the retracted triples until the next refresh (Refresh /
// WithRefreshEvery), after which the session state converges to a
// stream that never contained them.
func (s *Session) RetractContext(ctx context.Context, triples []Triple) (IngestStats, error) {
	ts := make([]okb.Triple, len(triples))
	for i, t := range triples {
		ts[i] = okb.Triple{Subj: t.Subject, Pred: t.Predicate, Obj: t.Object}
	}
	if s.in == nil {
		if err := ctx.Err(); err != nil {
			return IngestStats{}, err
		}
		st, err := s.s.RetractTraced(trace.FromContext(ctx), ts)
		if err != nil {
			if errors.Is(err, stream.ErrNoLiveMatch) {
				return IngestStats{}, ErrRetractNoMatch
			}
			return IngestStats{}, err
		}
		out := ingestStats(st)
		out.CoalescedBatches = 1
		return out, nil
	}
	res, err := s.in.Retract(ctx, ts)
	if err != nil {
		var shed *ingress.ShedError
		if errors.As(err, &shed) {
			return IngestStats{}, &OverloadedError{QueueDepth: shed.Depth, RetryAfter: shed.RetryAfter}
		}
		if errors.Is(err, ingress.ErrClosed) {
			return IngestStats{}, ErrSessionClosed
		}
		if errors.Is(err, stream.ErrNoLiveMatch) {
			return IngestStats{}, ErrRetractNoMatch
		}
		return IngestStats{}, err
	}
	out := ingestStats(res.Stats)
	out.CoalescedBatches = res.Coalesced
	if res.TraceID != "" {
		out.TraceID = res.TraceID
	}
	return out, nil
}

// Close shuts the session's ingest pipeline down: it stops accepting
// batches, drains everything queued through the session, and waits
// for the final commit (or ctx expiry — the drain continues in the
// background if ctx wins). Without WithIngress it is a no-op. Query*
// and Checkpoint* remain usable after Close.
func (s *Session) Close(ctx context.Context) error {
	if s.in == nil {
		return nil
	}
	return s.in.Close(ctx)
}

// IngressStats is a point-in-time snapshot of the ingest pipeline's
// cumulative counters (WithIngress), mirroring the jocl_ingress_*
// metric families.
type IngressStats struct {
	// QueueDepth is the current number of queued, unstarted batches.
	QueueDepth int
	// Submitted counts batches accepted into the queue; Shed those
	// refused past the high-water mark; Cancelled those withdrawn by
	// context cancellation while still queued.
	Submitted uint64
	Shed      uint64
	Cancelled uint64
	// MergedIngests counts session ingests the pipeline issued and
	// CoalescedBatches the submitted batches they carried; Splits
	// counts merged prepares that failed and were retried
	// batch-by-batch to isolate a poisoned member.
	MergedIngests    uint64
	CoalescedBatches uint64
	Splits           uint64
	// QueueOldestEnqueued is when the oldest still-queued submission
	// arrived and QueueOldestAge how long it has been waiting — the
	// head-of-line latency a new submission is behind. Both zero when
	// the queue is empty.
	QueueOldestEnqueued time.Time
	QueueOldestAge      time.Duration
}

// CoalescingFactor is the mean number of submitted batches per session
// ingest (0 before the first ingest).
func (st IngressStats) CoalescingFactor() float64 {
	if st.MergedIngests == 0 {
		return 0
	}
	return float64(st.CoalescedBatches) / float64(st.MergedIngests)
}

// IngressStats reports the ingest pipeline's counters, or ok=false
// without WithIngress.
func (s *Session) IngressStats() (IngressStats, bool) {
	if s.in == nil {
		return IngressStats{}, false
	}
	st := s.in.Stats()
	out := IngressStats{
		QueueDepth:       s.in.Depth(),
		Submitted:        st.Submitted,
		Shed:             st.Shed,
		Cancelled:        st.Cancelled,
		MergedIngests:    st.MergedIngests,
		CoalescedBatches: st.CoalescedBatches,
		Splits:           st.Splits,
	}
	if enq, age, ok := s.in.QueueAge(); ok {
		out.QueueOldestEnqueued = enq
		out.QueueOldestAge = age
	}
	return out, true
}

// Tracer exposes the session's request tracer (see internal/trace):
// every ingest gets a request-scoped span tree, coalesced groups get a
// shared group trace the member requests link to, and slow or failed
// requests are tail-sampled into a bounded ring jocl-serve renders at
// GET /debug/requests. It returns nil when the session was built
// WithoutTelemetry or WithoutTracing.
func (s *Session) Tracer() *trace.Tracer { return s.s.Tracer() }

// WatchdogStatus is the ingest pipeline's liveness accounting: queue
// depth, oldest-submission age, stage activity, and stall state.
type WatchdogStatus = ingress.WatchdogStatus

// StallReport is the flight-recorder snapshot the pipeline watchdog
// captures at the moment it declares a stall: liveness state,
// cumulative counters, the traces in flight, and a goroutine dump.
type StallReport = ingress.StallReport

// Watchdog reports the ingest pipeline's liveness accounting (queue
// depth, oldest-submission age, stage activity, stall state), or
// ok=false without WithIngress.
func (s *Session) Watchdog() (WatchdogStatus, bool) {
	if s.in == nil {
		return WatchdogStatus{}, false
	}
	return s.in.Watchdog(), true
}

// LastStall returns the flight-recorder snapshot of the most recent
// pipeline stall the watchdog declared, or nil if the pipeline never
// stalled or WithIngress is off.
func (s *Session) LastStall() *StallReport {
	if s.in == nil {
		return nil
	}
	return s.in.LastStall()
}

// ContextWithTraceParent attaches an incoming W3C traceparent header
// ("00-<trace-id>-<span-id>-<flags>") to ctx so IngestContext adopts
// the caller's trace id instead of generating one. It reports whether
// the header parsed; on false the returned context is ctx unchanged
// (a fresh trace id is generated at ingest).
func ContextWithTraceParent(ctx context.Context, header string) (context.Context, bool) {
	sc, ok := trace.ParseTraceparent(header)
	if !ok {
		return ctx, false
	}
	return trace.ContextWith(ctx, sc), true
}

// Snapshot returns the current joint result over everything ingested so
// far, or nil before the first Ingest.
func (s *Session) Snapshot() *Result {
	r := s.s.Snapshot()
	if r == nil {
		return nil
	}
	return resultFromCore(r)
}

// Stats returns cumulative session counters.
func (s *Session) Stats() SessionStats {
	st := s.s.Stats()
	out := SessionStats{
		Batches:            st.Batches,
		TotalTriples:       st.TotalTriples,
		NounPhrases:        st.NPs,
		RelPhrases:         st.RPs,
		Refreshes:          st.Refreshes,
		CachedSignals:      st.CacheEntries,
		Retractions:        st.Retractions,
		DeadTriples:        st.DeadTriples,
		BlocksTouched:      st.BlocksTouched,
		BlocksServedWarm:   st.BlocksWarm,
		CutVariables:       st.CutVariables,
		PartitionRepairs:   st.Repairs,
		RepairBlocksReused: st.RepairBlocksReused,
		QueryEnabled:       st.QueryEnabled,
		QueryGeneration:    st.QueryGeneration,
		QueryLayers:        st.QueryLayers,
		QueryMaxResults:    st.QueryMaxResults,
		QueryIndexMillis:   st.IndexMS,
	}
	if ix := s.s.Query(); ix != nil {
		out.QueryRetained = ix.Retained()
	}
	if st.LastIngest != nil {
		li := ingestStats(*st.LastIngest)
		out.LastIngest = &li
	}
	return out
}

// Refresh forces the next Ingest to rebuild the frozen signal
// statistics over every triple seen so far and re-solve from scratch.
func (s *Session) Refresh() { s.s.Refresh() }

// millis converts a duration to fractional milliseconds exactly — the
// public stats structs report ms floats derived at this boundary only.
func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func ingestStats(st stream.IngestStats) IngestStats {
	out := IngestStats{
		Batch:              st.Batch,
		BatchTriples:       st.BatchTriples,
		TotalTriples:       st.TotalTriples,
		Refreshed:          st.Refreshed,
		Components:         st.Components,
		DirtyComponents:    st.DirtyComponents,
		CleanComponents:    st.CleanComponents,
		Sweeps:             st.SweepsMax,
		CutVariables:       st.CutVariables,
		OuterRounds:        st.OuterRounds,
		PartitionRepaired:  st.PartitionRepaired,
		RepairBlocksReused: st.RepairBlocksReused,
		RepairBlocksRecut:  st.RepairBlocksRecut,
		PartitionMillis:    millis(st.PartitionTime),
		ConstructMillis:    millis(st.ConstructTime),
		InferMillis:        millis(st.InferTime),
		TotalMillis:        millis(st.TotalTime),
		TraceID:            st.TraceID,
		Retracted:          st.Retracted,
		RemovedNPs:         st.RemovedNPs,
		RemovedRPs:         st.RemovedRPs,
	}
	if st.Index != nil {
		out.IndexMillis = st.Index.ApplyMS
		out.IndexKeys = st.Index.KeysWritten
		out.IndexFull = st.Index.Full
	}
	return out
}

// QueryGen identifies the read-path index generation an answer was
// served from: the generation id (ingests reflected), the triples it
// covers, and how many ingests it is behind (1 while an ingest is in
// flight — readers are never blocked, they are served the previous
// generation and told so).
type QueryGen struct {
	Generation int64
	Triples    int
	Behind     int
}

// Resolution is the alias-resolution answer for one surface form: the
// canonicalization cluster it belongs to (Canonical is the
// lexicographically smallest member, a stable cluster id) and the
// curated-KB target it links to ("" = out of KB).
type Resolution struct {
	Surface     string
	Canonical   string
	Target      string
	ClusterSize int
	Gen         QueryGen
}

// AliasSet lists the surface forms currently linked to one curated-KB
// identifier — the entity-lookup direction of the alias index.
type AliasSet struct {
	Target  string
	Aliases []string
	Gen     QueryGen
}

// ClusterView lists one canonicalization cluster's membership.
type ClusterView struct {
	Canonical string
	Members   []string
	Gen       QueryGen
}

// TripleSet enumerates triples from a canonical postings lookup.
// Total is the posting's full size; Truncated marks answers capped by
// the limit (or QueryIndexOptions.MaxResults).
type TripleSet struct {
	Triples   []Triple
	Total     int
	Truncated bool
	Gen       QueryGen
}

// All Query* methods answer from the read-path index maintained
// incrementally by Ingest (see internal/query): they are lock-free,
// safe for arbitrary concurrency with Ingest, and always see one
// consistent index generation. They return ok=false when the index is
// disabled (WithoutQueryIndex), no batch has been ingested yet, or the
// key is unknown.

// QueryOpt modifies one Query* call.
type QueryOpt func(*queryOptState)

type queryOptState struct{ asOf int64 }

// AsOf makes a Query* call answer from the retained index generation
// with the given id instead of the current one — exactly as it
// answered at that generation's publish time, retractions and later
// ingests invisible. The call answers ok=false when the generation has
// rolled out of the retention ring (QueryIndexOptions.
// RetainGenerations) or never existed; QueryRetained lists the ids
// currently answerable.
func AsOf(gen int64) QueryOpt {
	return func(o *queryOptState) { o.asOf = gen }
}

// queryOpts translates the public options into the internal index's.
func queryOpts(opts []QueryOpt) []query.Opt {
	if len(opts) == 0 {
		return nil
	}
	var st queryOptState
	for _, o := range opts {
		o(&st)
	}
	if st.asOf == 0 {
		return nil
	}
	return []query.Opt{query.AsOf(st.asOf)}
}

// QueryEntity resolves a noun-phrase surface form to its
// canonicalization cluster and entity link.
func (s *Session) QueryEntity(surface string, opts ...QueryOpt) (Resolution, bool) {
	ix := s.s.Query()
	if ix == nil {
		return Resolution{}, false
	}
	r, ok := ix.ResolveNP(surface, queryOpts(opts)...)
	return resolutionOf(r), ok
}

// QueryRelation resolves a relation-phrase surface form to its
// canonicalization cluster and relation link.
func (s *Session) QueryRelation(surface string, opts ...QueryOpt) (Resolution, bool) {
	ix := s.s.Query()
	if ix == nil {
		return Resolution{}, false
	}
	r, ok := ix.ResolveRP(surface, queryOpts(opts)...)
	return resolutionOf(r), ok
}

// QueryEntityAliases lists the noun phrases currently linked to a
// curated-KB entity id.
func (s *Session) QueryEntityAliases(entityID string, opts ...QueryOpt) (AliasSet, bool) {
	ix := s.s.Query()
	if ix == nil {
		return AliasSet{}, false
	}
	a, ok := ix.EntityAliases(entityID, queryOpts(opts)...)
	return aliasSetOf(a), ok
}

// QueryRelationAliases lists the relation phrases currently linked to
// a curated-KB relation id.
func (s *Session) QueryRelationAliases(relationID string, opts ...QueryOpt) (AliasSet, bool) {
	ix := s.s.Query()
	if ix == nil {
		return AliasSet{}, false
	}
	a, ok := ix.RelationAliases(relationID, queryOpts(opts)...)
	return aliasSetOf(a), ok
}

// QueryEntityCluster lists the canonicalization cluster containing a
// noun-phrase surface form.
func (s *Session) QueryEntityCluster(surface string, opts ...QueryOpt) (ClusterView, bool) {
	ix := s.s.Query()
	if ix == nil {
		return ClusterView{}, false
	}
	c, ok := ix.NPCluster(surface, queryOpts(opts)...)
	return clusterViewOf(c), ok
}

// QueryRelationCluster lists the canonicalization cluster containing a
// relation-phrase surface form.
func (s *Session) QueryRelationCluster(surface string, opts ...QueryOpt) (ClusterView, bool) {
	ix := s.s.Query()
	if ix == nil {
		return ClusterView{}, false
	}
	c, ok := ix.RPCluster(surface, queryOpts(opts)...)
	return clusterViewOf(c), ok
}

// QueryTriplesBySubject enumerates the triples whose subject belongs
// to the canonicalization cluster of the given noun phrase. limit <= 0
// takes the configured MaxResults.
func (s *Session) QueryTriplesBySubject(surface string, limit int, opts ...QueryOpt) (TripleSet, bool) {
	ix := s.s.Query()
	if ix == nil {
		return TripleSet{}, false
	}
	ts, ok := ix.TriplesBySubject(surface, limit, queryOpts(opts)...)
	return tripleSetOf(ts), ok
}

// QueryTriplesByRelation enumerates the triples whose predicate
// belongs to the canonicalization cluster of the given relation
// phrase.
func (s *Session) QueryTriplesByRelation(surface string, limit int, opts ...QueryOpt) (TripleSet, bool) {
	ix := s.s.Query()
	if ix == nil {
		return TripleSet{}, false
	}
	ts, ok := ix.TriplesByRelation(surface, limit, queryOpts(opts)...)
	return tripleSetOf(ts), ok
}

// QueryGeneration reports the current index generation, or ok=false
// when the index is disabled or nothing has been ingested.
func (s *Session) QueryGeneration() (QueryGen, bool) {
	ix := s.s.Query()
	if ix == nil {
		return QueryGen{}, false
	}
	gi, ok := ix.Generation()
	if !ok {
		return QueryGen{}, false
	}
	return queryGenOf(gi), true
}

// QueryRetained lists the index generation ids currently answerable
// via AsOf, ascending with the current generation last (nil when the
// index is disabled or nothing has been ingested).
func (s *Session) QueryRetained() []int64 {
	ix := s.s.Query()
	if ix == nil {
		return nil
	}
	return ix.Retained()
}

func queryGenOf(gi query.GenInfo) QueryGen {
	return QueryGen{Generation: gi.Generation, Triples: gi.Triples, Behind: int(gi.Behind)}
}

func resolutionOf(r query.Resolution) Resolution {
	return Resolution{
		Surface:     r.Surface,
		Canonical:   r.Canonical,
		Target:      r.Target,
		ClusterSize: r.ClusterSize,
		Gen:         queryGenOf(r.Gen),
	}
}

func aliasSetOf(a query.AliasesAnswer) AliasSet {
	return AliasSet{
		Target:  a.Target,
		Aliases: append([]string(nil), a.Aliases...),
		Gen:     queryGenOf(a.Gen),
	}
}

func clusterViewOf(c query.ClusterAnswer) ClusterView {
	return ClusterView{
		Canonical: c.Canonical,
		Members:   append([]string(nil), c.Members...),
		Gen:       queryGenOf(c.Gen),
	}
}

func tripleSetOf(ts query.TriplesAnswer) TripleSet {
	out := TripleSet{Total: ts.Total, Truncated: ts.Truncated, Gen: queryGenOf(ts.Gen)}
	out.Triples = make([]Triple, len(ts.Triples))
	for i, t := range ts.Triples {
		out.Triples[i] = Triple{Subject: t.Subj, Predicate: t.Pred, Object: t.Obj}
	}
	return out
}
