package jocl

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/okb"
	"repro/internal/ppdb"
	"repro/internal/stream"
)

// Session is the streaming counterpart of Pipeline: it accepts triple
// batches over time, maintains the factor graph incrementally, and
// re-runs belief propagation only on the connected components a batch
// touched, serving the rest from warm-started message state (see
// internal/stream for the mechanics). Use it when extractions arrive
// continuously — a news feed, a crawler — and rebuilding the whole
// pipeline per batch is too slow.
//
// Sessions do not learn weights online: learn them offline with a
// labeled Pipeline.Run, then seed them via WithWeights.
type Session struct {
	s *stream.Session
}

// IngestStats reports what one ingested batch cost and how much of the
// graph it reused.
type IngestStats struct {
	// Batch is the 1-based ingest sequence number; Refreshed marks
	// batches that rebuilt the frozen signal statistics (first batch, or
	// WithRefreshEvery reached) and therefore re-solved everything.
	Batch        int
	BatchTriples int
	TotalTriples int
	Refreshed    bool

	// Components counts the factor graph's partition blocks (exact
	// connected components, or hub-cut blocks under WithSegmentation);
	// DirtyComponents of them were touched by the batch and re-ran
	// belief propagation, CleanComponents were served from cached
	// message state.
	Components      int
	DirtyComponents int
	CleanComponents int
	// Sweeps is the slowest dirty block's sweep count (dirty blocks run
	// in parallel).
	Sweeps int
	// CutVariables counts the hub variables cut out of the blocks and
	// OuterRounds the frozen-boundary rounds this ingest ran (both zero
	// without WithSegmentation).
	CutVariables int
	OuterRounds  int
	// PartitionRepaired marks ingests that repaired the previous
	// build's partition (carrying its cut set and block identities
	// forward) instead of re-deriving it; RepairBlocksReused /
	// RepairBlocksRecut then count the blocks adopted verbatim vs
	// re-cut. PartitionMillis is the wall-clock cost of deriving or
	// repairing this build's partition.
	PartitionRepaired  bool
	RepairBlocksReused int
	RepairBlocksRecut  int
	PartitionMillis    float64

	// ConstructMillis and InferMillis split the batch's wall-clock cost
	// between graph (re)construction and inference.
	ConstructMillis float64
	InferMillis     float64
}

// SessionStats is a session's cumulative view.
type SessionStats struct {
	Batches       int
	TotalTriples  int
	NounPhrases   int
	RelPhrases    int
	Refreshes     int
	CachedSignals int
	// BlocksTouched / BlocksServedWarm total, across all ingests, the
	// partition blocks that re-ran belief propagation and the blocks
	// served from cached messages; CutVariables is the current build's
	// hub-cut count (zero without WithSegmentation).
	BlocksTouched    int
	BlocksServedWarm int
	CutVariables     int
	// PartitionRepairs counts ingests that repaired the previous
	// build's partition instead of re-deriving it, and
	// RepairBlocksReused totals the blocks those repairs carried over
	// verbatim (both zero without WithSegmentation).
	PartitionRepairs   int
	RepairBlocksReused int
	LastIngest         *IngestStats
}

// NewSession opens a streaming session against the KB. The same
// options as New apply; WithCorpus supplies the embedding training
// text up front (embeddings are part of the frozen signal state, like
// the KB itself).
func NewSession(kb *KB, opts ...Option) (*Session, error) {
	if kb == nil {
		return nil, fmt.Errorf("jocl: nil KB")
	}
	o := &options{cfg: core.DefaultConfig(), embedDim: 32}
	for _, opt := range opts {
		opt(o)
	}
	emb := embedding.Train(o.corpus, embedding.Config{Dim: o.embedDim, Seed: 1})
	pb := ppdb.NewBuilder()
	for _, g := range o.paraphrases {
		pb.AddGroup(g...)
	}
	return &Session{s: stream.New(kb.store, emb, pb.Build(), stream.Config{
		Core:         o.cfg,
		Workers:      o.workers,
		RefreshEvery: o.refreshEvery,
	})}, nil
}

// Ingest folds a batch of triples into the session and re-infers
// incrementally.
func (s *Session) Ingest(triples []Triple) (IngestStats, error) {
	ts := make([]okb.Triple, len(triples))
	for i, t := range triples {
		ts[i] = okb.Triple{Subj: t.Subject, Pred: t.Predicate, Obj: t.Object}
	}
	st, err := s.s.Ingest(ts)
	if err != nil {
		return IngestStats{}, err
	}
	return ingestStats(st), nil
}

// Snapshot returns the current joint result over everything ingested so
// far, or nil before the first Ingest.
func (s *Session) Snapshot() *Result {
	r := s.s.Snapshot()
	if r == nil {
		return nil
	}
	return resultFromCore(r)
}

// Stats returns cumulative session counters.
func (s *Session) Stats() SessionStats {
	st := s.s.Stats()
	out := SessionStats{
		Batches:            st.Batches,
		TotalTriples:       st.TotalTriples,
		NounPhrases:        st.NPs,
		RelPhrases:         st.RPs,
		Refreshes:          st.Refreshes,
		CachedSignals:      st.CacheEntries,
		BlocksTouched:      st.BlocksTouched,
		BlocksServedWarm:   st.BlocksWarm,
		CutVariables:       st.CutVariables,
		PartitionRepairs:   st.Repairs,
		RepairBlocksReused: st.RepairBlocksReused,
	}
	if st.LastIngest != nil {
		li := ingestStats(*st.LastIngest)
		out.LastIngest = &li
	}
	return out
}

// Refresh forces the next Ingest to rebuild the frozen signal
// statistics over every triple seen so far and re-solve from scratch.
func (s *Session) Refresh() { s.s.Refresh() }

func ingestStats(st stream.IngestStats) IngestStats {
	return IngestStats{
		Batch:              st.Batch,
		BatchTriples:       st.BatchTriples,
		TotalTriples:       st.TotalTriples,
		Refreshed:          st.Refreshed,
		Components:         st.Components,
		DirtyComponents:    st.DirtyComponents,
		CleanComponents:    st.CleanComponents,
		Sweeps:             st.SweepsMax,
		CutVariables:       st.CutVariables,
		OuterRounds:        st.OuterRounds,
		PartitionRepaired:  st.PartitionRepaired,
		RepairBlocksReused: st.RepairBlocksReused,
		RepairBlocksRecut:  st.RepairBlocksRecut,
		PartitionMillis:    st.PartitionMS,
		ConstructMillis:    st.ConstructMS,
		InferMillis:        st.InferMS,
	}
}
