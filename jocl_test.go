package jocl

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// runningExample builds the paper's Figure 1 running example through
// the public API.
func runningExample(t *testing.T) (*Pipeline, []Triple) {
	t.Helper()
	entities := []Entity{
		{ID: "e1", Name: "maryland", Aliases: []string{"Maryland"}, Types: []string{"location"}},
		{ID: "e2", Name: "universitas 21", Aliases: []string{"U21"}, Types: []string{"organization"}},
		{ID: "e3", Name: "university of virginia", Aliases: []string{"UVA"}, Types: []string{"organization"}},
		{ID: "e4", Name: "university of maryland", Aliases: []string{"UMD"}, Types: []string{"organization"}},
	}
	relations := []Relation{
		{ID: "r1", Name: "location.contained_by", Category: "location",
			Aliases: []string{"locate in", "located in"}},
		{ID: "r2", Name: "organizations_founded", Category: "membership",
			Aliases: []string{"be a member of", "member of"}},
	}
	facts := []Fact{
		{Subject: "e4", Relation: "r1", Object: "e1"},
		{Subject: "e4", Relation: "r2", Object: "e2"},
		{Subject: "e3", Relation: "r2", Object: "e2"},
	}
	kb, err := NewKB(entities, relations, facts)
	if err != nil {
		t.Fatal(err)
	}
	kb.AddAnchor("Maryland", "e1", 90)
	kb.AddAnchor("UMD", "e4", 40)
	kb.AddAnchor("University of Maryland", "e4", 60)
	kb.AddAnchor("U21", "e2", 20)

	triples := []Triple{
		{Subject: "University of Maryland", Predicate: "locate in", Object: "Maryland"},
		{Subject: "UMD", Predicate: "be a member of", Object: "Universitas 21"},
		{Subject: "University of Virginia", Predicate: "be an early member of", Object: "U21"},
	}
	corpus := [][]string{
		{"the", "university", "of", "maryland", "campus", "sits", "near", "college", "park"},
		{"umd", "campus", "sits", "near", "college", "park"},
		{"universitas", "21", "network", "of", "universities", "meets", "annually"},
		{"u21", "network", "of", "universities", "meets", "annually"},
		{"university", "of", "virginia", "charlottesville", "grounds", "historic"},
		{"uva", "charlottesville", "grounds", "historic"},
	}
	p, err := New(triples, kb,
		WithCorpus(corpus),
		WithParaphrases([][]string{
			{"Universitas 21", "U21"},
			{"be a member of", "be an early member of"},
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return p, triples
}

func TestRunningExampleJoint(t *testing.T) {
	p, _ := runningExample(t)
	res, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1 linking: UMD and University of Maryland -> e4.
	if got := res.EntityLinks["UMD"]; got != "e4" {
		t.Errorf("UMD linked to %q, want e4", got)
	}
	if got := res.EntityLinks["University of Maryland"]; got != "e4" {
		t.Errorf("University of Maryland linked to %q, want e4", got)
	}
	if got := res.EntityLinks["U21"]; got != "e2" {
		t.Errorf("U21 linked to %q, want e2", got)
	}
	// Figure 1 canonicalization: UMD and University of Maryland in one
	// group; Universitas 21 and U21 in one group.
	if !sameGroup(res.NPGroups, "UMD", "University of Maryland") {
		t.Errorf("UMD and University of Maryland should share a group: %v", res.NPGroups)
	}
	if !sameGroup(res.NPGroups, "U21", "Universitas 21") {
		t.Errorf("U21 and Universitas 21 should share a group: %v", res.NPGroups)
	}
	// RP canonicalization: the two member-of variants merge.
	if !sameGroup(res.RPGroups, "be a member of", "be an early member of") {
		t.Errorf("member-of variants should merge: %v", res.RPGroups)
	}
	// And they link to r2.
	if got := res.RelationLinks["be a member of"]; got != "r2" {
		t.Errorf("be a member of linked to %q, want r2", got)
	}
	if res.Stats.Factors == 0 || res.Stats.Sweeps == 0 {
		t.Errorf("missing stats: %+v", res.Stats)
	}
}

func sameGroup(groups [][]string, a, b string) bool {
	for _, g := range groups {
		hasA, hasB := false, false
		for _, p := range g {
			if p == a {
				hasA = true
			}
			if p == b {
				hasB = true
			}
		}
		if hasA && hasB {
			return true
		}
	}
	return false
}

func TestPipelineVariants(t *testing.T) {
	p, _ := runningExample(t)
	res, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = res

	// Canonicalization-only.
	pc, _ := runningExample(t)
	_ = pc
	kbLess, err := New([]Triple{{Subject: "a", Predicate: "r", Object: "b"}}, nil)
	if err == nil || kbLess != nil {
		t.Error("nil KB must be rejected")
	}
}

func TestOptionsCompose(t *testing.T) {
	b, err := GenerateBenchmark("reverb45k", 0.005)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]Option{
		{WithoutLinking()},
		{WithoutCanonicalization()},
		{WithoutInteraction()},
		{WithFeatureProfile("single")},
		{WithMaxCandidates(3)},
	} {
		p, err := b.Pipeline(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(b.ValidationLabels()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenerateBenchmark(t *testing.T) {
	b, err := GenerateBenchmark("reverb45k", 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "ReVerb45K" {
		t.Errorf("Name = %q", b.Name())
	}
	if len(b.Triples) == 0 || len(b.GoldEntityLinks) == 0 {
		t.Fatal("benchmark incomplete")
	}
	p, err := b.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(b.ValidationLabels())
	if err != nil {
		t.Fatal(err)
	}
	acc := LinkingAccuracy(res.EntityLinks, b.TestGold(b.GoldEntityLinks, true))
	if acc < 0.5 {
		t.Errorf("entity accuracy %.3f too low", acc)
	}
	sc := EvaluateClustering(res.NPGroups, b.TestGold(b.GoldNPGroups, true))
	if sc.AverageF1 <= 0 || sc.AverageF1 > 1 {
		t.Errorf("avg F1 out of range: %v", sc.AverageF1)
	}
	if _, err := GenerateBenchmark("bogus", 1); err == nil {
		t.Error("unknown profile must error")
	}
}

func TestWeightsTransfer(t *testing.T) {
	b, err := GenerateBenchmark("reverb45k", 0.005)
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(b.ValidationLabels()); err != nil {
		t.Fatal(err)
	}
	w := p.Weights()
	if len(w) == 0 {
		t.Fatal("no weights exported")
	}
	nyt, err := GenerateBenchmark("nytimes2018", 0.005)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := nyt.Pipeline(WithWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestKBAccessors(t *testing.T) {
	kb, err := NewKB(
		[]Entity{{ID: "e1", Name: "alpha"}, {ID: "e2", Name: "beta"}},
		[]Relation{{ID: "r1", Name: "rel", Category: "c"}},
		[]Fact{{Subject: "e1", Relation: "r1", Object: "e2"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !kb.HasFact("e1", "r1", "e2") || kb.HasFact("e2", "r1", "e1") {
		t.Error("HasFact wrong")
	}
	if kb.EntityName("e1") != "alpha" || kb.EntityName("zz") != "" {
		t.Error("EntityName wrong")
	}
	if kb.RelationName("r1") != "rel" || kb.RelationName("zz") != "" {
		t.Error("RelationName wrong")
	}
}

func TestReadTriplesTSV(t *testing.T) {
	in := "0\tA\tloves\tB\n1\tC\thates\tD\n"
	ts, err := ReadTriplesTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].Subject != "A" || ts[1].Object != "D" {
		t.Errorf("parsed %+v", ts)
	}
}

func TestSessionQueryAPI(t *testing.T) {
	bench, err := GenerateBenchmark("reverb45k", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bench.Session()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sess.QueryGeneration(); ok {
		t.Fatal("generation reported before first ingest")
	}
	n := len(bench.Triples)
	if _, err := sess.Ingest(bench.Triples[:n/2]); err != nil {
		t.Fatal(err)
	}

	subject := bench.Triples[0].Subject
	r, ok := sess.QueryEntity(subject)
	if !ok || r.Canonical == "" || r.ClusterSize < 1 || r.Gen.Generation != 1 {
		t.Fatalf("QueryEntity(%q) = %+v (ok=%v)", subject, r, ok)
	}
	c, ok := sess.QueryEntityCluster(subject)
	if !ok || c.Canonical != r.Canonical {
		t.Fatalf("QueryEntityCluster(%q) = %+v (ok=%v)", subject, c, ok)
	}
	found := false
	for _, m := range c.Members {
		if m == subject {
			found = true
		}
	}
	if !found {
		t.Fatalf("cluster %v misses its own surface %q", c.Members, subject)
	}
	ts, ok := sess.QueryTriplesBySubject(subject, 5)
	if !ok || ts.Total < 1 || len(ts.Triples) < 1 {
		t.Fatalf("QueryTriplesBySubject(%q) = %+v (ok=%v)", subject, ts, ok)
	}
	if r.Target != "" {
		a, ok := sess.QueryEntityAliases(r.Target)
		if !ok || len(a.Aliases) == 0 {
			t.Fatalf("QueryEntityAliases(%q) = %+v (ok=%v)", r.Target, a, ok)
		}
	}
	rp := bench.Triples[0].Predicate
	if rr, ok := sess.QueryRelation(rp); !ok || rr.Canonical == "" {
		t.Fatalf("QueryRelation(%q) = %+v (ok=%v)", rp, rr, ok)
	}

	// A second ingest advances the generation; per-ingest stats carry
	// the index maintenance cost.
	st, err := sess.Ingest(bench.Triples[n/2:])
	if err != nil {
		t.Fatal(err)
	}
	if st.IndexKeys == 0 {
		t.Errorf("second ingest reported no index maintenance: %+v", st)
	}
	gen, ok := sess.QueryGeneration()
	if !ok || gen.Generation != 2 || gen.Behind != 0 {
		t.Fatalf("generation after 2 ingests = %+v (ok=%v)", gen, ok)
	}
	if ss := sess.Stats(); !ss.QueryEnabled || ss.QueryGeneration != 2 {
		t.Errorf("session stats miss query index: %+v", ss)
	}

	// Disabled sessions answer ok=false everywhere.
	off, err := bench.Session(WithoutQueryIndex())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := off.Ingest(bench.Triples[:4]); err != nil {
		t.Fatal(err)
	}
	if _, ok := off.QueryEntity(subject); ok {
		t.Error("disabled query index answered")
	}
	if ss := off.Stats(); ss.QueryEnabled {
		t.Errorf("disabled session claims query enabled: %+v", ss)
	}
}

func TestSessionCheckpointRestore(t *testing.T) {
	kb, err := NewKB(
		[]Entity{
			{ID: "e1", Name: "alphacorp", Aliases: []string{"alphacorp"}},
			{ID: "e2", Name: "betalabs", Aliases: []string{"betalabs"}},
			{ID: "e3", Name: "gammaworks", Aliases: []string{"gammaworks"}},
		},
		[]Relation{{ID: "r1", Name: "acquire", Aliases: []string{"acquire"}}},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	corpus := [][]string{
		{"alphacorp", "acquires", "betalabs", "today"},
		{"gammaworks", "hires", "engineers"},
	}
	opts := []Option{WithCorpus(corpus)}

	sess, err := NewSession(kb, opts...)
	if err != nil {
		t.Fatal(err)
	}
	control, err := NewSession(kb, opts...)
	if err != nil {
		t.Fatal(err)
	}
	first := []Triple{
		{Subject: "alphacorp", Predicate: "acquire", Object: "betalabs"},
		{Subject: "gammaworks", Predicate: "acquire", Object: "betalabs"},
	}
	if _, err := sess.Ingest(first); err != nil {
		t.Fatal(err)
	}
	if _, err := control.Ingest(first); err != nil {
		t.Fatal(err)
	}

	// Stream checkpoint plus the atomic file variant.
	var buf bytes.Buffer
	if err := sess.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), CheckpointFileName)
	info, err := sess.CheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Batches != 1 || info.Triples != 2 || info.Bytes == 0 {
		t.Fatalf("checkpoint info = %+v", info)
	}

	fromStream, err := RestoreSession(&buf, kb, opts...)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := RestoreSessionFile(path, kb, opts...)
	if err != nil {
		t.Fatal(err)
	}
	next := []Triple{{Subject: "alphacorp", Predicate: "acquire", Object: "gammaworks"}}
	for _, s := range []*Session{fromStream, fromFile, control} {
		if _, err := s.Ingest(next); err != nil {
			t.Fatal(err)
		}
	}
	want := control.Snapshot()
	for i, s := range []*Session{fromStream, fromFile} {
		got := s.Snapshot()
		if !reflect.DeepEqual(got.NPGroups, want.NPGroups) || !reflect.DeepEqual(got.EntityLinks, want.EntityLinks) {
			t.Errorf("restored session %d diverges from uninterrupted run", i)
		}
		st := s.Stats()
		if st.Batches != 2 || st.TotalTriples != 3 {
			t.Errorf("restored session %d counters: %+v", i, st)
		}
		gen, ok := s.QueryGeneration()
		if !ok || gen.Generation != 2 || gen.Behind != 0 {
			t.Errorf("restored session %d generation: %+v (ok=%v)", i, gen, ok)
		}
	}

	// Restores guard their inputs.
	if _, err := RestoreSessionFile(path, nil); err == nil {
		t.Error("nil KB accepted")
	}
	if _, err := RestoreSessionFile(filepath.Join(t.TempDir(), "missing"), kb); err == nil {
		t.Error("missing file accepted")
	}
}
