package query

import (
	"fmt"

	"repro/internal/okb"
)

// GenerationSnapshot is one retained index generation flattened into
// plain maps — the serializable form the checkpoint layer persists so
// as-of reads survive a restart bitwise-intact. Triples is the prefix
// length of the accumulated triple slice the generation covers; the
// slice itself rides in the checkpoint once, not per generation.
type GenerationSnapshot struct {
	ID      int64
	Triples int

	NPInfo map[string]PhraseInfo
	RPInfo map[string]PhraseInfo

	NPClusters map[string][]string
	RPClusters map[string][]string

	EntAliases map[string][]string
	RelAliases map[string][]string

	SubjPost map[string][]int
	RelPost  map[string][]int

	NPClusterPost map[string][]int
	RPClusterPost map[string][]int

	ReassignedNPs []string
	ReassignedRPs []string
}

// RetainedSnapshot flattens every retained generation for
// checkpointing, oldest first (the last entry is the head). The
// flattening copies each generation's live keyspace, so call it off
// the ingest hot path — the checkpoint capture already quiesces.
func (ix *Index) RetainedSnapshot() []GenerationSnapshot {
	ring := ix.ring.Load()
	if ring == nil {
		return nil
	}
	out := make([]GenerationSnapshot, len(*ring))
	for i, g := range *ring {
		out[i] = GenerationSnapshot{
			ID:            g.id,
			Triples:       len(g.triples),
			NPInfo:        flatMap(g.npInfo),
			RPInfo:        flatMap(g.rpInfo),
			NPClusters:    flatMap(g.npClusters),
			RPClusters:    flatMap(g.rpClusters),
			EntAliases:    flatMap(g.entAliases),
			RelAliases:    flatMap(g.relAliases),
			SubjPost:      flatMap(g.subjPost),
			RelPost:       flatMap(g.relPost),
			NPClusterPost: flatMap(g.npClusterPost),
			RPClusterPost: flatMap(g.rpClusterPost),
			ReassignedNPs: g.reassignedNPs,
			ReassignedRPs: g.reassignedRPs,
		}
	}
	return out
}

// RestoreRetained reinstates a checkpointed retention ring verbatim:
// the last snapshot becomes the head generation and Behind accounting
// resumes at zero. triples is the restored accumulated slice; each
// generation aliases its own prefix of it, exactly as it did live.
// Like Restore, this must only be called by the single writer before
// the index starts serving.
func (ix *Index) RestoreRetained(snaps []GenerationSnapshot, triples []okb.Triple) error {
	if len(snaps) == 0 {
		return fmt.Errorf("query: empty retention ring")
	}
	ring := make([]*generation, len(snaps))
	var lastID int64
	for i, sn := range snaps {
		if sn.ID <= lastID {
			return fmt.Errorf("query: retention ring ids not ascending (%d after %d)", sn.ID, lastID)
		}
		if sn.Triples < 0 || sn.Triples > len(triples) {
			return fmt.Errorf("query: generation %d covers %d triples, have %d", sn.ID, sn.Triples, len(triples))
		}
		lastID = sn.ID
		ring[i] = &generation{
			id:            sn.ID,
			triples:       triples[:sn.Triples:sn.Triples],
			npInfo:        layerOf(sn.NPInfo),
			rpInfo:        layerOf(sn.RPInfo),
			npClusters:    layerOf(sn.NPClusters),
			rpClusters:    layerOf(sn.RPClusters),
			entAliases:    layerOf(sn.EntAliases),
			relAliases:    layerOf(sn.RelAliases),
			subjPost:      layerOf(sn.SubjPost),
			relPost:       layerOf(sn.RelPost),
			npClusterPost: layerOf(sn.NPClusterPost),
			rpClusterPost: layerOf(sn.RPClusterPost),
			reassignedNPs: sn.ReassignedNPs,
			reassignedRPs: sn.ReassignedRPs,
		}
	}
	if n := ix.cfg.RetainGenerations; len(ring) > n {
		ring = ring[len(ring)-n:]
	}
	head := ring[len(ring)-1]
	ix.gen.Store(head)
	ix.ring.Store(&ring)
	ix.begun.Store(head.id)
	ix.applied.Store(head.id)
	return nil
}

// flatMap collapses a layered map into a plain live-keys-only map.
func flatMap[V any](l *layered[V]) map[string]V {
	fl := l.flatten()
	out := make(map[string]V, len(fl.m))
	for k, e := range fl.m {
		out[k] = e.val
	}
	return out
}

// layerOf rebuilds a single-layer map from its flattened form.
func layerOf[V any](m map[string]V) *layered[V] {
	l := newLayer[V](nil)
	for k, v := range m {
		l.set(k, v)
	}
	return l
}
