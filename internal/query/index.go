package query

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/okb"
	"repro/internal/telemetry"
)

// Config tunes an Index. The zero value is usable; Enable exists for
// the serving layers, which treat the whole index as optional.
type Config struct {
	// Enable switches index maintenance on in the layers that embed a
	// Config (stream.Config, jocl options, jocl-serve flags). The query
	// package itself ignores it: calling New always yields a live index.
	Enable bool
	// MaxLayers bounds the copy-on-write overlay chain: when a delta
	// apply would stack more layers than this, the chain is flattened
	// into one base layer (an O(keyspace) copy, amortized over
	// MaxLayers delta-cheap ingests). Default 4 — deep chains tax every
	// reader lookup and every copy-on-write rebuild, and the flatten is
	// a fraction of a full rebuild's cost.
	MaxLayers int
	// MaxResults hard-caps enumeration answers (triples per query),
	// whatever limit the caller asks for. Default 1000.
	MaxResults int
	// RetainGenerations bounds the ring of published generations kept
	// live for as-of reads (AsOf): the current generation plus its
	// RetainGenerations-1 predecessors answer queries exactly as they
	// did at publish time. Default 4; the minimum is 1 (the current
	// generation is always retained).
	RetainGenerations int
}

func (c *Config) defaults() {
	if c.MaxLayers <= 0 {
		c.MaxLayers = 4
	}
	if c.MaxResults <= 0 {
		c.MaxResults = 1000
	}
	if c.RetainGenerations <= 0 {
		c.RetainGenerations = 4
	}
}

// Tombstones carries an ingest's retraction set into Apply. Triple
// positions are never reused — a retracted triple's id stays valid in
// every retained generation that predates the retraction — so the sets
// here are pure additions to the dead set, never moves.
type Tombstones struct {
	// Dead lists the triple ids newly tombstoned since the previous
	// generation, ascending. Empty for append-only ingests.
	Dead []int
	// AllDead lists every dead id over the accumulated triples,
	// ascending (a superset of Dead). Full rebuilds consult it; delta
	// applies only need Dead.
	AllDead []int
}

// PhraseInfo is one phrase's canonical-KB view: the canonicalization
// cluster it belongs to and the curated-KB target it links to.
type PhraseInfo struct {
	// Canonical identifies the phrase's canonicalization cluster: the
	// lexicographically smallest member surface, a deterministic choice
	// that survives rebuilds.
	Canonical string
	// Target is the linked curated-KB identifier ("" = NIL or linking
	// disabled).
	Target string
}

// generation is one immutable snapshot of every maintained index. A
// generation is built privately by the single ingest writer — full on
// cold/refresh builds, as a copy-on-write delta over its parent
// otherwise — and published with one atomic pointer swap; readers
// holding it never observe later mutations.
type generation struct {
	id int64
	// triples aliases the session's accumulated slice (committed
	// slices are never mutated below their length, so sharing is
	// safe and copy-free). A triple's position is its canonical id —
	// postings store positions, and answers stamp ID on the copy they
	// return.
	triples []okb.Triple

	npInfo *layered[PhraseInfo] // NP surface -> cluster + entity link
	rpInfo *layered[PhraseInfo] // RP surface -> cluster + relation link

	npClusters *layered[[]string] // NP cluster id -> sorted members
	rpClusters *layered[[]string]

	entAliases *layered[[]string] // CKB entity id -> sorted linked NP surfaces
	relAliases *layered[[]string] // CKB relation id -> sorted linked RP surfaces

	subjPost *layered[[]int] // NP surface -> ascending ids of triples with that subject
	relPost  *layered[[]int] // RP surface -> ascending ids of triples with that predicate

	npClusterPost *layered[[]int] // NP cluster id -> ascending ids of triples whose subject is any member
	rpClusterPost *layered[[]int] // RP cluster id -> ascending ids of triples whose predicate is any member

	// The conflict-resolution relabels applied in this generation's
	// build; the next delta must treat them as touched (an
	// un-re-applied relabel reverts silently — see core.CanonDelta).
	reassignedNPs []string
	reassignedRPs []string
}

// Index maintains materialized canonical-KB views — alias resolution,
// cluster membership, entity/relation alias sets, and triple postings
// by canonical subject and relation — incrementally as each ingest
// lands. Apply is called by the single ingest writer (the stream
// session, under its ingest lock); all Query methods are lock-free:
// they load the current generation with one atomic pointer read and
// answer entirely from that immutable snapshot, so readers never block
// behind an in-flight ingest and always see a consistent generation.
type Index struct {
	cfg     Config
	gen     atomic.Pointer[generation]
	begun   atomic.Int64 // ingests begun (staleness numerator)
	applied atomic.Int64 // generations published
	// ring holds the retained generations, ascending by id with the
	// current generation last (see Config.RetainGenerations). Published
	// slices are immutable: Apply swaps in a fresh copy, so readers
	// iterating a loaded ring never observe later publications.
	ring atomic.Pointer[[]*generation]
	// ops counts reads by operation when the index is instrumented
	// (Instrument). Set once before the index starts serving and read
	// lock-free by every Query method; nil means uninstrumented.
	ops *telemetry.CounterVec
	// asof counts as-of generation lookups by result ("hit" when the
	// requested generation is retained, "miss" when it has rolled out
	// of the ring or never existed).
	asof *telemetry.CounterVec
}

// New returns an empty index (no generation yet: queries answer
// ok=false until the first Apply).
func New(cfg Config) *Index {
	cfg.defaults()
	return &Index{cfg: cfg}
}

// Instrument registers the index's per-operation read counters
// (jocl_query_requests_total{op}) on reg. It must be called before the
// index starts serving readers — typically right after New — because
// the hook is installed without synchronization. A nil reg is a no-op.
func (ix *Index) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	ix.ops = reg.CounterVec("jocl_query_requests_total",
		"Query-index reads served, by operation.", "op")
	ix.asof = reg.CounterVec("jocl_query_asof_requests_total",
		"As-of generation lookups, by result (hit = generation retained, miss = rolled out of the ring or unknown).", "result")
	reg.GaugeFunc("jocl_query_retained_generations",
		"Generations currently retained for as-of reads (including the head).",
		func() float64 {
			if r := ix.ring.Load(); r != nil {
				return float64(len(*r))
			}
			return 0
		})
}

// observe counts one read against the instrumented op counter.
func (ix *Index) observe(op string) {
	if ix.ops != nil {
		ix.ops.With(op).Inc()
	}
}

// Behind reports how many begun ingests the published generation does
// not yet reflect (0 = current) — the staleness gauge the telemetry
// layer exports.
func (ix *Index) Behind() int64 {
	g := ix.gen.Load()
	if g == nil {
		return ix.begun.Load()
	}
	return ix.begun.Load() - g.id
}

// Begin marks the start of an ingest whose output will later be
// Applied; the gap between begun and applied ingests is the staleness
// (GenInfo.Behind) reported with every answer.
func (ix *Index) Begin() { ix.begun.Add(1) }

// Abort undoes a Begin whose ingest failed before Apply.
func (ix *Index) Abort() { ix.begun.Add(-1) }

// ApplyStats reports what one index maintenance pass cost.
type ApplyStats struct {
	// Generation is the id the pass published.
	Generation int64 `json:"generation"`
	// Full marks from-scratch rebuilds (first build, epoch refresh, or
	// a nil/Full delta).
	Full bool `json:"full,omitempty"`
	// TouchedNPs / TouchedRPs count the delta's phrase seeds;
	// KeysWritten the index keys the pass rewrote or tombstoned across
	// all maps (the delta-wise cost driver).
	TouchedNPs  int `json:"touched_nps"`
	TouchedRPs  int `json:"touched_rps"`
	KeysWritten int `json:"keys_written"`
	// Retracted counts the triple ids this pass tombstoned out of the
	// postings; RemovedPhrases the surfaces deleted outright (their
	// last live mention went with the retraction).
	Retracted      int `json:"retracted,omitempty"`
	RemovedPhrases int `json:"removed_phrases,omitempty"`
	// Compacted marks passes that flattened the overlay chain
	// (amortized O(keyspace); see Config.MaxLayers).
	Compacted bool `json:"compacted,omitempty"`
	// ApplyMS is the pass's wall-clock cost.
	ApplyMS float64 `json:"apply_ms"`
}

// Apply folds one ingest's result into the index and publishes the new
// generation. triples must be the full accumulated triple slice (the
// suffix beyond the previous generation is the new batch); it is
// aliased, not copied, so the caller must never mutate elements below
// its length after the call — the stream session's capped-append
// growth guarantees this, and retractions tombstone positions without
// ever rewriting them, so retained generations keep dereferencing the
// shared array safely. tombs carries the ingest's retraction set (zero
// for append-only ingests). syms is the OKB's symbol table: the delta
// identifies phrases by symbol id (the inference stack is numeric end
// to end), and the index — the read API boundary — is where ids turn
// back into surfaces. Apply is NOT safe for concurrent use with
// itself — the stream session's ingest lock serializes it — but is
// safe concurrent with any number of Query readers.
func (ix *Index) Apply(res *core.Result, delta *core.CanonDelta, triples []okb.Triple, tombs Tombstones, syms *okb.SymbolTable) ApplyStats {
	t0 := time.Now()
	prev := ix.gen.Load()
	id := ix.applied.Load() + 1
	st := ApplyStats{Generation: id, Retracted: len(tombs.Dead)}
	rd := resolveDelta(delta, syms)
	if rd != nil {
		st.RemovedPhrases = len(rd.removedNPs) + len(rd.removedRPs)
	}
	var g *generation
	if prev == nil || rd == nil || rd.full {
		g = buildFull(res, rd, triples, tombs.AllDead, id)
		st.Full = true
		st.KeysWritten = len(g.npInfo.m) + len(g.rpInfo.m) +
			len(g.npClusters.m) + len(g.rpClusters.m) +
			len(g.entAliases.m) + len(g.relAliases.m) +
			len(g.subjPost.m) + len(g.relPost.m) +
			len(g.npClusterPost.m) + len(g.rpClusterPost.m)
	} else {
		st.TouchedNPs = len(rd.touchedNPs)
		st.TouchedRPs = len(rd.touchedRPs)
		g = prev.applyDelta(res, rd, triples, tombs.Dead, id, &st.KeysWritten)
		if g.npInfo.depth >= ix.cfg.MaxLayers {
			g = g.compact()
			st.Compacted = true
		}
	}
	ix.publish(g)
	ix.applied.Store(id)
	st.ApplyMS = float64(time.Since(t0).Microseconds()) / 1000
	return st
}

// publish swaps in the new head generation and appends it to the
// retention ring, trimming to Config.RetainGenerations. The ring slice
// is copied, never mutated: readers holding a loaded ring keep a
// frozen view.
func (ix *Index) publish(g *generation) {
	var ring []*generation
	if old := ix.ring.Load(); old != nil {
		ring = append(ring, *old...)
	}
	ring = append(ring, g)
	if n := ix.cfg.RetainGenerations; len(ring) > n {
		ring = ring[len(ring)-n:]
	}
	ix.gen.Store(g)
	ix.ring.Store(&ring)
}

// resolvedDelta is a CanonDelta with its symbol ids resolved back to
// phrase surfaces — the form the surface-keyed indexes consume.
type resolvedDelta struct {
	full                         bool
	touchedNPs, touchedRPs       []string
	reassignedNPs, reassignedRPs []string
	removedNPs, removedRPs       []string
}

func resolveDelta(d *core.CanonDelta, syms *okb.SymbolTable) *resolvedDelta {
	if d == nil {
		return nil
	}
	return &resolvedDelta{
		full:          d.Full,
		touchedNPs:    resolveSyms(syms, d.TouchedNPs),
		touchedRPs:    resolveSyms(syms, d.TouchedRPs),
		reassignedNPs: resolveSyms(syms, d.ReassignedNPs),
		reassignedRPs: resolveSyms(syms, d.ReassignedRPs),
		removedNPs:    resolveSyms(syms, d.RemovedNPs),
		removedRPs:    resolveSyms(syms, d.RemovedRPs),
	}
}

func resolveSyms(syms *okb.SymbolTable, ids []int32) []string {
	if len(ids) == 0 {
		return nil
	}
	if syms == nil {
		panic("query: delta carries symbol ids but no symbol table was supplied")
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = syms.Surface(id)
	}
	return out
}

// Restore rebuilds the index from a restored session's last result and
// accumulated triples, publishing it under the given generation id —
// the rebuild-on-load half of the durability story. Checkpoints carry
// the generation id but not the materialized views (they are derived
// state; a full build from the result is exact, and the delta-vs-full
// equivalence suite guarantees it answers identically to the
// incrementally-maintained generation it replaces). Begun and applied
// counters both restore to gen, so Behind accounting resumes at 0 and
// the next ingest publishes gen+1, exactly as an uninterrupted session
// would. Like Apply, Restore must only be called by the single writer.
func (ix *Index) Restore(res *core.Result, triples []okb.Triple, dead []int, gen int64, syms *okb.SymbolTable) {
	if gen < 1 {
		gen = 1
	}
	rd := resolveDelta(res.Delta, syms)
	if rd == nil {
		rd = &resolvedDelta{full: true}
	}
	ix.publish(buildFull(res, rd, triples, dead, gen))
	ix.begun.Store(gen)
	ix.applied.Store(gen)
}

// Clone returns a new Index serving the receiver's current generation.
// Generations are immutable, so the clone is O(1) and both indexes
// answer identically until one of them Applies; it exists so the
// benchmark can replay one ingest's Apply repeatedly against the same
// predecessor state.
func (ix *Index) Clone() *Index {
	out := New(ix.cfg)
	out.gen.Store(ix.gen.Load())
	if r := ix.ring.Load(); r != nil {
		ring := append([]*generation(nil), *r...)
		out.ring.Store(&ring)
	}
	out.begun.Store(ix.begun.Load())
	out.applied.Store(ix.applied.Load())
	return out
}

// FullIndex builds a fresh single-generation index from a result and
// its accumulated triples — the from-scratch comparator the query
// benchmark prices delta maintenance against (and the cold path Apply
// takes internally).
func FullIndex(res *core.Result, triples []okb.Triple, cfg Config, syms *okb.SymbolTable) *Index {
	return FullIndexRetaining(res, triples, nil, cfg, syms)
}

// FullIndexRetaining is FullIndex over a store that has seen
// retractions: dead lists the tombstoned triple positions, which the
// postings skip — the comparator the retract-equivalence suite prices
// delta maintenance against.
func FullIndexRetaining(res *core.Result, triples []okb.Triple, dead []int, cfg Config, syms *okb.SymbolTable) *Index {
	ix := New(cfg)
	ix.begun.Store(1)
	ix.applied.Store(1)
	ix.publish(buildFull(res, resolveDelta(res.Delta, syms), triples, dead, 1))
	return ix
}

// buildFull derives every index from scratch, skipping dead positions.
func buildFull(res *core.Result, delta *resolvedDelta, triples []okb.Triple, dead []int, id int64) *generation {
	g := &generation{id: id, triples: triples}
	deadSet := make(map[int]struct{}, len(dead))
	for _, d := range dead {
		deadSet[d] = struct{}{}
	}
	subj := map[string][]int{}
	rel := map[string][]int{}
	for i := range g.triples {
		if _, d := deadSet[i]; d {
			continue
		}
		t := &g.triples[i]
		subj[t.Subj] = append(subj[t.Subj], i)
		rel[t.Pred] = append(rel[t.Pred], i)
	}
	g.subjPost = postLayer(subj)
	g.relPost = postLayer(rel)
	g.npInfo, g.npClusters, g.entAliases, g.npClusterPost = buildSide(res.NPGroups, res.NPLinks, g.subjPost)
	g.rpInfo, g.rpClusters, g.relAliases, g.rpClusterPost = buildSide(res.RPGroups, res.RPLinks, g.relPost)
	if delta != nil {
		g.reassignedNPs = delta.reassignedNPs
		g.reassignedRPs = delta.reassignedRPs
	}
	return g
}

func postLayer(post map[string][]int) *layered[[]int] {
	l := newLayer[[]int](nil)
	for k, ids := range post {
		l.set(k, ids)
	}
	return l
}

// buildSide derives one phrase kind's full indexes: per-phrase info,
// cluster membership, alias sets per linked target, and cluster-level
// triple postings merged from the per-surface postings.
func buildSide(groups [][]string, links map[string]string, post *layered[[]int]) (info *layered[PhraseInfo], clusters *layered[[]string], aliases *layered[[]string], cpost *layered[[]int]) {
	info = newLayer[PhraseInfo](nil)
	clusters = newLayer[[]string](nil)
	aliases = newLayer[[]string](nil)
	cpost = newLayer[[]int](nil)
	byTarget := map[string][]string{}
	for _, grp := range groups {
		members := append([]string(nil), grp...)
		sort.Strings(members)
		cid := members[0]
		clusters.set(cid, members)
		if merged := mergePostings(members, post); len(merged) > 0 {
			cpost.set(cid, merged)
		}
		for _, m := range members {
			target := links[m]
			info.set(m, PhraseInfo{Canonical: cid, Target: target})
			if target != "" {
				byTarget[target] = append(byTarget[target], m)
			}
		}
	}
	for target, surfs := range byTarget {
		sort.Strings(surfs)
		aliases.set(target, surfs)
	}
	return info, clusters, aliases, cpost
}

// mergePostings unions the members' per-surface posting lists into one
// ascending id list. Each triple id lives in exactly one surface's
// list (a triple has one subject, one predicate), so a sort suffices.
func mergePostings(members []string, post *layered[[]int]) []int {
	var out []int
	for _, m := range members {
		if ids, ok := post.get(m); ok {
			out = append(out, ids...)
		}
	}
	sort.Ints(out)
	return out
}

// applyDelta builds the next generation as copy-on-write overlays over
// prev, rewriting only the keys the delta (plus the new batch, the
// retraction set, and the carried-forward relabels) can have changed.
// The expansion from the touched phrase seeds to the rewritten keys is:
//
//	D1 = seeds ∪ members(previous clusters of seeds)
//	D  = D1 ∪ members(current groups intersecting D1)
//
// which covers every phrase whose cluster membership can have moved: a
// phrase enters or leaves a cluster only through a changed pair
// decision incident to itself, changed pair decisions only arise at
// variables in ran blocks (both endpoint phrases are then seeds), and
// the mover's old cluster and new group both intersect the seed set.
//
// Retraction is not delta-driven through the inference stack — a
// surviving phrase that merely lost mentions keeps its pair variables
// (blocking depends on the phrase set, not the mention lists), so no
// block need have run — which is why the apply itself seeds the dead
// triples' surfaces: their per-surface and per-cluster postings shrink
// here, and phrases the delta marks removed are deleted outright.
func (prev *generation) applyDelta(res *core.Result, delta *resolvedDelta, all []okb.Triple, newDead []int, id int64, keys *int) *generation {
	g := &generation{
		id:            id,
		triples:       all,
		reassignedNPs: delta.reassignedNPs,
		reassignedRPs: delta.reassignedRPs,
	}

	// Surface postings: the batch's surfaces gain entries, the
	// retraction's surfaces lose the dead ids.
	subjAdd := map[string][]int{}
	relAdd := map[string][]int{}
	subjDel := map[string]map[int]struct{}{}
	relDel := map[string]map[int]struct{}{}
	batchNP := map[string]bool{}
	batchRP := map[string]bool{}
	for i := len(prev.triples); i < len(g.triples); i++ {
		t := &g.triples[i]
		subjAdd[t.Subj] = append(subjAdd[t.Subj], i)
		relAdd[t.Pred] = append(relAdd[t.Pred], i)
		batchNP[t.Subj] = true
		batchNP[t.Obj] = true
		batchRP[t.Pred] = true
	}
	for _, di := range newDead {
		if di < 0 || di >= len(g.triples) {
			continue
		}
		t := &g.triples[di]
		if subjDel[t.Subj] == nil {
			subjDel[t.Subj] = map[int]struct{}{}
		}
		subjDel[t.Subj][di] = struct{}{}
		if relDel[t.Pred] == nil {
			relDel[t.Pred] = map[int]struct{}{}
		}
		relDel[t.Pred][di] = struct{}{}
		batchNP[t.Subj] = true
		batchNP[t.Obj] = true
		batchRP[t.Pred] = true
	}
	g.subjPost = rewritePostings(prev.subjPost, subjAdd, subjDel, keys)
	g.relPost = rewritePostings(prev.relPost, relAdd, relDel, keys)

	g.npInfo, g.npClusters, g.entAliases, g.npClusterPost = applySide(sideDelta{
		seeds:    [][]string{delta.touchedNPs, prev.reassignedNPs, delta.removedNPs},
		removed:  delta.removedNPs,
		batch:    batchNP,
		added:    subjAdd,
		deleted:  subjDel,
		groups:   res.NPGroups,
		groupOf:  res.NPGroupOf,
		links:    res.NPLinks,
		info:     prev.npInfo,
		clusters: prev.npClusters,
		aliases:  prev.entAliases,
		cpost:    prev.npClusterPost,
		post:     g.subjPost,
	}, keys)
	g.rpInfo, g.rpClusters, g.relAliases, g.rpClusterPost = applySide(sideDelta{
		seeds:    [][]string{delta.touchedRPs, prev.reassignedRPs, delta.removedRPs},
		removed:  delta.removedRPs,
		batch:    batchRP,
		added:    relAdd,
		deleted:  relDel,
		groups:   res.RPGroups,
		groupOf:  res.RPGroupOf,
		links:    res.RPLinks,
		info:     prev.rpInfo,
		clusters: prev.rpClusters,
		aliases:  prev.relAliases,
		cpost:    prev.rpClusterPost,
		post:     g.relPost,
	}, keys)
	return g
}

// sideDelta carries one phrase kind's inputs through the delta apply.
type sideDelta struct {
	seeds             [][]string                  // touched phrases + previous relabels + removals
	removed           []string                    // phrases retracted out of existence this build
	batch             map[string]bool             // surfaces appearing in the new batch or retraction
	added             map[string][]int            // per-surface triple ids the batch appended
	deleted           map[string]map[int]struct{} // per-surface triple ids the retraction tombstoned
	groups            [][]string                  // the new result's full grouping
	groupOf           map[string]int              // surface -> index into groups (core.Result.NPGroupOf)
	links             map[string]string
	info              *layered[PhraseInfo]
	clusters, aliases *layered[[]string]
	cpost             *layered[[]int]
	post              *layered[[]int] // NEW generation's per-surface postings
}

func applySide(sd sideDelta, keys *int) (*layered[PhraseInfo], *layered[[]string], *layered[[]string], *layered[[]int]) {
	// Seed set S, then the two-step expansion to D.
	D := map[string]bool{}
	for _, seed := range sd.seeds {
		for _, p := range seed {
			D[p] = true
		}
	}
	for p := range sd.batch {
		D[p] = true
	}
	oldCIDs := map[string]bool{}
	for p := range D {
		if inf, ok := sd.info.get(p); ok {
			oldCIDs[inf.Canonical] = true
		}
	}
	for cid := range oldCIDs {
		if members, ok := sd.clusters.get(cid); ok {
			for _, m := range members {
				D[m] = true
			}
		}
	}
	// Affected current groups, via the result's O(1) membership index
	// (scanning the whole grouping here would re-introduce an O(KB)
	// term into every apply).
	hitGroups := map[int]bool{}
	for p := range D {
		if gi, ok := sd.groupOf[p]; ok {
			hitGroups[gi] = true
		}
	}
	newMembers := map[string][]string{}
	newCluster := map[string]string{}
	for gi := range hitGroups {
		grp := sd.groups[gi]
		members := append([]string(nil), grp...)
		sort.Strings(members)
		cid := members[0]
		newMembers[cid] = members
		for _, m := range members {
			newCluster[m] = cid
			D[m] = true
		}
	}
	// Re-collect old cluster ids over the fully expanded D: a cluster
	// can be absorbed through a member that was never a seed (a
	// link-agreement pair has only one moved endpoint), and its id must
	// still be rewritten or tombstoned here — a stale entry would later
	// satisfy the same-membership skip below and serve postings frozen
	// at the absorption point. The extra ids need no further expansion:
	// any phrase that separated from its old cluster-mates did so
	// through a changed pair incident to a seed, so those members are
	// already in D.
	for p := range D {
		if inf, ok := sd.info.get(p); ok {
			oldCIDs[inf.Canonical] = true
		}
	}

	// Per-phrase info, collecting alias moves per linked target. A
	// removed phrase has no current group — it is deleted outright, and
	// its old link (if any) loses an alias.
	removed := make(map[string]bool, len(sd.removed))
	for _, p := range sd.removed {
		removed[p] = true
	}
	info := newLayer(sd.info)
	addByTarget := map[string][]string{}
	delByTarget := map[string][]string{}
	for p := range D {
		if removed[p] {
			if old, had := sd.info.get(p); had {
				info.del(p)
				*keys++
				if old.Target != "" {
					delByTarget[old.Target] = append(delByTarget[old.Target], p)
				}
			}
			continue
		}
		cur := PhraseInfo{Canonical: newCluster[p], Target: sd.links[p]}
		old, had := sd.info.get(p)
		if !had || old != cur {
			info.set(p, cur)
			*keys++
		}
		switch {
		case had && old.Target != cur.Target:
			if old.Target != "" {
				delByTarget[old.Target] = append(delByTarget[old.Target], p)
			}
			if cur.Target != "" {
				addByTarget[cur.Target] = append(addByTarget[cur.Target], p)
			}
		case !had && cur.Target != "":
			addByTarget[cur.Target] = append(addByTarget[cur.Target], p)
		}
	}

	// Cluster membership + cluster postings for every previous or
	// current affected cluster id. An old id with no surviving group is
	// tombstoned (its min member migrated, so the current group holding
	// it is itself affected — the tombstone never hides a live cluster).
	// Most affected clusters are drive-bys — pulled into D because a
	// member sat in a ran block, with nothing actually moving — so a
	// cluster whose membership matches the previous generation and whose
	// members gained no triples is skipped outright: its stored members
	// and postings are already exact.
	clusters := newLayer(sd.clusters)
	cpost := newLayer(sd.cpost)
	for cid := range newMembers {
		oldCIDs[cid] = true
	}
	for cid := range oldCIDs {
		members, ok := newMembers[cid]
		if !ok {
			clusters.del(cid)
			cpost.del(cid)
			*keys++
			continue
		}
		old, hadOld := sd.clusters.get(cid)
		same := hadOld && equalStrings(old, members)
		moved := false
		for _, m := range members {
			if _, ok := sd.added[m]; ok {
				moved = true
				break
			}
			if _, ok := sd.deleted[m]; ok {
				moved = true
				break
			}
		}
		if same && !moved {
			continue
		}
		if !same {
			clusters.set(cid, members)
			*keys++
		}
		*keys++
		if merged := mergePostings(members, sd.post); len(merged) > 0 {
			cpost.set(cid, merged)
		} else {
			cpost.del(cid)
		}
	}

	// Alias sets for every target that gained or lost a phrase.
	aliases := newLayer(sd.aliases)
	targets := map[string]bool{}
	for t := range addByTarget {
		targets[t] = true
	}
	for t := range delByTarget {
		targets[t] = true
	}
	for target := range targets {
		old, _ := sd.aliases.get(target)
		set := make(map[string]bool, len(old))
		for _, a := range old {
			set[a] = true
		}
		for _, p := range delByTarget[target] {
			delete(set, p)
		}
		for _, p := range addByTarget[target] {
			set[p] = true
		}
		*keys++
		if len(set) == 0 {
			aliases.del(target)
			continue
		}
		surfs := make([]string, 0, len(set))
		for a := range set {
			surfs = append(surfs, a)
		}
		sort.Strings(surfs)
		aliases.set(target, surfs)
	}
	return info, clusters, aliases, cpost
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rewritePostings overlays the batch's new triple ids — and strips the
// retraction's dead ids — from the previous per-surface postings. A
// surface whose postings empty out is tombstoned (its phrase may still
// be live through object mentions; an empty list and a missing key
// answer identically).
func rewritePostings(prev *layered[[]int], add map[string][]int, del map[string]map[int]struct{}, keys *int) *layered[[]int] {
	l := newLayer(prev)
	for s, ids := range add {
		old, _ := prev.get(s)
		merged := make([]int, 0, len(old)+len(ids))
		merged = append(merged, old...)
		merged = append(merged, ids...)
		if dead := del[s]; len(dead) > 0 {
			merged = dropDead(merged, dead)
		}
		l.set(s, merged)
		*keys++
	}
	for s, dead := range del {
		if _, also := add[s]; also {
			continue
		}
		old, ok := prev.get(s)
		if !ok {
			continue
		}
		kept := dropDead(old, dead)
		*keys++
		if len(kept) == 0 {
			l.del(s)
			continue
		}
		l.set(s, kept)
	}
	return l
}

// dropDead filters ids (ascending) down to those not in dead, always
// returning a fresh slice (the input may be a shared previous-
// generation posting).
func dropDead(ids []int, dead map[int]struct{}) []int {
	kept := make([]int, 0, len(ids))
	for _, id := range ids {
		if _, d := dead[id]; !d {
			kept = append(kept, id)
		}
	}
	return kept
}

// compact flattens every overlay chain into single base layers,
// bounding reader lookup cost.
func (g *generation) compact() *generation {
	out := *g
	out.npInfo = g.npInfo.flatten()
	out.rpInfo = g.rpInfo.flatten()
	out.npClusters = g.npClusters.flatten()
	out.rpClusters = g.rpClusters.flatten()
	out.entAliases = g.entAliases.flatten()
	out.relAliases = g.relAliases.flatten()
	out.subjPost = g.subjPost.flatten()
	out.relPost = g.relPost.flatten()
	out.npClusterPost = g.npClusterPost.flatten()
	out.rpClusterPost = g.rpClusterPost.flatten()
	return &out
}
