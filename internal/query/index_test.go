package query_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/ckb"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/embedding"
	"repro/internal/okb"
	"repro/internal/ppdb"
	"repro/internal/query"
	"repro/internal/stream"
)

// microWorld mirrors the stream package's test substrate: a tiny CKB
// of token-disjoint entities and relations.
func microWorld(t *testing.T) *ckb.Store {
	t.Helper()
	store, err := ckb.NewStore(
		[]ckb.Entity{
			{ID: "e1", Name: "Alphacorp", Aliases: []string{"alphacorp", "alpha corp"}},
			{ID: "e2", Name: "Betalabs", Aliases: []string{"betalabs"}},
			{ID: "e3", Name: "Gammaworks", Aliases: []string{"gammaworks"}},
			{ID: "e4", Name: "Deltasoft", Aliases: []string{"deltasoft"}},
			{ID: "e5", Name: "Epsilonics", Aliases: []string{"epsilonics"}},
			{ID: "e6", Name: "Zetafoundry", Aliases: []string{"zetafoundry"}},
		},
		[]ckb.Relation{
			{ID: "r1", Name: "acquire", Aliases: []string{"acquire", "buy"}},
			{ID: "r2", Name: "hire", Aliases: []string{"hire"}},
			{ID: "r3", Name: "sue", Aliases: []string{"sue"}},
		},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func microSession(t *testing.T, cfg stream.Config) *stream.Session {
	t.Helper()
	emb := embedding.Train(nil, embedding.Config{Dim: 8, Seed: 1})
	return stream.New(microWorld(t), emb, ppdb.NewBuilder().Build(), cfg)
}

// expectSide is the brute-force comparator: everything the index must
// answer for one phrase kind, derived by scanning the Result and the
// accumulated triples the way a caller without an index would.
type expectSide struct {
	groupOf  map[string][]string // surface -> sorted members of its group
	links    map[string]string
	aliases  map[string][]string // target -> sorted linked surfaces
	postings map[string][]int    // surface -> ascending ids of its cluster's triples
}

func expect(groups [][]string, links map[string]string, triples []okb.Triple, subj bool) expectSide {
	e := expectSide{groupOf: map[string][]string{}, links: links, aliases: map[string][]string{}, postings: map[string][]int{}}
	for _, grp := range groups {
		members := append([]string(nil), grp...)
		sort.Strings(members)
		inCluster := map[string]bool{}
		for _, m := range members {
			e.groupOf[m] = members
			inCluster[m] = true
			if target := links[m]; target != "" {
				e.aliases[target] = append(e.aliases[target], m)
			}
		}
		var post []int
		for i, t := range triples {
			key := t.Pred
			if subj {
				key = t.Subj
			}
			if inCluster[key] {
				post = append(post, i)
			}
		}
		for _, m := range members {
			e.postings[m] = post
		}
	}
	for _, surfs := range e.aliases {
		sort.Strings(surfs)
	}
	return e
}

// verify checks every query answer against the brute-force scan of the
// same generation's result — the bitwise-equivalence contract.
func verify(t *testing.T, ix *query.Index, res *core.Result, triples []okb.Triple) {
	t.Helper()
	npx := expect(res.NPGroups, res.NPLinks, triples, true)
	rpx := expect(res.RPGroups, res.RPLinks, triples, false)

	checkSide := func(kind string, e expectSide,
		resolve func(string, ...query.Opt) (query.Resolution, bool),
		cluster func(string, ...query.Opt) (query.ClusterAnswer, bool),
		aliases func(string, ...query.Opt) (query.AliasesAnswer, bool),
		enum func(string, int, ...query.Opt) (query.TriplesAnswer, bool)) {
		for surface, members := range e.groupOf {
			r, ok := resolve(surface)
			if !ok {
				t.Fatalf("%s resolve(%q): unknown surface", kind, surface)
			}
			if r.Canonical != members[0] || r.Target != e.links[surface] || r.ClusterSize != len(members) {
				t.Fatalf("%s resolve(%q) = %+v, want canonical %q target %q size %d",
					kind, surface, r, members[0], e.links[surface], len(members))
			}
			c, ok := cluster(surface)
			if !ok || !reflect.DeepEqual(c.Members, members) {
				t.Fatalf("%s cluster(%q) = %v (ok=%v), want %v", kind, surface, c.Members, ok, members)
			}
			ts, ok := enum(surface, 0)
			if !ok {
				t.Fatalf("%s triples(%q): unknown surface", kind, surface)
			}
			want := e.postings[surface]
			if ts.Total != len(want) || len(ts.Triples) != len(want) {
				t.Fatalf("%s triples(%q): got %d/%d, want %d", kind, surface, len(ts.Triples), ts.Total, len(want))
			}
			for i, id := range want {
				w := triples[id]
				g := ts.Triples[i]
				if g.Subj != w.Subj || g.Pred != w.Pred || g.Obj != w.Obj || g.ID != id {
					t.Fatalf("%s triples(%q)[%d] = %+v, want %+v (id %d)", kind, surface, i, g, w, id)
				}
			}
		}
		for target, want := range e.aliases {
			a, ok := aliases(target)
			if !ok || !reflect.DeepEqual(a.Aliases, want) {
				t.Fatalf("%s aliases(%q) = %v (ok=%v), want %v", kind, target, a.Aliases, ok, want)
			}
		}
		if _, ok := resolve("no such surface anywhere"); ok {
			t.Fatalf("%s resolve of unknown surface succeeded", kind)
		}
	}
	checkSide("np", npx, ix.ResolveNP, ix.NPCluster, ix.EntityAliases, ix.TriplesBySubject)
	checkSide("rp", rpx, ix.ResolveRP, ix.RPCluster, ix.RelationAliases, ix.TriplesByRelation)
}

func TestQueryMatchesBruteForcePerBatch(t *testing.T) {
	sess := microSession(t, stream.Config{Core: core.DefaultConfig(), Query: query.Config{Enable: true}})
	batches := [][]okb.Triple{
		{
			{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"},
			{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"},
		},
		{
			{Subj: "epsilonics", Pred: "sue", Obj: "zetafoundry"},
			{Subj: "alphacorp", Pred: "acquire", Obj: "deltasoft"},
		},
		// "alpha corp" and "buy" join existing clusters via shared
		// candidates / paraphrase aliases: membership, aliases, and
		// postings of existing keys must all move delta-wise.
		{
			{Subj: "alpha corp", Pred: "buy", Obj: "betalabs"},
		},
		{
			{Subj: "gammaworks", Pred: "sue", Obj: "alphacorp"},
		},
	}
	var accumulated []okb.Triple
	for i, b := range batches {
		if _, err := sess.Ingest(b); err != nil {
			t.Fatal(err)
		}
		accumulated = append(accumulated, b...)
		res := sess.Snapshot()
		verify(t, sess.Query(), res, accumulated)
		gi, ok := sess.Query().Generation()
		if !ok || gi.Generation != int64(i+1) || gi.Triples != len(accumulated) || gi.Behind != 0 {
			t.Fatalf("batch %d: generation = %+v (ok=%v)", i+1, gi, ok)
		}
	}
}

func TestQueryMatchesBruteForceTaskAblations(t *testing.T) {
	// The group shapes differ per mode (union-find groups vs link-target
	// groups vs singletons); the index must match the brute force in all
	// of them.
	for name, cfg := range map[string]core.Config{
		"canon-only": core.CanonOnlyConfig(),
		"link-only":  core.LinkOnlyConfig(),
	} {
		t.Run(name, func(t *testing.T) {
			sess := microSession(t, stream.Config{Core: cfg, Query: query.Config{Enable: true}})
			var accumulated []okb.Triple
			for _, b := range [][]okb.Triple{
				{{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"}},
				{{Subj: "alpha corp", Pred: "buy", Obj: "gammaworks"}},
				{{Subj: "nobodyheardofit", Pred: "ponder", Obj: "mysteries"}},
			} {
				if _, err := sess.Ingest(b); err != nil {
					t.Fatal(err)
				}
				accumulated = append(accumulated, b...)
				verify(t, sess.Query(), sess.Snapshot(), accumulated)
			}
		})
	}
}

func TestQueryDeltaMatchesBruteForceOnGeneratedStream(t *testing.T) {
	// The full serving configuration on a realistic generated workload:
	// hub-cut segmentation computes small dirty-block sets, the delta
	// maintenance rides them, and every batch's index must still match
	// the brute-force scan of the same snapshot. MaxLayers 2 forces
	// compaction mid-stream, covering that path too.
	ds, err := datasets.Generate(datasets.ReVerb45K(0.01))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Segment.Enable = true
	sess := stream.New(ds.CKB, ds.Emb, ds.PPDB, stream.Config{
		Core:  cfg,
		Query: query.Config{Enable: true, MaxLayers: 2},
	})
	triples := ds.OKB.Triples()
	n := len(triples)
	cuts := []int{0, n / 2, 5 * n / 8, 3 * n / 4, 7 * n / 8, n}
	var accumulated []okb.Triple
	sawDelta := false
	for i := 1; i < len(cuts); i++ {
		batch := triples[cuts[i-1]:cuts[i]]
		st, err := sess.Ingest(batch)
		if err != nil {
			t.Fatal(err)
		}
		accumulated = append(accumulated, batch...)
		if st.Index == nil {
			t.Fatal("ingest reported no index maintenance")
		}
		if i > 1 && !st.Index.Full {
			sawDelta = true
			if st.Index.KeysWritten == 0 {
				t.Errorf("batch %d: delta apply wrote no keys", i)
			}
		}
		verify(t, sess.Query(), sess.Snapshot(), accumulated)
		if l := sess.Query().Layers(); l > 2 {
			t.Errorf("batch %d: %d layers exceed MaxLayers 2", i, l)
		}
	}
	if !sawDelta {
		t.Error("no batch exercised the delta path")
	}
}

func TestQueryDeltaMatchesFullIndexAndEnumerationLimits(t *testing.T) {
	sess := microSession(t, stream.Config{Core: core.DefaultConfig(), Query: query.Config{Enable: true, MaxResults: 2}})
	var accumulated []okb.Triple // session index capped at 2; verified via the uncapped FullIndex below
	for i := 0; i < 4; i++ {
		b := []okb.Triple{
			{Subj: "alphacorp", Pred: "acquire", Obj: fmt.Sprintf("startup %d", i)},
			{Subj: "alphacorp", Pred: "hire", Obj: "deltasoft"},
		}
		if _, err := sess.Ingest(b); err != nil {
			t.Fatal(err)
		}
		accumulated = append(accumulated, b...)
	}
	res := sess.Snapshot()

	// A from-scratch index over the same result must answer identically
	// to the delta-maintained one (both are held to the same brute-force
	// comparator; built uncapped so verify sees full enumerations).
	full := query.FullIndex(res, accumulated, query.Config{}, sess.Symbols())
	verify(t, full, res, accumulated)

	// MaxResults caps enumeration however large the posting is.
	ts, ok := sess.Query().TriplesBySubject("alphacorp", 0)
	if !ok {
		t.Fatal("alphacorp unknown")
	}
	if len(ts.Triples) != 2 || !ts.Truncated || ts.Total < 8 {
		t.Fatalf("capped enumeration = %d triples (total %d, truncated %v), want 2 of >=8",
			len(ts.Triples), ts.Total, ts.Truncated)
	}
	// An explicit limit below the cap narrows further.
	ts, _ = sess.Query().TriplesBySubject("alphacorp", 1)
	if len(ts.Triples) != 1 || !ts.Truncated {
		t.Fatalf("limit 1 returned %d triples", len(ts.Triples))
	}
}

func TestQueryDisabledAndEmpty(t *testing.T) {
	off := microSession(t, stream.Config{Core: core.DefaultConfig()})
	if off.Query() != nil {
		t.Fatal("query index present without Enable")
	}
	on := microSession(t, stream.Config{Core: core.DefaultConfig(), Query: query.Config{Enable: true}})
	if _, ok := on.Query().Generation(); ok {
		t.Fatal("generation reported before first ingest")
	}
	if _, ok := on.Query().ResolveNP("anything"); ok {
		t.Fatal("resolve succeeded before first ingest")
	}
}

// synthResult builds a core.Result directly — the absorbed-cluster
// regression below needs exact control over groups and deltas that no
// seeded inference run reproduces reliably.
func synthResult(npGroups, rpGroups [][]string) *core.Result {
	idx := func(groups [][]string) map[string]int {
		out := map[string]int{}
		for gi, g := range groups {
			for _, m := range g {
				out[m] = gi
			}
		}
		return out
	}
	return &core.Result{
		NPGroups:  npGroups,
		RPGroups:  rpGroups,
		NPGroupOf: idx(npGroups),
		RPGroupOf: idx(rpGroups),
		NPLinks:   map[string]string{},
		RPLinks:   map[string]string{},
	}
}

// TestAbsorbedClusterTombstonedAndRebuilt is the regression for a
// soundness hole in the delta expansion: a cluster can be absorbed
// through a member that was never a seed (a link-agreement pair has
// only one moved endpoint), and its old cluster id must still be
// tombstoned in that generation — otherwise, when the cluster later
// splits back to its old membership, the stale entry satisfies the
// same-membership skip and serves postings frozen at the absorption
// point, silently missing every triple ingested while merged.
func TestAbsorbedClusterTombstonedAndRebuilt(t *testing.T) {
	ix := query.New(query.Config{})
	syms := okb.NewSymbolTable()
	ids := func(names ...string) []int32 {
		out := make([]int32, len(names))
		for i, n := range names {
			out[i] = syms.Intern(n)
		}
		return out
	}
	var triples []okb.Triple
	step := func(res *core.Result, delta *core.CanonDelta, batch ...okb.Triple) {
		t.Helper()
		triples = append(triples, batch...)
		ix.Begin()
		ix.Apply(res, delta, triples, query.Tombstones{}, syms)
		verify(t, ix, res, triples)
	}

	// Gen 1 (cold): {a}, {b1,b2} separate clusters.
	res1 := synthResult(
		[][]string{{"a"}, {"b1", "b2"}, {"x"}},
		[][]string{{"r"}},
	)
	step(res1, &core.CanonDelta{Full: true}, okb.Triple{Subj: "b1", Pred: "r", Obj: "x"})

	// Gen 2: {b1,b2} absorbed into a's cluster via a pair whose only
	// moved endpoint is "a" — b1/b2 are NOT seeds and the batch does
	// not mention them. Old cluster id "b1" must be tombstoned here.
	merged := synthResult(
		[][]string{{"a", "b1", "b2"}, {"x"}, {"z"}},
		[][]string{{"r"}},
	)
	step(merged, &core.CanonDelta{TouchedNPs: ids("a"), TouchedRPs: ids("r")},
		okb.Triple{Subj: "a", Pred: "r", Obj: "z"})

	// Gen 3: b1 gains a triple while merged — recorded under the
	// merged cluster's id.
	merged3 := synthResult(
		[][]string{{"a", "b1", "b2"}, {"x"}, {"z"}, {"y"}},
		[][]string{{"r"}},
	)
	step(merged3, &core.CanonDelta{TouchedNPs: ids("b1"), TouchedRPs: ids("r")},
		okb.Triple{Subj: "b1", Pred: "r", Obj: "y"})

	// Gen 4: the clusters split back to exactly the gen-1 membership
	// {b1,b2}, in a batch that adds no b1/b2 triples. A stale gen-1
	// entry would pass the same-membership skip and drop the gen-3
	// triple from TriplesBySubject("b1"); the verify inside step
	// catches that against the brute force.
	split := synthResult(
		[][]string{{"a"}, {"b1", "b2"}, {"x"}, {"z"}, {"y"}, {"q"}, {"q2"}},
		[][]string{{"r"}},
	)
	step(split, &core.CanonDelta{TouchedNPs: ids("a", "b1"), TouchedRPs: ids("r")},
		okb.Triple{Subj: "q", Pred: "r", Obj: "q2"})

	// And explicitly: b1's postings after the split include the triple
	// ingested while merged.
	ts, ok := ix.TriplesBySubject("b1", 0)
	if !ok || ts.Total != 2 {
		t.Fatalf("TriplesBySubject(b1) after split = %+v (ok=%v), want both b1 triples", ts, ok)
	}
}
