package query

import "repro/internal/okb"

// Opt adjusts how one query is answered. The zero set of options reads
// the current (head) generation.
type Opt func(*queryOpts)

type queryOpts struct {
	asOf int64
}

// AsOf pins the query to the retained generation with the given id
// instead of the head: the answer is bitwise-identical to what the
// same query returned when that generation was current. Queries
// against a generation that has rolled out of the retention ring (see
// Config.RetainGenerations) — or never existed — answer ok=false, the
// same as an unknown key; serving layers distinguish the two with
// HasGeneration before dispatch.
func AsOf(gen int64) Opt {
	return func(o *queryOpts) { o.asOf = gen }
}

// genFor resolves the generation a query should answer from: the head
// by default, a retained generation under AsOf, nil when nothing
// matches (no generation yet, or the requested one is not retained).
func (ix *Index) genFor(opts []Opt) *generation {
	var o queryOpts
	for _, f := range opts {
		if f != nil {
			f(&o)
		}
	}
	if o.asOf == 0 {
		return ix.gen.Load()
	}
	g := ix.genAt(o.asOf)
	if ix.asof != nil {
		if g != nil {
			ix.asof.With("hit").Inc()
		} else {
			ix.asof.With("miss").Inc()
		}
	}
	return g
}

// genAt returns the retained generation with the given id, or nil.
func (ix *Index) genAt(id int64) *generation {
	if g := ix.gen.Load(); g != nil && g.id == id {
		return g
	}
	if ring := ix.ring.Load(); ring != nil {
		for _, g := range *ring {
			if g.id == id {
				return g
			}
		}
	}
	return nil
}

// HasGeneration reports whether the given generation id is retained
// and can serve as-of reads.
func (ix *Index) HasGeneration(id int64) bool { return ix.genAt(id) != nil }

// Retained lists the retained generation ids, ascending (the last is
// the head). Empty before the first Apply.
func (ix *Index) Retained() []int64 {
	ring := ix.ring.Load()
	if ring == nil {
		return nil
	}
	out := make([]int64, len(*ring))
	for i, g := range *ring {
		out[i] = g.id
	}
	return out
}

// GenInfo identifies the immutable index generation an answer was
// served from, plus how stale it is.
type GenInfo struct {
	// Generation counts the ingests whose output this generation
	// reflects (1 = first build).
	Generation int64 `json:"generation"`
	// Triples is the number of triples the generation covers.
	Triples int `json:"triples"`
	// Behind counts the ingests begun but not reflected in this
	// generation — 0 when the index is current, 1 while one ingest is
	// in flight, possibly more when a fast writer publishes newer
	// generations while an answer is being assembled. Readers are never
	// blocked by an in-flight ingest; they are served the latest
	// published generation and told its staleness here.
	Behind int64 `json:"behind"`
}

// Resolution is the alias-resolution answer for one surface form.
type Resolution struct {
	// Surface echoes the queried surface form.
	Surface string `json:"surface"`
	// Canonical is the id of the canonicalization cluster the surface
	// belongs to (the lexicographically smallest member surface).
	Canonical string `json:"canonical"`
	// Target is the linked curated-KB id ("" = NIL / linking disabled).
	Target string `json:"target,omitempty"`
	// ClusterSize is the number of surfaces in the cluster.
	ClusterSize int `json:"cluster_size"`
	// Gen identifies the generation served.
	Gen GenInfo `json:"gen"`
}

// AliasesAnswer lists the surfaces linked to one curated-KB target.
type AliasesAnswer struct {
	// Target echoes the queried curated-KB id.
	Target string `json:"target"`
	// Aliases are the sorted surface forms currently linked to Target.
	// The slice is shared with the index generation — treat as
	// read-only.
	Aliases []string `json:"aliases"`
	// Gen identifies the generation served.
	Gen GenInfo `json:"gen"`
}

// ClusterAnswer lists one canonicalization cluster's membership.
type ClusterAnswer struct {
	// Canonical is the cluster id (lexicographically smallest member).
	Canonical string `json:"canonical"`
	// Members are the sorted member surfaces. Shared with the index
	// generation — treat as read-only.
	Members []string `json:"members"`
	// Gen identifies the generation served.
	Gen GenInfo `json:"gen"`
}

// TriplesAnswer enumerates triples from a postings lookup.
type TriplesAnswer struct {
	// Triples are the enumerated triples in ingest order, capped at the
	// effective limit.
	Triples []okb.Triple `json:"triples"`
	// Total is the posting's full size; Truncated marks answers capped
	// below it.
	Total     int  `json:"total"`
	Truncated bool `json:"truncated,omitempty"`
	// Gen identifies the generation served.
	Gen GenInfo `json:"gen"`
}

func (ix *Index) info(g *generation) GenInfo {
	return GenInfo{Generation: g.id, Triples: len(g.triples), Behind: ix.begun.Load() - g.id}
}

// Generation reports the current generation, or ok=false before the
// first Apply.
func (ix *Index) Generation() (GenInfo, bool) {
	g := ix.gen.Load()
	if g == nil {
		return GenInfo{}, false
	}
	return ix.info(g), true
}

// Layers reports the current overlay-chain depth (1 after a full build
// or compaction), a health signal for /stats.
func (ix *Index) Layers() int {
	g := ix.gen.Load()
	if g == nil {
		return 0
	}
	return g.npInfo.depth + 1
}

// Limits reports the effective configuration (post-defaulting), so the
// serving layer can surface it.
func (ix *Index) Limits() Config { return ix.cfg }

// ResolveNP resolves a noun-phrase surface form to its canonical
// cluster and entity link. ok=false when the index has no generation
// yet or the surface is unknown.
func (ix *Index) ResolveNP(surface string, opts ...Opt) (Resolution, bool) {
	ix.observe("resolve_np")
	return ix.resolve(surface, opts, func(g *generation) (*layered[PhraseInfo], *layered[[]string]) {
		return g.npInfo, g.npClusters
	})
}

// ResolveRP resolves a relation-phrase surface form to its canonical
// cluster and relation link.
func (ix *Index) ResolveRP(surface string, opts ...Opt) (Resolution, bool) {
	ix.observe("resolve_rp")
	return ix.resolve(surface, opts, func(g *generation) (*layered[PhraseInfo], *layered[[]string]) {
		return g.rpInfo, g.rpClusters
	})
}

func (ix *Index) resolve(surface string, opts []Opt, side func(*generation) (*layered[PhraseInfo], *layered[[]string])) (Resolution, bool) {
	g := ix.genFor(opts)
	if g == nil {
		return Resolution{}, false
	}
	info, clusters := side(g)
	inf, ok := info.get(surface)
	if !ok {
		return Resolution{}, false
	}
	members, _ := clusters.get(inf.Canonical)
	return Resolution{
		Surface:     surface,
		Canonical:   inf.Canonical,
		Target:      inf.Target,
		ClusterSize: len(members),
		Gen:         ix.info(g),
	}, true
}

// EntityAliases lists the noun phrases linked to a curated-KB entity
// id — the entity-lookup direction of the alias index.
func (ix *Index) EntityAliases(target string, opts ...Opt) (AliasesAnswer, bool) {
	ix.observe("entity_aliases")
	return ix.aliases(target, opts, func(g *generation) *layered[[]string] { return g.entAliases })
}

// RelationAliases lists the relation phrases linked to a curated-KB
// relation id.
func (ix *Index) RelationAliases(target string, opts ...Opt) (AliasesAnswer, bool) {
	ix.observe("relation_aliases")
	return ix.aliases(target, opts, func(g *generation) *layered[[]string] { return g.relAliases })
}

func (ix *Index) aliases(target string, opts []Opt, side func(*generation) *layered[[]string]) (AliasesAnswer, bool) {
	g := ix.genFor(opts)
	if g == nil {
		return AliasesAnswer{}, false
	}
	surfs, ok := side(g).get(target)
	if !ok {
		return AliasesAnswer{}, false
	}
	return AliasesAnswer{Target: target, Aliases: surfs, Gen: ix.info(g)}, true
}

// NPCluster lists the canonicalization cluster containing a noun-phrase
// surface form.
func (ix *Index) NPCluster(surface string, opts ...Opt) (ClusterAnswer, bool) {
	ix.observe("np_cluster")
	return ix.cluster(surface, opts, func(g *generation) (*layered[PhraseInfo], *layered[[]string]) {
		return g.npInfo, g.npClusters
	})
}

// RPCluster lists the canonicalization cluster containing a
// relation-phrase surface form.
func (ix *Index) RPCluster(surface string, opts ...Opt) (ClusterAnswer, bool) {
	ix.observe("rp_cluster")
	return ix.cluster(surface, opts, func(g *generation) (*layered[PhraseInfo], *layered[[]string]) {
		return g.rpInfo, g.rpClusters
	})
}

func (ix *Index) cluster(surface string, opts []Opt, side func(*generation) (*layered[PhraseInfo], *layered[[]string])) (ClusterAnswer, bool) {
	g := ix.genFor(opts)
	if g == nil {
		return ClusterAnswer{}, false
	}
	info, clusters := side(g)
	inf, ok := info.get(surface)
	if !ok {
		return ClusterAnswer{}, false
	}
	members, _ := clusters.get(inf.Canonical)
	return ClusterAnswer{Canonical: inf.Canonical, Members: members, Gen: ix.info(g)}, true
}

// TriplesBySubject enumerates the triples whose subject belongs to the
// canonicalization cluster of the given noun-phrase surface — the
// canonical-entity postings view. limit <= 0 (or above the configured
// MaxResults) takes MaxResults.
func (ix *Index) TriplesBySubject(surface string, limit int, opts ...Opt) (TriplesAnswer, bool) {
	ix.observe("triples_by_subject")
	return ix.triples(surface, limit, opts, func(g *generation) (*layered[PhraseInfo], *layered[[]int]) {
		return g.npInfo, g.npClusterPost
	})
}

// TriplesByRelation enumerates the triples whose predicate belongs to
// the canonicalization cluster of the given relation-phrase surface.
func (ix *Index) TriplesByRelation(surface string, limit int, opts ...Opt) (TriplesAnswer, bool) {
	ix.observe("triples_by_relation")
	return ix.triples(surface, limit, opts, func(g *generation) (*layered[PhraseInfo], *layered[[]int]) {
		return g.rpInfo, g.rpClusterPost
	})
}

func (ix *Index) triples(surface string, limit int, opts []Opt, side func(*generation) (*layered[PhraseInfo], *layered[[]int])) (TriplesAnswer, bool) {
	g := ix.genFor(opts)
	if g == nil {
		return TriplesAnswer{}, false
	}
	info, cpost := side(g)
	inf, ok := info.get(surface)
	if !ok {
		return TriplesAnswer{}, false
	}
	ids, _ := cpost.get(inf.Canonical)
	ans := TriplesAnswer{Total: len(ids), Gen: ix.info(g)}
	if limit <= 0 || limit > ix.cfg.MaxResults {
		limit = ix.cfg.MaxResults
	}
	if len(ids) > limit {
		ids = ids[:limit]
		ans.Truncated = true
	}
	ans.Triples = make([]okb.Triple, len(ids))
	for i, id := range ids {
		ans.Triples[i] = g.triples[id]
		ans.Triples[i].ID = id
	}
	return ans, true
}
