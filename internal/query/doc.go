// Package query is the serving stack's read path: materialized
// canonical-KB views — alias→canonical-entity resolution, cluster
// membership, entity/relation alias sets, and triple postings keyed by
// canonical subject and relation — maintained incrementally as each
// ingest lands and queried from immutable snapshots concurrent with
// ingest.
//
// # Delta-wise maintenance
//
// The write path (internal/core, internal/stream) already computes,
// per ingest, which partition blocks actually re-ran belief
// propagation. core.CanonDelta projects that dirty-block set onto
// phrases: the surfaces referenced by any variable of a ran block,
// plus the cut variables' phrases when the frozen boundary was
// refreshed, plus the conflict-resolution relabels (this build's, and
// the previous build's carried forward, since an un-re-applied relabel
// reverts silently). Index.Apply expands those seeds to the full set
// of keys whose answers can have moved —
//
//	D1 = seeds ∪ members(previous clusters of seeds)
//	D  = D1 ∪ members(current groups intersecting D1)
//
// — and rewrites only those keys, as a copy-on-write overlay over the
// previous generation. Per-ingest maintenance therefore scales with
// the dirty-block set, not the KB; the overlay chain is flattened
// whenever it exceeds Config.MaxLayers, bounding reader lookup cost at
// an amortized O(keyspace)/MaxLayers per ingest.
//
// # Lock-free snapshot reads
//
// Each generation is built privately by the single ingest writer and
// published with one atomic pointer swap. Query methods load the
// pointer once and answer entirely from that immutable generation:
// they never take the session's ingest lock, never block behind an
// in-flight inference pass, and never observe a half-applied update.
// Every answer carries GenInfo — the generation id and how many
// ingests it is behind — so callers can reason about staleness
// explicitly (the dynamic-query-evaluation discipline of Berkholz et
// al.: answer under updates from maintained views, not by rescanning).
package query
