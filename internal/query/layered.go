package query

// layered is a persistent string-keyed map assembled from copy-on-write
// overlay layers: each index generation adds one layer holding only the
// keys that generation rewrote (or tombstoned), sharing everything else
// with its parent by pointer. Lookups walk the chain newest-first, so a
// reader holding any published layer sees a frozen, consistent view no
// matter how many generations are stacked on top of it afterwards.
//
// Mutations (set/del) are only legal on the newest layer before its
// generation is published; after the atomic generation swap a layer is
// immutable. flatten collapses a chain into a single base layer — the
// compaction the index runs when the chain exceeds Config.MaxLayers,
// bounding lookup cost without copying the whole keyspace per ingest.
type layered[V any] struct {
	parent *layered[V]
	m      map[string]entry[V]
	depth  int // layers below this one
}

type entry[V any] struct {
	val V
	del bool
}

func newLayer[V any](parent *layered[V]) *layered[V] {
	l := &layered[V]{parent: parent, m: make(map[string]entry[V])}
	if parent != nil {
		l.depth = parent.depth + 1
	}
	return l
}

func (l *layered[V]) get(k string) (V, bool) {
	for n := l; n != nil; n = n.parent {
		if e, ok := n.m[k]; ok {
			if e.del {
				var zero V
				return zero, false
			}
			return e.val, true
		}
	}
	var zero V
	return zero, false
}

func (l *layered[V]) set(k string, v V) { l.m[k] = entry[V]{val: v} }
func (l *layered[V]) del(k string)      { l.m[k] = entry[V]{del: true} }

// flatten collapses the overlay chain into a single parentless layer
// holding exactly the live keys.
func (l *layered[V]) flatten() *layered[V] {
	var chain []*layered[V]
	for n := l; n != nil; n = n.parent {
		chain = append(chain, n)
	}
	out := &layered[V]{m: make(map[string]entry[V], len(chain[len(chain)-1].m))}
	for i := len(chain) - 1; i >= 0; i-- {
		for k, e := range chain[i].m {
			if e.del {
				delete(out.m, k)
			} else {
				out.m[k] = e
			}
		}
	}
	return out
}
