package query_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/okb"
	"repro/internal/query"
	"repro/internal/stream"
)

// capturedAnswers is everything one generation answered at publish
// time, for later comparison against the same generation via AsOf.
type capturedAnswers struct {
	resolutions map[string]query.Resolution
	clusters    map[string]query.ClusterAnswer
	triples     map[string]query.TriplesAnswer
}

func captureHead(ix *query.Index, surfaces []string) capturedAnswers {
	c := capturedAnswers{
		resolutions: map[string]query.Resolution{},
		clusters:    map[string]query.ClusterAnswer{},
		triples:     map[string]query.TriplesAnswer{},
	}
	for _, s := range surfaces {
		if r, ok := ix.ResolveNP(s); ok {
			c.resolutions[s] = r
		}
		if cl, ok := ix.NPCluster(s); ok {
			c.clusters[s] = cl
		}
		if ts, ok := ix.TriplesBySubject(s, 0); ok {
			c.triples[s] = ts
		}
	}
	return c
}

func TestAsOfBitwiseEqualsPublishTimeAnswers(t *testing.T) {
	sess := microSession(t, stream.Config{
		Core:  core.DefaultConfig(),
		Query: query.Config{Enable: true, RetainGenerations: 3},
	})
	surfaces := []string{"alphacorp", "alpha corp", "gammaworks", "epsilonics", "betalabs"}
	batches := [][]okb.Triple{
		{{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"}},
		{{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"}},
		{{Subj: "alpha corp", Pred: "buy", Obj: "betalabs"}},
		{{Subj: "epsilonics", Pred: "sue", Obj: "zetafoundry"}},
	}
	captured := map[int64]capturedAnswers{}
	for _, b := range batches {
		if _, err := sess.Ingest(b); err != nil {
			t.Fatal(err)
		}
		gi, ok := sess.Query().Generation()
		if !ok {
			t.Fatal("no generation after ingest")
		}
		captured[gi.Generation] = captureHead(sess.Query(), surfaces)
	}

	ix := sess.Query()
	if got := ix.Retained(); !reflect.DeepEqual(got, []int64{2, 3, 4}) {
		t.Fatalf("Retained() = %v, want [2 3 4]", got)
	}
	if ix.HasGeneration(1) || !ix.HasGeneration(2) {
		t.Fatalf("HasGeneration wrong: 1=%v 2=%v", ix.HasGeneration(1), ix.HasGeneration(2))
	}

	// Every retained generation answers exactly what it answered when it
	// was the head — same resolutions, members, postings, and Gen stamp.
	for _, gen := range ix.Retained() {
		want := captured[gen]
		for _, s := range surfaces {
			r, ok := ix.ResolveNP(s, query.AsOf(gen))
			wantR, wantOK := want.resolutions[s]
			if ok != wantOK {
				t.Fatalf("gen %d ResolveNP(%q) ok=%v, want %v", gen, s, ok, wantOK)
			}
			if ok {
				// Behind was captured live and legitimately differs; the
				// content and generation id must not.
				r.Gen.Behind, wantR.Gen.Behind = 0, 0
				if !reflect.DeepEqual(r, wantR) {
					t.Errorf("gen %d ResolveNP(%q) = %+v, want %+v", gen, s, r, wantR)
				}
			}
			c, ok := ix.NPCluster(s, query.AsOf(gen))
			if wantC, wantOK := want.clusters[s]; ok == wantOK && ok {
				c.Gen.Behind, wantC.Gen.Behind = 0, 0
				if !reflect.DeepEqual(c, wantC) {
					t.Errorf("gen %d NPCluster(%q) = %+v, want %+v", gen, s, c, wantC)
				}
			} else if ok != wantOK {
				t.Errorf("gen %d NPCluster(%q) ok=%v, want %v", gen, s, ok, wantOK)
			}
			ts, ok := ix.TriplesBySubject(s, 0, query.AsOf(gen))
			if wantT, wantOK := want.triples[s]; ok == wantOK && ok {
				ts.Gen.Behind, wantT.Gen.Behind = 0, 0
				if !reflect.DeepEqual(ts, wantT) {
					t.Errorf("gen %d TriplesBySubject(%q) = %+v, want %+v", gen, s, ts, wantT)
				}
			} else if ok != wantOK {
				t.Errorf("gen %d TriplesBySubject(%q) ok=%v, want %v", gen, s, ok, wantOK)
			}
		}
	}

	// A rolled-out or never-published generation is a miss, not an
	// answer from the wrong view.
	if _, ok := ix.ResolveNP("alphacorp", query.AsOf(1)); ok {
		t.Error("rolled-out generation 1 still answered")
	}
	if _, ok := ix.ResolveNP("alphacorp", query.AsOf(99)); ok {
		t.Error("unpublished generation answered")
	}
}

func TestRetractionTombstonesQueryAnswers(t *testing.T) {
	sess := microSession(t, stream.Config{
		Core:  core.DefaultConfig(),
		Query: query.Config{Enable: true, RetainGenerations: 4},
	})
	if _, err := sess.Ingest([]okb.Triple{
		{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"},
		{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Ingest([]okb.Triple{
		{Subj: "alphacorp", Pred: "acquire", Obj: "deltasoft"},
	}); err != nil {
		t.Fatal(err)
	}

	st, err := sess.Retract([]okb.Triple{{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Retracted != 1 || st.RemovedRPs != 1 {
		t.Fatalf("retract stats = %+v, want 1 triple and the rp 'hire' removed", st)
	}

	ix := sess.Query()
	gi, ok := ix.Generation()
	if !ok || gi.Generation != 3 || gi.Behind != 0 {
		t.Fatalf("generation after retract = %+v (ok=%v), want gen 3 behind 0", gi, ok)
	}

	// The phrases whose last live mention was retracted are gone from
	// every view; phrases still alive through other triples remain.
	if _, ok := ix.ResolveNP("gammaworks"); ok {
		t.Error("retracted-away NP still resolves")
	}
	if _, ok := ix.ResolveRP("hire"); ok {
		t.Error("retracted-away RP still resolves")
	}
	if _, ok := ix.ResolveNP("deltasoft"); !ok {
		t.Error("NP still live via another triple stopped resolving")
	}

	// Postings drop the dead id but keep surviving ids stable.
	ts, ok := ix.TriplesBySubject("alphacorp", 0)
	if !ok || ts.Total != 2 {
		t.Fatalf("TriplesBySubject(alphacorp) = %+v (ok=%v), want 2 live triples", ts, ok)
	}
	for _, tr := range ts.Triples {
		if tr.Subj == "gammaworks" {
			t.Errorf("dead triple surfaced in postings: %+v", tr)
		}
	}
	if ts.Triples[0].ID != 0 || ts.Triples[1].ID != 2 {
		t.Errorf("surviving triple ids moved: %d, %d (want 0, 2)", ts.Triples[0].ID, ts.Triples[1].ID)
	}

	// The pre-retraction generation is retained: as-of reads still see
	// the world before the retraction.
	r, ok := ix.ResolveNP("gammaworks", query.AsOf(2))
	if !ok || r.Gen.Generation != 2 {
		t.Fatalf("as-of read of pre-retraction generation failed: %+v (ok=%v)", r, ok)
	}
	ts2, ok := ix.TriplesByRelation("hire", 0, query.AsOf(2))
	if !ok || ts2.Total != 1 {
		t.Fatalf("as-of postings of retracted relation = %+v (ok=%v), want the 1 pre-retraction triple", ts2, ok)
	}
}
