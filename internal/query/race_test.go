package query_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/okb"
	"repro/internal/query"
	"repro/internal/stream"
)

// TestConcurrentIngestAndQuery hammers every query method from many
// goroutines while a writer streams batches through the session. Under
// -race this verifies the lock-free publication contract: readers
// never synchronize with the ingest lock, only with the atomic
// generation pointer, and every answer they see is internally
// consistent (a resolution's cluster always contains its surface).
func TestConcurrentIngestAndQuery(t *testing.T) {
	sess := microSession(t, stream.Config{Core: core.DefaultConfig(), Query: query.Config{Enable: true, MaxLayers: 2}})
	if _, err := sess.Ingest([]okb.Triple{{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"}}); err != nil {
		t.Fatal(err)
	}
	ix := sess.Query()

	var stop atomic.Bool
	var reads atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if res, ok := ix.ResolveNP("alphacorp"); ok {
					c, ok2 := ix.NPCluster("alphacorp")
					if !ok2 {
						t.Error("resolved surface has no cluster")
						return
					}
					found := false
					for _, m := range c.Members {
						if m == "alphacorp" {
							found = true
						}
					}
					if !found {
						t.Errorf("cluster %q misses its own surface", res.Canonical)
						return
					}
					// Behind counts ingests begun after this answer's
					// generation; racing a fast writer it can be any
					// non-negative value, never negative.
					if res.Gen.Behind < 0 {
						t.Errorf("behind = %d, want >= 0", res.Gen.Behind)
						return
					}
				}
				ix.ResolveRP("acquire")
				ix.EntityAliases("e1")
				ix.TriplesBySubject("alphacorp", 0)
				ix.TriplesByRelation("acquire", 0)
				ix.Generation()
				reads.Add(1)
			}
		}()
	}

	for i := 0; i < 12; i++ {
		batch := []okb.Triple{
			{Subj: "alphacorp", Pred: "acquire", Obj: fmt.Sprintf("startup %d", i)},
			{Subj: fmt.Sprintf("founder %d", i), Pred: "sue", Obj: "alphacorp"},
		}
		if _, err := sess.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
	// Micro-world ingests can outrun goroutine scheduling; keep the
	// readers alive until they have demonstrably overlapped the index.
	for reads.Load() < 256 {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	gi, ok := ix.Generation()
	if !ok || gi.Generation != 13 || gi.Behind != 0 {
		t.Fatalf("final generation = %+v (ok=%v), want generation 13 behind 0", gi, ok)
	}
	// And the settled index still matches the brute force exactly.
	var accumulated []okb.Triple
	accumulated = append(accumulated, okb.Triple{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"})
	for i := 0; i < 12; i++ {
		accumulated = append(accumulated,
			okb.Triple{Subj: "alphacorp", Pred: "acquire", Obj: fmt.Sprintf("startup %d", i)},
			okb.Triple{Subj: fmt.Sprintf("founder %d", i), Pred: "sue", Obj: "alphacorp"})
	}
	verify(t, ix, sess.Snapshot(), accumulated)
}
