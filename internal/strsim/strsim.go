// Package strsim implements the string-similarity measures the paper's
// signals and baselines rely on: Levenshtein distance (normalized, the
// f_LD linking signal), Jaro and Jaro-Winkler similarity (the Text
// Similarity baseline of Galárraga et al.), character n-gram Jaccard
// (the f_ngram linking signal, Nakashole et al. 2013), and plain token
// Jaccard (the Attribute Overlap baseline).
//
// All similarities are symmetric and return values in [0, 1] with 1 for
// identical non-empty strings. Comparisons are case-insensitive: inputs
// are lowercased before measuring, since OKB surface forms and CKB
// identifiers differ in capitalization conventions.
package strsim

import (
	"strings"
	"unicode/utf8"
)

// Levenshtein returns the edit distance between a and b: the minimum
// number of single-rune insertions, deletions, or substitutions needed
// to transform a into b.
func Levenshtein(a, b string) int {
	ra, rb := []rune(strings.ToLower(a)), []rune(strings.ToLower(b))
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			curr[j] = min3(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinSim normalizes Levenshtein distance to a similarity in
// [0, 1]: 1 - d(a,b)/max(|a|,|b|). Two empty strings score 1.
func LevenshteinSim(a, b string) float64 {
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	if maxLen == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// Jaro returns the Jaro similarity between a and b.
func Jaro(a, b string) float64 {
	ra, rb := []rune(strings.ToLower(a)), []rune(strings.ToLower(b))
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := make([]bool, la)
	matchedB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchedB[j] || ra[i] != rb[j] {
				continue
			}
			matchedA[i] = true
			matchedB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched runes.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(transpositions)/2)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity with the standard
// prefix scale 0.1 and maximum prefix length 4.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	ra, rb := []rune(strings.ToLower(a)), []rune(strings.ToLower(b))
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// NgramSet returns the set of character n-grams of s (lowercased, with
// spaces collapsed). Strings shorter than n contribute themselves as a
// single gram so that very short strings still compare non-trivially.
func NgramSet(s string, n int) map[string]bool {
	s = strings.ToLower(strings.Join(strings.Fields(s), " "))
	set := make(map[string]bool)
	runes := []rune(s)
	if len(runes) < n {
		if len(runes) > 0 {
			set[s] = true
		}
		return set
	}
	for i := 0; i+n <= len(runes); i++ {
		set[string(runes[i:i+n])] = true
	}
	return set
}

// NgramJaccard returns the Jaccard similarity between the character
// n-gram sets of a and b. This is the paper's f_ngram signal; the paper
// follows Nakashole et al. (2013), and we default callers to n = 3.
func NgramJaccard(a, b string, n int) float64 {
	sa, sb := NgramSet(a, n), NgramSet(b, n)
	return jaccard(sa, sb)
}

// TokenJaccard returns the Jaccard similarity between the lowercase
// whitespace-token sets of a and b (the Attribute Overlap baseline uses
// this over attribute sets).
func TokenJaccard(a, b string) float64 {
	sa := toSet(strings.Fields(strings.ToLower(a)))
	sb := toSet(strings.Fields(strings.ToLower(b)))
	return jaccard(sa, sb)
}

// SetJaccard returns the Jaccard similarity of two arbitrary string sets.
func SetJaccard(a, b map[string]bool) float64 { return jaccard(a, b) }

func toSet(ts []string) map[string]bool {
	set := make(map[string]bool, len(ts))
	for _, t := range ts {
		set[t] = true
	}
	return set
}

func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for x := range a {
		if b[x] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
