package strsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
		{"a", "b", 1},
		{"Maryland", "maryland", 0}, // case-insensitive
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	f := func(a, b string) bool {
		d := Levenshtein(a, b)
		// Symmetry and identity-of-indiscernibles (on lowercased forms).
		if d != Levenshtein(b, a) {
			return false
		}
		if a == b && d != 0 {
			return false
		}
		return d >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinSimRange(t *testing.T) {
	if got := LevenshteinSim("abc", "abc"); got != 1 {
		t.Errorf("identical sim = %v, want 1", got)
	}
	if got := LevenshteinSim("", ""); got != 1 {
		t.Errorf("empty sim = %v, want 1", got)
	}
	if got := LevenshteinSim("abc", "xyz"); got != 0 {
		t.Errorf("disjoint sim = %v, want 0", got)
	}
}

func TestJaroKnown(t *testing.T) {
	// Classic reference values.
	cases := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.944444},
		{"DIXON", "DICKSONX", 0.766667},
		{"JELLYFISH", "SMELLYFISH", 0.896296},
		{"abc", "abc", 1},
		{"", "", 1},
		{"abc", "", 0},
	}
	for _, c := range cases {
		if got := Jaro(c.a, c.b); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("Jaro(%q,%q) = %.6f, want %.6f", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.961111},
		{"DWAYNE", "DUANE", 0.840000},
	}
	for _, c := range cases {
		if got := JaroWinkler(c.a, c.b); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("JaroWinkler(%q,%q) = %.6f, want %.6f", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerPrefixBoost(t *testing.T) {
	// Shared prefix must not decrease similarity relative to Jaro.
	f := func(a, b string) bool {
		return JaroWinkler(a, b) >= Jaro(a, b)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNgramSet(t *testing.T) {
	set := NgramSet("abcd", 3)
	if len(set) != 2 || !set["abc"] || !set["bcd"] {
		t.Errorf("NgramSet(abcd,3) = %v", set)
	}
	// Short strings yield themselves.
	set = NgramSet("ab", 3)
	if len(set) != 1 || !set["ab"] {
		t.Errorf("NgramSet(ab,3) = %v", set)
	}
	if len(NgramSet("", 3)) != 0 {
		t.Error("empty string must yield empty gram set")
	}
}

func TestNgramJaccard(t *testing.T) {
	if got := NgramJaccard("capital of", "capital of", 3); got != 1 {
		t.Errorf("identical ngram jaccard = %v, want 1", got)
	}
	sim := NgramJaccard("is the capital of", "is the capital city of", 3)
	dis := NgramJaccard("is the capital of", "plays for", 3)
	if sim <= dis {
		t.Errorf("related phrases (%v) should outscore unrelated (%v)", sim, dis)
	}
}

func TestTokenJaccard(t *testing.T) {
	if got := TokenJaccard("a b c", "a b c"); got != 1 {
		t.Errorf("identical = %v, want 1", got)
	}
	if got := TokenJaccard("a b", "c d"); got != 0 {
		t.Errorf("disjoint = %v, want 0", got)
	}
	if got := TokenJaccard("a b", "b c"); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("TokenJaccard = %v, want 1/3", got)
	}
}

func TestSimilaritiesInRange(t *testing.T) {
	f := func(a, b string) bool {
		for _, s := range []float64{
			LevenshteinSim(a, b), Jaro(a, b), JaroWinkler(a, b),
			NgramJaccard(a, b, 3), TokenJaccard(a, b),
		} {
			if s < -1e-12 || s > 1+1e-12 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSimilaritiesSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return math.Abs(Jaro(a, b)-Jaro(b, a)) < 1e-12 &&
			math.Abs(NgramJaccard(a, b, 3)-NgramJaccard(b, a, 3)) < 1e-12 &&
			math.Abs(LevenshteinSim(a, b)-LevenshteinSim(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
