package signals

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/okb"
	"repro/internal/text"
)

func resources(t *testing.T) (*Resources, *datasets.Dataset) {
	t.Helper()
	ds, err := datasets.Generate(datasets.ReVerb45K(0.01))
	if err != nil {
		t.Fatal(err)
	}
	return New(ds.OKB, ds.CKB, ds.Emb, ds.PPDB), ds
}

func TestSignalsInRange(t *testing.T) {
	r, ds := resources(t)
	nps := ds.OKB.NPs()
	rps := ds.OKB.RPs()
	eids := ds.CKB.EntityIDs()
	rids := ds.CKB.RelationIDs()
	check := func(name string, v float64) {
		if v < 0 || v > 1 {
			t.Errorf("%s = %v out of [0,1]", name, v)
		}
	}
	for i := 0; i < 10 && i < len(nps); i++ {
		for j := 0; j < 10 && j < len(nps); j++ {
			check("NPIDF", r.NPIDF(nps[i], nps[j]))
			check("EmbSim", r.EmbSim(nps[i], nps[j]))
			check("PPDBSim", r.PPDBSim(nps[i], nps[j]))
		}
		for k := 0; k < 3 && k < len(eids); k++ {
			check("Pop", r.Pop(nps[i], eids[k]))
			check("EntEmb", r.EntEmb(nps[i], eids[k]))
			check("EntPPDB", r.EntPPDB(nps[i], eids[k]))
		}
	}
	for i := 0; i < 8 && i < len(rps); i++ {
		for j := 0; j < 8 && j < len(rps); j++ {
			check("RPIDF", r.RPIDF(rps[i], rps[j]))
			check("AMIESim", r.AMIESim(rps[i], rps[j]))
			check("KBPSim", r.KBPSim(rps[i], rps[j]))
		}
		for k := 0; k < 3 && k < len(rids); k++ {
			check("RelNgram", r.RelNgram(rps[i], rids[k]))
			check("RelLD", r.RelLD(rps[i], rids[k]))
			check("RelEmb", r.RelEmb(rps[i], rids[k]))
			check("RelPPDB", r.RelPPDB(rps[i], rids[k]))
		}
	}
}

func TestLinkingSignalsUnknownTarget(t *testing.T) {
	r, _ := resources(t)
	if r.EntEmb("anything", "nonexistent") != 0 {
		t.Error("unknown entity should score 0")
	}
	if r.RelNgram("anything", "nonexistent") != 0 {
		t.Error("unknown relation should score 0")
	}
}

func TestGoldPairsScoreHigher(t *testing.T) {
	// On average, same-gold-cluster NP pairs should get a higher IDF
	// overlap than random cross-cluster pairs (they share rare tokens).
	r, ds := resources(t)
	type pair struct{ a, b string }
	byGroup := map[string][]string{}
	for s, gid := range ds.GoldNPCluster {
		byGroup[gid] = append(byGroup[gid], s)
	}
	var samePairs, crossPairs []pair
	var prev string
	for _, ss := range byGroup {
		if len(ss) > 1 {
			samePairs = append(samePairs, pair{ss[0], ss[1]})
		}
		if prev != "" {
			crossPairs = append(crossPairs, pair{prev, ss[0]})
		}
		prev = ss[0]
	}
	if len(samePairs) < 3 || len(crossPairs) < 3 {
		t.Skip("dataset too small for signal-quality check")
	}
	avg := func(ps []pair) float64 {
		var s float64
		for _, p := range ps {
			s += r.NPIDF(p.a, p.b) + r.EmbSim(p.a, p.b)
		}
		return s / float64(len(ps))
	}
	if avg(samePairs) <= avg(crossPairs) {
		t.Errorf("gold pairs (%v) should outscore cross pairs (%v)",
			avg(samePairs), avg(crossPairs))
	}
}

func TestPopFavorsGoldEntity(t *testing.T) {
	r, ds := resources(t)
	wins, total := 0, 0
	for surface, eid := range ds.GoldNPLink {
		if eid == "" {
			continue
		}
		cands := ds.CKB.CandidateEntities(surface, 5)
		if len(cands) < 2 {
			continue
		}
		total++
		goldPop := r.Pop(surface, eid)
		better := true
		for _, c := range cands {
			if c.ID != eid && r.Pop(surface, c.ID) > goldPop {
				better = false
			}
		}
		if better {
			wins++
		}
	}
	if total == 0 {
		t.Skip("no ambiguous surfaces")
	}
	if float64(wins)/float64(total) < 0.5 {
		t.Errorf("popularity favors gold only %d/%d times", wins, total)
	}
}

func TestBlockPairs(t *testing.T) {
	phrases := []string{
		"university of maryland",
		"maryland",
		"warren buffett",
		"buffett",
		"granite holdings",
	}
	idf := text.NewIDFTable(phrases)
	pairs := BlockPairs(phrases, idf, 0.3)
	has := func(i, j int) bool {
		for _, p := range pairs {
			if p.I == i && p.J == j {
				return true
			}
		}
		return false
	}
	if !has(2, 3) {
		t.Errorf("buffett pair should be blocked together: %v", pairs)
	}
	if has(0, 4) || has(2, 4) {
		t.Errorf("token-disjoint phrases must not pair: %v", pairs)
	}
	for _, p := range pairs {
		if p.Sim < 0.3 {
			t.Errorf("pair below threshold: %+v", p)
		}
		if p.I >= p.J {
			t.Errorf("pair not ordered: %+v", p)
		}
	}
}

func TestBlockPairsDeterministicSorted(t *testing.T) {
	phrases := []string{"a b", "b c", "c d", "a d", "b d"}
	idf := text.NewIDFTable(phrases)
	p1 := BlockPairs(phrases, idf, 0.1)
	p2 := BlockPairs(phrases, idf, 0.1)
	if len(p1) != len(p2) {
		t.Fatal("nondeterministic blocking")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("nondeterministic pair order")
		}
		if i > 0 && (p1[i-1].I > p1[i].I || (p1[i-1].I == p1[i].I && p1[i-1].J > p1[i].J)) {
			t.Fatal("pairs not sorted")
		}
	}
}

func TestBlockPairsThresholdOne(t *testing.T) {
	phrases := []string{"exact phrase", "exact phrase x", "other"}
	idf := text.NewIDFTable(phrases)
	pairs := BlockPairs(phrases, idf, 1.0)
	for _, p := range pairs {
		if p.Sim < 1.0 {
			t.Errorf("threshold 1.0 leaked pair %+v", p)
		}
	}
}

func TestExtendPinsEpochModels(t *testing.T) {
	r, ds := resources(t)
	nps := ds.OKB.NPs()
	rps := ds.OKB.RPs()
	if len(nps) < 2 || len(rps) < 2 {
		t.Skip("dataset too small")
	}
	batch := []okb.Triple{{Subj: nps[0], Pred: rps[0], Obj: "a brand new venture"}}
	grown := ds.OKB.Append(batch, true)
	ext := r.Extend(grown)

	if ext.OKB != grown {
		t.Fatalf("Extend must adopt the grown store")
	}
	if ext.Emb != r.Emb || ext.PPDB != r.PPDB || ext.AMIE != r.AMIE || ext.KBP != r.KBP || ext.CKB != r.CKB {
		t.Errorf("Extend must pin the epoch's signal models")
	}
	// Pairwise signals over existing phrases are unchanged by the append.
	for i := 0; i < 5 && i < len(nps); i++ {
		for j := i + 1; j < 5 && j < len(nps); j++ {
			if got, want := ext.NPIDF(nps[i], nps[j]), r.NPIDF(nps[i], nps[j]); got != want {
				t.Fatalf("NPIDF(%q,%q) drifted across Extend: %v != %v", nps[i], nps[j], got, want)
			}
		}
	}
	for i := 0; i < 5 && i < len(rps); i++ {
		for j := i + 1; j < 5 && j < len(rps); j++ {
			if got, want := ext.AMIESim(rps[i], rps[j]), r.AMIESim(rps[i], rps[j]); got != want {
				t.Fatalf("AMIESim(%q,%q) drifted across Extend: %v != %v", rps[i], rps[j], got, want)
			}
		}
	}
	// The new phrase is visible to mention-based lookups.
	if ext.Mentions("a brand new venture") != 1 {
		t.Errorf("new phrase not indexed in extended resources")
	}
}
