// Package signals implements the paper's ten feature functions
// (Sections 3.1.3–3.2.4) over the substrate resources, plus the
// blocking step that decides which NP/RP pairs receive
// canonicalization variables (IDF token overlap >= 0.5, Section 4.1).
//
// Canonicalization signals (pairwise, symmetric, in [0, 1]):
//
//	f_idf   — IDF token overlap            (NPs and RPs)
//	f_emb   — phrase-embedding cosine      (NPs and RPs)
//	f_PPDB  — paraphrase-DB equivalence    (NPs and RPs)
//	f_AMIE  — bidirectional rule mining    (RPs only)
//	f_KBP   — relation-category agreement  (RPs only)
//
// Linking signals (phrase vs CKB target, in [0, 1]):
//
//	f_pop    — anchor popularity           (entities)
//	f'_emb   — embedding cosine with the target's canonical name
//	f'_PPDB  — paraphrase-DB equivalence with the canonical name
//	f_ngram  — character-trigram Jaccard   (relations)
//	f_LD     — normalized Levenshtein      (relations)
package signals

import (
	"sort"

	"repro/internal/amie"
	"repro/internal/ckb"
	"repro/internal/embedding"
	"repro/internal/kbp"
	"repro/internal/okb"
	"repro/internal/ppdb"
	"repro/internal/strsim"
	"repro/internal/text"
)

// BlockingThreshold is the IDF-token-overlap threshold above which a
// pair of phrases receives a canonicalization variable (paper: 0.5).
const BlockingThreshold = 0.5

// NgramSize is the character n-gram order for f_ngram.
const NgramSize = 3

// Resources bundles every substrate the feature functions read.
type Resources struct {
	OKB  *okb.Store
	CKB  *ckb.Store
	Emb  *embedding.Model
	PPDB *ppdb.DB
	AMIE *amie.Miner
	KBP  *kbp.Classifier

	extensionState // lazily-built indexes for the extension signals
}

// New assembles the resources for a dataset, mining AMIE rules and
// building the KBP classifier on the fly.
func New(okbStore *okb.Store, ckbStore *ckb.Store, emb *embedding.Model, db *ppdb.DB) *Resources {
	return &Resources{
		OKB:  okbStore,
		CKB:  ckbStore,
		Emb:  emb,
		PPDB: db,
		AMIE: amie.Mine(okbStore, amie.Config{}),
		KBP:  kbp.NewClassifier(ckbStore),
	}
}

// Extend returns Resources over the grown OKB store while pinning this
// epoch's derived signal models — embeddings, paraphrase DB, AMIE rules,
// KBP classifier — so that signal values for existing phrases are
// unchanged by the append. This is the append-safe path streaming
// ingest takes between epoch refreshes; a refresh calls New instead,
// re-mining AMIE (and, with a frozen-IDF store, recounting IDF) over
// everything seen so far. The lazily-built extension-signal indexes are
// dropped and rebuilt over the grown store on first use.
func (r *Resources) Extend(grown *okb.Store) *Resources {
	return &Resources{
		OKB:  grown,
		CKB:  r.CKB,
		Emb:  r.Emb,
		PPDB: r.PPDB,
		AMIE: r.AMIE,
		KBP:  r.KBP,
	}
}

// ---------- canonicalization signals ----------

// NPIDF is Sim_idf over two noun phrases using the OKB's NP-token
// frequency table.
func (r *Resources) NPIDF(a, b string) float64 { return r.OKB.NPIDF().Overlap(a, b) }

// RPIDF is Sim_idf over two relation phrases.
func (r *Resources) RPIDF(a, b string) float64 { return r.OKB.RPIDF().Overlap(a, b) }

// EmbSim is Sim_emb: the cosine similarity of averaged word
// embeddings, clipped to [0, 1]. It applies to NPs and RPs alike.
func (r *Resources) EmbSim(a, b string) float64 { return r.Emb.PhraseSimilarity(a, b) }

// PPDBSim is Sim_PPDB: 1 when both phrases share a paraphrase-cluster
// representative, else 0.
func (r *Resources) PPDBSim(a, b string) float64 { return r.PPDB.Sim(a, b) }

// AMIESim is Sim_AMIE over two relation phrases.
func (r *Resources) AMIESim(a, b string) float64 { return r.AMIE.Sim(a, b) }

// KBPSim is Sim_KBP over two relation phrases.
func (r *Resources) KBPSim(a, b string) float64 { return r.KBP.Sim(a, b) }

// ---------- linking signals ----------

// Pop is f_pop: the anchor-statistics prior P(entity | surface form).
func (r *Resources) Pop(np, entityID string) float64 { return r.CKB.Popularity(np, entityID) }

// EntEmb is f'_emb for entities: embedding similarity between the NP
// and the candidate entity's canonical name.
func (r *Resources) EntEmb(np, entityID string) float64 {
	e := r.CKB.Entity(entityID)
	if e == nil {
		return 0
	}
	return r.Emb.PhraseSimilarity(np, e.Name)
}

// EntPPDB is f'_PPDB for entities.
func (r *Resources) EntPPDB(np, entityID string) float64 {
	e := r.CKB.Entity(entityID)
	if e == nil {
		return 0
	}
	return r.PPDB.Sim(np, e.Name)
}

// RelNgram is f_ngram: character-trigram Jaccard between the RP and
// the candidate relation's best-matching alias.
func (r *Resources) RelNgram(rp, relationID string) float64 {
	return r.bestAliasSim(rp, relationID, func(a, b string) float64 {
		return strsim.NgramJaccard(a, b, NgramSize)
	})
}

// RelLD is f_LD: normalized Levenshtein similarity between the RP and
// the candidate relation's best-matching alias.
func (r *Resources) RelLD(rp, relationID string) float64 {
	return r.bestAliasSim(rp, relationID, strsim.LevenshteinSim)
}

// RelEmb is f'_emb for relations.
func (r *Resources) RelEmb(rp, relationID string) float64 {
	return r.bestAliasSim(rp, relationID, r.Emb.PhraseSimilarity)
}

// RelPPDB is f'_PPDB for relations.
func (r *Resources) RelPPDB(rp, relationID string) float64 {
	return r.bestAliasSim(rp, relationID, r.PPDB.Sim)
}

// bestAliasSim scores rp against every textual alias of the relation
// and keeps the best, since CKB relation names ("location.contained_by")
// are identifiers rather than natural phrases.
func (r *Resources) bestAliasSim(rp, relationID string, sim func(a, b string) float64) float64 {
	rel := r.CKB.Relation(relationID)
	if rel == nil {
		return 0
	}
	best := 0.0
	for _, alias := range rel.Aliases {
		if s := sim(rp, alias); s > best {
			best = s
		}
	}
	return best
}

// ---------- blocking ----------

// Pair is a blocked pair of phrase indexes (into the sorted phrase
// list handed to BlockPairs) with its IDF-overlap similarity.
type Pair struct {
	I, J int
	Sim  float64
}

// BlockPairs returns the pairs of phrases whose IDF token overlap is at
// least threshold. It uses an inverted token index so only pairs
// sharing a token are scored — phrases with no common token have
// overlap 0 and can never pass a positive threshold.
func BlockPairs(phrases []string, idf *text.IDFTable, threshold float64) []Pair {
	index := map[string][]int{}
	for i, p := range phrases {
		for tok := range text.TokenSet(p) {
			index[tok] = append(index[tok], i)
		}
	}
	seen := map[[2]int]bool{}
	var pairs []Pair
	for _, ids := range index {
		if len(ids) < 2 {
			continue
		}
		for a := 0; a < len(ids); a++ {
			for b := a + 1; b < len(ids); b++ {
				i, j := ids[a], ids[b]
				if i > j {
					i, j = j, i
				}
				key := [2]int{i, j}
				if seen[key] {
					continue
				}
				seen[key] = true
				if s := idf.Overlap(phrases[i], phrases[j]); s >= threshold {
					pairs = append(pairs, Pair{I: i, J: j, Sim: s})
				}
			}
		}
	}
	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x].I != pairs[y].I {
			return pairs[x].I < pairs[y].I
		}
		return pairs[x].J < pairs[y].J
	})
	return pairs
}
