package signals

import (
	"testing"

	"repro/internal/ckb"
	"repro/internal/embedding"
	"repro/internal/okb"
	"repro/internal/ppdb"
)

// tinyResources builds a handcrafted world exercising both extension
// signals.
func tinyResources(t *testing.T) *Resources {
	t.Helper()
	store, err := ckb.NewStore(
		[]ckb.Entity{
			{ID: "e1", Name: "springfield", Types: []string{"location"}},
			{ID: "e2", Name: "jane smith", Types: []string{"person"}},
			{ID: "e3", Name: "smith industries", Aliases: []string{"smith"}, Types: []string{"company"}},
		},
		[]ckb.Relation{
			{ID: "r1", Name: "people.birthplace", Category: "biography",
				Aliases: []string{"be born in"}, Domain: "person", Range: "location"},
			{ID: "r2", Name: "employment.employer", Category: "employment",
				Aliases: []string{"work for"}, Domain: "person", Range: "company"},
		},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	triples := []okb.Triple{
		{Subj: "jane smith", Pred: "was born in", Obj: "springfield"},
		{Subj: "j smith", Pred: "was born in", Obj: "springfield"},
		{Subj: "jane smith", Pred: "works for", Obj: "smith industries"},
	}
	emb := embedding.Train(nil, embedding.Config{Dim: 4})
	return New(okb.NewStore(triples), store, emb, ppdb.NewBuilder().Build())
}

func TestAttrSimSharedAttributes(t *testing.T) {
	r := tinyResources(t)
	// "jane smith" and "j smith" share the (born-in, springfield)
	// attribute; "springfield" has entirely different attributes.
	same := r.AttrSim("jane smith", "j smith")
	diff := r.AttrSim("jane smith", "springfield")
	if same <= diff {
		t.Errorf("shared-attribute pair (%v) should outscore disjoint (%v)", same, diff)
	}
	if same <= 0 {
		t.Errorf("AttrSim of co-asserted NPs = %v, want > 0", same)
	}
}

func TestAttrSimRange(t *testing.T) {
	r := tinyResources(t)
	for _, a := range []string{"jane smith", "j smith", "springfield", "unknown"} {
		for _, b := range []string{"jane smith", "springfield", "unknown"} {
			v := r.AttrSim(a, b)
			if v < 0 || v > 1 {
				t.Errorf("AttrSim(%q,%q) = %v out of range", a, b, v)
			}
		}
	}
}

func TestTypeCompat(t *testing.T) {
	r := tinyResources(t)
	// "smith" fills the object slot of "works for" (range: company) in
	// no triple, but "smith industries" does. The surface "jane smith"
	// fills subject slots expecting person. A person entity should be
	// type-compatible with "jane smith"; the location entity should not.
	person := r.TypeCompat("jane smith", "e2")
	location := r.TypeCompat("jane smith", "e1")
	if person <= location {
		t.Errorf("person compat (%v) should beat location compat (%v)", person, location)
	}
	if person != 1 {
		t.Errorf("all of jane smith's slots expect person; compat = %v, want 1", person)
	}
}

func TestTypeCompatUnknowns(t *testing.T) {
	r := tinyResources(t)
	if r.TypeCompat("never seen", "e1") != 0 {
		t.Error("unseen surface should have no expectations")
	}
	if r.TypeCompat("jane smith", "bogus") != 0 {
		t.Error("unknown entity should score 0")
	}
}

func TestMentions(t *testing.T) {
	r := tinyResources(t)
	if got := r.Mentions("jane smith"); got != 2 {
		t.Errorf("Mentions = %d, want 2", got)
	}
	if got := r.Mentions("never"); got != 0 {
		t.Errorf("Mentions of unseen = %d, want 0", got)
	}
}

func TestExtensionIndexesConcurrentSafe(t *testing.T) {
	r := tinyResources(t)
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func() {
			_ = r.AttrSim("jane smith", "j smith")
			_ = r.TypeCompat("jane smith", "e2")
			done <- true
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
