package signals

import (
	"sync"

	"repro/internal/strsim"
	"repro/internal/text"
)

// Extension signals beyond the paper's ten feature functions. The
// paper's Section 1 claims JOCL "is able to extend to fit any new
// signals" via additional factor-node features; these two exercise
// that claim (the bench package's extension ablation quantifies them):
//
//	f_attr — attribute-overlap similarity between NPs (Galárraga et
//	         al. 2014 use it as a standalone baseline; here it is one
//	         more canonicalization feature)
//	f_type — type compatibility between a candidate entity and the
//	         type its triples' relations expect of the slot it fills

// attrSets lazily materializes each NP's attribute set: the
// (normalized predicate, direction-tagged normalized other argument)
// pairs of the triples it occurs in.
func (r *Resources) attrSets() map[string]map[string]bool {
	r.attrOnce.Do(func() {
		r.attrs = make(map[string]map[string]bool)
		add := func(np, attr string) {
			m := r.attrs[np]
			if m == nil {
				m = map[string]bool{}
				r.attrs[np] = m
			}
			m[attr] = true
		}
		for i := 0; i < r.OKB.Len(); i++ {
			if r.OKB.Dead(i) {
				continue
			}
			t := r.OKB.Triple(i)
			rp := text.Normalize(t.Pred)
			add(t.Subj, rp+"\x00"+text.Normalize(t.Obj))
			add(t.Obj, rp+"\x01"+text.Normalize(t.Subj))
		}
	})
	return r.attrs
}

// AttrSim is f_attr: the Jaccard similarity of two NPs' attribute
// sets. NPs asserted with the same relations against the same
// arguments are likely coreferent even when their surface forms share
// nothing.
func (r *Resources) AttrSim(a, b string) float64 {
	sets := r.attrSets()
	return strsim.SetJaccard(sets[a], sets[b])
}

// slotExpectations lazily computes, per NP surface form, the multiset
// of entity types its triples expect of it: for each mention, the
// Domain (subject slot) or Range (object slot) of the best candidate
// relation of the triple's predicate.
func (r *Resources) slotExpectations() map[string]map[string]int {
	r.typeOnce.Do(func() {
		r.slotTypes = make(map[string]map[string]int)
		relType := func(rp string, subjSlot bool) string {
			cands := r.CKB.CandidateRelations(rp, 1)
			if len(cands) == 0 {
				return ""
			}
			rel := r.CKB.Relation(cands[0].ID)
			if rel == nil {
				return ""
			}
			if subjSlot {
				return rel.Domain
			}
			return rel.Range
		}
		add := func(np, typ string) {
			if typ == "" {
				return
			}
			m := r.slotTypes[np]
			if m == nil {
				m = map[string]int{}
				r.slotTypes[np] = m
			}
			m[typ]++
		}
		for i := 0; i < r.OKB.Len(); i++ {
			if r.OKB.Dead(i) {
				continue
			}
			t := r.OKB.Triple(i)
			add(t.Subj, relType(t.Pred, true))
			add(t.Obj, relType(t.Pred, false))
		}
	})
	return r.slotTypes
}

// TypeCompat is f_type: the fraction of the NP's slot-type
// expectations the candidate entity's declared types satisfy. An
// entity of type "person" filling slots that expect "location" is a
// poor link no matter how similar the strings are.
func (r *Resources) TypeCompat(np, entityID string) float64 {
	e := r.CKB.Entity(entityID)
	if e == nil {
		return 0
	}
	expect := r.slotExpectations()[np]
	if len(expect) == 0 {
		return 0
	}
	entTypes := map[string]bool{}
	for _, t := range e.Types {
		entTypes[t] = true
	}
	matched, total := 0, 0
	for typ, n := range expect {
		total += n
		if entTypes[typ] {
			matched += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(matched) / float64(total)
}

// extensionState carries the lazily-built extension-signal indexes.
type extensionState struct {
	attrOnce sync.Once
	attrs    map[string]map[string]bool

	typeOnce  sync.Once
	slotTypes map[string]map[string]int
}

// Mentions returns how many OIE-triple slots the NP surface fills,
// a cheap salience proxy used by diagnostics and examples.
func (r *Resources) Mentions(np string) int {
	return len(r.OKB.NPMentions(np))
}
