package corpus

import (
	"reflect"
	"testing"
)

func groups() []Group {
	return []Group{
		{Key: "e1", Phrases: []string{"university of maryland", "UMD"}, Topic: 0, Weight: 2},
		{Key: "e2", Phrases: []string{"warren buffett", "buffett"}, Topic: 1, Weight: 1},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(groups(), Config{Seed: 42})
	b := Generate(groups(), Config{Seed: 42})
	if !reflect.DeepEqual(a.Sentences, b.Sentences) {
		t.Error("same seed must give identical corpus")
	}
	c := Generate(groups(), Config{Seed: 43})
	if reflect.DeepEqual(a.Sentences, c.Sentences) {
		t.Error("different seeds should differ")
	}
}

func TestGenerateSentenceCounts(t *testing.T) {
	c := Generate(groups(), Config{Seed: 1, SentencesPer: 5})
	// weight 2 -> 10 sentences, weight 1 -> 5 sentences.
	if len(c.Sentences) != 15 {
		t.Errorf("sentences = %d, want 15", len(c.Sentences))
	}
}

func TestGenerateMentionsAppear(t *testing.T) {
	c := Generate(groups(), Config{Seed: 1})
	found := map[string]bool{}
	for _, s := range c.Sentences {
		for i := range s {
			if s[i] == "umd" {
				found["umd"] = true
			}
			if s[i] == "buffett" {
				found["buffett"] = true
			}
		}
	}
	if !found["umd"] || !found["buffett"] {
		t.Errorf("alias tokens missing from corpus: %v", found)
	}
}

func TestTopicVocabDisjoint(t *testing.T) {
	c := Generate(groups(), Config{Seed: 5})
	if len(c.TopicVocab) != 2 {
		t.Fatalf("topics = %d, want 2", len(c.TopicVocab))
	}
	seen := map[string]int{}
	for t0, pool := range c.TopicVocab {
		for _, w := range pool {
			if prev, ok := seen[w]; ok && prev != t0 {
				t.Errorf("context word %q shared across topics %d and %d", w, prev, t0)
			}
			seen[w] = t0
		}
	}
}

func TestDefaultWeight(t *testing.T) {
	c := Generate([]Group{{Key: "x", Phrases: []string{"solo"}, Topic: 0, Weight: 0}},
		Config{Seed: 1, SentencesPer: 3})
	if len(c.Sentences) != 3 {
		t.Errorf("weight 0 should act as 1: got %d sentences", len(c.Sentences))
	}
}
