// Package corpus synthesizes the text-corpus substrate the paper's
// external resources are derived from: fastText-style embeddings are
// trained on a large corpus, IDF statistics come from a collection, and
// entity popularity comes from Wikipedia anchor links. Since the real
// resources (Common Crawl, Wikipedia dumps) are unavailable offline,
// the generator produces a deterministic synthetic corpus in which
// synonymous surface forms share contexts — exactly the distributional
// property the embedding signal depends on.
//
// A document is a token sequence built from "topic" slots: each topic
// owns a pool of context words, and each synonym group (an entity or
// relation with its aliases) is attached to one topic. Sentences
// interleave an alias of a group with draws from its topic's context
// pool, so aliases of the same group co-occur with the same context
// words and land close in embedding space, while groups from different
// topics stay apart.
package corpus

import (
	"math/rand"

	"repro/internal/text"
)

// Group is a synonym group: the surface forms that should end up
// distributionally similar (an entity's aliases, or a relation's
// paraphrases).
type Group struct {
	Key     string   // stable identifier (e.g. entity id)
	Phrases []string // synonymous surface forms
	Topic   int      // topic index the group is attached to
	Weight  int      // relative corpus frequency (>= 1)
}

// Config controls corpus synthesis.
type Config struct {
	Seed           int64
	Topics         int // number of topics (default max group topic + 1)
	ContextWords   int // context-pool size per topic (default 30)
	SentencesPer   int // sentences per unit of group weight (default 8)
	ContextPerSlot int // context draws around each mention (default 4)
}

func (c *Config) defaults(groups []Group) {
	maxTopic := 0
	for _, g := range groups {
		if g.Topic > maxTopic {
			maxTopic = g.Topic
		}
	}
	if c.Topics <= maxTopic {
		c.Topics = maxTopic + 1
	}
	if c.ContextWords <= 0 {
		c.ContextWords = 30
	}
	if c.SentencesPer <= 0 {
		c.SentencesPer = 8
	}
	if c.ContextPerSlot <= 0 {
		c.ContextPerSlot = 4
	}
}

// syllables used to mint synthetic context vocabulary. Deterministic
// pseudo-words avoid colliding with the alias tokens they surround.
var syllables = []string{
	"ka", "ro", "mi", "ta", "ne", "su", "lo", "ve", "di", "pa",
	"zu", "fe", "gi", "ho", "ju", "ki", "la", "mo", "nu", "pi",
}

func mintWord(rng *rand.Rand, n int) string {
	w := ""
	for i := 0; i < n; i++ {
		w += syllables[rng.Intn(len(syllables))]
	}
	return w
}

// Corpus is a generated token stream plus bookkeeping for tests.
type Corpus struct {
	Sentences [][]string
	// TopicVocab[t] is the context pool of topic t.
	TopicVocab [][]string
}

// Generate synthesizes a corpus for the given synonym groups.
func Generate(groups []Group, cfg Config) *Corpus {
	cfg.defaults(groups)
	rng := rand.New(rand.NewSource(cfg.Seed))

	c := &Corpus{TopicVocab: make([][]string, cfg.Topics)}
	seen := map[string]bool{}
	for t := 0; t < cfg.Topics; t++ {
		pool := make([]string, 0, cfg.ContextWords)
		for len(pool) < cfg.ContextWords {
			w := mintWord(rng, 2+rng.Intn(2))
			if seen[w] {
				continue
			}
			seen[w] = true
			pool = append(pool, w)
		}
		c.TopicVocab[t] = pool
	}

	for _, g := range groups {
		weight := g.Weight
		if weight < 1 {
			weight = 1
		}
		pool := c.TopicVocab[g.Topic%cfg.Topics]
		for w := 0; w < weight*cfg.SentencesPer; w++ {
			phrase := g.Phrases[rng.Intn(len(g.Phrases))]
			sent := make([]string, 0, 2*cfg.ContextPerSlot+4)
			for i := 0; i < cfg.ContextPerSlot; i++ {
				sent = append(sent, pool[rng.Intn(len(pool))])
			}
			sent = append(sent, text.Tokenize(phrase)...)
			for i := 0; i < cfg.ContextPerSlot; i++ {
				sent = append(sent, pool[rng.Intn(len(pool))])
			}
			c.Sentences = append(c.Sentences, sent)
		}
	}
	return c
}

// Tokens returns the concatenated token stream of all sentences,
// with a nil separator between sentences elided (co-occurrence windows
// are computed per sentence by the embedding trainer).
func (c *Corpus) Tokens() [][]string { return c.Sentences }
