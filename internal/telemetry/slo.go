package telemetry

import (
	"fmt"
	"log/slog"
	"sync"
	"time"
)

// SLOConfig defines the serving objectives the SLO monitor tracks.
// The zero value takes the documented defaults.
type SLOConfig struct {
	// Availability is the availability target (fraction of requests
	// that must not fail), default 0.999.
	Availability float64
	// LatencyObjective is the fraction of ingest requests that must
	// complete under LatencyThreshold, default 0.95.
	LatencyObjective float64
	// LatencyThreshold is the latency bar for the latency objective,
	// default 500ms. It should align with a DurationBuckets bound —
	// good-request counts come from the fixed-bucket histogram.
	LatencyThreshold time.Duration
	// FastWindow and SlowWindow are the two burn-rate windows
	// (defaults 5m and 1h) — the classic multi-window pairing: the
	// fast window catches sudden burns, the slow window filters noise.
	FastWindow time.Duration
	SlowWindow time.Duration
	// SampleEvery rate-limits sampling under Tick (default 10s).
	SampleEvery time.Duration
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Availability <= 0 || c.Availability >= 1 {
		c.Availability = 0.999
	}
	if c.LatencyObjective <= 0 || c.LatencyObjective >= 1 {
		c.LatencyObjective = 0.95
	}
	if c.LatencyThreshold <= 0 {
		c.LatencyThreshold = 500 * time.Millisecond
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow <= c.FastWindow {
		c.SlowWindow = time.Hour
		if c.SlowWindow <= c.FastWindow {
			c.SlowWindow = 2 * c.FastWindow
		}
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 10 * time.Second
	}
	return c
}

// sloSample is one cumulative (good, total) observation of an
// objective at time t. Burn rates difference two samples.
type sloSample struct {
	t           time.Time
	good, total float64
}

// objective tracks one SLO: where its good/total counts come from, its
// target, and a ring of cumulative samples spanning SlowWindow.
type objective struct {
	name    string
	target  float64
	read    func() (good, total float64)
	samples []sloSample

	budget   *Gauge
	burnFast *Gauge
	burnSlow *Gauge
}

// SLO computes error-budget and multi-window burn-rate gauges from the
// metric families the serving path already feeds. It keeps no
// background goroutine: the /metrics handler calls Tick before each
// scrape, which samples at most once per SampleEvery. All methods are
// nil-receiver-safe.
type SLO struct {
	cfg  SLOConfig
	reg  *Registry
	mu   sync.Mutex
	last time.Time
	objs []*objective

	satWarned map[string]bool
}

// NewSLO registers the jocl_slo_* gauge families on r and returns the
// monitor. Two objectives are defined:
//
//   - "availability": non-failing fraction of all HTTP requests,
//     folded from jocl_http_requests_total (5xx and 429 are bad).
//   - "latency": fraction of /ingest requests completing under
//     cfg.LatencyThreshold, from jocl_http_request_duration_seconds.
func NewSLO(r *Registry, cfg SLOConfig) *SLO {
	cfg = cfg.withDefaults()
	s := &SLO{cfg: cfg, reg: r, satWarned: map[string]bool{}}

	target := r.GaugeVec("jocl_slo_target",
		"Objective target (fraction of good requests required), by SLO.", "slo")
	budget := r.GaugeVec("jocl_slo_error_budget_remaining",
		"Fraction of the lifetime error budget remaining, by SLO (1 = untouched, <0 = overspent).", "slo")
	burn := r.GaugeVec("jocl_slo_burn_rate",
		"Error-budget burn rate over a trailing window, by SLO (1 = burning exactly the budget).", "slo", "window")

	fastLbl := windowLabel(cfg.FastWindow)
	slowLbl := windowLabel(cfg.SlowWindow)

	add := func(name string, tgt float64, read func() (float64, float64)) {
		target.With(name).Set(tgt)
		o := &objective{
			name: name, target: tgt, read: read,
			budget:   budget.With(name),
			burnFast: burn.With(name, fastLbl),
			burnSlow: burn.With(name, slowLbl),
		}
		o.budget.Set(1)
		s.objs = append(s.objs, o)
	}

	add("availability", cfg.Availability, func() (float64, float64) {
		var good, total float64
		for _, sv := range r.CounterSeries("jocl_http_requests_total") {
			if len(sv.Labels) != 3 {
				continue
			}
			total += sv.Value
			if !badStatusCode(sv.Labels[2]) {
				good += sv.Value
			}
		}
		return good, total
	})
	thr := cfg.LatencyThreshold.Seconds()
	add("latency", cfg.LatencyObjective, func() (float64, float64) {
		h := r.FindHistogram("jocl_http_request_duration_seconds", "/ingest")
		if h == nil {
			return 0, 0
		}
		return float64(h.CountUnder(thr)), float64(h.Count())
	})
	return s
}

// badStatusCode reports whether a status-code label counts against the
// availability budget: server errors and backpressure sheds (429).
// Client errors (other 4xx) are the caller's fault, not unavailability.
func badStatusCode(code string) bool {
	return len(code) == 3 && (code[0] == '5' || code == "429")
}

// windowLabel formats a burn-rate window as a compact label ("5m",
// "1h", "90s").
func windowLabel(d time.Duration) string {
	switch {
	case d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	default:
		return fmt.Sprintf("%ds", d/time.Second)
	}
}

// Config returns the (defaulted) configuration in effect.
func (s *SLO) Config() SLOConfig {
	if s == nil {
		return SLOConfig{}
	}
	return s.cfg
}

// Tick samples the objectives if at least SampleEvery has passed since
// the last sample — the /metrics handler calls it before every scrape
// so the gauges stay fresh without a background goroutine. It also
// runs the histogram bucket-saturation self-check.
func (s *SLO) Tick(now time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	due := s.last.IsZero() || now.Sub(s.last) >= s.cfg.SampleEvery
	s.mu.Unlock()
	if due {
		s.Sample(now)
	}
}

// Sample takes one cumulative sample of every objective at now and
// recomputes the gauges. Exposed (rather than only Tick) so tests can
// drive synthetic timelines.
func (s *SLO) Sample(now time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.last = now
	for _, o := range s.objs {
		good, total := o.read()
		o.samples = append(o.samples, sloSample{t: now, good: good, total: total})
		// Keep one sample older than SlowWindow so the slow burn rate
		// can difference across its full span.
		cut := 0
		for cut < len(o.samples)-1 && now.Sub(o.samples[cut+1].t) >= s.cfg.SlowWindow {
			cut++
		}
		o.samples = o.samples[cut:]

		if total > 0 {
			badFrac := (total - good) / total
			o.budget.Set(1 - badFrac/(1-o.target))
		}
		o.burnFast.Set(o.burnRate(now, s.cfg.FastWindow))
		o.burnSlow.Set(o.burnRate(now, s.cfg.SlowWindow))
	}
	s.checkSaturationLocked()
}

// burnRate computes how fast the objective burned error budget over
// the trailing window: the bad fraction of requests in the window
// divided by the budgeted bad fraction (1 - target). 1.0 means burning
// exactly at budget; 0 with no traffic.
func (o *objective) burnRate(now time.Time, window time.Duration) float64 {
	if len(o.samples) == 0 {
		return 0
	}
	latest := o.samples[len(o.samples)-1]
	// Oldest sample still inside the window (or the earliest we have).
	base := o.samples[0]
	for _, smp := range o.samples {
		if now.Sub(smp.t) <= window {
			base = smp
			break
		}
		base = smp
	}
	dTotal := latest.total - base.total
	dGood := latest.good - base.good
	if dTotal <= 0 {
		return 0
	}
	badFrac := (dTotal - dGood) / dTotal
	return badFrac / (1 - o.target)
}

// checkSaturationLocked warns (once per series) when a histogram's
// +Inf bucket holds more than 1% of its observations — the signal that
// the fixed bucket ladder no longer covers the latency distribution
// and quantile estimates are saturating.
func (s *SLO) checkSaturationLocked() {
	for _, name := range s.reg.SaturatedHistograms(0.01, 100) {
		if s.satWarned[name] {
			continue
		}
		s.satWarned[name] = true
		slog.Default().Warn("histogram buckets saturated: >1% of observations in +Inf; quantiles are underestimates",
			"series", name)
	}
}
