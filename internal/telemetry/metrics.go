package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the Telemetry a serving session carries. The zero value
// is usable; Enable exists for the layers that embed a Config
// (stream.Config, jocl options) and treat the whole subsystem as
// optional — the telemetry package itself ignores it.
type Config struct {
	// Enable switches telemetry on in the embedding layers. Sessions
	// enable it by default; disabling removes every instrumentation
	// branch from the ingest path (the overhead A/B the bench measures).
	Enable bool
	// TraceRing is the number of recent ingest traces retained for
	// /debug/trace (default 64).
	TraceRing int
}

// Telemetry bundles the metrics registry and the ingest-trace ring one
// serving session (or process) reports through.
type Telemetry struct {
	// Registry holds every metric the session and the layers below it
	// register.
	Registry *Registry
	// Traces retains the most recent per-ingest stage traces.
	Traces *TraceRing
}

// New builds a Telemetry with an empty registry and a trace ring of
// cfg.TraceRing entries (default 64).
func New(cfg Config) *Telemetry {
	n := cfg.TraceRing
	if n <= 0 {
		n = 64
	}
	return &Telemetry{Registry: NewRegistry(), Traces: NewTraceRing(n)}
}

// DurationBuckets are the default histogram bounds (seconds) for
// latency metrics: 1µs to 120s in a 1-2.5-5 ladder, wide enough to
// span sub-microsecond index lookups and the multi-ten-second sync
// ingests the scale-0.1 corpus produces (the ladder used to stop at
// 10s, which collapsed those p95/p99s into the +Inf bucket).
var DurationBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	25, 60, 120,
}

// CountBuckets are default histogram bounds for small-count
// distributions (sweeps, rounds, batch sizes): powers of two up to 16k.
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}

// kind discriminates the metric families a Registry holds.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing count. All methods are safe
// for concurrent use and lock-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (callers must keep counters monotone).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. All methods are safe for
// concurrent use and lock-free.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: observation counts per
// upper bound (a final +Inf bucket is implicit), plus total sum and
// count. Observations are lock-free; quantiles are estimated from the
// bucket counts by linear interpolation (see Quantile).
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// InfCount returns the number of observations that overflowed every
// finite bucket — the saturation signal the bucket self-check watches.
func (h *Histogram) InfCount() uint64 { return h.counts[len(h.bounds)].Load() }

// CountUnder returns the number of observations at or below bound.
// bound should align with a bucket upper bound; otherwise the count of
// the nearest bucket at or below it is returned (bucket resolution is
// all a fixed-bucket histogram can offer). Used by the SLO module to
// count "fast enough" requests.
func (h *Histogram) CountUnder(bound float64) uint64 {
	var n uint64
	for i, b := range h.bounds {
		if b > bound {
			break
		}
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) from the bucket
// counts: the target rank's bucket is located on the cumulative
// distribution and the value interpolated linearly between the
// bucket's bounds. Observations in the +Inf bucket report the largest
// finite bound (the estimate saturates there). With no observations it
// returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) { // +Inf bucket: saturate at last bound
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Summary is the quantile digest of one histogram, the p50/p95/p99
// reporting discipline every latency artifact follows.
type Summary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summary digests the histogram into count/mean/p50/p95/p99.
func (h *Histogram) Summary() Summary {
	s := Summary{
		Count: h.Count(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Mean = h.Sum() / float64(s.Count)
	}
	return s
}

// family is one registered metric name: a help string, a kind, a label
// schema, and the series (one for unlabeled metrics, one per label
// combination for vecs).
type family struct {
	name   string
	help   string
	kind   kind
	labels []string
	bounds []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series
	order  []string

	gaugeFn func() float64
}

// series is one (metric name, label values) time series.
type series struct {
	labelVals []string
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
}

// Registry holds metric families by name and renders them in
// Prometheus text format. Registration is idempotent: asking for an
// already-registered name with the same kind and label schema returns
// the existing collector, so independent layers can share one metric.
// Registering a name with a conflicting kind or label schema panics —
// it is a programming error, caught by any test that touches the path.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
	ord  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

func (r *Registry) family(name, help string, k kind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != k || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %v%v (was %v%v)",
				name, k, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, labels: labels, bounds: bounds,
		series: map[string]*series{}}
	r.fams[name] = f
	r.ord = append(r.ord, name)
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seriesFor returns (creating if needed) the series for the given
// label values.
func (f *family) seriesFor(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelVals: append([]string(nil), vals...)}
	switch f.kind {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = newHistogram(f.bounds)
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).seriesFor(nil).counter
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).seriesFor(nil).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time (e.g. an age derived from a stored timestamp). Re-registering
// the same name replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindGaugeFunc, nil, nil)
	f.mu.Lock()
	f.gaugeFn = fn
	f.mu.Unlock()
}

// Histogram registers (or returns) an unlabeled histogram with the
// given ascending bucket upper bounds (+Inf implicit; nil takes
// DurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	return r.family(name, help, kindHistogram, nil, bounds).seriesFor(nil).hist
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values (created on
// first use).
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.seriesFor(values).counter
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.seriesFor(values).gauge
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labeled histogram family with
// the given bucket bounds (nil takes DurationBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DurationBuckets
	}
	return &HistogramVec{r.family(name, help, kindHistogram, labels, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.seriesFor(values).hist
}

// Names returns every registered metric name, sorted — the surface the
// docs drift check compares against docs/OBSERVABILITY.md.
func (r *Registry) Names() []string {
	r.mu.Lock()
	out := append([]string(nil), r.ord...)
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// FindCounter returns the registered counter for name (and label
// values, for vecs), or nil — the counter twin of FindHistogram, used
// by the bench artifacts to echo cumulative session counters.
func (r *Registry) FindCounter(name string, values ...string) *Counter {
	r.mu.Lock()
	f, ok := r.fams[name]
	r.mu.Unlock()
	if !ok || f.kind != kindCounter || len(values) != len(f.labels) {
		return nil
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	s, ok := f.series[key]
	f.mu.Unlock()
	if !ok {
		return nil
	}
	return s.counter
}

// FindHistogram returns the registered histogram for name (and label
// values, for vecs), or nil — how the bench and tests read back the
// same histograms the serving path feeds.
func (r *Registry) FindHistogram(name string, values ...string) *Histogram {
	r.mu.Lock()
	f, ok := r.fams[name]
	r.mu.Unlock()
	if !ok || f.kind != kindHistogram || len(values) != len(f.labels) {
		return nil
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	s, ok := f.series[key]
	f.mu.Unlock()
	if !ok {
		return nil
	}
	return s.hist
}

// SeriesValue is one (label values, value) sample of a metric family,
// the form CounterSeries returns for cross-series aggregation.
type SeriesValue struct {
	// Labels are the series' label values, in the family's label order.
	Labels []string
	// Value is the series' current value.
	Value float64
}

// CounterSeries snapshots every series of the named counter family
// (nil if the name is unregistered or not a counter). The SLO module
// uses it to fold jocl_http_requests_total over status codes.
func (r *Registry) CounterSeries(name string) []SeriesValue {
	r.mu.Lock()
	f, ok := r.fams[name]
	r.mu.Unlock()
	if !ok || f.kind != kindCounter {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]SeriesValue, 0, len(f.order))
	for _, key := range f.order {
		s := f.series[key]
		out = append(out, SeriesValue{Labels: s.labelVals, Value: float64(s.counter.Value())})
	}
	return out
}

// SaturatedHistograms returns the histogram series whose +Inf bucket
// holds more than minFrac of at least minCount observations — series
// whose fixed buckets no longer resolve the distribution and whose
// quantile estimates saturate at the top bound. Each entry is
// "name" or "name{l1,l2}" for labeled series.
func (r *Registry) SaturatedHistograms(minFrac float64, minCount uint64) []string {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.ord))
	for _, name := range r.ord {
		if f := r.fams[name]; f.kind == kindHistogram {
			fams = append(fams, f)
		}
	}
	r.mu.Unlock()
	var out []string
	for _, f := range fams {
		f.mu.Lock()
		for _, key := range f.order {
			s := f.series[key]
			total := s.hist.Count()
			inf := s.hist.InfCount()
			if total >= minCount && float64(inf) > minFrac*float64(total) {
				name := f.name
				if len(s.labelVals) > 0 {
					name += "{" + strings.Join(s.labelVals, ",") + "}"
				}
				out = append(out, name)
			}
		}
		f.mu.Unlock()
	}
	return out
}
