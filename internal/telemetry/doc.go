// Package telemetry is jocl's zero-dependency observability substrate:
// a metrics registry (counters, gauges, fixed-bucket histograms) with a
// Prometheus text-format exporter and p50/p95/p99 quantile summaries,
// plus a per-ingest stage tracer that retains a ring of recent traces.
//
// Every serving-stack layer reports through one shared Telemetry
// carried by the stream session: stream.Session.Ingest emits a span
// per stage (okb-append, signal-eval, graph-build, partition-repair,
// bp, canon-delta, index-apply) and feeds the
// jocl_ingest_duration_seconds histograms; factorgraph contributes BP
// sweep/round/residual metrics; the query index exposes generation,
// staleness, and per-operation counters; checkpoints report size,
// duration, and age. jocl-serve renders the registry at GET /metrics
// and the trace ring at GET /debug/trace, and jocl-bench digests the
// same histograms into p50/p95/p99 summaries for its BENCH_*.json
// artifacts.
//
// The registry is deliberately small: registration is idempotent by
// (name, kind, label schema); updates are lock-free atomics so the
// ingest hot path pays nanoseconds per observation; quantiles are
// estimated from fixed bucket bounds by linear interpolation rather
// than kept as exact samples. The full metric catalogue is documented
// in docs/OBSERVABILITY.md, and a drift test asserts the two stay in
// sync.
package telemetry
