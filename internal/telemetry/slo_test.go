package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestSLOGaugesRenderBeforeFirstSample(t *testing.T) {
	r := NewRegistry()
	NewSLO(r, SLOConfig{})
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`jocl_slo_target{slo="availability"} 0.999`,
		`jocl_slo_target{slo="latency"} 0.95`,
		`jocl_slo_error_budget_remaining{slo="availability"} 1`,
		`jocl_slo_burn_rate{slo="availability",window="5m"}`,
		`jocl_slo_burn_rate{slo="latency",window="1h"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSLOBudgetAndBurn(t *testing.T) {
	r := NewRegistry()
	reqs := r.CounterVec("jocl_http_requests_total", "t", "path", "method", "code")
	r.HistogramVec("jocl_http_request_duration_seconds", "t", nil, "path")

	cfg := SLOConfig{Availability: 0.9, FastWindow: time.Minute, SlowWindow: 10 * time.Minute}
	s := NewSLO(r, cfg)

	t0 := time.Unix(1_700_000_000, 0)
	// 100 good requests at t0.
	ok := reqs.With("/ingest", "POST", "200")
	for i := 0; i < 100; i++ {
		ok.Inc()
	}
	s.Sample(t0)

	// 50 more good + 50 bad within the fast window: bad fraction 0.5,
	// budget 0.1 → burn rate 5.
	bad := reqs.With("/ingest", "POST", "500")
	for i := 0; i < 50; i++ {
		ok.Inc()
		bad.Inc()
	}
	s.Sample(t0.Add(30 * time.Second))

	avail := s.objs[0]
	if avail.name != "availability" {
		t.Fatalf("objective order changed: %q", avail.name)
	}
	if got := avail.burnFast.Value(); got < 4.9 || got > 5.1 {
		t.Errorf("fast burn = %v, want ~5", got)
	}
	// Lifetime: 50 bad of 200 → badFrac 0.25, budget 1 - 0.25/0.1 = -1.5.
	if got := avail.budget.Value(); got < -1.6 || got > -1.4 {
		t.Errorf("budget remaining = %v, want ~-1.5", got)
	}
	// 429 counts as bad, 404 does not.
	if !badStatusCode("429") || !badStatusCode("503") || badStatusCode("404") || badStatusCode("200") {
		t.Error("badStatusCode classification wrong")
	}
}

func TestSLOLatencyObjective(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("jocl_http_requests_total", "t", "path", "method", "code")
	dur := r.HistogramVec("jocl_http_request_duration_seconds", "t", nil, "path")
	s := NewSLO(r, SLOConfig{LatencyObjective: 0.5, LatencyThreshold: 500 * time.Millisecond})

	h := dur.With("/ingest")
	for i := 0; i < 90; i++ {
		h.Observe(0.01) // fast
	}
	for i := 0; i < 10; i++ {
		h.Observe(2.0) // slow
	}
	t0 := time.Unix(1_700_000_000, 0)
	s.Sample(t0)
	s.Sample(t0.Add(time.Minute))

	lat := s.objs[1]
	if lat.name != "latency" {
		t.Fatalf("objective order changed: %q", lat.name)
	}
	// badFrac 0.1, budget (1-0.5)=0.5 → remaining 1-0.2 = 0.8.
	if got := lat.budget.Value(); got < 0.79 || got > 0.81 {
		t.Errorf("latency budget = %v, want ~0.8", got)
	}
}

func TestSLOTickRateLimits(t *testing.T) {
	r := NewRegistry()
	s := NewSLO(r, SLOConfig{SampleEvery: 10 * time.Second})
	t0 := time.Unix(1_700_000_000, 0)
	s.Tick(t0)
	s.Tick(t0.Add(time.Second)) // suppressed
	s.Tick(t0.Add(11 * time.Second))
	if got := len(s.objs[0].samples); got != 2 {
		t.Fatalf("Tick took %d samples, want 2", got)
	}
}

func TestSLONilSafety(t *testing.T) {
	var s *SLO
	s.Tick(time.Now())
	s.Sample(time.Now())
	if s.Config() != (SLOConfig{}) {
		t.Fatal("nil SLO has config")
	}
}

func TestSaturatedHistograms(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("short_hist_seconds", "t", []float64{0.1, 1})
	for i := 0; i < 200; i++ {
		h.Observe(0.05)
	}
	if got := r.SaturatedHistograms(0.01, 100); len(got) != 0 {
		t.Fatalf("unsaturated histogram flagged: %v", got)
	}
	for i := 0; i < 5; i++ {
		h.Observe(100) // > top bound → +Inf
	}
	got := r.SaturatedHistograms(0.01, 100)
	if len(got) != 1 || got[0] != "short_hist_seconds" {
		t.Fatalf("saturated histogram not flagged: %v", got)
	}

	hv := r.HistogramVec("short_vec_seconds", "t", []float64{0.1}, "path")
	hs := hv.With("/x")
	for i := 0; i < 100; i++ {
		hs.Observe(5)
	}
	got = r.SaturatedHistograms(0.01, 100)
	want := "short_vec_seconds{/x}"
	found := false
	for _, g := range got {
		if g == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("labeled saturated series missing %q: %v", want, got)
	}
}

func TestCountUnderAndInfCount(t *testing.T) {
	h := newHistogram([]float64{0.1, 0.5, 1})
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(0.7)
	h.Observe(2)
	if got := h.CountUnder(0.5); got != 2 {
		t.Errorf("CountUnder(0.5) = %d, want 2", got)
	}
	if got := h.CountUnder(1); got != 3 {
		t.Errorf("CountUnder(1) = %d, want 3", got)
	}
	if got := h.InfCount(); got != 1 {
		t.Errorf("InfCount = %d, want 1", got)
	}
}

func TestCounterSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs_total", "t", "path", "code")
	v.With("/a", "200").Add(3)
	v.With("/a", "500").Add(1)
	got := r.CounterSeries("reqs_total")
	if len(got) != 2 {
		t.Fatalf("want 2 series, got %d", len(got))
	}
	var total float64
	for _, sv := range got {
		total += sv.Value
	}
	if total != 4 {
		t.Fatalf("sum = %v, want 4", total)
	}
	if r.CounterSeries("nope") != nil {
		t.Fatal("unknown family returned series")
	}
	r.Gauge("a_gauge", "t")
	if r.CounterSeries("a_gauge") != nil {
		t.Fatal("non-counter family returned series")
	}
}
