package telemetry

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one named stage inside an ingest trace: its offset from the
// trace start and how long it ran.
type Span struct {
	Name     string
	Start    time.Duration // offset from Trace.Begin
	Duration time.Duration
}

// MarshalJSON emits offsets and durations as millisecond floats, the
// unit every other jocl artifact reports in.
func (s Span) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Name    string  `json:"name"`
		StartMS float64 `json:"start_ms"`
		MS      float64 `json:"ms"`
	}{s.Name, durMS(s.Start), durMS(s.Duration)})
}

// Trace is the stage breakdown of one ingest: a monotonically
// increasing id, the batch number it processed, wall-clock begin,
// total duration, and the ordered spans.
type Trace struct {
	ID    uint64
	Batch int
	Begin time.Time
	Total time.Duration
	Spans []Span
}

// MarshalJSON emits the total as a millisecond float next to the spans.
func (t Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID      uint64    `json:"id"`
		Batch   int       `json:"batch"`
		Begin   time.Time `json:"begin"`
		TotalMS float64   `json:"total_ms"`
		Spans   []Span    `json:"spans"`
	}{t.ID, t.Batch, t.Begin, durMS(t.Total), t.Spans})
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// TraceRing retains the most recent N traces. Push and Last are safe
// for concurrent use.
type TraceRing struct {
	mu   sync.Mutex
	buf  []Trace
	next int // index of the next write
	full bool
	seq  atomic.Uint64
}

// NewTraceRing returns a ring holding up to n traces (n >= 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]Trace, n)}
}

// Push assigns the trace the next id and stores it, evicting the
// oldest entry once the ring is full. It returns the assigned id.
func (r *TraceRing) Push(t Trace) uint64 {
	t.ID = r.seq.Add(1)
	r.mu.Lock()
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
	return t.ID
}

// Last returns up to n traces, newest first. n <= 0 means all retained.
func (r *TraceRing) Last(n int) []Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.full {
		size = len(r.buf)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + len(r.buf) + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// TraceBuilder accumulates the spans of one ingest. It is used by a
// single goroutine (the ingest holds the session lock) and is not
// concurrency-safe.
type TraceBuilder struct {
	batch int
	begin time.Time
	spans []Span
}

// StartTrace opens a builder for the given batch number.
func StartTrace(batch int) *TraceBuilder {
	return &TraceBuilder{batch: batch, begin: time.Now()}
}

// Begin returns the trace's start time.
func (b *TraceBuilder) Begin() time.Time { return b.begin }

// StartSpan opens a named span and returns a closure that ends it,
// recording the elapsed time. Bracket style:
//
//	done := tb.StartSpan("okb-append")
//	... stage ...
//	done()
func (b *TraceBuilder) StartSpan(name string) func() time.Duration {
	t0 := time.Now()
	return func() time.Duration {
		d := time.Since(t0)
		b.spans = append(b.spans, Span{Name: name, Start: t0.Sub(b.begin), Duration: d})
		return d
	}
}

// Span records an already-measured stage at an explicit offset — for
// sub-stage durations reported back by a lower layer rather than
// bracketed in place.
func (b *TraceBuilder) Span(name string, start time.Duration, d time.Duration) {
	if d < 0 {
		d = 0
	}
	b.spans = append(b.spans, Span{Name: name, Start: start, Duration: d})
}

// Finish seals the trace with the given total duration and pushes it
// onto the ring (if any), returning the finished trace.
func (b *TraceBuilder) Finish(ring *TraceRing) Trace {
	t := Trace{Batch: b.batch, Begin: b.begin, Total: time.Since(b.begin), Spans: b.spans}
	if ring != nil {
		t.ID = ring.Push(t)
	}
	return t
}
