package telemetry

import (
	"bufio"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Idempotent registration returns the same collector.
	if c2 := r.Counter("c_total", "a counter"); c2 != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("gauge = %v, want 2.25", got)
	}
}

func TestRegistrationConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 16 {
		t.Fatalf("sum = %v, want 16", got)
	}
	// Bucket assignment: le=1 gets {0.5, 1}, le=2 gets {1.5}, le=5
	// gets {3}, +Inf gets {10}.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{10, 20, 30, 40})
	// 100 observations uniform over (0, 40]: 25 per bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.4)
	}
	if got := h.Quantile(0.5); math.Abs(got-20) > 1 {
		t.Fatalf("p50 = %v, want ~20", got)
	}
	if got := h.Quantile(0.95); math.Abs(got-38) > 1 {
		t.Fatalf("p95 = %v, want ~38", got)
	}
	// Observations beyond the last bound saturate at the last bound.
	h2 := r.Histogram("h2", "", []float64{1})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 1 {
		t.Fatalf("saturated quantile = %v, want 1", got)
	}
	// Empty histogram reports 0.
	h3 := r.Histogram("h3", "", []float64{1})
	if got := h3.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	s := h.Summary()
	if s.Count != 100 || s.Mean <= 0 || s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("bad summary: %+v", s)
	}
}

// TestPrometheusRoundTrip renders a mixed registry and re-parses the
// text format, checking structural validity and the rendered values.
func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("jocl_a_total", "counts a").Add(7)
	r.Gauge("jocl_b", "level of b").Set(1.5)
	r.GaugeFunc("jocl_f", "computed", func() float64 { return 42 })
	h := r.Histogram("jocl_h_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	v := r.CounterVec("jocl_req_total", "requests", "path", "code")
	v.With("/ingest", "200").Add(3)
	v.With(`/we"ird`, "500").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	samples := map[string]float64{}
	types := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, val := line[:sp], line[sp+1:]
		f, err := strconv.ParseFloat(strings.TrimPrefix(val, "+"), 64)
		if err != nil && val != "+Inf" {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[key] = f
	}

	if samples["jocl_a_total"] != 7 {
		t.Fatalf("jocl_a_total = %v", samples["jocl_a_total"])
	}
	if samples["jocl_b"] != 1.5 || samples["jocl_f"] != 42 {
		t.Fatalf("gauges wrong: b=%v f=%v", samples["jocl_b"], samples["jocl_f"])
	}
	if types["jocl_h_seconds"] != "histogram" || types["jocl_a_total"] != "counter" ||
		types["jocl_b"] != "gauge" || types["jocl_f"] != "gauge" {
		t.Fatalf("types wrong: %v", types)
	}
	// Histogram buckets are cumulative and _count matches +Inf.
	if samples[`jocl_h_seconds_bucket{le="0.1"}`] != 1 ||
		samples[`jocl_h_seconds_bucket{le="1"}`] != 2 ||
		samples[`jocl_h_seconds_bucket{le="+Inf"}`] != 3 ||
		samples["jocl_h_seconds_count"] != 3 {
		t.Fatalf("histogram lines wrong: %v", samples)
	}
	if math.Abs(samples["jocl_h_seconds_sum"]-5.55) > 1e-9 {
		t.Fatalf("histogram sum = %v", samples["jocl_h_seconds_sum"])
	}
	if samples[`jocl_req_total{path="/ingest",code="200"}`] != 3 {
		t.Fatalf("labeled counter missing: %v", samples)
	}
	// Label escaping: the quote must be escaped in the output.
	if !strings.Contains(text, `path="/we\"ird"`) {
		t.Fatalf("label not escaped:\n%s", text)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []float64{1, 10})
	v := r.CounterVec("v_total", "", "k")
	g := r.Gauge("g", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 20))
				v.With(strconv.Itoa(w % 3)).Inc()
				g.Add(1)
			}
		}(w)
	}
	// Concurrent scrapes while updates run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
	total := uint64(0)
	for k := 0; k < 3; k++ {
		total += v.With(strconv.Itoa(k)).Value()
	}
	if total != 8000 {
		t.Fatalf("vec total = %d, want 8000", total)
	}
}

func TestNamesAndFindHistogram(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "")
	h := r.Histogram("a_seconds", "", nil)
	hv := r.HistogramVec("c_seconds", "", nil, "op")
	hv.With("x").Observe(1)
	names := r.Names()
	want := []string{"a_seconds", "b_total", "c_seconds"}
	if len(names) != 3 || names[0] != want[0] || names[1] != want[1] || names[2] != want[2] {
		t.Fatalf("names = %v, want %v", names, want)
	}
	if r.FindHistogram("a_seconds") != h {
		t.Fatal("FindHistogram missed unlabeled histogram")
	}
	if r.FindHistogram("c_seconds", "x") == nil {
		t.Fatal("FindHistogram missed labeled histogram")
	}
	if r.FindHistogram("b_total") != nil {
		t.Fatal("FindHistogram returned non-histogram")
	}
	if r.FindHistogram("missing") != nil {
		t.Fatal("FindHistogram invented a histogram")
	}
}

func TestDurationBucketsSorted(t *testing.T) {
	for i := 1; i < len(DurationBuckets); i++ {
		if DurationBuckets[i] <= DurationBuckets[i-1] {
			t.Fatalf("DurationBuckets not ascending at %d", i)
		}
	}
	h := NewRegistry().Histogram("d_seconds", "", nil)
	h.ObserveDuration(1500 * time.Microsecond)
	if h.Count() != 1 || math.Abs(h.Sum()-0.0015) > 1e-12 {
		t.Fatalf("ObserveDuration recorded %v/%v", h.Count(), h.Sum())
	}
}
