package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceBuilderSpans(t *testing.T) {
	ring := NewTraceRing(4)
	tb := StartTrace(7)
	done := tb.StartSpan("okb-append")
	time.Sleep(2 * time.Millisecond)
	if d := done(); d < time.Millisecond {
		t.Fatalf("span duration %v too short", d)
	}
	tb.Span("bp", 5*time.Millisecond, 3*time.Millisecond)
	tb.Span("neg", 0, -time.Millisecond) // clamped to 0
	tr := tb.Finish(ring)
	if tr.ID != 1 || tr.Batch != 7 {
		t.Fatalf("trace id/batch = %d/%d", tr.ID, tr.Batch)
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(tr.Spans))
	}
	if tr.Spans[0].Name != "okb-append" || tr.Spans[1].Duration != 3*time.Millisecond {
		t.Fatalf("bad spans: %+v", tr.Spans)
	}
	if tr.Spans[2].Duration != 0 {
		t.Fatalf("negative duration not clamped: %v", tr.Spans[2].Duration)
	}
	if tr.Total < 2*time.Millisecond {
		t.Fatalf("total %v too short", tr.Total)
	}
}

func TestTraceRingEviction(t *testing.T) {
	ring := NewTraceRing(3)
	for i := 1; i <= 5; i++ {
		ring.Push(Trace{Batch: i})
	}
	got := ring.Last(0)
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	// Newest first: batches 5, 4, 3; ids assigned sequentially.
	for i, wantBatch := range []int{5, 4, 3} {
		if got[i].Batch != wantBatch {
			t.Fatalf("Last[%d].Batch = %d, want %d", i, got[i].Batch, wantBatch)
		}
		if got[i].ID != uint64(6-1-i) {
			t.Fatalf("Last[%d].ID = %d, want %d", i, got[i].ID, 6-1-i)
		}
	}
	if n := len(ring.Last(2)); n != 2 {
		t.Fatalf("Last(2) returned %d", n)
	}
	if n := len(ring.Last(10)); n != 3 {
		t.Fatalf("Last(10) returned %d", n)
	}
}

func TestTraceRingPartial(t *testing.T) {
	ring := NewTraceRing(8)
	ring.Push(Trace{Batch: 1})
	ring.Push(Trace{Batch: 2})
	got := ring.Last(0)
	if len(got) != 2 || got[0].Batch != 2 || got[1].Batch != 1 {
		t.Fatalf("partial ring wrong: %+v", got)
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	ring := NewTraceRing(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ring.Push(Trace{Batch: i})
				ring.Last(8)
			}
		}()
	}
	wg.Wait()
	if got := ring.seq.Load(); got != 800 {
		t.Fatalf("seq = %d, want 800", got)
	}
}

func TestTraceJSON(t *testing.T) {
	tr := Trace{
		ID:    3,
		Batch: 9,
		Begin: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
		Total: 12500 * time.Microsecond,
		Spans: []Span{{Name: "bp", Start: 2 * time.Millisecond, Duration: 1500 * time.Microsecond}},
	}
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"total_ms":12.5`, `"name":"bp"`, `"start_ms":2`, `"ms":1.5`, `"batch":9`} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON missing %q:\n%s", want, s)
		}
	}
	var decoded map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
}

func TestNewTelemetry(t *testing.T) {
	tel := New(Config{})
	if tel.Registry == nil || tel.Traces == nil {
		t.Fatal("New left fields nil")
	}
	if n := len(tel.Traces.buf); n != 64 {
		t.Fatalf("default ring size = %d, want 64", n)
	}
	tel2 := New(Config{TraceRing: 5})
	if n := len(tel2.Traces.buf); n != 5 {
		t.Fatalf("ring size = %d, want 5", n)
	}
}

func ExampleTraceBuilder() {
	tb := StartTrace(1)
	done := tb.StartSpan("stage")
	done()
	tr := tb.Finish(nil)
	fmt.Println(len(tr.Spans))
	// Output: 1
}
