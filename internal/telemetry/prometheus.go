package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): a # HELP and # TYPE line per
// family, then one sample line per series — histogram families expand
// into cumulative _bucket{le=...} lines plus _sum and _count.
// Families render in registration order so scrapes are stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.ord...)
	r.mu.Unlock()
	for _, name := range names {
		r.mu.Lock()
		f := r.fams[name]
		r.mu.Unlock()
		if f == nil {
			continue
		}
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}

	if f.kind == kindGaugeFunc {
		f.mu.Lock()
		fn := f.gaugeFn
		f.mu.Unlock()
		v := 0.0
		if fn != nil {
			v = fn()
		}
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatValue(v))
		return err
	}

	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	series := make([]*series, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.Unlock()

	for _, s := range series {
		base := labelSet(f.labels, s.labelVals)
		switch f.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, base, s.counter.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, base, formatValue(s.gauge.Value())); err != nil {
				return err
			}
		case kindHistogram:
			if err := s.hist.write(w, f.name, f.labels, s.labelVals); err != nil {
				return err
			}
		}
	}
	return nil
}

func (h *Histogram) write(w io.Writer, name string, labels, vals []string) error {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := labelSet(append(labels, "le"), append(vals, formatValue(b)))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	le := labelSet(append(labels, "le"), append(vals, "+Inf"))
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum); err != nil {
		return err
	}
	base := labelSet(labels, vals)
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, base, formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, base, h.Count())
	return err
}

// labelSet renders {k="v",...} or "" for no labels.
func labelSet(labels, vals []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes backslash, double-quote, and newline per the
// exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
