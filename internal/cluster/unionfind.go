// Package cluster provides the clustering substrate used across JOCL:
// a union-find structure for turning pairwise merge decisions into
// groups (both in JOCL inference and in several baselines), and
// hierarchical agglomerative clustering (HAC) with pluggable linkage,
// which the Text Similarity, IDF Token Overlap, and CESI baselines use.
package cluster

// UnionFind is a disjoint-set structure over n integer elements with
// union by size and path compression.
type UnionFind struct {
	parent []int
	size   []int
	sets   int
}

// NewUnionFind creates a union-find over elements 0..n-1, each in its
// own singleton set.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		size:   make([]int, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets containing x and y. It reports whether a merge
// actually happened (false when they were already in the same set).
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.size[rx] < uf.size[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	uf.size[rx] += uf.size[ry]
	uf.sets--
	return true
}

// Connected reports whether x and y are in the same set.
func (uf *UnionFind) Connected(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// SetSize returns the size of x's set.
func (uf *UnionFind) SetSize(x int) int { return uf.size[uf.Find(x)] }

// Count returns the number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.sets }

// Groups materializes the disjoint sets as slices of element indices.
// Elements within each group, and the groups themselves, are ordered by
// smallest member, so output is deterministic.
func (uf *UnionFind) Groups() [][]int {
	byRoot := make(map[int][]int)
	for i := range uf.parent {
		r := uf.Find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	groups := make([][]int, 0, len(byRoot))
	// Iterate elements in order so each group is discovered at its
	// smallest member; members are appended in increasing order above.
	seen := make(map[int]bool)
	for i := range uf.parent {
		r := uf.Find(i)
		if !seen[r] {
			seen[r] = true
			groups = append(groups, byRoot[r])
		}
	}
	return groups
}
