package cluster

import "sort"

// Linkage selects how HAC scores the similarity between two clusters
// from the pairwise similarities of their members.
type Linkage int

const (
	// SingleLinkage merges on the maximum pairwise similarity.
	SingleLinkage Linkage = iota
	// CompleteLinkage merges on the minimum pairwise similarity.
	CompleteLinkage
	// AverageLinkage merges on the mean pairwise similarity (UPGMA).
	AverageLinkage
)

// SimFunc returns the similarity (higher = more similar) between
// elements i and j. It must be symmetric.
type SimFunc func(i, j int) float64

// HAC runs hierarchical agglomerative clustering over n elements with
// the given linkage, merging greedily while the best inter-cluster
// similarity is >= threshold, and returns the resulting groups (each a
// slice of element indices, deterministic order).
//
// The implementation is the O(n^2 log n)-ish Lance-Williams update over
// a dense similarity matrix, which is what the canonicalization
// baselines (Galárraga et al. 2014, CESI) use at the scales of blocked
// canonicalization: blocking keeps each connected block small, so dense
// HAC within a block is the standard approach.
func HAC(n int, sim SimFunc, linkage Linkage, threshold float64) [][]int {
	if n == 0 {
		return nil
	}
	if n == 1 {
		return [][]int{{0}}
	}
	// Active cluster bookkeeping. matrix[i][j] is the current linkage
	// similarity between clusters i and j (i != j, both active).
	active := make([]bool, n)
	size := make([]int, n)
	members := make([][]int, n)
	for i := 0; i < n; i++ {
		active[i] = true
		size[i] = 1
		members[i] = []int{i}
	}
	matrix := make([][]float64, n)
	for i := range matrix {
		matrix[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i != j {
				matrix[i][j] = sim(i, j)
			}
		}
	}

	for remaining := n; remaining > 1; remaining-- {
		// Find the best active pair.
		bi, bj, best := -1, -1, threshold
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if matrix[i][j] >= best {
					// Strict improvement or first pair at threshold;
					// ties resolve to the smallest (i, j), giving
					// deterministic output.
					if matrix[i][j] > best || bi == -1 {
						bi, bj, best = i, j, matrix[i][j]
					}
				}
			}
		}
		if bi == -1 {
			break // nothing left above threshold
		}
		// Merge bj into bi with Lance-Williams updates.
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			switch linkage {
			case SingleLinkage:
				if matrix[bj][k] > matrix[bi][k] {
					matrix[bi][k] = matrix[bj][k]
				}
			case CompleteLinkage:
				if matrix[bj][k] < matrix[bi][k] {
					matrix[bi][k] = matrix[bj][k]
				}
			case AverageLinkage:
				si, sj := float64(size[bi]), float64(size[bj])
				matrix[bi][k] = (si*matrix[bi][k] + sj*matrix[bj][k]) / (si + sj)
			}
			matrix[k][bi] = matrix[bi][k]
		}
		members[bi] = append(members[bi], members[bj]...)
		size[bi] += size[bj]
		active[bj] = false
	}

	var groups [][]int
	for i := 0; i < n; i++ {
		if active[i] {
			g := members[i]
			sortInts(g)
			groups = append(groups, g)
		}
	}
	return groups
}

// GroupsFromPairs builds clusters as connected components over positive
// pair decisions: for every (i, j) with decide(i, j) true, i and j end
// up in the same group. This is the transitive-closure grouping JOCL's
// inference uses over positive canonicalization variables.
func GroupsFromPairs(n int, pairs [][2]int) [][]int {
	uf := NewUnionFind(n)
	for _, p := range pairs {
		uf.Union(p[0], p[1])
	}
	return uf.Groups()
}

func sortInts(a []int) { sort.Ints(a) }
