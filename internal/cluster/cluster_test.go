package cluster

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestUnionFindBasic(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Count() != 5 {
		t.Fatalf("initial count = %d, want 5", uf.Count())
	}
	if !uf.Union(0, 1) {
		t.Error("first union should merge")
	}
	if uf.Union(1, 0) {
		t.Error("repeated union should not merge")
	}
	uf.Union(2, 3)
	if uf.Count() != 3 {
		t.Errorf("count = %d, want 3", uf.Count())
	}
	if !uf.Connected(0, 1) || uf.Connected(0, 2) {
		t.Error("connectivity wrong")
	}
	uf.Union(1, 3)
	if !uf.Connected(0, 2) {
		t.Error("transitive connectivity failed")
	}
	if uf.SetSize(0) != 4 {
		t.Errorf("SetSize = %d, want 4", uf.SetSize(0))
	}
}

func TestUnionFindGroupsDeterministic(t *testing.T) {
	uf := NewUnionFind(6)
	uf.Union(4, 2)
	uf.Union(5, 1)
	got := uf.Groups()
	want := [][]int{{0}, {1, 5}, {2, 4}, {3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Groups = %v, want %v", got, want)
	}
}

func TestUnionFindProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		uf := NewUnionFind(n)
		merges := 0
		for k := 0; k < 60; k++ {
			if uf.Union(rng.Intn(n), rng.Intn(n)) {
				merges++
			}
		}
		// Invariant: sets + successful merges == n.
		if uf.Count()+merges != n {
			return false
		}
		// Invariant: group sizes sum to n and match SetSize.
		total := 0
		for _, g := range uf.Groups() {
			total += len(g)
			for _, m := range g {
				if uf.SetSize(m) != len(g) {
					return false
				}
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// blockSim gives high similarity within predefined blocks, low across.
func blockSim(assign []int) SimFunc {
	return func(i, j int) float64 {
		if assign[i] == assign[j] {
			return 0.9
		}
		return 0.1
	}
}

func TestHACRecoversBlocks(t *testing.T) {
	assign := []int{0, 1, 0, 1, 0, 2}
	for _, lk := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
		groups := HAC(len(assign), blockSim(assign), lk, 0.5)
		if len(groups) != 3 {
			t.Fatalf("linkage %v: got %d groups (%v), want 3", lk, len(groups), groups)
		}
		for _, g := range groups {
			for _, m := range g[1:] {
				if assign[m] != assign[g[0]] {
					t.Errorf("linkage %v: mixed group %v", lk, g)
				}
			}
		}
	}
}

func TestHACThresholdOne(t *testing.T) {
	// Threshold above every similarity: all singletons.
	groups := HAC(4, func(i, j int) float64 { return 0.3 }, AverageLinkage, 0.9)
	if len(groups) != 4 {
		t.Errorf("got %d groups, want 4 singletons", len(groups))
	}
}

func TestHACThresholdZero(t *testing.T) {
	// Threshold at/below every similarity: one cluster.
	groups := HAC(4, func(i, j int) float64 { return 0.3 }, SingleLinkage, 0.1)
	if len(groups) != 1 || len(groups[0]) != 4 {
		t.Errorf("got %v, want one group of 4", groups)
	}
}

func TestHACEdgeSizes(t *testing.T) {
	if got := HAC(0, nil, AverageLinkage, 0.5); got != nil {
		t.Errorf("HAC(0) = %v, want nil", got)
	}
	got := HAC(1, nil, AverageLinkage, 0.5)
	if !reflect.DeepEqual(got, [][]int{{0}}) {
		t.Errorf("HAC(1) = %v, want [[0]]", got)
	}
}

func TestHACChainSingleVsComplete(t *testing.T) {
	// Chain: 0-1 and 1-2 similar, 0-2 dissimilar. Single linkage chains
	// all three together; complete linkage must not.
	sim := func(i, j int) float64 {
		if (i == 0 && j == 1) || (i == 1 && j == 0) || (i == 1 && j == 2) || (i == 2 && j == 1) {
			return 0.8
		}
		return 0.0
	}
	single := HAC(3, sim, SingleLinkage, 0.5)
	if len(single) != 1 {
		t.Errorf("single linkage should chain: %v", single)
	}
	complete := HAC(3, sim, CompleteLinkage, 0.5)
	if len(complete) != 2 {
		t.Errorf("complete linkage should not fully chain: %v", complete)
	}
}

func TestHACPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Float64()
				m[i][j], m[j][i] = v, v
			}
		}
		groups := HAC(n, func(i, j int) float64 { return m[i][j] }, AverageLinkage, rng.Float64())
		// Groups must partition 0..n-1.
		seen := make([]bool, n)
		for _, g := range groups {
			for _, x := range g {
				if x < 0 || x >= n || seen[x] {
					return false
				}
				seen[x] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGroupsFromPairs(t *testing.T) {
	groups := GroupsFromPairs(5, [][2]int{{0, 2}, {2, 4}})
	want := [][]int{{0, 2, 4}, {1}, {3}}
	if !reflect.DeepEqual(groups, want) {
		t.Errorf("GroupsFromPairs = %v, want %v", groups, want)
	}
}
