package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/signals"
)

// Table is one experiment's output: rows of measured values (and,
// where the paper reports them, reference values) per method.
type Table struct {
	ID      string // "table1", "figure3", ...
	Title   string
	Columns []string
	Rows    []Row
}

// Row is one method's results.
type Row struct {
	Method   string
	Measured []float64
	Paper    []float64 // nil when the paper reports no value
}

// Format renders the table as aligned text; paper values, when known,
// appear in parentheses after the measured value.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	width := 24
	fmt.Fprintf(&b, "%-*s", width, "method")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "  %16s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", width, r.Method)
		for i := range t.Columns {
			cell := "-"
			if i < len(r.Measured) && r.Measured[i] >= 0 {
				cell = fmt.Sprintf("%.3f", r.Measured[i])
				if r.Paper != nil && i < len(r.Paper) && r.Paper[i] >= 0 {
					cell += fmt.Sprintf(" (%.3f)", r.Paper[i])
				}
			}
			fmt.Fprintf(&b, "  %16s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Suite holds the two benchmark data sets, their signal resources, and
// memoized JOCL runs so several experiments can share one inference.
type Suite struct {
	Scale  float64
	Reverb *datasets.Dataset
	NYT    *datasets.Dataset

	reverbRes *signals.Resources
	nytRes    *signals.Resources

	// Memoized runs keyed by dataset + config fingerprint, plus the
	// learned weights of each run (for cross-data-set transfer).
	runs    map[string]*core.Result
	weights map[string]map[string]float64
}

// NewSuite generates both data sets at the given scale (1.0 = the
// paper's sizes; benchmarks typically use 0.01-0.05).
func NewSuite(scale float64) (*Suite, error) {
	reverb, err := datasets.Generate(datasets.ReVerb45K(scale))
	if err != nil {
		return nil, fmt.Errorf("bench: generating ReVerb45K: %w", err)
	}
	nyt, err := datasets.Generate(datasets.NYTimes2018(scale))
	if err != nil {
		return nil, fmt.Errorf("bench: generating NYTimes2018: %w", err)
	}
	return &Suite{
		Scale:     scale,
		Reverb:    reverb,
		NYT:       nyt,
		reverbRes: signals.New(reverb.OKB, reverb.CKB, reverb.Emb, reverb.PPDB),
		nytRes:    signals.New(nyt.OKB, nyt.CKB, nyt.Emb, nyt.PPDB),
		runs:      map[string]*core.Result{},
		weights:   map[string]map[string]float64{},
	}, nil
}

// ClearCache drops memoized JOCL runs, so the next experiment call
// re-runs inference (used by benchmarks that measure regeneration
// cost).
func (s *Suite) ClearCache() {
	s.runs = map[string]*core.Result{}
	s.weights = map[string]map[string]float64{}
}

// Resources returns the signal resources of a dataset.
func (s *Suite) Resources(ds *datasets.Dataset) *signals.Resources {
	if ds == s.Reverb {
		return s.reverbRes
	}
	return s.nytRes
}

func labelsOf(ds *datasets.Dataset) *core.Labels {
	return &core.Labels{
		NPLink:    ds.ValidationNPLinks(),
		RPLink:    ds.ValidationRPLinks(),
		NPCluster: ds.ValidationNPClusters(),
		RPCluster: ds.ValidationRPClusters(),
	}
}

// run executes (or returns the memoized) JOCL run for a dataset+config.
// NYTimes2018 carries no validation split, so — exactly as in the
// paper, where ReVerb45K's validation set trains the parameters used
// for both test sets — its runs are seeded with the weights learned by
// the corresponding ReVerb45K run.
func (s *Suite) run(key string, ds *datasets.Dataset, cfg core.Config) (*core.Result, error) {
	fullKey := ds.Profile.Name + "/" + key
	if r, ok := s.runs[fullKey]; ok {
		return r, nil
	}
	if ds != s.Reverb && cfg.InitialWeights == nil {
		if _, err := s.run(key, s.Reverb, cfg); err != nil {
			return nil, err
		}
		cfg.InitialWeights = s.weights["ReVerb45K/"+key]
	}
	sys, err := core.NewSystem(s.Resources(ds), cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: building %s: %w", fullKey, err)
	}
	r := sys.Run(labelsOf(ds))
	s.runs[fullKey] = r
	s.weights[fullKey] = sys.WeightValues()
	return r, nil
}

// testGold restricts a gold map to surfaces occurring in test triples,
// so validation evidence never inflates a score.
func testGold(ds *datasets.Dataset, gold map[string]string, np bool) map[string]string {
	surf := map[string]bool{}
	for _, ti := range ds.TestTriples {
		t := ds.OKB.Triple(ti)
		if np {
			surf[t.Subj] = true
			surf[t.Obj] = true
		} else {
			surf[t.Pred] = true
		}
	}
	out := make(map[string]string, len(gold))
	for k, v := range gold {
		if surf[k] {
			out[k] = v
		}
	}
	return out
}

// canonScores evaluates a clustering on the dataset's test gold.
func canonScores(ds *datasets.Dataset, groups [][]string, np bool) metrics.ClusterScores {
	gold := ds.GoldNPCluster
	if !np {
		gold = ds.GoldRPCluster
	}
	return metrics.Evaluate(groups, testGold(ds, gold, np))
}

// linkAccuracy evaluates links on the dataset's test gold, restricted
// to surfaces that denote a CKB target: the paper annotates each
// sampled NP "with its gold mapping entity", so out-of-KB phrases are
// not part of the linking ground truth (abstention earns no credit).
func linkAccuracy(ds *datasets.Dataset, links map[string]string, np bool) float64 {
	gold := ds.GoldNPLink
	if !np {
		gold = ds.GoldRPLink
	}
	test := testGold(ds, gold, np)
	for k, v := range test {
		if v == "" {
			delete(test, k)
		}
	}
	return metrics.Accuracy(links, test)
}
