package bench

import (
	"fmt"

	"repro/internal/core"
)

// The ablations below go beyond the paper: they quantify the design
// choices DESIGN.md calls out (the scheduled message order of Section
// 3.4, LBP damping, the blocking threshold, and the candidate-list
// size). Each returns a Table in the same format as the paper
// experiments, keyed "extra-*".

// AblationSchedule compares the paper's five-stage message schedule
// against unscheduled flooding.
func (s *Suite) AblationSchedule() (*Table, error) {
	t := &Table{
		ID:      "extra-schedule",
		Title:   "Message schedule ablation on ReVerb45K",
		Columns: []string{"NP AvgF1", "EntAcc", "RelAcc", "Sweeps"},
	}
	ds := s.Reverb

	addRun := func(name string, res *core.Result) {
		sc := canonScores(ds, res.NPGroups, true)
		t.Rows = append(t.Rows, Row{
			Method: name,
			Measured: []float64{
				sc.AverageF1,
				linkAccuracy(ds, res.NPLinks, true),
				linkAccuracy(ds, res.RPLinks, false),
				float64(res.Stats.Sweeps),
			},
		})
	}
	paper, err := s.run("full", ds, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	addRun("paper schedule", paper)

	// Flooding: rebuild the system but run with a nil schedule.
	sys, err := core.NewSystem(s.Resources(ds), core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	flood := sys.RunWithSchedule(labelsOf(ds), nil)
	addRun("flooding", flood)
	return t, nil
}

// AblationDamping sweeps the LBP damping factor.
func (s *Suite) AblationDamping() (*Table, error) {
	t := &Table{
		ID:      "extra-damping",
		Title:   "LBP damping sweep on ReVerb45K",
		Columns: []string{"NP AvgF1", "EntAcc", "RelAcc"},
	}
	ds := s.Reverb
	for _, d := range []float64{0, 0.2, 0.5} {
		cfg := core.DefaultConfig()
		cfg.BP.Damping = d
		cfg.Train.BP.Damping = d
		res, err := s.run(fmt.Sprintf("damp-%.1f", d), ds, cfg)
		if err != nil {
			return nil, err
		}
		sc := canonScores(ds, res.NPGroups, true)
		t.Rows = append(t.Rows, Row{
			Method: fmt.Sprintf("damping=%.1f", d),
			Measured: []float64{
				sc.AverageF1,
				linkAccuracy(ds, res.NPLinks, true),
				linkAccuracy(ds, res.RPLinks, false),
			},
		})
	}
	return t, nil
}

// AblationBlocking sweeps the IDF blocking threshold (paper: 0.5) and
// toggles shared-candidate blocking.
func (s *Suite) AblationBlocking() (*Table, error) {
	t := &Table{
		ID:      "extra-blocking",
		Title:   "Blocking ablation on ReVerb45K",
		Columns: []string{"NP AvgF1", "EntAcc", "NPPairs"},
	}
	ds := s.Reverb
	for _, th := range []float64{0.3, 0.5, 0.7} {
		cfg := core.DefaultConfig()
		cfg.BlockingThreshold = th
		res, err := s.run(fmt.Sprintf("block-%.1f", th), ds, cfg)
		if err != nil {
			return nil, err
		}
		sc := canonScores(ds, res.NPGroups, true)
		t.Rows = append(t.Rows, Row{
			Method: fmt.Sprintf("idf>=%.1f", th),
			Measured: []float64{
				sc.AverageF1,
				linkAccuracy(ds, res.NPLinks, true),
				float64(res.Stats.NPPairVars),
			},
		})
	}
	cfg := core.DefaultConfig()
	cfg.BlockSharedCandidates = false
	res, err := s.run("block-noshared", ds, cfg)
	if err != nil {
		return nil, err
	}
	sc := canonScores(ds, res.NPGroups, true)
	t.Rows = append(t.Rows, Row{
		Method: "idf-only (no shared-candidate pairs)",
		Measured: []float64{
			sc.AverageF1,
			linkAccuracy(ds, res.NPLinks, true),
			float64(res.Stats.NPPairVars),
		},
	})
	// Embedding-neighbor blocking (off by default: it floods
	// low-evidence pairs — this row quantifies why).
	cfg = core.DefaultConfig()
	cfg.EmbBlockTopK = 4
	res, err = s.run("block-emb", ds, cfg)
	if err != nil {
		return nil, err
	}
	sc = canonScores(ds, res.NPGroups, true)
	t.Rows = append(t.Rows, Row{
		Method: "+embedding neighbors (k=4)",
		Measured: []float64{
			sc.AverageF1,
			linkAccuracy(ds, res.NPLinks, true),
			float64(res.Stats.NPPairVars),
		},
	})
	return t, nil
}

// AblationCandidates sweeps the linking candidate-list size K.
func (s *Suite) AblationCandidates() (*Table, error) {
	t := &Table{
		ID:      "extra-candidates",
		Title:   "Candidate-list size sweep on ReVerb45K",
		Columns: []string{"EntAcc", "RelAcc", "Factors"},
	}
	ds := s.Reverb
	for _, k := range []int{2, 6, 10} {
		cfg := core.DefaultConfig()
		cfg.MaxCandidates = k
		res, err := s.run(fmt.Sprintf("cand-%d", k), ds, cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Method: fmt.Sprintf("K=%d", k),
			Measured: []float64{
				linkAccuracy(ds, res.NPLinks, true),
				linkAccuracy(ds, res.RPLinks, false),
				float64(res.Stats.Factors),
			},
		})
	}
	return t, nil
}

// AblationExtensions compares the paper's full feature set against the
// extended set with the two new signals (f_attr, f_type) — the
// flexibility claim of the paper's Section 1, quantified.
func (s *Suite) AblationExtensions() (*Table, error) {
	t := &Table{
		ID:      "extra-extensions",
		Title:   "Extension signals on ReVerb45K (paper features vs +f_attr/+f_type)",
		Columns: []string{"NP AvgF1", "EntAcc"},
	}
	ds := s.Reverb
	for _, v := range []struct {
		name string
		fs   core.FeatureSet
	}{
		{"JOCL-all (paper)", core.AllFeatures()},
		{"JOCL-extended (+attr,+type)", core.ExtendedFeatures()},
	} {
		cfg := core.DefaultConfig()
		cfg.Features = v.fs
		key := "full"
		if v.name != "JOCL-all (paper)" {
			key = "extended"
		}
		res, err := s.run(key, ds, cfg)
		if err != nil {
			return nil, err
		}
		sc := canonScores(ds, res.NPGroups, true)
		t.Rows = append(t.Rows, Row{
			Method:   v.name,
			Measured: []float64{sc.AverageF1, linkAccuracy(ds, res.NPLinks, true)},
		})
	}
	return t, nil
}

// Extras runs every beyond-the-paper ablation.
func (s *Suite) Extras() ([]*Table, error) {
	var out []*Table
	for _, f := range []func() (*Table, error){
		s.AblationSchedule, s.AblationDamping, s.AblationBlocking, s.AblationCandidates,
		s.AblationExtensions,
	} {
		tab, err := f()
		if err != nil {
			return nil, err
		}
		out = append(out, tab)
	}
	return out, nil
}

// BPStats reports the graph shape of the default configuration (used
// by the CLI's -exp stats mode and by tests).
func (s *Suite) BPStats() (core.Stats, error) {
	res, err := s.run("full", s.Reverb, core.DefaultConfig())
	if err != nil {
		return core.Stats{}, err
	}
	return res.Stats, nil
}
