package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
)

// This file benchmarks persistent-partition repair
// (factorgraph.RepairPartition, the default under core segmentation)
// against per-build re-derivation on the workload that stresses it: a
// rebuild-heavy stream of many small batches, each of which rebuilds
// the factor graph and therefore re-derives — or repairs — the hub-cut
// partition. Repair carries the previous cut set across builds and
// re-runs selection only inside blocks whose degree profile changed, so
// its per-build partition cost should be a small fraction of the full
// re-partition's, while preserving block identity (blocks adopted
// verbatim keep their warm state) at no extra approximation cost.

// RepairStrategy is one side of the repair-vs-repartition comparison.
type RepairStrategy struct {
	// Per-batch total ingest wall-clock and the partition-derivation
	// share of it, ms.
	IngestMS    []float64 `json:"ingest_ms"`
	PartitionMS []float64 `json:"partition_ms"`
	// Post-warm-up means (batches after the first, where both
	// strategies build cold).
	MeanIngestMS    float64 `json:"mean_ingest_ms"`
	MeanPartitionMS float64 `json:"mean_partition_ms"`
	// IngestLatency is the session's own telemetry digest of the same
	// ingests (p50/p95/p99, includes the cold preload).
	IngestLatency LatencySummary `json:"ingest_latency"`
	// IngestAllocBytes / IngestAllocs echo the session's cumulative
	// jocl_ingest_alloc_bytes_total / jocl_ingest_allocs_total counters.
	IngestAllocBytes uint64 `json:"ingest_alloc_bytes_total"`
	IngestAllocs     uint64 `json:"ingest_allocs_total"`
	// Final-build partition shape, final-batch block reuse, and the
	// repair totals across all post-warm-up batches (zero for the
	// re-partition strategy).
	Blocks            int `json:"blocks"`
	CutVariables      int `json:"cut_variables"`
	LastDirty         int `json:"last_dirty_blocks"`
	LastWarm          int `json:"last_warm_blocks"`
	BlocksReusedTotal int `json:"blocks_reused_total"`
	BlocksRecutTotal  int `json:"blocks_recut_total"`
	Repairs           int `json:"repairs"`
	// Result quality of the final snapshot against the generator's gold
	// labels, and its delta from the exact reference.
	NPAvgF1         float64 `json:"np_avg_f1"`
	EntLinkAcc      float64 `json:"ent_link_acc"`
	NPAvgF1Delta    float64 `json:"np_avg_f1_delta_vs_exact"`
	EntLinkAccDelta float64 `json:"ent_link_acc_delta_vs_exact"`
}

// RepairReport is the repair benchmark's output, emitted as the
// BENCH_repair.json artifact.
type RepairReport struct {
	Profile     string  `json:"profile"`
	Scale       float64 `json:"scale"`
	Batches     int     `json:"batches"`
	Workers     int     `json:"workers"`
	F1Tolerance float64 `json:"f1_tolerance"`

	// Exact reference: one cold whole-graph solve over the final
	// accumulated triples.
	ExactNPAvgF1    float64 `json:"exact_np_avg_f1"`
	ExactEntLinkAcc float64 `json:"exact_ent_link_acc"`

	Repair      RepairStrategy `json:"repair"`
	Repartition RepairStrategy `json:"repartition"`

	// PartitionCostRatio is repair's mean post-warm-up partition time
	// over the full re-partition's (the acceptance target is < 0.5);
	// IngestSpeedup compares total ingest latency the same way
	// (repartition over repair).
	PartitionCostRatio float64 `json:"partition_cost_ratio"`
	IngestSpeedup      float64 `json:"ingest_speedup"`
	// WithinTolerance reports whether the repair strategy's F1/accuracy
	// deltas vs exact stay inside F1Tolerance; MeetsTarget additionally
	// requires PartitionCostRatio < 0.5 and at least one block reused
	// by repair.
	WithinTolerance bool `json:"within_tolerance"`
	MeetsTarget     bool `json:"meets_target"`
}

// RunRepair ingests the same rebuild-heavy batch sequence — a preload
// followed by many small increments, every one of which rebuilds the
// graph — into two segmented sessions, one repairing its partition
// across builds (the default) and one re-deriving it per build
// (Segment.NoRepair), and compares the per-build partition cost, the
// block reuse, and the final result quality against exact whole-graph
// inference.
func RunRepair(profile string, scale, preloadFrac float64, batches, workers int, f1Tol float64) (*RepairReport, error) {
	ds, triples, cuts, batches, err := ingestPlan(profile, scale, preloadFrac, batches)
	if err != nil {
		return nil, err
	}
	if f1Tol <= 0 {
		f1Tol = 0.02
	}
	workers = resolveWorkers(workers)

	report := &RepairReport{
		Profile: profile, Scale: scale, Batches: batches,
		Workers: workers, F1Tolerance: f1Tol,
	}

	baseCfg := core.DefaultConfig()
	baseCfg.BP.MaxSweeps = 40
	baseCfg.Segment.Enable = true
	noRepairCfg := baseCfg
	noRepairCfg.Segment.NoRepair = true

	runStrategy := func(cfg core.Config) (*RepairStrategy, error) {
		sess := stream.New(ds.CKB, ds.Emb, ds.PPDB, stream.Config{Core: cfg, Workers: workers, Telemetry: benchTelemetry()})
		s := &RepairStrategy{}
		var last stream.IngestStats
		for b := 0; b < batches; b++ {
			t0 := time.Now()
			st, err := sess.Ingest(triples[cuts[b]:cuts[b+1]])
			if err != nil {
				return nil, err
			}
			s.IngestMS = append(s.IngestMS, float64(time.Since(t0))/float64(time.Millisecond))
			s.PartitionMS = append(s.PartitionMS, float64(st.PartitionTime)/float64(time.Millisecond))
			if b > 0 {
				s.BlocksReusedTotal += st.RepairBlocksReused
				s.BlocksRecutTotal += st.RepairBlocksRecut
				if st.PartitionRepaired {
					s.Repairs++
				}
			}
			last = st
		}
		for _, ms := range s.IngestMS[1:] {
			s.MeanIngestMS += ms
		}
		s.MeanIngestMS /= float64(len(s.IngestMS) - 1)
		for _, ms := range s.PartitionMS[1:] {
			s.MeanPartitionMS += ms
		}
		s.MeanPartitionMS /= float64(len(s.PartitionMS) - 1)
		s.Blocks = last.Components
		s.CutVariables = last.CutVariables
		s.LastDirty = last.DirtyComponents
		s.LastWarm = last.CleanComponents
		s.IngestLatency = ingestLatency(sess)
		s.IngestAllocBytes, s.IngestAllocs = sessionAllocCounters(sess)
		res := sess.Snapshot()
		s.NPAvgF1 = canonScores(ds, res.NPGroups, true).AverageF1
		s.EntLinkAcc = linkAccuracy(ds, res.NPLinks, true)
		return s, nil
	}

	repair, err := runStrategy(baseCfg)
	if err != nil {
		return nil, fmt.Errorf("bench: repair session: %w", err)
	}
	repartition, err := runStrategy(noRepairCfg)
	if err != nil {
		return nil, fmt.Errorf("bench: repartition session: %w", err)
	}

	report.ExactNPAvgF1, report.ExactEntLinkAcc, err = exactReference(ds, triples, baseCfg)
	if err != nil {
		return nil, err
	}

	for _, s := range []*RepairStrategy{repair, repartition} {
		s.NPAvgF1Delta = s.NPAvgF1 - report.ExactNPAvgF1
		s.EntLinkAccDelta = s.EntLinkAcc - report.ExactEntLinkAcc
	}
	report.Repair = *repair
	report.Repartition = *repartition
	if repartition.MeanPartitionMS > 0 {
		report.PartitionCostRatio = repair.MeanPartitionMS / repartition.MeanPartitionMS
	}
	if repair.MeanIngestMS > 0 {
		report.IngestSpeedup = repartition.MeanIngestMS / repair.MeanIngestMS
	}
	report.WithinTolerance = math.Abs(repair.NPAvgF1Delta) <= f1Tol && math.Abs(repair.EntLinkAccDelta) <= f1Tol
	report.MeetsTarget = report.WithinTolerance &&
		report.PartitionCostRatio > 0 && report.PartitionCostRatio < 0.5 &&
		repair.BlocksReusedTotal > 0
	return report, nil
}

// WriteJSON emits the report as the BENCH_repair.json artifact.
func (r *RepairReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders the report as aligned text.
func (r *RepairReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "REPAIR — partition repair vs per-build re-partition (%s, scale %g, %d workers)\n",
		r.Profile, r.Scale, r.Workers)
	fmt.Fprintf(&b, "%8s  %22s  %22s\n", "batch", "repair (part/total)", "repartition (part/total)")
	for i := range r.Repair.IngestMS {
		fmt.Fprintf(&b, "%8d  %9.2f / %8.1fms  %9.2f / %8.1fms\n", i+1,
			r.Repair.PartitionMS[i], r.Repair.IngestMS[i],
			r.Repartition.PartitionMS[i], r.Repartition.IngestMS[i])
	}
	fmt.Fprintf(&b, "mean post-warm-up partition: repair %.2fms, repartition %.2fms (ratio %.2f, target < 0.50)\n",
		r.Repair.MeanPartitionMS, r.Repartition.MeanPartitionMS, r.PartitionCostRatio)
	fmt.Fprintf(&b, "mean post-warm-up ingest: repair %.1fms, repartition %.1fms (%.2fx)\n",
		r.Repair.MeanIngestMS, r.Repartition.MeanIngestMS, r.IngestSpeedup)
	fmt.Fprintf(&b, "ingest latency: repair %s; repartition %s\n", r.Repair.IngestLatency, r.Repartition.IngestLatency)
	fmt.Fprintf(&b, "repair reuse: %d blocks reused / %d re-cut across %d repairs (final: %d blocks, %d cuts, last batch %d dirty / %d warm)\n",
		r.Repair.BlocksReusedTotal, r.Repair.BlocksRecutTotal, r.Repair.Repairs,
		r.Repair.Blocks, r.Repair.CutVariables, r.Repair.LastDirty, r.Repair.LastWarm)
	fmt.Fprintf(&b, "quality (NP avg F1 / ent-link acc): exact %.3f/%.3f, repair %+.4f/%+.4f, repartition %+.4f/%+.4f (tolerance %g, within: %v)\n",
		r.ExactNPAvgF1, r.ExactEntLinkAcc,
		r.Repair.NPAvgF1Delta, r.Repair.EntLinkAccDelta,
		r.Repartition.NPAvgF1Delta, r.Repartition.EntLinkAccDelta,
		r.F1Tolerance, r.WithinTolerance)
	fmt.Fprintf(&b, "meets target (ratio < 0.5, blocks reused > 0, within tolerance): %v\n", r.MeetsTarget)
	return b.String()
}
