package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/ingress"
	"repro/internal/okb"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// TrafficSide is one mode's measurements under the shared open-loop
// schedule: "sync" submits each arrival straight to the session (the
// pre-ingress serving path, every batch paying a full inference run),
// "coalesced" submits through the ingress pipeline (queued arrivals
// merge into shared ingests).
type TrafficSide struct {
	Mode string `json:"mode"`

	// Accepted / Shed partition the offered batches; ShedRate is
	// Shed/(Accepted+Shed). Below the high-water mark the rate is 0 —
	// the queue absorbs the backlog instead of refusing it.
	Accepted int64   `json:"accepted"`
	Shed     int64   `json:"shed"`
	ShedRate float64 `json:"shed_rate"`

	// WallMS is the phase wall-clock from first arrival to last
	// completion; AchievedQPS is Accepted over that wall.
	WallMS      float64 `json:"wall_ms"`
	AchievedQPS float64 `json:"achieved_qps"`

	// IngestLatency digests the client-observed submit-to-commit
	// latency (queue wait included); ReadLatency the individual reads
	// the concurrent query clients issued.
	IngestLatency LatencySummary `json:"ingest_latency"`
	ReadLatency   LatencySummary `json:"read_latency"`
	Reads         int64          `json:"reads"`

	// MergedIngests / CoalescedBatches mirror the pipeline counters
	// (on the sync side every batch is its own ingest, factor 1).
	MergedIngests    uint64  `json:"merged_ingests"`
	CoalescedBatches uint64  `json:"coalesced_batches"`
	CoalescingFactor float64 `json:"coalescing_factor"`

	// SessionIngestMS is the session-side mean wall per ingest it ran
	// (a merged ingest is one); PerBatchCostMS divides the same total
	// session wall by accepted client batches — the number coalescing
	// is supposed to cut.
	SessionIngestMS float64 `json:"session_ingest_ms"`
	PerBatchCostMS  float64 `json:"per_batch_cost_ms"`
}

// TrafficReport is the ingress traffic benchmark's output, emitted as
// the BENCH_traffic.json artifact: the same open-loop mixed
// ingest/query schedule replayed against the synchronous path and the
// coalescing pipeline, at an offered load calibrated to twice what
// the synchronous path sustains.
type TrafficReport struct {
	Profile string  `json:"profile"`
	Scale   float64 `json:"scale"`
	Batches int     `json:"batches"`
	Workers int     `json:"workers"`
	Clients int     `json:"clients"`

	// CalibrationMS is the measured synchronous per-batch ingest wall;
	// InterarrivalMS = CalibrationMS/2, i.e. batches are offered at 2x
	// the synchronous capacity.
	CalibrationMS  float64 `json:"calibration_ms"`
	InterarrivalMS float64 `json:"interarrival_ms"`

	Sync      TrafficSide `json:"sync"`
	Coalesced TrafficSide `json:"coalesced"`

	// CostRatio is sync per-batch session cost over coalesced
	// per-batch session cost: how much cheaper coalescing makes the
	// average accepted batch at equal offered load.
	CostRatio float64 `json:"cost_ratio"`
}

// trafficSession builds one benchmark session in the serving
// configuration: hub-cut segmentation, query index, telemetry on.
func trafficSession(ds *datasets.Dataset, workers int) *stream.Session {
	cfg := core.DefaultConfig()
	cfg.BP.MaxSweeps = 40
	cfg.Segment.Enable = true
	return stream.New(ds.CKB, ds.Emb, ds.PPDB, stream.Config{
		Core:      cfg,
		Workers:   workers,
		Query:     query.Config{Enable: true},
		Telemetry: benchTelemetry(),
	})
}

// sessionWall reads the cumulative session-side ingest wall-clock and
// ingest count from the telemetry histogram /metrics exports.
func sessionWall(sess *stream.Session) (sum float64, count uint64) {
	tel := sess.Telemetry()
	if tel == nil {
		return 0, 0
	}
	h := tel.Registry.FindHistogram("jocl_ingest_duration_seconds")
	if h == nil {
		return 0, 0
	}
	return h.Sum(), h.Summary().Count
}

// runTrafficSide replays the open-loop schedule: a dispatcher
// releases one batch every interarrival, `clients` ingest clients
// consume them through submit, and as many query clients hammer the
// read path until the last batch lands. Returns the side's filled
// measurements.
func runTrafficSide(mode string, sess *stream.Session, work [][]okb.Triple, nps, rps []string,
	clients int, interarrival time.Duration, submit func([]okb.Triple) error) (TrafficSide, error) {

	side := TrafficSide{Mode: mode}
	reg := telemetry.NewRegistry()
	// The overloaded sync side queues submissions for minutes, far past
	// the 10s default latency ladder — extend it so the tail percentiles
	// report real values instead of clamping to the top bucket.
	bounds := append(append([]float64(nil), telemetry.DurationBuckets...), 25, 50, 100, 250, 500)
	ingestHist := reg.Histogram("bench_traffic_ingest_seconds",
		"Client-observed submit-to-commit latency.", bounds)
	baseSum, baseCount := sessionWall(sess)

	arrivals := make(chan []okb.Triple, len(work))
	go func() {
		defer close(arrivals)
		next := time.Now()
		for _, b := range work {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			arrivals <- b
			next = next.Add(interarrival)
		}
	}()

	rs := &readStats{hist: reg.Histogram("bench_traffic_read_seconds",
		"Individual read latency under ingest traffic.", nil)}
	var readWG sync.WaitGroup
	ix := sess.Query()
	for r := 0; r < clients; r++ {
		readWG.Add(1)
		go func(offset int) {
			defer readWG.Done()
			hammer(ix, nps, rps, rs, offset)
		}(r * 1013)
	}

	var (
		wg       sync.WaitGroup
		accepted atomic.Int64
		shed     atomic.Int64
		firstErr atomic.Value
	)
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range arrivals {
				tb := time.Now()
				err := submit(b)
				switch {
				case err == nil:
					ingestHist.ObserveDuration(time.Since(tb))
					accepted.Add(1)
				case isShed(err):
					shed.Add(1)
				default:
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(t0)
	rs.stopped.Store(true)
	readWG.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return side, err
	}

	side.Accepted = accepted.Load()
	side.Shed = shed.Load()
	if n := side.Accepted + side.Shed; n > 0 {
		side.ShedRate = float64(side.Shed) / float64(n)
	}
	side.WallMS = float64(wall.Microseconds()) / 1000
	if s := wall.Seconds(); s > 0 {
		side.AchievedQPS = float64(side.Accepted) / s
	}
	side.IngestLatency = latencySummaryOf(ingestHist)
	side.ReadLatency = latencySummaryOf(rs.hist)
	side.Reads = rs.reads.Load()

	sum, count := sessionWall(sess)
	dSum, dCount := sum-baseSum, count-baseCount
	if dCount > 0 {
		side.SessionIngestMS = dSum * 1000 / float64(dCount)
	}
	if side.Accepted > 0 {
		side.PerBatchCostMS = dSum * 1000 / float64(side.Accepted)
	}
	side.MergedIngests = dCount
	side.CoalescedBatches = uint64(side.Accepted)
	if dCount > 0 {
		side.CoalescingFactor = float64(side.Accepted) / float64(dCount)
	}
	return side, nil
}

// isShed reports whether submit refused the batch at the high-water
// mark (as opposed to failing it).
func isShed(err error) bool {
	var s *ingress.ShedError
	return errors.As(err, &s)
}

// RunTraffic prices the ingress pipeline in its serving scenario.
// Both sides share the substrate, the batch plan, and the schedule:
// after the epoch preload and a few serial calibration batches, the
// remaining batches are offered open-loop at twice the synchronous
// per-batch rate, with `clients` concurrent ingest clients and as
// many query clients. The synchronous side pays one full inference
// run per batch and answers the overload by convoying on the session
// lock; the coalescing side merges the backlog into shared ingests.
// CostRatio reports how much session wall-clock the average accepted
// batch saves.
func RunTraffic(profile string, scale, preloadFrac float64, batches, workers, clients int) (*TrafficReport, error) {
	ds, triples, cuts, batches, err := ingestPlan(profile, scale, preloadFrac, batches)
	if err != nil {
		return nil, err
	}
	if clients < 2 {
		clients = 8
	}
	const calibration = 3
	if batches-1 < calibration+2 {
		return nil, fmt.Errorf("bench: traffic needs at least %d batches after the preload, got %d", calibration+2, batches-1)
	}
	report := &TrafficReport{Profile: profile, Scale: scale, Batches: batches, Workers: workers, Clients: clients}
	nps, rps := ds.OKB.NPs(), ds.OKB.RPs()

	syncSess := trafficSession(ds, workers)
	coalSess := trafficSession(ds, workers)

	// Epoch preload plus serial calibration batches on both sessions,
	// timing the synchronous per-batch cost to set the offered load.
	for b := 0; b < 1+calibration; b++ {
		batch := triples[cuts[b]:cuts[b+1]]
		t0 := time.Now()
		if _, err := syncSess.Ingest(batch); err != nil {
			return nil, err
		}
		if b > 0 {
			report.CalibrationMS += float64(time.Since(t0).Microseconds()) / 1000
		}
		if _, err := coalSess.Ingest(batch); err != nil {
			return nil, err
		}
	}
	report.CalibrationMS /= calibration
	interarrival := time.Duration(report.CalibrationMS / 2 * float64(time.Millisecond))
	if interarrival <= 0 {
		interarrival = time.Millisecond
	}
	report.InterarrivalMS = float64(interarrival.Microseconds()) / 1000

	work := make([][]okb.Triple, 0, batches-1-calibration)
	for b := 1 + calibration; b < batches; b++ {
		work = append(work, triples[cuts[b]:cuts[b+1]])
	}

	report.Sync, err = runTrafficSide("sync", syncSess, work, nps, rps, clients, interarrival,
		func(b []okb.Triple) error { _, err := syncSess.Ingest(b); return err })
	if err != nil {
		return nil, err
	}

	// The queue is sized past the whole offered schedule, so below the
	// high-water mark nothing sheds — the acceptance criterion the
	// artifact records as shed_rate 0.
	depth := 2 * len(work)
	if depth < 64 {
		depth = 64
	}
	pipe := ingress.NewSession(coalSess, ingress.Config{
		QueueDepth:    depth,
		CoalesceDepth: 16,
	})
	report.Coalesced, err = runTrafficSide("coalesced", coalSess, work, nps, rps, clients, interarrival,
		func(b []okb.Triple) error { _, err := pipe.Submit(context.Background(), b); return err })
	closeCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if cerr := pipe.Close(closeCtx); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	// The pipeline's own counters are authoritative for the merge
	// bookkeeping (the histogram delta also counts nothing else, but
	// the counters are what /metrics exports).
	st := pipe.Stats()
	report.Coalesced.MergedIngests = st.MergedIngests
	report.Coalesced.CoalescedBatches = st.CoalescedBatches
	report.Coalesced.CoalescingFactor = st.CoalescingFactor()
	report.Coalesced.Shed = int64(st.Shed)

	if report.Coalesced.PerBatchCostMS > 0 {
		report.CostRatio = report.Sync.PerBatchCostMS / report.Coalesced.PerBatchCostMS
	}
	return report, nil
}

// WriteJSON emits the report as the BENCH_traffic.json artifact.
func (r *TrafficReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders the report as aligned text.
func (r *TrafficReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TRAFFIC — open-loop ingest at 2x synchronous capacity, sync vs coalescing ingress (%s, scale %g, %d clients)\n",
		r.Profile, r.Scale, r.Clients)
	fmt.Fprintf(&b, "calibration %.2fms/batch -> interarrival %.2fms\n", r.CalibrationMS, r.InterarrivalMS)
	for _, s := range []TrafficSide{r.Sync, r.Coalesced} {
		fmt.Fprintf(&b, "%-9s  accepted %d shed %d (rate %.3f)  wall %.0fms  %.1f batches/s  factor %.2f\n",
			s.Mode, s.Accepted, s.Shed, s.ShedRate, s.WallMS, s.AchievedQPS, s.CoalescingFactor)
		fmt.Fprintf(&b, "           ingest %s\n", s.IngestLatency)
		fmt.Fprintf(&b, "           reads  %s (%d reads)\n", s.ReadLatency, s.Reads)
		fmt.Fprintf(&b, "           session %.2fms/ingest, %.2fms per accepted batch\n", s.SessionIngestMS, s.PerBatchCostMS)
	}
	fmt.Fprintf(&b, "per-batch session cost: sync %.2fms vs coalesced %.2fms — %.2fx\n",
		r.Sync.PerBatchCostMS, r.Coalesced.PerBatchCostMS, r.CostRatio)
	return b.String()
}
