package bench

import (
	"fmt"

	"repro/internal/stream"
	"repro/internal/telemetry"
)

// LatencySummary is the p50/p95/p99 digest every BENCH_*.json artifact
// reports for its latency distributions. The quantiles are read back
// from the same telemetry histograms the serving stack exports on
// /metrics — the benchmarks do not keep a second measurement pipeline —
// converted from the histograms' seconds to the artifacts'
// milliseconds.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// latencySummaryOf digests a telemetry histogram (observed in seconds)
// into a millisecond summary. A nil histogram — telemetry disabled or
// the metric never registered — produces the zero summary.
func latencySummaryOf(h *telemetry.Histogram) LatencySummary {
	if h == nil {
		return LatencySummary{}
	}
	s := h.Summary()
	return LatencySummary{
		Count:  s.Count,
		MeanMS: s.Mean * 1000,
		P50MS:  s.P50 * 1000,
		P95MS:  s.P95 * 1000,
		P99MS:  s.P99 * 1000,
	}
}

// ingestLatency reads a session's jocl_ingest_duration_seconds
// histogram — the identical series a /metrics scrape of that session
// would report.
func ingestLatency(sess *stream.Session) LatencySummary {
	tel := sess.Telemetry()
	if tel == nil {
		return LatencySummary{}
	}
	return latencySummaryOf(tel.Registry.FindHistogram("jocl_ingest_duration_seconds"))
}

// checkpointLatency reads a session's jocl_checkpoint_duration_seconds
// histogram.
func checkpointLatency(sess *stream.Session) LatencySummary {
	tel := sess.Telemetry()
	if tel == nil {
		return LatencySummary{}
	}
	return latencySummaryOf(tel.Registry.FindHistogram("jocl_checkpoint_duration_seconds"))
}

// benchTelemetry is the telemetry configuration the benchmark sessions
// run with: metrics on (the latency summaries come from them), trace
// retention minimal (the benchmarks never read traces back).
func benchTelemetry() telemetry.Config {
	return telemetry.Config{Enable: true, TraceRing: 1}
}

// String renders the summary for the Format() text reports.
func (l LatencySummary) String() string {
	return fmt.Sprintf("p50 %.2fms / p95 %.2fms / p99 %.2fms (mean %.2fms over %d)",
		l.P50MS, l.P95MS, l.P99MS, l.MeanMS, l.Count)
}
