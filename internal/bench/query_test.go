package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunQuerySmoke(t *testing.T) {
	// A tiny run: the assertions cover report plumbing and the
	// delta-vs-rebuild accounting, not the acceptance thresholds the
	// full-scale artifact run checks.
	report, err := RunQuery("reverb45k", 0.01, 0.6, 4, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Points) != report.Batches {
		t.Fatalf("recorded %d points for %d batches", len(report.Points), report.Batches)
	}
	if !report.Points[0].Full {
		t.Errorf("first batch must build the index cold: %+v", report.Points[0])
	}
	for i, pt := range report.Points[1:] {
		if pt.Full {
			t.Errorf("batch %d rebuilt the index from scratch: %+v", i+2, pt)
		}
		if pt.TouchedKeys == 0 || pt.FullBuildMS <= 0 {
			t.Errorf("batch %d missing maintenance accounting: %+v", i+2, pt)
		}
	}
	if report.ConcurrentReads == 0 || report.ConcurrentQPS <= 0 {
		t.Errorf("no concurrent reads recorded: %+v", report)
	}
	if report.IdleQPS <= 0 || report.MaxReadLatencyMS <= 0 {
		t.Errorf("idle/latency accounting missing: %+v", report)
	}
	if report.Generations != int64(report.Batches) {
		t.Errorf("generation = %d, want %d", report.Generations, report.Batches)
	}
	if report.IngestLatency.Count != uint64(report.Batches) || report.IngestLatency.P99MS < report.IngestLatency.P50MS {
		t.Errorf("ingest latency digest malformed: %+v", report.IngestLatency)
	}
	// Readers drain asynchronously after the concurrent-reads snapshot,
	// so the histogram may hold a few more observations than the count.
	if int64(report.ReadLatency.Count) < report.ConcurrentReads || report.ReadLatency.P99MS < report.ReadLatency.P50MS {
		t.Errorf("read latency digest does not match the concurrent reads: %+v vs %d",
			report.ReadLatency, report.ConcurrentReads)
	}
	if report.Format() == "" {
		t.Fatal("empty Format output")
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round QueryReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if round.MeanMaintainMS != report.MeanMaintainMS || round.ConcurrentReads != report.ConcurrentReads {
		t.Fatal("JSON round-trip changed the report")
	}
}
