package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunRetractSmoke(t *testing.T) {
	// A tiny run: the assertions cover report plumbing and the
	// retraction accounting, not the cost curve the full-scale artifact
	// run charts.
	report, err := RunRetract("reverb45k", 0.01, 0.6, 3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Points) == 0 {
		t.Fatal("no retraction points recorded")
	}
	if report.UniqueFacts == 0 || report.LoadedTriples < report.UniqueFacts {
		t.Fatalf("fact universe accounting wrong: %d facts, %d triples",
			report.UniqueFacts, report.LoadedTriples)
	}
	dead := 0
	for i, pt := range report.Points {
		if pt.Batch != i+1 {
			t.Errorf("point %d numbered %d", i, pt.Batch)
		}
		if pt.Tombstoned < pt.Facts {
			t.Errorf("batch %d tombstoned %d positions for %d facts", pt.Batch, pt.Tombstoned, pt.Facts)
		}
		if pt.RetractMS <= 0 || pt.DirtyBlocks <= 0 {
			t.Errorf("batch %d missing cost accounting: %+v", pt.Batch, pt)
		}
		dead += pt.Tombstoned
		if pt.LiveTriples != pt.TotalTriples-dead {
			t.Errorf("batch %d live/total/dead inconsistent: %+v (dead so far %d)", pt.Batch, pt, dead)
		}
		if i > 0 && pt.Facts <= report.Points[i-1].Facts {
			t.Errorf("batch sizes not growing: %d then %d", report.Points[i-1].Facts, pt.Facts)
		}
	}
	if int(report.Retractions) != len(report.Points) || report.DeadTriples != dead {
		t.Errorf("totals = %d retractions / %d dead, want %d / %d",
			report.Retractions, report.DeadTriples, len(report.Points), dead)
	}
	if report.HeadReads == 0 || report.HeadQPS <= 0 {
		t.Errorf("no head reads recorded: %+v", report)
	}
	if len(report.RetainedGenerations) == 0 || report.AsOfReads == 0 || report.AsOfQPS <= 0 {
		t.Errorf("no as-of reads recorded: gens %v, %d reads", report.RetainedGenerations, report.AsOfReads)
	}
	if report.AsOfHeadRatio <= 0 {
		t.Errorf("as-of/head ratio missing: %+v", report)
	}
	if report.HeadLatency.Count == 0 || report.AsOfLatency.Count == 0 {
		t.Errorf("read latency digests missing: %+v / %+v", report.HeadLatency, report.AsOfLatency)
	}
	if report.IngestLatency.Count != uint64(report.Batches+len(report.Points)) {
		t.Errorf("ingest latency count = %d, want %d loads + %d retractions",
			report.IngestLatency.Count, report.Batches, len(report.Points))
	}
	if report.Format() == "" {
		t.Fatal("empty Format output")
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round RetractReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if round.DeadTriples != report.DeadTriples || round.AsOfHeadRatio != report.AsOfHeadRatio {
		t.Fatal("JSON round-trip changed the report")
	}
}
