package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestStreamBenchmarkIncrementalBeatsRebuild(t *testing.T) {
	report, err := RunStream("reverb45k", 0.02, 0.6, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Points) != 5 {
		t.Fatalf("points = %d, want 5", len(report.Points))
	}
	// The acceptance bar: after the shared cold start, incremental
	// ingest must beat the full rebuild on wall-clock for at least two
	// consecutive batches.
	if report.ConsecutiveWins < 2 {
		t.Errorf("consecutive incremental wins = %d, want >= 2\n%s",
			report.ConsecutiveWins, report.Format())
	}
	for i, pt := range report.Points {
		if pt.TotalTriples <= 0 || pt.Components <= 0 {
			t.Errorf("point %d malformed: %+v", i, pt)
		}
	}
	for _, pt := range report.Points[1:] {
		if pt.WarmFactors == 0 {
			t.Errorf("batch %d transplanted no messages", pt.Batch)
		}
	}

	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back StreamReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if back.ConsecutiveWins != report.ConsecutiveWins || len(back.Points) != len(report.Points) {
		t.Errorf("artifact round-trip mismatch")
	}
}
