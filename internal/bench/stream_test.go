package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestStreamBenchmarkIncrementalBeatsRebuild(t *testing.T) {
	report, err := RunStream("reverb45k", 0.02, 0.6, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Points) != 5 {
		t.Fatalf("points = %d, want 5", len(report.Points))
	}
	// The acceptance bar: after the shared cold start, incremental
	// ingest must beat the full rebuild on wall-clock for at least two
	// consecutive batches.
	if report.ConsecutiveWins < 2 {
		t.Errorf("consecutive incremental wins = %d, want >= 2\n%s",
			report.ConsecutiveWins, report.Format())
	}
	for i, pt := range report.Points {
		if pt.TotalTriples <= 0 || pt.Components <= 0 {
			t.Errorf("point %d malformed: %+v", i, pt)
		}
	}
	for _, pt := range report.Points[1:] {
		if pt.WarmFactors == 0 {
			t.Errorf("batch %d transplanted no messages", pt.Batch)
		}
	}

	// The latency digest comes from the session's telemetry histogram:
	// one observation per ingest, quantiles ordered.
	lat := report.IngestLatency
	if lat.Count != 5 || lat.P50MS <= 0 || lat.P95MS < lat.P50MS || lat.P99MS < lat.P95MS {
		t.Errorf("ingest latency digest malformed: %+v", lat)
	}
	// The telemetry A/B must have run all three arms; the overhead
	// numbers themselves are machine-dependent, so only their inputs
	// are asserted.
	if report.TelemetryOnMS <= 0 || report.TelemetryOffMS <= 0 {
		t.Errorf("telemetry A/B missing: on=%.1f off=%.1f", report.TelemetryOnMS, report.TelemetryOffMS)
	}
	if report.TracingOnMS <= 0 {
		t.Errorf("tracing arm missing: traced=%.1f", report.TracingOnMS)
	}

	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back StreamReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if back.ConsecutiveWins != report.ConsecutiveWins || len(back.Points) != len(report.Points) {
		t.Errorf("artifact round-trip mismatch")
	}
	if back.IngestLatency != report.IngestLatency {
		t.Errorf("latency digest does not round-trip: %+v vs %+v", back.IngestLatency, report.IngestLatency)
	}
}
