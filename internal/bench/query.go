package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/okb"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// QueryPoint is one ingested batch's read-path index cost under the
// two maintenance strategies: delta-wise (rewriting only the keys the
// dirty-block set can have changed) versus rebuilding the whole index
// from the snapshot.
type QueryPoint struct {
	Batch        int `json:"batch"`
	BatchTriples int `json:"batch_triples"`
	TotalTriples int `json:"total_triples"`

	// DirtyBlocks counts the partition blocks that ran BP this ingest;
	// TouchedKeys the index keys the delta apply rewrote. Full marks
	// from-scratch index builds (batch 1), Compacted overlay-chain
	// flattens. Concurrent marks batches ingested under reader load —
	// their timings carry scheduler/GC noise and are excluded from the
	// means.
	DirtyBlocks int  `json:"dirty_blocks"`
	TouchedKeys int  `json:"touched_keys"`
	Full        bool `json:"full,omitempty"`
	Compacted   bool `json:"compacted,omitempty"`
	Concurrent  bool `json:"concurrent,omitempty"`

	// MaintainMS is the median of several replays of this ingest's
	// delta apply against the pre-ingest generation; FullBuildMS the
	// median of as many from-scratch rebuilds over the same snapshot.
	MaintainMS  float64 `json:"maintain_ms"`
	FullBuildMS float64 `json:"full_build_ms"`
	// Ratio is MaintainMS / FullBuildMS (< 1 when delta maintenance
	// beats the rebuild).
	Ratio float64 `json:"ratio"`
}

// QueryReport is the read-path benchmark's output, emitted as the
// BENCH_query.json artifact: per-batch index maintenance vs full
// rebuild, plus read throughput under concurrent ingest.
type QueryReport struct {
	Profile string  `json:"profile"`
	Scale   float64 `json:"scale"`
	Batches int     `json:"batches"`
	Workers int     `json:"workers"`
	Readers int     `json:"readers"`

	Points []QueryPoint `json:"points"`

	// Means over the quiet delta batches (after the cold first build,
	// before the readers start): the apples-to-apples maintenance cost
	// comparison.
	MeanMaintainMS float64 `json:"mean_maintain_ms"`
	MeanFullMS     float64 `json:"mean_full_ms"`
	MeanRatio      float64 `json:"mean_ratio"`

	// Read throughput: ConcurrentQPS while ingests were running (the
	// readers share the machine with inference), IdleQPS on the settled
	// index afterwards. MaxReadLatencyMS is the slowest single read
	// observed during the concurrent phase — with lock-free snapshot
	// reads it stays far below any ingest's wall-clock, since readers
	// never wait behind the ingest lock.
	ConcurrentReads   int64   `json:"concurrent_reads"`
	ConcurrentQPS     float64 `json:"concurrent_qps"`
	IdleQPS           float64 `json:"idle_qps"`
	MaxReadLatencyMS  float64 `json:"max_read_latency_ms"`
	MeanReadLatencyMS float64 `json:"mean_read_latency_ms"`

	// Latency digests from telemetry histograms: the session's per-ingest
	// wall-clock, and the per-read latency during the concurrent phase
	// (every individual read the hammering goroutines issued).
	IngestLatency LatencySummary `json:"ingest_latency"`
	ReadLatency   LatencySummary `json:"read_latency"`

	// IngestAllocBytes / IngestAllocs echo the session's cumulative
	// jocl_ingest_alloc_bytes_total / jocl_ingest_allocs_total counters.
	IngestAllocBytes uint64 `json:"ingest_alloc_bytes_total"`
	IngestAllocs     uint64 `json:"ingest_allocs_total"`

	// Generations is the index generation after the last batch (==
	// Batches when every ingest published one).
	Generations int64 `json:"generations"`
}

// readStats aggregates reader-side measurements with atomics (many
// reader goroutines, no locks on the hot path).
type readStats struct {
	reads   atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	failed  atomic.Int64
	stopped atomic.Bool
	// hist, when set, additionally feeds a telemetry histogram — the
	// source of the report's p50/p95/p99 read-latency digest.
	hist *telemetry.Histogram
}

func (rs *readStats) record(d time.Duration) {
	rs.reads.Add(1)
	if rs.hist != nil {
		rs.hist.ObserveDuration(d)
	}
	ns := d.Nanoseconds()
	rs.sumNS.Add(ns)
	for {
		cur := rs.maxNS.Load()
		if ns <= cur || rs.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// hammer cycles one reader over the query surface: alias resolution,
// cluster membership, and bounded enumerations for both phrase kinds.
// Every read is timed individually.
func hammer(ix *query.Index, nps, rps []string, rs *readStats, offset int) {
	i := offset
	for !rs.stopped.Load() {
		np := nps[i%len(nps)]
		rp := rps[i%len(rps)]
		i++
		for _, op := range []func() bool{
			func() bool { _, ok := ix.ResolveNP(np); return ok },
			func() bool { _, ok := ix.NPCluster(np); return ok },
			func() bool { _, ok := ix.TriplesBySubject(np, 32); return ok },
			func() bool { _, ok := ix.ResolveRP(rp); return ok },
			func() bool { _, ok := ix.TriplesByRelation(rp, 32); return ok },
		} {
			t0 := time.Now()
			ok := op()
			rs.record(time.Since(t0))
			if !ok {
				rs.failed.Add(1)
			}
		}
	}
}

// RunQuery measures the read-path subsystem in its serving scenario in
// two phases. The quiet phase — a preload batch building the index
// cold, then steady small batches maintained delta-wise (hub-cut
// segmentation supplies the dirty-block locality) — prices each delta
// apply against a from-scratch index rebuild over the same snapshot,
// with nothing else running. The concurrent phase then ingests the
// remaining batches while reader goroutines hammer the query surface,
// measuring read throughput under ingest and worst-case read latency
// (readers are lock-free, so they never wait behind the ingest lock;
// residual latency is scheduler/GC, not blocking).
func RunQuery(profile string, scale, preloadFrac float64, batches, workers, readers int) (*QueryReport, error) {
	ds, triples, cuts, batches, err := ingestPlan(profile, scale, preloadFrac, batches)
	if err != nil {
		return nil, err
	}
	if readers <= 0 {
		readers = 8
	}
	// Localize the steady batches by subject: incremental maintenance
	// exists for focused update traffic (a burst of extractions about
	// related entities dirties few blocks), so the steady stream models
	// that, while the preload stays in generation order. Uniformly
	// scattered batches degenerate to half the blocks dirty per ingest,
	// which prices the full-rebuild comparator, not the delta path.
	triples = append([]okb.Triple(nil), triples...)
	tail := triples[cuts[1]:]
	sort.Slice(tail, func(i, j int) bool {
		if tail[i].Subj != tail[j].Subj {
			return tail[i].Subj < tail[j].Subj
		}
		return tail[i].ID < tail[j].ID
	})
	report := &QueryReport{Profile: profile, Scale: scale, Batches: batches, Workers: workers, Readers: readers}

	cfg := core.DefaultConfig()
	cfg.BP.MaxSweeps = 40
	cfg.Segment.Enable = true
	sess := stream.New(ds.CKB, ds.Emb, ds.PPDB, stream.Config{
		Core:      cfg,
		Workers:   workers,
		Query:     query.Config{Enable: true},
		Telemetry: benchTelemetry(),
	})
	nps, rps := ds.OKB.NPs(), ds.OKB.RPs()

	var accumulated []okb.Triple
	ingestBatch := func(b int) (stream.IngestStats, error) {
		batch := triples[cuts[b]:cuts[b+1]]
		st, err := sess.Ingest(batch)
		if err != nil {
			return st, err
		}
		accumulated = append(accumulated, batch...)
		return st, nil
	}
	// Sub-millisecond one-shot timings drown in scheduler and GC noise,
	// so both strategies are priced over repeated runs: the delta apply
	// is replayed against a clone of the pre-ingest generation
	// (generations are immutable, so clones are free and every replay
	// sees the identical predecessor), the full rebuild is re-derived
	// from the same snapshot. Each group starts from a collected heap
	// and reports the mean INCLUDING the GC work its own allocations
	// trigger — Go benchmark methodology — so the allocation-heavy
	// strategy is billed for its garbage.
	const reps = 40
	amortized := func(run func()) float64 {
		runtime.GC()
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			run()
		}
		return float64(time.Since(t0).Microseconds()) / 1000 / reps
	}
	point := func(b int, st stream.IngestStats, before *query.Index) QueryPoint {
		pt := QueryPoint{
			Batch:        b + 1,
			BatchTriples: st.BatchTriples,
			TotalTriples: st.TotalTriples,
			DirtyBlocks:  st.DirtyComponents,
		}
		res := sess.Snapshot()
		if st.Index != nil {
			pt.TouchedKeys = st.Index.KeysWritten
			pt.Full = st.Index.Full
			pt.Compacted = st.Index.Compacted
		}
		if before == nil || st.Index == nil || st.Index.Full {
			pt.MaintainMS = amortized(func() {
				query.FullIndex(res, accumulated, query.Config{}, sess.Symbols())
			})
		} else {
			pt.MaintainMS = amortized(func() {
				before.Clone().Apply(res, res.Delta, accumulated, query.Tombstones{}, sess.Symbols())
			})
		}
		// Comparator: build the whole index from this snapshot, the way
		// a non-incremental read path would per ingest.
		pt.FullBuildMS = amortized(func() {
			query.FullIndex(res, accumulated, query.Config{}, sess.Symbols())
		})
		if pt.FullBuildMS > 0 {
			pt.Ratio = pt.MaintainMS / pt.FullBuildMS
		}
		return pt
	}

	// Quiet phase: preload (cold index build) plus the costing batches,
	// with nothing else on the machine.
	concurrent := (batches - 1) / 3
	if concurrent < 1 {
		concurrent = 1
	}
	quietEnd := batches - concurrent
	if quietEnd < 1 {
		quietEnd = 1
	}
	for b := 0; b < quietEnd; b++ {
		before := sess.Query().Clone()
		st, err := ingestBatch(b)
		if err != nil {
			return nil, err
		}
		report.Points = append(report.Points, point(b, st, before))
	}

	// Concurrent phase: the remaining batches under reader load. The
	// per-read histogram lives in its own registry: it is a benchmark
	// measurement, not part of the serving session's metric catalogue.
	rs := &readStats{hist: telemetry.NewRegistry().Histogram(
		"bench_read_duration_seconds", "Individual read latency during the concurrent phase.", nil)}
	var wg sync.WaitGroup
	ix := sess.Query()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			hammer(ix, nps, rps, rs, offset)
		}(r * 1013)
	}
	tSteady := time.Now()
	for b := quietEnd; b < batches; b++ {
		before := sess.Query().Clone()
		st, err := ingestBatch(b)
		if err != nil {
			rs.stopped.Store(true)
			wg.Wait()
			return nil, err
		}
		pt := point(b, st, before)
		pt.Concurrent = true
		report.Points = append(report.Points, pt)
	}
	steadyWall := time.Since(tSteady)
	report.ConcurrentReads = rs.reads.Load()
	rs.stopped.Store(true)
	wg.Wait()
	if s := steadyWall.Seconds(); s > 0 {
		report.ConcurrentQPS = float64(report.ConcurrentReads) / s
	}
	if n := rs.reads.Load(); n > 0 {
		report.MaxReadLatencyMS = float64(rs.maxNS.Load()) / 1e6
		report.MeanReadLatencyMS = float64(rs.sumNS.Load()) / float64(n) / 1e6
	}
	report.IngestLatency = ingestLatency(sess)
	report.ReadLatency = latencySummaryOf(rs.hist)
	report.IngestAllocBytes, report.IngestAllocs = sessionAllocCounters(sess)

	// Idle throughput on the settled index.
	idle := &readStats{}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			hammer(ix, nps, rps, idle, offset)
		}(r * 1013)
	}
	const idleWindow = 250 * time.Millisecond
	time.Sleep(idleWindow)
	idle.stopped.Store(true)
	wg.Wait()
	report.IdleQPS = float64(idle.reads.Load()) / idleWindow.Seconds()

	if gi, ok := ix.Generation(); ok {
		report.Generations = gi.Generation
	}

	sumM, sumF, sumR, n := 0.0, 0.0, 0.0, 0
	for _, pt := range report.Points[1:] {
		if pt.Concurrent {
			continue
		}
		sumM += pt.MaintainMS
		sumF += pt.FullBuildMS
		sumR += pt.Ratio
		n++
	}
	if n > 0 {
		report.MeanMaintainMS = sumM / float64(n)
		report.MeanFullMS = sumF / float64(n)
		report.MeanRatio = sumR / float64(n)
	}
	return report, nil
}

// WriteJSON emits the report as the BENCH_query.json artifact.
func (r *QueryReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders the report as aligned text.
func (r *QueryReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "QUERY — delta index maintenance vs full rebuild, reads under ingest (%s, scale %g, %d workers, %d readers)\n",
		r.Profile, r.Scale, r.Workers, r.Readers)
	fmt.Fprintf(&b, "%6s  %8s  %8s  %6s  %8s  %11s  %11s  %7s\n",
		"batch", "triples", "total", "dirty", "keys", "maintain", "full-build", "ratio")
	for _, p := range r.Points {
		mark := ""
		if p.Full {
			mark = " (full)"
		} else if p.Compacted {
			mark = " (compact)"
		}
		if p.Concurrent {
			mark += " (under readers)"
		}
		fmt.Fprintf(&b, "%6d  %8d  %8d  %6d  %8d  %8.2fms  %8.2fms  %6.2fx%s\n",
			p.Batch, p.BatchTriples, p.TotalTriples, p.DirtyBlocks, p.TouchedKeys,
			p.MaintainMS, p.FullBuildMS, p.Ratio, mark)
	}
	fmt.Fprintf(&b, "steady state: maintain %.2fms vs rebuild %.2fms per ingest (mean ratio %.2fx)\n",
		r.MeanMaintainMS, r.MeanFullMS, r.MeanRatio)
	fmt.Fprintf(&b, "reads: %d during ingest at %.0f qps (max latency %.3fms, mean %.4fms); idle %.0f qps; generation %d\n",
		r.ConcurrentReads, r.ConcurrentQPS, r.MaxReadLatencyMS, r.MeanReadLatencyMS, r.IdleQPS, r.Generations)
	fmt.Fprintf(&b, "ingest latency: %s; read latency: %s\n", r.IngestLatency, r.ReadLatency)
	return b.String()
}
