package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunSegmentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("segment benchmark runs three inference passes")
	}
	report, err := RunSegment("reverb45k", 0.01, 0.6, 3, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.NoCut.IngestMS) != 3 || len(report.HubCut.IngestMS) != 3 {
		t.Fatalf("expected 3 ingest points per strategy: %+v", report)
	}
	if report.HubCut.CutVariables == 0 {
		t.Errorf("hub-cut strategy cut nothing on the hub-fused workload")
	}
	if report.HubCut.Blocks <= report.NoCut.Blocks {
		t.Errorf("hub cut produced %d blocks, no-cut %d", report.HubCut.Blocks, report.NoCut.Blocks)
	}
	if report.ExactNPAvgF1 <= 0 || report.ExactEntLinkAcc <= 0 {
		t.Errorf("exact reference scores missing: %+v", report)
	}
	if report.NoCut.IngestLatency.Count != 3 || report.HubCut.IngestLatency.Count != 3 {
		t.Errorf("ingest latency digests miss ingests: %+v vs %+v",
			report.NoCut.IngestLatency, report.HubCut.IngestLatency)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round SegmentReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if round.HubCut.NPAvgF1 != report.HubCut.NPAvgF1 {
		t.Errorf("artifact dropped the F1 fields")
	}
	if report.Format() == "" {
		t.Errorf("empty text rendering")
	}
}
