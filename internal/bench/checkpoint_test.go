package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunCheckpointSmoke(t *testing.T) {
	// A tiny run: the assertions cover the recovery accounting and the
	// warm continuation, not the >= 5x speedup the full-scale artifact
	// run checks (at toy scale the epoch re-derivation dominates both
	// strategies).
	report, err := RunCheckpoint("reverb45k", 0.01, 0.6, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if report.CheckpointBytes == 0 || report.CheckpointMS <= 0 {
		t.Errorf("snapshot not priced: %+v", report)
	}
	if report.RestoreMS <= 0 || report.ColdReplayMS <= 0 || report.Speedup <= 0 {
		t.Errorf("recovery not priced: %+v", report)
	}
	if report.PostRestoreWarmBlocks == 0 || !report.PostRestoreRepaired {
		t.Errorf("restored continuation ran cold: %+v", report)
	}
	if !report.GenerationsMatch {
		t.Errorf("query generations diverged after restore: %+v", report)
	}
	const tol = 0.02
	if report.NPLinkAgreement < 1-tol || report.RPLinkAgreement < 1-tol ||
		report.NPClusterAgreement < 1-tol || report.RPClusterAgreement < 1-tol {
		t.Errorf("restored outputs diverge beyond tolerance: %+v", report)
	}
	if report.IngestLatency.Count != uint64(report.Batches-1) {
		t.Errorf("ingest latency digest counts %d ingests, want %d", report.IngestLatency.Count, report.Batches-1)
	}
	if report.CheckpointLatency.Count != 1 || report.CheckpointLatency.P50MS <= 0 {
		t.Errorf("checkpoint latency digest malformed: %+v", report.CheckpointLatency)
	}
	if report.Format() == "" {
		t.Fatal("empty Format output")
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round CheckpointReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if round.Speedup != report.Speedup || round.CheckpointBytes != report.CheckpointBytes {
		t.Fatal("JSON round-trip changed the report")
	}
}
