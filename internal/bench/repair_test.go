package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunRepairSmoke(t *testing.T) {
	// A tiny run: the assertions cover report plumbing, not the
	// acceptance thresholds the full-scale artifact run checks.
	report, err := RunRepair("reverb45k", 0.01, 0.6, 4, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Repair.IngestMS) != report.Batches || len(report.Repair.PartitionMS) != report.Batches {
		t.Fatalf("repair strategy recorded %d/%d points for %d batches",
			len(report.Repair.IngestMS), len(report.Repair.PartitionMS), report.Batches)
	}
	if report.Repair.Repairs == 0 {
		t.Errorf("repair strategy never repaired: %+v", report.Repair)
	}
	if report.Repartition.Repairs != 0 || report.Repartition.BlocksReusedTotal != 0 {
		t.Errorf("repartition strategy reported repairs: %+v", report.Repartition)
	}
	if report.Repair.BlocksReusedTotal == 0 {
		t.Errorf("repair reused no blocks: %+v", report.Repair)
	}
	if report.Repair.IngestLatency.Count != uint64(report.Batches) ||
		report.Repartition.IngestLatency.Count != uint64(report.Batches) {
		t.Errorf("ingest latency digests miss ingests: %+v vs %+v",
			report.Repair.IngestLatency, report.Repartition.IngestLatency)
	}
	if report.Format() == "" {
		t.Fatalf("empty Format output")
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round RepairReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if round.Repair.MeanPartitionMS != report.Repair.MeanPartitionMS {
		t.Fatalf("JSON round-trip changed the report")
	}
}
