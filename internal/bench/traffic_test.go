package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunTrafficSmoke(t *testing.T) {
	// A tiny run: the assertions cover the harness plumbing — equal
	// offered load on both sides, coalescing accounting, latency
	// digests — not the ≥1.3x cost-ratio threshold the full-scale
	// artifact run checks.
	report, err := RunTraffic("reverb45k", 0.01, 0.5, 12, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if report.CalibrationMS <= 0 || report.InterarrivalMS <= 0 {
		t.Fatalf("calibration missing: %+v", report)
	}
	wantWork := int64(report.Batches - 1 - 3) // preload + 3 calibration batches
	for _, s := range []TrafficSide{report.Sync, report.Coalesced} {
		if s.Accepted != wantWork {
			t.Errorf("%s accepted %d of %d offered batches", s.Mode, s.Accepted, wantWork)
		}
		if s.Shed != 0 || s.ShedRate != 0 {
			t.Errorf("%s shed %d below the high-water mark", s.Mode, s.Shed)
		}
		if s.IngestLatency.Count != uint64(s.Accepted) || s.IngestLatency.P99MS < s.IngestLatency.P50MS {
			t.Errorf("%s ingest latency digest malformed: %+v", s.Mode, s.IngestLatency)
		}
		if s.Reads == 0 || s.ReadLatency.Count == 0 {
			t.Errorf("%s recorded no concurrent reads", s.Mode)
		}
		if s.PerBatchCostMS <= 0 || s.SessionIngestMS <= 0 {
			t.Errorf("%s session cost accounting missing: %+v", s.Mode, s)
		}
	}
	// The sync side runs one session ingest per batch, factor exactly 1.
	if report.Sync.MergedIngests != uint64(wantWork) || report.Sync.CoalescingFactor != 1 {
		t.Errorf("sync side merged %d ingests for %d batches (factor %.2f)",
			report.Sync.MergedIngests, wantWork, report.Sync.CoalescingFactor)
	}
	// The coalescing side must never run MORE ingests than batches, and
	// its counters must reconcile.
	c := report.Coalesced
	if c.MergedIngests == 0 || c.MergedIngests > uint64(wantWork) {
		t.Errorf("coalesced side ran %d ingests for %d batches", c.MergedIngests, wantWork)
	}
	if c.CoalescedBatches != uint64(c.Accepted) {
		t.Errorf("coalesced batches %d != accepted %d", c.CoalescedBatches, c.Accepted)
	}
	if c.CoalescingFactor < 1 {
		t.Errorf("coalescing factor %.2f < 1", c.CoalescingFactor)
	}
	if report.CostRatio <= 0 {
		t.Errorf("cost ratio missing: %+v", report)
	}
	if report.Format() == "" {
		t.Fatal("empty Format output")
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round TrafficReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if round.CostRatio != report.CostRatio || round.Coalesced.Accepted != report.Coalesced.Accepted {
		t.Errorf("JSON round-trip diverges: %+v vs %+v", round, report)
	}
}
