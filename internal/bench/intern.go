package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
)

// The interning benchmark prices the identity layer: steady-state
// incremental ingest cost — wall clock and allocator traffic — at a
// scale where the string hot path actually hurts. Unlike the stream
// benchmark it never runs full rebuilds; every measured number is the
// warm serving path (preload once, then a stream of small batches),
// which is exactly the path the symbol-table refactor targets.
//
// The committed BENCH_intern.json doubles as the CI regression
// baseline: GateFile compares a fresh run's steady-state allocations
// per ingest against the committed artifact and fails the build on a
// >20% regression.

// InternNumbers is one configuration's steady-state ingest cost. The
// latency digest comes from the session's own
// jocl_ingest_duration_seconds telemetry histogram (the same series
// /metrics reports); the allocation numbers are runtime.MemStats
// deltas measured around each steady-state ingest, so they are exact
// allocator counters, not sampled profiles.
type InternNumbers struct {
	// SteadyIngests is how many post-preload batches the numbers
	// average over.
	SteadyIngests int `json:"steady_ingests"`
	// MeanMS is the mean wall clock of one steady-state ingest.
	MeanMS float64 `json:"mean_ms"`
	// Ingest latency quantiles from the telemetry histogram. The
	// histogram includes the preload batch (it records every ingest,
	// like a production scrape would), which with >=20 steady batches
	// perturbs only the tail.
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	// AllocsPerIngest / BytesPerIngest are the mean allocator deltas
	// (runtime.MemStats Mallocs / TotalAlloc) of one steady-state
	// ingest.
	AllocsPerIngest float64 `json:"allocs_per_ingest"`
	BytesPerIngest  float64 `json:"bytes_per_ingest"`
}

// InternReport is the interning benchmark's output, emitted as the
// BENCH_intern.json artifact.
type InternReport struct {
	Profile string  `json:"profile"`
	Scale   float64 `json:"scale"`
	Batches int     `json:"batches"`
	Workers int     `json:"workers"`

	// Baseline is the string-keyed implementation's cost, measured
	// with this same harness immediately before the symbol-table
	// refactor landed (see stringKeyedBaseline). Zero when no baseline
	// was recorded for this configuration.
	Baseline InternNumbers `json:"baseline"`
	// Current is this run's cost.
	Current InternNumbers `json:"current"`

	// Speedup is Baseline.MeanMS / Current.MeanMS; the reduction
	// percentages are (1 - current/baseline) * 100. All zero when no
	// baseline exists.
	Speedup           float64 `json:"speedup"`
	AllocReductionPct float64 `json:"alloc_reduction_pct"`
	BytesReductionPct float64 `json:"bytes_reduction_pct"`

	// SessionAllocBytes / SessionAllocs echo the session's own
	// jocl_ingest_alloc_bytes_total / jocl_ingest_allocs_total
	// counters after the run — the /metrics view of the same
	// allocator traffic Current measures externally (these include
	// the preload batch).
	SessionAllocBytes uint64 `json:"session_alloc_bytes_total"`
	SessionAllocs     uint64 `json:"session_allocs_total"`

	// SpotCheck is a shorter confirmation run at a larger scale
	// (default 0.5), guarding against wins that only exist at the
	// default scale. Omitted when disabled.
	SpotCheck *InternSpot `json:"spot_check,omitempty"`
}

// InternSpot is the larger-scale confirmation point.
type InternSpot struct {
	Scale   float64       `json:"scale"`
	Batches int           `json:"batches"`
	Current InternNumbers `json:"current"`
	// Baseline mirrors InternReport.Baseline at the spot scale.
	Baseline InternNumbers `json:"baseline"`
	Speedup  float64       `json:"speedup"`
}

// stringKeyedBaseline holds the pre-interning implementation's numbers,
// measured with this exact harness (same profile, scale, preload,
// batch plan, workers, and single-core CI-class machine) at the commit
// immediately before the symbol-table refactor. Keyed by
// "profile/scale/workers". These are the "before" column of the
// artifact; the CI regression gate uses the committed artifact's
// Current numbers instead, so drift in these constants can never mask
// a regression.
var stringKeyedBaseline = map[string]InternNumbers{
	"reverb45k/0.1/4": {
		SteadyIngests:   24,
		MeanMS:          3555.69,
		P50MS:           3671.875,
		P95MS:           8437.5,
		P99MS:           9687.5,
		AllocsPerIngest: 6948231,
		BytesPerIngest:  251239967,
	},
	// The 0.5 spot check saturates the latency histogram's 10s top
	// bucket on the string-keyed build, so its quantiles carry no
	// information; MeanMS and the allocator counters are exact.
	"reverb45k/0.5/4": {
		SteadyIngests:   5,
		MeanMS:          38430.92,
		P50MS:           10000,
		P95MS:           10000,
		P99MS:           10000,
		AllocsPerIngest: 29000519,
		BytesPerIngest:  993562632,
	},
}

func baselineKey(profile string, scale float64, workers int) string {
	return fmt.Sprintf("%s/%g/%d", profile, scale, workers)
}

// RunIntern measures steady-state incremental ingest at the given
// scale, plus an optional spot check at spotScale (0 disables it).
func RunIntern(profile string, scale, preloadFrac float64, batches, workers int, spotScale float64) (*InternReport, error) {
	report := &InternReport{Profile: profile, Scale: scale, Batches: batches, Workers: workers}
	cur, allocBytes, allocs, err := measureIntern(profile, scale, preloadFrac, batches, workers)
	if err != nil {
		return nil, err
	}
	report.Current = cur
	report.SessionAllocBytes = allocBytes
	report.SessionAllocs = allocs
	if base, ok := stringKeyedBaseline[baselineKey(profile, scale, workers)]; ok {
		report.Baseline = base
		report.Speedup, report.AllocReductionPct, report.BytesReductionPct = internDeltas(base, cur)
	}
	if spotScale > 0 {
		// A larger corpus needs fewer steady batches to average
		// meaningfully, and each is far more expensive.
		spotBatches := 6
		spot, _, _, err := measureIntern(profile, spotScale, preloadFrac, spotBatches, workers)
		if err != nil {
			return nil, err
		}
		sc := &InternSpot{Scale: spotScale, Batches: spotBatches, Current: spot}
		if base, ok := stringKeyedBaseline[baselineKey(profile, spotScale, workers)]; ok {
			sc.Baseline = base
			sc.Speedup, _, _ = internDeltas(base, spot)
		}
		report.SpotCheck = sc
	}
	return report, nil
}

func internDeltas(base, cur InternNumbers) (speedup, allocRed, bytesRed float64) {
	if cur.MeanMS > 0 {
		speedup = base.MeanMS / cur.MeanMS
	}
	if base.AllocsPerIngest > 0 {
		allocRed = (1 - cur.AllocsPerIngest/base.AllocsPerIngest) * 100
	}
	if base.BytesPerIngest > 0 {
		bytesRed = (1 - cur.BytesPerIngest/base.BytesPerIngest) * 100
	}
	return
}

// measureIntern runs one preload-plus-steady-stream plan through a
// fresh incremental session and returns the steady-state cost, plus
// the session's cumulative ingest allocation counters (0 on builds
// that predate them).
func measureIntern(profile string, scale, preloadFrac float64, batches, workers int) (InternNumbers, uint64, uint64, error) {
	ds, triples, cuts, batches, err := ingestPlan(profile, scale, preloadFrac, batches)
	if err != nil {
		return InternNumbers{}, 0, 0, err
	}
	cfg := core.DefaultConfig()
	cfg.BP.MaxSweeps = 40
	sess := stream.New(ds.CKB, ds.Emb, ds.PPDB, stream.Config{Core: cfg, Workers: workers, Telemetry: benchTelemetry()})

	// Preload: the accumulated corpus, ingested cold as batch 1.
	if _, err := sess.Ingest(triples[cuts[0]:cuts[1]]); err != nil {
		return InternNumbers{}, 0, 0, err
	}

	var (
		n       = batches - 1
		sumMS   float64
		mallocs uint64
		bytes   uint64
		ms0     runtime.MemStats
		ms1     runtime.MemStats
	)
	for b := 1; b < batches; b++ {
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		if _, err := sess.Ingest(triples[cuts[b]:cuts[b+1]]); err != nil {
			return InternNumbers{}, 0, 0, err
		}
		sumMS += durMSB(time.Since(t0))
		runtime.ReadMemStats(&ms1)
		mallocs += ms1.Mallocs - ms0.Mallocs
		bytes += ms1.TotalAlloc - ms0.TotalAlloc
	}

	lat := ingestLatency(sess)
	out := InternNumbers{
		SteadyIngests:   n,
		MeanMS:          sumMS / float64(n),
		P50MS:           lat.P50MS,
		P95MS:           lat.P95MS,
		P99MS:           lat.P99MS,
		AllocsPerIngest: float64(mallocs) / float64(n),
		BytesPerIngest:  float64(bytes) / float64(n),
	}
	ab, ac := sessionAllocCounters(sess)
	return out, ab, ac, nil
}

// sessionAllocCounters reads the session's cumulative per-ingest
// allocation counters from its registry (satellite of the interning
// work: the same numbers /metrics exports).
func sessionAllocCounters(sess *stream.Session) (allocBytes, allocs uint64) {
	tel := sess.Telemetry()
	if tel == nil {
		return 0, 0
	}
	if c := tel.Registry.FindCounter("jocl_ingest_alloc_bytes_total"); c != nil {
		allocBytes = c.Value()
	}
	if c := tel.Registry.FindCounter("jocl_ingest_allocs_total"); c != nil {
		allocs = c.Value()
	}
	return
}

// durMSB converts a duration to fractional milliseconds (bench-local
// twin of the stream package's durMS).
func durMSB(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Gate compares a fresh run against the committed artifact and
// returns an error when steady-state allocations per ingest regressed
// more than tolPct percent — the CI regression gate. Wall-clock is
// reported but never gated: shared CI runners make time noisy, while
// allocator counters are deterministic for a fixed workload.
func Gate(fresh *InternReport, committed *InternReport, tolPct float64) error {
	base := committed.Current.AllocsPerIngest
	got := fresh.Current.AllocsPerIngest
	if base <= 0 {
		return fmt.Errorf("intern gate: committed baseline has no allocs_per_ingest")
	}
	regressPct := (got/base - 1) * 100
	if regressPct > tolPct {
		return fmt.Errorf("intern gate: steady-state allocs/ingest regressed %.1f%% (%.0f vs committed %.0f, tolerance %.0f%%)",
			regressPct, got, base, tolPct)
	}
	return nil
}

// GateFile loads the committed artifact and runs Gate against it.
func GateFile(fresh *InternReport, path string, tolPct float64) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("intern gate: %w", err)
	}
	defer f.Close()
	var committed InternReport
	if err := json.NewDecoder(f).Decode(&committed); err != nil {
		return fmt.Errorf("intern gate: decode %s: %w", path, err)
	}
	return Gate(fresh, &committed, tolPct)
}

// WriteJSON emits the report as the BENCH_intern.json artifact.
func (r *InternReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders the report as aligned text.
func (r *InternReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INTERN — steady-state ingest cost (%s, scale %g, %d batches, %d workers)\n",
		r.Profile, r.Scale, r.Batches, r.Workers)
	row := func(label string, n InternNumbers) {
		fmt.Fprintf(&b, "%-12s  %8.1fms mean  p50 %.1f / p95 %.1f / p99 %.1f ms  %10.0f allocs  %12.0f B\n",
			label, n.MeanMS, n.P50MS, n.P95MS, n.P99MS, n.AllocsPerIngest, n.BytesPerIngest)
	}
	if r.Baseline.SteadyIngests > 0 {
		row("string-keyed", r.Baseline)
	}
	row("interned", r.Current)
	if r.Speedup > 0 {
		fmt.Fprintf(&b, "speedup %.2fx; allocs −%.1f%%; bytes −%.1f%%\n",
			r.Speedup, r.AllocReductionPct, r.BytesReductionPct)
	}
	if r.SpotCheck != nil {
		fmt.Fprintf(&b, "spot check @ scale %g (%d batches):\n", r.SpotCheck.Scale, r.SpotCheck.Batches)
		if r.SpotCheck.Baseline.SteadyIngests > 0 {
			row("string-keyed", r.SpotCheck.Baseline)
		}
		row("interned", r.SpotCheck.Current)
		if r.SpotCheck.Speedup > 0 {
			fmt.Fprintf(&b, "spot speedup %.2fx\n", r.SpotCheck.Speedup)
		}
	}
	return b.String()
}
