package bench

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

var (
	suiteOnce sync.Once
	suite     *Suite
	suiteErr  error
)

func getSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = NewSuite(0.015)
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suite
}

func TestTable1Shape(t *testing.T) {
	s := getSuite(t)
	tab, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("Table 1 rows = %d, want 8", len(tab.Rows))
	}
	byMethod := map[string][]float64{}
	for _, r := range tab.Rows {
		if len(r.Measured) != 8 {
			t.Fatalf("%s: %d values, want 8", r.Method, len(r.Measured))
		}
		for _, v := range r.Measured {
			if v < 0 || v > 1 {
				t.Errorf("%s: value %v out of range", r.Method, v)
			}
		}
		byMethod[r.Method] = r.Measured
	}
	// Headline claims: JOCL has the best average F1 on both data sets
	// (small tolerance absorbs sampling noise at the tiny test scale;
	// at scale 0.03+ JOCL wins strictly — see EXPERIMENTS.md).
	for _, col := range []int{3, 7} {
		jocl := byMethod["JOCL"][col]
		for m, vals := range byMethod {
			if m == "JOCL" {
				continue
			}
			if vals[col] > jocl+0.02 {
				t.Errorf("col %d: %s (%.3f) beats JOCL (%.3f)", col, m, vals[col], jocl)
			}
		}
	}
}

func TestTable2Shape(t *testing.T) {
	s := getSuite(t)
	tab, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Table 2 rows = %d, want 4", len(tab.Rows))
	}
	var jocl, amie float64
	for _, r := range tab.Rows {
		switch r.Method {
		case "JOCL":
			jocl = r.Measured[3]
		case "AMIE":
			amie = r.Measured[3]
		}
	}
	// The paper's claim: JOCL beats AMIE decisively (AMIE's coverage is
	// the weakest).
	if jocl <= amie {
		t.Errorf("JOCL avg F1 (%.3f) should beat AMIE (%.3f)", jocl, amie)
	}
}

func TestTable3Shape(t *testing.T) {
	s := getSuite(t)
	tab, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("Table 3 rows = %d, want 6", len(tab.Rows))
	}
	var jocl []float64
	best := []float64{0, 0}
	for _, r := range tab.Rows {
		if r.Method == "JOCL" {
			jocl = r.Measured
			continue
		}
		for i, v := range r.Measured {
			if v > best[i] {
				best[i] = v
			}
		}
	}
	// Headline claim: JOCL beats every baseline on both data sets (a
	// small tolerance absorbs sampling noise on the tiny test scale).
	for i := range jocl {
		if jocl[i] < best[i]-0.02 {
			t.Errorf("dataset %d: JOCL %.3f below best baseline %.3f", i, jocl[i], best[i])
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	s := getSuite(t)
	tab, err := s.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("Figure 3 rows = %d, want 5", len(tab.Rows))
	}
	var jocl, best float64
	for _, r := range tab.Rows {
		if r.Method == "JOCL" {
			jocl = r.Measured[0]
		} else if r.Measured[0] > best {
			best = r.Measured[0]
		}
	}
	if jocl < best {
		t.Errorf("JOCL relation accuracy %.3f below best baseline %.3f", jocl, best)
	}
}

func TestTable4Shape(t *testing.T) {
	s := getSuite(t)
	tab, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	var cano, link, full Row
	for _, r := range tab.Rows {
		switch r.Method {
		case "JOCLcano":
			cano = r
		case "JOCLlink":
			link = r
		case "JOCL":
			full = r
		}
	}
	// Interaction claims: joint beats both single-task variants.
	if full.Measured[3] <= cano.Measured[3] {
		t.Errorf("JOCL avg F1 %.3f must beat JOCLcano %.3f", full.Measured[3], cano.Measured[3])
	}
	if full.Measured[4] < link.Measured[4] {
		t.Errorf("JOCL accuracy %.3f must not trail JOCLlink %.3f", full.Measured[4], link.Measured[4])
	}
}

func TestFigure4Shape(t *testing.T) {
	s := getSuite(t)
	tab, err := s.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("Figure 4 rows = %d, want 3", len(tab.Rows))
	}
	single, all := tab.Rows[0], tab.Rows[2]
	// More features should not make both tasks worse.
	if all.Measured[0] < single.Measured[0] && all.Measured[1] < single.Measured[1] {
		t.Errorf("JOCL-all (%.3f, %.3f) strictly worse than JOCL-single (%.3f, %.3f)",
			all.Measured[0], all.Measured[1], single.Measured[0], single.Measured[1])
	}
}

func TestFormatIncludesPaperValues(t *testing.T) {
	s := getSuite(t)
	tab, err := s.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Format()
	if !strings.Contains(out, "(") {
		t.Error("formatted table should include paper reference values")
	}
	if !strings.Contains(out, "JOCL") {
		t.Error("formatted table missing methods")
	}
}

func TestExtrasRun(t *testing.T) {
	if testing.Short() {
		t.Skip("extras are slow")
	}
	s := getSuite(t)
	tabs, err := s.Extras()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 5 {
		t.Fatalf("extras = %d tables, want 5", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty", tab.ID)
		}
	}
}

func TestRunMemoization(t *testing.T) {
	s := getSuite(t)
	a, err := s.run("full", s.Reverb, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.run("full", s.Reverb, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical keys should memoize")
	}
}
