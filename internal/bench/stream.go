package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/okb"
	"repro/internal/signals"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// StreamPoint is one ingested batch's cost under the two serving
// strategies: the incremental session (dirty-component BP, warm-started
// messages, cached construction) versus rebuilding and re-solving the
// whole pipeline over the accumulated triples, which is what the
// one-shot examples do per batch.
type StreamPoint struct {
	Batch        int `json:"batch"`
	BatchTriples int `json:"batch_triples"`
	TotalTriples int `json:"total_triples"`

	Components      int `json:"components"`
	DirtyComponents int `json:"dirty_components"`
	WarmFactors     int `json:"warm_factors"`

	IncrementalMS float64 `json:"incremental_ms"`
	RebuildMS     float64 `json:"rebuild_ms"`
	Speedup       float64 `json:"speedup"`
}

// StreamReport is the streaming-ingest benchmark's output, emitted as
// the BENCH_stream.json artifact.
type StreamReport struct {
	Profile string  `json:"profile"`
	Scale   float64 `json:"scale"`
	Batches int     `json:"batches"`
	Workers int     `json:"workers"`

	Points []StreamPoint `json:"points"`

	// ConsecutiveWins is the longest run of consecutive batches, after
	// the first (where both strategies are cold), in which incremental
	// ingest beat the full rebuild on wall-clock.
	ConsecutiveWins int `json:"consecutive_wins"`
	// MeanSpeedup averages rebuild/incremental over those later batches.
	MeanSpeedup float64 `json:"mean_speedup"`

	// IngestLatency digests the incremental session's per-ingest
	// wall-clock from its jocl_ingest_duration_seconds histogram — the
	// same series a /metrics scrape reports.
	IngestLatency LatencySummary `json:"ingest_latency"`

	// Telemetry A/B: the same batch sequence replayed into fresh
	// incremental sessions with instrumentation off and on, pricing the
	// instrumentation itself (the acceptance target is an overhead under
	// 2%; small negatives are run-to-run noise). The arms are interleaved
	// after an untimed warmup replay (see RunStream), and each reports
	// the mean over TelemetryReps replays.
	TelemetryReps        int     `json:"telemetry_reps"`
	TelemetryOnMS        float64 `json:"telemetry_on_ms"`
	TelemetryOffMS       float64 `json:"telemetry_off_ms"`
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`

	// Tracing A/B: a third interleaved arm replays with request-scoped
	// tracing on top of telemetry, pricing the span layer itself
	// against the telemetry-on arm (same ≤2% acceptance target).
	TracingOnMS        float64 `json:"tracing_on_ms"`
	TracingOverheadPct float64 `json:"tracing_overhead_pct"`

	// IngestAllocBytes / IngestAllocs echo the measured session's
	// jocl_ingest_alloc_bytes_total / jocl_ingest_allocs_total counters
	// after the run: cumulative allocator traffic across every ingest,
	// preload included.
	IngestAllocBytes uint64 `json:"ingest_alloc_bytes_total"`
	IngestAllocs     uint64 `json:"ingest_allocs_total"`
}

// RunStream measures incremental ingest against full rebuild in the
// serving scenario the subsystem targets: a preload (the accumulated
// corpus, preloadFrac of the profile's triples, ingested as batch 1)
// followed by a steady stream of small batches splitting the rest.
// Both strategies share the generated dataset's pre-trained embeddings
// and paraphrase DB (training them is offline either way); the rebuild
// additionally pays per batch for what the session's epoch freezes —
// re-mining AMIE rules, re-counting IDF, rebuilding the KBP classifier
// — plus uncached graph construction and cold whole-graph inference,
// while the session's warm-started messages are already near the fixed
// point everywhere a small batch didn't touch.
func RunStream(profile string, scale, preloadFrac float64, batches, workers int) (*StreamReport, error) {
	ds, triples, cuts, batches, err := ingestPlan(profile, scale, preloadFrac, batches)
	if err != nil {
		return nil, err
	}

	report := &StreamReport{Profile: profile, Scale: scale, Batches: batches, Workers: workers}
	// Give BP room to actually converge: the warm-start win is reaching
	// the fixed point in few sweeps, which a tight cap would mask (and
	// the same cap applies to both strategies).
	cfg := core.DefaultConfig()
	cfg.BP.MaxSweeps = 40
	sess := stream.New(ds.CKB, ds.Emb, ds.PPDB, stream.Config{Core: cfg, Workers: workers, Telemetry: benchTelemetry()})

	var accumulated []okb.Triple
	for b := 0; b < batches; b++ {
		batch := triples[cuts[b]:cuts[b+1]]

		t0 := time.Now()
		st, err := sess.Ingest(batch)
		if err != nil {
			return nil, err
		}
		incMS := float64(time.Since(t0).Microseconds()) / 1000

		// Full rebuild: everything from the raw accumulated triples.
		accumulated = append(accumulated, batch...)
		t1 := time.Now()
		store := okb.NewStore(accumulated)
		res := signals.New(store, ds.CKB, ds.Emb, ds.PPDB)
		sys, err := core.NewSystem(res, cfg)
		if err != nil {
			return nil, err
		}
		sys.Run(nil)
		rebMS := float64(time.Since(t1).Microseconds()) / 1000

		pt := StreamPoint{
			Batch:           b + 1,
			BatchTriples:    len(batch),
			TotalTriples:    len(accumulated),
			Components:      st.Components,
			DirtyComponents: st.DirtyComponents,
			WarmFactors:     st.WarmFactors,
			IncrementalMS:   incMS,
			RebuildMS:       rebMS,
		}
		if incMS > 0 {
			pt.Speedup = rebMS / incMS
		}
		report.Points = append(report.Points, pt)
	}

	streak, sum, n := 0, 0.0, 0
	for _, pt := range report.Points[1:] {
		if pt.IncrementalMS < pt.RebuildMS {
			streak++
			if streak > report.ConsecutiveWins {
				report.ConsecutiveWins = streak
			}
		} else {
			streak = 0
		}
		sum += pt.Speedup
		n++
	}
	if n > 0 {
		report.MeanSpeedup = sum / float64(n)
	}
	report.IngestLatency = ingestLatency(sess)
	report.IngestAllocBytes, report.IngestAllocs = sessionAllocCounters(sess)

	// Telemetry A/B: replay the identical stream into fresh sessions with
	// instrumentation off and on. A single off-then-on pass is hostage to
	// whatever the machine was doing during each arm (allocator state,
	// frequency scaling, CI neighbors), which used to swamp the ~1%
	// effect being measured; instead one untimed replay warms the path,
	// then the arms alternate off/on so drift lands on both equally, and
	// each arm reports its mean.
	replay := func(tcfg telemetry.Config, trcfg trace.Config) (float64, error) {
		s := stream.New(ds.CKB, ds.Emb, ds.PPDB, stream.Config{Core: cfg, Workers: workers, Telemetry: tcfg, Trace: trcfg})
		t0 := time.Now()
		for b := 0; b < batches; b++ {
			if _, err := s.Ingest(triples[cuts[b]:cuts[b+1]]); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(t0).Microseconds()) / 1000, nil
	}
	// The tracing arm retains every trace (negative threshold) in a
	// small ring — the worst case for the span layer's bookkeeping.
	benchTracing := trace.Config{Enable: true, SlowThreshold: -1, Capacity: 64}
	const telemetryReps = 2
	report.TelemetryReps = telemetryReps
	if _, err := replay(telemetry.Config{}, trace.Config{}); err != nil { // warmup, untimed
		return nil, err
	}
	for i := 0; i < telemetryReps; i++ {
		off, err := replay(telemetry.Config{}, trace.Config{})
		if err != nil {
			return nil, err
		}
		on, err := replay(benchTelemetry(), trace.Config{})
		if err != nil {
			return nil, err
		}
		traced, err := replay(benchTelemetry(), benchTracing)
		if err != nil {
			return nil, err
		}
		report.TelemetryOffMS += off / telemetryReps
		report.TelemetryOnMS += on / telemetryReps
		report.TracingOnMS += traced / telemetryReps
	}
	if report.TelemetryOffMS > 0 {
		report.TelemetryOverheadPct = (report.TelemetryOnMS - report.TelemetryOffMS) / report.TelemetryOffMS * 100
	}
	if report.TelemetryOnMS > 0 {
		report.TracingOverheadPct = (report.TracingOnMS - report.TelemetryOnMS) / report.TelemetryOnMS * 100
	}
	return report, nil
}

// ingestPlan prepares the preload-plus-steady-stream serving scenario
// the streaming benchmarks share: the generated dataset, its triples,
// and the batch cut offsets (1 preload batch of preloadFrac of the
// triples, then batches-1 equal increments). It clamps batches to >= 2
// and preloadFrac to (0,1), returning the effective batch count.
func ingestPlan(profile string, scale, preloadFrac float64, batches int) (*datasets.Dataset, []okb.Triple, []int, int, error) {
	var p datasets.Profile
	switch profile {
	case "reverb45k":
		p = datasets.ReVerb45K(scale)
	case "nytimes2018":
		p = datasets.NYTimes2018(scale)
	default:
		return nil, nil, nil, 0, fmt.Errorf("bench: unknown stream profile %q", profile)
	}
	ds, err := datasets.Generate(p)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	triples := ds.OKB.Triples()
	if batches < 2 {
		batches = 2
	}
	if preloadFrac <= 0 || preloadFrac >= 1 {
		preloadFrac = 0.6
	}
	preload := int(float64(len(triples)) * preloadFrac)
	if preload < 1 || len(triples)-preload < batches-1 {
		return nil, nil, nil, 0, fmt.Errorf("bench: %d triples cannot fill a %.0f%% preload plus %d batches",
			len(triples), preloadFrac*100, batches-1)
	}
	cuts := []int{0, preload}
	per := (len(triples) - preload) / (batches - 1)
	for b := 1; b < batches-1; b++ {
		cuts = append(cuts, preload+b*per)
	}
	cuts = append(cuts, len(triples))
	return ds, triples, cuts, batches, nil
}

// WriteJSON emits the report as the BENCH_stream.json artifact.
func (r *StreamReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders the report as aligned text.
func (r *StreamReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "STREAM — incremental ingest vs full rebuild (%s, scale %g, %d workers)\n",
		r.Profile, r.Scale, r.Workers)
	fmt.Fprintf(&b, "%6s  %8s  %8s  %6s  %6s  %12s  %12s  %8s\n",
		"batch", "triples", "total", "comps", "dirty", "incremental", "rebuild", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d  %8d  %8d  %6d  %6d  %9.1fms  %9.1fms  %7.2fx\n",
			p.Batch, p.BatchTriples, p.TotalTriples, p.Components, p.DirtyComponents,
			p.IncrementalMS, p.RebuildMS, p.Speedup)
	}
	fmt.Fprintf(&b, "consecutive incremental wins: %d; mean speedup after warm-up: %.2fx\n",
		r.ConsecutiveWins, r.MeanSpeedup)
	fmt.Fprintf(&b, "incremental ingest latency: %s\n", r.IngestLatency)
	fmt.Fprintf(&b, "telemetry overhead: on %.1fms vs off %.1fms = %+.2f%% (target <= 2%%; mean of %d interleaved reps)\n",
		r.TelemetryOnMS, r.TelemetryOffMS, r.TelemetryOverheadPct, r.TelemetryReps)
	fmt.Fprintf(&b, "tracing overhead: traced %.1fms vs telemetry-only %.1fms = %+.2f%% (target <= 2%%)\n",
		r.TracingOnMS, r.TelemetryOnMS, r.TracingOverheadPct)
	return b.String()
}
