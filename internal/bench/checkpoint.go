package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/stream"
)

// This file benchmarks the durability subsystem (internal/checkpoint,
// stream.Session.Checkpoint/RestoreSession) in its recovery scenario:
// a serving process dies mid-stream and a replacement must come back
// warm. The comparison is restore-from-checkpoint versus the only
// alternative the stack had before checkpoints existed — replaying the
// whole accumulated stream cold into a fresh session. Restore pays one
// epoch re-derivation (signal statistics over the checkpoint's epoch
// prefix) plus deserialization, while the cold replay pays per-batch
// graph construction and inference for the entire history; the
// acceptance target is restore >= 5x faster, with the restored session
// continuing warm (blocks adopted, partition repaired) and answering
// queries identically to a process that never died.

// CheckpointReport is the durability benchmark's output, emitted as
// the BENCH_checkpoint.json artifact.
type CheckpointReport struct {
	Profile string  `json:"profile"`
	Scale   float64 `json:"scale"`
	Batches int     `json:"batches"`
	Workers int     `json:"workers"`

	// StreamMS is the wall-clock of ingesting the pre-crash stream
	// (every batch but the last) into the original session; the latency
	// digests come from that session's own telemetry histograms.
	StreamMS          float64        `json:"stream_ms"`
	IngestLatency     LatencySummary `json:"ingest_latency"`
	CheckpointLatency LatencySummary `json:"checkpoint_latency"`
	// IngestAllocBytes / IngestAllocs echo the original session's
	// cumulative jocl_ingest_alloc_bytes_total / jocl_ingest_allocs_total
	// counters over the pre-crash stream.
	IngestAllocBytes uint64 `json:"ingest_alloc_bytes_total"`
	IngestAllocs     uint64 `json:"ingest_allocs_total"`
	// CheckpointMS / CheckpointBytes price one snapshot: serialization
	// wall-clock (the capture itself holds the ingest lock only
	// briefly) and the serialized size.
	CheckpointMS    float64 `json:"checkpoint_ms"`
	CheckpointBytes int     `json:"checkpoint_bytes"`

	// RestoreMS is the wall-clock from checkpoint bytes to a session
	// ready to serve; ColdReplayMS re-ingests the same pre-crash stream
	// into a fresh session — what recovery cost before checkpoints.
	// Speedup is ColdReplayMS / RestoreMS (the >= 5x target).
	RestoreMS    float64 `json:"restore_ms"`
	ColdReplayMS float64 `json:"cold_replay_ms"`
	Speedup      float64 `json:"speedup"`

	// Post-restore continuation: the final batch ingested into the
	// restored session. WarmBlocks counts blocks served from the
	// restored messages, Repaired whether the carried partition was
	// repaired rather than re-derived.
	PostRestoreWarmBlocks int  `json:"post_restore_warm_blocks"`
	PostRestoreRepaired   bool `json:"post_restore_repaired"`

	// Equivalence of the restored path against a process that never
	// died, after both ingested the final batch: link / cluster
	// agreement fractions (target >= 1 - 0.02) and whether the query
	// generations line up.
	NPLinkAgreement    float64 `json:"np_link_agreement"`
	RPLinkAgreement    float64 `json:"rp_link_agreement"`
	NPClusterAgreement float64 `json:"np_cluster_agreement"`
	RPClusterAgreement float64 `json:"rp_cluster_agreement"`
	GenerationsMatch   bool    `json:"generations_match"`

	// MeetsTarget: Speedup >= 5, all agreements >= 0.98, generations
	// aligned, and the continuation actually ran warm.
	MeetsTarget bool `json:"meets_target"`
}

// checkpointCanonicalOf maps each surface to its group's smallest
// member (the stable cluster id used for agreement scoring).
func checkpointCanonicalOf(groups [][]string) map[string]string {
	out := map[string]string{}
	for _, g := range groups {
		min := g[0]
		for _, m := range g[1:] {
			if m < min {
				min = m
			}
		}
		for _, m := range g {
			out[m] = min
		}
	}
	return out
}

// checkpointAgreement returns the fraction of keys (union) two maps
// agree on.
func checkpointAgreement(a, b map[string]string) float64 {
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	if len(keys) == 0 {
		return 1
	}
	same := 0
	for k := range keys {
		if a[k] == b[k] {
			same++
		}
	}
	return float64(same) / float64(len(keys))
}

// RunCheckpoint measures crash recovery: ingest all batches but the
// last, checkpoint, then price (a) restoring the session from the
// checkpoint against (b) replaying the pre-crash stream cold, and
// verify the restored session finishes the stream warm and equivalent
// to an uninterrupted one.
func RunCheckpoint(profile string, scale, preloadFrac float64, batches, workers int) (*CheckpointReport, error) {
	ds, triples, cuts, batches, err := ingestPlan(profile, scale, preloadFrac, batches)
	if err != nil {
		return nil, err
	}
	workers = resolveWorkers(workers)
	report := &CheckpointReport{Profile: profile, Scale: scale, Batches: batches, Workers: workers}

	cfg := core.DefaultConfig()
	cfg.BP.MaxSweeps = 40
	cfg.Segment.Enable = true
	scfg := stream.Config{Core: cfg, Workers: workers, Query: query.Config{Enable: true}, Telemetry: benchTelemetry()}

	// The pre-crash stream: every batch but the last.
	preCrash := batches - 1
	original := stream.New(ds.CKB, ds.Emb, ds.PPDB, scfg)
	uninterrupted := stream.New(ds.CKB, ds.Emb, ds.PPDB, scfg)
	t0 := time.Now()
	for b := 0; b < preCrash; b++ {
		if _, err := original.Ingest(triples[cuts[b]:cuts[b+1]]); err != nil {
			return nil, err
		}
	}
	report.StreamMS = float64(time.Since(t0).Microseconds()) / 1000
	for b := 0; b < preCrash; b++ {
		if _, err := uninterrupted.Ingest(triples[cuts[b]:cuts[b+1]]); err != nil {
			return nil, err
		}
	}

	// Snapshot the session.
	var buf bytes.Buffer
	t1 := time.Now()
	if err := original.Checkpoint(&buf); err != nil {
		return nil, err
	}
	report.CheckpointMS = float64(time.Since(t1).Microseconds()) / 1000
	report.CheckpointBytes = buf.Len()
	report.IngestLatency = ingestLatency(original)
	report.CheckpointLatency = checkpointLatency(original)
	report.IngestAllocBytes, report.IngestAllocs = sessionAllocCounters(original)

	// Recovery strategy A: restore from the checkpoint.
	t2 := time.Now()
	restored, err := stream.RestoreSession(bytes.NewReader(buf.Bytes()), ds.CKB, ds.Emb, ds.PPDB, scfg)
	if err != nil {
		return nil, err
	}
	report.RestoreMS = float64(time.Since(t2).Microseconds()) / 1000

	// Recovery strategy B: replay the whole pre-crash stream cold.
	cold := stream.New(ds.CKB, ds.Emb, ds.PPDB, scfg)
	t3 := time.Now()
	for b := 0; b < preCrash; b++ {
		if _, err := cold.Ingest(triples[cuts[b]:cuts[b+1]]); err != nil {
			return nil, err
		}
	}
	report.ColdReplayMS = float64(time.Since(t3).Microseconds()) / 1000
	if report.RestoreMS > 0 {
		report.Speedup = report.ColdReplayMS / report.RestoreMS
	}

	// Continuation: the final batch lands on both the restored and the
	// uninterrupted session.
	final := triples[cuts[preCrash]:cuts[batches]]
	stR, err := restored.Ingest(final)
	if err != nil {
		return nil, err
	}
	if _, err := uninterrupted.Ingest(final); err != nil {
		return nil, err
	}
	report.PostRestoreWarmBlocks = stR.CleanComponents
	report.PostRestoreRepaired = stR.PartitionRepaired

	a, b := restored.Snapshot(), uninterrupted.Snapshot()
	report.NPLinkAgreement = checkpointAgreement(a.NPLinks, b.NPLinks)
	report.RPLinkAgreement = checkpointAgreement(a.RPLinks, b.RPLinks)
	report.NPClusterAgreement = checkpointAgreement(checkpointCanonicalOf(a.NPGroups), checkpointCanonicalOf(b.NPGroups))
	report.RPClusterAgreement = checkpointAgreement(checkpointCanonicalOf(a.RPGroups), checkpointCanonicalOf(b.RPGroups))
	gr, okR := restored.Query().Generation()
	gu, okU := uninterrupted.Query().Generation()
	report.GenerationsMatch = okR && okU && gr.Generation == gu.Generation && gr.Behind == 0

	const tol = 0.02
	report.MeetsTarget = report.Speedup >= 5 &&
		report.NPLinkAgreement >= 1-tol && report.RPLinkAgreement >= 1-tol &&
		report.NPClusterAgreement >= 1-tol && report.RPClusterAgreement >= 1-tol &&
		report.GenerationsMatch &&
		report.PostRestoreWarmBlocks > 0 && report.PostRestoreRepaired
	return report, nil
}

// WriteJSON emits the report as the BENCH_checkpoint.json artifact.
func (r *CheckpointReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders the report as aligned text.
func (r *CheckpointReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CHECKPOINT — restore vs cold full-stream replay (%s, scale %g, %d batches, %d workers)\n",
		r.Profile, r.Scale, r.Batches, r.Workers)
	fmt.Fprintf(&b, "pre-crash stream: %.0fms across %d batches; snapshot %.1fKB written in %.1fms\n",
		r.StreamMS, r.Batches-1, float64(r.CheckpointBytes)/1024, r.CheckpointMS)
	fmt.Fprintf(&b, "ingest latency: %s; checkpoint latency: %s\n", r.IngestLatency, r.CheckpointLatency)
	fmt.Fprintf(&b, "recovery: restore %.0fms vs cold replay %.0fms = %.1fx\n",
		r.RestoreMS, r.ColdReplayMS, r.Speedup)
	fmt.Fprintf(&b, "continuation: %d blocks warm, partition repaired %v\n",
		r.PostRestoreWarmBlocks, r.PostRestoreRepaired)
	fmt.Fprintf(&b, "equivalence vs uninterrupted: links %.4f/%.4f clusters %.4f/%.4f generations match %v\n",
		r.NPLinkAgreement, r.RPLinkAgreement, r.NPClusterAgreement, r.RPClusterAgreement, r.GenerationsMatch)
	fmt.Fprintf(&b, "meets target (>=5x, <=0.02 divergence, warm continuation): %v\n", r.MeetsTarget)
	return b.String()
}
