package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/okb"
	"repro/internal/signals"
	"repro/internal/stream"
)

// This file benchmarks hub-cut graph segmentation (core.Config.Segment)
// against the PR 1 no-cut incremental path on the workload that defeats
// it: the generated profiles' popular relation phrases couple thousands
// of triples through fact-inclusion factors, fusing the factor graph
// into one giant connected component, so no-cut dirty tracking re-
// sweeps everything on every ingest. The hub-cut partition cuts those
// phrases' variables out of the blocks with frozen boundary messages,
// restoring per-block locality at an approximation cost the experiment
// quantifies as an F1 delta against exact (whole-graph, cold) inference.

// SegmentStrategy is one serving strategy's side of the comparison.
type SegmentStrategy struct {
	// Per-batch total ingest wall-clock (construct + inference), ms.
	IngestMS []float64 `json:"ingest_ms"`
	// MeanPostWarmupMS averages the batches after the first (the
	// preload, where both strategies are cold).
	MeanPostWarmupMS float64 `json:"mean_post_warmup_ms"`
	// IngestLatency is the session's own telemetry digest of the same
	// ingests (p50/p95/p99, includes the cold preload).
	IngestLatency LatencySummary `json:"ingest_latency"`
	// IngestAllocBytes / IngestAllocs echo the session's cumulative
	// jocl_ingest_alloc_bytes_total / jocl_ingest_allocs_total counters.
	IngestAllocBytes uint64 `json:"ingest_alloc_bytes_total"`
	IngestAllocs     uint64 `json:"ingest_allocs_total"`
	// Final-build partition shape and final-batch effort.
	Blocks       int `json:"blocks"`
	CutVariables int `json:"cut_variables"`
	LastDirty    int `json:"last_dirty_blocks"`
	LastWarm     int `json:"last_warm_blocks"`
	LastSweeps   int `json:"last_sweeps_total"`
	// Result quality of the final snapshot against the generator's gold
	// labels, and its delta from the exact reference.
	NPAvgF1         float64 `json:"np_avg_f1"`
	EntLinkAcc      float64 `json:"ent_link_acc"`
	NPAvgF1Delta    float64 `json:"np_avg_f1_delta_vs_exact"`
	EntLinkAccDelta float64 `json:"ent_link_acc_delta_vs_exact"`
}

// SegmentReport is the segmentation benchmark's output, emitted as the
// BENCH_segment.json artifact.
type SegmentReport struct {
	Profile     string  `json:"profile"`
	Scale       float64 `json:"scale"`
	Batches     int     `json:"batches"`
	Workers     int     `json:"workers"`
	F1Tolerance float64 `json:"f1_tolerance"`

	// Exact reference: one cold whole-graph solve over the final
	// accumulated triples (the quality yardstick both strategies are
	// measured against).
	ExactNPAvgF1    float64 `json:"exact_np_avg_f1"`
	ExactEntLinkAcc float64 `json:"exact_ent_link_acc"`

	NoCut  SegmentStrategy `json:"no_cut"`
	HubCut SegmentStrategy `json:"hub_cut"`

	// Speedup is no-cut over hub-cut mean post-warm-up ingest latency;
	// WithinTolerance reports whether the hub-cut F1/accuracy deltas
	// stay inside F1Tolerance.
	Speedup         float64 `json:"speedup"`
	WithinTolerance bool    `json:"within_tolerance"`
}

// RunSegment ingests the same preload-plus-steady-stream batch sequence
// into two sessions — the PR 1 no-cut incremental path and the hub-cut
// segmented path — and compares steady-state ingest latency and final
// result quality against exact whole-graph inference.
func RunSegment(profile string, scale, preloadFrac float64, batches, workers int, f1Tol float64) (*SegmentReport, error) {
	ds, triples, cuts, batches, err := ingestPlan(profile, scale, preloadFrac, batches)
	if err != nil {
		return nil, err
	}
	if f1Tol <= 0 {
		f1Tol = 0.02
	}
	workers = resolveWorkers(workers)

	report := &SegmentReport{
		Profile: profile, Scale: scale, Batches: batches,
		Workers: workers, F1Tolerance: f1Tol,
	}

	// Same BP headroom as the stream benchmark: the warm-start win is
	// converging in few sweeps, which a tight cap would mask.
	baseCfg := core.DefaultConfig()
	baseCfg.BP.MaxSweeps = 40
	segCfg := baseCfg
	segCfg.Segment.Enable = true

	runStrategy := func(cfg core.Config) (*SegmentStrategy, error) {
		sess := stream.New(ds.CKB, ds.Emb, ds.PPDB, stream.Config{Core: cfg, Workers: workers, Telemetry: benchTelemetry()})
		s := &SegmentStrategy{}
		var last stream.IngestStats
		for b := 0; b < batches; b++ {
			t0 := time.Now()
			st, err := sess.Ingest(triples[cuts[b]:cuts[b+1]])
			if err != nil {
				return nil, err
			}
			s.IngestMS = append(s.IngestMS, float64(time.Since(t0).Microseconds())/1000)
			last = st
		}
		sum := 0.0
		for _, ms := range s.IngestMS[1:] {
			sum += ms
		}
		s.MeanPostWarmupMS = sum / float64(len(s.IngestMS)-1)
		s.Blocks = last.Components
		s.CutVariables = last.CutVariables
		s.LastDirty = last.DirtyComponents
		s.LastWarm = last.CleanComponents
		s.LastSweeps = last.SweepsTotal
		s.IngestLatency = ingestLatency(sess)
		s.IngestAllocBytes, s.IngestAllocs = sessionAllocCounters(sess)
		res := sess.Snapshot()
		s.NPAvgF1 = canonScores(ds, res.NPGroups, true).AverageF1
		s.EntLinkAcc = linkAccuracy(ds, res.NPLinks, true)
		return s, nil
	}

	noCut, err := runStrategy(baseCfg)
	if err != nil {
		return nil, fmt.Errorf("bench: no-cut session: %w", err)
	}
	hubCut, err := runStrategy(segCfg)
	if err != nil {
		return nil, fmt.Errorf("bench: hub-cut session: %w", err)
	}

	report.ExactNPAvgF1, report.ExactEntLinkAcc, err = exactReference(ds, triples, baseCfg)
	if err != nil {
		return nil, err
	}

	for _, s := range []*SegmentStrategy{noCut, hubCut} {
		s.NPAvgF1Delta = s.NPAvgF1 - report.ExactNPAvgF1
		s.EntLinkAccDelta = s.EntLinkAcc - report.ExactEntLinkAcc
	}
	report.NoCut = *noCut
	report.HubCut = *hubCut
	if hubCut.MeanPostWarmupMS > 0 {
		report.Speedup = noCut.MeanPostWarmupMS / hubCut.MeanPostWarmupMS
	}
	report.WithinTolerance = math.Abs(hubCut.NPAvgF1Delta) <= f1Tol && math.Abs(hubCut.EntLinkAccDelta) <= f1Tol
	return report, nil
}

// resolveWorkers mirrors the stream session's worker default so the
// reports record the pool size the sessions actually ran with.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// exactReference solves the final accumulated triples cold, whole
// graph — the quality yardstick the streaming strategies are measured
// against — and returns its NP average F1 and entity-link accuracy.
func exactReference(ds *datasets.Dataset, triples []okb.Triple, cfg core.Config) (npAvgF1, entLinkAcc float64, err error) {
	res := signals.New(okb.NewStore(triples), ds.CKB, ds.Emb, ds.PPDB)
	sys, err := core.NewSystem(res, cfg)
	if err != nil {
		return 0, 0, fmt.Errorf("bench: exact reference: %w", err)
	}
	exact := sys.Run(nil)
	return canonScores(ds, exact.NPGroups, true).AverageF1, linkAccuracy(ds, exact.NPLinks, true), nil
}

// WriteJSON emits the report as the BENCH_segment.json artifact.
func (r *SegmentReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders the report as aligned text.
func (r *SegmentReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SEGMENT — hub-cut vs no-cut incremental ingest (%s, scale %g, %d workers)\n",
		r.Profile, r.Scale, r.Workers)
	fmt.Fprintf(&b, "%8s  %12s  %12s\n", "batch", "no-cut", "hub-cut")
	for i := range r.NoCut.IngestMS {
		fmt.Fprintf(&b, "%8d  %10.1fms  %10.1fms\n", i+1, r.NoCut.IngestMS[i], r.HubCut.IngestMS[i])
	}
	fmt.Fprintf(&b, "mean post-warm-up ingest: no-cut %.1fms, hub-cut %.1fms (%.2fx)\n",
		r.NoCut.MeanPostWarmupMS, r.HubCut.MeanPostWarmupMS, r.Speedup)
	fmt.Fprintf(&b, "ingest latency: no-cut %s; hub-cut %s\n", r.NoCut.IngestLatency, r.HubCut.IngestLatency)
	fmt.Fprintf(&b, "partition: no-cut %d blocks; hub-cut %d blocks, %d cut variables (last batch: %d dirty / %d warm)\n",
		r.NoCut.Blocks, r.HubCut.Blocks, r.HubCut.CutVariables, r.HubCut.LastDirty, r.HubCut.LastWarm)
	fmt.Fprintf(&b, "quality (NP avg F1 / ent-link acc): exact %.3f/%.3f, no-cut %+.4f/%+.4f, hub-cut %+.4f/%+.4f (tolerance %g, within: %v)\n",
		r.ExactNPAvgF1, r.ExactEntLinkAcc,
		r.NoCut.NPAvgF1Delta, r.NoCut.EntLinkAccDelta,
		r.HubCut.NPAvgF1Delta, r.HubCut.EntLinkAccDelta,
		r.F1Tolerance, r.WithinTolerance)
	return b.String()
}
