package bench

import (
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datasets"
)

// Paper-reported values (for the parenthesized reference columns).
// -1 marks cells the paper does not report.
var (
	paperTable1 = map[string][]float64{ // macro, micro, pairwise, avg ×2 datasets
		"Morph Norm":          {0.281, 0.699, 0.653, 0.544, 0.471, 0.658, 0.643, 0.591},
		"Wikidata Integrator": {0.563, 0.839, 0.783, 0.728, 0.476, 0.839, 0.783, 0.699},
		"Text Similarity":     {0.543, 0.821, 0.689, 0.684, 0.581, 0.796, 0.658, 0.678},
		"IDF Token Overlap":   {0.598, 0.571, 0.505, 0.558, 0.551, 0.612, 0.527, 0.563},
		"Attribute Overlap":   {0.598, 0.599, 0.587, 0.595, 0.551, 0.612, 0.527, 0.563},
		"CESI":                {0.618, 0.845, 0.819, 0.761, 0.586, 0.842, 0.778, 0.735},
		"SIST":                {0.691, 0.889, 0.823, 0.801, 0.675, 0.816, 0.838, 0.776},
		"JOCL":                {0.684, 0.892, 0.877, 0.818, 0.561, 0.921, 0.934, 0.805},
	}
	paperTable2 = map[string][]float64{
		"AMIE":  {0.703, 0.820, 0.760, 0.761},
		"PATTY": {0.782, 0.872, 0.802, 0.819},
		"SIST":  {0.875, 0.872, 0.845, 0.864},
		"JOCL":  {0.848, 0.923, 0.851, 0.874},
	}
	paperTable3 = map[string][]float64{
		"Falcon":    {0.541, 0.33},
		"EARL":      {0.473, 0.25},
		"Spotlight": {0.716, 0.26},
		"TagMe":     {0.316, 0.30},
		"KBPearl":   {0.522, 0.46},
		"JOCL":      {0.761, 0.48},
	}
	// Figure 3 is a bar chart; values read off the figure.
	paperFigure3 = map[string][]float64{
		"Falcon":  {0.23},
		"EARL":    {0.13},
		"Rematch": {0.31},
		"KBPearl": {0.38},
		"JOCL":    {0.45},
	}
	paperTable4 = map[string][]float64{
		"JOCLcano": {0.571, 0.846, 0.787, 0.735, -1},
		"JOCLlink": {-1, -1, -1, -1, 0.744},
		"JOCL":     {0.684, 0.892, 0.877, 0.818, 0.761},
	}
)

// Table1 reproduces the NP canonicalization comparison.
func (s *Suite) Table1() (*Table, error) {
	t := &Table{
		ID:    "table1",
		Title: "NP canonicalization (macro / micro / pairwise / average F1; ReVerb45K then NYTimes2018)",
		Columns: []string{
			"RV-Macro", "RV-Micro", "RV-Pair", "RV-Avg",
			"NYT-Macro", "NYT-Micro", "NYT-Pair", "NYT-Avg",
		},
	}
	both := []*dsType{s.Reverb, s.NYT}
	rows := []struct {
		name string
		run  func(d *dsType) [][]string
	}{
		{"Morph Norm", func(d *dsType) [][]string { return baselines.MorphNorm(d.OKB.NPs()) }},
		{"Wikidata Integrator", func(d *dsType) [][]string {
			return baselines.WikidataIntegrator(s.Resources(d), d.OKB.NPs())
		}},
		{"Text Similarity", func(d *dsType) [][]string { return baselines.TextSimilarity(d.OKB.NPs(), 0.90) }},
		{"IDF Token Overlap", func(d *dsType) [][]string {
			return baselines.IDFTokenOverlap(d.OKB.NPIDF(), d.OKB.NPs(), 0.5)
		}},
		{"Attribute Overlap", func(d *dsType) [][]string {
			return baselines.AttributeOverlap(d.OKB, d.OKB.NPs(), 0.3)
		}},
		{"CESI", func(d *dsType) [][]string { return baselines.CESI(s.Resources(d), d.OKB.NPs(), 0.65) }},
		{"SIST", func(d *dsType) [][]string { return baselines.SIST(s.Resources(d), d.OKB.NPs(), 0.45) }},
	}
	for _, r := range rows {
		var vals []float64
		for _, d := range both {
			sc := canonScores(d, r.run(d), true)
			vals = append(vals, sc.Macro.F1, sc.Micro.F1, sc.Pairwise.F1, sc.AverageF1)
		}
		t.Rows = append(t.Rows, Row{Method: r.name, Measured: vals, Paper: paperTable1[r.name]})
	}
	var joclVals []float64
	for _, d := range both {
		res, err := s.run("full", d, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		sc := canonScores(d, res.NPGroups, true)
		joclVals = append(joclVals, sc.Macro.F1, sc.Micro.F1, sc.Pairwise.F1, sc.AverageF1)
	}
	t.Rows = append(t.Rows, Row{Method: "JOCL", Measured: joclVals, Paper: paperTable1["JOCL"]})
	return t, nil
}

// dsType abbreviates the dataset type in the experiment tables.
type dsType = datasets.Dataset

// Table2 reproduces the RP canonicalization comparison on ReVerb45K.
func (s *Suite) Table2() (*Table, error) {
	t := &Table{
		ID:      "table2",
		Title:   "RP canonicalization on ReVerb45K (macro / micro / pairwise / average F1)",
		Columns: []string{"Macro", "Micro", "Pair", "Avg"},
	}
	ds := s.Reverb
	res := s.Resources(ds)
	add := func(name string, groups [][]string) {
		sc := canonScores(ds, groups, false)
		t.Rows = append(t.Rows, Row{
			Method:   name,
			Measured: []float64{sc.Macro.F1, sc.Micro.F1, sc.Pairwise.F1, sc.AverageF1},
			Paper:    paperTable2[name],
		})
	}
	add("AMIE", baselines.AMIEBaseline(res, ds.OKB.RPs()))
	add("PATTY", baselines.PATTY(res, ds.OKB, ds.OKB.RPs()))
	add("SIST", baselines.SISTRP(res, ds.OKB.RPs(), 0.45))
	jr, err := s.run("full", ds, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	add("JOCL", jr.RPGroups)
	return t, nil
}

// Table3 reproduces the OKB entity linking comparison.
func (s *Suite) Table3() (*Table, error) {
	t := &Table{
		ID:      "table3",
		Title:   "OKB entity linking accuracy",
		Columns: []string{"ReVerb45K", "NYTimes2018"},
	}
	type runFn func(ds *dsType) map[string]string
	rows := []struct {
		name string
		run  runFn
	}{
		{"Falcon", func(d *dsType) map[string]string {
			return baselines.Falcon(s.Resources(d), d.OKB.NPs(), d.OKB.RPs()).Ent
		}},
		{"EARL", func(d *dsType) map[string]string {
			return baselines.EARL(s.Resources(d), d.OKB.NPs(), d.OKB.RPs()).Ent
		}},
		{"Spotlight", func(d *dsType) map[string]string {
			return baselines.Spotlight(s.Resources(d), d.OKB.NPs())
		}},
		{"TagMe", func(d *dsType) map[string]string {
			return baselines.TagMe(s.Resources(d), d.OKB.NPs())
		}},
		{"KBPearl", func(d *dsType) map[string]string {
			return baselines.KBPearl(s.Resources(d), d.OKB.NPs(), d.OKB.RPs()).Ent
		}},
	}
	for _, r := range rows {
		var vals []float64
		for _, d := range []*dsType{s.Reverb, s.NYT} {
			vals = append(vals, linkAccuracy(d, r.run(d), true))
		}
		t.Rows = append(t.Rows, Row{Method: r.name, Measured: vals, Paper: paperTable3[r.name]})
	}
	var joclVals []float64
	for _, d := range []*dsType{s.Reverb, s.NYT} {
		res, err := s.run("full", d, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		joclVals = append(joclVals, linkAccuracy(d, res.NPLinks, true))
	}
	t.Rows = append(t.Rows, Row{Method: "JOCL", Measured: joclVals, Paper: paperTable3["JOCL"]})
	return t, nil
}

// Figure3 reproduces the OKB relation linking comparison on ReVerb45K.
func (s *Suite) Figure3() (*Table, error) {
	t := &Table{
		ID:      "figure3",
		Title:   "OKB relation linking accuracy on ReVerb45K",
		Columns: []string{"Accuracy"},
	}
	ds := s.Reverb
	res := s.Resources(ds)
	add := func(name string, links map[string]string) {
		t.Rows = append(t.Rows, Row{
			Method:   name,
			Measured: []float64{linkAccuracy(ds, links, false)},
			Paper:    paperFigure3[name],
		})
	}
	add("Falcon", baselines.Falcon(res, ds.OKB.NPs(), ds.OKB.RPs()).Rel)
	add("EARL", baselines.EARL(res, ds.OKB.NPs(), ds.OKB.RPs()).Rel)
	add("Rematch", baselines.Rematch(res, ds.OKB.RPs()))
	add("KBPearl", baselines.KBPearl(res, ds.OKB.NPs(), ds.OKB.RPs()).Rel)
	jr, err := s.run("full", ds, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	add("JOCL", jr.RPLinks)
	return t, nil
}

// Table4 reproduces the interaction ablation on ReVerb45K.
func (s *Suite) Table4() (*Table, error) {
	t := &Table{
		ID:      "table4",
		Title:   "Interaction ablation on ReVerb45K (NP canonicalization F1s + entity linking accuracy)",
		Columns: []string{"Macro", "Micro", "Pair", "Avg", "Accuracy"},
	}
	ds := s.Reverb
	cano, err := s.run("cano", ds, core.CanonOnlyConfig())
	if err != nil {
		return nil, err
	}
	link, err := s.run("link", ds, core.LinkOnlyConfig())
	if err != nil {
		return nil, err
	}
	full, err := s.run("full", ds, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	sc := canonScores(ds, cano.NPGroups, true)
	t.Rows = append(t.Rows, Row{
		Method:   "JOCLcano",
		Measured: []float64{sc.Macro.F1, sc.Micro.F1, sc.Pairwise.F1, sc.AverageF1, -1},
		Paper:    paperTable4["JOCLcano"],
	})
	t.Rows = append(t.Rows, Row{
		Method:   "JOCLlink",
		Measured: []float64{-1, -1, -1, -1, linkAccuracy(ds, link.NPLinks, true)},
		Paper:    paperTable4["JOCLlink"],
	})
	scF := canonScores(ds, full.NPGroups, true)
	t.Rows = append(t.Rows, Row{
		Method:   "JOCL",
		Measured: []float64{scF.Macro.F1, scF.Micro.F1, scF.Pairwise.F1, scF.AverageF1, linkAccuracy(ds, full.NPLinks, true)},
		Paper:    paperTable4["JOCL"],
	})
	return t, nil
}

// Figure4 reproduces the feature-combination ablation (Table 5's
// JOCL-single / -double / -all) on ReVerb45K: NP canonicalization
// average F1 (Figure 4a) and entity-linking accuracy (Figure 4b).
func (s *Suite) Figure4() (*Table, error) {
	t := &Table{
		ID:      "figure4",
		Title:   "Feature ablation on ReVerb45K (JOCL-single / -double / -all)",
		Columns: []string{"NP AvgF1", "EntAcc"},
	}
	ds := s.Reverb
	variants := []struct {
		name string
		fs   core.FeatureSet
	}{
		{"JOCL-single", core.SingleFeatures()},
		{"JOCL-double", core.DoubleFeatures()},
		{"JOCL-all", core.AllFeatures()},
	}
	for _, v := range variants {
		cfg := core.DefaultConfig()
		cfg.Features = v.fs
		key := "feat-" + v.name
		if v.name == "JOCL-all" {
			key = "full" // identical to the default configuration
		}
		res, err := s.run(key, ds, cfg)
		if err != nil {
			return nil, err
		}
		sc := canonScores(ds, res.NPGroups, true)
		t.Rows = append(t.Rows, Row{
			Method:   v.name,
			Measured: []float64{sc.AverageF1, linkAccuracy(ds, res.NPLinks, true)},
		})
	}
	return t, nil
}

// All runs every paper experiment in order.
func (s *Suite) All() ([]*Table, error) {
	var out []*Table
	for _, f := range []func() (*Table, error){
		s.Table1, s.Table2, s.Table3, s.Figure3, s.Table4, s.Figure4,
	} {
		t, err := f()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
