package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/okb"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// RetractPoint is one retraction batch's cost against a fully loaded
// session: how many SPO facts were withdrawn, how many stored positions
// they tombstoned, how much of the partition the repair had to touch,
// and the wall-clock the whole retraction (tombstone, repair, publish)
// took.
type RetractPoint struct {
	Batch int `json:"batch"`
	// Facts is the number of (S,P,O) facts in the retraction batch;
	// Tombstoned the stored positions they superseded (>= Facts when the
	// stream held duplicate extractions of a fact).
	Facts      int `json:"facts"`
	Tombstoned int `json:"tombstoned"`
	RemovedNPs int `json:"removed_nps"`
	RemovedRPs int `json:"removed_rps"`
	// DirtyBlocks is the partition blocks the retraction dirtied and the
	// repair re-swept — the dirty-set size the cost is plotted against.
	DirtyBlocks int `json:"dirty_blocks"`
	// LiveTriples / TotalTriples after this retraction: dead positions
	// stay physically present, so Total never shrinks.
	LiveTriples  int `json:"live_triples"`
	TotalTriples int `json:"total_triples"`
	// RetractMS is the one-shot wall-clock of the session retraction.
	RetractMS float64 `json:"retract_ms"`
}

// RetractReport is the retraction benchmark's output, emitted as the
// BENCH_retract.json artifact: retraction cost against dirty-set size
// on a preloaded knowledge base, then as-of read throughput over
// retained generations measured against head reads.
type RetractReport struct {
	Profile string  `json:"profile"`
	Scale   float64 `json:"scale"`
	Batches int     `json:"batches"`
	Workers int     `json:"workers"`
	Readers int     `json:"readers"`

	// LoadedTriples is the stream size the retractions run against;
	// UniqueFacts the distinct (S,P,O) facts available to withdraw.
	LoadedTriples int `json:"loaded_triples"`
	UniqueFacts   int `json:"unique_facts"`

	Points []RetractPoint `json:"points"`

	// Totals after the retraction phase.
	Retractions int64 `json:"retractions"`
	DeadTriples int   `json:"dead_triples"`

	// Read throughput on the settled post-retraction index: HeadQPS
	// reads the current generation, AsOfQPS pins each read to one of the
	// retained generations (cycling over all of them). AsOfHeadRatio is
	// AsOfQPS / HeadQPS — retained generations are the same immutable
	// snapshot structure the head is, so the ratio should sit near 1.
	RetainedGenerations []int64 `json:"retained_generations"`
	HeadReads           int64   `json:"head_reads"`
	HeadQPS             float64 `json:"head_qps"`
	AsOfReads           int64   `json:"asof_reads"`
	AsOfQPS             float64 `json:"asof_qps"`
	AsOfHeadRatio       float64 `json:"asof_head_ratio"`

	// Latency digests for the two read phases and the loading ingests.
	HeadLatency   LatencySummary `json:"head_latency"`
	AsOfLatency   LatencySummary `json:"asof_latency"`
	IngestLatency LatencySummary `json:"ingest_latency"`
}

// hammerAsOf is hammer with every read pinned to a retained generation,
// cycling through gens so the ring's slots share the load evenly.
func hammerAsOf(ix *query.Index, nps, rps []string, gens []int64, rs *readStats, offset int) {
	i := offset
	for !rs.stopped.Load() {
		np := nps[i%len(nps)]
		rp := rps[i%len(rps)]
		opt := query.AsOf(gens[i%len(gens)])
		i++
		for _, op := range []func() bool{
			func() bool { _, ok := ix.ResolveNP(np, opt); return ok },
			func() bool { _, ok := ix.NPCluster(np, opt); return ok },
			func() bool { _, ok := ix.TriplesBySubject(np, 32, opt); return ok },
			func() bool { _, ok := ix.ResolveRP(rp, opt); return ok },
			func() bool { _, ok := ix.TriplesByRelation(rp, 32, opt); return ok },
		} {
			t0 := time.Now()
			ok := op()
			rs.record(time.Since(t0))
			if !ok {
				rs.failed.Add(1)
			}
		}
	}
}

// readPhase runs readers copies of run for window and returns the
// observed reads and throughput.
func readPhase(readers int, window time.Duration, run func(rs *readStats, offset int), rs *readStats) (int64, float64) {
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			run(rs, offset)
		}(r * 1013)
	}
	time.Sleep(window)
	rs.stopped.Store(true)
	wg.Wait()
	return rs.reads.Load(), float64(rs.reads.Load()) / window.Seconds()
}

// RunRetract measures the retraction path in its serving scenario. The
// whole ingest plan is loaded first, then retraction batches of
// geometrically growing size — facts strided across the knowledge base
// so batch size translates into dirty-set size — are withdrawn, each
// priced by one-shot wall-clock against the partition blocks its repair
// had to re-sweep. With tombstones and retained generations in place,
// the read surface is then hammered twice over identical windows: once
// at the head, once with every read pinned via AsOf to one of the
// retained generations, yielding the as-of vs head throughput ratio.
func RunRetract(profile string, scale, preloadFrac float64, batches, workers, readers int) (*RetractReport, error) {
	ds, triples, cuts, batches, err := ingestPlan(profile, scale, preloadFrac, batches)
	if err != nil {
		return nil, err
	}
	if readers <= 0 {
		readers = 8
	}
	report := &RetractReport{Profile: profile, Scale: scale, Batches: batches, Workers: workers, Readers: readers}

	cfg := core.DefaultConfig()
	cfg.BP.MaxSweeps = 40
	cfg.Segment.Enable = true
	sess := stream.New(ds.CKB, ds.Emb, ds.PPDB, stream.Config{
		Core:      cfg,
		Workers:   workers,
		Query:     query.Config{Enable: true, RetainGenerations: 8},
		Telemetry: benchTelemetry(),
	})
	for b := 0; b < batches; b++ {
		if _, err := sess.Ingest(triples[cuts[b]:cuts[b+1]]); err != nil {
			return nil, err
		}
	}
	report.LoadedTriples = len(triples)

	// The withdrawable universe: distinct (S,P,O) facts, since Retract
	// supersedes by content and takes every duplicate extraction at once.
	type spoKey struct{ s, p, o string }
	seen := make(map[spoKey]bool, len(triples))
	var facts []okb.Triple
	for _, tr := range triples {
		k := spoKey{tr.Subj, tr.Pred, tr.Obj}
		if !seen[k] {
			seen[k] = true
			facts = append(facts, okb.Triple{Subj: tr.Subj, Pred: tr.Pred, Obj: tr.Obj})
		}
	}
	report.UniqueFacts = len(facts)

	// Stride the selection across the stream so a retraction batch spans
	// unrelated regions of the KB: batch size then drives dirty-set size,
	// instead of collapsing into one locally-dirty block. The stride is
	// chosen coprime with the fact count, so the walk is a permutation.
	stride := 127
	for gcd(stride, len(facts)) != 1 {
		stride++
	}
	cursor := 0
	take := func(n int) []okb.Triple {
		batch := make([]okb.Triple, 0, n)
		for len(batch) < n && cursor < len(facts) {
			batch = append(batch, facts[(cursor*stride)%len(facts)])
			cursor++
		}
		return batch
	}

	// Geometric batch sizes, capped so the retraction phase withdraws at
	// most half the facts and the read phase still measures a live KB.
	var sizes []int
	for sz := 1; len(sizes) < 6 && sz <= len(facts)/4; sz *= 4 {
		sizes = append(sizes, sz)
	}
	if len(sizes) == 0 {
		sizes = []int{1}
	}

	for i, sz := range sizes {
		batch := take(sz)
		if len(batch) == 0 {
			break
		}
		t0 := time.Now()
		st, err := sess.Retract(batch)
		if err != nil {
			return nil, fmt.Errorf("bench: retraction batch %d (%d facts): %w", i+1, len(batch), err)
		}
		elapsed := time.Since(t0)
		report.Points = append(report.Points, RetractPoint{
			Batch:        i + 1,
			Facts:        len(batch),
			Tombstoned:   st.Retracted,
			RemovedNPs:   st.RemovedNPs,
			RemovedRPs:   st.RemovedRPs,
			DirtyBlocks:  st.DirtyComponents,
			LiveTriples:  st.TotalTriples - sess.Stats().DeadTriples,
			TotalTriples: st.TotalTriples,
			RetractMS:    float64(elapsed.Microseconds()) / 1000,
		})
	}
	report.Retractions = int64(sess.Stats().Retractions)
	report.DeadTriples = sess.Stats().DeadTriples

	// Read throughput, head vs as-of, over identical idle windows.
	ix := sess.Query()
	nps, rps := ds.OKB.NPs(), ds.OKB.RPs()
	report.RetainedGenerations = ix.Retained()
	const window = 250 * time.Millisecond

	head := &readStats{hist: telemetry.NewRegistry().Histogram(
		"bench_head_read_duration_seconds", "Individual head-read latency.", nil)}
	report.HeadReads, report.HeadQPS = readPhase(readers, window, func(rs *readStats, offset int) {
		hammer(ix, nps, rps, rs, offset)
	}, head)
	report.HeadLatency = latencySummaryOf(head.hist)

	gens := report.RetainedGenerations
	if len(gens) > 0 {
		asof := &readStats{hist: telemetry.NewRegistry().Histogram(
			"bench_asof_read_duration_seconds", "Individual as-of read latency.", nil)}
		report.AsOfReads, report.AsOfQPS = readPhase(readers, window, func(rs *readStats, offset int) {
			hammerAsOf(ix, nps, rps, gens, rs, offset)
		}, asof)
		report.AsOfLatency = latencySummaryOf(asof.hist)
	}
	if report.HeadQPS > 0 {
		report.AsOfHeadRatio = report.AsOfQPS / report.HeadQPS
	}
	report.IngestLatency = ingestLatency(sess)
	return report, nil
}

// gcd is Euclid's, for picking a stride coprime with the fact count.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// WriteJSON emits the report as the BENCH_retract.json artifact.
func (r *RetractReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders the report as aligned text.
func (r *RetractReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RETRACT — retraction cost vs dirty-set size, as-of vs head reads (%s, scale %g, %d workers, %d readers)\n",
		r.Profile, r.Scale, r.Workers, r.Readers)
	fmt.Fprintf(&b, "loaded %d triples (%d distinct facts)\n", r.LoadedTriples, r.UniqueFacts)
	fmt.Fprintf(&b, "%6s  %6s  %10s  %8s  %8s  %6s  %8s  %10s\n",
		"batch", "facts", "tombstoned", "rm-nps", "rm-rps", "dirty", "live", "retract")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d  %6d  %10d  %8d  %8d  %6d  %8d  %8.1fms\n",
			p.Batch, p.Facts, p.Tombstoned, p.RemovedNPs, p.RemovedRPs,
			p.DirtyBlocks, p.LiveTriples, p.RetractMS)
	}
	fmt.Fprintf(&b, "totals: %d retractions, %d dead positions\n", r.Retractions, r.DeadTriples)
	fmt.Fprintf(&b, "reads: head %.0f qps (%d reads), as-of %.0f qps (%d reads over generations %v) — ratio %.2fx\n",
		r.HeadQPS, r.HeadReads, r.AsOfQPS, r.AsOfReads, r.RetainedGenerations, r.AsOfHeadRatio)
	fmt.Fprintf(&b, "head latency: %s; as-of latency: %s; ingest latency: %s\n",
		r.HeadLatency, r.AsOfLatency, r.IngestLatency)
	return b.String()
}
