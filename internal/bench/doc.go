// Package bench regenerates every table and figure of the paper's
// experimental study (Section 4) over the synthetic benchmark suite:
//
//	Table 1  — NP canonicalization, 8 methods × ReVerb45K + NYTimes2018
//	Table 2  — RP canonicalization, 4 methods × ReVerb45K
//	Table 3  — OKB entity linking, 6 methods × both data sets
//	Figure 3 — OKB relation linking, 5 methods × ReVerb45K
//	Table 4  — interaction ablation (JOCLcano / JOCLlink / JOCL)
//	Figure 4 — feature ablation (JOCL-single / -double / -all)
//
// plus design-choice ablations beyond the paper (message schedule,
// damping, blocking threshold, candidate-list size). Each runner
// returns a Table whose cells pair the measured value with the paper's
// reported value, so EXPERIMENTS.md can be generated mechanically.
// Absolute numbers are not expected to match (the substrate is
// synthetic); the comparative shape is the reproduction target.
//
// Beyond the paper, the package benchmarks the serving subsystem,
// emitting one JSON artifact per experiment (uploaded by CI, driven by
// cmd/jocl-bench and the bench-* make targets):
//
//   - stream.go — RunStream: incremental ingest vs full per-batch
//     rebuild (BENCH_stream.json)
//   - segment.go — RunSegment: hub-cut vs no-cut incremental ingest on
//     the hub-fused workload, quality measured against exact
//     whole-graph inference (BENCH_segment.json)
//   - repair.go — RunRepair: persistent-partition repair vs per-build
//     re-partition on a rebuild-heavy stream (BENCH_repair.json)
package bench
