package ckb

import (
	"testing"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(
		[]Entity{
			{ID: "e1", Name: "maryland", Aliases: []string{"Maryland", "MD"}, Types: []string{"location"}},
			{ID: "e2", Name: "universitas 21", Aliases: []string{"U21"}, Types: []string{"organization"}},
			{ID: "e3", Name: "university of virginia", Aliases: []string{"UVA"}, Types: []string{"organization"}},
			{ID: "e4", Name: "university of maryland", Aliases: []string{"UMD", "Univ of Maryland"}, Types: []string{"organization"}},
		},
		[]Relation{
			{ID: "r1", Name: "location.contained by", Category: "location", Aliases: []string{"located in", "is in"}},
			{ID: "r2", Name: "organizations_founded", Category: "membership", Aliases: []string{"member of", "founding member of"}},
		},
		[]Fact{
			{Subj: "e4", Rel: "r1", Obj: "e1"},
			{Subj: "e4", Rel: "r2", Obj: "e2"},
			{Subj: "e3", Rel: "r2", Obj: "e2"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreLookups(t *testing.T) {
	s := testStore(t)
	if s.Entity("e1") == nil || s.Entity("e1").Name != "maryland" {
		t.Error("Entity lookup failed")
	}
	if s.Entity("nope") != nil {
		t.Error("unknown entity should be nil")
	}
	if s.Relation("r2") == nil || s.Relation("r2").Category != "membership" {
		t.Error("Relation lookup failed")
	}
	if len(s.EntityIDs()) != 4 || len(s.RelationIDs()) != 2 {
		t.Error("id lists wrong")
	}
}

func TestDuplicateIDsRejected(t *testing.T) {
	_, err := NewStore([]Entity{{ID: "e1", Name: "a"}, {ID: "e1", Name: "b"}}, nil, nil)
	if err == nil {
		t.Error("want error for duplicate entity id")
	}
	_, err = NewStore(nil, []Relation{{ID: "r", Name: "x"}, {ID: "r", Name: "y"}}, nil)
	if err == nil {
		t.Error("want error for duplicate relation id")
	}
}

func TestDanglingFactRejected(t *testing.T) {
	_, err := NewStore(
		[]Entity{{ID: "e1", Name: "a"}},
		[]Relation{{ID: "r1", Name: "r"}},
		[]Fact{{Subj: "e1", Rel: "r1", Obj: "missing"}},
	)
	if err == nil {
		t.Error("want error for dangling fact")
	}
}

func TestHasFact(t *testing.T) {
	s := testStore(t)
	if !s.HasFact("e4", "r1", "e1") {
		t.Error("existing fact not found")
	}
	if s.HasFact("e1", "r1", "e4") {
		t.Error("reversed fact should not exist")
	}
}

func TestFactDeduplication(t *testing.T) {
	s, err := NewStore(
		[]Entity{{ID: "e1", Name: "a"}, {ID: "e2", Name: "b"}},
		[]Relation{{ID: "r1", Name: "r"}},
		[]Fact{{Subj: "e1", Rel: "r1", Obj: "e2"}, {Subj: "e1", Rel: "r1", Obj: "e2"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Facts()) != 1 {
		t.Errorf("facts = %d, want 1 after dedup", len(s.Facts()))
	}
}

func TestPopularity(t *testing.T) {
	s := testStore(t)
	s.AddAnchor("Maryland", "e1", 90)
	s.AddAnchor("Maryland", "e4", 10) // ambiguous surface form
	if got := s.Popularity("Maryland", "e1"); got != 0.9 {
		t.Errorf("Popularity = %v, want 0.9", got)
	}
	if got := s.Popularity("maryland", "e1"); got != 0.9 {
		t.Errorf("Popularity should normalize case, got %v", got)
	}
	if got := s.Popularity("never seen", "e1"); got != 0 {
		t.Errorf("unseen surface popularity = %v, want 0", got)
	}
	if s.AnchorCount("Maryland") != 100 {
		t.Errorf("AnchorCount = %d, want 100", s.AnchorCount("Maryland"))
	}
}

func TestCandidateEntitiesExactAlias(t *testing.T) {
	s := testStore(t)
	cands := s.CandidateEntities("UMD", 5)
	if len(cands) == 0 || cands[0].ID != "e4" {
		t.Fatalf("CandidateEntities(UMD) = %v, want e4 first", cands)
	}
}

func TestCandidateEntitiesFuzzy(t *testing.T) {
	s := testStore(t)
	// "University of Maryland" shares tokens with both universities and
	// with maryland; e4 has full token recall and must rank first.
	cands := s.CandidateEntities("the University of Maryland", 5)
	if len(cands) == 0 || cands[0].ID != "e4" {
		t.Fatalf("fuzzy candidates = %v, want e4 first", cands)
	}
	found := false
	for _, c := range cands {
		if c.ID == "e3" {
			found = true
		}
	}
	if !found {
		t.Errorf("e3 should appear as fuzzy candidate: %v", cands)
	}
}

func TestCandidateEntitiesPopularityBreaksTies(t *testing.T) {
	s := testStore(t)
	s.AddAnchor("maryland", "e1", 99)
	s.AddAnchor("maryland", "e4", 1)
	cands := s.CandidateEntities("maryland", 2)
	if len(cands) == 0 || cands[0].ID != "e1" {
		t.Fatalf("popularity should rank e1 first: %v", cands)
	}
}

func TestCandidateRelations(t *testing.T) {
	s := testStore(t)
	cands := s.CandidateRelations("located in", 3)
	if len(cands) == 0 || cands[0].ID != "r1" {
		t.Fatalf("CandidateRelations(located in) = %v, want r1 first", cands)
	}
	cands = s.CandidateRelations("be a member of", 3)
	if len(cands) == 0 || cands[0].ID != "r2" {
		t.Fatalf("CandidateRelations(member of) = %v, want r2 first", cands)
	}
}

func TestCandidateLimit(t *testing.T) {
	s := testStore(t)
	cands := s.CandidateEntities("university", 1)
	if len(cands) > 1 {
		t.Errorf("k=1 returned %d candidates", len(cands))
	}
}

func TestDegreeAndFactsAbout(t *testing.T) {
	s := testStore(t)
	if s.Degree("e4") != 2 {
		t.Errorf("Degree(e4) = %d, want 2", s.Degree("e4"))
	}
	if s.Degree("e2") != 2 {
		t.Errorf("Degree(e2) = %d, want 2", s.Degree("e2"))
	}
	if len(s.FactsAbout("e1")) != 1 {
		t.Errorf("FactsAbout(e1) = %v", s.FactsAbout("e1"))
	}
}

func TestNameAlwaysAlias(t *testing.T) {
	s := testStore(t)
	cands := s.CandidateEntities("universitas 21", 3)
	if len(cands) == 0 || cands[0].ID != "e2" {
		t.Errorf("canonical name must be an alias: %v", cands)
	}
}
