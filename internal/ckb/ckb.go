// Package ckb models the curated Knowledge Base (the Freebase/DBpedia
// role in the paper): canonical entities with aliases and types,
// canonical relations with categories, relational facts, and the
// Wikipedia-anchor popularity statistics the f_pop linking signal needs.
// It also provides candidate generation — given an NP (RP) surface
// form, the ranked list of entities (relations) it may denote — which
// bounds the state space of JOCL's linking variables.
package ckb

import (
	"fmt"
	"sort"

	"repro/internal/text"
)

// Entity is a canonical CKB entity.
type Entity struct {
	ID      string
	Name    string   // canonical surface form
	Aliases []string // alternative surface forms (including Name)
	Types   []string // coarse semantic types ("organization", "person", ...)
}

// Relation is a canonical CKB relation.
type Relation struct {
	ID       string
	Name     string   // canonical surface form, e.g. "location.contained by"
	Category string   // coarse category shared by synonymous relations
	Aliases  []string // textual paraphrases of the relation
	Domain   string   // expected subject entity type ("" = unconstrained)
	Range    string   // expected object entity type ("" = unconstrained)
}

// Fact is a relational fact <subject entity, relation, object entity>.
type Fact struct {
	Subj string // entity id
	Rel  string // relation id
	Obj  string // entity id
}

// Store is an immutable curated KB. Build one with NewStore; lookups
// are read-only and safe for concurrent use.
type Store struct {
	entities  map[string]*Entity
	relations map[string]*Relation
	entIDs    []string
	relIDs    []string

	facts   []Fact
	factSet map[Fact]bool

	// aliasIndex maps normalized alias -> entity ids carrying it.
	aliasIndex map[string][]string
	// tokenIndex maps normalized content token -> entity ids whose
	// aliases contain the token; used for fuzzy candidate retrieval.
	tokenIndex map[string][]string

	// relAliasIndex / relTokenIndex mirror the above for relations.
	relAliasIndex map[string][]string
	relTokenIndex map[string][]string

	// anchors[surface][entity] = count of anchor links with that surface
	// form pointing at that entity; anchorTotal[surface] is the row sum.
	anchors     map[string]map[string]int
	anchorTotal map[string]int
}

// NewStore builds a Store from entities, relations, and facts. It
// returns an error on duplicate or dangling identifiers, so corrupt
// synthetic data fails fast instead of skewing experiments.
func NewStore(entities []Entity, relations []Relation, facts []Fact) (*Store, error) {
	s := &Store{
		entities:      make(map[string]*Entity, len(entities)),
		relations:     make(map[string]*Relation, len(relations)),
		factSet:       make(map[Fact]bool, len(facts)),
		aliasIndex:    make(map[string][]string),
		tokenIndex:    make(map[string][]string),
		relAliasIndex: make(map[string][]string),
		relTokenIndex: make(map[string][]string),
		anchors:       make(map[string]map[string]int),
		anchorTotal:   make(map[string]int),
	}
	for i := range entities {
		e := entities[i]
		if _, dup := s.entities[e.ID]; dup {
			return nil, fmt.Errorf("ckb: duplicate entity id %q", e.ID)
		}
		if !contains(e.Aliases, e.Name) {
			e.Aliases = append([]string{e.Name}, e.Aliases...)
		}
		s.entities[e.ID] = &e
		s.entIDs = append(s.entIDs, e.ID)
		for _, a := range e.Aliases {
			key := text.Normalize(a)
			s.aliasIndex[key] = appendUnique(s.aliasIndex[key], e.ID)
			for _, tok := range text.NormalizeTokens(a) {
				s.tokenIndex[tok] = appendUnique(s.tokenIndex[tok], e.ID)
			}
		}
	}
	for i := range relations {
		r := relations[i]
		if _, dup := s.relations[r.ID]; dup {
			return nil, fmt.Errorf("ckb: duplicate relation id %q", r.ID)
		}
		if !contains(r.Aliases, r.Name) {
			r.Aliases = append([]string{r.Name}, r.Aliases...)
		}
		s.relations[r.ID] = &r
		s.relIDs = append(s.relIDs, r.ID)
		for _, a := range r.Aliases {
			key := text.Normalize(a)
			s.relAliasIndex[key] = appendUnique(s.relAliasIndex[key], r.ID)
			for _, tok := range text.NormalizeTokens(a) {
				s.relTokenIndex[tok] = appendUnique(s.relTokenIndex[tok], r.ID)
			}
		}
	}
	sort.Strings(s.entIDs)
	sort.Strings(s.relIDs)
	for _, f := range facts {
		if s.entities[f.Subj] == nil || s.entities[f.Obj] == nil {
			return nil, fmt.Errorf("ckb: fact %v references unknown entity", f)
		}
		if s.relations[f.Rel] == nil {
			return nil, fmt.Errorf("ckb: fact %v references unknown relation", f)
		}
		if !s.factSet[f] {
			s.factSet[f] = true
			s.facts = append(s.facts, f)
		}
	}
	return s, nil
}

func contains(ss []string, x string) bool {
	for _, s := range ss {
		if s == x {
			return true
		}
	}
	return false
}

func appendUnique(ss []string, x string) []string {
	if contains(ss, x) {
		return ss
	}
	return append(ss, x)
}

// Entity returns the entity with the given id, or nil.
func (s *Store) Entity(id string) *Entity { return s.entities[id] }

// Relation returns the relation with the given id, or nil.
func (s *Store) Relation(id string) *Relation { return s.relations[id] }

// EntityIDs returns all entity ids in sorted order.
func (s *Store) EntityIDs() []string { return s.entIDs }

// RelationIDs returns all relation ids in sorted order.
func (s *Store) RelationIDs() []string { return s.relIDs }

// Facts returns all facts.
func (s *Store) Facts() []Fact { return s.facts }

// HasFact reports whether <subj, rel, obj> is a fact in the CKB. This
// backs the paper's fact-inclusion factor U4.
func (s *Store) HasFact(subj, rel, obj string) bool {
	return s.factSet[Fact{Subj: subj, Rel: rel, Obj: obj}]
}

// AddAnchor records count anchor-link occurrences of surface form
// pointing at entity id. The dataset generator calls this while
// synthesizing the corpus; algorithms only read the statistics.
func (s *Store) AddAnchor(surface, entityID string, count int) {
	key := text.Normalize(surface)
	row := s.anchors[key]
	if row == nil {
		row = make(map[string]int)
		s.anchors[key] = row
	}
	row[entityID] += count
	s.anchorTotal[key] += count
}

// Popularity returns count(surface, entity) / count(surface): the prior
// probability that the surface form refers to the entity, estimated
// from anchor statistics (the paper's f_pop). Zero when the surface
// form was never seen as an anchor.
func (s *Store) Popularity(surface, entityID string) float64 {
	key := text.Normalize(surface)
	total := s.anchorTotal[key]
	if total == 0 {
		return 0
	}
	return float64(s.anchors[key][entityID]) / float64(total)
}

// AnchorCount returns count(surface): total anchors with this surface.
func (s *Store) AnchorCount(surface string) int {
	return s.anchorTotal[text.Normalize(surface)]
}

// Candidate is one candidate target with its retrieval score.
type Candidate struct {
	ID    string
	Score float64
}

// CandidateEntities returns up to k candidate entities for the NP
// surface form, ranked by (exact-alias match, anchor popularity, token
// recall). Exact alias matches always precede fuzzy token matches; ties
// break on id for determinism.
func (s *Store) CandidateEntities(np string, k int) []Candidate {
	key := text.Normalize(np)
	scores := make(map[string]float64)
	for _, id := range s.aliasIndex[key] {
		scores[id] = 2 + s.Popularity(np, id)
	}
	toks := text.NormalizeTokens(np)
	if len(toks) > 0 {
		hits := make(map[string]int)
		for _, tok := range toks {
			for _, id := range s.tokenIndex[tok] {
				hits[id]++
			}
		}
		for id, h := range hits {
			fuzzy := float64(h)/float64(len(toks)) + s.Popularity(np, id)
			if fuzzy > scores[id] {
				scores[id] = fuzzy
			}
		}
	}
	return topK(scores, k)
}

// CandidateRelations returns up to k candidate relations for the RP
// surface form, ranked the same way (without popularity, which the
// paper defines only for entities).
func (s *Store) CandidateRelations(rp string, k int) []Candidate {
	key := text.Normalize(rp)
	scores := make(map[string]float64)
	for _, id := range s.relAliasIndex[key] {
		scores[id] = 2
	}
	toks := text.NormalizeTokens(rp)
	if len(toks) > 0 {
		hits := make(map[string]int)
		for _, tok := range toks {
			for _, id := range s.relTokenIndex[tok] {
				hits[id]++
			}
		}
		for id, h := range hits {
			fuzzy := float64(h) / float64(len(toks))
			if fuzzy > scores[id] {
				scores[id] = fuzzy
			}
		}
	}
	return topK(scores, k)
}

func topK(scores map[string]float64, k int) []Candidate {
	cands := make([]Candidate, 0, len(scores))
	for id, sc := range scores {
		cands = append(cands, Candidate{ID: id, Score: sc})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].ID < cands[j].ID
	})
	if k > 0 && len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// FactsAbout returns the facts whose subject or object is the entity.
func (s *Store) FactsAbout(entityID string) []Fact {
	var out []Fact
	for _, f := range s.facts {
		if f.Subj == entityID || f.Obj == entityID {
			out = append(out, f)
		}
	}
	return out
}

// Degree returns the number of facts the entity participates in; the
// EARL-style baseline uses this as connection density.
func (s *Store) Degree(entityID string) int {
	return len(s.FactsAbout(entityID))
}
