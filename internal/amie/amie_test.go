package amie

import (
	"fmt"
	"testing"

	"repro/internal/okb"
)

// capitalStore builds triples where two RP variants assert the same
// (subject, object) pairs, plus an unrelated RP.
func capitalStore(pairs int) *okb.Store {
	var ts []okb.Triple
	for i := 0; i < pairs; i++ {
		s := fmt.Sprintf("city%d", i)
		o := fmt.Sprintf("country%d", i)
		ts = append(ts,
			okb.Triple{Subj: s, Pred: "is the capital of", Obj: o},
			okb.Triple{Subj: s, Pred: "is the capital city of", Obj: o},
		)
	}
	// Unrelated predicate with disjoint pairs.
	for i := 0; i < pairs; i++ {
		ts = append(ts, okb.Triple{
			Subj: fmt.Sprintf("player%d", i), Pred: "plays for", Obj: fmt.Sprintf("team%d", i),
		})
	}
	return okb.NewStore(ts)
}

func TestMineBidirectionalEquivalence(t *testing.T) {
	m := Mine(capitalStore(5), Config{MinSupport: 2, MinConfidence: 0.5})
	if got := m.Sim("is the capital of", "is the capital city of"); got != 1 {
		t.Errorf("Sim(capital variants) = %v, want 1", got)
	}
	if got := m.Sim("is the capital of", "plays for"); got != 0 {
		t.Errorf("Sim(unrelated) = %v, want 0", got)
	}
}

func TestMineSupportThreshold(t *testing.T) {
	// Only one shared pair: below MinSupport 2, no rule.
	m := Mine(capitalStore(1), Config{MinSupport: 2, MinConfidence: 0.5})
	if got := m.Sim("is the capital of", "is the capital city of"); got != 0 {
		t.Errorf("below-support Sim = %v, want 0", got)
	}
	if len(m.Rules()) != 0 {
		t.Errorf("rules = %v, want none", m.Rules())
	}
}

func TestMineConfidenceDirectionality(t *testing.T) {
	// p is a strict subset of q's pairs plus q has many extra pairs:
	// p ⇒ q confident, q ⇒ p not.
	var ts []okb.Triple
	for i := 0; i < 4; i++ {
		s, o := fmt.Sprintf("s%d", i), fmt.Sprintf("o%d", i)
		ts = append(ts,
			okb.Triple{Subj: s, Pred: "founded", Obj: o},
			okb.Triple{Subj: s, Pred: "works at", Obj: o},
		)
	}
	for i := 4; i < 20; i++ {
		ts = append(ts, okb.Triple{
			Subj: fmt.Sprintf("s%d", i), Pred: "works at", Obj: fmt.Sprintf("o%d", i)})
	}
	m := Mine(okb.NewStore(ts), Config{MinSupport: 2, MinConfidence: 0.5})
	if !m.Implies("founded", "works at") {
		t.Error("founded ⇒ works at should hold")
	}
	if m.Implies("works at", "founded") {
		t.Error("works at ⇒ founded should fail confidence")
	}
	if m.Sim("founded", "works at") != 0 {
		t.Error("one-directional implication must not give Sim 1")
	}
}

func TestSimIdenticalNormalized(t *testing.T) {
	m := Mine(okb.NewStore(nil), Config{})
	if m.Sim("was a member of", "be a member of") != 1 {
		t.Error("normalization-identical phrases score 1 without rules")
	}
}

func TestMineNormalizesInput(t *testing.T) {
	// Tense variants of the same predicate contribute to one predicate;
	// the two surface predicates end up trivially equal via normalization
	// and the *other* predicate pair gets rules mined across them.
	var ts []okb.Triple
	for i := 0; i < 3; i++ {
		s, o := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		ts = append(ts,
			okb.Triple{Subj: s, Pred: "was located in", Obj: o},
			okb.Triple{Subj: s, Pred: "sits in", Obj: o},
		)
	}
	m := Mine(okb.NewStore(ts), Config{MinSupport: 2, MinConfidence: 0.5})
	if m.Sim("is located in", "sits in") != 1 {
		t.Error("rules should apply to normalized forms of unseen tenses")
	}
}

func TestRulesSortedAndComplete(t *testing.T) {
	m := Mine(capitalStore(4), Config{MinSupport: 2, MinConfidence: 0.5})
	rules := m.Rules()
	if len(rules) < 2 {
		t.Fatalf("want at least the two capital rules, got %v", rules)
	}
	for i := 1; i < len(rules); i++ {
		if rules[i-1].Body > rules[i].Body {
			t.Error("rules not sorted")
		}
	}
	for _, r := range rules {
		if r.Confidence < 0.5 || r.Support < 2 {
			t.Errorf("rule below thresholds: %+v", r)
		}
		if r.Confidence > 1 {
			t.Errorf("confidence > 1: %+v", r)
		}
	}
}
