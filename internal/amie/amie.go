// Package amie implements the AMIE-style association rule mining
// (Galárraga et al., WWW 2013) the paper uses as an RP
// canonicalization signal: over morphologically normalized OIE triples
// it mines implication rules p_i(x, y) ⇒ p_j(x, y) with support and
// confidence, and declares two relation phrases semantically equal
// (Sim_AMIE = 1) when the implication holds in both directions above
// both thresholds — exactly the paper's usage.
package amie

import (
	"sort"

	"repro/internal/okb"
	"repro/internal/text"
)

// Rule is a mined implication Body ⇒ Head between two normalized
// relation phrases.
type Rule struct {
	Body       string  // normalized RP of the body atom
	Head       string  // normalized RP of the head atom
	Support    int     // #entity pairs satisfying both body and head
	BodySize   int     // #entity pairs satisfying the body
	Confidence float64 // Support / BodySize
}

// Config holds mining thresholds.
type Config struct {
	MinSupport    int     // minimum co-occurring entity pairs (default 2)
	MinConfidence float64 // minimum rule confidence (default 0.5)
}

func (c *Config) defaults() {
	if c.MinSupport <= 0 {
		c.MinSupport = 2
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 0.5
	}
}

// Miner holds the mined rule set and answers equivalence queries.
type Miner struct {
	cfg   Config
	rules map[[2]string]Rule // (body, head) -> rule
	list  []Rule
}

type pairKey struct{ s, o string }

// Mine runs rule mining over the store's triples. Triples are
// normalized first (NPs and RPs), so "was founded by" and "be founded
// by" contribute to the same predicate, as the paper prescribes.
func Mine(store *okb.Store, cfg Config) *Miner {
	cfg.defaults()
	m := &Miner{cfg: cfg, rules: make(map[[2]string]Rule)}

	// pairsOf[rp] = set of normalized (subject, object) pairs.
	pairsOf := make(map[string]map[pairKey]bool)
	for i := 0; i < store.Len(); i++ {
		if store.Dead(i) {
			continue
		}
		t := store.Triple(i)
		rp := text.Normalize(t.Pred)
		pk := pairKey{s: text.Normalize(t.Subj), o: text.Normalize(t.Obj)}
		set := pairsOf[rp]
		if set == nil {
			set = make(map[pairKey]bool)
			pairsOf[rp] = set
		}
		set[pk] = true
	}

	// Invert: entity pair -> predicates asserting it. Candidate rule
	// bodies/heads must share at least one entity pair, so this bounds
	// the pair comparisons to co-occurring predicates only.
	byPair := make(map[pairKey][]string)
	for rp, set := range pairsOf {
		for pk := range set {
			byPair[pk] = append(byPair[pk], rp)
		}
	}
	overlap := make(map[[2]string]int)
	for _, rps := range byPair {
		sort.Strings(rps)
		for i := 0; i < len(rps); i++ {
			for j := 0; j < len(rps); j++ {
				if i != j {
					overlap[[2]string{rps[i], rps[j]}]++
				}
			}
		}
	}

	for key, support := range overlap {
		body, head := key[0], key[1]
		bodySize := len(pairsOf[body])
		if support < cfg.MinSupport || bodySize == 0 {
			continue
		}
		conf := float64(support) / float64(bodySize)
		if conf < cfg.MinConfidence {
			continue
		}
		r := Rule{Body: body, Head: head, Support: support, BodySize: bodySize, Confidence: conf}
		m.rules[key] = r
		m.list = append(m.list, r)
	}
	sort.Slice(m.list, func(i, j int) bool {
		if m.list[i].Body != m.list[j].Body {
			return m.list[i].Body < m.list[j].Body
		}
		return m.list[i].Head < m.list[j].Head
	})
	return m
}

// Rules returns all accepted rules, sorted by (body, head).
func (m *Miner) Rules() []Rule { return m.list }

// Implies reports whether the accepted rule set contains
// normalize(a) ⇒ normalize(b).
func (m *Miner) Implies(a, b string) bool {
	_, ok := m.rules[[2]string{text.Normalize(a), text.Normalize(b)}]
	return ok
}

// Sim returns Sim_AMIE(a, b): 1 when a ⇒ b and b ⇒ a both hold above
// the thresholds, else 0. Identical normalized phrases trivially score 1.
func (m *Miner) Sim(a, b string) float64 {
	na, nb := text.Normalize(a), text.Normalize(b)
	if na == nb {
		return 1
	}
	if m.Implies(na, nb) && m.Implies(nb, na) {
		return 1
	}
	return 0
}
