package okb

import (
	"fmt"
	"sync"
)

// SymbolTable is the persistent string<->int32 interning layer of the
// serving stack. Phrase surface forms are interned once, at the moment
// a triple enters a Store (NewStore/Append), and keep their dense id
// for the lifetime of the table; derived identities (pair variables,
// linking variables — anything built from other symbols rather than
// from text) are interned by (kind, a, b) into the same id space.
// Every layer above — factor signatures, warm message state, partition
// memory, boundary baselines, read-path deltas — keys on these ids
// instead of hashing length-prefixed surface strings per ingest.
//
// Ids are assigned in first-intern order, so a table grown by one
// triple stream is deterministic regardless of batch boundaries. Ids
// are never reused or reassigned; the table only grows. A table rides
// in the session checkpoint (Snapshot/NewSymbolTableFromSnapshot), so
// a restored session resolves the saved warm state's ids without
// re-deriving them.
//
// All methods are safe for concurrent use.
type SymbolTable struct {
	mu      sync.RWMutex
	byStr   map[string]int32
	derived map[DerivedKey]int32
	entries []SymbolEntry
}

// DerivedKey identifies a derived symbol: a caller-chosen kind byte
// plus up to two operand symbol ids (use -1 for an absent operand).
type DerivedKey struct {
	Kind uint8
	A, B int32
}

// SymbolEntry is the serializable definition of one symbol: either a
// surface form (Kind 0) or a derived identity (Kind != 0, built from
// operand ids A and B).
type SymbolEntry struct {
	Surface string
	Kind    uint8
	A, B    int32
}

// SymbolSnapshot is the gob-serializable image of a SymbolTable, in id
// order. It is what checkpoints persist.
type SymbolSnapshot struct {
	Entries []SymbolEntry
}

// NewSymbolTable returns an empty table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{
		byStr:   make(map[string]int32),
		derived: make(map[DerivedKey]int32),
	}
}

// Intern returns the id of the surface form s, assigning the next
// dense id on first sight.
func (t *SymbolTable) Intern(s string) int32 {
	t.mu.RLock()
	id, ok := t.byStr[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.byStr[s]; ok {
		return id
	}
	id = int32(len(t.entries))
	t.byStr[s] = id
	t.entries = append(t.entries, SymbolEntry{Surface: s})
	return id
}

// Lookup returns the id of the surface form s, if interned.
func (t *SymbolTable) Lookup(s string) (int32, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.byStr[s]
	return id, ok
}

// InternDerived returns the id of the derived identity (kind, a, b),
// assigning the next dense id on first sight. kind must be non-zero
// (zero marks surface entries).
func (t *SymbolTable) InternDerived(kind uint8, a, b int32) int32 {
	if kind == 0 {
		panic("okb: derived symbol kind must be non-zero")
	}
	k := DerivedKey{Kind: kind, A: a, B: b}
	t.mu.RLock()
	id, ok := t.derived[k]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.derived[k]; ok {
		return id
	}
	id = int32(len(t.entries))
	t.derived[k] = id
	t.entries = append(t.entries, SymbolEntry{Kind: kind, A: a, B: b})
	return id
}

// Surface resolves an id back to text: the interned surface form for
// plain symbols, a synthesized "k(a|b)" rendering for derived ones,
// and "sym(<id>)" for ids the table does not hold. Only plain symbols
// round-trip; derived renderings are for diagnostics.
func (t *SymbolTable) Surface(id int32) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || int(id) >= len(t.entries) {
		return fmt.Sprintf("sym(%d)", id)
	}
	e := t.entries[id]
	if e.Kind == 0 {
		return e.Surface
	}
	return fmt.Sprintf("%c(%d|%d)", e.Kind, e.A, e.B)
}

// Len returns the number of symbols interned so far.
func (t *SymbolTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Snapshot captures the table's entries in id order for serialization.
// The snapshot is an independent copy; the table may keep growing.
func (t *SymbolTable) Snapshot() *SymbolSnapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	sn := &SymbolSnapshot{Entries: make([]SymbolEntry, len(t.entries))}
	copy(sn.Entries, t.entries)
	return sn
}

// NewSymbolTableFromSnapshot rebuilds a table from a snapshot, with
// every id exactly where the snapshot recorded it. A nil snapshot
// yields an empty table.
func NewSymbolTableFromSnapshot(sn *SymbolSnapshot) (*SymbolTable, error) {
	t := NewSymbolTable()
	if sn == nil {
		return t, nil
	}
	t.entries = make([]SymbolEntry, len(sn.Entries))
	copy(t.entries, sn.Entries)
	for i, e := range t.entries {
		id := int32(i)
		if e.Kind == 0 {
			if prev, dup := t.byStr[e.Surface]; dup {
				return nil, fmt.Errorf("okb: symbol snapshot defines surface %q at both %d and %d", e.Surface, prev, id)
			}
			t.byStr[e.Surface] = id
			continue
		}
		k := DerivedKey{Kind: e.Kind, A: e.A, B: e.B}
		if prev, dup := t.derived[k]; dup {
			return nil, fmt.Errorf("okb: symbol snapshot defines derived (%d,%d,%d) at both %d and %d", e.Kind, e.A, e.B, prev, id)
		}
		t.derived[k] = id
	}
	return t, nil
}
