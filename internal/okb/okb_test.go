package okb

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sample() []Triple {
	return []Triple{
		{Subj: "University of Maryland", Pred: "locate in", Obj: "Maryland",
			GoldSubj: "e4", GoldPred: "r1", GoldObj: "e1"},
		{Subj: "UMD", Pred: "be a member of", Obj: "Universitas 21",
			GoldSubj: "e4", GoldPred: "r2", GoldObj: "e2"},
		{Subj: "University of Virginia", Pred: "be an early member of", Obj: "U21",
			GoldSubj: "e3", GoldPred: "r2", GoldObj: "e2"},
	}
}

func TestStoreIndexes(t *testing.T) {
	s := NewStore(sample())
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if got := len(s.NPs()); got != 6 {
		t.Errorf("distinct NPs = %d, want 6: %v", got, s.NPs())
	}
	if got := len(s.RPs()); got != 3 {
		t.Errorf("distinct RPs = %d, want 3: %v", got, s.RPs())
	}
	// NPs are sorted.
	nps := s.NPs()
	for i := 1; i < len(nps); i++ {
		if nps[i-1] >= nps[i] {
			t.Errorf("NPs not sorted at %d: %q >= %q", i, nps[i-1], nps[i])
		}
	}
}

func TestStoreMentions(t *testing.T) {
	s := NewStore(sample())
	ms := s.NPMentions("UMD")
	if len(ms) != 1 || ms[0].Triple != 1 || ms[0].Slot != SubjSlot {
		t.Errorf("NPMentions(UMD) = %v", ms)
	}
	if got := s.NPOf(ms[0]); got != "UMD" {
		t.Errorf("NPOf = %q", got)
	}
	if got := s.GoldNP(ms[0]); got != "e4" {
		t.Errorf("GoldNP = %q, want e4", got)
	}
	rp := s.RPMentions("be a member of")
	if !reflect.DeepEqual(rp, []int{1}) {
		t.Errorf("RPMentions = %v", rp)
	}
}

func TestStoreIDReassignment(t *testing.T) {
	ts := sample()
	ts[0].ID = 99
	s := NewStore(ts)
	if s.Triple(0).ID != 0 {
		t.Errorf("IDs should be reassigned to index, got %d", s.Triple(0).ID)
	}
}

func TestTSVRoundTrip(t *testing.T) {
	s := NewStore(sample())
	var buf bytes.Buffer
	if err := s.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Triples()
	if !reflect.DeepEqual(NewStore(got).Triples(), want) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestReadTSVFourColumn(t *testing.T) {
	in := "0\tA\tloves\tB\n# comment\n\n1\tC\thates\tD\n"
	ts, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("got %d triples, want 2", len(ts))
	}
	if ts[0].Subj != "A" || ts[0].GoldSubj != "" {
		t.Errorf("unexpected first triple %v", ts[0])
	}
}

func TestReadTSVBadColumns(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader("0\tA\tB\n")); err == nil {
		t.Error("want error for 3-column row")
	}
}

func TestSlotString(t *testing.T) {
	if SubjSlot.String() != "subj" || PredSlot.String() != "pred" || ObjSlot.String() != "obj" {
		t.Error("slot names wrong")
	}
}

func TestIDFTablesBuilt(t *testing.T) {
	s := NewStore(sample())
	// "of" appears in multiple NPs; must be frequent in NP table.
	if s.NPIDF().Freq("maryland") == 0 {
		t.Error("NP IDF table missing maryland")
	}
	if s.RPIDF().Freq("member") != 2 {
		t.Errorf("RP IDF freq(member) = %d, want 2", s.RPIDF().Freq("member"))
	}
	// Overlap of the running example's member phrases is high.
	if sim := s.RPIDF().Overlap("be a member of", "be an early member of"); sim < 0.4 {
		t.Errorf("member-phrase overlap = %v, want >= 0.4", sim)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := NewStore(sample())
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(NewStore(got).Triples(), s.Triples()) {
		t.Error("JSON round trip mismatch")
	}
}

func TestReadJSONValidation(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`[{"subject":"a","predicate":"","object":"b"}]`)); err == nil {
		t.Error("want error for empty predicate")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("want error for malformed JSON")
	}
}

func TestAppendGrowsWithoutMutatingReceiver(t *testing.T) {
	s := NewStore(sample())
	more := []Triple{{Subj: "UVA", Pred: "locate in", Obj: "Virginia"}}
	grown := s.Append(more, false)

	if s.Len() != 3 {
		t.Fatalf("receiver mutated: Len = %d, want 3", s.Len())
	}
	if grown.Len() != 4 {
		t.Fatalf("grown Len = %d, want 4", grown.Len())
	}
	if got := len(grown.NPs()); got != 8 {
		t.Errorf("grown distinct NPs = %d, want 8: %v", got, grown.NPs())
	}
	if len(grown.NPMentions("UVA")) != 1 {
		t.Errorf("new NP not indexed: %v", grown.NPMentions("UVA"))
	}
	if len(grown.RPMentions("locate in")) != 2 {
		t.Errorf("appended mention not indexed: %v", grown.RPMentions("locate in"))
	}
	if len(s.NPMentions("UVA")) != 0 {
		t.Errorf("receiver index mutated by Append")
	}
}

func TestAppendFreezeIDFKeepsEpochTables(t *testing.T) {
	s := NewStore(sample())
	more := []Triple{
		{Subj: "Maryland", Pred: "border", Obj: "Virginia"},
		{Subj: "Maryland", Pred: "border", Obj: "Delaware"},
	}
	frozen := s.Append(more, true)
	recount := s.Append(more, false)

	if frozen.NPIDF() != s.NPIDF() || frozen.RPIDF() != s.RPIDF() {
		t.Errorf("freezeIDF must reuse the receiver's IDF tables")
	}
	// The frozen table scores existing pairs exactly as before the
	// append; the recounted table shifts with the new occurrences.
	a, b := "University of Maryland", "Maryland"
	if got, want := frozen.NPIDF().Overlap(a, b), s.NPIDF().Overlap(a, b); got != want {
		t.Errorf("frozen overlap %v != pre-append %v", got, want)
	}
	if recount.NPIDF().Overlap(a, b) == s.NPIDF().Overlap(a, b) {
		t.Errorf("recounted overlap unchanged; expected drift from new Maryland occurrences")
	}
}
