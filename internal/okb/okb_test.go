package okb

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sample() []Triple {
	return []Triple{
		{Subj: "University of Maryland", Pred: "locate in", Obj: "Maryland",
			GoldSubj: "e4", GoldPred: "r1", GoldObj: "e1"},
		{Subj: "UMD", Pred: "be a member of", Obj: "Universitas 21",
			GoldSubj: "e4", GoldPred: "r2", GoldObj: "e2"},
		{Subj: "University of Virginia", Pred: "be an early member of", Obj: "U21",
			GoldSubj: "e3", GoldPred: "r2", GoldObj: "e2"},
	}
}

func TestStoreIndexes(t *testing.T) {
	s := NewStore(sample())
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if got := len(s.NPs()); got != 6 {
		t.Errorf("distinct NPs = %d, want 6: %v", got, s.NPs())
	}
	if got := len(s.RPs()); got != 3 {
		t.Errorf("distinct RPs = %d, want 3: %v", got, s.RPs())
	}
	// NPs are sorted.
	nps := s.NPs()
	for i := 1; i < len(nps); i++ {
		if nps[i-1] >= nps[i] {
			t.Errorf("NPs not sorted at %d: %q >= %q", i, nps[i-1], nps[i])
		}
	}
}

func TestStoreMentions(t *testing.T) {
	s := NewStore(sample())
	ms := s.NPMentions("UMD")
	if len(ms) != 1 || ms[0].Triple != 1 || ms[0].Slot != SubjSlot {
		t.Errorf("NPMentions(UMD) = %v", ms)
	}
	if got := s.NPOf(ms[0]); got != "UMD" {
		t.Errorf("NPOf = %q", got)
	}
	if got := s.GoldNP(ms[0]); got != "e4" {
		t.Errorf("GoldNP = %q, want e4", got)
	}
	rp := s.RPMentions("be a member of")
	if !reflect.DeepEqual(rp, []int{1}) {
		t.Errorf("RPMentions = %v", rp)
	}
}

func TestStoreIDReassignment(t *testing.T) {
	ts := sample()
	ts[0].ID = 99
	s := NewStore(ts)
	if s.Triple(0).ID != 0 {
		t.Errorf("IDs should be reassigned to index, got %d", s.Triple(0).ID)
	}
}

func TestTSVRoundTrip(t *testing.T) {
	s := NewStore(sample())
	var buf bytes.Buffer
	if err := s.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Triples()
	if !reflect.DeepEqual(NewStore(got).Triples(), want) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestReadTSVFourColumn(t *testing.T) {
	in := "0\tA\tloves\tB\n# comment\n\n1\tC\thates\tD\n"
	ts, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("got %d triples, want 2", len(ts))
	}
	if ts[0].Subj != "A" || ts[0].GoldSubj != "" {
		t.Errorf("unexpected first triple %v", ts[0])
	}
}

func TestReadTSVBadColumns(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader("0\tA\tB\n")); err == nil {
		t.Error("want error for 3-column row")
	}
}

func TestSlotString(t *testing.T) {
	if SubjSlot.String() != "subj" || PredSlot.String() != "pred" || ObjSlot.String() != "obj" {
		t.Error("slot names wrong")
	}
}

func TestIDFTablesBuilt(t *testing.T) {
	s := NewStore(sample())
	// "of" appears in multiple NPs; must be frequent in NP table.
	if s.NPIDF().Freq("maryland") == 0 {
		t.Error("NP IDF table missing maryland")
	}
	if s.RPIDF().Freq("member") != 2 {
		t.Errorf("RP IDF freq(member) = %d, want 2", s.RPIDF().Freq("member"))
	}
	// Overlap of the running example's member phrases is high.
	if sim := s.RPIDF().Overlap("be a member of", "be an early member of"); sim < 0.4 {
		t.Errorf("member-phrase overlap = %v, want >= 0.4", sim)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := NewStore(sample())
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(NewStore(got).Triples(), s.Triples()) {
		t.Error("JSON round trip mismatch")
	}
}

func TestReadJSONValidation(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`[{"subject":"a","predicate":"","object":"b"}]`)); err == nil {
		t.Error("want error for empty predicate")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("want error for malformed JSON")
	}
}

func TestAppendGrowsWithoutMutatingReceiver(t *testing.T) {
	s := NewStore(sample())
	more := []Triple{{Subj: "UVA", Pred: "locate in", Obj: "Virginia"}}
	grown := s.Append(more, false)

	if s.Len() != 3 {
		t.Fatalf("receiver mutated: Len = %d, want 3", s.Len())
	}
	if grown.Len() != 4 {
		t.Fatalf("grown Len = %d, want 4", grown.Len())
	}
	if got := len(grown.NPs()); got != 8 {
		t.Errorf("grown distinct NPs = %d, want 8: %v", got, grown.NPs())
	}
	if len(grown.NPMentions("UVA")) != 1 {
		t.Errorf("new NP not indexed: %v", grown.NPMentions("UVA"))
	}
	if len(grown.RPMentions("locate in")) != 2 {
		t.Errorf("appended mention not indexed: %v", grown.RPMentions("locate in"))
	}
	if len(s.NPMentions("UVA")) != 0 {
		t.Errorf("receiver index mutated by Append")
	}
}

func TestAppendFreezeIDFKeepsEpochTables(t *testing.T) {
	s := NewStore(sample())
	more := []Triple{
		{Subj: "Maryland", Pred: "border", Obj: "Virginia"},
		{Subj: "Maryland", Pred: "border", Obj: "Delaware"},
	}
	frozen := s.Append(more, true)
	recount := s.Append(more, false)

	if frozen.NPIDF() != s.NPIDF() || frozen.RPIDF() != s.RPIDF() {
		t.Errorf("freezeIDF must reuse the receiver's IDF tables")
	}
	// The frozen table scores existing pairs exactly as before the
	// append; the recounted table shifts with the new occurrences.
	a, b := "University of Maryland", "Maryland"
	if got, want := frozen.NPIDF().Overlap(a, b), s.NPIDF().Overlap(a, b); got != want {
		t.Errorf("frozen overlap %v != pre-append %v", got, want)
	}
	if recount.NPIDF().Overlap(a, b) == s.NPIDF().Overlap(a, b) {
		t.Errorf("recounted overlap unchanged; expected drift from new Maryland occurrences")
	}
}

// appendEquivalent asserts that an incrementally grown store answers
// every lookup exactly like a from-scratch store over the same triples
// (IDF aside, which the frozen path pins by design).
func appendEquivalent(t *testing.T, grown *Store, all []Triple) {
	t.Helper()
	want := NewStore(all)
	if grown.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", grown.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if !reflect.DeepEqual(grown.Triple(i), want.Triple(i)) {
			t.Fatalf("Triple(%d) = %+v, want %+v", i, grown.Triple(i), want.Triple(i))
		}
	}
	if !reflect.DeepEqual(grown.NPs(), want.NPs()) {
		t.Fatalf("NPs = %v, want %v", grown.NPs(), want.NPs())
	}
	if !reflect.DeepEqual(grown.RPs(), want.RPs()) {
		t.Fatalf("RPs = %v, want %v", grown.RPs(), want.RPs())
	}
	for _, np := range want.NPs() {
		if !reflect.DeepEqual(grown.NPMentions(np), want.NPMentions(np)) {
			t.Fatalf("NPMentions(%q) = %v, want %v", np, grown.NPMentions(np), want.NPMentions(np))
		}
	}
	for _, rp := range want.RPs() {
		if !reflect.DeepEqual(grown.RPMentions(rp), want.RPMentions(rp)) {
			t.Fatalf("RPMentions(%q) = %v, want %v", rp, grown.RPMentions(rp), want.RPMentions(rp))
		}
	}
	if grown.NPMentions("no such surface") != nil || grown.RPMentions("no such surface") != nil {
		t.Fatalf("unknown surfaces must answer empty")
	}
}

func TestAppendIncrementalSharesPrefix(t *testing.T) {
	base := NewStore(sample())
	more := []Triple{
		{Subj: "UVA", Pred: "locate in", Obj: "Virginia"},
		{Subj: "University of Maryland", Pred: "locate in", Obj: "Maryland"},
	}
	grown := base.Append(more, true)

	// The frozen tables are the receiver's, by pointer — no recount.
	if grown.NPIDF() != base.NPIDF() || grown.RPIDF() != base.RPIDF() {
		t.Fatalf("frozen Append must share the receiver's IDF tables")
	}
	// Untouched surfaces are served from the shared parent index: the
	// very same slice, not a rebuilt copy.
	untouched := "University of Virginia"
	bm, gm := base.NPMentions(untouched), grown.NPMentions(untouched)
	if len(bm) == 0 || len(gm) != len(bm) || &gm[0] != &bm[0] {
		t.Fatalf("untouched mention list was re-indexed: base %v grown %v", bm, gm)
	}
	// Touched surfaces hold merged lists without mutating the parent.
	if got := len(grown.NPMentions("University of Maryland")); got != 2 {
		t.Fatalf("merged mention count = %d, want 2", got)
	}
	if got := len(base.NPMentions("University of Maryland")); got != 1 {
		t.Fatalf("receiver mutated by Append: %d mentions", got)
	}
	appendEquivalent(t, grown, append(base.Triples(), more...))
}

func TestAppendChainFlattensAndStaysEquivalent(t *testing.T) {
	all := sample()
	s := NewStore(all)
	epochNPIDF := s.NPIDF()
	for i := 0; i < 3*maxAppendDepth; i++ {
		batch := []Triple{
			{Subj: fmt.Sprintf("entity %d", i), Pred: "relate to", Obj: "Maryland"},
			{Subj: "UMD", Pred: fmt.Sprintf("verb %d", i%5), Obj: fmt.Sprintf("entity %d", i)},
		}
		s = s.Append(batch, true)
		all = append(all, batch...)
		if s.depth > maxAppendDepth {
			t.Fatalf("append %d: chain depth %d exceeds cap %d", i, s.depth, maxAppendDepth)
		}
	}
	if s.NPIDF() != epochNPIDF {
		t.Fatalf("flatten must keep the frozen epoch IDF tables")
	}
	appendEquivalent(t, s, all)
}

func TestAppendSiblingsOnOneReceiver(t *testing.T) {
	// Two Appends on the same store must not interfere, whichever one
	// claims the receiver's spare backing capacity.
	base := NewStore(sample()).Append([]Triple{
		{Subj: "UVA", Pred: "locate in", Obj: "Virginia"},
	}, true)
	a := base.Append([]Triple{{Subj: "a corp", Pred: "acquire", Obj: "b corp"}}, true)
	b := base.Append([]Triple{{Subj: "c corp", Pred: "sue", Obj: "d corp"}}, true)
	appendEquivalent(t, a, append(base.Triples(), Triple{Subj: "a corp", Pred: "acquire", Obj: "b corp"}))
	appendEquivalent(t, b, append(base.Triples(), Triple{Subj: "c corp", Pred: "sue", Obj: "d corp"}))
	if base.Len() != 4 {
		t.Fatalf("receiver mutated: Len = %d", base.Len())
	}
}

// syntheticTriples builds n triples over a vocabulary wide enough that
// indexing cost is dominated by per-triple work.
func syntheticTriples(n int) []Triple {
	out := make([]Triple, n)
	for i := range out {
		out[i] = Triple{
			Subj: fmt.Sprintf("subject phrase %d", i%1500),
			Pred: fmt.Sprintf("verb phrase %d", i%120),
			Obj:  fmt.Sprintf("object phrase %d", (i+7)%1500),
		}
	}
	return out
}

func TestAppendCostTracksBatchNotStore(t *testing.T) {
	// The old Append re-ran NewStore over the whole collection, so its
	// cost grew with the accumulated KB. The incremental path indexes
	// only the batch; appending a small batch to a large store must be
	// far cheaper than rebuilding that store, with a generous margin so
	// scheduler noise cannot flake the assertion.
	big := NewStore(syntheticTriples(20000))
	batch := syntheticTriples(50)

	best := func(run func()) time.Duration {
		b := time.Duration(1<<62 - 1)
		for i := 0; i < 5; i++ {
			t0 := time.Now()
			run()
			if d := time.Since(t0); d < b {
				b = d
			}
		}
		return b
	}
	appendCost := best(func() { big.Append(batch, true) })
	rebuildCost := best(func() { NewStore(big.Triples()) })
	if appendCost*5 > rebuildCost {
		t.Errorf("Append(%d triples onto %d) took %v vs %v full rebuild; want at least 5x cheaper",
			len(batch), big.Len(), appendCost, rebuildCost)
	}
}
