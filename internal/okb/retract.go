package okb

import "sort"

// Retraction describes what one Retract/RetractIDs call removed: the
// tombstoned positions and the surface forms whose last live mention
// went with them (they leave the store's NPs/RPs lists; their symbol
// ids remain interned and are never reused).
type Retraction struct {
	// IDs are the newly tombstoned triple positions, ascending.
	IDs []int
	// RemovedNPs / RemovedRPs are the surfaces with no live mentions
	// left after this retraction, in sorted order.
	RemovedNPs []string
	RemovedRPs []string
}

// Empty reports whether the retraction removed nothing.
func (r Retraction) Empty() bool { return len(r.IDs) == 0 }

// Retract supersedes triples by (S,P,O) identity: every live triple
// whose subject, predicate, and object equal a batch member is
// tombstoned. Gold columns and positions are ignored for matching —
// a retraction names content, not a specific occurrence, so duplicate
// extractions of one fact all go at once. The receiver is unchanged
// (stores stay immutable); the returned store shares everything except
// the touched surfaces' mention lists. Batch members that match no
// live triple are silently skipped — callers that must reject unknown
// retractions check Retraction.IDs against their own expectations.
func (s *Store) Retract(batch []Triple) (*Store, Retraction) {
	seen := make(map[int]struct{})
	var ids []int
	for _, b := range batch {
		for _, m := range s.NPMentions(b.Subj) {
			if m.Slot != SubjSlot {
				continue
			}
			t := &s.triples[m.Triple]
			if t.Pred != b.Pred || t.Obj != b.Obj {
				continue
			}
			if _, dup := seen[m.Triple]; dup {
				continue
			}
			seen[m.Triple] = struct{}{}
			ids = append(ids, m.Triple)
		}
	}
	return s.RetractIDs(ids)
}

// RetractIDs tombstones the given triple positions. Out-of-range and
// already-dead positions are ignored. The returned store is a shrink-
// aware overlay: the physical triples array is shared untouched (dead
// positions stay dereferenceable for as-of readers), the touched
// surfaces' mention lists are rewritten without the dead ids, surfaces
// left without live mentions drop out of NPs/RPs, and the frozen IDF
// tables are kept as-is — the epoch statistics saw the retracted
// triples and stay frozen until the next refresh recounts over live
// triples only (NewStoreRetaining).
func (s *Store) RetractIDs(ids []int) (*Store, Retraction) {
	gone := make(map[int]struct{}, len(ids))
	for _, id := range ids {
		if id < 0 || id >= len(s.triples) {
			continue
		}
		if _, dead := s.dead[id]; dead {
			continue
		}
		gone[id] = struct{}{}
	}
	if len(gone) == 0 {
		return s, Retraction{}
	}

	dead := make(map[int]struct{}, s.nDead+len(gone))
	for id := range s.dead {
		dead[id] = struct{}{}
	}
	for id := range gone {
		dead[id] = struct{}{}
	}
	out := &Store{
		triples:    s.triples,
		npMentions: make(map[string][]Mention, 2*len(gone)),
		rpMentions: make(map[string][]int, len(gone)),
		npIDF:      s.npIDF,
		rpIDF:      s.rpIDF,
		syms:       s.syms,
		parent:     s,
		depth:      s.depth + 1,
		dead:       dead,
		nDead:      len(dead),
	}
	// The overlay shares s's backing array at the same length. Exactly
	// one store per array may grow it in place: claim s's right if it is
	// still unclaimed, otherwise force out to copy on its next Append.
	if !s.extended.CompareAndSwap(false, true) {
		out.extended.Store(true)
	}

	ret := Retraction{IDs: make([]int, 0, len(gone))}
	for id := range gone {
		ret.IDs = append(ret.IDs, id)
	}
	sort.Ints(ret.IDs)

	touchedNP := make(map[string]struct{}, 2*len(gone))
	touchedRP := make(map[string]struct{}, len(gone))
	for id := range gone {
		t := &s.triples[id]
		touchedNP[t.Subj] = struct{}{}
		touchedNP[t.Obj] = struct{}{}
		touchedRP[t.Pred] = struct{}{}
	}
	for np := range touchedNP {
		old := s.NPMentions(np)
		kept := make([]Mention, 0, len(old))
		for _, m := range old {
			if _, g := gone[m.Triple]; !g {
				kept = append(kept, m)
			}
		}
		if len(kept) == 0 {
			// An explicit nil entry: lookups stop here instead of falling
			// through to the parent's stale list, and a later Append sees
			// the surface as brand new.
			out.npMentions[np] = nil
			ret.RemovedNPs = append(ret.RemovedNPs, np)
			continue
		}
		out.npMentions[np] = kept[:len(kept):len(kept)]
	}
	for rp := range touchedRP {
		old := s.RPMentions(rp)
		kept := make([]int, 0, len(old))
		for _, ti := range old {
			if _, g := gone[ti]; !g {
				kept = append(kept, ti)
			}
		}
		if len(kept) == 0 {
			out.rpMentions[rp] = nil
			ret.RemovedRPs = append(ret.RemovedRPs, rp)
			continue
		}
		out.rpMentions[rp] = kept[:len(kept):len(kept)]
	}
	sort.Strings(ret.RemovedNPs)
	sort.Strings(ret.RemovedRPs)
	out.nps = removeSorted(s.nps, ret.RemovedNPs)
	out.rps = removeSorted(s.rps, ret.RemovedRPs)
	if out.depth >= maxAppendDepth {
		out.flatten()
	}
	return out, ret
}

// removeSorted returns sorted minus gone (both sorted ascending). The
// input slices are unchanged; with nothing to remove the original
// slice is returned as-is.
func removeSorted(sorted, gone []string) []string {
	if len(gone) == 0 {
		return sorted
	}
	out := make([]string, 0, len(sorted)-len(gone))
	j := 0
	for _, v := range sorted {
		for j < len(gone) && gone[j] < v {
			j++
		}
		if j < len(gone) && gone[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}
