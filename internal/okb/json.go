package okb

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonTriple is the JSON wire form of a Triple (gold columns optional).
type jsonTriple struct {
	Subject   string `json:"subject"`
	Predicate string `json:"predicate"`
	Object    string `json:"object"`
	GoldSubj  string `json:"gold_subject,omitempty"`
	GoldPred  string `json:"gold_predicate,omitempty"`
	GoldObj   string `json:"gold_object,omitempty"`
}

// WriteJSON writes the triples as a JSON array.
func (s *Store) WriteJSON(w io.Writer) error {
	out := make([]jsonTriple, s.Len())
	for i := range out {
		t := s.Triple(i)
		out[i] = jsonTriple{
			Subject: t.Subj, Predicate: t.Pred, Object: t.Obj,
			GoldSubj: t.GoldSubj, GoldPred: t.GoldPred, GoldObj: t.GoldObj,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses triples from a JSON array produced by WriteJSON.
func ReadJSON(r io.Reader) ([]Triple, error) {
	var in []jsonTriple
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("okb: decoding triples JSON: %w", err)
	}
	out := make([]Triple, len(in))
	for i, t := range in {
		if t.Subject == "" || t.Predicate == "" || t.Object == "" {
			return nil, fmt.Errorf("okb: triple %d: empty subject/predicate/object", i)
		}
		out[i] = Triple{
			Subj: t.Subject, Pred: t.Predicate, Obj: t.Object,
			GoldSubj: t.GoldSubj, GoldPred: t.GoldPred, GoldObj: t.GoldObj,
		}
	}
	return out, nil
}
