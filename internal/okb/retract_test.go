package okb

import (
	"reflect"
	"testing"
)

// retractSample has a duplicate extraction of one fact (ids 0 and 2)
// and a surface ("Maryland") that appears in two triples, so a single
// retraction exercises supersede-by-content, partial mention rewrites,
// and last-mention removal at once.
func retractSample() []Triple {
	return []Triple{
		{Subj: "University of Maryland", Pred: "locate in", Obj: "Maryland"},
		{Subj: "UMD", Pred: "be a member of", Obj: "Universitas 21"},
		{Subj: "University of Maryland", Pred: "locate in", Obj: "Maryland"},
		{Subj: "Johns Hopkins", Pred: "locate in", Obj: "Maryland"},
	}
}

func TestRetractSupersedesBySPO(t *testing.T) {
	s := NewStore(retractSample())
	out, ret := s.Retract([]Triple{{Subj: "University of Maryland", Pred: "locate in", Obj: "Maryland"}})

	// Both duplicate extractions of the fact go at once.
	if !reflect.DeepEqual(ret.IDs, []int{0, 2}) {
		t.Fatalf("retracted ids = %v, want [0 2]", ret.IDs)
	}
	// "University of Maryland" had no other live mention; "Maryland" and
	// "locate in" survive through id 3.
	if !reflect.DeepEqual(ret.RemovedNPs, []string{"University of Maryland"}) {
		t.Errorf("RemovedNPs = %v, want [University of Maryland]", ret.RemovedNPs)
	}
	if len(ret.RemovedRPs) != 0 {
		t.Errorf("RemovedRPs = %v, want none", ret.RemovedRPs)
	}

	// Dead positions stay physically present and dereferenceable.
	if out.Len() != 4 || out.LiveLen() != 2 || out.DeadCount() != 2 {
		t.Errorf("Len/LiveLen/DeadCount = %d/%d/%d, want 4/2/2", out.Len(), out.LiveLen(), out.DeadCount())
	}
	if !out.Dead(0) || out.Dead(1) || !out.Dead(2) || out.Dead(3) {
		t.Errorf("dead flags wrong: %v", out.DeadIDs())
	}
	if got := out.Triple(0).Subj; got != "University of Maryland" {
		t.Errorf("dead triple no longer dereferenceable: %q", got)
	}

	// Removed surfaces drop out of the live views; shared surfaces keep
	// only their live mentions.
	for _, np := range out.NPs() {
		if np == "University of Maryland" {
			t.Errorf("removed NP still listed in NPs()")
		}
	}
	if ms := out.NPMentions("University of Maryland"); len(ms) != 0 {
		t.Errorf("removed NP still has mentions: %v", ms)
	}
	if ms := out.NPMentions("Maryland"); len(ms) != 1 || ms[0].Triple != 3 {
		t.Errorf("Maryland mentions = %v, want only triple 3", ms)
	}
	if ms := out.RPMentions("locate in"); len(ms) != 1 || ms[0] != 3 {
		t.Errorf("locate in mentions = %v, want [3]", ms)
	}

	// The receiver is immutable: the pre-retraction store still serves
	// everything live.
	if s.DeadCount() != 0 || s.LiveLen() != 4 {
		t.Errorf("receiver mutated: dead=%d live=%d", s.DeadCount(), s.LiveLen())
	}
	if ms := s.NPMentions("University of Maryland"); len(ms) != 2 {
		t.Errorf("receiver lost mentions: %v", ms)
	}
}

func TestRetractIDsIgnoresOutOfRangeAndDead(t *testing.T) {
	s := NewStore(retractSample())
	s1, ret := s.RetractIDs([]int{1})
	if !reflect.DeepEqual(ret.IDs, []int{1}) {
		t.Fatalf("first retraction = %v", ret.IDs)
	}
	// Out-of-range and already-dead ids are skipped; matching nothing
	// returns the receiver itself with an empty retraction.
	s2, ret2 := s1.RetractIDs([]int{-1, 99, 1})
	if !ret2.Empty() {
		t.Errorf("no-op retraction reported removals: %+v", ret2)
	}
	if s2 != s1 {
		t.Errorf("no-op retraction allocated a new store")
	}
}

func TestRetractThenAppendNeverReusesIDs(t *testing.T) {
	s := NewStore(retractSample())
	s1, ret := s.Retract([]Triple{{Subj: "UMD", Pred: "be a member of", Obj: "Universitas 21"}})
	if !reflect.DeepEqual(ret.IDs, []int{1}) {
		t.Fatalf("retracted ids = %v, want [1]", ret.IDs)
	}
	if !reflect.DeepEqual(ret.RemovedNPs, []string{"UMD", "Universitas 21"}) {
		t.Fatalf("RemovedNPs = %v", ret.RemovedNPs)
	}

	// Re-adding the same surface appends at a fresh position: the dead
	// id stays dead, and the surface's mentions list holds only the new
	// occurrence — it came back as a brand-new phrase.
	s2 := s1.Append([]Triple{{Subj: "UMD", Pred: "locate in", Obj: "Maryland"}}, true)
	if s2.Len() != 5 || s2.LiveLen() != 4 {
		t.Fatalf("Len/LiveLen = %d/%d, want 5/4", s2.Len(), s2.LiveLen())
	}
	if !s2.Dead(1) {
		t.Errorf("dead id resurrected by append")
	}
	ms := s2.NPMentions("UMD")
	if len(ms) != 1 || ms[0].Triple != 4 {
		t.Errorf("re-added surface mentions = %v, want only the new triple 4", ms)
	}
}

func TestRetractOverlayDoesNotShareParentGrowth(t *testing.T) {
	// The retraction overlay claims the parent's right to grow the
	// shared backing array: an Append on the parent afterwards must
	// copy, leaving the overlay's view intact.
	s := NewStore(retractSample())
	s1, _ := s.RetractIDs([]int{3})
	s2 := s.Append([]Triple{{Subj: "Gallaudet", Pred: "locate in", Obj: "Washington"}}, true)

	if s1.Len() != 4 || s1.LiveLen() != 3 {
		t.Errorf("overlay grew under parent append: Len/LiveLen = %d/%d", s1.Len(), s1.LiveLen())
	}
	if s2.Len() != 5 || s2.DeadCount() != 0 {
		t.Errorf("parent append lost triples or inherited tombstones: Len=%d dead=%d", s2.Len(), s2.DeadCount())
	}
	if ms := s2.NPMentions("Johns Hopkins"); len(ms) != 1 {
		t.Errorf("parent lineage lost the triple the overlay tombstoned: %v", ms)
	}
}

func TestNewStoreRetainingMatchesRetractedViews(t *testing.T) {
	triples := retractSample()
	s := NewStore(triples)
	overlay, ret := s.Retract([]Triple{{Subj: "University of Maryland", Pred: "locate in", Obj: "Maryland"}})

	// A from-scratch build excluding the dead set serves the same live
	// views the overlay does — the restore path depends on it.
	rebuilt := NewStoreRetaining(s.Triples(), ret.IDs, s.Symbols())
	if !reflect.DeepEqual(rebuilt.NPs(), overlay.NPs()) {
		t.Errorf("NPs diverge:\nrebuilt %v\noverlay %v", rebuilt.NPs(), overlay.NPs())
	}
	if !reflect.DeepEqual(rebuilt.RPs(), overlay.RPs()) {
		t.Errorf("RPs diverge:\nrebuilt %v\noverlay %v", rebuilt.RPs(), overlay.RPs())
	}
	if !reflect.DeepEqual(rebuilt.DeadIDs(), overlay.DeadIDs()) {
		t.Errorf("dead sets diverge: %v vs %v", rebuilt.DeadIDs(), overlay.DeadIDs())
	}
	for _, np := range rebuilt.NPs() {
		if !reflect.DeepEqual(rebuilt.NPMentions(np), overlay.NPMentions(np)) {
			t.Errorf("NPMentions(%q) diverge: %v vs %v", np, rebuilt.NPMentions(np), overlay.NPMentions(np))
		}
	}
	for _, rp := range rebuilt.RPs() {
		if !reflect.DeepEqual(rebuilt.RPMentions(rp), overlay.RPMentions(rp)) {
			t.Errorf("RPMentions(%q) diverge: %v vs %v", rp, rebuilt.RPMentions(rp), overlay.RPMentions(rp))
		}
	}
}
