// Package okb models the Open Knowledge Base side of the problem: OIE
// triples (noun phrase, relation phrase, noun phrase) and a store that
// indexes their surface forms. It also carries the gold annotations the
// benchmark data sets provide (the CKB entity/relation each phrase
// actually denotes), which the evaluation metrics consume; no algorithm
// reads gold labels except through the explicitly-labeled validation
// split used for learning.
package okb

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/text"
)

// Triple is one OIE extraction <s, p, o>. Subj and Obj are noun phrases
// (NPs); Pred is a relation phrase (RP). The Gold* fields hold the CKB
// identifiers the phrases denote, or "" when the phrase has no CKB
// counterpart (out-of-KB, "NIL") or the annotation is unknown.
type Triple struct {
	ID   int
	Subj string
	Pred string
	Obj  string

	GoldSubj string // gold CKB entity id for Subj ("" = NIL/unknown)
	GoldPred string // gold CKB relation id for Pred
	GoldObj  string // gold CKB entity id for Obj
}

// Mention identifies one NP occurrence inside a triple: triple index
// plus the slot it occupies.
type Mention struct {
	Triple int
	Slot   Slot
}

// Slot is a position within a triple.
type Slot int

// Triple slots.
const (
	SubjSlot Slot = iota
	PredSlot
	ObjSlot
)

func (s Slot) String() string {
	switch s {
	case SubjSlot:
		return "subj"
	case PredSlot:
		return "pred"
	case ObjSlot:
		return "obj"
	}
	return fmt.Sprintf("slot(%d)", int(s))
}

// Store holds a set of OIE triples with surface-form indexes. A Store
// is immutable after construction; all lookups are read-only and safe
// for concurrent use.
type Store struct {
	triples []Triple

	nps []string // sorted distinct NP surface forms
	rps []string // sorted distinct RP surface forms

	npMentions map[string][]Mention // NP -> occurrences
	rpMentions map[string][]int     // RP -> triple indexes

	npIDF *text.IDFTable
	rpIDF *text.IDFTable

	// syms interns every phrase surface form at append time, in triple
	// order, so the same stream of triples yields the same ids no matter
	// how it is batched. Stores derived from one another (Append, epoch
	// refresh via NewStoreWithSymbols) share one table for the life of a
	// session; the inference stack above keys everything on these ids.
	syms *SymbolTable

	// parent chains stores built by incremental Append: the mention maps
	// above then hold only the surfaces the appended suffix touched
	// (with their full merged lists) and lookups fall through to the
	// parent. depth bounds the chain; Append flattens it back into a
	// base store every maxAppendDepth links so misses stay O(1)
	// amortized.
	parent *Store
	depth  int

	// extended marks a store whose triples backing array has been grown
	// in place by a later Append (the appended elements sit beyond this
	// store's len and are invisible to it). At most one Append may claim
	// the spare capacity; every other one copies, which is what keeps
	// sibling Appends of one store independent.
	extended atomic.Bool

	// dead is the complete set of tombstoned triple ids (positions in
	// triples). Retracted triples keep their array positions — those
	// positions are load-bearing identities for query postings and
	// retained read generations — but leave every index: mention lists,
	// the sorted phrase lists, and (on epoch rebuild) the IDF counts.
	// The set is shared by pointer between stores derived by Append and
	// copied, never mutated, by RetractIDs.
	dead  map[int]struct{}
	nDead int
}

// NewStore indexes the given triples. Triple IDs are reassigned to the
// slice index so downstream code can use them interchangeably.
func NewStore(triples []Triple) *Store {
	return NewStoreWithSymbols(triples, nil)
}

// NewStoreWithSymbols indexes the given triples, interning their
// surface forms into syms (a fresh table when nil). Passing the table
// of a previous epoch's store keeps phrase ids stable across an epoch
// refresh, which is what lets warm inference state keyed on those ids
// survive the rebuild.
func NewStoreWithSymbols(triples []Triple, syms *SymbolTable) *Store {
	return NewStoreRetaining(triples, nil, syms)
}

// NewStoreRetaining indexes the given triples while keeping the listed
// positions tombstoned: dead triples stay in the array (so positional
// ids remain valid for as-of readers) but contribute nothing to the
// mention lists, phrase lists, or IDF counts. Their surface forms are
// still interned — symbol ids are never reused — and out-of-range ids
// are ignored. It is how an epoch refresh rebuilds its statistics over
// only the live triples of a stream that has seen retractions.
func NewStoreRetaining(triples []Triple, dead []int, syms *SymbolTable) *Store {
	if syms == nil {
		syms = NewSymbolTable()
	}
	s := &Store{
		triples:    make([]Triple, len(triples)),
		npMentions: make(map[string][]Mention),
		rpMentions: make(map[string][]int),
		syms:       syms,
	}
	copy(s.triples, triples)
	if len(dead) > 0 {
		s.dead = make(map[int]struct{}, len(dead))
		for _, id := range dead {
			if id >= 0 && id < len(s.triples) {
				s.dead[id] = struct{}{}
			}
		}
		s.nDead = len(s.dead)
	}
	for i := range s.triples {
		s.triples[i].ID = i
		t := &s.triples[i]
		syms.Intern(t.Subj)
		syms.Intern(t.Pred)
		syms.Intern(t.Obj)
		if _, gone := s.dead[i]; gone {
			continue
		}
		s.npMentions[t.Subj] = append(s.npMentions[t.Subj], Mention{i, SubjSlot})
		s.npMentions[t.Obj] = append(s.npMentions[t.Obj], Mention{i, ObjSlot})
		s.rpMentions[t.Pred] = append(s.rpMentions[t.Pred], i)
	}
	s.nps = sortedKeysMention(s.npMentions)
	s.rps = sortedKeysInt(s.rpMentions)
	s.npIDF = text.NewIDFTable(s.allNPOccurrences())
	s.rpIDF = text.NewIDFTable(s.allRPOccurrences())
	return s
}

func sortedKeysMention(m map[string][]Mention) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedKeysInt(m map[string][]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func (s *Store) allNPOccurrences() []string {
	out := make([]string, 0, 2*(len(s.triples)-s.nDead))
	for i := range s.triples {
		if _, gone := s.dead[i]; gone {
			continue
		}
		out = append(out, s.triples[i].Subj, s.triples[i].Obj)
	}
	return out
}

func (s *Store) allRPOccurrences() []string {
	out := make([]string, 0, len(s.triples)-s.nDead)
	for i := range s.triples {
		if _, gone := s.dead[i]; gone {
			continue
		}
		out = append(out, s.triples[i].Pred)
	}
	return out
}

// maxAppendDepth bounds the parent chain incremental Appends build
// before the store is flattened back into a base store. Deeper chains
// make every mention-map miss walk more maps; the flatten re-buckets
// all mentions (no tokenization, no IDF) and is amortized over the
// chain it collapses.
const maxAppendDepth = 16

// Append returns a new Store over s's triples followed by more. The
// receiver is unchanged (stores stay immutable, so concurrent readers
// of the old epoch are safe). When freezeIDF is true the new store
// keeps s's IDF tables instead of recounting token frequencies over the
// grown collection — the epoch semantics streaming ingest needs: IDF is
// a global statistic, so recounting it would perturb the similarity of
// every existing phrase pair and mark the whole factor graph dirty on
// every batch. Tokens first seen after the freeze score at the unseen-
// word weight until the next epoch refresh rebuilds the tables.
//
// The frozen path grows the indexes incrementally: the receiver's
// triples, mention lists, and IDF tables are shared, and only the
// batch's triples are indexed (an overlay holding the touched surfaces'
// merged lists, collapsed every maxAppendDepth appends), so the cost of
// an Append tracks the batch, not the accumulated store. Recounting
// (freezeIDF=false) re-derives everything and is as expensive as
// NewStore.
func (s *Store) Append(more []Triple, freezeIDF bool) *Store {
	if !freezeIDF {
		return NewStoreRetaining(append(s.Triples(), more...), s.DeadIDs(), s.syms)
	}
	grown := &Store{
		triples:    s.appendTriples(more),
		npMentions: make(map[string][]Mention, 2*len(more)),
		rpMentions: make(map[string][]int, len(more)),
		npIDF:      s.npIDF,
		rpIDF:      s.rpIDF,
		syms:       s.syms,
		parent:     s,
		depth:      s.depth + 1,
		dead:       s.dead,
		nDead:      s.nDead,
	}
	for i := len(s.triples); i < len(grown.triples); i++ {
		t := &grown.triples[i]
		s.syms.Intern(t.Subj)
		s.syms.Intern(t.Pred)
		s.syms.Intern(t.Obj)
	}
	var newNPs, newRPs []string
	seedNP := func(np string) {
		if _, ok := grown.npMentions[np]; ok {
			return
		}
		prev := s.NPMentions(np)
		if prev == nil {
			newNPs = append(newNPs, np)
		}
		grown.npMentions[np] = prev[:len(prev):len(prev)]
	}
	for i := len(s.triples); i < len(grown.triples); i++ {
		t := &grown.triples[i]
		seedNP(t.Subj)
		grown.npMentions[t.Subj] = append(grown.npMentions[t.Subj], Mention{i, SubjSlot})
		seedNP(t.Obj)
		grown.npMentions[t.Obj] = append(grown.npMentions[t.Obj], Mention{i, ObjSlot})
		if _, ok := grown.rpMentions[t.Pred]; !ok {
			prev := s.RPMentions(t.Pred)
			if prev == nil {
				newRPs = append(newRPs, t.Pred)
			}
			grown.rpMentions[t.Pred] = prev[:len(prev):len(prev)]
		}
		grown.rpMentions[t.Pred] = append(grown.rpMentions[t.Pred], i)
	}
	grown.nps = mergeSortedNew(s.nps, newNPs)
	grown.rps = mergeSortedNew(s.rps, newRPs)
	if grown.depth >= maxAppendDepth {
		grown.flatten()
	}
	return grown
}

// appendTriples produces the grown store's triple slice, ids assigned
// by position. When the receiver's backing array has spare capacity and
// no other Append has claimed it, the batch is appended in place
// (receivers never read past their own len, so sharing the array is
// safe); otherwise the prefix is copied once into a backing array with
// headroom, so a chain of Appends pays the copy O(log) times, not per
// batch.
func (s *Store) appendTriples(more []Triple) []Triple {
	n := len(s.triples)
	var all []Triple
	if cap(s.triples) >= n+len(more) && s.extended.CompareAndSwap(false, true) {
		all = s.triples
	} else {
		need := n + len(more)
		all = make([]Triple, n, need+need/4+16)
		copy(all, s.triples)
	}
	all = append(all, more...)
	for i := n; i < len(all); i++ {
		all[i].ID = i
	}
	return all
}

// mergeSortedNew merges a sorted list with a batch of surfaces known to
// be absent from it (in encounter order, possibly with duplicates).
func mergeSortedNew(sorted, fresh []string) []string {
	if len(fresh) == 0 {
		return sorted
	}
	sort.Strings(fresh)
	dedup := fresh[:1]
	for _, f := range fresh[1:] {
		if f != dedup[len(dedup)-1] {
			dedup = append(dedup, f)
		}
	}
	out := make([]string, 0, len(sorted)+len(dedup))
	i, j := 0, 0
	for i < len(sorted) && j < len(dedup) {
		if sorted[i] < dedup[j] {
			out = append(out, sorted[i])
			i++
		} else {
			out = append(out, dedup[j])
			j++
		}
	}
	out = append(out, sorted[i:]...)
	return append(out, dedup[j:]...)
}

// flatten re-buckets every mention into fresh full maps and drops the
// parent chain. It runs before the store is published, so no reader
// ever sees the intermediate state. Unlike NewStore it re-tokenizes
// nothing: the sorted phrase lists are already merged and the IDF
// tables stay the frozen epoch's.
func (s *Store) flatten() {
	npM := make(map[string][]Mention, len(s.nps))
	rpM := make(map[string][]int, len(s.rps))
	for i := range s.triples {
		if _, gone := s.dead[i]; gone {
			continue
		}
		t := &s.triples[i]
		npM[t.Subj] = append(npM[t.Subj], Mention{i, SubjSlot})
		npM[t.Obj] = append(npM[t.Obj], Mention{i, ObjSlot})
		rpM[t.Pred] = append(rpM[t.Pred], i)
	}
	s.npMentions, s.rpMentions = npM, rpM
	s.parent = nil
	s.depth = 0
}

// Len returns the number of triple positions, live and tombstoned:
// Triple(i) is valid for every i < Len(), including retracted ones
// (as-of readers still dereference them). LiveLen counts only the
// triples the indexes see.
func (s *Store) Len() int { return len(s.triples) }

// LiveLen returns the number of live (non-tombstoned) triples.
func (s *Store) LiveLen() int { return len(s.triples) - s.nDead }

// Dead reports whether position i holds a retracted triple. Iterators
// over [0, Len()) that feed inference or mining must skip dead
// positions.
func (s *Store) Dead(i int) bool {
	_, gone := s.dead[i]
	return gone
}

// DeadCount returns the number of tombstoned positions.
func (s *Store) DeadCount() int { return s.nDead }

// DeadIDs returns the tombstoned positions in ascending order (nil
// when the store has never seen a retraction).
func (s *Store) DeadIDs() []int {
	if s.nDead == 0 {
		return nil
	}
	out := make([]int, 0, s.nDead)
	for id := range s.dead {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// OverlayDepth reports how many incremental-Append layers sit between
// this store and its flattened base (0 = base store). It is a health
// signal: lookup cost grows with the chain until Append's periodic
// flatten resets it.
func (s *Store) OverlayDepth() int { return s.depth }

// Triple returns the i-th triple.
func (s *Store) Triple(i int) Triple { return s.triples[i] }

// Triples returns a copy of all triples.
func (s *Store) Triples() []Triple {
	out := make([]Triple, len(s.triples))
	copy(out, s.triples)
	return out
}

// NPs returns the sorted distinct noun-phrase surface forms.
func (s *Store) NPs() []string { return s.nps }

// RPs returns the sorted distinct relation-phrase surface forms.
func (s *Store) RPs() []string { return s.rps }

// NPMentions returns the occurrences of the NP surface form np. An
// incremental store holds full merged lists for the surfaces its
// appended suffixes touched and defers to its parent for the rest.
func (s *Store) NPMentions(np string) []Mention {
	for t := s; t != nil; t = t.parent {
		if m, ok := t.npMentions[np]; ok {
			return m
		}
	}
	return nil
}

// RPMentions returns the indexes of triples whose predicate is rp.
func (s *Store) RPMentions(rp string) []int {
	for t := s; t != nil; t = t.parent {
		if m, ok := t.rpMentions[rp]; ok {
			return m
		}
	}
	return nil
}

// Symbols returns the store's interning table. Every phrase surface
// form in the store is guaranteed to be interned; stores produced by
// Append (and by NewStoreWithSymbols given this table) share it.
func (s *Store) Symbols() *SymbolTable { return s.syms }

// NPIDF returns the IDF table over all NP occurrences (token frequency
// counted once per occurrence, as the paper specifies).
func (s *Store) NPIDF() *text.IDFTable { return s.npIDF }

// RPIDF returns the IDF table over all RP occurrences.
func (s *Store) RPIDF() *text.IDFTable { return s.rpIDF }

// GoldNP returns the gold entity id for the NP in the given mention.
func (s *Store) GoldNP(m Mention) string {
	t := s.triples[m.Triple]
	if m.Slot == SubjSlot {
		return t.GoldSubj
	}
	return t.GoldObj
}

// NPOf returns the surface form occupying mention m.
func (s *Store) NPOf(m Mention) string {
	t := s.triples[m.Triple]
	if m.Slot == SubjSlot {
		return t.Subj
	}
	return t.Obj
}

// WriteTSV writes the triples in the 7-column TSV format read by
// ReadTSV: subj, pred, obj, goldSubj, goldPred, goldObj (tab-separated;
// first column is the numeric id).
func (s *Store) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range s.triples {
		t := &s.triples[i]
		if _, err := fmt.Fprintf(bw, "%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
			t.ID, t.Subj, t.Pred, t.Obj, t.GoldSubj, t.GoldPred, t.GoldObj); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV parses triples from the format produced by WriteTSV. Lines
// that are empty or start with '#' are skipped. Rows may omit the three
// gold columns (4-column form) for unannotated data.
func ReadTSV(r io.Reader) ([]Triple, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var triples []Triple
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimRight(sc.Text(), "\r\n")
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		cols := strings.Split(raw, "\t")
		if len(cols) != 4 && len(cols) != 7 {
			return nil, fmt.Errorf("okb: line %d: want 4 or 7 columns, got %d", line, len(cols))
		}
		t := Triple{Subj: cols[1], Pred: cols[2], Obj: cols[3]}
		if len(cols) == 7 {
			t.GoldSubj, t.GoldPred, t.GoldObj = cols[4], cols[5], cols[6]
		}
		triples = append(triples, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("okb: reading triples: %w", err)
	}
	return triples, nil
}
