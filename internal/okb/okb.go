// Package okb models the Open Knowledge Base side of the problem: OIE
// triples (noun phrase, relation phrase, noun phrase) and a store that
// indexes their surface forms. It also carries the gold annotations the
// benchmark data sets provide (the CKB entity/relation each phrase
// actually denotes), which the evaluation metrics consume; no algorithm
// reads gold labels except through the explicitly-labeled validation
// split used for learning.
package okb

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/text"
)

// Triple is one OIE extraction <s, p, o>. Subj and Obj are noun phrases
// (NPs); Pred is a relation phrase (RP). The Gold* fields hold the CKB
// identifiers the phrases denote, or "" when the phrase has no CKB
// counterpart (out-of-KB, "NIL") or the annotation is unknown.
type Triple struct {
	ID   int
	Subj string
	Pred string
	Obj  string

	GoldSubj string // gold CKB entity id for Subj ("" = NIL/unknown)
	GoldPred string // gold CKB relation id for Pred
	GoldObj  string // gold CKB entity id for Obj
}

// Mention identifies one NP occurrence inside a triple: triple index
// plus the slot it occupies.
type Mention struct {
	Triple int
	Slot   Slot
}

// Slot is a position within a triple.
type Slot int

// Triple slots.
const (
	SubjSlot Slot = iota
	PredSlot
	ObjSlot
)

func (s Slot) String() string {
	switch s {
	case SubjSlot:
		return "subj"
	case PredSlot:
		return "pred"
	case ObjSlot:
		return "obj"
	}
	return fmt.Sprintf("slot(%d)", int(s))
}

// Store holds a set of OIE triples with surface-form indexes. A Store
// is immutable after construction; all lookups are read-only and safe
// for concurrent use.
type Store struct {
	triples []Triple

	nps []string // sorted distinct NP surface forms
	rps []string // sorted distinct RP surface forms

	npMentions map[string][]Mention // NP -> occurrences
	rpMentions map[string][]int     // RP -> triple indexes

	npIDF *text.IDFTable
	rpIDF *text.IDFTable
}

// NewStore indexes the given triples. Triple IDs are reassigned to the
// slice index so downstream code can use them interchangeably.
func NewStore(triples []Triple) *Store {
	s := &Store{
		triples:    make([]Triple, len(triples)),
		npMentions: make(map[string][]Mention),
		rpMentions: make(map[string][]int),
	}
	copy(s.triples, triples)
	for i := range s.triples {
		s.triples[i].ID = i
		t := &s.triples[i]
		s.npMentions[t.Subj] = append(s.npMentions[t.Subj], Mention{i, SubjSlot})
		s.npMentions[t.Obj] = append(s.npMentions[t.Obj], Mention{i, ObjSlot})
		s.rpMentions[t.Pred] = append(s.rpMentions[t.Pred], i)
	}
	s.nps = sortedKeysMention(s.npMentions)
	s.rps = sortedKeysInt(s.rpMentions)
	s.npIDF = text.NewIDFTable(s.allNPOccurrences())
	s.rpIDF = text.NewIDFTable(s.allRPOccurrences())
	return s
}

func sortedKeysMention(m map[string][]Mention) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedKeysInt(m map[string][]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func (s *Store) allNPOccurrences() []string {
	out := make([]string, 0, 2*len(s.triples))
	for i := range s.triples {
		out = append(out, s.triples[i].Subj, s.triples[i].Obj)
	}
	return out
}

func (s *Store) allRPOccurrences() []string {
	out := make([]string, 0, len(s.triples))
	for i := range s.triples {
		out = append(out, s.triples[i].Pred)
	}
	return out
}

// Append returns a new Store over s's triples followed by more. The
// receiver is unchanged (stores stay immutable, so concurrent readers
// of the old epoch are safe). When freezeIDF is true the new store
// keeps s's IDF tables instead of recounting token frequencies over the
// grown collection — the epoch semantics streaming ingest needs: IDF is
// a global statistic, so recounting it would perturb the similarity of
// every existing phrase pair and mark the whole factor graph dirty on
// every batch. Tokens first seen after the freeze score at the unseen-
// word weight until the next epoch refresh rebuilds the tables.
func (s *Store) Append(more []Triple, freezeIDF bool) *Store {
	grown := NewStore(append(s.Triples(), more...))
	if freezeIDF {
		grown.npIDF = s.npIDF
		grown.rpIDF = s.rpIDF
	}
	return grown
}

// Len returns the number of triples.
func (s *Store) Len() int { return len(s.triples) }

// Triple returns the i-th triple.
func (s *Store) Triple(i int) Triple { return s.triples[i] }

// Triples returns a copy of all triples.
func (s *Store) Triples() []Triple {
	out := make([]Triple, len(s.triples))
	copy(out, s.triples)
	return out
}

// NPs returns the sorted distinct noun-phrase surface forms.
func (s *Store) NPs() []string { return s.nps }

// RPs returns the sorted distinct relation-phrase surface forms.
func (s *Store) RPs() []string { return s.rps }

// NPMentions returns the occurrences of the NP surface form np.
func (s *Store) NPMentions(np string) []Mention { return s.npMentions[np] }

// RPMentions returns the indexes of triples whose predicate is rp.
func (s *Store) RPMentions(rp string) []int { return s.rpMentions[rp] }

// NPIDF returns the IDF table over all NP occurrences (token frequency
// counted once per occurrence, as the paper specifies).
func (s *Store) NPIDF() *text.IDFTable { return s.npIDF }

// RPIDF returns the IDF table over all RP occurrences.
func (s *Store) RPIDF() *text.IDFTable { return s.rpIDF }

// GoldNP returns the gold entity id for the NP in the given mention.
func (s *Store) GoldNP(m Mention) string {
	t := s.triples[m.Triple]
	if m.Slot == SubjSlot {
		return t.GoldSubj
	}
	return t.GoldObj
}

// NPOf returns the surface form occupying mention m.
func (s *Store) NPOf(m Mention) string {
	t := s.triples[m.Triple]
	if m.Slot == SubjSlot {
		return t.Subj
	}
	return t.Obj
}

// WriteTSV writes the triples in the 7-column TSV format read by
// ReadTSV: subj, pred, obj, goldSubj, goldPred, goldObj (tab-separated;
// first column is the numeric id).
func (s *Store) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range s.triples {
		t := &s.triples[i]
		if _, err := fmt.Fprintf(bw, "%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
			t.ID, t.Subj, t.Pred, t.Obj, t.GoldSubj, t.GoldPred, t.GoldObj); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV parses triples from the format produced by WriteTSV. Lines
// that are empty or start with '#' are skipped. Rows may omit the three
// gold columns (4-column form) for unannotated data.
func ReadTSV(r io.Reader) ([]Triple, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var triples []Triple
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimRight(sc.Text(), "\r\n")
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		cols := strings.Split(raw, "\t")
		if len(cols) != 4 && len(cols) != 7 {
			return nil, fmt.Errorf("okb: line %d: want 4 or 7 columns, got %d", line, len(cols))
		}
		t := Triple{Subj: cols[1], Pred: cols[2], Obj: cols[3]}
		if len(cols) == 7 {
			t.GoldSubj, t.GoldPred, t.GoldObj = cols[4], cols[5], cols[6]
		}
		triples = append(triples, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("okb: reading triples: %w", err)
	}
	return triples, nil
}
