// Package kbp stands in for the Stanford Knowledge Base Population
// slot-filling system the paper uses as an RP canonicalization signal:
// a classifier that maps a relation phrase to a CKB relation category,
// with two RPs counted equivalent (Sim_KBP = 1) when their predicted
// categories match. The real KBP system is an unavailable external
// tool; this classifier reproduces its observable interface — including
// its imperfect coverage — by matching normalized RPs against a pattern
// lexicon derived from the CKB's relation aliases.
package kbp

import (
	"repro/internal/ckb"
	"repro/internal/text"
)

// Classifier maps relation phrases to relation categories.
type Classifier struct {
	// exact maps a normalized alias to its category.
	exact map[string]string
	// tokens maps a normalized content token to the categories whose
	// aliases contain it; used for partial matches.
	tokens map[string]map[string]int
}

// NewClassifier builds a classifier from the CKB's relation inventory.
func NewClassifier(store *ckb.Store) *Classifier {
	c := &Classifier{
		exact:  make(map[string]string),
		tokens: make(map[string]map[string]int),
	}
	for _, rid := range store.RelationIDs() {
		r := store.Relation(rid)
		for _, alias := range r.Aliases {
			key := text.Normalize(alias)
			if _, taken := c.exact[key]; !taken {
				c.exact[key] = r.Category
			}
			for _, tok := range text.NormalizeTokens(alias) {
				m := c.tokens[tok]
				if m == nil {
					m = make(map[string]int)
					c.tokens[tok] = m
				}
				m[r.Category]++
			}
		}
	}
	return c
}

// Category predicts the relation category of rp, or "" when the phrase
// is out of the classifier's coverage (no alias match and no unique
// dominant token category) — modeling KBP's abstention on unseen
// relations.
func (c *Classifier) Category(rp string) string {
	key := text.Normalize(rp)
	if cat, ok := c.exact[key]; ok {
		return cat
	}
	// Partial match: vote by content tokens; return the category only
	// when it wins strictly (ties = abstain).
	votes := make(map[string]int)
	for _, tok := range text.NormalizeTokens(rp) {
		for cat, n := range c.tokens[tok] {
			votes[cat] += n
		}
	}
	best, bestN, tie := "", 0, false
	for cat, n := range votes {
		switch {
		case n > bestN:
			best, bestN, tie = cat, n, false
		case n == bestN && cat != best:
			tie = true
		}
	}
	if bestN == 0 || tie {
		return ""
	}
	return best
}

// Sim returns Sim_KBP(a, b): 1 when both RPs are classified into the
// same non-empty category, else 0.
func (c *Classifier) Sim(a, b string) float64 {
	ca := c.Category(a)
	if ca == "" {
		return 0
	}
	if ca == c.Category(b) {
		return 1
	}
	return 0
}
