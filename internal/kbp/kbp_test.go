package kbp

import (
	"testing"

	"repro/internal/ckb"
)

func classifier(t *testing.T) *Classifier {
	t.Helper()
	store, err := ckb.NewStore(
		[]ckb.Entity{{ID: "e1", Name: "x"}},
		[]ckb.Relation{
			{ID: "r1", Name: "person.employment", Category: "employment",
				Aliases: []string{"worked for", "was working at", "is employed by"}},
			{ID: "r2", Name: "location.contained_by", Category: "location",
				Aliases: []string{"located in", "is in", "sits in"}},
			{ID: "r3", Name: "org.membership", Category: "membership",
				Aliases: []string{"member of", "belongs to"}},
		},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	return NewClassifier(store)
}

func TestExactAliasCategory(t *testing.T) {
	c := classifier(t)
	if got := c.Category("worked for"); got != "employment" {
		t.Errorf("Category = %q, want employment", got)
	}
	// Morphological variants of an alias also hit exactly.
	if got := c.Category("works for"); got != "employment" {
		t.Errorf("Category(works for) = %q, want employment", got)
	}
}

func TestPaperExample(t *testing.T) {
	// The paper: Sim_KBP("was working at", "worked for") = 1.
	c := classifier(t)
	if got := c.Sim("was working at", "worked for"); got != 1 {
		t.Errorf("Sim = %v, want 1", got)
	}
}

func TestDifferentCategories(t *testing.T) {
	c := classifier(t)
	if got := c.Sim("worked for", "located in"); got != 0 {
		t.Errorf("cross-category Sim = %v, want 0", got)
	}
}

func TestAbstention(t *testing.T) {
	c := classifier(t)
	if got := c.Category("completely unrelated phrase"); got != "" {
		t.Errorf("Category = %q, want abstention", got)
	}
	// Abstained phrases never match anything, including themselves.
	if got := c.Sim("zzz qqq", "zzz qqq"); got != 0 {
		t.Errorf("Sim of uncovered = %v, want 0", got)
	}
}

func TestPartialTokenMatch(t *testing.T) {
	c := classifier(t)
	// "employed" appears only in employment aliases.
	if got := c.Category("employed at the firm"); got != "employment" {
		t.Errorf("partial match Category = %q, want employment", got)
	}
}
