// Package datasets synthesizes the two benchmark data sets the paper
// evaluates on — ReVerb45K and NYTimes2018 — which are unavailable
// external resources. The generator first builds a ground-truth world
// (a CKB of entities, relations, and facts), then emits OIE triples
// whose noun and relation phrases are paraphrased surface variants of
// that world, along with every derived resource the signals need:
// anchor-link popularity statistics, a training corpus for embeddings,
// and a PPDB-style paraphrase database. Gold canonicalization and
// linking labels fall out of the construction.
//
// Everything is driven by one seed, so a dataset is a pure function of
// its Profile: experiments are exactly reproducible.
package datasets

// Lexicons for minting plausible entity names. The lists are fixed and
// deterministic; variety comes from combinatorial composition, not from
// list length.

var firstNames = []string{
	"james", "mary", "robert", "patricia", "john", "jennifer", "michael",
	"linda", "david", "elizabeth", "william", "barbara", "richard",
	"susan", "joseph", "jessica", "thomas", "sarah", "charles", "karen",
	"christopher", "lisa", "daniel", "nancy", "matthew", "betty",
	"anthony", "margaret", "mark", "sandra", "donald", "ashley",
	"steven", "kimberly", "andrew", "emily", "paul", "donna", "joshua",
	"michelle",
}

var lastNames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
	"davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
	"wilson", "anderson", "thomas", "taylor", "moore", "jackson",
	"martin", "lee", "perez", "thompson", "white", "harris", "sanchez",
	"clark", "ramirez", "lewis", "robinson", "walker", "young", "allen",
	"king", "wright", "scott", "torres", "nguyen", "hill", "flores",
}

var places = []string{
	"maryland", "virginia", "springfield", "arlington", "georgetown",
	"fairview", "riverside", "franklin", "clinton", "greenville",
	"bristol", "salem", "madison", "oakland", "ashland", "burlington",
	"manchester", "milton", "newport", "oxford", "dover", "hudson",
	"clayton", "dayton", "lexington", "milford", "winchester", "auburn",
	"florence", "troy", "geneva", "marion", "monroe", "jackson county",
	"hamilton", "kingston", "windsor", "cambridge", "plymouth", "concord",
}

var orgWords = []string{
	"atlas", "vertex", "pinnacle", "summit", "horizon", "beacon",
	"keystone", "granite", "cascade", "meridian", "quantum", "stellar",
	"harbor", "anchor", "crown", "liberty", "pioneer", "frontier",
	"heritage", "landmark", "monument", "paragon", "zenith", "apex",
	"nova", "orion", "polaris", "vega", "lyra", "cosmos",
}

var orgSuffixes = []string{
	"corporation", "industries", "holdings", "group", "partners",
	"systems", "technologies", "laboratories", "enterprises", "capital",
}

var teamWords = []string{
	"tigers", "eagles", "bears", "lions", "hawks", "wolves", "panthers",
	"falcons", "sharks", "raiders", "rangers", "pirates", "knights",
	"titans", "spartans", "chargers", "comets", "rockets", "storm",
	"thunder",
}
