package datasets

// relationSeed describes one CKB relation: its category (several
// relations can share a category, which is what the KBP signal
// detects), the entity kinds of its arguments, and the paraphrase pool
// OIE extractions draw relation phrases from. Paraphrases are written
// in base form; the triple generator inflects them (tense, auxiliary)
// for extra surface variety.
type relationSeed struct {
	name       string
	category   string
	domainKind string
	rangeKind  string
	phrases    []string
}

// Entity kinds used to type relation arguments.
const (
	kindPerson  = "person"
	kindOrg     = "organization"
	kindPlace   = "location"
	kindCompany = "company"
	kindSchool  = "university"
	kindTeam    = "team"
)

var relationSeeds = []relationSeed{
	{"location.contained_by", "location", kindSchool, kindPlace,
		[]string{"locate in", "be situated in", "sit in", "lie in"}},
	{"location.city_of", "location", kindCompany, kindPlace,
		[]string{"be headquartered in", "have headquarters in", "be based in", "operate from"}},
	{"people.birthplace", "biography", kindPerson, kindPlace,
		[]string{"be born in", "come from", "hail from", "be a native of"}},
	{"people.residence", "biography", kindPerson, kindPlace,
		[]string{"live in", "reside in", "settle in", "make home in"}},
	{"organizations.founded", "membership", kindSchool, kindOrg,
		[]string{"be a member of", "be an early member of", "belong to", "join", "be a founding member of"}},
	{"organizations.member", "membership", kindCompany, kindOrg,
		[]string{"be a corporate member of", "participate in", "be part of", "take part in"}},
	{"employment.employer", "employment", kindPerson, kindCompany,
		[]string{"work for", "work at", "be employed by", "be employed at", "hold a job at"}},
	{"employment.founder", "employment", kindPerson, kindCompany,
		[]string{"found", "establish", "create", "start", "set up"}},
	{"employment.ceo", "employment", kindPerson, kindCompany,
		[]string{"lead", "be the chief executive of", "run", "head", "be the ceo of"}},
	{"education.alma_mater", "education", kindPerson, kindSchool,
		[]string{"graduate from", "study at", "attend", "earn a degree from", "be educated at"}},
	{"education.teaches_at", "education", kindPerson, kindSchool,
		[]string{"teach at", "be a professor at", "lecture at", "hold a chair at"}},
	{"sports.plays_for", "sports", kindPerson, kindTeam,
		[]string{"play for", "be signed by", "be on the roster of", "suit up for"}},
	{"sports.coaches", "sports", kindPerson, kindTeam,
		[]string{"coach", "manage", "be the head coach of", "train"}},
	{"sports.team_home", "sports", kindTeam, kindPlace,
		[]string{"make its base in", "play in", "represent", "call home"}},
	{"business.acquired", "business", kindCompany, kindCompany,
		[]string{"acquire", "buy", "purchase", "take over", "absorb"}},
	{"business.partner", "business", kindCompany, kindCompany,
		[]string{"partner with", "team up with", "collaborate with", "ally with"}},
	{"business.supplier", "business", kindCompany, kindCompany,
		[]string{"supply", "provide parts to", "sell components to", "serve"}},
	{"university.campus_in", "location", kindSchool, kindPlace,
		[]string{"have a campus in", "operate a campus in", "maintain facilities in"}},
	{"person.spouse", "family", kindPerson, kindPerson,
		[]string{"marry", "be married to", "wed", "be the spouse of"}},
	{"person.advisor", "education", kindPerson, kindPerson,
		[]string{"be advised by", "study under", "be mentored by", "be a student of"}},
	{"org.sponsor", "business", kindCompany, kindTeam,
		[]string{"sponsor", "fund", "back", "finance"}},
	{"place.twinned_with", "location", kindPlace, kindPlace,
		[]string{"be twinned with", "be a sister city of", "maintain ties with"}},
	{"person.invests_in", "business", kindPerson, kindCompany,
		[]string{"invest in", "hold shares of", "hold a stake in", "put money into"}},
	{"school.rival_of", "education", kindSchool, kindSchool,
		[]string{"be a rival of", "compete with", "face off against"}},
}
