package datasets

import (
	"reflect"
	"strings"
	"testing"
)

func small(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Generate(ReVerb45K(0.01))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateSizes(t *testing.T) {
	ds := small(t)
	p := ds.Profile
	if ds.OKB.Len() != p.Triples {
		t.Errorf("triples = %d, want %d", ds.OKB.Len(), p.Triples)
	}
	if got := len(ds.CKB.EntityIDs()); got < p.Entities/2 {
		t.Errorf("entities = %d, want >= %d", got, p.Entities/2)
	}
	if len(ds.CKB.Facts()) == 0 {
		t.Error("no facts generated")
	}
	if ds.Emb.VocabSize() == 0 {
		t.Error("embeddings not trained")
	}
	if ds.PPDB.Size() == 0 {
		t.Error("PPDB empty")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(ReVerb45K(0.005))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(ReVerb45K(0.005))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.OKB.Triples(), b.OKB.Triples()) {
		t.Error("same profile must generate identical triples")
	}
	if !reflect.DeepEqual(a.GoldNPCluster, b.GoldNPCluster) {
		t.Error("gold labels differ across runs")
	}
}

func TestGoldConsistency(t *testing.T) {
	ds := small(t)
	// Every triple's gold labels agree with the gold maps.
	for i := 0; i < ds.OKB.Len(); i++ {
		tr := ds.OKB.Triple(i)
		if got := ds.GoldNPLink[tr.Subj]; got != tr.GoldSubj {
			t.Fatalf("triple %d subj link mismatch: map %q vs triple %q", i, got, tr.GoldSubj)
		}
		if got := ds.GoldRPLink[tr.Pred]; got != tr.GoldPred {
			t.Fatalf("triple %d pred link mismatch", i)
		}
		if got := ds.GoldNPLink[tr.Obj]; got != tr.GoldObj {
			t.Fatalf("triple %d obj link mismatch", i)
		}
	}
	// Linked surfaces point at real CKB ids; cluster ids for linked
	// surfaces equal the entity id.
	for surface, eid := range ds.GoldNPLink {
		if eid == "" {
			if !strings.HasPrefix(ds.GoldNPCluster[surface], "oov:") {
				t.Fatalf("NIL-linked surface %q lacks oov cluster: %q", surface, ds.GoldNPCluster[surface])
			}
			continue
		}
		if ds.CKB.Entity(eid) == nil {
			t.Fatalf("gold link %q -> unknown entity %q", surface, eid)
		}
		if ds.GoldNPCluster[surface] != eid {
			t.Fatalf("cluster/link disagree for %q", surface)
		}
	}
	for surface, rid := range ds.GoldRPLink {
		if rid != "" && ds.CKB.Relation(rid) == nil {
			t.Fatalf("gold RP link %q -> unknown relation %q", surface, rid)
		}
	}
}

func TestSurfaceVariety(t *testing.T) {
	ds := small(t)
	// At least one gold group should span multiple surface forms —
	// otherwise canonicalization is trivial.
	bySurface := map[string][]string{}
	for surface, gid := range ds.GoldNPCluster {
		bySurface[gid] = append(bySurface[gid], surface)
	}
	multi := 0
	for _, ss := range bySurface {
		if len(ss) > 1 {
			multi++
		}
	}
	if multi < 3 {
		t.Errorf("only %d multi-surface NP groups; need variety", multi)
	}
	rpGroups := map[string][]string{}
	for surface, gid := range ds.GoldRPCluster {
		rpGroups[gid] = append(rpGroups[gid], surface)
	}
	multiRP := 0
	for _, ss := range rpGroups {
		if len(ss) > 1 {
			multiRP++
		}
	}
	if multiRP < 3 {
		t.Errorf("only %d multi-surface RP groups", multiRP)
	}
}

func TestValidationSplit(t *testing.T) {
	ds := small(t)
	if len(ds.ValTriples) == 0 {
		t.Fatal("ReVerb-like profile must have a validation split")
	}
	if len(ds.ValTriples)+len(ds.TestTriples) != ds.OKB.Len() {
		t.Error("splits do not partition the triples")
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, ds.ValTriples...), ds.TestTriples...) {
		if seen[i] {
			t.Fatalf("triple %d in both splits", i)
		}
		seen[i] = true
	}
	// Validation label accessors return only validation surfaces.
	links := ds.ValidationNPLinks()
	if len(links) == 0 {
		t.Error("no validation NP labels")
	}
	valSurf := map[string]bool{}
	for _, ti := range ds.ValTriples {
		tr := ds.OKB.Triple(ti)
		valSurf[tr.Subj] = true
		valSurf[tr.Obj] = true
	}
	for s := range links {
		if !valSurf[s] {
			t.Errorf("validation label for non-validation surface %q", s)
		}
	}
}

func TestNYTimesProfile(t *testing.T) {
	ds, err := Generate(NYTimes2018(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.ValTriples) != 0 {
		t.Error("NYTimes profile should have no validation split")
	}
	// Partial labeling: some surfaces must be unlabeled.
	labeled := len(ds.GoldNPCluster)
	total := len(ds.OKB.NPs())
	if labeled >= total {
		t.Errorf("NYT labels = %d of %d surfaces; expected partial labeling", labeled, total)
	}
	// NIL gold links must exist (high OOV rate).
	nils := 0
	for _, eid := range ds.GoldNPLink {
		if eid == "" {
			nils++
		}
	}
	if nils == 0 {
		t.Error("NYT profile should produce NIL-linked NPs")
	}
}

func TestAnchorsPopulated(t *testing.T) {
	ds := small(t)
	withAnchors := 0
	for _, eid := range ds.CKB.EntityIDs() {
		e := ds.CKB.Entity(eid)
		if ds.CKB.AnchorCount(e.Name) > 0 {
			withAnchors++
		}
	}
	if withAnchors < len(ds.CKB.EntityIDs())/2 {
		t.Errorf("only %d entities have anchor stats", withAnchors)
	}
}

func TestCandidateRecall(t *testing.T) {
	// The gold entity should usually be among the top candidates of its
	// surface forms — otherwise linking is impossible by construction.
	ds := small(t)
	hits, total := 0, 0
	for surface, eid := range ds.GoldNPLink {
		if eid == "" {
			continue
		}
		total++
		for _, c := range ds.CKB.CandidateEntities(surface, 8) {
			if c.ID == eid {
				hits++
				break
			}
		}
	}
	if total == 0 {
		t.Fatal("no linked surfaces")
	}
	recall := float64(hits) / float64(total)
	if recall < 0.7 {
		t.Errorf("candidate recall = %.2f (%d/%d), want >= 0.7", recall, hits, total)
	}
}

func TestEmbeddingSignalQuality(t *testing.T) {
	// Aliases of the same entity should on average embed closer than
	// random cross-entity pairs.
	ds := small(t)
	bySurface := map[string][]string{}
	for surface, gid := range ds.GoldNPCluster {
		bySurface[gid] = append(bySurface[gid], surface)
	}
	var same, cross float64
	var nSame, nCross int
	var groups [][]string
	for _, ss := range bySurface {
		groups = append(groups, ss)
	}
	for i, gi := range groups {
		if len(gi) > 1 {
			same += ds.Emb.PhraseSimilarity(gi[0], gi[1])
			nSame++
		}
		if i+1 < len(groups) {
			cross += ds.Emb.PhraseSimilarity(gi[0], groups[i+1][0])
			nCross++
		}
	}
	if nSame == 0 || nCross == 0 {
		t.Skip("degenerate tiny dataset")
	}
	if same/float64(nSame) <= cross/float64(nCross) {
		t.Errorf("embedding signal inverted: same %.3f vs cross %.3f",
			same/float64(nSame), cross/float64(nCross))
	}
}

func TestProfileScaling(t *testing.T) {
	small := ReVerb45K(0.01)
	big := ReVerb45K(0.1)
	if big.Triples <= small.Triples || big.Entities <= small.Entities {
		t.Error("scaling should grow the profile")
	}
	full := ReVerb45K(1.0)
	if full.Triples != 45000 {
		t.Errorf("full ReVerb45K = %d triples, want 45000", full.Triples)
	}
	if NYTimes2018(1.0).Triples != 34000 {
		t.Error("full NYTimes2018 should be 34000 triples")
	}
}

func TestFactCoverage(t *testing.T) {
	// The CKB must store only part of the world: a noticeable share of
	// gold-consistent triples should NOT be CKB facts.
	ds := small(t)
	inKB, total := 0, 0
	for i := 0; i < ds.OKB.Len(); i++ {
		tr := ds.OKB.Triple(i)
		if tr.GoldSubj == "" || tr.GoldObj == "" {
			continue
		}
		total++
		if ds.CKB.HasFact(tr.GoldSubj, tr.GoldPred, tr.GoldObj) {
			inKB++
		}
	}
	if total == 0 {
		t.Fatal("no fully-linked triples")
	}
	frac := float64(inKB) / float64(total)
	if frac < 0.2 || frac > 0.8 {
		t.Errorf("CKB fact coverage = %.2f; want partial (0.2..0.8)", frac)
	}
}

func TestEntAliasCoverage(t *testing.T) {
	// Some OKB surfaces must have no exact CKB alias (the coverage gap
	// exact-match linkers suffer from), while candidate recall stays
	// usable via fuzzy token retrieval.
	ds := small(t)
	missing := 0
	for surface, eid := range ds.GoldNPLink {
		if eid == "" {
			continue
		}
		exact := false
		for _, c := range ds.CKB.CandidateEntities(surface, 3) {
			if c.Score >= 2 { // exact-alias match marker
				exact = true
				break
			}
		}
		if !exact {
			missing++
		}
	}
	if missing == 0 {
		t.Error("every surface has an exact CKB alias; coverage gap not modeled")
	}
}

func TestRelationDomainRangeSet(t *testing.T) {
	ds := small(t)
	for _, rid := range ds.CKB.RelationIDs() {
		r := ds.CKB.Relation(rid)
		if r.Domain == "" || r.Range == "" {
			t.Errorf("relation %s missing domain/range", rid)
		}
	}
}

func TestAnchorCoveragePartial(t *testing.T) {
	ds, err := Generate(NYTimes2018(0.01))
	if err != nil {
		t.Fatal(err)
	}
	withAnchor, total := 0, 0
	for _, eid := range ds.CKB.EntityIDs() {
		e := ds.CKB.Entity(eid)
		for _, alias := range e.Aliases {
			total++
			if ds.CKB.AnchorCount(alias) > 0 {
				withAnchor++
			}
		}
	}
	frac := float64(withAnchor) / float64(total)
	if frac > 0.85 {
		t.Errorf("NYT anchor coverage = %.2f; want clearly partial", frac)
	}
}
