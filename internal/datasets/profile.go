package datasets

// Profile parameterizes dataset synthesis. The two constructors mirror
// the paper's benchmarks; Scale shrinks them proportionally so unit
// tests and quick benchmarks stay fast while full-size runs remain one
// flag away.
type Profile struct {
	Name string
	Seed int64

	Entities int // CKB entities
	Facts    int // CKB facts
	Triples  int // OIE triples to emit

	// OOVRate is the probability a triple's object (or subject) denotes
	// an out-of-KB entity, so its gold link is NIL. NYTimes2018-style
	// data is much heavier in OOV entities than ReVerb45K.
	OOVRate float64
	// TypoRate is the probability a surface form carries a small typo.
	TypoRate float64
	// AmbiguousAliasRate is the probability an entity receives an extra
	// alias that collides with another entity's alias in the CKB,
	// creating genuine linking ambiguity.
	AmbiguousAliasRate float64

	// PPDBCoverage is the probability an alias/paraphrase group is
	// indexed by the synthetic PPDB; PPDBNoise the probability of a
	// spurious merge between two unrelated groups.
	PPDBCoverage float64
	PPDBNoise    float64

	// FactCoverage is the fraction of world facts the CKB actually
	// stores. OIE triples are extracted from the whole world, so most
	// triples do NOT correspond to a stored CKB fact — the paper's
	// premise (OKBs enrich incomplete CKBs) and the reason fact-swap
	// heuristics cannot dominate.
	FactCoverage float64
	// AnchorNoise is the fraction of an alias's anchor mass that leaks
	// to a wrong entity, modeling noisy Wikipedia anchors.
	AnchorNoise float64
	// AnchorCoverage is the probability an alias has anchor statistics
	// at all. News-domain surface forms are poorly covered by Wikipedia
	// anchors, which is why popularity-driven linkers collapse on
	// NYTimes2018 in the paper.
	AnchorCoverage float64
	// RelAliasLimit caps how many of a relation's paraphrases the CKB
	// knows as aliases; OIE extractions draw from the full pool, so
	// relation linking is genuinely harder than entity linking, as the
	// paper observes.
	RelAliasLimit int
	// EntAliasCoverage is the probability the CKB knows each
	// non-canonical alias of an entity. OIE text uses the full alias
	// pool, so exact-alias linkers (Wikidata Integrator) miss the rest.
	EntAliasCoverage float64

	// LabelFraction is the fraction of gold groups exposed as labels
	// (the paper manually labels only samples of NYTimes2018).
	LabelFraction float64
	// ValidationFraction is the fraction of entities whose triples form
	// the validation split used for weight learning (paper: 20% on
	// ReVerb45K, none on NYTimes2018).
	ValidationFraction float64

	// EmbedDim is the embedding dimensionality; CorpusSentences the
	// sentences generated per unit of entity weight.
	EmbedDim        int
	CorpusSentences int
}

func clampMin(v, lo int) int {
	if v < lo {
		return lo
	}
	return v
}

// ReVerb45K returns a profile shaped like the ReVerb45K benchmark:
// fully annotated against the CKB, modest noise, every NP denoting a
// CKB entity with at least two aliases in play. scale 1.0 yields the
// paper's 45K triples; use small scales (e.g. 0.02) for tests.
func ReVerb45K(scale float64) Profile {
	return Profile{
		Name:               "ReVerb45K",
		Seed:               45,
		Entities:           clampMin(int(2400*scale), 24),
		Facts:              clampMin(int(9000*scale), 90),
		Triples:            clampMin(int(45000*scale), 450),
		OOVRate:            0.04,
		TypoRate:           0.03,
		AmbiguousAliasRate: 0.45,
		PPDBCoverage:       0.70,
		PPDBNoise:          0.02,
		FactCoverage:       0.45,
		AnchorNoise:        0.35,
		AnchorCoverage:     0.90,
		RelAliasLimit:      2,
		EntAliasCoverage:   0.75,
		LabelFraction:      1.0,
		ValidationFraction: 0.20,
		EmbedDim:           32,
		CorpusSentences:    6,
	}
}

// NYTimes2018 returns a profile shaped like the NYTimes2018 benchmark:
// noisier extractions, many out-of-KB entities, and only sampled gold
// labels (the paper labels 100 NP groups and 100 triples by hand).
func NYTimes2018(scale float64) Profile {
	return Profile{
		Name:               "NYTimes2018",
		Seed:               2018,
		Entities:           clampMin(int(2000*scale), 20),
		Facts:              clampMin(int(7000*scale), 70),
		Triples:            clampMin(int(34000*scale), 340),
		OOVRate:            0.25,
		TypoRate:           0.07,
		AmbiguousAliasRate: 0.50,
		PPDBCoverage:       0.50,
		PPDBNoise:          0.04,
		FactCoverage:       0.30,
		AnchorNoise:        0.45,
		AnchorCoverage:     0.45,
		RelAliasLimit:      2,
		EntAliasCoverage:   0.65,
		LabelFraction:      0.35,
		ValidationFraction: 0,
		EmbedDim:           32,
		CorpusSentences:    6,
	}
}
