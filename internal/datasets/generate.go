package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/ckb"
	"repro/internal/corpus"
	"repro/internal/embedding"
	"repro/internal/okb"
	"repro/internal/ppdb"
)

// Dataset is one synthesized benchmark: the OKB to canonicalize and
// link, the CKB to link against, the derived resources every signal
// consumes, and the gold labels the metrics (and the validation-split
// learner) read.
type Dataset struct {
	Profile Profile

	OKB  *okb.Store
	CKB  *ckb.Store
	Emb  *embedding.Model
	PPDB *ppdb.DB

	// Gold canonicalization: NP/RP surface form -> gold group id. Group
	// ids are entity/relation ids, or "oov:<n>" for out-of-KB groups.
	// Only the labeled subset is present (LabelFraction).
	GoldNPCluster map[string]string
	GoldRPCluster map[string]string

	// Gold linking: surface form -> CKB id ("" = NIL / out of KB).
	GoldNPLink map[string]string
	GoldRPLink map[string]string

	// ValTriples are the triple ids of the validation split (triples
	// associated with ValidationFraction of the entities); TestTriples
	// the rest. Learning may read gold labels of validation surfaces
	// only.
	ValTriples  []int
	TestTriples []int
}

// oovEntity is a minted out-of-KB entity: it exists in the OKB (and in
// the corpus, so it has an embedding) but not in the CKB.
type oovEntity struct {
	key     string
	aliases []string
	topic   int
}

type genState struct {
	p   Profile
	rng *rand.Rand

	entities  []ckb.Entity
	kindOf    map[string]string // entity id -> kind
	byKind    map[string][]int  // kind -> indexes into entities
	relations []ckb.Relation
	facts     []ckb.Fact // world facts: what OIE extractions report
	ckbFacts  []ckb.Fact // the subset the CKB actually stores

	// surfaceOwner enforces that a surface form used in the OKB always
	// denotes one group (see DESIGN.md: ambiguity lives in the CKB alias
	// index, not in the OKB gold labels).
	surfaceOwner map[string]string

	oov       []oovEntity
	topicOf   map[string]int // entity id -> corpus topic
	nameTaken map[string]bool
	// origAliases holds each entity's alias pool before ambiguous-alias
	// donation; the PPDB is built from these, since a real paraphrase DB
	// does not merge distinct entities that merely share an ambiguous
	// surface form.
	origAliases [][]string
}

// Generate synthesizes the dataset described by p.
func Generate(p Profile) (*Dataset, error) {
	g := &genState{
		p:            p,
		rng:          rand.New(rand.NewSource(p.Seed)),
		kindOf:       map[string]string{},
		byKind:       map[string][]int{},
		surfaceOwner: map[string]string{},
		topicOf:      map[string]int{},
		nameTaken:    map[string]bool{},
	}
	g.buildRelations()
	g.buildEntities()
	g.buildFacts()

	triples, goldNPCluster, goldRPCluster, goldNPLink, goldRPLink := g.buildTriples()

	store, err := ckb.NewStore(g.entities, g.relations, g.ckbFacts)
	if err != nil {
		return nil, fmt.Errorf("datasets: building CKB: %w", err)
	}
	g.addAnchors(store)

	emb := g.trainEmbeddings()
	db := g.buildPPDB()

	ds := &Dataset{
		Profile:       p,
		OKB:           okb.NewStore(triples),
		CKB:           store,
		Emb:           emb,
		PPDB:          db,
		GoldNPCluster: goldNPCluster,
		GoldRPCluster: goldRPCluster,
		GoldNPLink:    goldNPLink,
		GoldRPLink:    goldRPLink,
	}
	ds.split(g)
	ds.applyLabelFraction(g)
	return ds, nil
}

// ---------- relations ----------

func (g *genState) buildRelations() {
	limit := g.p.RelAliasLimit
	for i, seed := range relationSeeds {
		aliases := append([]string(nil), seed.phrases...)
		// The CKB knows only a prefix of the paraphrase pool; OIE
		// extractions draw from all of it, so some RP surface forms have
		// no close CKB alias — the paper's "relations have much more
		// representations than entities".
		if limit > 0 && len(aliases) > limit {
			aliases = aliases[:limit]
		}
		g.relations = append(g.relations, ckb.Relation{
			ID:       fmt.Sprintf("r%02d", i),
			Name:     seed.name,
			Category: seed.category,
			Aliases:  aliases,
			Domain:   seed.domainKind,
			Range:    seed.rangeKind,
		})
	}
}

// ---------- entities ----------

var placePrefixes = []string{"", "north", "south", "east", "west", "new", "port", "fort", "lake", "mount"}

func (g *genState) mintName(kind string) string {
	for attempt := 0; ; attempt++ {
		var name string
		switch kind {
		case kindPerson:
			name = firstNames[g.rng.Intn(len(firstNames))] + " " + lastNames[g.rng.Intn(len(lastNames))]
		case kindPlace:
			pre := placePrefixes[g.rng.Intn(len(placePrefixes))]
			base := places[g.rng.Intn(len(places))]
			name = strings.TrimSpace(pre + " " + base)
		case kindCompany:
			name = orgWords[g.rng.Intn(len(orgWords))] + " " + orgSuffixes[g.rng.Intn(len(orgSuffixes))]
		case kindSchool:
			base := places[g.rng.Intn(len(places))]
			switch g.rng.Intn(3) {
			case 0:
				name = "university of " + base
			case 1:
				name = base + " state university"
			default:
				name = base + " college"
			}
		case kindTeam:
			name = places[g.rng.Intn(len(places))] + " " + teamWords[g.rng.Intn(len(teamWords))]
		default: // kindOrg
			suffix := []string{"alliance", "council", "association", "federation"}[g.rng.Intn(4)]
			name = orgWords[g.rng.Intn(len(orgWords))] + " " + suffix
		}
		if attempt > 8 {
			name = fmt.Sprintf("%s %d", name, g.rng.Intn(1000))
		}
		if !g.nameTaken[name] {
			g.nameTaken[name] = true
			return name
		}
	}
}

// abbreviate forms an acronym from the token initials ("university of
// maryland" -> "uom"), the scheme behind aliases like UMD.
func abbreviate(name string) string {
	var b strings.Builder
	for _, tok := range strings.Fields(name) {
		b.WriteByte(tok[0])
	}
	return b.String()
}

// aliasesFor mints the alias pool of an entity.
func (g *genState) aliasesFor(kind, name string) []string {
	toks := strings.Fields(name)
	out := []string{name}
	add := func(a string) {
		a = strings.TrimSpace(a)
		if a != "" && a != name {
			for _, x := range out {
				if x == a {
					return
				}
			}
			out = append(out, a)
		}
	}
	switch kind {
	case kindPerson:
		add(toks[len(toks)-1])                     // last name
		add(toks[0][:1] + " " + toks[len(toks)-1]) // initial + last
	case kindSchool:
		if len(toks) >= 3 {
			add(abbreviate(name)) // "uom"
		}
		add(strings.Replace(name, "university", "univ", 1))
	case kindCompany:
		add(toks[0]) // "granite" for "granite holdings"
		if len(toks) >= 2 {
			add(abbreviate(name))
		}
	case kindTeam:
		add(toks[len(toks)-1]) // "tigers"
		add("the " + toks[len(toks)-1])
	case kindPlace:
		if len(toks) == 1 {
			add(toks[0] + " city")
		} else {
			add(abbreviate(name))
		}
	default:
		add(toks[0])
		add(abbreviate(name))
	}
	return out
}

func (g *genState) buildEntities() {
	// Allocate entities to kinds in proportion to how often relations
	// use each kind as an argument.
	usage := map[string]int{}
	for _, seed := range relationSeeds {
		usage[seed.domainKind]++
		usage[seed.rangeKind]++
	}
	kinds := make([]string, 0, len(usage))
	for k := range usage {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	totalUsage := 0
	for _, k := range kinds {
		totalUsage += usage[k]
	}
	nTopics := g.p.Entities/8 + 4

	id := 0
	for _, kind := range kinds {
		n := g.p.Entities * usage[kind] / totalUsage
		if n < 2 {
			n = 2
		}
		for i := 0; i < n; i++ {
			name := g.mintName(kind)
			eid := fmt.Sprintf("e%04d", id)
			id++
			e := ckb.Entity{
				ID:      eid,
				Name:    name,
				Aliases: g.aliasesFor(kind, name),
				Types:   []string{kind},
			}
			g.entities = append(g.entities, e)
			g.kindOf[eid] = kind
			g.byKind[kind] = append(g.byKind[kind], len(g.entities)-1)
			g.topicOf[eid] = g.rng.Intn(nTopics)
		}
	}
	for i := range g.entities {
		g.origAliases = append(g.origAliases, append([]string(nil), g.entities[i].Aliases...))
	}
	// The CKB's alias knowledge is partial: each non-canonical alias is
	// kept with probability EntAliasCoverage. The OKB keeps drawing
	// surface forms from the full pool (stored in origAliases), so some
	// OIE surfaces have no exact CKB alias.
	if cov := g.p.EntAliasCoverage; cov > 0 && cov < 1 {
		for i := range g.entities {
			aliases := g.entities[i].Aliases
			kept := aliases[:1] // canonical name always known
			for _, a := range aliases[1:] {
				if g.rng.Float64() < cov {
					kept = append(kept, a)
				}
			}
			g.entities[i].Aliases = kept
		}
	}
	// Ambiguous aliases: give some entities an alias another entity of
	// the same kind already carries, creating CKB-side ambiguity.
	for i := range g.entities {
		if g.rng.Float64() >= g.p.AmbiguousAliasRate {
			continue
		}
		peers := g.byKind[g.kindOf[g.entities[i].ID]]
		j := peers[g.rng.Intn(len(peers))]
		if j == i {
			continue
		}
		donor := g.entities[j].Aliases
		alias := donor[g.rng.Intn(len(donor))]
		if alias != g.entities[i].Name {
			g.entities[i].Aliases = append(g.entities[i].Aliases, alias)
		}
	}
}

// ---------- facts ----------

// zipfPick samples an index in [0, n) with probability ∝ 1/(i+1)^0.8
// over a fixed random permutation-free ordering (index = rank).
func (g *genState) zipfPick(n int) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF free method: rejection on the unnormalized weight.
	for {
		i := g.rng.Intn(n)
		w := 1.0 / math.Pow(float64(i+1), 0.8)
		if g.rng.Float64() < w {
			return i
		}
	}
}

func (g *genState) buildFacts() {
	seen := map[ckb.Fact]bool{}
	attempts := 0
	for len(g.facts) < g.p.Facts && attempts < g.p.Facts*40 {
		attempts++
		ri := g.rng.Intn(len(relationSeeds))
		seed := relationSeeds[ri]
		domains := g.byKind[seed.domainKind]
		ranges := g.byKind[seed.rangeKind]
		if len(domains) == 0 || len(ranges) == 0 {
			continue
		}
		s := g.entities[domains[g.zipfPick(len(domains))]].ID
		o := g.entities[ranges[g.zipfPick(len(ranges))]].ID
		if s == o {
			continue
		}
		f := ckb.Fact{Subj: s, Rel: g.relations[ri].ID, Obj: o}
		if seen[f] {
			continue
		}
		seen[f] = true
		g.facts = append(g.facts, f)
	}
	// The CKB stores only part of the world (FactCoverage); the rest is
	// exactly the knowledge OKB integration is meant to add.
	coverage := g.p.FactCoverage
	if coverage <= 0 || coverage > 1 {
		coverage = 1
	}
	for _, f := range g.facts {
		if g.rng.Float64() < coverage {
			g.ckbFacts = append(g.ckbFacts, f)
		}
	}
}

// ---------- triples ----------

// typo corrupts one token of the phrase: either a transposition of two
// adjacent letters or a dropped letter. Tokens shorter than 5 runes are
// left alone so abbreviations survive.
func (g *genState) typo(phrase string) string {
	toks := strings.Fields(phrase)
	order := g.rng.Perm(len(toks))
	for _, i := range order {
		t := toks[i]
		if len(t) < 5 {
			continue
		}
		pos := 1 + g.rng.Intn(len(t)-2)
		if g.rng.Intn(2) == 0 {
			toks[i] = t[:pos] + string(t[pos+1]) + string(t[pos]) + t[pos+2:]
		} else {
			toks[i] = t[:pos] + t[pos+1:]
		}
		break
	}
	return strings.Join(toks, " ")
}

// inflect produces a surface variant of a base relation phrase,
// injecting the tense/auxiliary variation Morph Norm exists to strip.
func (g *genState) inflect(base string) string {
	toks := strings.Fields(base)
	if len(toks) == 0 {
		return base
	}
	verb := toks[0]
	rest := strings.Join(toks[1:], " ")
	join := func(v string) string { return strings.TrimSpace(v + " " + rest) }
	if verb == "be" {
		switch g.rng.Intn(4) {
		case 0:
			return join("is")
		case 1:
			return join("was")
		case 2:
			return join("be")
		default:
			return join("has been")
		}
	}
	switch g.rng.Intn(4) {
	case 0:
		return join(verb) // base form
	case 1: // 3rd person present
		if strings.HasSuffix(verb, "y") {
			return join(verb[:len(verb)-1] + "ies")
		}
		return join(verb + "s")
	case 2: // past
		if strings.HasSuffix(verb, "e") {
			return join(verb + "d")
		}
		if strings.HasSuffix(verb, "y") {
			return join(verb[:len(verb)-1] + "ied")
		}
		return join(verb + "ed")
	default:
		past := verb + "ed"
		if strings.HasSuffix(verb, "e") {
			past = verb + "d"
		} else if strings.HasSuffix(verb, "y") {
			past = verb[:len(verb)-1] + "ied"
		}
		return join("has " + past)
	}
}

// claimSurface registers surface as denoting group; it reports whether
// the claim succeeded (false if another group owns the surface).
func (g *genState) claimSurface(surface, group string) bool {
	if owner, ok := g.surfaceOwner[surface]; ok {
		return owner == group
	}
	g.surfaceOwner[surface] = group
	return true
}

// npSurface picks a surface form for entity aliases, honoring surface
// ownership and typo noise.
func (g *genState) npSurface(group string, aliases []string) string {
	for attempt := 0; attempt < 6; attempt++ {
		a := aliases[g.zipfPick(len(aliases))]
		if g.rng.Float64() < g.p.TypoRate {
			a = g.typo(a)
		}
		if g.claimSurface(a, group) {
			return a
		}
	}
	// Fall back to the full name, which is unique by construction.
	g.claimSurface(aliases[0], group)
	return aliases[0]
}

func (g *genState) mintOOV() *oovEntity {
	kinds := []string{kindPerson, kindCompany, kindPlace}
	kind := kinds[g.rng.Intn(len(kinds))]
	name := g.mintName(kind)
	o := oovEntity{
		key:     fmt.Sprintf("oov:%d", len(g.oov)),
		aliases: g.aliasesFor(kind, name),
		topic:   g.rng.Intn(g.p.Entities/8 + 4),
	}
	g.oov = append(g.oov, o)
	return &g.oov[len(g.oov)-1]
}

func (g *genState) buildTriples() (ts []okb.Triple, npC, rpC, npL, rpL map[string]string) {
	npC = map[string]string{}
	rpC = map[string]string{}
	npL = map[string]string{}
	rpL = map[string]string{}
	entByID := map[string]*ckb.Entity{}
	fullAliases := map[string][]string{}
	for i := range g.entities {
		entByID[g.entities[i].ID] = &g.entities[i]
		fullAliases[g.entities[i].ID] = g.origAliases[i]
	}
	relByID := map[string]*ckb.Relation{}
	relSeedByID := map[string]relationSeed{}
	for i := range g.relations {
		relByID[g.relations[i].ID] = &g.relations[i]
		relSeedByID[g.relations[i].ID] = relationSeeds[i]
	}

	record := func(surface, cluster, link string, isNP bool) {
		if isNP {
			npC[surface] = cluster
			npL[surface] = link
		} else {
			rpC[surface] = cluster
			rpL[surface] = link
		}
	}

	for len(ts) < g.p.Triples {
		f := g.facts[g.zipfPick(len(g.facts))]
		subj := entByID[f.Subj]
		obj := entByID[f.Obj]
		rel := relByID[f.Rel]
		seed := relSeedByID[f.Rel]

		t := okb.Triple{}

		// Subject.
		t.Subj = g.npSurface(subj.ID, fullAliases[subj.ID])
		t.GoldSubj = subj.ID
		record(t.Subj, subj.ID, subj.ID, true)

		// Predicate: paraphrase + inflection. The inflected surface must
		// stay owned by this relation.
		base := seed.phrases[g.rng.Intn(len(seed.phrases))]
		pred := g.inflect(base)
		if !g.claimSurface("rp|"+pred, rel.ID) {
			pred = base
			g.claimSurface("rp|"+pred, rel.ID)
		}
		t.Pred = pred
		t.GoldPred = rel.ID
		record(pred, rel.ID, rel.ID, false)

		// Object, possibly replaced by an out-of-KB entity.
		if g.rng.Float64() < g.p.OOVRate {
			o := g.mintOOV()
			t.Obj = g.npSurface(o.key, o.aliases)
			t.GoldObj = ""
			record(t.Obj, o.key, "", true)
		} else {
			t.Obj = g.npSurface(obj.ID, fullAliases[obj.ID])
			t.GoldObj = obj.ID
			record(t.Obj, obj.ID, obj.ID, true)
		}
		ts = append(ts, t)
	}
	return ts, npC, rpC, npL, rpL
}

// ---------- derived resources ----------

func (g *genState) addAnchors(store *ckb.Store) {
	for rank, e := range g.entities {
		base := 400.0 / math.Pow(float64(rank%97+1), 0.7)
		for ai, alias := range e.Aliases {
			if cov := g.p.AnchorCoverage; cov > 0 && cov < 1 && g.rng.Float64() >= cov {
				continue
			}
			cnt := int(base/float64(ai+1)) + 1
			// A slice of the anchor mass leaks to a random peer entity:
			// Wikipedia anchors are noisy, so popularity is a strong but
			// fallible prior.
			leak := int(float64(cnt) * g.p.AnchorNoise)
			if leak > 0 {
				peers := g.byKind[g.kindOf[e.ID]]
				peer := g.entities[peers[g.rng.Intn(len(peers))]]
				if peer.ID != e.ID {
					store.AddAnchor(alias, peer.ID, leak)
					cnt -= leak
				}
			}
			store.AddAnchor(alias, e.ID, cnt)
		}
	}
}

func (g *genState) trainEmbeddings() *embedding.Model {
	var groups []corpus.Group
	for rank, e := range g.entities {
		groups = append(groups, corpus.Group{
			Key:     e.ID,
			Phrases: g.origAliases[rank],
			Topic:   g.topicOf[e.ID],
			Weight:  1 + 4/(rank%7+1),
		})
	}
	nTopics := g.p.Entities/8 + 4
	for i, r := range g.relations {
		groups = append(groups, corpus.Group{
			Key: r.ID,
			// World text uses the full paraphrase pool; the CKB's
			// truncated alias list reflects KB knowledge, not language.
			Phrases: relationSeeds[i].phrases,
			Topic:   nTopics + i, // one topic per relation: paraphrases share contexts
			Weight:  2,
		})
	}
	for _, o := range g.oov {
		groups = append(groups, corpus.Group{
			Key: o.key, Phrases: o.aliases, Topic: o.topic, Weight: 1,
		})
	}
	c := corpus.Generate(groups, corpus.Config{
		Seed:         g.p.Seed + 1,
		SentencesPer: g.p.CorpusSentences,
	})
	return embedding.Train(c.Tokens(), embedding.Config{
		Dim:  g.p.EmbedDim,
		Seed: g.p.Seed + 2,
	})
}

func (g *genState) buildPPDB() *ppdb.DB {
	b := ppdb.NewBuilder()
	var covered [][]string
	addGroup := func(aliases []string) {
		if g.rng.Float64() >= g.p.PPDBCoverage || len(aliases) < 2 {
			return
		}
		// PPDB has partial coverage even inside a group: drop members
		// occasionally.
		kept := make([]string, 0, len(aliases))
		for _, a := range aliases {
			if len(kept) < 2 || g.rng.Float64() > 0.2 {
				kept = append(kept, a)
			}
		}
		b.AddGroup(kept...)
		covered = append(covered, kept)
	}
	for i := range g.origAliases {
		addGroup(g.origAliases[i])
	}
	for _, seed := range relationSeeds {
		addGroup(seed.phrases)
	}
	for _, o := range g.oov {
		addGroup(o.aliases)
	}
	// Spurious merges model PPDB noise.
	for i := 0; i+1 < len(covered); i++ {
		if g.rng.Float64() < g.p.PPDBNoise {
			j := g.rng.Intn(len(covered))
			if j != i {
				b.AddPair(covered[i][0], covered[j][0])
			}
		}
	}
	return b.Build()
}

// ---------- splits and labeling ----------

func (ds *Dataset) split(g *genState) {
	if ds.Profile.ValidationFraction <= 0 {
		for i := 0; i < ds.OKB.Len(); i++ {
			ds.TestTriples = append(ds.TestTriples, i)
		}
		return
	}
	valEnt := map[string]bool{}
	n := int(float64(len(g.entities)) * ds.Profile.ValidationFraction)
	perm := g.rng.Perm(len(g.entities))
	for _, i := range perm[:n] {
		valEnt[g.entities[i].ID] = true
	}
	for i := 0; i < ds.OKB.Len(); i++ {
		t := ds.OKB.Triple(i)
		if valEnt[t.GoldSubj] {
			ds.ValTriples = append(ds.ValTriples, i)
		} else {
			ds.TestTriples = append(ds.TestTriples, i)
		}
	}
}

func (ds *Dataset) applyLabelFraction(g *genState) {
	if ds.Profile.LabelFraction >= 1 {
		return
	}
	sampleGroups := func(goldCluster map[string]string) map[string]bool {
		groups := map[string]bool{}
		for _, gid := range goldCluster {
			groups[gid] = true
		}
		ids := make([]string, 0, len(groups))
		for gid := range groups {
			ids = append(ids, gid)
		}
		sort.Strings(ids)
		keep := map[string]bool{}
		for _, gid := range ids {
			if g.rng.Float64() < ds.Profile.LabelFraction {
				keep[gid] = true
			}
		}
		return keep
	}
	filter := func(m map[string]string, keep map[string]bool, cluster map[string]string) {
		for k := range m {
			if !keep[cluster[k]] {
				delete(m, k)
			}
		}
	}
	keepNP := sampleGroups(ds.GoldNPCluster)
	keepRP := sampleGroups(ds.GoldRPCluster)
	filter(ds.GoldNPLink, keepNP, ds.GoldNPCluster)
	filter(ds.GoldRPLink, keepRP, ds.GoldRPCluster)
	filter(ds.GoldNPCluster, keepNP, ds.GoldNPCluster)
	filter(ds.GoldRPCluster, keepRP, ds.GoldRPCluster)
}

// ValidationNPLinks returns gold entity links for NP surfaces occurring
// in validation triples — the labels JOCL's learner may consume.
func (ds *Dataset) ValidationNPLinks() map[string]string {
	out := map[string]string{}
	for _, ti := range ds.ValTriples {
		t := ds.OKB.Triple(ti)
		if gid, ok := ds.GoldNPLink[t.Subj]; ok {
			out[t.Subj] = gid
		}
		if gid, ok := ds.GoldNPLink[t.Obj]; ok {
			out[t.Obj] = gid
		}
	}
	return out
}

// ValidationRPLinks returns gold relation links for RP surfaces in
// validation triples.
func (ds *Dataset) ValidationRPLinks() map[string]string {
	out := map[string]string{}
	for _, ti := range ds.ValTriples {
		t := ds.OKB.Triple(ti)
		if gid, ok := ds.GoldRPLink[t.Pred]; ok {
			out[t.Pred] = gid
		}
	}
	return out
}

// ValidationNPClusters / ValidationRPClusters return gold cluster ids
// for validation surfaces (canonicalization labels).
func (ds *Dataset) ValidationNPClusters() map[string]string {
	out := map[string]string{}
	for _, ti := range ds.ValTriples {
		t := ds.OKB.Triple(ti)
		for _, s := range []string{t.Subj, t.Obj} {
			if gid, ok := ds.GoldNPCluster[s]; ok {
				out[s] = gid
			}
		}
	}
	return out
}

// ValidationRPClusters returns gold RP cluster ids for validation
// surfaces.
func (ds *Dataset) ValidationRPClusters() map[string]string {
	out := map[string]string{}
	for _, ti := range ds.ValTriples {
		t := ds.OKB.Triple(ti)
		if gid, ok := ds.GoldRPCluster[t.Pred]; ok {
			out[t.Pred] = gid
		}
	}
	return out
}

// TestNPSurfaces returns the distinct NP surfaces of test triples.
func (ds *Dataset) TestNPSurfaces() []string {
	set := map[string]bool{}
	for _, ti := range ds.TestTriples {
		t := ds.OKB.Triple(ti)
		set[t.Subj] = true
		set[t.Obj] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// TestRPSurfaces returns the distinct RP surfaces of test triples.
func (ds *Dataset) TestRPSurfaces() []string {
	set := map[string]bool{}
	for _, ti := range ds.TestTriples {
		set[ds.OKB.Triple(ti).Pred] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
