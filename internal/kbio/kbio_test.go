package kbio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ckb"
)

func TestEntitiesRoundTrip(t *testing.T) {
	in := []ckb.Entity{
		{ID: "e1", Name: "maryland", Aliases: []string{"maryland", "MD"}, Types: []string{"location"}},
		{ID: "e2", Name: "umd", Aliases: nil, Types: nil},
	}
	var buf bytes.Buffer
	if err := WriteEntities(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEntities(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, in)
	}
}

func TestRelationsRoundTrip(t *testing.T) {
	in := []ckb.Relation{
		{ID: "r1", Name: "location.contained_by", Category: "location", Aliases: []string{"located in", "is in"}},
	}
	var buf bytes.Buffer
	if err := WriteRelations(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRelations(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestFactsRoundTrip(t *testing.T) {
	in := []ckb.Fact{{Subj: "e1", Rel: "r1", Obj: "e2"}}
	var buf bytes.Buffer
	if err := WriteFacts(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFacts(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestAnchorsRoundTrip(t *testing.T) {
	in := []Anchor{{Surface: "Maryland", Entity: "e1", Count: 90}}
	var buf bytes.Buffer
	if err := WriteAnchors(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAnchors(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestCorpusAndParaphrases(t *testing.T) {
	sents := [][]string{{"a", "b"}, {"c"}}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, sents); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sents) {
		t.Errorf("corpus mismatch: %v", got)
	}

	groups := [][]string{{"is in", "located in"}, {"member of"}}
	buf.Reset()
	if err := WriteParaphrases(&buf, groups); err != nil {
		t.Fatal(err)
	}
	gotG, err := ReadParaphrases(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotG, groups) {
		t.Errorf("paraphrases mismatch: %v", gotG)
	}
}

func TestLabelsRoundTrip(t *testing.T) {
	labels := map[string]string{"UMD": "e4", "port foo": ""}
	var buf bytes.Buffer
	if err := WriteLabels(&buf, labels, []string{"UMD", "port foo"}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLabels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, labels) {
		t.Errorf("labels mismatch: %v", got)
	}
}

func TestCommentsAndBlanksSkipped(t *testing.T) {
	in := "# comment\n\ne1\tname\n"
	es, err := ReadEntities(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 1 || es[0].ID != "e1" {
		t.Errorf("got %+v", es)
	}
}

func TestMalformedRows(t *testing.T) {
	if _, err := ReadEntities(strings.NewReader("justone\n")); err == nil {
		t.Error("want error for 1-column entity row")
	}
	if _, err := ReadFacts(strings.NewReader("a\tb\n")); err == nil {
		t.Error("want error for 2-column fact row")
	}
	if _, err := ReadAnchors(strings.NewReader("s\te\tnotanumber\n")); err == nil {
		t.Error("want error for non-numeric anchor count")
	}
}
