// Package kbio reads and writes the on-disk formats the command-line
// tools exchange: tab-separated entity, relation, fact, and anchor
// tables, line-oriented corpora, and paraphrase group files. All
// formats are plain text so data sets can be inspected and edited with
// standard tools.
//
// Formats (one record per line, columns tab-separated, '#' comments
// and blank lines ignored):
//
//	entities.tsv    id  name  alias|alias|...  type|type|...
//	relations.tsv   id  name  category  alias|alias|...
//	facts.tsv       subjID  relID  objID
//	anchors.tsv     surface  entityID  count
//	corpus.txt      space-separated tokens, one sentence per line
//	paraphrases.txt phrase|phrase|... , one group per line
package kbio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/ckb"
)

func scan(r io.Reader, fn func(line int, cols []string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	n := 0
	for sc.Scan() {
		n++
		raw := strings.TrimRight(sc.Text(), "\r\n")
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		if err := fn(n, strings.Split(raw, "\t")); err != nil {
			return err
		}
	}
	return sc.Err()
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, "|")
	out := parts[:0]
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ReadEntities parses an entities table.
func ReadEntities(r io.Reader) ([]ckb.Entity, error) {
	var out []ckb.Entity
	err := scan(r, func(line int, cols []string) error {
		if len(cols) < 2 {
			return fmt.Errorf("kbio: entities line %d: want >= 2 columns, got %d", line, len(cols))
		}
		e := ckb.Entity{ID: cols[0], Name: cols[1]}
		if len(cols) > 2 {
			e.Aliases = splitList(cols[2])
		}
		if len(cols) > 3 {
			e.Types = splitList(cols[3])
		}
		out = append(out, e)
		return nil
	})
	return out, err
}

// WriteEntities writes an entities table.
func WriteEntities(w io.Writer, es []ckb.Entity) error {
	bw := bufio.NewWriter(w)
	for _, e := range es {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%s\n",
			e.ID, e.Name, strings.Join(e.Aliases, "|"), strings.Join(e.Types, "|")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRelations parses a relations table.
func ReadRelations(r io.Reader) ([]ckb.Relation, error) {
	var out []ckb.Relation
	err := scan(r, func(line int, cols []string) error {
		if len(cols) < 3 {
			return fmt.Errorf("kbio: relations line %d: want >= 3 columns, got %d", line, len(cols))
		}
		rel := ckb.Relation{ID: cols[0], Name: cols[1], Category: cols[2]}
		if len(cols) > 3 {
			rel.Aliases = splitList(cols[3])
		}
		out = append(out, rel)
		return nil
	})
	return out, err
}

// WriteRelations writes a relations table.
func WriteRelations(w io.Writer, rs []ckb.Relation) error {
	bw := bufio.NewWriter(w)
	for _, r := range rs {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%s\n",
			r.ID, r.Name, r.Category, strings.Join(r.Aliases, "|")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFacts parses a facts table.
func ReadFacts(r io.Reader) ([]ckb.Fact, error) {
	var out []ckb.Fact
	err := scan(r, func(line int, cols []string) error {
		if len(cols) != 3 {
			return fmt.Errorf("kbio: facts line %d: want 3 columns, got %d", line, len(cols))
		}
		out = append(out, ckb.Fact{Subj: cols[0], Rel: cols[1], Obj: cols[2]})
		return nil
	})
	return out, err
}

// WriteFacts writes a facts table.
func WriteFacts(w io.Writer, fs []ckb.Fact) error {
	bw := bufio.NewWriter(w)
	for _, f := range fs {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\n", f.Subj, f.Rel, f.Obj); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Anchor is one anchor-statistics record.
type Anchor struct {
	Surface string
	Entity  string
	Count   int
}

// ReadAnchors parses an anchors table.
func ReadAnchors(r io.Reader) ([]Anchor, error) {
	var out []Anchor
	err := scan(r, func(line int, cols []string) error {
		if len(cols) != 3 {
			return fmt.Errorf("kbio: anchors line %d: want 3 columns, got %d", line, len(cols))
		}
		n, err := strconv.Atoi(cols[2])
		if err != nil {
			return fmt.Errorf("kbio: anchors line %d: bad count %q", line, cols[2])
		}
		out = append(out, Anchor{Surface: cols[0], Entity: cols[1], Count: n})
		return nil
	})
	return out, err
}

// WriteAnchors writes an anchors table.
func WriteAnchors(w io.Writer, as []Anchor) error {
	bw := bufio.NewWriter(w)
	for _, a := range as {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%d\n", a.Surface, a.Entity, a.Count); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCorpus parses a corpus file: one sentence per line, tokens
// separated by spaces.
func ReadCorpus(r io.Reader) ([][]string, error) {
	var out [][]string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, strings.Fields(line))
	}
	return out, sc.Err()
}

// WriteCorpus writes a corpus file.
func WriteCorpus(w io.Writer, sentences [][]string) error {
	bw := bufio.NewWriter(w)
	for _, s := range sentences {
		if _, err := fmt.Fprintln(bw, strings.Join(s, " ")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadParaphrases parses a paraphrase-groups file: one group per line,
// phrases separated by '|'.
func ReadParaphrases(r io.Reader) ([][]string, error) {
	var out [][]string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if g := splitList(line); len(g) > 0 {
			out = append(out, g)
		}
	}
	return out, sc.Err()
}

// WriteParaphrases writes a paraphrase-groups file.
func WriteParaphrases(w io.Writer, groups [][]string) error {
	bw := bufio.NewWriter(w)
	for _, g := range groups {
		if _, err := fmt.Fprintln(bw, strings.Join(g, "|")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLabels parses a two-column (key, value) label table; the value
// may be empty (NIL).
func ReadLabels(r io.Reader) (map[string]string, error) {
	out := map[string]string{}
	err := scan(r, func(line int, cols []string) error {
		switch len(cols) {
		case 1:
			out[cols[0]] = ""
		case 2:
			out[cols[0]] = cols[1]
		default:
			return fmt.Errorf("kbio: labels line %d: want 1 or 2 columns, got %d", line, len(cols))
		}
		return nil
	})
	return out, err
}

// WriteLabels writes a two-column label table in sorted key order.
func WriteLabels(w io.Writer, labels map[string]string, keys []string) error {
	bw := bufio.NewWriter(w)
	for _, k := range keys {
		if _, err := fmt.Fprintf(bw, "%s\t%s\n", k, labels[k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
