// Package embedding trains distributional word embeddings from a token
// corpus, replacing the paper's pretrained fastText vectors (an
// unavailable external resource). The pipeline is the classical
// count-based equivalent of skip-gram: windowed co-occurrence counts →
// positive pointwise mutual information (PPMI) weighting → truncated
// symmetric eigendecomposition by subspace iteration. Levy & Goldberg
// (NeurIPS 2014) showed this factorization and skip-gram with negative
// sampling optimize near-identical objectives, so the resulting vectors
// have the property the f_emb signal needs: words sharing contexts get
// high cosine similarity.
//
// Phrase vectors are the average of their word vectors, exactly as the
// paper does ("we average the vectors of all the single words in the
// phrase as its embedding for simplicity").
package embedding

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/text"
)

// Config controls training.
type Config struct {
	Dim      int   // embedding dimensionality (default 32)
	Window   int   // co-occurrence window radius (default 4)
	MinCount int   // drop words rarer than this (default 1)
	Iters    int   // subspace-iteration rounds (default 6)
	Seed     int64 // RNG seed for the random initial subspace
}

func (c *Config) defaults() {
	if c.Dim <= 0 {
		c.Dim = 32
	}
	if c.Window <= 0 {
		c.Window = 4
	}
	if c.MinCount <= 0 {
		c.MinCount = 1
	}
	if c.Iters <= 0 {
		c.Iters = 6
	}
}

// Model holds trained word vectors.
type Model struct {
	dim   int
	vocab map[string]int
	words []string
	vecs  [][]float64 // row-normalized word vectors

	// Subword fallback: fastText (the paper's embedding source) builds
	// word vectors from character n-grams, so misspellings embed close
	// to their correct forms. This model is word-level; it reproduces
	// that behaviour by mapping an out-of-vocabulary word to the vector
	// of its closest in-vocabulary word within edit distance 2.
	// Resolution is cached; the cache is guarded for concurrent use.
	fallbackMu    sync.Mutex
	fallbackCache map[string]int // word -> vocab index, -1 = no match
}

// sparse row-major matrix.
type sparse struct {
	n    int
	idx  [][]int32
	vals [][]float64
}

func (m *sparse) mul(x [][]float64, out [][]float64) {
	// out = M * x where x is n×d (dense), M is n×n sparse.
	d := len(x[0])
	for i := 0; i < m.n; i++ {
		row := out[i]
		for k := range row {
			row[k] = 0
		}
		ids, vs := m.idx[i], m.vals[i]
		for t, j := range ids {
			v := vs[t]
			xr := x[j]
			for k := 0; k < d; k++ {
				row[k] += v * xr[k]
			}
		}
	}
}

// Train builds a model from sentences (each a token slice; tokens are
// taken as-is, so callers should pre-tokenize consistently — the
// corpus generator and text.Tokenize both lowercase).
func Train(sentences [][]string, cfg Config) *Model {
	cfg.defaults()

	// Vocabulary with frequency cutoff.
	freq := map[string]int{}
	for _, s := range sentences {
		for _, w := range s {
			freq[w]++
		}
	}
	words := make([]string, 0, len(freq))
	for w, f := range freq {
		if f >= cfg.MinCount {
			words = append(words, w)
		}
	}
	sort.Strings(words)
	vocab := make(map[string]int, len(words))
	for i, w := range words {
		vocab[w] = i
	}
	n := len(words)
	m := &Model{dim: cfg.Dim, vocab: vocab, words: words}
	if n == 0 {
		return m
	}
	if cfg.Dim > n {
		cfg.Dim = n
		m.dim = n
	}

	// Windowed co-occurrence counts (symmetric).
	cooc := make([]map[int32]float64, n)
	for i := range cooc {
		cooc[i] = map[int32]float64{}
	}
	rowSum := make([]float64, n)
	var total float64
	for _, s := range sentences {
		ids := make([]int32, 0, len(s))
		for _, w := range s {
			if id, ok := vocab[w]; ok {
				ids = append(ids, int32(id))
			}
		}
		for i, a := range ids {
			hi := i + cfg.Window + 1
			if hi > len(ids) {
				hi = len(ids)
			}
			for j := i + 1; j < hi; j++ {
				b := ids[j]
				if a == b {
					continue
				}
				cooc[a][b]++
				cooc[b][a]++
				rowSum[a]++
				rowSum[b]++
				total += 2
			}
		}
	}
	if total == 0 {
		m.vecs = make([][]float64, n)
		for i := range m.vecs {
			m.vecs[i] = make([]float64, m.dim)
		}
		return m
	}

	// PPMI transform: max(0, log(p(a,b) / (p(a)p(b)))).
	sp := &sparse{n: n, idx: make([][]int32, n), vals: make([][]float64, n)}
	for a := 0; a < n; a++ {
		ids := make([]int32, 0, len(cooc[a]))
		for b := range cooc[a] {
			ids = append(ids, b)
		}
		sort.Slice(ids, func(x, y int) bool { return ids[x] < ids[y] })
		vals := make([]float64, 0, len(ids))
		keep := ids[:0]
		for _, b := range ids {
			pmi := math.Log(cooc[a][b] * total / (rowSum[a] * rowSum[b]))
			if pmi > 0 {
				keep = append(keep, b)
				vals = append(vals, pmi)
			}
		}
		sp.idx[a] = keep
		sp.vals[a] = vals
	}

	// Subspace iteration for the top-Dim eigenvectors of the symmetric
	// PPMI matrix: Q <- orth(M Q), repeated. Rows of Q scaled by the
	// Rayleigh-quotient eigenvalues give the word vectors.
	rng := rand.New(rand.NewSource(cfg.Seed))
	q := make([][]float64, n)
	tmp := make([][]float64, n)
	for i := 0; i < n; i++ {
		q[i] = make([]float64, cfg.Dim)
		tmp[i] = make([]float64, cfg.Dim)
		for k := range q[i] {
			q[i][k] = rng.NormFloat64()
		}
	}
	orthonormalize(q)
	for it := 0; it < cfg.Iters; it++ {
		sp.mul(q, tmp)
		q, tmp = tmp, q
		orthonormalize(q)
	}
	// Eigenvalue estimates lambda_k = q_k^T M q_k (columnwise Rayleigh).
	sp.mul(q, tmp)
	lambda := make([]float64, cfg.Dim)
	for k := 0; k < cfg.Dim; k++ {
		var dot float64
		for i := 0; i < n; i++ {
			dot += q[i][k] * tmp[i][k]
		}
		if dot < 0 {
			dot = 0
		}
		lambda[k] = math.Sqrt(dot) // sqrt scaling, standard for PPMI-SVD
	}

	m.vecs = make([][]float64, n)
	for i := 0; i < n; i++ {
		v := make([]float64, cfg.Dim)
		for k := 0; k < cfg.Dim; k++ {
			v[k] = q[i][k] * lambda[k]
		}
		m.vecs[i] = v
	}
	return m
}

// orthonormalize applies modified Gram-Schmidt to the columns of the
// n×d matrix stored row-major in q.
func orthonormalize(q [][]float64) {
	if len(q) == 0 {
		return
	}
	n, d := len(q), len(q[0])
	for k := 0; k < d; k++ {
		// A rank-deficient input can zero a column out after projection;
		// reseed deterministically and re-orthogonalize (bounded retries
		// with varied seeds guarantee escape from any fixed subspace).
		for attempt := 0; ; attempt++ {
			// Subtract projections onto previous columns.
			for j := 0; j < k; j++ {
				var dot float64
				for i := 0; i < n; i++ {
					dot += q[i][k] * q[i][j]
				}
				for i := 0; i < n; i++ {
					q[i][k] -= dot * q[i][j]
				}
			}
			var norm float64
			for i := 0; i < n; i++ {
				norm += q[i][k] * q[i][k]
			}
			norm = math.Sqrt(norm)
			if norm >= 1e-12 {
				for i := 0; i < n; i++ {
					q[i][k] /= norm
				}
				break
			}
			if attempt >= d+1 {
				// Give up: leave a unit basis column (n >= d callers).
				for i := 0; i < n; i++ {
					q[i][k] = 0
				}
				q[k%n][k] = 1
				break
			}
			for i := 0; i < n; i++ {
				q[i][k] = math.Sin(float64((i+1)*(k+2)*(attempt+3)) + 0.5)
			}
		}
	}
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.dim }

// VocabSize returns the number of in-vocabulary words.
func (m *Model) VocabSize() int { return len(m.words) }

// Vector returns the embedding of word, or nil when out of vocabulary.
func (m *Model) Vector(word string) []float64 {
	id, ok := m.vocab[word]
	if !ok {
		return nil
	}
	return m.vecs[id]
}

// VectorWithFallback returns the embedding of word, resolving
// out-of-vocabulary words to their closest in-vocabulary spelling
// (edit distance <= 2, ties to the lexicographically smallest). Nil
// when nothing is close enough.
func (m *Model) VectorWithFallback(word string) []float64 {
	if v := m.Vector(word); v != nil {
		return v
	}
	if len(word) < 4 || len(m.words) == 0 {
		return nil // short tokens (abbreviations) must not fuzzy-match
	}
	m.fallbackMu.Lock()
	defer m.fallbackMu.Unlock()
	if m.fallbackCache == nil {
		m.fallbackCache = make(map[string]int)
	}
	if id, ok := m.fallbackCache[word]; ok {
		if id < 0 {
			return nil
		}
		return m.vecs[id]
	}
	bestID, bestDist := -1, 3
	for id, w := range m.words {
		if abs(len(w)-len(word)) >= bestDist || len(w) < 4 {
			continue
		}
		if d := editDistanceAtMost(word, w, bestDist-1); d >= 0 && d < bestDist {
			bestID, bestDist = id, d
			if d == 1 {
				break
			}
		}
	}
	m.fallbackCache[word] = bestID
	if bestID < 0 {
		return nil
	}
	return m.vecs[bestID]
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// editDistanceAtMost computes the Levenshtein distance between a and b
// if it is <= limit, else returns -1 (banded dynamic program).
func editDistanceAtMost(a, b string, limit int) int {
	la, lb := len(a), len(b)
	if abs(la-lb) > limit {
		return -1
	}
	prev := make([]int, lb+1)
	curr := make([]int, lb+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		curr[0] = i
		rowMin := curr[0]
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			v := prev[j] + 1
			if curr[j-1]+1 < v {
				v = curr[j-1] + 1
			}
			if prev[j-1]+cost < v {
				v = prev[j-1] + cost
			}
			curr[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if rowMin > limit {
			return -1
		}
		prev, curr = curr, prev
	}
	if prev[lb] > limit {
		return -1
	}
	return prev[lb]
}

// PhraseVector embeds a phrase as the average of its word vectors
// (tokenized with text.Tokenize), resolving out-of-vocabulary words
// through the subword-style fallback. Nil when no word is known.
func (m *Model) PhraseVector(phrase string) []float64 {
	var sum []float64
	cnt := 0
	for _, w := range text.Tokenize(phrase) {
		v := m.VectorWithFallback(w)
		if v == nil {
			continue
		}
		if sum == nil {
			sum = make([]float64, len(v))
		}
		for k := range v {
			sum[k] += v[k]
		}
		cnt++
	}
	if cnt == 0 {
		return nil
	}
	for k := range sum {
		sum[k] /= float64(cnt)
	}
	return sum
}

// Cosine returns the cosine of two vectors (0 for nil/zero input).
func Cosine(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 || len(a) != len(b) {
		return 0
	}
	var dot, na, nb float64
	for k := range a {
		dot += a[k] * b[k]
		na += a[k] * a[k]
		nb += b[k] * b[k]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// PhraseSimilarity returns Sim_emb(a, b): the cosine similarity of the
// phrase embeddings clipped to [0, 1], which is the range the paper's
// feature functions expect. Unembeddable phrases score 0.
func (m *Model) PhraseSimilarity(a, b string) float64 {
	c := Cosine(m.PhraseVector(a), m.PhraseVector(b))
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}
