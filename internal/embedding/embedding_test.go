package embedding

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
)

// trainToy builds a model over two clearly-separated topics.
func trainToy(t *testing.T) *Model {
	t.Helper()
	groups := []corpus.Group{
		{Key: "g1", Phrases: []string{"maryland university", "umd campus"}, Topic: 0, Weight: 4},
		{Key: "g2", Phrases: []string{"maryland college", "terrapins school"}, Topic: 0, Weight: 4},
		{Key: "g3", Phrases: []string{"warren buffett", "omaha investor"}, Topic: 1, Weight: 4},
		{Key: "g4", Phrases: []string{"berkshire fund", "buffett holdings"}, Topic: 1, Weight: 4},
	}
	c := corpus.Generate(groups, corpus.Config{Seed: 11, SentencesPer: 30})
	return Train(c.Tokens(), Config{Dim: 16, Window: 5, Seed: 7})
}

func TestTrainSeparatesTopics(t *testing.T) {
	m := trainToy(t)
	same := m.PhraseSimilarity("maryland university", "umd campus")
	cross := m.PhraseSimilarity("maryland university", "warren buffett")
	if same <= cross {
		t.Errorf("same-topic sim %v must exceed cross-topic sim %v", same, cross)
	}
	if same < 0.3 {
		t.Errorf("same-topic sim %v suspiciously low", same)
	}
}

func TestVectorLookup(t *testing.T) {
	m := trainToy(t)
	if m.Vector("maryland") == nil {
		t.Error("in-vocab word returned nil")
	}
	if m.Vector("zzzznever") != nil {
		t.Error("OOV word should return nil")
	}
	if m.Dim() != 16 {
		t.Errorf("Dim = %d, want 16", m.Dim())
	}
	if m.VocabSize() == 0 {
		t.Error("empty vocab")
	}
}

func TestPhraseVectorAveraging(t *testing.T) {
	m := trainToy(t)
	a := m.Vector("maryland")
	b := m.Vector("university")
	pv := m.PhraseVector("maryland university")
	if pv == nil || a == nil || b == nil {
		t.Fatal("missing vectors")
	}
	for k := range pv {
		want := (a[k] + b[k]) / 2
		if math.Abs(pv[k]-want) > 1e-9 {
			t.Fatalf("PhraseVector is not the word average at dim %d", k)
		}
	}
	if m.PhraseVector("zzz qqq www") != nil {
		t.Error("all-OOV phrase should embed to nil")
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{1, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("cos of identical = %v", got)
	}
	if got := Cosine([]float64{1, 0}, []float64{0, 1}); math.Abs(got) > 1e-12 {
		t.Errorf("cos of orthogonal = %v", got)
	}
	if got := Cosine([]float64{1, 0}, []float64{-1, 0}); math.Abs(got+1) > 1e-12 {
		t.Errorf("cos of opposite = %v", got)
	}
	if Cosine(nil, []float64{1}) != 0 || Cosine([]float64{0, 0}, []float64{1, 1}) != 0 {
		t.Error("degenerate cosine should be 0")
	}
	if Cosine([]float64{1}, []float64{1, 2}) != 0 {
		t.Error("mismatched dims should be 0")
	}
}

func TestPhraseSimilarityRange(t *testing.T) {
	m := trainToy(t)
	phrases := []string{"maryland university", "warren buffett", "berkshire fund", "zzz unknown"}
	for _, a := range phrases {
		for _, b := range phrases {
			s := m.PhraseSimilarity(a, b)
			if s < 0 || s > 1 || math.IsNaN(s) {
				t.Errorf("PhraseSimilarity(%q,%q) = %v out of [0,1]", a, b, s)
			}
			if math.Abs(s-m.PhraseSimilarity(b, a)) > 1e-12 {
				t.Errorf("asymmetric similarity for %q,%q", a, b)
			}
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	groups := []corpus.Group{
		{Key: "g", Phrases: []string{"alpha beta"}, Topic: 0, Weight: 3},
	}
	c := corpus.Generate(groups, corpus.Config{Seed: 3})
	m1 := Train(c.Tokens(), Config{Dim: 8, Seed: 5})
	m2 := Train(c.Tokens(), Config{Dim: 8, Seed: 5})
	v1, v2 := m1.Vector("alpha"), m2.Vector("alpha")
	for k := range v1 {
		if v1[k] != v2[k] {
			t.Fatal("training not deterministic")
		}
	}
}

func TestTrainEmptyAndTiny(t *testing.T) {
	m := Train(nil, Config{})
	if m.VocabSize() != 0 {
		t.Error("empty corpus should give empty vocab")
	}
	if m.PhraseSimilarity("a", "b") != 0 {
		t.Error("empty model similarity should be 0")
	}
	// Single-sentence corpus with fewer words than Dim.
	m = Train([][]string{{"a", "b"}}, Config{Dim: 32, Seed: 1})
	if m.Vector("a") == nil {
		t.Error("tiny corpus should still embed words")
	}
}

func TestMinCountFilters(t *testing.T) {
	sents := [][]string{{"common", "common", "rare"}, {"common", "other"}}
	m := Train(sents, Config{Dim: 4, MinCount: 2, Seed: 1})
	if m.Vector("rare") != nil {
		t.Error("rare word should be filtered by MinCount")
	}
	if m.Vector("common") == nil {
		t.Error("frequent word should survive MinCount")
	}
}

func TestOrthonormalizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		n, d := 20, 5
		rngv := func(i, k int) float64 {
			return math.Sin(float64(seed%1000)*0.7 + float64(i*7+k*13))
		}
		q := make([][]float64, n)
		for i := range q {
			q[i] = make([]float64, d)
			for k := range q[i] {
				q[i][k] = rngv(i, k)
			}
		}
		orthonormalize(q)
		for a := 0; a < d; a++ {
			for b := a; b < d; b++ {
				var dot float64
				for i := 0; i < n; i++ {
					dot += q[i][a] * q[i][b]
				}
				want := 0.0
				if a == b {
					want = 1.0
				}
				if math.Abs(dot-want) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSubwordFallbackResolvesTypos(t *testing.T) {
	m := trainToy(t)
	// "marylnd" (typo) should resolve to "maryland"'s vector.
	typo := m.VectorWithFallback("marylnd")
	real := m.Vector("maryland")
	if typo == nil {
		t.Fatal("fallback failed to resolve typo")
	}
	if Cosine(typo, real) < 0.999 {
		t.Errorf("typo vector should equal the corrected word's vector")
	}
	// Phrase similarity with a typo should stay high.
	sim := m.PhraseSimilarity("marylnd university", "maryland university")
	if sim < 0.9 {
		t.Errorf("typo phrase similarity = %v, want ~1", sim)
	}
}

func TestSubwordFallbackGuards(t *testing.T) {
	m := trainToy(t)
	if m.VectorWithFallback("xy") != nil {
		t.Error("short tokens must not fuzzy-match")
	}
	if m.VectorWithFallback("completelyunrelatedword") != nil {
		t.Error("distant words must not match")
	}
	// Cache must give identical answers.
	a := m.VectorWithFallback("marylnd")
	b := m.VectorWithFallback("marylnd")
	if &a[0] != &b[0] {
		t.Error("fallback cache should return the same vector")
	}
}

func TestEditDistanceAtMost(t *testing.T) {
	cases := []struct {
		a, b  string
		limit int
		want  int
	}{
		{"maryland", "marylnd", 2, 1},
		{"kitten", "sitting", 3, 3},
		{"kitten", "sitting", 2, -1},
		{"same", "same", 2, 0},
		{"abcdef", "xyz", 2, -1},
	}
	for _, c := range cases {
		if got := editDistanceAtMost(c.a, c.b, c.limit); got != c.want {
			t.Errorf("editDistanceAtMost(%q,%q,%d) = %d, want %d", c.a, c.b, c.limit, got, c.want)
		}
	}
}
