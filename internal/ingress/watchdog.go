package ingress

import (
	"bytes"
	"log/slog"
	"runtime/pprof"
	"time"

	"repro/internal/trace"
)

// WatchdogStatus is a point-in-time view of the pipeline's liveness
// accounting — what /debug/watchdog serves.
type WatchdogStatus struct {
	// Stalled is true while the watchdog considers the pipeline stuck:
	// work pending and no heartbeat for StallAfter.
	Stalled bool `json:"stalled"`
	// LastBeat is the time of the last preparer/committer heartbeat.
	LastBeat time.Time `json:"last_beat"`
	// StallAfter is the liveness bar in effect.
	StallAfter time.Duration `json:"stall_after_ns"`
	// QueueDepth is the current queue depth; OldestAge the age of the
	// oldest submission still waiting (0 when the queue is empty).
	QueueDepth int           `json:"queue_depth"`
	OldestAge  time.Duration `json:"oldest_age_ns"`
	// Preparing/Committing mark a stage currently inside the backend.
	Preparing  bool `json:"preparing"`
	Committing bool `json:"committing"`
	// Stalls counts stalls declared over the pipeline's lifetime.
	Stalls uint64 `json:"stalls"`
}

// StallReport is the flight-recorder snapshot the watchdog captures at
// the moment it declares a stall: enough context to diagnose a wedged
// pipeline after the fact, without a debugger attached at the time.
type StallReport struct {
	// At is when the stall was declared.
	At time.Time `json:"at"`
	// Status is the liveness accounting at declaration time.
	Status WatchdogStatus `json:"status"`
	// Stats are the pipeline's cumulative counters.
	Stats Stats `json:"stats"`
	// ActiveTraces are the traces in flight at capture time — what the
	// stalled pipeline was in the middle of. RecentRequests /
	// RecentGroups are the most recent retained finished traces. All
	// nil with tracing off.
	ActiveTraces   []trace.Finished `json:"active_traces,omitempty"`
	RecentRequests []trace.Finished `json:"recent_requests,omitempty"`
	RecentGroups   []trace.Finished `json:"recent_groups,omitempty"`
	// Goroutines is a full goroutine dump (truncated to 64KiB) — the
	// "where is everything blocked" answer.
	Goroutines string `json:"goroutines"`
}

// beat records preparer/committer progress. Called at every claim,
// prepare completion, and commit boundary; the watchdog measures
// silence between beats.
func (p *Pipeline) beat() { p.lastBeat.Store(time.Now().UnixNano()) }

// Watchdog snapshots the pipeline's liveness accounting.
func (p *Pipeline) Watchdog() WatchdogStatus {
	st := WatchdogStatus{
		Stalled:    p.wdStalled.Load(),
		LastBeat:   time.Unix(0, p.lastBeat.Load()),
		StallAfter: p.cfg.StallAfter,
		QueueDepth: p.Depth(),
		Preparing:  p.preparing.Load(),
		Committing: p.committing.Load(),
		Stalls:     p.stalls.Load(),
	}
	if _, age, ok := p.QueueAge(); ok {
		st.OldestAge = age
	}
	return st
}

// LastStall returns the flight-recorder snapshot of the most recently
// declared stall, or nil if the pipeline never stalled.
func (p *Pipeline) LastStall() *StallReport { return p.lastStall.Load() }

// watchdogLoop polls the liveness accounting until Close. A stall is
// declared on the rising edge of "work pending and no beat for
// StallAfter"; recovery (any beat, or the work draining) clears it.
func (p *Pipeline) watchdogLoop() {
	interval := p.cfg.StallAfter / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	} else if interval > 5*time.Second {
		interval = 5 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-p.quit:
			return
		case <-tick.C:
			p.checkStall()
		}
	}
}

// checkStall evaluates the stall predicate once and handles the
// rising/falling edges.
func (p *Pipeline) checkStall() {
	pending := p.depth.Load() > 0 || p.preparing.Load() || p.committing.Load()
	silent := time.Since(time.Unix(0, p.lastBeat.Load())) > p.cfg.StallAfter
	stalled := pending && silent
	was := p.wdStalled.Swap(stalled)
	if stalled && !was {
		p.stalls.Add(1)
		if p.met != nil {
			p.met.wdStalls.Inc()
		}
		rep := p.captureStall()
		p.lastStall.Store(rep)
		// The log line carries a trimmed dump; the full snapshot stays
		// on LastStall for the /debug/watchdog endpoint.
		dump := rep.Goroutines
		if len(dump) > 4096 {
			dump = dump[:4096] + "\n... truncated (full dump at /debug/watchdog)"
		}
		slog.Default().Warn("ingress pipeline stalled",
			"since_last_beat", time.Since(rep.Status.LastBeat),
			"queue_depth", rep.Status.QueueDepth,
			"oldest_age", rep.Status.OldestAge,
			"preparing", rep.Status.Preparing,
			"committing", rep.Status.Committing,
			"active_traces", len(rep.ActiveTraces),
			"goroutines", dump)
	}
	if !stalled && was {
		slog.Default().Info("ingress pipeline recovered from stall")
	}
}

// captureStall builds the flight-recorder snapshot: liveness state,
// counters, recent traces, and a goroutine dump.
func (p *Pipeline) captureStall() *StallReport {
	rep := &StallReport{
		At:     time.Now(),
		Status: p.Watchdog(),
		Stats:  p.Stats(),
	}
	if p.tracer != nil {
		rep.ActiveTraces = p.tracer.Active()
		rep.RecentRequests = p.tracer.Recent(16)
		rep.RecentGroups = p.tracer.RecentGroups(16)
	}
	var buf bytes.Buffer
	if prof := pprof.Lookup("goroutine"); prof != nil {
		_ = prof.WriteTo(&buf, 1)
	}
	const maxDump = 64 << 10
	dump := buf.String()
	if len(dump) > maxDump {
		dump = dump[:maxDump] + "\n... truncated"
	}
	rep.Goroutines = dump
	return rep
}
