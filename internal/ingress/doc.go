// Package ingress is the production front door of the streaming
// serving stack: a bounded ingest queue in front of stream.Session
// that turns many small concurrent submissions into few large session
// ingests without changing what the session computes.
//
// # Coalescing
//
// Batches submitted while the session is busy pile up in the queue;
// when the preparer goroutine comes free it drains everything queued
// (up to CoalesceDepth, optionally waiting CoalesceWindow for
// stragglers) and merges the batches, in arrival order, into one
// session ingest. Merging is semantics-preserving: ingesting A++B++C
// as one batch yields the same canonical groups, links, and query
// answers as ingesting A, B, C serially, because the epoch's frozen
// statistics do not depend on post-epoch batch boundaries (the
// equivalence suite in this package locks that in). The win is
// amortization — signal evaluation, graph construction, and the BP
// pass are paid once per merged group instead of once per batch.
//
// # Pipelining
//
// The session's ingest is two-phase (stream.Session.Prepare /
// Prepared.Commit), and the pipeline runs the phases on separate
// goroutines connected by an unbuffered channel: while batch N runs
// belief propagation in the committer, the preparer is already
// evaluating signals and building the graph for batch N+1. Commits
// happen strictly in prepare order, so the result stream is identical
// to a serial execution.
//
// # Backpressure and shedding
//
// The queue is bounded. Once its depth crosses the ShedDepth
// high-water mark, Submit fails fast with a ShedError carrying a
// Retry-After estimate derived from the queue depth and the smoothed
// ingest cost, instead of letting latency grow without bound. A
// submission whose context is cancelled while still queued is skipped
// entirely — it never reaches the session. An invalid batch inside a
// coalesced group fails alone: the merged prepare is split and each
// member batch is ingested individually, so one poisoned batch cannot
// reject its neighbors.
//
// # Shutdown
//
// Close stops new submissions, drains every queued batch through the
// session, and waits for the final commit, so a graceful shutdown
// never drops accepted work.
package ingress
