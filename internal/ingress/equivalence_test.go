package ingress

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/ckb"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/embedding"
	"repro/internal/okb"
	"repro/internal/ppdb"
	"repro/internal/query"
	"repro/internal/stream"
)

// The coalescing pipeline's whole claim is that merging queued batches
// is invisible: a session fed A+B+C as one merged ingest must end in
// the same state as a session fed A, B, C serially. These tests pin
// that down at the session level — canonical groups, links, query
// answers, and the accumulated triple log — for both the no-cut and
// the hub-cut inference paths. The merge is only equivalence-preserving
// after the epoch is built (the first batch freezes IDF statistics over
// whatever it contains), which is why every scenario preloads an epoch
// batch before the batches under test; the pipeline inherits the same
// caveat from the session it fronts.

func microWorld(t *testing.T) *ckb.Store {
	t.Helper()
	store, err := ckb.NewStore(
		[]ckb.Entity{
			{ID: "e1", Name: "Alphacorp", Aliases: []string{"alphacorp"}},
			{ID: "e2", Name: "Betalabs", Aliases: []string{"betalabs"}},
			{ID: "e3", Name: "Gammaworks", Aliases: []string{"gammaworks"}},
			{ID: "e4", Name: "Deltasoft", Aliases: []string{"deltasoft"}},
			{ID: "e5", Name: "Epsilonics", Aliases: []string{"epsilonics"}},
			{ID: "e6", Name: "Zetafoundry", Aliases: []string{"zetafoundry"}},
		},
		[]ckb.Relation{
			{ID: "r1", Name: "acquire", Aliases: []string{"acquire"}},
			{ID: "r2", Name: "hire", Aliases: []string{"hire"}},
			{ID: "r3", Name: "sue", Aliases: []string{"sue"}},
		},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func microSession(t *testing.T, cfg stream.Config) *stream.Session {
	t.Helper()
	emb := embedding.Train(nil, embedding.Config{Dim: 8, Seed: 1})
	return stream.New(microWorld(t), emb, ppdb.NewBuilder().Build(), cfg)
}

// sameResult asserts the discrete canonicalization outputs of two
// sessions are identical: groups, group membership maps, and links.
func sameResult(t *testing.T, serial, merged *core.Result, label string) {
	t.Helper()
	if serial == nil || merged == nil {
		t.Fatalf("%s: nil snapshot (serial=%v merged=%v)", label, serial == nil, merged == nil)
	}
	checks := []struct {
		name string
		a, b interface{}
	}{
		{"NPGroups", serial.NPGroups, merged.NPGroups},
		{"RPGroups", serial.RPGroups, merged.RPGroups},
		{"NPGroupOf", serial.NPGroupOf, merged.NPGroupOf},
		{"RPGroupOf", serial.RPGroupOf, merged.RPGroupOf},
		{"NPLinks", serial.NPLinks, merged.NPLinks},
		{"RPLinks", serial.RPLinks, merged.RPLinks},
	}
	for _, c := range checks {
		if !reflect.DeepEqual(c.a, c.b) {
			t.Errorf("%s: %s diverge\nserial: %v\nmerged: %v", label, c.name, c.a, c.b)
		}
	}
}

// sameQueryAnswers asserts both sessions' read paths serve identical
// content for every noun-phrase surface the serial session knows:
// resolutions, clusters, and subject postings (generation ids are
// intentionally excluded — batch counts legitimately differ).
func sameQueryAnswers(t *testing.T, serial, merged *stream.Session, label string) {
	t.Helper()
	a, b := serial.Query(), merged.Query()
	if a == nil || b == nil {
		t.Fatalf("%s: query index missing", label)
	}
	surfaces := make([]string, 0, len(serial.Snapshot().NPLinks))
	for s := range serial.Snapshot().NPLinks {
		surfaces = append(surfaces, s)
	}
	sort.Strings(surfaces)
	for _, s := range surfaces {
		ra, okA := a.ResolveNP(s)
		rb, okB := b.ResolveNP(s)
		if okA != okB {
			t.Errorf("%s: ResolveNP(%q) ok diverges (%v vs %v)", label, s, okA, okB)
			continue
		}
		ra.Gen, rb.Gen = query.GenInfo{}, query.GenInfo{}
		if !reflect.DeepEqual(ra, rb) {
			t.Errorf("%s: ResolveNP(%q) diverges\nserial: %+v\nmerged: %+v", label, s, ra, rb)
		}
		ca, _ := a.NPCluster(s)
		cb, _ := b.NPCluster(s)
		ca.Gen, cb.Gen = query.GenInfo{}, query.GenInfo{}
		if !reflect.DeepEqual(ca, cb) {
			t.Errorf("%s: NPCluster(%q) diverges\nserial: %+v\nmerged: %+v", label, s, ca, cb)
		}
		ta, _ := a.TriplesBySubject(s, 0)
		tb, _ := b.TriplesBySubject(s, 0)
		if !reflect.DeepEqual(ta.Triples, tb.Triples) || ta.Total != tb.Total {
			t.Errorf("%s: TriplesBySubject(%q) diverges (%d vs %d triples)", label, s, ta.Total, tb.Total)
		}
	}
}

// sameCheckpointLog asserts both sessions accumulated the same triple
// log with the same epoch boundary — the durable state a checkpoint
// would serialize, minus the batch counters that legitimately differ.
func sameCheckpointLog(t *testing.T, serial, merged *stream.Session, label string) {
	t.Helper()
	sa, sb := serial.CheckpointState(), merged.CheckpointState()
	if !reflect.DeepEqual(sa.Triples, sb.Triples) {
		t.Errorf("%s: checkpoint triple logs diverge (%d vs %d)", label, len(sa.Triples), len(sb.Triples))
	}
	if sa.EpochTriples != sb.EpochTriples {
		t.Errorf("%s: epoch boundary diverges (%d vs %d)", label, sa.EpochTriples, sb.EpochTriples)
	}
}

func TestCoalescedIngestEqualsSerialNoCut(t *testing.T) {
	cfg := stream.Config{Core: core.DefaultConfig(), Query: query.Config{Enable: true}}
	serial := microSession(t, cfg)
	merged := microSession(t, cfg)

	preload := []okb.Triple{
		{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"},
		{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"},
		{Subj: "epsilonics", Pred: "sue", Obj: "zetafoundry"},
	}
	batchA := []okb.Triple{{Subj: "alpha corp", Pred: "acquire", Obj: "betalabs"}}
	batchB := []okb.Triple{{Subj: "gammaworks", Pred: "hire", Obj: "zetafoundry"}}
	batchC := []okb.Triple{{Subj: "omegaventures", Pred: "acquire", Obj: "alphacorp"}}

	for _, s := range []*stream.Session{serial, merged} {
		if _, err := s.Ingest(preload); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range [][]okb.Triple{batchA, batchB, batchC} {
		if _, err := serial.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}

	// Drive the real pipeline: a generous coalesce window with
	// CoalesceDepth=3 seals the group exactly when the third batch
	// arrives, so A+B+C coalesce into one merged session ingest in
	// submission order.
	p := NewSession(merged, Config{QueueDepth: 8, CoalesceDepth: 3, CoalesceWindow: time.Minute})
	type res struct {
		r   Result
		err error
	}
	var results []chan res
	for i, b := range [][]okb.Triple{batchA, batchB, batchC} {
		out := make(chan res, 1)
		results = append(results, out)
		go func() {
			r, err := p.Submit(context.Background(), b)
			out <- res{r, err}
		}()
		// Wait until the preparer has pulled this batch into the open
		// group before submitting the next, pinning the merge order.
		want := uint64(i + 1)
		waitFor(t, fmt.Sprintf("batch %d claimed", i+1), func() bool {
			return p.Stats().Submitted == want && p.Depth() == 0
		})
	}
	for i, out := range results {
		r := <-out
		if r.err != nil {
			t.Fatalf("batch %d: %v", i+1, r.err)
		}
		if r.r.Coalesced != 3 {
			t.Errorf("batch %d coalesced = %d, want 3", i+1, r.r.Coalesced)
		}
	}
	closePipeline(t, p)
	if merged.Stats().Batches != 2 {
		t.Fatalf("merged session committed %d batches, want 2", merged.Stats().Batches)
	}

	sameResult(t, serial.Snapshot(), merged.Snapshot(), "no-cut")
	sameQueryAnswers(t, serial, merged, "no-cut")
	sameCheckpointLog(t, serial, merged, "no-cut")
}

func TestCoalescedIngestEqualsSerialHubCut(t *testing.T) {
	ds, err := datasets.Generate(datasets.ReVerb45K(0.01))
	if err != nil {
		t.Fatal(err)
	}
	coreCfg := core.DefaultConfig()
	coreCfg.Segment.Enable = true
	cfg := stream.Config{Core: coreCfg, Query: query.Config{Enable: true}}
	serial := stream.New(ds.CKB, ds.Emb, ds.PPDB, cfg)
	merged := stream.New(ds.CKB, ds.Emb, ds.PPDB, cfg)

	triples := ds.OKB.Triples()
	n := len(triples)
	preload := triples[:n/2]
	chunks := [][]okb.Triple{triples[n/2 : 5*n/8], triples[5*n/8 : 6*n/8], triples[6*n/8:]}

	for _, s := range []*stream.Session{serial, merged} {
		if _, err := s.Ingest(preload); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range chunks {
		if _, err := serial.Ingest(c); err != nil {
			t.Fatal(err)
		}
	}
	all := make([]okb.Triple, 0, n-n/2)
	for _, c := range chunks {
		all = append(all, c...)
	}
	st, err := merged.Ingest(all)
	if err != nil {
		t.Fatal(err)
	}
	if st.CutVariables == 0 {
		t.Fatalf("hub-cut config produced no cuts — test is not exercising segmentation: %+v", st)
	}

	sameResult(t, serial.Snapshot(), merged.Snapshot(), "hub-cut")
	sameQueryAnswers(t, serial, merged, "hub-cut")
	sameCheckpointLog(t, serial, merged, "hub-cut")
}
