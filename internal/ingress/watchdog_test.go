package ingress

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/okb"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// TestWatchdogDetectsStalledCommitter wedges the committer behind a
// gate and asserts the watchdog declares a stall, captures a
// flight-recorder snapshot, exports the metric, and recovers once the
// commit completes.
func TestWatchdogDetectsStalledCommitter(t *testing.T) {
	reg := telemetry.NewRegistry()
	tracer := trace.New(trace.Config{SlowThreshold: -1}, reg)
	be := &fakeBackend{commitGate: make(chan struct{})}
	p := New(be, Config{StallAfter: 20 * time.Millisecond, Registry: reg, Tracer: tracer})

	done := make(chan error, 1)
	go func() {
		_, err := p.Submit(context.Background(), []okb.Triple{tr("a")})
		done <- err
	}()

	waitFor(t, "watchdog to declare a stall", func() bool { return p.Watchdog().Stalled })
	st := p.Watchdog()
	if !st.Committing {
		t.Errorf("stalled status does not show the committer busy: %+v", st)
	}
	if st.Stalls != 1 {
		t.Errorf("stalls = %d, want 1", st.Stalls)
	}
	rep := p.LastStall()
	if rep == nil {
		t.Fatal("no stall report captured")
	}
	if !rep.Status.Stalled || rep.Stats.Submitted != 1 {
		t.Errorf("stall report wrong: %+v", rep.Status)
	}
	if !strings.Contains(rep.Goroutines, "goroutine") {
		t.Errorf("stall report has no goroutine dump: %q", rep.Goroutines[:min(len(rep.Goroutines), 80)])
	}
	// The wedged group trace is still in flight — it must show up in
	// the active-trace snapshot, not the finished rings.
	foundGroup := false
	for _, f := range rep.ActiveTraces {
		if f.Kind == "group" && f.Status == trace.StatusActive {
			foundGroup = true
		}
	}
	if !foundGroup {
		t.Errorf("stall report's active traces missing the in-flight group: %+v", rep.ActiveTraces)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), "jocl_watchdog_stalled 1") {
		t.Error("jocl_watchdog_stalled not 1 during stall")
	}
	if !strings.Contains(b.String(), "jocl_watchdog_stalls_total 1") {
		t.Error("jocl_watchdog_stalls_total not 1 during stall")
	}

	close(be.commitGate)
	if err := <-done; err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	waitFor(t, "watchdog to recover", func() bool { return !p.Watchdog().Stalled })
	b.Reset()
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), "jocl_watchdog_stalled 0") {
		t.Error("jocl_watchdog_stalled not 0 after recovery")
	}
	closePipeline(t, p)
}

// TestQueueAge asserts the oldest-submission accounting: a queued
// batch ages, the gauge reports it, and draining clears it.
func TestQueueAge(t *testing.T) {
	reg := telemetry.NewRegistry()
	be := &fakeBackend{gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	p := New(be, Config{QueueDepth: 4, CoalesceDepth: 1, Registry: reg})

	if _, _, ok := p.QueueAge(); ok {
		t.Fatal("empty queue reports an oldest age")
	}

	done := make(chan struct{}, 2)
	go func() {
		p.Submit(context.Background(), []okb.Triple{tr("a")})
		done <- struct{}{}
	}()
	<-be.entered // preparer busy on "a"
	go func() {
		p.Submit(context.Background(), []okb.Triple{tr("b")})
		done <- struct{}{}
	}()
	waitFor(t, "second submission queued", func() bool { return p.Depth() == 1 })

	enq, age, ok := p.QueueAge()
	if !ok || enq.IsZero() || age < 0 {
		t.Fatalf("QueueAge = (%v, %v, %v)", enq, age, ok)
	}
	time.Sleep(5 * time.Millisecond)
	_, age2, _ := p.QueueAge()
	if age2 <= age {
		t.Errorf("oldest age did not grow: %v then %v", age, age2)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), "jocl_ingress_queue_oldest_age_seconds") {
		t.Error("oldest-age gauge not exported")
	}

	close(be.gate)
	<-done
	<-done
	if _, _, ok := p.QueueAge(); ok {
		t.Error("drained queue still reports an oldest age")
	}
	closePipeline(t, p)
}
