package ingress

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/okb"
	"repro/internal/query"
	"repro/internal/stream"
)

// submitRes carries one Submit/Retract outcome back from its goroutine.
type submitRes struct {
	r   Result
	err error
}

// pinned submits one batch (append or retraction) and waits until the
// preparer has claimed it into the open group before returning, so the
// coalescing order in a test is exactly the call order.
func pinned(t *testing.T, p *Pipeline, batch []okb.Triple, retract bool) chan submitRes {
	t.Helper()
	out := make(chan submitRes, 1)
	go func() {
		var r Result
		var err error
		if retract {
			r, err = p.Retract(context.Background(), batch)
		} else {
			r, err = p.Submit(context.Background(), batch)
		}
		out <- submitRes{r, err}
	}()
	want := p.Stats().Submitted + 1
	waitFor(t, fmt.Sprintf("submission %d claimed", want), func() bool {
		return p.Stats().Submitted == want && p.Depth() == 0
	})
	return out
}

// The retraction analogue of the coalescing equivalence claim: two
// queued retractions merged into one session retraction must leave the
// session exactly where two serial retractions would — same canonical
// groups, same query answers, same durable log and dead set.
func TestCoalescedRetractEqualsSerial(t *testing.T) {
	cfg := stream.Config{Core: core.DefaultConfig(), Query: query.Config{Enable: true}}
	serial := microSession(t, cfg)
	merged := microSession(t, cfg)

	preload := []okb.Triple{
		{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"},
		{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"},
		{Subj: "epsilonics", Pred: "sue", Obj: "zetafoundry"},
	}
	extra := []okb.Triple{
		{Subj: "alpha corp", Pred: "acquire", Obj: "betalabs"},
		{Subj: "gammaworks", Pred: "hire", Obj: "zetafoundry"},
	}
	retractA := []okb.Triple{{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"}}
	retractB := []okb.Triple{{Subj: "alpha corp", Pred: "acquire", Obj: "betalabs"}}

	for _, s := range []*stream.Session{serial, merged} {
		if _, err := s.Ingest(preload); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Ingest(extra); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range [][]okb.Triple{retractA, retractB} {
		if _, err := serial.Retract(b); err != nil {
			t.Fatal(err)
		}
	}

	// Drive the real pipeline: CoalesceDepth=2 with a generous window
	// seals the retract group exactly when the second retraction arrives.
	p := NewSession(merged, Config{QueueDepth: 8, CoalesceDepth: 2, CoalesceWindow: time.Minute})
	outA := pinned(t, p, retractA, true)
	outB := pinned(t, p, retractB, true)
	for name, out := range map[string]chan submitRes{"A": outA, "B": outB} {
		r := <-out
		if r.err != nil {
			t.Fatalf("retraction %s: %v", name, r.err)
		}
		if r.r.Coalesced != 2 {
			t.Errorf("retraction %s coalesced = %d, want 2", name, r.r.Coalesced)
		}
		if r.r.Stats.Retracted != 2 {
			t.Errorf("retraction %s reported %d tombstones, want the merged group's 2", name, r.r.Stats.Retracted)
		}
	}
	closePipeline(t, p)

	if got := merged.Stats().Retractions; got != 1 {
		t.Fatalf("merged session ran %d retractions, want 1", got)
	}
	if serial.Stats().DeadTriples != 2 || merged.Stats().DeadTriples != 2 {
		t.Fatalf("dead counts = %d vs %d, want 2 each",
			serial.Stats().DeadTriples, merged.Stats().DeadTriples)
	}
	sameResult(t, serial.Snapshot(), merged.Snapshot(), "retract")
	sameQueryAnswers(t, serial, merged, "retract")
	sameCheckpointLog(t, serial, merged, "retract")
	sa, sb := serial.CheckpointState(), merged.CheckpointState()
	if fmt.Sprint(sa.Dead) != fmt.Sprint(sb.Dead) || fmt.Sprint(sa.EpochDead) != fmt.Sprint(sb.EpochDead) {
		t.Errorf("dead sets diverge: %v/%v vs %v/%v", sa.Dead, sa.EpochDead, sb.Dead, sb.EpochDead)
	}
}

// Appends and retractions never merge across each other: a queued item
// of the other kind seals the open group and leads the next one, so
// queue position stays stream position.
func TestKindBoundarySealsCoalescedGroups(t *testing.T) {
	sess := microSession(t, stream.Config{Core: core.DefaultConfig(), Query: query.Config{Enable: true}})
	if _, err := sess.Ingest([]okb.Triple{
		{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"},
		{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"},
	}); err != nil {
		t.Fatal(err)
	}

	p := NewSession(sess, Config{QueueDepth: 8, CoalesceDepth: 8, CoalesceWindow: time.Minute})
	// append, retract, append: the retract seals the first append group
	// (despite CoalesceDepth leaving room), and the final append seals
	// the retract group — three merged operations, coalesced=1 each.
	outs := []chan submitRes{
		pinned(t, p, []okb.Triple{{Subj: "epsilonics", Pred: "sue", Obj: "zetafoundry"}}, false),
		pinned(t, p, []okb.Triple{{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"}}, true),
		pinned(t, p, []okb.Triple{{Subj: "alpha corp", Pred: "acquire", Obj: "betalabs"}}, false),
	}
	closePipeline(t, p)
	for i, out := range outs {
		r := <-out
		if r.err != nil {
			t.Fatalf("submission %d: %v", i+1, r.err)
		}
		if r.r.Coalesced != 1 {
			t.Errorf("submission %d coalesced = %d, want 1 (kind boundary must seal the group)", i+1, r.r.Coalesced)
		}
	}
	if st := p.Stats(); st.MergedIngests != 3 || st.CoalescedBatches != 3 {
		t.Errorf("stats = %+v, want 3 separate merged operations", st)
	}

	// The stream saw the operations in queue order: the retraction
	// tombstoned the pre-queue triple, and the append after it landed on
	// a live session.
	st := sess.Stats()
	if st.Retractions != 1 || st.DeadTriples != 1 {
		t.Errorf("session stats = %+v, want 1 retraction / 1 dead triple", st)
	}
	ix := sess.Query()
	if _, ok := ix.ResolveNP("gammaworks"); ok {
		t.Error("retraction queued between appends did not land")
	}
	if _, ok := ix.ResolveNP("alpha corp"); !ok {
		t.Error("append queued after the retraction did not land")
	}
}

// Regression for the split-abort accounting bug: when a merged retract
// group matches nothing, the split re-prepares each member alone and
// every solo prepare fails too. Each aborted member must run the query
// index's per-prepare rollback — otherwise Behind() is left permanently
// positive and every subsequent read reports a stale index.
func TestRetractSplitAbortKeepsQueryAccounting(t *testing.T) {
	sess := microSession(t, stream.Config{Core: core.DefaultConfig(), Query: query.Config{Enable: true}})
	if _, err := sess.Ingest([]okb.Triple{
		{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"},
		{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"},
	}); err != nil {
		t.Fatal(err)
	}

	p := NewSession(sess, Config{QueueDepth: 8, CoalesceDepth: 2, CoalesceWindow: time.Minute})
	// Two no-match retractions coalesce; the merged prepare fails (no
	// member matches any live triple), splits, and both solo prepares
	// fail the same way.
	outA := pinned(t, p, []okb.Triple{{Subj: "nobody", Pred: "know", Obj: "this"}}, true)
	outB := pinned(t, p, []okb.Triple{{Subj: "nothing", Pred: "match", Obj: "either"}}, true)
	for name, out := range map[string]chan submitRes{"A": outA, "B": outB} {
		r := <-out
		if r.err == nil {
			t.Fatalf("no-match retraction %s reported success: %+v", name, r.r)
		}
		if !errors.Is(r.err, stream.ErrNoLiveMatch) {
			t.Errorf("retraction %s error = %v, want ErrNoLiveMatch through the pipeline", name, r.err)
		}
	}
	if st := p.Stats(); st.Splits != 1 {
		t.Errorf("stats = %+v, want exactly 1 split", st)
	}

	// The core assertion: every aborted member rolled its Begin back, so
	// the index does not claim to be behind a write that never happened.
	ix := sess.Query()
	if behind := ix.Behind(); behind != 0 {
		t.Fatalf("Behind() = %d after all-abort split, want 0", behind)
	}
	gi, ok := ix.Generation()
	if !ok || gi.Generation != 1 || gi.Behind != 0 {
		t.Fatalf("generation after failed retractions = %+v (ok=%v), want unchanged gen 1", gi, ok)
	}

	// And the session still makes forward progress: the next successful
	// operations publish at the correct next generations.
	if _, err := p.Submit(context.Background(), []okb.Triple{{Subj: "epsilonics", Pred: "sue", Obj: "zetafoundry"}}); err != nil {
		t.Fatal(err)
	}
	if gi, ok := ix.Generation(); !ok || gi.Generation != 2 {
		t.Errorf("append after failed retractions published generation %+v (ok=%v), want 2", gi, ok)
	}
	if _, err := p.Retract(context.Background(), []okb.Triple{{Subj: "epsilonics", Pred: "sue", Obj: "zetafoundry"}}); err != nil {
		t.Fatalf("live retraction after failed ones: %v", err)
	}
	closePipeline(t, p)
	gi, ok = ix.Generation()
	if !ok || gi.Generation != 3 || gi.Behind != 0 {
		t.Errorf("final generation = %+v (ok=%v), want gen 3 behind 0", gi, ok)
	}
}
