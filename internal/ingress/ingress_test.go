package ingress

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/okb"
	"repro/internal/stream"
	"repro/internal/trace"
)

// fakeBackend scripts the prepare half of an ingest: it records every
// Prepare/Commit with its batch, optionally blocks Prepare on a gate
// (so tests can pile submissions into the queue deterministically),
// and fails any Prepare whose batch contains a poisoned subject.
type fakeBackend struct {
	mu        sync.Mutex
	prepared  [][]okb.Triple
	committed [][]okb.Triple
	batchNo   int

	gate       chan struct{} // when non-nil, Prepare blocks until closed
	entered    chan struct{} // when non-nil, signalled on Prepare entry
	failOn     string        // Subj that poisons a Prepare
	commitGate chan struct{} // when non-nil, Commit blocks until closed
}

func (b *fakeBackend) Prepare(batch []okb.Triple, _ *trace.Span) (Committable, error) {
	if b.entered != nil {
		select {
		case b.entered <- struct{}{}:
		default:
		}
	}
	if b.gate != nil {
		<-b.gate
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failOn != "" {
		for _, tr := range batch {
			if tr.Subj == b.failOn {
				return nil, fmt.Errorf("poisoned subject %q", tr.Subj)
			}
		}
	}
	cp := append([]okb.Triple(nil), batch...)
	b.prepared = append(b.prepared, cp)
	b.batchNo++
	return &fakeCommittable{
		be:    b,
		batch: cp,
		stats: stream.IngestStats{Batch: b.batchNo, BatchTriples: len(batch), TotalTime: time.Millisecond},
	}, nil
}

// saw reports whether any prepared or committed batch contains a
// triple with the given subject.
func (b *fakeBackend) saw(subj string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, set := range [][][]okb.Triple{b.prepared, b.committed} {
		for _, batch := range set {
			for _, tr := range batch {
				if tr.Subj == subj {
					return true
				}
			}
		}
	}
	return false
}

type fakeCommittable struct {
	be    *fakeBackend
	batch []okb.Triple
	stats stream.IngestStats
}

func (c *fakeCommittable) Commit() stream.IngestStats {
	if c.be.commitGate != nil {
		<-c.be.commitGate
	}
	c.be.mu.Lock()
	c.be.committed = append(c.be.committed, c.batch)
	c.be.mu.Unlock()
	return c.stats
}

func tr(subj string) okb.Triple { return okb.Triple{Subj: subj, Pred: "p", Obj: "o"} }

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func closePipeline(t *testing.T, p *Pipeline) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestSubmitSingleBatch(t *testing.T) {
	be := &fakeBackend{}
	p := New(be, Config{})
	res, err := p.Submit(context.Background(), []okb.Triple{tr("a")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coalesced != 1 || res.Stats.BatchTriples != 1 {
		t.Errorf("unexpected result: %+v", res)
	}
	closePipeline(t, p)
	if len(be.committed) != 1 || len(be.committed[0]) != 1 {
		t.Fatalf("backend committed %v", be.committed)
	}
	st := p.Stats()
	if st.Submitted != 1 || st.MergedIngests != 1 || st.CoalescedBatches != 1 || st.Shed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueuedBatchesCoalesceInArrivalOrder(t *testing.T) {
	be := &fakeBackend{gate: make(chan struct{}), entered: make(chan struct{}, 16)}
	p := New(be, Config{QueueDepth: 8, CoalesceDepth: 8})

	type res struct {
		r   Result
		err error
	}
	submit := func(subj string) chan res {
		out := make(chan res, 1)
		go func() {
			r, err := p.Submit(context.Background(), []okb.Triple{tr(subj)})
			out <- res{r, err}
		}()
		return out
	}

	// The lead batch is claimed immediately and blocks inside Prepare;
	// the next three pile up in the queue in submission order.
	lead := submit("lead")
	<-be.entered
	var followers []chan res
	for i, subj := range []string{"b1", "b2", "b3"} {
		followers = append(followers, submit(subj))
		depth := i + 1
		waitFor(t, fmt.Sprintf("queue depth %d", depth), func() bool { return p.Depth() == depth })
	}
	close(be.gate)

	lr := <-lead
	if lr.err != nil || lr.r.Coalesced != 1 {
		t.Fatalf("lead: %+v, %v", lr.r, lr.err)
	}
	var got []res
	for _, f := range followers {
		got = append(got, <-f)
	}
	for i, g := range got {
		if g.err != nil {
			t.Fatalf("follower %d: %v", i, g.err)
		}
		if g.r.Coalesced != 3 {
			t.Errorf("follower %d coalesced = %d, want 3", i, g.r.Coalesced)
		}
		if g.r.Stats.Batch != got[0].r.Stats.Batch {
			t.Errorf("followers did not share one ingest: %+v", g.r.Stats)
		}
	}
	closePipeline(t, p)

	// The merged prepare must hold the followers' triples in arrival
	// order, and commits must land in prepare order.
	want := []okb.Triple{tr("b1"), tr("b2"), tr("b3")}
	if len(be.prepared) != 2 || !reflect.DeepEqual(be.prepared[1], want) {
		t.Fatalf("prepared = %v", be.prepared)
	}
	if !reflect.DeepEqual(be.committed, be.prepared) {
		t.Fatalf("commit order diverged from prepare order:\n%v\n%v", be.committed, be.prepared)
	}
	st := p.Stats()
	if st.MergedIngests != 2 || st.CoalescedBatches != 4 {
		t.Errorf("stats = %+v", st)
	}
	if f := st.CoalescingFactor(); f != 2 {
		t.Errorf("coalescing factor = %v, want 2", f)
	}
}

func TestInvalidBatchRejectedAtTheDoor(t *testing.T) {
	be := &fakeBackend{}
	p := New(be, Config{})
	defer closePipeline(t, p)

	if _, err := p.Submit(context.Background(), nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := p.Submit(context.Background(), []okb.Triple{{Subj: "", Pred: "p", Obj: "o"}}); err == nil {
		t.Error("malformed triple accepted")
	}
	if st := p.Stats(); st.Submitted != 0 {
		t.Errorf("invalid batches consumed queue slots: %+v", st)
	}
	if len(be.prepared) != 0 {
		t.Errorf("invalid batches reached the backend: %v", be.prepared)
	}
}

func TestOverloadShedsWithRetryAfter(t *testing.T) {
	be := &fakeBackend{gate: make(chan struct{}), entered: make(chan struct{}, 16)}
	p := New(be, Config{QueueDepth: 2, ShedDepth: 2, CoalesceDepth: 8})

	done := make(chan error, 3)
	go func() {
		_, err := p.Submit(context.Background(), []okb.Triple{tr("lead")})
		done <- err
	}()
	<-be.entered
	for i, subj := range []string{"q1", "q2"} {
		go func() {
			_, err := p.Submit(context.Background(), []okb.Triple{tr(subj)})
			done <- err
		}()
		waitFor(t, "queued submission", func() bool { return p.Depth() == i+1 })
	}

	// The queue sits at the high-water mark: the next submission must
	// shed, leaving the session side-effect-free.
	_, err := p.Submit(context.Background(), []okb.Triple{tr("shed-me")})
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("expected *ShedError, got %v", err)
	}
	if shed.Depth < 2 {
		t.Errorf("shed at depth %d", shed.Depth)
	}
	if shed.RetryAfter < time.Second || shed.RetryAfter > 30*time.Second {
		t.Errorf("unreasonable Retry-After %s", shed.RetryAfter)
	}

	close(be.gate)
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Errorf("accepted submission failed: %v", err)
		}
	}
	closePipeline(t, p)
	if be.saw("shed-me") {
		t.Error("shed batch reached the backend")
	}
	if st := p.Stats(); st.Shed != 1 || st.Submitted != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCancelledWhileQueuedNeverReachesSession(t *testing.T) {
	be := &fakeBackend{gate: make(chan struct{}), entered: make(chan struct{}, 16)}
	p := New(be, Config{QueueDepth: 8})

	leadDone := make(chan error, 1)
	go func() {
		_, err := p.Submit(context.Background(), []okb.Triple{tr("lead")})
		leadDone <- err
	}()
	<-be.entered

	ctx, cancel := context.WithCancel(context.Background())
	qDone := make(chan error, 1)
	go func() {
		_, err := p.Submit(ctx, []okb.Triple{tr("withdrawn")})
		qDone <- err
	}()
	waitFor(t, "submission queued", func() bool { return p.Depth() == 1 })
	cancel()
	if err := <-qDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submit returned %v", err)
	}

	close(be.gate)
	if err := <-leadDone; err != nil {
		t.Fatal(err)
	}
	closePipeline(t, p)
	if be.saw("withdrawn") {
		t.Error("cancelled batch reached the backend")
	}
	if st := p.Stats(); st.Cancelled != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPoisonedBatchFailsAloneInCoalescedGroup(t *testing.T) {
	be := &fakeBackend{gate: make(chan struct{}), entered: make(chan struct{}, 16), failOn: "poison"}
	p := New(be, Config{QueueDepth: 8, CoalesceDepth: 8})

	type res struct {
		r   Result
		err error
	}
	submit := func(subj string) chan res {
		out := make(chan res, 1)
		go func() {
			r, err := p.Submit(context.Background(), []okb.Triple{tr(subj)})
			out <- res{r, err}
		}()
		return out
	}

	lead := submit("lead")
	<-be.entered
	good1 := submit("good1")
	waitFor(t, "depth 1", func() bool { return p.Depth() == 1 })
	poison := submit("poison")
	waitFor(t, "depth 2", func() bool { return p.Depth() == 2 })
	good2 := submit("good2")
	waitFor(t, "depth 3", func() bool { return p.Depth() == 3 })
	close(be.gate)

	if lr := <-lead; lr.err != nil {
		t.Fatalf("lead: %v", lr.err)
	}
	for name, ch := range map[string]chan res{"good1": good1, "good2": good2} {
		r := <-ch
		if r.err != nil {
			t.Errorf("%s failed alongside the poisoned batch: %v", name, r.err)
		}
		if r.err == nil && r.r.Coalesced != 1 {
			t.Errorf("%s re-prepared with coalesced=%d, want 1", name, r.r.Coalesced)
		}
	}
	if pr := <-poison; pr.err == nil {
		t.Error("poisoned batch reported success")
	}
	closePipeline(t, p)

	if be.saw("poison") {
		t.Error("poisoned batch left state in the backend")
	}
	st := p.Stats()
	if st.Splits != 1 {
		t.Errorf("stats = %+v", st)
	}
	// lead alone, then the two survivors re-prepared individually.
	if st.MergedIngests != 3 || st.CoalescedBatches != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCloseDrainsQueueAndRejectsNewWork(t *testing.T) {
	be := &fakeBackend{gate: make(chan struct{}), entered: make(chan struct{}, 16)}
	p := New(be, Config{QueueDepth: 8})

	done := make(chan error, 3)
	go func() {
		_, err := p.Submit(context.Background(), []okb.Triple{tr("lead")})
		done <- err
	}()
	<-be.entered
	for i, subj := range []string{"q1", "q2"} {
		go func() {
			_, err := p.Submit(context.Background(), []okb.Triple{tr(subj)})
			done <- err
		}()
		waitFor(t, "queued submission", func() bool { return p.Depth() == i+1 })
	}

	closeErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closeErr <- p.Close(ctx)
	}()
	waitFor(t, "pipeline marked closed", func() bool {
		p.closeMu.RLock()
		defer p.closeMu.RUnlock()
		return p.closed
	})
	if _, err := p.Submit(context.Background(), []okb.Triple{tr("late")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit returned %v, want ErrClosed", err)
	}

	// Unblock the backend: the drain must push every queued batch
	// through before Close returns.
	close(be.gate)
	if err := <-closeErr; err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Errorf("accepted batch dropped at shutdown: %v", err)
		}
	}
	for _, subj := range []string{"lead", "q1", "q2"} {
		if !be.saw(subj) {
			t.Errorf("accepted batch %q not drained", subj)
		}
	}
	if be.saw("late") {
		t.Error("post-close batch reached the backend")
	}
	// A second Close is a no-op wait.
	closePipeline(t, p)
}
