package ingress

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/okb"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Committable is the second half of a two-phase ingest: the prepared
// batch's inference pass, runnable exactly once and unable to fail.
// stream.Prepared satisfies it.
type Committable interface {
	// Commit runs inference over the prepared batch and publishes the
	// result, returning the per-ingest statistics.
	Commit() stream.IngestStats
}

// Backend is what the pipeline drives: the prepare half of a
// two-phase ingest. A stream.Session wrapped by NewSession is the
// production backend; tests substitute fakes to script failures and
// observe call order.
type Backend interface {
	// Prepare validates a batch and runs the parallelizable front half
	// of its ingest (signal evaluation, graph construction). The
	// returned Committable finishes the ingest. sp, when non-nil, is
	// the merged-group trace span the ingest runs under — the backend
	// threads it through so the session's stage breakdown lands in the
	// group trace. Prepare for batch N+1 may be called while batch N's
	// Commit is still running, but Prepare itself is never called
	// concurrently with itself, and Commits happen in Prepare order.
	Prepare(batch []okb.Triple, sp *trace.Span) (Committable, error)
}

// RetractBackend is a Backend that also prepares retractions. The
// production sessionBackend implements it; fakes that only script
// append behavior can skip it (Retract submissions then fail).
type RetractBackend interface {
	Backend
	// PrepareRetract tombstones every live triple matching a batch
	// member by (subject, predicate, object) and rebuilds the graph
	// without the retracted evidence. Same calling contract as Prepare.
	PrepareRetract(batch []okb.Triple, sp *trace.Span) (Committable, error)
}

// sessionBackend adapts a stream.Session to the Backend interface.
type sessionBackend struct{ s *stream.Session }

func (b sessionBackend) Prepare(batch []okb.Triple, sp *trace.Span) (Committable, error) {
	p, err := b.s.PrepareSpan(batch, sp)
	if err != nil {
		return nil, err
	}
	return p, nil
}

func (b sessionBackend) PrepareRetract(batch []okb.Triple, sp *trace.Span) (Committable, error) {
	p, err := b.s.PrepareRetractSpan(batch, sp)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Config tunes a Pipeline. The zero value is usable: every field
// falls back to the package default noted on it.
type Config struct {
	// QueueDepth bounds the number of accepted-but-unprepared batches
	// (default 64). Submissions beyond it are shed.
	QueueDepth int
	// CoalesceDepth caps how many queued batches one merged ingest may
	// absorb (default 16; 1 disables merging but keeps pipelining).
	CoalesceDepth int
	// CoalesceWindow, when positive, is how long the preparer lingers
	// for stragglers after draining the queue before sealing a merged
	// group that is still below CoalesceDepth. Zero (the default)
	// seals immediately: only batches already queued coalesce.
	CoalesceWindow time.Duration
	// ShedDepth is the high-water mark: Submit sheds once queue depth
	// reaches it (default QueueDepth). Values above QueueDepth are
	// moot — a full queue sheds regardless.
	ShedDepth int
	// Registry, when non-nil, receives the jocl_ingress_* metric
	// families (see docs/OBSERVABILITY.md).
	Registry *telemetry.Registry
	// Tracer, when non-nil, gives every submission a request trace
	// (enqueue span, terminal shed/cancel/poison events) and every
	// merged ingest a group trace each member links to. Nil disables
	// tracing — every span call degrades to a no-op.
	Tracer *trace.Tracer
	// StallAfter is the watchdog's liveness bar: with work pending and
	// no preparer/committer heartbeat for this long, the pipeline is
	// declared stalled and a flight-recorder snapshot is captured
	// (default 60s; negative disables the watchdog).
	StallAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CoalesceDepth <= 0 {
		c.CoalesceDepth = 16
	}
	if c.ShedDepth <= 0 {
		c.ShedDepth = c.QueueDepth
	}
	if c.StallAfter == 0 {
		c.StallAfter = 60 * time.Second
	}
	return c
}

// ErrClosed is returned by Submit after Close has begun: the pipeline
// no longer accepts work.
var ErrClosed = errors.New("ingress: pipeline closed")

// ShedError reports a submission refused because the queue crossed
// its high-water mark. RetryAfter is the pipeline's estimate of when
// the queue will have drained enough to accept work, suitable for an
// HTTP Retry-After header.
type ShedError struct {
	// Depth is the queue depth observed at the shed decision.
	Depth int
	// RetryAfter estimates the time until the backlog drains below
	// the high-water mark (clamped to [1s, 30s]).
	RetryAfter time.Duration
}

// Error describes the shed decision.
func (e *ShedError) Error() string {
	return fmt.Sprintf("ingress: queue overloaded (depth %d), retry after %s", e.Depth, e.RetryAfter)
}

// Result reports one successfully ingested submission.
type Result struct {
	// Stats are the session's statistics for the ingest that carried
	// this batch. When batches were coalesced, the merged ingest's
	// stats are shared verbatim by every member submission.
	Stats stream.IngestStats
	// Coalesced is the number of submitted batches the carrying ingest
	// merged (1 = this batch rode alone).
	Coalesced int
	// TraceID is the hex id of THIS submission's request trace (empty
	// with tracing off). It differs from Stats.TraceID, which names the
	// shared merged-group trace the submission links to.
	TraceID string
}

// Stats is a point-in-time snapshot of the pipeline's cumulative
// counters, mirroring the jocl_ingress_* metric families for callers
// without a registry (the bench harness).
type Stats struct {
	// Submitted counts batches accepted into the queue.
	Submitted uint64
	// Shed counts submissions refused past the high-water mark.
	Shed uint64
	// Cancelled counts queued batches whose context was cancelled
	// before the preparer claimed them.
	Cancelled uint64
	// MergedIngests counts session ingests issued.
	MergedIngests uint64
	// CoalescedBatches counts submitted batches carried by those
	// ingests (CoalescedBatches/MergedIngests = coalescing factor).
	CoalescedBatches uint64
	// Splits counts merged prepares that failed and were re-prepared
	// member-by-member to isolate the poisoned batch.
	Splits uint64
}

// CoalescingFactor is the mean number of submitted batches per
// session ingest (0 before the first ingest).
func (s Stats) CoalescingFactor() float64 {
	if s.MergedIngests == 0 {
		return 0
	}
	return float64(s.CoalescedBatches) / float64(s.MergedIngests)
}

// item claim states. The preparer claims items out of the queue; a
// cancelling submitter races it with a single CAS, so a batch is
// either ingested or cleanly skipped, never half-done.
const (
	itemQueued    int32 = iota // in the queue, outcome open
	itemClaimed                // preparer owns it; it will be ingested
	itemCancelled              // submitter withdrew it; preparer skips
)

// item is one queued submission.
type item struct {
	batch []okb.Triple
	// retract marks a retraction submission: the batch names triples to
	// tombstone by (subject, predicate, object) instead of triples to
	// append. Retract items ride the same FIFO queue — their order
	// relative to queued appends is preserved — but only coalesce with
	// adjacent retract items (merging a retraction into an append would
	// change both batches' meaning).
	retract bool
	enq     time.Time
	state   atomic.Int32
	done    chan outcome // buffered(1); exactly one delivery if claimed

	// root is the submission's request trace span; enqSpan its queue
	// wait. Both may be nil (tracing off). enqSpan is ended exactly
	// once: by the preparer on claim (the state CAS makes the claim
	// exclusive) or by the cancelling submitter that won the CAS.
	root    *trace.Span
	enqSpan *trace.Span
}

// outcome is what the committer delivers back to each submitter.
type outcome struct {
	st        stream.IngestStats
	coalesced int
	err       error
	// poisoned marks a prepare rejection (the batch itself was bad),
	// distinguishing the trace terminal status from transport errors.
	poisoned bool
}

// group is one prepared ingest in flight between preparer and
// committer: the members it carries, their shared Committable, and
// the group trace span the commit finishes.
type group struct {
	items     []*item
	prep      Committable
	coalesced int
	root      *trace.Span // may be nil
}

// Pipeline is the bounded, coalescing, two-stage ingest queue in
// front of a session. Construct with New or NewSession; Submit from
// any number of goroutines; Close exactly once at shutdown.
type Pipeline struct {
	cfg Config
	be  Backend

	ch    chan *item
	depth atomic.Int64 // queued (undequeued) items

	// held is an item collect dequeued past a kind boundary (an append
	// group ran into a queued retraction, or vice versa). The preparer
	// leads the next group with it before receiving from the channel.
	// Only the preparer goroutine touches it — no synchronization.
	held *item

	// ageMu guards ages, the FIFO of queued items behind the
	// oldest-submission age accounting. Items are pushed under ageMu
	// *while sending* (so deque order equals channel order) and popped
	// front on claim.
	ageMu sync.Mutex
	ages  []*item

	closeMu sync.RWMutex // guards closed vs in-flight Submits
	closed  bool
	quit    chan struct{}

	commitCh   chan *group
	commitDone chan struct{}

	ewmaBits atomic.Uint64 // smoothed ingest seconds (float64 bits)

	submitted atomic.Uint64
	shed      atomic.Uint64
	cancelled atomic.Uint64
	merged    atomic.Uint64
	coalesced atomic.Uint64
	splits    atomic.Uint64

	// Watchdog state: lastBeat is the unix-nano time of the last
	// preparer/committer heartbeat; preparing/committing mark a stage
	// actively inside the backend (a long Prepare is progress, not a
	// stall, until StallAfter passes without its completion beat).
	lastBeat   atomic.Int64
	preparing  atomic.Bool
	committing atomic.Bool
	wdStalled  atomic.Bool
	stalls     atomic.Uint64
	lastStall  atomic.Pointer[StallReport]

	tracer *trace.Tracer
	met    *pipelineMetrics
}

// pipelineMetrics caches the registered metric handles (nil when
// Config.Registry is nil).
type pipelineMetrics struct {
	submitted    *telemetry.Counter
	shed         *telemetry.Counter
	cancelled    *telemetry.Counter
	merged       *telemetry.Counter
	coalesced    *telemetry.Counter
	splits       *telemetry.Counter
	coalesceSize *telemetry.Histogram
	queueWait    *telemetry.Histogram
	wdStalls     *telemetry.Counter
}

func newPipelineMetrics(r *telemetry.Registry, p *Pipeline) *pipelineMetrics {
	r.GaugeFunc("jocl_ingress_queue_depth",
		"Batches queued in the ingress pipeline, not yet picked up by the preparer.",
		func() float64 { return float64(p.depth.Load()) })
	r.GaugeFunc("jocl_ingress_queue_oldest_age_seconds",
		"Age of the oldest submission still waiting in the ingress queue (0 when empty).",
		func() float64 {
			_, age, ok := p.QueueAge()
			if !ok {
				return 0
			}
			return age.Seconds()
		})
	r.GaugeFunc("jocl_watchdog_stalled",
		"1 while the ingress watchdog considers the pipeline stalled (work pending, no heartbeat for StallAfter).",
		func() float64 {
			if p.wdStalled.Load() {
				return 1
			}
			return 0
		})
	return &pipelineMetrics{
		wdStalls: r.Counter("jocl_watchdog_stalls_total",
			"Stalls the ingress watchdog has declared (rising edges of jocl_watchdog_stalled)."),
		submitted:    r.Counter("jocl_ingress_submitted_total", "Batches accepted into the ingress queue."),
		shed:         r.Counter("jocl_ingress_shed_total", "Submissions shed past the queue high-water mark (HTTP 429)."),
		cancelled:    r.Counter("jocl_ingress_cancelled_total", "Queued batches withdrawn by context cancellation before the session saw them."),
		merged:       r.Counter("jocl_ingress_merged_ingests_total", "Session ingests issued by the pipeline."),
		coalesced:    r.Counter("jocl_ingress_coalesced_batches_total", "Submitted batches carried by those ingests (ratio to merged = coalescing factor)."),
		splits:       r.Counter("jocl_ingress_splits_total", "Merged prepares that failed and were retried batch-by-batch to isolate a poisoned member."),
		coalesceSize: r.Histogram("jocl_ingress_coalesce_batches", "Submitted batches merged into one session ingest.", telemetry.CountBuckets),
		queueWait:    r.Histogram("jocl_ingress_queue_wait_seconds", "Time a batch waited in the queue before the preparer claimed it.", nil),
	}
}

// New builds a pipeline over an arbitrary backend and starts its
// preparer and committer goroutines.
func New(be Backend, cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	p := &Pipeline{
		cfg:        cfg,
		be:         be,
		ch:         make(chan *item, cfg.QueueDepth),
		quit:       make(chan struct{}),
		commitCh:   make(chan *group),
		commitDone: make(chan struct{}),
		tracer:     cfg.Tracer,
	}
	p.lastBeat.Store(time.Now().UnixNano())
	if cfg.Registry != nil {
		p.met = newPipelineMetrics(cfg.Registry, p)
	}
	go p.prepareLoop()
	go p.commitLoop()
	if cfg.StallAfter > 0 {
		go p.watchdogLoop()
	}
	return p
}

// NewSession builds a pipeline in front of a stream.Session.
func NewSession(s *stream.Session, cfg Config) *Pipeline {
	return New(sessionBackend{s}, cfg)
}

// Depth reports the current queue depth (queued, unclaimed batches).
func (p *Pipeline) Depth() int { return int(p.depth.Load()) }

// QueueAge reports the enqueue time and age of the oldest submission
// still waiting in the queue; ok is false when the queue is empty.
func (p *Pipeline) QueueAge() (oldest time.Time, age time.Duration, ok bool) {
	p.ageMu.Lock()
	defer p.ageMu.Unlock()
	if len(p.ages) == 0 {
		return time.Time{}, 0, false
	}
	enq := p.ages[0].enq
	return enq, time.Since(enq), true
}

// Stats snapshots the pipeline's cumulative counters.
func (p *Pipeline) Stats() Stats {
	return Stats{
		Submitted:        p.submitted.Load(),
		Shed:             p.shed.Load(),
		Cancelled:        p.cancelled.Load(),
		MergedIngests:    p.merged.Load(),
		CoalescedBatches: p.coalesced.Load(),
		Splits:           p.splits.Load(),
	}
}

// Submit queues one batch and blocks until the ingest that carries it
// commits, the batch alone fails validation or prepare, the queue
// sheds it (*ShedError), the pipeline is closed (ErrClosed), or ctx
// is cancelled while the batch is still queued — in which case the
// batch is withdrawn before the session ever sees it and ctx.Err() is
// returned. Once the preparer has claimed the batch, cancellation no
// longer withdraws it: Submit then waits for (and reports) the real
// outcome, so a reported success is never rolled back.
func (p *Pipeline) Submit(ctx context.Context, batch []okb.Triple) (Result, error) {
	return p.submit(ctx, batch, false)
}

// Retract queues one retraction batch and blocks like Submit. The
// batch names triples to tombstone by (subject, predicate, object);
// its position in the queue is its position in the stream — every
// append submitted before it is applied first, every append submitted
// after it sees the tombstones. Adjacent queued retractions may
// coalesce into one merged retraction (identical to concatenating the
// batches: members matching no live triple are skipped, and the merge
// fails only when nothing matches at all — the poison-split machinery
// then isolates which member batches were empty). Requires a backend
// implementing RetractBackend; NewSession's always does.
func (p *Pipeline) Retract(ctx context.Context, batch []okb.Triple) (Result, error) {
	if _, ok := p.be.(RetractBackend); !ok {
		return Result{}, fmt.Errorf("ingress: backend does not support retraction")
	}
	return p.submit(ctx, batch, true)
}

func (p *Pipeline) submit(ctx context.Context, batch []okb.Triple, retract bool) (Result, error) {
	// Reject invalid batches at the door: an empty or malformed batch
	// must not burn a queue slot, let alone a session lock.
	if err := stream.ValidateBatch(batch); err != nil {
		return Result{}, err
	}

	// The request trace: rooted at the caller's span context (a
	// traceparent header threaded through ctx) or a fresh trace id.
	// Every exit below ends root with the submission's terminal state.
	op := "ingest"
	if retract {
		op = "retract"
	}
	root := p.tracer.StartRequest(op, trace.FromContext(ctx))
	var tid string
	if sc := root.Context(); sc.Valid() {
		tid = sc.TraceID.String()
	}

	p.closeMu.RLock()
	if p.closed {
		p.closeMu.RUnlock()
		root.EndStatus(trace.StatusError, "pipeline closed")
		return Result{}, ErrClosed
	}
	if d := p.depth.Load(); d >= int64(p.cfg.ShedDepth) {
		p.closeMu.RUnlock()
		root.EndStatus(trace.StatusShed, "queue past high-water mark")
		return Result{}, p.shedError(int(d))
	}
	it := &item{batch: batch, retract: retract, enq: time.Now(), done: make(chan outcome, 1), root: root}
	// The enqueue span must exist before the item is visible to the
	// preparer: the claim that ends it can race an unsynchronized
	// create otherwise.
	it.enqSpan = root.StartChild("enqueue")
	p.depth.Add(1)
	// Push + send under ageMu so the age deque's order matches channel
	// order exactly (claim pops the front once per receive).
	p.ageMu.Lock()
	sent := false
	select {
	case p.ch <- it:
		p.ages = append(p.ages, it)
		sent = true
	default:
		// Channel full despite the depth check (racing submitters).
	}
	p.ageMu.Unlock()
	if !sent {
		p.depth.Add(-1)
		d := p.depth.Load()
		p.closeMu.RUnlock()
		it.enqSpan.EndStatus(trace.StatusShed, "queue full")
		root.EndStatus(trace.StatusShed, "queue full (racing submitters)")
		return Result{}, p.shedError(int(d))
	}
	p.submitted.Add(1)
	if p.met != nil {
		p.met.submitted.Inc()
	}
	p.closeMu.RUnlock()

	finish := func(out outcome) (Result, error) {
		if out.err != nil {
			status := trace.StatusError
			if out.poisoned {
				status = trace.StatusPoisoned
			}
			root.EndStatus(status, out.err.Error())
			return Result{}, out.err
		}
		root.End()
		return Result{Stats: out.st, Coalesced: out.coalesced, TraceID: tid}, nil
	}
	select {
	case out := <-it.done:
		return finish(out)
	case <-ctx.Done():
		if it.state.CompareAndSwap(itemQueued, itemCancelled) {
			p.cancelled.Add(1)
			if p.met != nil {
				p.met.cancelled.Inc()
			}
			// Winning the CAS makes this submitter the enqueue span's
			// exclusive owner: the preparer's claim lost and never
			// touches the item's spans.
			it.enqSpan.EndStatus(trace.StatusCancelled, "withdrawn while queued")
			root.EndStatus(trace.StatusCancelled, "withdrawn while queued")
			return Result{}, ctx.Err()
		}
		// Claimed first: the ingest is happening; report its outcome.
		return finish(<-it.done)
	}
}

// shedError builds the 429 payload: Retry-After estimates how long
// the backlog takes to drain at the smoothed per-ingest cost, given
// how many merged ingests the queue will collapse into.
func (p *Pipeline) shedError(depth int) *ShedError {
	p.shed.Add(1)
	if p.met != nil {
		p.met.shed.Inc()
	}
	ew := math.Float64frombits(p.ewmaBits.Load())
	if ew <= 0 {
		ew = 1.0 // no ingest observed yet: guess a second
	}
	drains := (depth + p.cfg.CoalesceDepth) / p.cfg.CoalesceDepth // ceil, ≥1
	ra := time.Duration(ew * float64(drains) * float64(time.Second))
	if ra < time.Second {
		ra = time.Second
	} else if ra > 30*time.Second {
		ra = 30 * time.Second
	}
	return &ShedError{Depth: depth, RetryAfter: ra}
}

// claim dequeues bookkeeping for it: returns true when the preparer
// owns the item, false when a cancelling submitter got there first.
// Either way the item leaves the depth count and the age deque —
// claim runs exactly once per channel receive.
func (p *Pipeline) claim(it *item) bool {
	p.beat()
	p.depth.Add(-1)
	p.agePop(it)
	if !it.state.CompareAndSwap(itemQueued, itemClaimed) {
		return false // cancelled while queued; never reaches the session
	}
	it.enqSpan.End()
	if p.met != nil {
		p.met.queueWait.ObserveDuration(time.Since(it.enq))
	}
	return true
}

// agePop removes it from the age deque. The deque order matches
// channel order, so the front hit is the common case; the search
// fallback is pure defense.
func (p *Pipeline) agePop(it *item) {
	p.ageMu.Lock()
	defer p.ageMu.Unlock()
	if len(p.ages) > 0 && p.ages[0] == it {
		p.ages = p.ages[1:]
		return
	}
	for i, x := range p.ages {
		if x == it {
			p.ages = append(p.ages[:i], p.ages[i+1:]...)
			return
		}
	}
}

// prepareLoop is the pipeline's first stage: it claims queued items,
// coalesces them into merged groups, runs Backend.Prepare, and ships
// prepared groups to the committer. On quit it drains everything
// still queued before closing the commit channel — graceful shutdown
// never drops accepted work.
func (p *Pipeline) prepareLoop() {
	defer close(p.commitCh)
	for {
		// A held item (dequeued past a kind boundary by the previous
		// collect) leads the next group before anything new is received.
		if it := p.held; it != nil {
			p.held = nil
			p.handle(it, false)
			continue
		}
		select {
		case it := <-p.ch:
			if !p.claim(it) {
				continue
			}
			p.handle(it, false)
		case <-p.quit:
			for {
				if it := p.held; it != nil {
					p.held = nil
					p.handle(it, true)
					continue
				}
				select {
				case it := <-p.ch:
					if !p.claim(it) {
						continue
					}
					p.handle(it, true)
				default:
					return
				}
			}
		}
	}
}

// handle seals one merged group seeded by lead, prepares it, and
// ships it. draining suppresses the coalesce window (shutdown should
// not linger for stragglers that cannot arrive).
func (p *Pipeline) handle(lead *item, draining bool) {
	grp := p.collect(lead, draining)
	groupName := "ingest-group"
	if lead.retract {
		groupName = "retract-group"
	}

	// One group trace per merged ingest; every member submission's
	// request trace links to it, which is how a request's latency is
	// attributed to the shared Prepare/Commit it rode.
	groupRoot := p.tracer.StartGroup(groupName)
	groupRoot.SetAttr("coalesced", strconv.Itoa(len(grp)))
	for _, it := range grp {
		it.root.Link(groupRoot.Context())
	}

	merged := grp[0].batch
	if len(grp) > 1 {
		n := 0
		for _, it := range grp {
			n += len(it.batch)
		}
		merged = make([]okb.Triple, 0, n)
		for _, it := range grp {
			merged = append(merged, it.batch...)
		}
	}
	prep, err := p.prepare(merged, groupRoot, lead.retract)
	if err != nil {
		if len(grp) == 1 {
			groupRoot.EndStatus(trace.StatusPoisoned, err.Error())
			grp[0].done <- outcome{err: err, poisoned: true}
			return
		}
		// A poisoned member rejected the whole merge: re-prepare each
		// batch alone so only the culprit fails. Each retry gets its
		// own group trace (the member re-links to it). Each solo
		// prepare is a fresh Backend call, so a member that fails runs
		// the backend's own per-prepare rollback (the session's
		// deferred query-index Abort) — the split must never leave a
		// failed member counted as a begun-but-never-applied ingest.
		groupRoot.EndStatus(trace.StatusPoisoned, "merged prepare failed; split: "+err.Error())
		p.splits.Add(1)
		if p.met != nil {
			p.met.splits.Inc()
		}
		for _, it := range grp {
			solo := p.tracer.StartGroup(groupName)
			solo.SetAttr("coalesced", "1")
			it.root.Link(solo.Context())
			prep, err := p.prepare(it.batch, solo, it.retract)
			if err != nil {
				solo.EndStatus(trace.StatusPoisoned, err.Error())
				it.done <- outcome{err: err, poisoned: true}
				continue
			}
			p.ship(&group{items: []*item{it}, prep: prep, coalesced: 1, root: solo})
		}
		return
	}
	p.ship(&group{items: grp, prep: prep, coalesced: len(grp), root: groupRoot})
}

// prepare runs one Backend.Prepare (or RetractBackend.PrepareRetract)
// under the group trace's "prepare" child span and the watchdog's
// preparing flag + heartbeats.
func (p *Pipeline) prepare(batch []okb.Triple, groupRoot *trace.Span, retract bool) (Committable, error) {
	sp := groupRoot.StartChild("prepare")
	p.preparing.Store(true)
	var prep Committable
	var err error
	if retract {
		prep, err = p.be.(RetractBackend).PrepareRetract(batch, groupRoot)
	} else {
		prep, err = p.be.Prepare(batch, groupRoot)
	}
	p.preparing.Store(false)
	p.beat()
	if err != nil {
		sp.EndStatus(trace.StatusError, err.Error())
		return nil, err
	}
	sp.End()
	return prep, nil
}

// collect greedily drains queued items into lead's group, up to
// CoalesceDepth, optionally lingering CoalesceWindow for stragglers.
// Groups are kind-homogeneous: an item of the other kind (append vs
// retraction) seals the group and is held for the next one — merging
// across the boundary would reorder the stream's updates.
func (p *Pipeline) collect(lead *item, draining bool) []*item {
	grp := []*item{lead}
	for len(grp) < p.cfg.CoalesceDepth {
		select {
		case it := <-p.ch:
			if p.claim(it) {
				if it.retract != lead.retract {
					p.held = it
					return grp
				}
				grp = append(grp, it)
			}
			continue
		default:
		}
		break
	}
	if !draining && p.cfg.CoalesceWindow > 0 && len(grp) < p.cfg.CoalesceDepth {
		timer := time.NewTimer(p.cfg.CoalesceWindow)
		defer timer.Stop()
	window:
		for len(grp) < p.cfg.CoalesceDepth {
			select {
			case it := <-p.ch:
				if p.claim(it) {
					if it.retract != lead.retract {
						p.held = it
						return grp
					}
					grp = append(grp, it)
				}
			case <-timer.C:
				break window
			case <-p.quit:
				break window
			}
		}
	}
	return grp
}

// ship hands a prepared group to the committer and records the
// coalescing telemetry. The send blocks while the previous commit
// runs — that handoff is exactly the depth-1 pipeline overlap.
func (p *Pipeline) ship(g *group) {
	p.merged.Add(1)
	p.coalesced.Add(uint64(g.coalesced))
	if p.met != nil {
		p.met.merged.Inc()
		p.met.coalesced.Add(uint64(g.coalesced))
		p.met.coalesceSize.Observe(float64(g.coalesced))
	}
	p.commitCh <- g
}

// commitLoop is the pipeline's second stage: it commits prepared
// groups in prepare order, feeds the smoothed ingest cost behind
// Retry-After, and delivers each group's shared outcome to every
// member submitter.
func (p *Pipeline) commitLoop() {
	defer close(p.commitDone)
	for g := range p.commitCh {
		p.beat()
		p.committing.Store(true)
		csp := g.root.StartChild("commit")
		st := g.prep.Commit()
		csp.End()
		// The group trace is complete: the session replayed its stage
		// breakdown into g.root during Commit.
		g.root.End()
		p.committing.Store(false)
		p.beat()
		if st.TotalTime > 0 {
			old := math.Float64frombits(p.ewmaBits.Load())
			cur := st.TotalTime.Seconds()
			if old > 0 {
				cur = 0.75*old + 0.25*cur
			}
			p.ewmaBits.Store(math.Float64bits(cur))
		}
		out := outcome{st: st, coalesced: g.coalesced}
		for _, it := range g.items {
			it.done <- out
		}
	}
}

// Close stops accepting submissions, drains every queued batch
// through the backend, and waits for the final commit (or ctx). A
// second Close just waits. After Close, Submit returns ErrClosed.
func (p *Pipeline) Close(ctx context.Context) error {
	p.closeMu.Lock()
	first := !p.closed
	p.closed = true
	p.closeMu.Unlock()
	if first {
		close(p.quit)
	}
	select {
	case <-p.commitDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
