package ingress

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/okb"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// findSpan returns the first span with the given name, or nil.
func findSpan(f trace.Finished, name string) *trace.SpanRecord {
	for i := range f.Spans {
		if f.Spans[i].Name == name {
			return &f.Spans[i]
		}
	}
	return nil
}

// TestTracePropagationCoalesced drives three traceparent-carrying
// submissions into one merged ingest against a real session and
// asserts the full tentpole contract: every request trace is complete
// and retained, links point at the one shared group trace, the group
// trace carries the session's stage breakdown, and the span times
// reconcile with the IngestStats the submitters got back.
func TestTracePropagationCoalesced(t *testing.T) {
	cfg := stream.Config{
		Core:      core.DefaultConfig(),
		Query:     query.Config{Enable: true},
		Telemetry: telemetry.Config{Enable: true},
		Trace:     trace.Config{Enable: true, SlowThreshold: -1},
	}
	sess := microSession(t, cfg)
	// Epoch preload, traced like any other ingest.
	if _, err := sess.Ingest([]okb.Triple{
		{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"},
		{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"},
	}); err != nil {
		t.Fatal(err)
	}
	tracer := sess.Tracer()
	if tracer == nil {
		t.Fatal("session has no tracer despite Trace.Enable")
	}

	p := NewSession(sess, Config{
		QueueDepth: 8, CoalesceDepth: 3, CoalesceWindow: time.Minute,
		Registry: sess.Telemetry().Registry, Tracer: tracer,
	})

	batches := [][]okb.Triple{
		{{Subj: "alpha corp", Pred: "acquire", Obj: "betalabs"}},
		{{Subj: "gammaworks", Pred: "hire", Obj: "zetafoundry"}},
		{{Subj: "omegaventures", Pred: "acquire", Obj: "alphacorp"}},
	}
	parents := make([]trace.SpanContext, len(batches))
	outs := make([]chan Result, len(batches))
	for i, b := range batches {
		parents[i] = trace.NewSpanContext()
		outs[i] = make(chan Result, 1)
		ctx := trace.ContextWith(context.Background(), parents[i])
		go func(b []okb.Triple, out chan Result) {
			r, err := p.Submit(ctx, b)
			if err != nil {
				t.Errorf("Submit: %v", err)
			}
			out <- r
		}(b, outs[i])
		want := uint64(i + 1)
		waitFor(t, fmt.Sprintf("batch %d claimed", i+1), func() bool {
			return p.Stats().Submitted == want && p.Depth() == 0
		})
	}

	var results []Result
	for _, out := range outs {
		results = append(results, <-out)
	}
	closePipeline(t, p)

	groupID := results[0].Stats.TraceID
	if groupID == "" {
		t.Fatal("IngestStats carry no group trace id")
	}
	for i, r := range results {
		if r.Coalesced != 3 {
			t.Errorf("batch %d coalesced = %d, want 3", i, r.Coalesced)
		}
		if r.Stats.TraceID != groupID {
			t.Errorf("batch %d group id %s, want shared %s", i, r.Stats.TraceID, groupID)
		}
		// The submission's own trace id is the traceparent's, not the
		// group's.
		if want := parents[i].TraceID.String(); r.TraceID != want {
			t.Errorf("batch %d request trace id %s, want traceparent's %s", i, r.TraceID, want)
		}

		fin, ok := tracer.Get(parents[i].TraceID)
		if !ok {
			t.Fatalf("batch %d request trace not retained", i)
		}
		if fin.Kind != "request" || fin.Status != trace.StatusOK {
			t.Fatalf("batch %d request trace: %+v", i, fin)
		}
		root := findSpan(fin, "ingest")
		enq := findSpan(fin, "enqueue")
		if root == nil || enq == nil {
			t.Fatalf("batch %d tree incomplete: %+v", i, fin.Spans)
		}
		if root.Parent != parents[i].SpanID {
			t.Errorf("batch %d root not parented to traceparent span", i)
		}
		if enq.Parent != root.ID || enq.Status != trace.StatusOK {
			t.Errorf("batch %d enqueue span wrong: %+v", i, enq)
		}
		if len(root.Links) != 1 || root.Links[0].TraceID.String() != groupID {
			t.Errorf("batch %d link does not point at group %s: %+v", i, groupID, root.Links)
		}
	}

	gid, ok := trace.ParseTraceID(groupID)
	if !ok {
		t.Fatalf("bad group id %q", groupID)
	}
	gfin, ok := tracer.Get(gid)
	if !ok {
		t.Fatal("group trace not retained")
	}
	if gfin.Kind != "group" || gfin.Status != trace.StatusOK {
		t.Fatalf("group trace: %+v", gfin)
	}
	groot := findSpan(gfin, "ingest-group")
	prep := findSpan(gfin, "prepare")
	commit := findSpan(gfin, "commit")
	if groot == nil || prep == nil || commit == nil {
		t.Fatalf("group tree incomplete: %+v", gfin.Spans)
	}
	if groot.Attrs["coalesced"] != "3" {
		t.Errorf("group coalesced attr = %q, want 3", groot.Attrs["coalesced"])
	}
	// The session's stage breakdown was replayed into the group trace.
	for _, stage := range []string{"graph-build", "bp", "publish"} {
		if findSpan(gfin, stage) == nil {
			t.Errorf("group trace missing replayed stage %q: %+v", stage, gfin.Spans)
		}
	}

	// Span-time reconciliation: prepare + commit cover the ingest
	// wall-to-wall (the committer was idle, so the handoff gap is
	// noise), and IngestStats.TotalTime spans the same interval.
	total := results[0].Stats.TotalTime
	covered := prep.Duration + commit.Duration
	diff := covered - total
	if diff < 0 {
		diff = -diff
	}
	slack := total / 20 // 5%
	if slack < 2*time.Millisecond {
		slack = 2 * time.Millisecond // absolute floor for tiny ingests
	}
	if diff > slack {
		t.Errorf("span times do not reconcile: prepare+commit=%v vs TotalTime=%v (diff %v > slack %v)",
			covered, total, diff, slack)
	}
}

// TestTraceTerminalStatuses covers the abnormal exits: shed, cancel,
// and poison all leave retained traces with the right terminal status.
func TestTraceTerminalStatuses(t *testing.T) {
	tracer := trace.New(trace.Config{SlowThreshold: -1, Capacity: 32}, nil)
	be := &fakeBackend{gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	p := New(be, Config{QueueDepth: 1, ShedDepth: 1, CoalesceDepth: 1, Tracer: tracer})

	// First submission occupies the preparer (blocked on the gate).
	firstDone := make(chan error, 1)
	go func() {
		_, err := p.Submit(context.Background(), []okb.Triple{tr("a")})
		firstDone <- err
	}()
	<-be.entered

	// Second submission sits in the queue.
	secondCtx, cancelSecond := context.WithCancel(context.Background())
	secondParent := trace.NewSpanContext()
	secondDone := make(chan error, 1)
	go func() {
		_, err := p.Submit(trace.ContextWith(secondCtx, secondParent), []okb.Triple{tr("b")})
		secondDone <- err
	}()
	waitFor(t, "second submission queued", func() bool { return p.Depth() == 1 })

	// Third submission sheds at the high-water mark.
	shedParent := trace.NewSpanContext()
	_, err := p.Submit(trace.ContextWith(context.Background(), shedParent), []okb.Triple{tr("c")})
	if _, ok := err.(*ShedError); !ok {
		t.Fatalf("want ShedError, got %v", err)
	}
	fin, ok := tracer.Get(shedParent.TraceID)
	if !ok || fin.Status != trace.StatusShed || fin.SampledFor != "shed" {
		t.Fatalf("shed trace wrong: %+v ok=%v", fin, ok)
	}

	// Cancel the queued submission: terminal cancelled spans.
	cancelSecond()
	if err := <-secondDone; err != context.Canceled {
		t.Fatalf("cancelled submit returned %v", err)
	}
	fin, ok = tracer.Get(secondParent.TraceID)
	if !ok || fin.Status != trace.StatusCancelled {
		t.Fatalf("cancelled trace wrong: %+v ok=%v", fin, ok)
	}
	enq := findSpan(fin, "enqueue")
	if enq == nil || enq.Status != trace.StatusCancelled {
		t.Fatalf("cancelled enqueue span wrong: %+v", fin.Spans)
	}

	close(be.gate)
	if err := <-firstDone; err != nil {
		t.Fatalf("first submit: %v", err)
	}

	// Poisoned single submission: prepare rejects it.
	be.failOn = "bad"
	poisonParent := trace.NewSpanContext()
	if _, err := p.Submit(trace.ContextWith(context.Background(), poisonParent), []okb.Triple{tr("bad")}); err == nil {
		t.Fatal("poisoned submit succeeded")
	}
	waitFor(t, "poisoned trace retained", func() bool {
		_, ok := tracer.Get(poisonParent.TraceID)
		return ok
	})
	fin, _ = tracer.Get(poisonParent.TraceID)
	if fin.Status != trace.StatusPoisoned {
		t.Fatalf("poisoned trace status %q", fin.Status)
	}
	closePipeline(t, p)
}

// TestTracePoisonedSplit asserts the split-retry path: the merged
// group trace ends poisoned, the healthy members re-link to fresh solo
// groups and succeed, and only the culprit's trace ends poisoned.
func TestTracePoisonedSplit(t *testing.T) {
	tracer := trace.New(trace.Config{SlowThreshold: -1, Capacity: 32}, nil)
	be := &fakeBackend{gate: make(chan struct{}), entered: make(chan struct{}, 1), failOn: "bad"}
	p := New(be, Config{QueueDepth: 8, CoalesceDepth: 3, Tracer: tracer})

	// Occupy the preparer so the next two queue up and coalesce.
	leadDone := make(chan error, 1)
	go func() {
		_, err := p.Submit(context.Background(), []okb.Triple{tr("lead")})
		leadDone <- err
	}()
	<-be.entered

	goodParent, badParent := trace.NewSpanContext(), trace.NewSpanContext()
	goodDone, badDone := make(chan Result, 1), make(chan error, 1)
	go func() {
		r, err := p.Submit(trace.ContextWith(context.Background(), goodParent), []okb.Triple{tr("good")})
		if err != nil {
			t.Errorf("good member: %v", err)
		}
		goodDone <- r
	}()
	waitFor(t, "good queued", func() bool { return p.Depth() == 1 })
	go func() {
		_, err := p.Submit(trace.ContextWith(context.Background(), badParent), []okb.Triple{tr("bad")})
		badDone <- err
	}()
	waitFor(t, "bad queued", func() bool { return p.Depth() == 2 })
	close(be.gate)

	if err := <-leadDone; err != nil {
		t.Fatalf("lead: %v", err)
	}
	good := <-goodDone
	if err := <-badDone; err == nil {
		t.Fatal("poisoned member succeeded")
	}
	if p.Stats().Splits != 1 {
		t.Fatalf("splits = %d, want 1", p.Stats().Splits)
	}

	// Good member: ok, linked twice — first to the doomed merged
	// group, then to its solo retry group.
	gfin, ok := tracer.Get(goodParent.TraceID)
	if !ok || gfin.Status != trace.StatusOK {
		t.Fatalf("good member trace: %+v ok=%v", gfin, ok)
	}
	root := findSpan(gfin, "ingest")
	if root == nil || len(root.Links) != 2 {
		t.Fatalf("good member links wrong: %+v", gfin.Spans)
	}
	mergedGroup, ok := tracer.Get(root.Links[0].TraceID)
	if !ok || mergedGroup.Status != trace.StatusPoisoned {
		t.Fatalf("merged group trace: %+v ok=%v", mergedGroup, ok)
	}
	soloGroup, ok := tracer.Get(root.Links[1].TraceID)
	if !ok || soloGroup.Status != trace.StatusOK {
		t.Fatalf("solo group trace: %+v ok=%v", soloGroup, ok)
	}
	if good.Stats.TraceID != "" && good.Stats.TraceID != root.Links[1].TraceID.String() {
		t.Errorf("good member stats trace id %s != solo group %s", good.Stats.TraceID, root.Links[1].TraceID)
	}

	// Bad member: poisoned, linked to both doomed groups.
	bfin, ok := tracer.Get(badParent.TraceID)
	if !ok || bfin.Status != trace.StatusPoisoned {
		t.Fatalf("bad member trace: %+v ok=%v", bfin, ok)
	}
	broot := findSpan(bfin, "ingest")
	if broot == nil || len(broot.Links) != 2 {
		t.Fatalf("bad member links wrong: %+v", bfin.Spans)
	}
	closePipeline(t, p)
}
