package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/factorgraph"
	"repro/internal/okb"
	"repro/internal/query"
)

// Version is the current checkpoint format version. Readers accept
// exactly the versions they know how to decode; an unknown version
// fails Load rather than guessing. Version 2 added the okb symbol
// table (Symbols) and rekeyed the warm state on symbol ids / factor
// signature hashes; version-1 files carry string-keyed warm state that
// cannot be mapped onto the id-keyed stack, so they are rejected.
// Version 3 added retraction state (Dead, EpochDead, Retractions) and
// the query retention ring (QueryGenerations); version-2 files predate
// tombstones — a session restored from one could silently resurrect
// retracted triples — so they are rejected too.
const Version = 3

// DefaultFileName is the canonical checkpoint file name inside a
// checkpoint directory (the serving layer keeps one file per
// directory, atomically replaced on every checkpoint).
const DefaultFileName = "checkpoint.jocl"

// magic identifies a checkpoint stream.
var magic = [8]byte{'J', 'O', 'C', 'L', 'C', 'K', 'P', 'T'}

// maxBodyBytes caps how large a checkpoint body Read will buffer, a
// guard against a corrupt or hostile length prefix allocating
// unboundedly (1 GiB is orders of magnitude beyond any session this
// repo can hold in memory).
const maxBodyBytes = 1 << 30

// Snapshot is the complete durable state of one streaming session at a
// ingest boundary. Every field is exactly the incremental state the
// session already maintains — nothing here is recomputed at save time,
// which is what keeps Checkpoint cheap enough to run in the background.
type Snapshot struct {
	// FormatVersion is stamped by Write and reports, after Read, which
	// format version the file carried.
	FormatVersion int

	// Triples is the accumulated stream in ingest order (gold columns
	// included, so evaluation against a restored session still works).
	Triples []okb.Triple
	// Symbols is the session's interning table (see okb.SymbolTable):
	// every symbol id the warm state, partition memory, and result delta
	// carry resolves through it. Ids are assigned in first-intern order,
	// which depends on ingest history, so the table cannot be re-derived
	// on restore — it must ride along.
	Symbols *okb.SymbolSnapshot
	// EpochTriples is the number of leading triples the current frozen
	// signal epoch was derived over: restore rebuilds the signal
	// resources from Triples[:EpochTriples] and frozen-extends them with
	// the remainder, reproducing the live session's epoch state exactly.
	EpochTriples int
	// Batches / SinceEpoch / Refreshes are the session's ingest
	// counters (SinceEpoch drives the RefreshEvery schedule, so a
	// restored session refreshes on the same future batch an
	// uninterrupted one would).
	Batches    int
	SinceEpoch int
	Refreshes  int
	// PendingRefresh marks sessions whose Refresh() was called after
	// the last ingest: the epoch resources are already torn down and
	// the next ingest must re-derive everything. Restore honors it by
	// leaving the resources unbuilt, so the forced full re-solve
	// happens on the same batch it would have without the restart.
	PendingRefresh bool

	// Cumulative serving counters, continued after restore.
	BlocksTouched int
	BlocksWarm    int
	Repairs       int
	RepairReused  int
	IndexMS       float64

	// Weights are the factor weights the session was configured with
	// (learned offline, seeded via InitialWeights). Restore adopts them
	// when the restoring config carries none, so potentials — and
	// therefore warm-state signatures — match the checkpointed build.
	Weights map[string]float64

	// Warm is the factor-graph warm state exported by the last ingest:
	// transplantable messages keyed by factor signature, variable
	// adjacency, boundary baselines, block fingerprints, and the
	// persistent partition memory. A restored session hands it to its
	// first RunIncremental unchanged, so adopted blocks stay warm and
	// repairs pick up the carried cuts.
	Warm *factorgraph.WarmState

	// Result is the last published joint result (groups, links,
	// membership indexes, and the last build's CanonDelta, whose
	// reassignments the next delta apply must carry forward).
	Result *core.Result

	// QueryEnabled records whether the session maintained the read-path
	// index; QueryGeneration its published generation id, restored so
	// Behind accounting resumes where it left off.
	QueryEnabled    bool
	QueryGeneration int64

	// Dead lists every tombstoned triple position, ascending — the
	// retraction state of the accumulated stream. EpochDead is the
	// subset that was already dead when the current epoch's frozen
	// statistics were derived (the epoch counted live triples only):
	// restore rebuilds the epoch over (Triples[:EpochTriples], EpochDead),
	// frozen-extends with the suffix, and re-tombstones Dead - EpochDead,
	// reproducing the live session's store bit for bit. Retractions is
	// the committed retraction-batch counter.
	Dead        []int
	EpochDead   []int
	Retractions int

	// QueryGenerations is the retained generation ring, flattened
	// (oldest first, head last), so as-of reads survive a restart
	// bitwise-intact. Empty when the query index is disabled.
	QueryGenerations []query.GenerationSnapshot
}

// Validate checks the snapshot's internal consistency (the structural
// invariants restore depends on), returning a descriptive error on the
// first violation.
func (s *Snapshot) Validate() error {
	switch {
	case s.Batches < 0 || s.SinceEpoch < 0 || s.Refreshes < 0:
		return fmt.Errorf("checkpoint: negative ingest counters (batches %d, since-epoch %d, refreshes %d)",
			s.Batches, s.SinceEpoch, s.Refreshes)
	case s.EpochTriples < 0 || s.EpochTriples > len(s.Triples):
		return fmt.Errorf("checkpoint: epoch prefix %d outside triples [0, %d]", s.EpochTriples, len(s.Triples))
	case s.Batches > 0 && len(s.Triples) == 0:
		return fmt.Errorf("checkpoint: %d batches recorded but no triples", s.Batches)
	case s.Batches > 0 && s.Result == nil:
		return fmt.Errorf("checkpoint: %d batches recorded but no result", s.Batches)
	case s.Batches == 0 && (len(s.Triples) > 0 || s.Result != nil):
		return fmt.Errorf("checkpoint: state recorded for an empty session")
	case s.Retractions < 0:
		return fmt.Errorf("checkpoint: negative retraction counter %d", s.Retractions)
	case len(s.EpochDead) > len(s.Dead):
		return fmt.Errorf("checkpoint: epoch dead set (%d) larger than dead set (%d)", len(s.EpochDead), len(s.Dead))
	}
	for i, id := range s.Dead {
		if id < 0 || id >= len(s.Triples) {
			return fmt.Errorf("checkpoint: dead id %d outside triples [0, %d)", id, len(s.Triples))
		}
		if i > 0 && s.Dead[i-1] >= id {
			return fmt.Errorf("checkpoint: dead ids not strictly ascending at %d", i)
		}
	}
	for i, id := range s.EpochDead {
		if id < 0 || id >= s.EpochTriples {
			return fmt.Errorf("checkpoint: epoch dead id %d outside epoch prefix [0, %d)", id, s.EpochTriples)
		}
		if i > 0 && s.EpochDead[i-1] >= id {
			return fmt.Errorf("checkpoint: epoch dead ids not strictly ascending at %d", i)
		}
	}
	return nil
}

// Write serializes the snapshot to w in the versioned on-disk format:
// magic, version, body length, gob body, FNV-64a body checksum.
func Write(w io.Writer, s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("checkpoint: nil snapshot")
	}
	stamped := *s
	stamped.FormatVersion = Version
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&stamped); err != nil {
		return fmt.Errorf("checkpoint: encoding snapshot: %w", err)
	}
	var header [20]byte
	copy(header[:8], magic[:])
	binary.LittleEndian.PutUint32(header[8:12], Version)
	binary.LittleEndian.PutUint64(header[12:20], uint64(body.Len()))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("checkpoint: writing header: %w", err)
	}
	sum := fnv.New64a()
	sum.Write(body.Bytes())
	if _, err := w.Write(body.Bytes()); err != nil {
		return fmt.Errorf("checkpoint: writing body: %w", err)
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], sum.Sum64())
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("checkpoint: writing checksum: %w", err)
	}
	return nil
}

// Read parses a checkpoint stream written by Write, verifying magic,
// version, body length, and checksum before decoding, and validates the
// decoded snapshot.
func Read(r io.Reader) (*Snapshot, error) {
	var header [20]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: reading header: %w", err)
	}
	if !bytes.Equal(header[:8], magic[:]) {
		return nil, fmt.Errorf("checkpoint: bad magic %q (not a JOCL checkpoint)", header[:8])
	}
	version := binary.LittleEndian.Uint32(header[8:12])
	if version != Version {
		if version == 2 {
			return nil, fmt.Errorf("checkpoint: format version 2 predates retraction support and cannot be restored safely; re-checkpoint from a live session (this build reads version %d)", Version)
		}
		return nil, fmt.Errorf("checkpoint: unsupported format version %d (this build reads version %d)", version, Version)
	}
	n := binary.LittleEndian.Uint64(header[12:20])
	if n > maxBodyBytes {
		return nil, fmt.Errorf("checkpoint: body length %d exceeds the %d-byte sanity cap", n, maxBodyBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("checkpoint: reading %d-byte body: %w", n, err)
	}
	var trailer [8]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: reading checksum: %w", err)
	}
	sum := fnv.New64a()
	sum.Write(body)
	if got, want := sum.Sum64(), binary.LittleEndian.Uint64(trailer[:]); got != want {
		return nil, fmt.Errorf("checkpoint: body checksum %016x does not match recorded %016x (truncated or corrupt file)", got, want)
	}
	s := &Snapshot{}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(s); err != nil {
		return nil, fmt.Errorf("checkpoint: decoding snapshot: %w", err)
	}
	s.FormatVersion = int(version)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Save writes the snapshot to path atomically: a temp file in the same
// directory is written, fsynced, and closed, then renamed over path,
// and the directory is fsynced so the rename itself is durable. A crash
// at any point leaves either the previous checkpoint or the new one —
// never a torn file.
func Save(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: creating temp file: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := Write(tmp, s); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("checkpoint: syncing %s: %w", tmp.Name(), err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return fmt.Errorf("checkpoint: closing %s: %w", name, err)
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: publishing %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
// Filesystems that refuse to sync directories (some CI tmpfs mounts) do
// not fail the save: the rename is already visible, only its crash
// durability is weakened.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

// Load reads and verifies the checkpoint at path.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: opening %s: %w", path, err)
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return s, nil
}
