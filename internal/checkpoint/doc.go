// Package checkpoint implements durable snapshots of a streaming
// session: a versioned, integrity-checked serialization of exactly the
// incremental state the serving stack maintains — accumulated triples,
// epoch markers, learned weights, the factor-graph warm state
// (messages, boundary baselines, block fingerprints, partition
// memory), the last published result, and the read-path index's
// generation — so a restarted process resumes ingesting warm instead
// of replaying the whole stream cold.
//
// The on-disk format is
//
//	offset  size  field
//	0       8     magic "JOCLCKPT"
//	8       4     format version, little-endian uint32
//	12      8     body length, little-endian uint64
//	20      n     body: gob-encoded Snapshot
//	20+n    8     FNV-64a of the body, little-endian uint64
//
// Deliberately NOT serialized, because it is derived state the restore
// path rebuilds deterministically from the triples: the signal
// resources (IDF tables, AMIE rules, KBP classifier — re-derived over
// the epoch prefix, then frozen-extended over the suffix), the
// construction cache (re-filled lazily), and the query index's
// materialized views (rebuilt from the restored result under the
// restored generation id). Persisting maintained state and re-deriving
// derived state is what keeps the format small and the restore exact.
//
// Files are written atomically: the snapshot goes to a temp file in the
// target directory, is fsynced, closed, renamed over the destination,
// and the directory is fsynced — a crash mid-write leaves either the
// old checkpoint or the new one, never a torn file. Load verifies
// magic, version, and checksum before decoding, so a torn or foreign
// file fails loudly instead of restoring garbage.
package checkpoint
