package checkpoint

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/factorgraph"
	"repro/internal/okb"
	"repro/internal/query"
)

// testSnapshot builds a snapshot exercising every serialized field,
// with awkward float values that must round-trip bit-exactly.
func testSnapshot() *Snapshot {
	third := 1.0 / 3.0
	tiny := math.Nextafter(0, 1)
	return &Snapshot{
		Triples: []okb.Triple{
			{ID: 0, Subj: "barack obama", Pred: "be born in", Obj: "honolulu", GoldSubj: "e1"},
			{ID: 1, Subj: "obama", Pred: "be president of", Obj: "united states"},
		},
		Symbols: &okb.SymbolSnapshot{Entries: []okb.SymbolEntry{
			{Surface: "barack obama"},
			{Surface: "obama"},
			{Kind: 'x', A: 0, B: 1},
		}},
		EpochTriples:  1,
		Batches:       2,
		SinceEpoch:    1,
		Refreshes:     1,
		BlocksTouched: 5,
		BlocksWarm:    3,
		Repairs:       1,
		RepairReused:  4,
		IndexMS:       third,
		Weights:       map[string]float64{"alpha1.idf": third, "beta4.fact": tiny},
		Warm: &factorgraph.WarmState{
			Msgs: map[factorgraph.SigKey]factorgraph.FactorMessages{
				{H: 0xdeadbeef, Dup: 1}: {
					FV: [][]float64{{third, 1 - third}},
					VF: [][]float64{{tiny, 1 - tiny}},
				},
			},
			VarAdj:   map[int32]uint64{2: 0xfeedface},
			Boundary: map[int32]map[int32][]float64{2: {2: {0.25, 0.75}}},
			BlockFP:  map[int32]uint64{2: 0xdeadbeefcafe},
			Partition: &factorgraph.PartitionMemory{
				CutSyms:        []int32{2},
				Blocks:         map[int32]factorgraph.BlockProfile{2: {Vars: 7, Hash: 42}},
				TunedBlockVars: 128,
			},
		},
		Result: &core.Result{
			NPGroups:  [][]string{{"barack obama", "obama"}},
			RPGroups:  [][]string{{"be born in"}, {"be president of"}},
			NPGroupOf: map[string]int{"barack obama": 0, "obama": 0},
			RPGroupOf: map[string]int{"be born in": 0, "be president of": 1},
			NPLinks:   map[string]string{"obama": "e1"},
			RPLinks:   map[string]string{"be born in": ""},
			Delta:     &core.CanonDelta{TouchedNPs: []int32{1}, ReassignedNPs: []int32{1}},
		},
		QueryEnabled:    true,
		QueryGeneration: 2,
		Dead:            []int{0},
		EpochDead:       []int{0},
		Retractions:     1,
		QueryGenerations: []query.GenerationSnapshot{
			{
				ID:      2,
				Triples: 2,
				NPInfo: map[string]query.PhraseInfo{
					"obama": {Canonical: "barack obama", Target: "e1"},
				},
				NPClusters: map[string][]string{"barack obama": {"barack obama", "obama"}},
				SubjPost:   map[string][]int{"barack obama": {1}},
			},
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	snap := testSnapshot()
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.FormatVersion != Version {
		t.Errorf("FormatVersion = %d, want %d", got.FormatVersion, Version)
	}
	want := *snap
	want.FormatVersion = Version
	if !reflect.DeepEqual(got, &want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, &want)
	}
	// Bit-exact floats: the restored warm messages must be the very
	// values, not near them — the no-cut equivalence guarantee depends
	// on it.
	fm := got.Warm.Msgs[factorgraph.SigKey{H: 0xdeadbeef, Dup: 1}]
	if math.Float64bits(fm.FV[0][0]) != math.Float64bits(1.0/3.0) {
		t.Errorf("warm message float not bit-exact: %x", math.Float64bits(fm.FV[0][0]))
	}
	if math.Float64bits(fm.VF[0][0]) != math.Float64bits(math.Nextafter(0, 1)) {
		t.Errorf("subnormal warm message not bit-exact")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	flip := append([]byte(nil), raw...)
	flip[len(flip)/2] ^= 0x01 // body bit flip
	if _, err := Read(bytes.NewReader(flip)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupt body not rejected: %v", err)
	}

	if _, err := Read(bytes.NewReader(raw[:len(raw)-4])); err == nil {
		t.Errorf("truncated file not rejected")
	}

	notMine := append([]byte("NOTAJOCL"), raw[8:]...)
	if _, err := Read(bytes.NewReader(notMine)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("foreign file not rejected: %v", err)
	}

	future := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(future[8:12], Version+1)
	if _, err := Read(bytes.NewReader(future)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version not rejected: %v", err)
	}

	// Version-1 files carry string-keyed warm state that cannot be mapped
	// onto the id-keyed stack; they must be rejected explicitly, not
	// half-decoded.
	v1 := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(v1[8:12], 1)
	if _, err := Read(bytes.NewReader(v1)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version-1 checkpoint not rejected: %v", err)
	}

	// Version-2 files predate retraction support: their silently-empty
	// dead set could resurrect retracted triples on restore, so they are
	// rejected with an explicit version error, never migrated.
	v2 := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(v2[8:12], 2)
	_, err := Read(bytes.NewReader(v2))
	if err == nil || !strings.Contains(err.Error(), "version 2 predates retraction support") {
		t.Errorf("version-2 checkpoint not rejected with the retraction-support error: %v", err)
	}

	huge := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint64(huge[12:20], 1<<62)
	if _, err := Read(bytes.NewReader(huge)); err == nil {
		t.Errorf("absurd body length not rejected")
	}
}

func TestValidateRejectsInconsistentSnapshots(t *testing.T) {
	cases := []func(*Snapshot){
		func(s *Snapshot) { s.EpochTriples = len(s.Triples) + 1 },
		func(s *Snapshot) { s.EpochTriples = -1 },
		func(s *Snapshot) { s.Batches = -1 },
		func(s *Snapshot) { s.Triples = nil },
		func(s *Snapshot) { s.Result = nil },
		func(s *Snapshot) { s.Batches = 0 },
		func(s *Snapshot) { s.Retractions = -1 },
		func(s *Snapshot) { s.Dead = []int{1, 1} },
		func(s *Snapshot) { s.Dead = []int{-1} },
		func(s *Snapshot) { s.Dead = nil; s.EpochDead = []int{0} },
	}
	for i, mutate := range cases {
		snap := testSnapshot()
		mutate(snap)
		if err := snap.Validate(); err == nil {
			t.Errorf("case %d: inconsistent snapshot passed validation", i)
		}
	}
	empty := &Snapshot{}
	if err := empty.Validate(); err != nil {
		t.Errorf("empty-session snapshot must validate: %v", err)
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, DefaultFileName)
	if err := Save(path, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Batches != 2 || len(got.Triples) != 2 {
		t.Fatalf("loaded snapshot wrong: %+v", got)
	}
	// Overwrite with a newer snapshot: the file is replaced, no temp
	// files are left behind.
	newer := testSnapshot()
	newer.Batches, newer.SinceEpoch = 3, 2
	newer.Triples = append(newer.Triples, okb.Triple{ID: 2, Subj: "x", Pred: "y", Obj: "z"})
	if err := Save(path, newer); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Batches != 3 || len(got.Triples) != 3 {
		t.Fatalf("overwrite did not take: %+v", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != DefaultFileName {
		t.Errorf("stray files after Save: %v", entries)
	}
	if _, err := Load(filepath.Join(dir, "missing.jocl")); err == nil {
		t.Errorf("missing file must error")
	}
}
