// Package baselines re-implements the decision procedures of every
// system the paper compares against, over the same substrates JOCL
// uses, so all methods see identical data:
//
// NP canonicalization (Table 1): Morph Norm, Wikidata Integrator, Text
// Similarity, IDF Token Overlap, Attribute Overlap, CESI, SIST.
//
// RP canonicalization (Table 2): AMIE, PATTY, SIST.
//
// OKB entity linking (Table 3): Spotlight, TagMe, Falcon, EARL,
// KBPearl. OKB relation linking (Figure 3): Falcon, EARL, Rematch,
// KBPearl.
//
// These are faithful ports of each method's core idea, not of their
// engineering; DESIGN.md discusses why that preserves the evaluation's
// comparative shape.
package baselines

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/okb"
	"repro/internal/signals"
	"repro/internal/strsim"
	"repro/internal/text"
)

// MorphNorm groups phrases whose morphological normalization collides
// (Fader et al. 2011): lowercasing, tense and pluralization removal.
func MorphNorm(phrases []string) [][]string {
	byKey := map[string][]string{}
	var order []string
	for _, p := range phrases {
		k := text.Normalize(p)
		if _, seen := byKey[k]; !seen {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], p)
	}
	sort.Strings(order)
	groups := make([][]string, 0, len(order))
	for _, k := range order {
		groups = append(groups, byKey[k])
	}
	return groups
}

// WikidataIntegrator groups NPs linked to the same entity by a simple
// off-the-shelf entity-linking tool: exact alias match resolved by
// popularity, no disambiguation context. Unlinked NPs stay singletons.
func WikidataIntegrator(r *signals.Resources, phrases []string) [][]string {
	links := map[string]string{}
	for _, p := range phrases {
		cands := r.CKB.CandidateEntities(p, 3)
		// Exact alias matches carry score >= 2 in the candidate index;
		// the integrator links only on such matches.
		if len(cands) > 0 && cands[0].Score >= 2 {
			links[p] = cands[0].ID
		}
	}
	return groupByLabel(phrases, links)
}

// TextSimilarity clusters phrases by Jaro-Winkler similarity with HAC
// (Galárraga et al. 2014).
func TextSimilarity(phrases []string, threshold float64) [][]string {
	return hacGroups(phrases, threshold, func(a, b string) float64 {
		return strsim.JaroWinkler(a, b)
	})
}

// IDFTokenOverlap clusters phrases by IDF token overlap with HAC
// (Galárraga et al. 2014).
func IDFTokenOverlap(idf *text.IDFTable, phrases []string, threshold float64) [][]string {
	return hacGroups(phrases, threshold, idf.Overlap)
}

// AttributeOverlap clusters NPs by the Jaccard similarity of their
// attribute sets (Galárraga et al. 2014). An NP's attributes are the
// (normalized relation phrase, normalized other argument) pairs of the
// triples it occurs in.
func AttributeOverlap(store *okb.Store, phrases []string, threshold float64) [][]string {
	attrs := make(map[string]map[string]bool, len(phrases))
	for i := 0; i < store.Len(); i++ {
		t := store.Triple(i)
		rp := text.Normalize(t.Pred)
		addAttr(attrs, t.Subj, rp+"\x00"+text.Normalize(t.Obj))
		addAttr(attrs, t.Obj, rp+"\x01"+text.Normalize(t.Subj))
	}
	return hacGroups(phrases, threshold, func(a, b string) float64 {
		return strsim.SetJaccard(attrs[a], attrs[b])
	})
}

func addAttr(attrs map[string]map[string]bool, np, attr string) {
	m := attrs[np]
	if m == nil {
		m = map[string]bool{}
		attrs[np] = m
	}
	m[attr] = true
}

// CESI clusters learned phrase embeddings augmented with side
// information (Vashishth et al. 2018): the embedding cosine is
// overridden to 1 for PPDB-equivalent phrases and blended with IDF
// overlap, then HAC merges above the threshold.
func CESI(r *signals.Resources, phrases []string, threshold float64) [][]string {
	return hacGroups(phrases, threshold, func(a, b string) float64 {
		if r.PPDBSim(a, b) == 1 {
			return 1
		}
		return 0.7*r.EmbSim(a, b) + 0.3*r.NPIDF(a, b)
	})
}

// SIST clusters with side information from the source text (Lin & Chen
// 2019). Our substrate has no source documents; the equivalent side
// information available here is each phrase's candidate-entity list
// (SIST's "candidate entities of NPs" signal), whose overlap is blended
// with the textual signals. This is the strongest canonicalization
// baseline, as in the paper.
func SIST(r *signals.Resources, phrases []string, threshold float64) [][]string {
	cands := make([]map[string]bool, len(phrases))
	for i, p := range phrases {
		set := map[string]bool{}
		for _, c := range r.CKB.CandidateEntities(p, 5) {
			set[c.ID] = true
		}
		cands[i] = set
	}
	idx := make(map[string]int, len(phrases))
	for i, p := range phrases {
		idx[p] = i
	}
	return hacGroups(phrases, threshold, func(a, b string) float64 {
		if r.PPDBSim(a, b) == 1 {
			return 1
		}
		side := strsim.SetJaccard(cands[idx[a]], cands[idx[b]])
		return 0.4*side + 0.4*r.EmbSim(a, b) + 0.2*r.NPIDF(a, b)
	})
}

// hacGroups runs average-linkage HAC over the phrases with the given
// pairwise similarity.
func hacGroups(phrases []string, threshold float64, sim func(a, b string) float64) [][]string {
	groups := cluster.HAC(len(phrases), func(i, j int) float64 {
		return sim(phrases[i], phrases[j])
	}, cluster.AverageLinkage, threshold)
	out := make([][]string, len(groups))
	for gi, g := range groups {
		out[gi] = make([]string, len(g))
		for k, i := range g {
			out[gi][k] = phrases[i]
		}
	}
	return out
}

// groupByLabel groups phrases sharing a non-empty label; unlabeled
// phrases become singletons.
func groupByLabel(phrases []string, label map[string]string) [][]string {
	byLabel := map[string][]string{}
	var order []string
	for _, p := range phrases {
		l := label[p]
		if l == "" {
			continue
		}
		if _, seen := byLabel[l]; !seen {
			order = append(order, l)
		}
		byLabel[l] = append(byLabel[l], p)
	}
	sort.Strings(order)
	var groups [][]string
	for _, l := range order {
		groups = append(groups, byLabel[l])
	}
	for _, p := range phrases {
		if label[p] == "" {
			groups = append(groups, []string{p})
		}
	}
	return groups
}
