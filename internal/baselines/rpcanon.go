package baselines

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/okb"
	"repro/internal/signals"
	"repro/internal/strsim"
	"repro/internal/text"
)

// AMIEBaseline groups relation phrases by the mined bidirectional
// implication rules (Galárraga et al. 2013, as used by Galárraga et
// al. 2014 for RP canonicalization): connected components over
// Sim_AMIE = 1 pairs, with morphological variants pre-merged (AMIE
// operates on normalized triples). Phrases AMIE does not cover remain
// singletons — the coverage weakness the paper observes.
func AMIEBaseline(r *signals.Resources, phrases []string) [][]string {
	n := len(phrases)
	uf := cluster.NewUnionFind(n)
	// Morphological variants share a normalized form by construction.
	byNorm := map[string]int{}
	for i, p := range phrases {
		k := text.Normalize(p)
		if j, ok := byNorm[k]; ok {
			uf.Union(i, j)
		} else {
			byNorm[k] = i
		}
	}
	// Bidirectional rules merge normalized forms.
	norms := make([]string, 0, len(byNorm))
	for k := range byNorm {
		norms = append(norms, k)
	}
	sort.Strings(norms)
	for a := 0; a < len(norms); a++ {
		for b := a + 1; b < len(norms); b++ {
			if r.AMIE.Implies(norms[a], norms[b]) && r.AMIE.Implies(norms[b], norms[a]) {
				uf.Union(byNorm[norms[a]], byNorm[norms[b]])
			}
		}
	}
	return materialize(phrases, uf)
}

// PATTY groups relation phrases via its two rules (Nakashole et al.
// 2012, as adapted by SIST's evaluation): RPs supported by the same
// NP-pair sets (same instances) are merged, as are RPs in the same
// synset — which our substrate realizes as PPDB cluster equality.
func PATTY(r *signals.Resources, store *okb.Store, phrases []string) [][]string {
	n := len(phrases)
	uf := cluster.NewUnionFind(n)
	idx := make(map[string]int, n)
	for i, p := range phrases {
		idx[p] = i
	}
	// Rule 1: RPs asserted over the same normalized NP pair.
	byPair := map[string][]int{}
	for ti := 0; ti < store.Len(); ti++ {
		t := store.Triple(ti)
		key := text.Normalize(t.Subj) + "\x00" + text.Normalize(t.Obj)
		byPair[key] = append(byPair[key], idx[t.Pred])
	}
	keys := make([]string, 0, len(byPair))
	for k := range byPair {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ids := byPair[k]
		for _, other := range ids[1:] {
			uf.Union(ids[0], other)
		}
	}
	// Rule 2: same synset (paraphrase-DB cluster).
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if r.PPDBSim(phrases[a], phrases[b]) == 1 {
				uf.Union(a, b)
			}
		}
	}
	return materialize(phrases, uf)
}

// SISTRP is the SIST baseline for relation phrases: HAC over a blend
// of the textual signals plus candidate-relation overlap as the
// side-information stand-in.
func SISTRP(r *signals.Resources, phrases []string, threshold float64) [][]string {
	cands := make([]map[string]bool, len(phrases))
	for i, p := range phrases {
		set := map[string]bool{}
		for _, c := range r.CKB.CandidateRelations(p, 5) {
			set[c.ID] = true
		}
		cands[i] = set
	}
	idx := make(map[string]int, len(phrases))
	for i, p := range phrases {
		idx[p] = i
	}
	return hacGroups(phrases, threshold, func(a, b string) float64 {
		if r.PPDBSim(a, b) == 1 || r.AMIESim(a, b) == 1 {
			return 1
		}
		side := strsim.SetJaccard(cands[idx[a]], cands[idx[b]])
		return 0.4*side + 0.3*r.EmbSim(a, b) + 0.2*r.RPIDF(a, b) + 0.1*r.KBPSim(a, b)
	})
}

func materialize(phrases []string, uf *cluster.UnionFind) [][]string {
	var out [][]string
	for _, g := range uf.Groups() {
		grp := make([]string, len(g))
		for k, i := range g {
			grp[k] = phrases[i]
		}
		out = append(out, grp)
	}
	return out
}
