package baselines

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/signals"
)

var cachedDS *datasets.Dataset
var cachedRes *signals.Resources

func setup(t *testing.T) (*signals.Resources, *datasets.Dataset) {
	t.Helper()
	if cachedDS == nil {
		ds, err := datasets.Generate(datasets.ReVerb45K(0.008))
		if err != nil {
			t.Fatal(err)
		}
		cachedDS = ds
		cachedRes = signals.New(ds.OKB, ds.CKB, ds.Emb, ds.PPDB)
	}
	return cachedRes, cachedDS
}

// checkPartition asserts groups partition exactly the given phrases.
func checkPartition(t *testing.T, name string, groups [][]string, phrases []string) {
	t.Helper()
	seen := map[string]bool{}
	for _, g := range groups {
		if len(g) == 0 {
			t.Errorf("%s: empty group", name)
		}
		for _, p := range g {
			if seen[p] {
				t.Errorf("%s: %q in two groups", name, p)
			}
			seen[p] = true
		}
	}
	if len(seen) != len(phrases) {
		t.Errorf("%s: covers %d of %d phrases", name, len(seen), len(phrases))
	}
}

func TestNPCanonBaselinesPartition(t *testing.T) {
	r, ds := setup(t)
	nps := ds.OKB.NPs()
	cases := map[string][][]string{
		"MorphNorm":          MorphNorm(nps),
		"WikidataIntegrator": WikidataIntegrator(r, nps),
		"TextSimilarity":     TextSimilarity(nps, 0.90),
		"IDFTokenOverlap":    IDFTokenOverlap(ds.OKB.NPIDF(), nps, 0.5),
		"AttributeOverlap":   AttributeOverlap(ds.OKB, nps, 0.3),
		"CESI":               CESI(r, nps, 0.65),
		"SIST":               SIST(r, nps, 0.45),
	}
	for name, groups := range cases {
		checkPartition(t, name, groups, nps)
	}
}

func TestRPCanonBaselinesPartition(t *testing.T) {
	r, ds := setup(t)
	rps := ds.OKB.RPs()
	checkPartition(t, "AMIE", AMIEBaseline(r, rps), rps)
	checkPartition(t, "PATTY", PATTY(r, ds.OKB, rps), rps)
	checkPartition(t, "SISTRP", SISTRP(r, rps, 0.45), rps)
}

func TestMorphNormMergesTenses(t *testing.T) {
	groups := MorphNorm([]string{"is located in", "was located in", "plays for"})
	if len(groups) != 2 {
		t.Errorf("groups = %v, want tense variants merged", groups)
	}
}

func TestBaselineOrderingNPCanon(t *testing.T) {
	// The paper's Table 1 ordering (on our data, in expectation):
	// SIST and CESI beat Morph Norm.
	r, ds := setup(t)
	nps := ds.OKB.NPs()
	morph := metrics.Evaluate(MorphNorm(nps), ds.GoldNPCluster).AverageF1
	cesi := metrics.Evaluate(CESI(r, nps, 0.65), ds.GoldNPCluster).AverageF1
	sist := metrics.Evaluate(SIST(r, nps, 0.45), ds.GoldNPCluster).AverageF1
	if cesi <= morph {
		t.Errorf("CESI (%.3f) should beat Morph Norm (%.3f)", cesi, morph)
	}
	if sist <= morph {
		t.Errorf("SIST (%.3f) should beat Morph Norm (%.3f)", sist, morph)
	}
}

func TestEntityLinkingBaselines(t *testing.T) {
	r, ds := setup(t)
	nps := ds.OKB.NPs()
	rps := ds.OKB.RPs()

	results := map[string]map[string]string{
		"Spotlight": Spotlight(r, nps),
		"TagMe":     TagMe(r, nps),
		"Falcon":    Falcon(r, nps, rps).Ent,
		"EARL":      EARL(r, nps, rps).Ent,
		"KBPearl":   KBPearl(r, nps, rps).Ent,
	}
	for name, links := range results {
		if len(links) != len(nps) {
			t.Errorf("%s: linked %d of %d NPs", name, len(links), len(nps))
		}
		acc := metrics.Accuracy(links, ds.GoldNPLink)
		if acc <= 0.05 {
			t.Errorf("%s: accuracy %.3f suspiciously low", name, acc)
		}
		t.Logf("%s entity accuracy: %.3f", name, acc)
	}
}

func TestRelationLinkingBaselines(t *testing.T) {
	r, ds := setup(t)
	nps := ds.OKB.NPs()
	rps := ds.OKB.RPs()
	results := map[string]map[string]string{
		"Falcon":  Falcon(r, nps, rps).Rel,
		"EARL":    EARL(r, nps, rps).Rel,
		"KBPearl": KBPearl(r, nps, rps).Rel,
		"Rematch": Rematch(r, rps),
	}
	for name, links := range results {
		acc := metrics.Accuracy(links, ds.GoldRPLink)
		if acc <= 0.05 {
			t.Errorf("%s: relation accuracy %.3f suspiciously low", name, acc)
		}
		t.Logf("%s relation accuracy: %.3f", name, acc)
	}
}

func TestLinksPointAtRealTargets(t *testing.T) {
	r, ds := setup(t)
	nps := ds.OKB.NPs()
	rps := ds.OKB.RPs()
	for name, links := range map[string]map[string]string{
		"Spotlight": Spotlight(r, nps),
		"Rematch":   Rematch(r, rps),
	} {
		for phrase, id := range links {
			if id == "" {
				continue
			}
			if name == "Spotlight" && ds.CKB.Entity(id) == nil {
				t.Errorf("%s linked %q to unknown entity %q", name, phrase, id)
			}
			if name == "Rematch" && ds.CKB.Relation(id) == nil {
				t.Errorf("%s linked %q to unknown relation %q", name, phrase, id)
			}
		}
	}
}

func TestGroupByLabel(t *testing.T) {
	groups := groupByLabel([]string{"a", "b", "c"}, map[string]string{"a": "x", "b": "x"})
	if len(groups) != 2 || len(groups[0]) != 2 {
		t.Errorf("groupByLabel = %v", groups)
	}
}

func TestFACPartitionAndPruning(t *testing.T) {
	_, ds := setup(t)
	nps := ds.OKB.NPs()
	groups := FAC(ds.OKB.NPIDF(), nps, 0.5)
	checkPartition(t, "FAC", groups, nps)
}

func TestFACMatchesExhaustiveThresholding(t *testing.T) {
	// FAC's pruning must be lossless: the connected components over
	// pairs with Sim_idf >= threshold must match a brute-force scan.
	_, ds := setup(t)
	nps := ds.OKB.NPs()
	if len(nps) > 400 {
		nps = nps[:400]
	}
	idf := ds.OKB.NPIDF()
	th := 0.5

	fac := FAC(idf, nps, th)

	uf := cluster.NewUnionFind(len(nps))
	for i := 0; i < len(nps); i++ {
		for j := i + 1; j < len(nps); j++ {
			if idf.Overlap(nps[i], nps[j]) >= th {
				uf.Union(i, j)
			}
		}
	}
	want := uf.Groups()
	if len(fac) != len(want) {
		t.Fatalf("FAC groups = %d, brute force = %d", len(fac), len(want))
	}
}
