package baselines

import (
	"repro/internal/signals"
	"repro/internal/text"
)

// JointLinks is the output of a joint entity-and-relation linker.
type JointLinks struct {
	Ent map[string]string // NP surface -> entity id ("" = NIL)
	Rel map[string]string // RP surface -> relation id ("" = NIL)
}

// Spotlight links each NP independently, DBpedia-Spotlight style: the
// candidate maximizing anchor popularity blended with surface-form
// similarity; below a confidence floor it abstains (NIL).
func Spotlight(r *signals.Resources, nps []string) map[string]string {
	out := make(map[string]string, len(nps))
	for _, np := range nps {
		best, bestScore := "", 0.25
		for _, c := range r.CKB.CandidateEntities(np, 8) {
			score := 0.6*r.Pop(np, c.ID) + 0.4*nameSim(r, np, c.ID)
			if score > bestScore {
				best, bestScore = c.ID, score
			}
		}
		out[np] = best
	}
	return out
}

// TagMe links by anchor commonness with a light collective-coherence
// vote (Ferragina & Scaiella 2010): popularity dominates, and among
// near-ties the entity sharing facts with other popular mentions wins.
// On context-poor OIE triples the coherence vote rarely helps, which is
// why TagMe underperforms here just as it does in the paper.
func TagMe(r *signals.Resources, nps []string) map[string]string {
	out := make(map[string]string, len(nps))
	for _, np := range nps {
		best, bestScore := "", 0.2
		for _, c := range r.CKB.CandidateEntities(np, 8) {
			pop := r.Pop(np, c.ID)
			if pop == 0 {
				continue // TagMe links only known anchors
			}
			coher := float64(r.CKB.Degree(c.ID))
			score := pop + 0.01*coher
			if score > bestScore {
				best, bestScore = c.ID, score
			}
		}
		out[np] = best
	}
	return out
}

// Falcon performs joint entity and relation linking driven by English
// morphology (Sakor et al. 2019): normalization plus headword
// matching produce candidates, and a joint pass keeps entity/relation
// combinations that form a CKB fact.
func Falcon(r *signals.Resources, nps, rps []string) JointLinks {
	links := JointLinks{Ent: map[string]string{}, Rel: map[string]string{}}
	// Stage 1: morphological matching, independently per phrase.
	for _, np := range nps {
		links.Ent[np] = falconEntity(r, np)
	}
	for _, rp := range rps {
		links.Rel[rp] = falconRelation(r, rp)
	}
	// Stage 2: joint re-ranking per triple — if the current combination
	// is not a fact but an alternative candidate pair is, switch.
	for ti := 0; ti < r.OKB.Len(); ti++ {
		t := r.OKB.Triple(ti)
		es, rel, eo := links.Ent[t.Subj], links.Rel[t.Pred], links.Ent[t.Obj]
		if es == "" || eo == "" {
			continue
		}
		if rel != "" && r.CKB.HasFact(es, rel, eo) {
			continue
		}
		for _, rc := range r.CKB.CandidateRelations(t.Pred, 6) {
			if r.CKB.HasFact(es, rc.ID, eo) {
				links.Rel[t.Pred] = rc.ID
				break
			}
		}
	}
	return links
}

func falconEntity(r *signals.Resources, np string) string {
	norm := text.Normalize(np)
	for _, c := range r.CKB.CandidateEntities(np, 8) {
		e := r.CKB.Entity(c.ID)
		for _, alias := range e.Aliases {
			if text.Normalize(alias) == norm {
				return c.ID
			}
		}
	}
	// Headword fallback: candidates containing the head (last) token.
	toks := text.NormalizeTokens(np)
	if len(toks) == 0 {
		return ""
	}
	head := toks[len(toks)-1]
	for _, c := range r.CKB.CandidateEntities(np, 8) {
		e := r.CKB.Entity(c.ID)
		for _, alias := range e.Aliases {
			for _, at := range text.NormalizeTokens(alias) {
				if at == head {
					return c.ID
				}
			}
		}
	}
	return ""
}

func falconRelation(r *signals.Resources, rp string) string {
	norm := text.Normalize(rp)
	var fallback string
	for _, c := range r.CKB.CandidateRelations(rp, 8) {
		rel := r.CKB.Relation(c.ID)
		for _, alias := range rel.Aliases {
			if text.Normalize(alias) == norm {
				return c.ID
			}
		}
		if fallback == "" && r.RelNgram(rp, c.ID) > 0.4 {
			fallback = c.ID
		}
	}
	return fallback
}

// EARL performs joint linking by connection density (Dubey et al.
// 2018): candidates for all phrases of a triple are scored by string
// similarity plus how densely they interconnect in the CKB (the
// GTSP-inspired objective, greedily approximated).
func EARL(r *signals.Resources, nps, rps []string) JointLinks {
	links := JointLinks{Ent: map[string]string{}, Rel: map[string]string{}}
	type cand struct {
		id    string
		score float64
	}
	entCands := func(np string) []cand {
		var out []cand
		for _, c := range r.CKB.CandidateEntities(np, 6) {
			out = append(out, cand{c.ID, 0.5 * nameSim(r, np, c.ID)})
		}
		return out
	}
	for ti := 0; ti < r.OKB.Len(); ti++ {
		t := r.OKB.Triple(ti)
		subj, obj := entCands(t.Subj), entCands(t.Obj)
		var rels []cand
		for _, c := range r.CKB.CandidateRelations(t.Pred, 6) {
			rels = append(rels, cand{c.ID, 0.3 * (r.RelNgram(t.Pred, c.ID) + r.RelLD(t.Pred, c.ID))})
		}
		// Greedy GTSP: pick the subject-relation-object path with the
		// best sum of node scores + edge (connection) bonuses.
		bestScore := 0.3 // abstention floor
		var bs, br, bo string
		for _, s := range subj {
			for _, rel := range rels {
				for _, o := range obj {
					score := s.score + rel.score + o.score
					if r.CKB.HasFact(s.id, rel.id, o.id) {
						score += 1.0
					}
					score += 0.005 * float64(r.CKB.Degree(s.id)+r.CKB.Degree(o.id))
					if score > bestScore {
						bestScore, bs, br, bo = score, s.id, rel.id, o.id
					}
				}
			}
		}
		// First assignment wins; EARL resolves per question (triple).
		if _, done := links.Ent[t.Subj]; !done {
			links.Ent[t.Subj] = bs
		}
		if _, done := links.Rel[t.Pred]; !done {
			links.Rel[t.Pred] = br
		}
		if _, done := links.Ent[t.Obj]; !done {
			links.Ent[t.Obj] = bo
		}
	}
	for _, np := range nps {
		if _, ok := links.Ent[np]; !ok {
			links.Ent[np] = ""
		}
	}
	for _, rp := range rps {
		if _, ok := links.Rel[rp]; !ok {
			links.Rel[rp] = ""
		}
	}
	return links
}

// KBPearl performs joint linking over the whole document's triples
// (Lin et al. 2020): per-phrase string+popularity scores are refined by
// one global pass that rewards fact inclusion across all triples a
// phrase participates in.
func KBPearl(r *signals.Resources, nps, rps []string) JointLinks {
	links := JointLinks{Ent: map[string]string{}, Rel: map[string]string{}}
	// Initial local scores.
	for _, np := range nps {
		best, bestScore := "", 0.3
		for _, c := range r.CKB.CandidateEntities(np, 6) {
			score := 0.5*r.Pop(np, c.ID) + 0.5*nameSim(r, np, c.ID)
			if score > bestScore {
				best, bestScore = c.ID, score
			}
		}
		links.Ent[np] = best
	}
	for _, rp := range rps {
		best, bestScore := "", 0.3
		for _, c := range r.CKB.CandidateRelations(rp, 6) {
			score := 0.5*r.RelNgram(rp, c.ID) + 0.5*r.RelLD(rp, c.ID)
			if score > bestScore {
				best, bestScore = c.ID, score
			}
		}
		links.Rel[rp] = best
	}
	// Global refinement: for each triple, try candidate swaps that turn
	// the triple into a CKB fact.
	for ti := 0; ti < r.OKB.Len(); ti++ {
		t := r.OKB.Triple(ti)
		es, rel, eo := links.Ent[t.Subj], links.Rel[t.Pred], links.Ent[t.Obj]
		if es != "" && eo != "" && rel != "" && r.CKB.HasFact(es, rel, eo) {
			continue
		}
		if sc, rc, oc, ok := factSwap(r, t.Subj, t.Pred, t.Obj); ok {
			links.Ent[t.Subj] = sc
			links.Rel[t.Pred] = rc
			links.Ent[t.Obj] = oc
		}
	}
	return links
}

// factSwap searches the candidate cross-product of a triple for a
// combination that is a CKB fact.
func factSwap(r *signals.Resources, subj, pred, obj string) (string, string, string, bool) {
	for _, sc := range r.CKB.CandidateEntities(subj, 4) {
		for _, rc := range r.CKB.CandidateRelations(pred, 4) {
			for _, oc := range r.CKB.CandidateEntities(obj, 4) {
				if r.CKB.HasFact(sc.ID, rc.ID, oc.ID) {
					return sc.ID, rc.ID, oc.ID, true
				}
			}
		}
	}
	return "", "", "", false
}

// Rematch links relation phrases by semantic string matching (Mulang
// et al. 2017): the relation whose alias maximizes a blend of
// Levenshtein, n-gram, and embedding similarity.
func Rematch(r *signals.Resources, rps []string) map[string]string {
	out := make(map[string]string, len(rps))
	for _, rp := range rps {
		best, bestScore := "", 0.35
		for _, c := range r.CKB.CandidateRelations(rp, 8) {
			score := (r.RelLD(rp, c.ID) + r.RelNgram(rp, c.ID) + r.RelEmb(rp, c.ID)) / 3
			if score > bestScore {
				best, bestScore = c.ID, score
			}
		}
		out[rp] = best
	}
	return out
}

// nameSim scores an NP against an entity's best-matching alias with
// Jaro-Winkler-free, normalization-based overlap (token IDF is not
// available for CKB aliases, so plain normalized-token Jaccard plus
// embedding cosine is used).
func nameSim(r *signals.Resources, np, entityID string) float64 {
	e := r.CKB.Entity(entityID)
	if e == nil {
		return 0
	}
	nt := tokenSet(text.NormalizeTokens(np))
	best := 0.0
	for _, alias := range e.Aliases {
		at := tokenSet(text.NormalizeTokens(alias))
		j := jaccard(nt, at)
		if j > best {
			best = j
		}
	}
	return 0.7*best + 0.3*r.EntEmb(np, entityID)
}

func tokenSet(ts []string) map[string]bool {
	m := make(map[string]bool, len(ts))
	for _, t := range ts {
		m[t] = true
	}
	return m
}

func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for x := range a {
		if b[x] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
