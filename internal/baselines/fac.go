package baselines

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/text"
)

// FAC implements the pruning-and-bounding canonicalization of Wu et
// al. (CIKM 2018, "Towards practical open knowledge base
// canonicalization"), which the paper's related work cites as the
// efficient alternative to dense HAC. The idea: most phrase pairs can
// be rejected without computing their similarity, because an upper
// bound derived from an inverted token index already falls below the
// merge threshold.
//
// This implementation bounds IDF token overlap: for phrases a and b,
// Sim_idf(a,b) <= sharedWeight / max(weight(a), weight(b)), where
// sharedWeight accumulates over the inverted index. Only pairs whose
// bound clears the threshold get an exact similarity computation, and
// qualifying pairs merge through union-find (single-linkage semantics,
// as in FAC's connected-component phase).
func FAC(idf *text.IDFTable, phrases []string, threshold float64) [][]string {
	n := len(phrases)
	// Per-phrase total token weight (the denominator's lower bound).
	weightOf := make([]float64, n)
	index := map[string][]int{}
	tokenWeight := func(tok string) float64 {
		// Mirrors the IDF table's weighting; recomputed here because the
		// bound needs per-token weights, not only pair overlaps.
		return 1.0 / logFreq(idf, tok)
	}
	for i, p := range phrases {
		for tok := range text.TokenSet(p) {
			weightOf[i] += tokenWeight(tok)
			index[tok] = append(index[tok], i)
		}
	}

	// Accumulate shared weight per candidate pair via the index.
	shared := map[[2]int]float64{}
	for tok, ids := range index {
		if len(ids) < 2 {
			continue
		}
		w := tokenWeight(tok)
		for a := 0; a < len(ids); a++ {
			for b := a + 1; b < len(ids); b++ {
				i, j := ids[a], ids[b]
				if i > j {
					i, j = j, i
				}
				shared[[2]int{i, j}] += w
			}
		}
	}

	uf := cluster.NewUnionFind(n)
	for key, sw := range shared {
		i, j := key[0], key[1]
		den := weightOf[i]
		if weightOf[j] > den {
			den = weightOf[j]
		}
		if den == 0 || sw/den < threshold {
			continue // bound prunes the pair: exact sim cannot reach it
		}
		if idf.Overlap(phrases[i], phrases[j]) >= threshold {
			uf.Union(i, j)
		}
	}
	return materialize(phrases, uf)
}

// logFreq returns log(2 + f(tok)), the denominator of the IDF weight
// (mirroring text.IDFTable's internal weighting).
func logFreq(idf *text.IDFTable, tok string) float64 {
	return math.Log(2 + float64(idf.Freq(tok)))
}
