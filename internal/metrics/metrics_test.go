package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPerfectClustering(t *testing.T) {
	pred := [][]string{{"a", "b"}, {"c"}, {"d", "e", "f"}}
	gold := map[string]string{"a": "1", "b": "1", "c": "2", "d": "3", "e": "3", "f": "3"}
	s := Evaluate(pred, gold)
	for name, v := range map[string]float64{
		"macroF1": s.Macro.F1, "microF1": s.Micro.F1, "pairF1": s.Pairwise.F1, "avg": s.AverageF1,
	} {
		if !approx(v, 1) {
			t.Errorf("%s = %v, want 1", name, v)
		}
	}
}

func TestAllSingletons(t *testing.T) {
	pred := [][]string{{"a"}, {"b"}, {"c"}, {"d"}}
	gold := map[string]string{"a": "1", "b": "1", "c": "2", "d": "2"}
	s := Evaluate(pred, gold)
	// Every predicted cluster is trivially pure.
	if !approx(s.Macro.Precision, 1) {
		t.Errorf("macro precision = %v, want 1", s.Macro.Precision)
	}
	// No gold cluster is fully merged.
	if !approx(s.Macro.Recall, 0) {
		t.Errorf("macro recall = %v, want 0", s.Macro.Recall)
	}
	// No predicted pairs at all.
	if !approx(s.Pairwise.Precision, 0) || !approx(s.Pairwise.Recall, 0) {
		t.Errorf("pairwise = %+v, want 0/0", s.Pairwise)
	}
}

func TestOneBigCluster(t *testing.T) {
	pred := [][]string{{"a", "b", "c", "d"}}
	gold := map[string]string{"a": "1", "b": "1", "c": "2", "d": "2"}
	s := Evaluate(pred, gold)
	if !approx(s.Macro.Precision, 0) {
		t.Errorf("macro precision = %v, want 0 (impure cluster)", s.Macro.Precision)
	}
	if !approx(s.Macro.Recall, 1) {
		t.Errorf("macro recall = %v, want 1 (all gold clusters inside)", s.Macro.Recall)
	}
	// Micro precision: majority group is 2 of 4.
	if !approx(s.Micro.Precision, 0.5) {
		t.Errorf("micro precision = %v, want 0.5", s.Micro.Precision)
	}
	if !approx(s.Micro.Recall, 1) {
		t.Errorf("micro recall = %v, want 1", s.Micro.Recall)
	}
	// Pairwise: 6 predicted pairs, 2 correct; gold pairs 2, both found.
	if !approx(s.Pairwise.Precision, 2.0/6) {
		t.Errorf("pairwise precision = %v, want 1/3", s.Pairwise.Precision)
	}
	if !approx(s.Pairwise.Recall, 1) {
		t.Errorf("pairwise recall = %v, want 1", s.Pairwise.Recall)
	}
}

func TestUnlabeledIgnored(t *testing.T) {
	pred := [][]string{{"a", "zz"}, {"b", "qq"}}
	gold := map[string]string{"a": "1", "b": "1"}
	s := Evaluate(pred, gold)
	// zz and qq are unlabeled: clusters reduce to {a}, {b}: pure
	// singletons, recall 0.
	if !approx(s.Macro.Precision, 1) || !approx(s.Macro.Recall, 0) {
		t.Errorf("macro = %+v", s.Macro)
	}
}

func TestEmptyInputs(t *testing.T) {
	s := Evaluate(nil, map[string]string{"a": "1"})
	if s.AverageF1 != 0 {
		t.Errorf("empty prediction avg F1 = %v", s.AverageF1)
	}
	s = Evaluate([][]string{{"a"}}, map[string]string{})
	if s.AverageF1 != 0 {
		t.Errorf("empty gold avg F1 = %v", s.AverageF1)
	}
}

func TestF1HarmonicMean(t *testing.T) {
	got := prf1(0.5, 1.0)
	if !approx(got.F1, 2.0/3) {
		t.Errorf("F1 = %v, want 2/3", got.F1)
	}
	if prf1(0, 0).F1 != 0 {
		t.Error("F1(0,0) must be 0, not NaN")
	}
}

// TestMetricsProperty: scores are in [0,1]; refining the gold clustering
// into the prediction keeps macro/micro precision at 1.
func TestMetricsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		gold := map[string]string{}
		byGroup := map[string][]string{}
		for i := 0; i < n; i++ {
			e := fmt.Sprintf("e%d", i)
			g := fmt.Sprintf("g%d", rng.Intn(5))
			gold[e] = g
			byGroup[g] = append(byGroup[g], e)
		}
		// Prediction = random refinement of gold (split each group).
		var pred [][]string
		for _, members := range byGroup {
			cut := 1 + rng.Intn(len(members))
			pred = append(pred, members[:cut])
			if cut < len(members) {
				pred = append(pred, members[cut:])
			}
		}
		s := Evaluate(pred, gold)
		if !approx(s.Macro.Precision, 1) || !approx(s.Micro.Precision, 1) {
			return false
		}
		for _, v := range []float64{
			s.Macro.Recall, s.Micro.Recall, s.Pairwise.Precision,
			s.Pairwise.Recall, s.AverageF1,
		} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAccuracy(t *testing.T) {
	gold := map[string]string{"m1": "e1", "m2": "e2", "m3": "", "m4": "e4"}
	pred := map[string]string{"m1": "e1", "m2": "wrong", "m3": ""}
	// m1 correct, m2 wrong, m3 correct (NIL), m4 missing -> 2/4.
	if got := Accuracy(pred, gold); !approx(got, 0.5) {
		t.Errorf("Accuracy = %v, want 0.5", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty gold accuracy must be 0")
	}
}
