// Package metrics implements the paper's evaluation measures: the
// macro, micro, and pairwise precision/recall/F1 of a clustering
// against gold groups (the standard OKB-canonicalization metrics of
// Galárraga et al. 2014, also used by CESI and SIST), their average F1
// summary, and the linking accuracy used for the OKB entity/relation
// linking tasks.
package metrics

// Clustering evaluation operates on element keys. Predicted clusters
// are given extensionally; gold is a map from element key to its gold
// group id. Elements without a gold label are ignored (the benchmarks
// label only a sample of groups, as the paper does for NYTimes2018).

// PRF1 bundles precision, recall, and their harmonic mean.
type PRF1 struct {
	Precision float64
	Recall    float64
	F1        float64
}

func prf1(p, r float64) PRF1 {
	f := 0.0
	if p+r > 0 {
		f = 2 * p * r / (p + r)
	}
	return PRF1{Precision: p, Recall: r, F1: f}
}

// ClusterScores holds the three clustering metrics plus the average F1
// the paper reports as the overall canonicalization quality.
type ClusterScores struct {
	Macro     PRF1
	Micro     PRF1
	Pairwise  PRF1
	AverageF1 float64
}

// filterLabeled drops unlabeled elements from the predicted clusters
// and materializes the gold clusters.
func filterLabeled(pred [][]string, gold map[string]string) (p [][]string, g [][]string) {
	for _, c := range pred {
		var kept []string
		for _, e := range c {
			if _, ok := gold[e]; ok {
				kept = append(kept, e)
			}
		}
		if len(kept) > 0 {
			p = append(p, kept)
		}
	}
	byGold := map[string][]string{}
	var order []string
	seen := map[string]bool{}
	// Iterate predicted clusters first for deterministic order, then the
	// remaining gold elements (elements the prediction missed entirely
	// still belong to gold clusters).
	for _, c := range p {
		for _, e := range c {
			gid := gold[e]
			if !seen[gid] {
				seen[gid] = true
				order = append(order, gid)
			}
			byGold[gid] = append(byGold[gid], e)
		}
	}
	for _, gid := range order {
		g = append(g, byGold[gid])
	}
	return p, g
}

// Evaluate scores predicted clusters against gold labels.
func Evaluate(pred [][]string, gold map[string]string) ClusterScores {
	p, g := filterLabeled(pred, gold)
	var s ClusterScores
	s.Macro = prf1(macroPrecision(p, gold), macroRecall(g, p))
	s.Micro = prf1(microPrecision(p, gold), microRecall(g, p))
	s.Pairwise = prf1(pairwisePR(p, gold))
	s.AverageF1 = (s.Macro.F1 + s.Micro.F1 + s.Pairwise.F1) / 3
	return s
}

// macroPrecision: fraction of predicted clusters that are pure (all
// members share one gold group).
func macroPrecision(pred [][]string, gold map[string]string) float64 {
	if len(pred) == 0 {
		return 0
	}
	pure := 0
	for _, c := range pred {
		ok := true
		for _, e := range c[1:] {
			if gold[e] != gold[c[0]] {
				ok = false
				break
			}
		}
		if ok {
			pure++
		}
	}
	return float64(pure) / float64(len(pred))
}

// macroRecall: fraction of gold clusters entirely contained in a single
// predicted cluster.
func macroRecall(gold [][]string, pred [][]string) float64 {
	if len(gold) == 0 {
		return 0
	}
	clusterOf := map[string]int{}
	for ci, c := range pred {
		for _, e := range c {
			clusterOf[e] = ci
		}
	}
	covered := 0
	for _, gc := range gold {
		ci, ok := clusterOf[gc[0]]
		if !ok {
			continue
		}
		whole := true
		for _, e := range gc[1:] {
			if cj, ok2 := clusterOf[e]; !ok2 || cj != ci {
				whole = false
				break
			}
		}
		if whole {
			covered++
		}
	}
	return float64(covered) / float64(len(gold))
}

// microPrecision: purity — each predicted cluster votes with its
// majority gold group.
func microPrecision(pred [][]string, gold map[string]string) float64 {
	total, hit := 0, 0
	for _, c := range pred {
		counts := map[string]int{}
		for _, e := range c {
			counts[gold[e]]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		hit += best
		total += len(c)
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// microRecall: inverse purity — each gold cluster votes with the
// predicted cluster holding most of its members.
func microRecall(gold [][]string, pred [][]string) float64 {
	clusterOf := map[string]int{}
	for ci, c := range pred {
		for _, e := range c {
			clusterOf[e] = ci
		}
	}
	total, hit := 0, 0
	for _, gc := range gold {
		counts := map[int]int{}
		for _, e := range gc {
			if ci, ok := clusterOf[e]; ok {
				counts[ci]++
			}
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		hit += best
		total += len(gc)
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// pairwisePR: precision and recall over same-cluster element pairs.
func pairwisePR(pred [][]string, gold map[string]string) (float64, float64) {
	var predPairs, hitPairs float64
	for _, c := range pred {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				predPairs++
				if gold[c[i]] == gold[c[j]] {
					hitPairs++
				}
			}
		}
	}
	// Gold pairs restricted to elements present in the prediction.
	present := map[string]bool{}
	for _, c := range pred {
		for _, e := range c {
			present[e] = true
		}
	}
	byGold := map[string][]string{}
	for e := range present {
		byGold[gold[e]] = append(byGold[gold[e]], e)
	}
	var goldPairs float64
	for _, gc := range byGold {
		n := float64(len(gc))
		goldPairs += n * (n - 1) / 2
	}
	p, r := 0.0, 0.0
	if predPairs > 0 {
		p = hitPairs / predPairs
	}
	if goldPairs > 0 {
		r = hitPairs / goldPairs
	}
	return p, r
}

// Accuracy computes linking accuracy: the fraction of gold-labeled
// items whose prediction matches the gold target. Items predicted as
// "" (NIL) are correct exactly when the gold is also "" — but items
// absent from pred count as wrong, distinguishing "predicted NIL" from
// "no prediction".
func Accuracy(pred map[string]string, gold map[string]string) float64 {
	if len(gold) == 0 {
		return 0
	}
	correct := 0
	for k, g := range gold {
		if p, ok := pred[k]; ok && p == g {
			correct++
		}
	}
	return float64(correct) / float64(len(gold))
}
