package stream

import (
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/telemetry"
)

// This file wires the session into the telemetry substrate. Every
// metric family the session will ever feed is registered up front at
// construction — a scrape (or the docs drift check) sees the complete
// catalogue before any traffic arrives — and the handles are cached in
// sessionMetrics so the ingest hot path pays one atomic op per
// observation, never a registry lookup. The full catalogue is
// documented in docs/OBSERVABILITY.md; cmd/jocl-serve's drift test
// asserts the two stay in sync.

// durMS converts a duration to fractional milliseconds exactly (no
// Microseconds() truncation) — the one conversion every ms-reporting
// boundary in the session uses.
func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// sessionMetrics caches the session's metric handles.
type sessionMetrics struct {
	// Ingest path.
	ingests      *telemetry.Counter
	ingestErrors *telemetry.Counter
	triples      *telemetry.Counter
	refreshes    *telemetry.Counter
	ingestDur    *telemetry.Histogram
	stageDur     *telemetry.HistogramVec
	batchSize    *telemetry.Histogram
	allocBytes   *telemetry.Counter
	allocs       *telemetry.Counter
	sessTriples  *telemetry.Gauge
	sessBatches  *telemetry.Gauge

	// Retraction path.
	retracts       *telemetry.Counter
	retractTriples *telemetry.Counter
	retractPhrases *telemetry.CounterVec
	deadTriples    *telemetry.Gauge

	// OKB store.
	okbNPs   *telemetry.Gauge
	okbRPs   *telemetry.Gauge
	okbDepth *telemetry.Gauge

	// Factor graph / BP.
	bpSweeps       *telemetry.Counter
	bpSweepsIngest *telemetry.Histogram
	bpOuterRounds  *telemetry.Histogram
	bpResidual     *telemetry.Gauge
	bpWarmFactors  *telemetry.Gauge
	bpDur          *telemetry.Histogram

	// Partition.
	partBlocks     *telemetry.Gauge
	partCutVars    *telemetry.Gauge
	partBlocksRun  *telemetry.Counter
	partBlocksWarm *telemetry.Counter
	partRepairs    *telemetry.Counter
	partAdopted    *telemetry.Counter
	partRecut      *telemetry.Counter
	partDur        *telemetry.Histogram

	// Query-index maintenance (write side; read-side counters live in
	// query.Index.Instrument).
	qApplyDur    *telemetry.Histogram
	qKeys        *telemetry.Counter
	qCompactions *telemetry.Counter
	qFullBuilds  *telemetry.Counter

	// Checkpoints.
	ckpts      *telemetry.Counter
	ckptErrors *telemetry.Counter
	ckptBytes  *telemetry.Gauge
	ckptBatch  *telemetry.Gauge
	ckptDur    *telemetry.Histogram
}

// newSessionMetrics registers the session's whole metric catalogue on
// its registry and returns the cached handles.
func newSessionMetrics(s *Session) *sessionMetrics {
	r := s.tel.Registry
	m := &sessionMetrics{
		ingests:      r.Counter("jocl_ingest_total", "Batches ingested successfully."),
		ingestErrors: r.Counter("jocl_ingest_errors_total", "Ingest calls that returned an error."),
		triples:      r.Counter("jocl_ingest_triples_total", "Triples accepted across all ingests."),
		refreshes:    r.Counter("jocl_epoch_refreshes_total", "Ingests that rebuilt the epoch resources from scratch."),
		ingestDur:    r.Histogram("jocl_ingest_duration_seconds", "End-to-end wall clock of one ingest.", nil),
		stageDur: r.HistogramVec("jocl_ingest_stage_duration_seconds",
			"Per-stage wall clock of one ingest (stage = trace span name).", nil, "stage"),
		batchSize:   r.Histogram("jocl_ingest_batch_triples", "Triples per ingested batch.", telemetry.CountBuckets),
		allocBytes:  r.Counter("jocl_ingest_alloc_bytes_total", "Heap bytes allocated during ingests (runtime.MemStats.TotalAlloc deltas)."),
		allocs:      r.Counter("jocl_ingest_allocs_total", "Heap objects allocated during ingests (runtime.MemStats.Mallocs deltas)."),
		sessTriples: r.Gauge("jocl_session_triples", "Triples accumulated in the session."),
		sessBatches: r.Gauge("jocl_session_batches", "Batches committed to the session."),

		retracts:       r.Counter("jocl_retract_total", "Retraction batches committed successfully."),
		retractTriples: r.Counter("jocl_retract_triples_total", "Live triples tombstoned across all retractions."),
		retractPhrases: r.CounterVec("jocl_retract_removed_phrases_total",
			"Phrases whose last live mention was retracted and that left the graph, by kind (np | rp).", "kind"),
		deadTriples: r.Gauge("jocl_session_dead_triples", "Tombstoned triple positions accumulated in the session."),

		okbNPs:   r.Gauge("jocl_okb_nps", "Distinct noun-phrase surfaces in the open KB."),
		okbRPs:   r.Gauge("jocl_okb_rps", "Distinct relation-phrase surfaces in the open KB."),
		okbDepth: r.Gauge("jocl_okb_overlay_depth", "Incremental-append overlay depth of the OKB store (0 = flattened base)."),

		bpSweeps:       r.Counter("jocl_bp_sweeps_total", "BP sweeps summed over all block runs and ingests."),
		bpSweepsIngest: r.Histogram("jocl_bp_sweeps_per_ingest", "BP sweeps one ingest paid.", telemetry.CountBuckets),
		bpOuterRounds:  r.Histogram("jocl_bp_outer_rounds", "Frozen-boundary outer rounds per ingest (1 without cuts).", telemetry.CountBuckets),
		bpResidual:     r.Gauge("jocl_bp_boundary_residual", "Last ingest's final max cut-belief change."),
		bpWarmFactors:  r.Gauge("jocl_bp_warm_factors", "Factors whose messages transplanted warm in the last ingest."),
		bpDur:          r.Histogram("jocl_bp_duration_seconds", "Scoped message passing wall clock per ingest.", nil),

		partBlocks:     r.Gauge("jocl_partition_blocks", "Partition blocks in the last build's graph."),
		partCutVars:    r.Gauge("jocl_partition_cut_variables", "Hub variables cut out of the blocks in the last build."),
		partBlocksRun:  r.Counter("jocl_partition_blocks_run_total", "Block executions across all ingests."),
		partBlocksWarm: r.Counter("jocl_partition_blocks_warm_total", "Blocks served from warm messages across all ingests."),
		partRepairs:    r.Counter("jocl_partition_repairs_total", "Ingests that repaired the previous partition instead of re-deriving it."),
		partAdopted:    r.Counter("jocl_partition_blocks_adopted_total", "Blocks repairs adopted verbatim."),
		partRecut:      r.Counter("jocl_partition_blocks_recut_total", "Blocks repairs re-cut."),
		partDur:        r.Histogram("jocl_partition_duration_seconds", "Partition derivation or repair wall clock per ingest.", nil),

		qApplyDur:    r.Histogram("jocl_query_apply_duration_seconds", "Query-index maintenance wall clock per ingest.", nil),
		qKeys:        r.Counter("jocl_query_keys_written_total", "Index keys rewritten or tombstoned across all applies."),
		qCompactions: r.Counter("jocl_query_compactions_total", "Applies that flattened the overlay chain."),
		qFullBuilds:  r.Counter("jocl_query_full_rebuilds_total", "Applies that rebuilt the index from scratch."),

		ckpts:      r.Counter("jocl_checkpoint_total", "Checkpoints written successfully."),
		ckptErrors: r.Counter("jocl_checkpoint_errors_total", "Checkpoint attempts that failed."),
		ckptBytes:  r.Gauge("jocl_checkpoint_bytes", "Serialized size of the last checkpoint."),
		ckptBatch:  r.Gauge("jocl_checkpoint_batches", "Batches captured by the last checkpoint."),
		ckptDur:    r.Histogram("jocl_checkpoint_duration_seconds", "Wall clock of one checkpoint capture+write.", nil),
	}
	r.GaugeFunc("jocl_checkpoint_age_seconds",
		"Seconds since the last successful checkpoint (0 before the first).",
		func() float64 {
			ns := s.lastCkpt.Load()
			if ns == 0 {
				return 0
			}
			return time.Since(time.Unix(0, ns)).Seconds()
		})
	if s.qidx != nil {
		s.qidx.Instrument(r)
		r.GaugeFunc("jocl_query_generation", "Published query-index generation id.",
			func() float64 {
				gi, ok := s.qidx.Generation()
				if !ok {
					return 0
				}
				return float64(gi.Generation)
			})
		r.GaugeFunc("jocl_query_behind", "Ingests begun but not yet reflected in the published generation.",
			func() float64 { return float64(s.qidx.Behind()) })
		r.GaugeFunc("jocl_query_overlay_layers", "Copy-on-write overlay depth of the published generation.",
			func() float64 { return float64(s.qidx.Layers()) })
	}
	return m
}

// observeIngest feeds one committed ingest (append or retraction) into
// the metrics. nps/rps/depth describe the post-commit OKB store; dead
// is the session's cumulative tombstone count; qs is nil when the query
// index is disabled; tr is the finished stage trace.
func (m *sessionMetrics) observeIngest(st *IngestStats, inc core.IncrementalStats, nps, rps, depth, dead int, qs *query.ApplyStats, tr telemetry.Trace) {
	m.ingests.Inc()
	m.triples.Add(uint64(st.BatchTriples))
	m.batchSize.Observe(float64(st.BatchTriples))
	m.ingestDur.ObserveDuration(st.TotalTime)
	m.allocBytes.Add(st.AllocBytes)
	m.allocs.Add(st.Allocs)
	if st.Refreshed {
		m.refreshes.Inc()
	}
	m.sessTriples.Set(float64(st.TotalTriples))
	m.sessBatches.Set(float64(st.Batch))

	if st.Retracted > 0 {
		m.retracts.Inc()
		m.retractTriples.Add(uint64(st.Retracted))
		m.retractPhrases.With("np").Add(uint64(st.RemovedNPs))
		m.retractPhrases.With("rp").Add(uint64(st.RemovedRPs))
	}
	m.deadTriples.Set(float64(dead))

	m.okbNPs.Set(float64(nps))
	m.okbRPs.Set(float64(rps))
	m.okbDepth.Set(float64(depth))

	m.bpSweeps.Add(uint64(inc.SweepsTotal))
	m.bpSweepsIngest.Observe(float64(inc.SweepsTotal))
	m.bpOuterRounds.Observe(float64(inc.OuterRounds))
	m.bpResidual.Set(inc.BoundaryResidual)
	m.bpWarmFactors.Set(float64(inc.WarmFactors))
	m.bpDur.ObserveDuration(inc.BPTime)

	m.partBlocks.Set(float64(inc.Components))
	m.partCutVars.Set(float64(inc.CutVars))
	m.partBlocksRun.Add(uint64(inc.BlocksRun))
	m.partBlocksWarm.Add(uint64(inc.Reused))
	if inc.PartitionRepaired {
		m.partRepairs.Inc()
	}
	m.partAdopted.Add(uint64(inc.RepairBlocksReused))
	m.partRecut.Add(uint64(inc.RepairBlocksRecut))
	m.partDur.ObserveDuration(inc.PartitionTime)

	if qs != nil {
		m.qApplyDur.Observe(qs.ApplyMS / 1000)
		m.qKeys.Add(uint64(qs.KeysWritten))
		if qs.Compacted {
			m.qCompactions.Inc()
		}
		if qs.Full {
			m.qFullBuilds.Inc()
		}
	}
	for _, sp := range tr.Spans {
		m.stageDur.With(sp.Name).ObserveDuration(sp.Duration)
	}
}

// Telemetry exposes the session's metrics registry and ingest-trace
// ring, or nil when Config.Telemetry.Enable is unset. The serving
// layer renders the registry at /metrics and the ring at /debug/trace;
// the bench digests the same histograms into p50/p95/p99 summaries.
func (s *Session) Telemetry() *telemetry.Telemetry { return s.tel }

// ObserveCheckpoint records one checkpoint attempt: serialized size,
// the batch count the snapshot captured, wall clock, and outcome. The
// serving layers call it for checkpoint paths that bypass
// Session.Checkpoint (e.g. atomic file saves); with telemetry disabled
// it is a no-op.
func (s *Session) ObserveCheckpoint(bytes int64, batches int, d time.Duration, err error) {
	if s.met == nil {
		return
	}
	if err != nil {
		s.met.ckptErrors.Inc()
		return
	}
	s.met.ckpts.Inc()
	s.met.ckptBytes.Set(float64(bytes))
	s.met.ckptBatch.Set(float64(batches))
	s.met.ckptDur.ObserveDuration(d)
	s.lastCkpt.Store(time.Now().UnixNano())
}

// countWriter counts the bytes written through it, so Checkpoint can
// report the serialized size without buffering the snapshot.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// span opens a named trace span, degrading to a no-op when tracing is
// off so the ingest path stays branch-cheap.
func span(tb *telemetry.TraceBuilder, name string) func() time.Duration {
	if tb == nil {
		return func() time.Duration { return 0 }
	}
	return tb.StartSpan(name)
}
