package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckb"
	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/factorgraph"
	"repro/internal/okb"
	"repro/internal/ppdb"
	"repro/internal/query"
	"repro/internal/signals"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config tunes a Session.
type Config struct {
	// Core configures graph construction and inference. Learning is not
	// part of the serving path: seed learned weights via
	// Core.InitialWeights.
	Core core.Config
	// Workers bounds the per-component inference pool (default
	// GOMAXPROCS).
	Workers int
	// RefreshEvery rebuilds the epoch resources (IDF, AMIE rules, KBP,
	// extension indexes) every N batches; 0 never refreshes after the
	// first build. The batch that triggers a refresh pays a full
	// re-solve.
	RefreshEvery int
	// Query configures the read-path index (see internal/query): with
	// Query.Enable set, every Ingest maintains materialized
	// canonical-KB views delta-wise and publishes them for lock-free
	// snapshot reads via Session.Query.
	Query query.Config
	// Telemetry configures the session's metrics registry and ingest
	// trace ring (see internal/telemetry): with Telemetry.Enable set,
	// every layer of each Ingest feeds Prometheus-style metrics and a
	// per-stage trace, exposed via Session.Telemetry.
	Telemetry telemetry.Config
	// Trace configures request-scoped span tracing (see internal/trace):
	// with Trace.Enable set (requires Telemetry.Enable), the session
	// owns a Tracer, each traced ingest's stage breakdown is replayed
	// into its trace, and slow/abnormal request traces are retained for
	// /debug/requests.
	Trace trace.Config
}

// IngestStats reports what one batch cost.
type IngestStats struct {
	Batch        int `json:"batch"`
	BatchTriples int `json:"batch_triples"`
	TotalTriples int `json:"total_triples"`
	// Refreshed is true when this batch rebuilt the epoch resources
	// (first batch, or RefreshEvery reached): everything re-runs.
	Refreshed bool `json:"refreshed"`
	// Retracted counts the triple positions a retraction batch
	// tombstoned (zero for append ingests); RemovedNPs / RemovedRPs the
	// surfaces whose last live mention went with them.
	Retracted  int `json:"retracted,omitempty"`
	RemovedNPs int `json:"removed_nps,omitempty"`
	RemovedRPs int `json:"removed_rps,omitempty"`

	Components      int `json:"components"`
	DirtyComponents int `json:"dirty_components"`
	CleanComponents int `json:"clean_components"`
	DirtyVariables  int `json:"dirty_variables"`
	TotalVariables  int `json:"total_variables"`
	WarmFactors     int `json:"warm_factors"`
	SweepsTotal     int `json:"sweeps_total"`
	SweepsMax       int `json:"sweeps_max"`

	// CutVariables, OuterRounds, and BoundaryResidual describe hub-cut
	// segmentation and are zero unless Core.Segment.Enable cut
	// something. BlocksRun totals block executions (= DirtyComponents
	// without segmentation; larger when frozen-boundary rounds re-ran
	// blocks).
	CutVariables     int     `json:"cut_variables,omitempty"`
	OuterRounds      int     `json:"outer_rounds,omitempty"`
	BlocksRun        int     `json:"blocks_run,omitempty"`
	BoundaryResidual float64 `json:"boundary_residual,omitempty"`

	// PartitionRepaired marks builds that repaired the previous
	// partition in place of a full re-derivation; RepairBlocksReused /
	// RepairBlocksRecut then count the blocks adopted verbatim vs
	// re-cut.
	PartitionRepaired  bool `json:"partition_repaired,omitempty"`
	RepairBlocksReused int  `json:"repair_blocks_reused,omitempty"`
	RepairBlocksRecut  int  `json:"repair_blocks_recut,omitempty"`

	// AllocBytes / Allocs are the Go-runtime allocation deltas across
	// the whole ingest (runtime.MemStats TotalAlloc / Mallocs, sampled
	// under the ingest lock): the steady-state allocation cost the
	// interning + pooling layers exist to bound. Concurrent reader
	// goroutines' allocations land in the same counters, so treat the
	// numbers as an upper bound on a loaded session.
	AllocBytes uint64 `json:"alloc_bytes"`
	Allocs     uint64 `json:"allocs"`

	// Stage timings, recorded as durations so they sum exactly.
	// ConstructTime covers resource extension and graph (re)build,
	// InferTime the whole incremental inference pass — of which
	// PartitionTime derived or repaired the partition and BPTime ran
	// the scoped message passing — and TotalTime the whole ingest.
	// JSON serialization derives millisecond floats from these at the
	// boundary (see MarshalJSON); nothing is truncated internally.
	ConstructTime time.Duration `json:"-"`
	InferTime     time.Duration `json:"-"`
	PartitionTime time.Duration `json:"-"`
	BPTime        time.Duration `json:"-"`
	TotalTime     time.Duration `json:"-"`

	// Index reports the read-path index maintenance this ingest paid
	// (nil when the query index is disabled).
	Index *query.ApplyStats `json:"index,omitempty"`

	// TraceID is the hex id of the trace this ingest ran under (empty
	// when tracing is disabled or the ingest was untraced). For
	// coalesced ingests it names the merged-group trace; each member
	// submission's own trace links to it.
	TraceID string `json:"trace_id,omitempty"`
}

// MarshalJSON renders the stage timings as millisecond floats next to
// the counter fields — the only place durations become floats, so the
// serialized stages are exact fractions of the serialized total.
func (st IngestStats) MarshalJSON() ([]byte, error) {
	type alias IngestStats // shed the method, keep the tags
	return json.Marshal(struct {
		alias
		ConstructMS float64 `json:"construct_ms"`
		InferMS     float64 `json:"infer_ms"`
		PartitionMS float64 `json:"partition_ms"`
		BPMS        float64 `json:"bp_ms"`
		TotalMS     float64 `json:"total_ms"`
	}{alias(st), durMS(st.ConstructTime), durMS(st.InferTime),
		durMS(st.PartitionTime), durMS(st.BPTime), durMS(st.TotalTime)})
}

// Stats is the session's cumulative view.
type Stats struct {
	Batches      int `json:"batches"`
	TotalTriples int `json:"total_triples"`
	NPs          int `json:"nps"`
	RPs          int `json:"rps"`
	Refreshes    int `json:"refreshes"`
	CacheEntries int `json:"cache_entries"`
	// Retractions counts committed retraction batches; DeadTriples the
	// tombstoned positions among TotalTriples (live triples =
	// TotalTriples - DeadTriples).
	Retractions int `json:"retractions,omitempty"`
	DeadTriples int `json:"dead_triples,omitempty"`
	// BlocksTouched / BlocksWarm total, across all ingests, the
	// distinct blocks that ran BP and the blocks served from warm
	// messages (per ingest the two sum to that build's block count).
	// CutVariables reports the current build's hub-cut count.
	BlocksTouched int `json:"blocks_touched"`
	BlocksWarm    int `json:"blocks_warm"`
	CutVariables  int `json:"cut_variables"`
	// Repairs counts ingests whose partition was repaired from the
	// previous build's rather than re-derived; RepairBlocksReused
	// totals the blocks those repairs adopted verbatim.
	Repairs            int          `json:"repairs"`
	RepairBlocksReused int          `json:"repair_blocks_reused"`
	LastIngest         *IngestStats `json:"last_ingest,omitempty"`

	// QueryEnabled reports whether the read-path index is maintained;
	// QueryGeneration / QueryLayers its current generation id and
	// overlay depth; QueryMaxResults the enumeration cap actually
	// enforced (post-defaulting); IndexMS the cumulative maintenance
	// wall-clock across all ingests.
	QueryEnabled    bool    `json:"query_enabled,omitempty"`
	QueryGeneration int64   `json:"query_generation,omitempty"`
	QueryLayers     int     `json:"query_layers,omitempty"`
	QueryMaxResults int     `json:"query_max_results,omitempty"`
	IndexMS         float64 `json:"index_ms,omitempty"`
}

// Session is an incremental JOCL run over a growing OKB. All methods
// are safe for concurrent use: ingests are two-phase — Prepare
// (validation, OKB growth, signal evaluation, graph construction)
// serializes on one lock and Commit (scoped belief propagation, index
// maintenance, publication) on another, so one ingest's front half can
// overlap the previous ingest's inference pass — while Snapshot and
// Stats read the state published at the end of the last committed
// ingest and never wait behind an in-flight pass. Ingest runs both
// phases back to back; internal/ingress pipelines them.
type Session struct {
	cfg  Config
	ckb  *ckb.Store
	emb  *embedding.Model
	ppdb *ppdb.DB

	// syms is the session-lifetime interning table: every phrase,
	// candidate id, and derived variable identity gets a dense int32 id
	// at first sight, and all warm/incremental state is keyed on those
	// ids. It survives epoch refreshes (ids are never reused — a refresh
	// invalidates messages, not identities) and rides through
	// checkpoints. A failed ingest may intern its batch's phrases before
	// erroring; the stray ids are harmless garbage.
	syms *okb.SymbolTable
	// pool recycles BP message slabs across ingests, so steady-state
	// inference reuses buffers instead of allocating O(graph) per batch.
	pool *factorgraph.BufferPool

	// prepMu serializes the prepare half of ingests and guards the
	// accumulated-triple/epoch state below. A failed Prepare leaves all
	// of it untouched (state is committed only after graph construction
	// succeeds), so the caller may retry the batch. Everything a
	// successful Prepare installs here is immutable once installed —
	// stores and resources are copy-on-grow — which is what lets the
	// next Prepare run while the previous ingest's Commit is still
	// inside belief propagation.
	prepMu     sync.Mutex
	triples    []okb.Triple
	res        *signals.Resources // current epoch's resources
	cache      *core.SimCache
	sinceEpoch int // batches since last epoch build
	// prepSeq numbers prepared batches; commits happen in prepare
	// order, so it equals batches once the pipeline drains.
	prepSeq int
	// epochTriples is the triple count the current epoch's frozen
	// statistics were derived over — what a checkpoint records so
	// restore can re-derive the identical resources from the prefix.
	epochTriples int
	// dead lists every tombstoned triple position, ascending. The slice
	// is replaced (never mutated in place) by each committed
	// retraction, so snapshots and Prepared batches may alias it.
	// epochDead is the dead set the current epoch's frozen statistics
	// were derived over (the epoch IDF counts live triples only);
	// restore re-derives identical resources from (epoch prefix,
	// epochDead), frozen-appends the suffix, and re-tombstones
	// dead - epochDead.
	dead      []int
	epochDead []int

	// pendMu/pendCond guard pending, the count of batches prepared but
	// not yet committed. CheckpointState quiesces on it (with prepMu
	// held) so a snapshot never captures triples whose inference has
	// not landed. pendMu is a leaf lock: nothing is acquired under it.
	pendMu   sync.Mutex
	pendCond *sync.Cond
	pending  int

	// mu serializes the commit half of ingests (inference, counters,
	// index maintenance, publication) and guards the state below.
	mu       sync.Mutex
	warm     *factorgraph.WarmState
	batches  int
	nRefresh int
	// Cumulative partition counters across ingests.
	blocksTouched int
	blocksWarm    int
	repairs       int
	repairReused  int
	indexMS       float64
	// retractions counts committed retraction batches.
	retractions int

	// qidx is the read-path index (nil when Config.Query.Enable is
	// unset). It is maintained under mu but read lock-free.
	qidx *query.Index

	// tel/met are the telemetry substrate (nil when
	// Config.Telemetry.Enable is unset); both are set once at
	// construction and never mutated, so the hot path reads them
	// without synchronization. lastCkpt is the unix-nano time of the
	// last successful checkpoint, feeding the age gauge.
	tel      *telemetry.Telemetry
	met      *sessionMetrics
	lastCkpt atomic.Int64

	// tracer is the request-scoped span tracer (nil when tracing is
	// disabled); like tel/met it is set once at construction.
	tracer *trace.Tracer

	// pub guards the read-side state published after each ingest.
	pub      sync.Mutex
	last     *core.Result
	cumStats Stats
}

// New opens a session against a curated KB with pre-trained embedding
// and paraphrase resources (train them once, offline, like the batch
// pipeline does).
func New(ckbStore *ckb.Store, emb *embedding.Model, db *ppdb.DB, cfg Config) *Session {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	s := &Session{
		cfg:  cfg,
		ckb:  ckbStore,
		emb:  emb,
		ppdb: db,
		syms: okb.NewSymbolTable(),
		pool: factorgraph.NewBufferPool(),
	}
	s.pendCond = sync.NewCond(&s.pendMu)
	if cfg.Query.Enable {
		s.qidx = query.New(cfg.Query)
	}
	if cfg.Telemetry.Enable {
		s.tel = telemetry.New(cfg.Telemetry)
		s.met = newSessionMetrics(s)
		if cfg.Trace.Enable {
			s.tracer = trace.New(cfg.Trace, s.tel.Registry)
		}
	}
	return s
}

// Tracer exposes the session's request-scoped span tracer, or nil when
// tracing (or telemetry) is disabled. All Tracer methods are
// nil-receiver-safe, so callers thread the result without checking.
func (s *Session) Tracer() *trace.Tracer { return s.tracer }

// Query exposes the read-path index for lock-free snapshot reads, or
// nil when Config.Query.Enable is unset. All Index query methods are
// safe concurrent with Ingest and never block behind it.
func (s *Session) Query() *query.Index { return s.qidx }

// Symbols exposes the session's interning table. Read-side consumers
// resolve the symbol ids carried by result deltas through it; the
// table only grows, and lookups are safe concurrent with Ingest.
func (s *Session) Symbols() *okb.SymbolTable { return s.syms }

// ValidateBatch rejects batches the session would refuse before any
// state is touched: empty batches and triples with an empty subject,
// predicate, or object. Ingress layers call it before queueing a
// batch, so invalid submissions are refused at the door instead of
// occupying queue slots and prepare cycles.
func ValidateBatch(batch []okb.Triple) error {
	if len(batch) == 0 {
		return fmt.Errorf("stream: empty batch")
	}
	for i, t := range batch {
		if t.Subj == "" || t.Pred == "" || t.Obj == "" {
			return fmt.Errorf("stream: triple %d: empty subject, predicate, or object", i)
		}
	}
	return nil
}

// Prepared is the front half of one ingest: the batch's triples
// appended to the OKB, its signals evaluated, and the factor graph
// rebuilt — everything except inference. A Prepared must be Committed
// exactly once, and Prepared batches commit in prepare order; Commit
// cannot fail (the fallible work all happens in Prepare). The
// prepare/commit split exists so a pipelined caller (internal/ingress)
// can overlap batch N+1's construction with batch N's belief
// propagation; plain callers use Ingest, which runs both phases.
type Prepared struct {
	s       *Session
	st      IngestStats
	sys     *core.System
	res     *signals.Resources
	cache   *core.SimCache
	triples []okb.Triple // accumulated triples as of this batch
	// dead is the full tombstone set as of this batch (sorted,
	// immutable); retraction describes what a retraction batch removed
	// (zero for appends), with the removed surfaces pre-interned so
	// Commit can inject them into the canonicalization delta.
	dead       []int
	retraction okb.Retraction
	removedNPs []int32
	removedRPs []int32
	tb         *telemetry.TraceBuilder
	span       *trace.Span // trace span this ingest runs under (may be nil)
	start      time.Time
	mem0       runtime.MemStats
}

// Prepare runs the front half of an ingest: it validates the batch,
// grows the accumulated OKB, evaluates the batch's signals against the
// epoch's frozen statistics (or rebuilds the epoch when due), and
// constructs the factor graph. On success the session's prepare-side
// state is advanced and the returned Prepared carries everything
// Commit needs; on error the session is untouched and the batch can be
// retried — a failed Prepare has no side effects beyond harmless
// symbol interning.
func (s *Session) Prepare(batch []okb.Triple) (*Prepared, error) {
	return s.PrepareSpan(batch, nil)
}

// PrepareSpan is Prepare running under a trace span: the ingest's
// stage breakdown is replayed into sp as child spans at Commit, and
// the committed IngestStats carry sp's trace id. A nil sp makes it
// exactly Prepare. internal/ingress passes the merged-group span here.
func (s *Session) PrepareSpan(batch []okb.Triple, sp *trace.Span) (*Prepared, error) {
	if err := ValidateBatch(batch); err != nil {
		if s.met != nil {
			s.met.ingestErrors.Inc()
		}
		return nil, err
	}
	s.prepMu.Lock()
	defer s.prepMu.Unlock()

	// Trace from here: the validated batch is the unit the stage spans
	// decompose. tb is nil with telemetry off and every span degrades to
	// a no-op closure.
	start := time.Now()
	var tb *telemetry.TraceBuilder
	if s.tel != nil {
		tb = telemetry.StartTrace(s.prepSeq + 1)
	}
	var mem0 runtime.MemStats
	runtime.ReadMemStats(&mem0)

	// Staleness accounting: readers of the query index see Behind grow
	// from here until the new generation is published at Commit. The
	// deferred Abort rolls the marker back on ANY failed exit — error
	// return or panic — so a failed prepare cannot leave readers
	// permanently reported as behind. (A successful Prepare is always
	// followed by a Commit, which publishes the generation.)
	ok := false
	if s.qidx != nil {
		s.qidx.Begin()
		defer func() {
			if !ok {
				s.qidx.Abort()
			}
		}()
	}

	st := IngestStats{
		Batch:        s.prepSeq + 1,
		BatchTriples: len(batch),
		TotalTriples: len(s.triples) + len(batch),
	}

	// Build everything into locals first: session state is advanced
	// only once construction succeeds, so a failed batch can be retried
	// without double-counting its triples. The append may grow in place
	// (only Prepare, under prepMu, ever appends, and published views of
	// the slice never read past their own length), so the amortized
	// cost tracks the batch; on failure s.triples still ends at the old
	// length and the next attempt simply overwrites the tail.
	grown := append(s.triples, batch...)
	res, cache := s.res, s.cache
	t0 := time.Now()
	if res == nil || (s.cfg.RefreshEvery > 0 && s.sinceEpoch+1 >= s.cfg.RefreshEvery) {
		// Epoch build: derive every frozen statistic over all LIVE
		// triples seen so far — tombstoned positions stay in the array
		// (they are load-bearing identities) but drop out of the IDF
		// counts and mention lists here. Cached signal evaluations and
		// warm messages are stale by construction (potentials shift with
		// the new IDF/AMIE), so drop them; fingerprint mismatches would
		// discard them anyway.
		done := span(tb, "signal-eval")
		res = signals.New(okb.NewStoreRetaining(grown, s.dead, s.syms), s.ckb, s.emb, s.ppdb)
		done()
		cache = core.NewSimCache()
		st.Refreshed = true
	} else {
		done := span(tb, "okb-append")
		appended := res.OKB.Append(batch, true)
		done()
		done = span(tb, "signal-eval")
		res = res.Extend(appended)
		done()
	}

	cfg := s.cfg.Core
	cfg.Cache = cache
	cfg.Pool = s.pool
	doneBuild := span(tb, "graph-build")
	sys, err := core.NewSystem(res, cfg)
	doneBuild()
	if err != nil {
		if s.met != nil {
			s.met.ingestErrors.Inc()
		}
		return nil, fmt.Errorf("stream: rebuilding system: %w", err)
	}
	st.ConstructTime = time.Since(t0)

	// Advance the prepare-side state. Everything installed here is
	// immutable once installed, so the next Prepare can proceed while
	// this batch's Commit is still running inference.
	s.triples = grown
	s.res = res
	s.cache = cache
	s.prepSeq++
	if st.Refreshed {
		s.sinceEpoch = 0
		s.epochTriples = len(grown)
		s.epochDead = s.dead
	} else {
		s.sinceEpoch++
	}
	ok = true
	s.pendMu.Lock()
	s.pending++
	s.pendMu.Unlock()
	return &Prepared{
		s:       s,
		st:      st,
		sys:     sys,
		res:     res,
		cache:   cache,
		triples: grown,
		dead:    s.dead,
		tb:      tb,
		span:    sp,
		start:   start,
		mem0:    mem0,
	}, nil
}

// PrepareRetract is the front half of a retraction ingest: every live
// triple matching a batch member by (subject, predicate, object) is
// tombstoned — duplicate extractions of one fact all go at once — the
// signal resources are re-pointed at the shrink-aware store (the
// epoch's frozen statistics are kept; they recount over live triples
// at the next refresh), and the factor graph is rebuilt without the
// retracted evidence. Phrases whose last live mention was retracted
// leave the graph entirely; Commit injects them into the
// canonicalization delta as removal events. Batch members matching no
// live triple are skipped; a batch matching nothing at all fails with
// no side effects. Like Prepare, a returned Prepared must be Committed
// exactly once, in prepare order.
func (s *Session) PrepareRetract(batch []okb.Triple) (*Prepared, error) {
	return s.PrepareRetractSpan(batch, nil)
}

// ErrNoLiveMatch reports a retraction batch in which no member matched
// a live triple: the session state is unchanged. Callers can test for
// it with errors.Is across the ingress and public-session wrappers.
var ErrNoLiveMatch = errors.New("stream: retraction matched no live triples")

// PrepareRetractSpan is PrepareRetract running under a trace span (see
// PrepareSpan).
func (s *Session) PrepareRetractSpan(batch []okb.Triple, sp *trace.Span) (*Prepared, error) {
	if err := ValidateBatch(batch); err != nil {
		if s.met != nil {
			s.met.ingestErrors.Inc()
		}
		return nil, err
	}
	s.prepMu.Lock()
	defer s.prepMu.Unlock()
	if len(s.triples) == 0 {
		if s.met != nil {
			s.met.ingestErrors.Inc()
		}
		return nil, fmt.Errorf("stream: retract on an empty session: %w", ErrNoLiveMatch)
	}

	start := time.Now()
	var tb *telemetry.TraceBuilder
	if s.tel != nil {
		tb = telemetry.StartTrace(s.prepSeq + 1)
	}
	var mem0 runtime.MemStats
	runtime.ReadMemStats(&mem0)

	ok := false
	if s.qidx != nil {
		s.qidx.Begin()
		defer func() {
			if !ok {
				s.qidx.Abort()
			}
		}()
	}

	st := IngestStats{
		Batch:        s.prepSeq + 1,
		TotalTriples: len(s.triples),
	}
	res, cache := s.res, s.cache
	t0 := time.Now()
	if res == nil {
		// Refresh() (or a restore of a pending-refresh snapshot) tore the
		// resources down: rebuild the epoch over the live triples first,
		// then retract on top of it — the same state an Ingest-then-
		// Retract sequence would reach.
		done := span(tb, "signal-eval")
		res = signals.New(okb.NewStoreRetaining(s.triples, s.dead, s.syms), s.ckb, s.emb, s.ppdb)
		done()
		cache = core.NewSimCache()
		st.Refreshed = true
	}

	done := span(tb, "okb-retract")
	store, ret := res.OKB.Retract(batch)
	done()
	if ret.Empty() {
		if s.met != nil {
			s.met.ingestErrors.Inc()
		}
		return nil, ErrNoLiveMatch
	}
	res = res.Extend(store)

	cfg := s.cfg.Core
	cfg.Cache = cache
	cfg.Pool = s.pool
	doneBuild := span(tb, "graph-build")
	sys, err := core.NewSystem(res, cfg)
	doneBuild()
	if err != nil {
		if s.met != nil {
			s.met.ingestErrors.Inc()
		}
		return nil, fmt.Errorf("stream: rebuilding system after retraction: %w", err)
	}
	st.ConstructTime = time.Since(t0)
	st.Retracted = len(ret.IDs)
	st.RemovedNPs = len(ret.RemovedNPs)
	st.RemovedRPs = len(ret.RemovedRPs)

	// Advance the prepare-side state. s.dead is replaced, not mutated:
	// earlier Prepared batches and checkpoint snapshots keep their
	// aliases of the previous slice.
	s.res = res
	s.cache = cache
	s.prepSeq++
	if st.Refreshed {
		s.sinceEpoch = 0
		s.epochTriples = len(s.triples)
		// The epoch above was built before this retraction landed.
		s.epochDead = s.dead
	} else {
		s.sinceEpoch++
	}
	s.dead = mergeInts(s.dead, ret.IDs)
	ok = true
	s.pendMu.Lock()
	s.pending++
	s.pendMu.Unlock()
	return &Prepared{
		s:          s,
		st:         st,
		sys:        sys,
		res:        res,
		cache:      cache,
		triples:    s.triples,
		dead:       s.dead,
		retraction: ret,
		removedNPs: s.internSorted(ret.RemovedNPs),
		removedRPs: s.internSorted(ret.RemovedRPs),
		tb:         tb,
		span:       sp,
		start:      start,
		mem0:       mem0,
	}, nil
}

// internSorted maps surfaces to their symbol ids, sorted ascending.
func (s *Session) internSorted(surfs []string) []int32 {
	if len(surfs) == 0 {
		return nil
	}
	out := make([]int32, len(surfs))
	for i, p := range surfs {
		out[i] = s.syms.Intern(p)
	}
	slices.Sort(out)
	return out
}

// mergeInts merges two sorted, disjoint ascending id slices into a
// fresh slice.
func mergeInts(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Commit runs the back half of the prepared ingest — scoped belief
// propagation warm-started from the previous commit, cumulative
// counters, query-index maintenance, and publication of the read-side
// state. It cannot fail. Prepared batches must be committed exactly
// once each, in prepare order; internal/ingress enforces that, and
// Ingest trivially satisfies it.
func (p *Prepared) Commit() IngestStats {
	s, st, tb := p.s, p.st, p.tb
	if p.span != nil {
		st.TraceID = p.span.Context().TraceID.String()
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	warm := s.warm
	if st.Refreshed {
		// The epoch rebuild shifted every potential; warm messages are
		// stale by construction.
		warm = nil
	}
	t1 := time.Now()
	result, nextWarm, inc := p.sys.RunIncremental(warm, s.cfg.Workers)
	st.InferTime = time.Since(t1)
	if tb != nil {
		// The inference pass's sub-stages, placed back-to-back from the
		// pass's start (the offsets are synthesized — only the durations
		// are measured): partition derivation/repair, scoped BP, the
		// decode + canonicalization delta, and the residual glue (warm
		// import, adjacency fingerprints, message export).
		base := t1.Sub(tb.Begin())
		tb.Span("partition-repair", base, inc.PartitionTime)
		tb.Span("bp", base+inc.PartitionTime, inc.BPTime)
		tb.Span("canon-delta", base+inc.PartitionTime+inc.BPTime, inc.DeltaTime)
		covered := inc.PartitionTime + inc.BPTime + inc.DeltaTime
		tb.Span("infer-other", base+covered, st.InferTime-covered)
	}

	st.Components = inc.Components
	st.DirtyComponents = inc.Dirty
	st.CleanComponents = inc.Reused
	st.DirtyVariables = inc.DirtyVars
	st.TotalVariables = inc.TotalVars
	st.WarmFactors = inc.WarmFactors
	st.SweepsTotal = inc.SweepsTotal
	st.SweepsMax = inc.SweepsMax
	st.CutVariables = inc.CutVars
	st.OuterRounds = inc.OuterRounds
	st.BlocksRun = inc.BlocksRun
	st.BoundaryResidual = inc.BoundaryResidual
	st.PartitionTime = inc.PartitionTime
	st.BPTime = inc.BPTime
	st.PartitionRepaired = inc.PartitionRepaired
	st.RepairBlocksReused = inc.RepairBlocksReused
	st.RepairBlocksRecut = inc.RepairBlocksRecut

	// Commit.
	s.warm = nextWarm
	s.batches = st.Batch
	if st.Refreshed {
		s.nRefresh++
	}
	if !p.retraction.Empty() {
		s.retractions++
		// Removed phrases have no variables in the rebuilt graph, so the
		// delta derivation cannot see them: inject the removal events the
		// read path needs to delete their entries and split the clusters
		// they left.
		result.Delta.AddRemovals(p.removedNPs, p.removedRPs)
	}
	s.blocksTouched += inc.Dirty
	s.blocksWarm += inc.Reused
	if inc.PartitionRepaired {
		s.repairs++
		s.repairReused += inc.RepairBlocksReused
	}

	// Maintain and publish the read-path index. The new generation goes
	// live here with one atomic swap; concurrent readers were served
	// the previous generation (marked behind) throughout this ingest.
	// p.triples is the accumulated slice as of this batch — a later
	// Prepare may already have grown the backing array past it, but the
	// index never reads past the length captured here.
	if s.qidx != nil {
		done := span(tb, "index-apply")
		tombs := query.Tombstones{Dead: p.retraction.IDs, AllDead: p.dead}
		qs := s.qidx.Apply(result, result.Delta, p.triples, tombs, s.syms)
		done()
		s.indexMS += qs.ApplyMS
		st.Index = &qs
	}

	// Publish the read-side state.
	donePub := span(tb, "publish")
	cum := Stats{
		Batches:            s.batches,
		TotalTriples:       len(p.triples),
		NPs:                len(p.res.OKB.NPs()),
		RPs:                len(p.res.OKB.RPs()),
		Refreshes:          s.nRefresh,
		CacheEntries:       p.cache.Len(),
		Retractions:        s.retractions,
		DeadTriples:        len(p.dead),
		BlocksTouched:      s.blocksTouched,
		BlocksWarm:         s.blocksWarm,
		CutVariables:       inc.CutVars,
		Repairs:            s.repairs,
		RepairBlocksReused: s.repairReused,
	}
	if s.qidx != nil {
		cum.IndexMS = s.indexMS
	}
	var mem1 runtime.MemStats
	runtime.ReadMemStats(&mem1)
	st.AllocBytes = mem1.TotalAlloc - p.mem0.TotalAlloc
	st.Allocs = mem1.Mallocs - p.mem0.Mallocs

	st.TotalTime = time.Since(p.start)
	lastSt := st
	cum.LastIngest = &lastSt
	s.pub.Lock()
	s.last = result
	s.cumStats = cum
	s.pub.Unlock()
	donePub()

	if s.met != nil {
		tr := tb.Finish(s.tel.Traces)
		// Replay the stage breakdown into the ingest's trace span: the
		// TraceBuilder's per-stage offsets become child spans of the
		// merged-group (or request) trace, so /debug/requests shows the
		// same decomposition /debug/trace does, keyed by trace id.
		if p.span != nil {
			for _, sp := range tr.Spans {
				p.span.AddSpan(sp.Name, tb.Begin().Add(sp.Start), sp.Duration)
			}
		}
		s.met.observeIngest(&st, inc, len(p.res.OKB.NPs()), len(p.res.OKB.RPs()),
			p.res.OKB.OverlayDepth(), len(p.dead), st.Index, tr)
	}

	// Release the checkpoint quiesce: this batch is fully committed.
	s.pendMu.Lock()
	s.pending--
	s.pendCond.Broadcast()
	s.pendMu.Unlock()
	return st
}

// Ingest folds a batch of triples into the session and re-infers,
// re-running belief propagation only on the connected components the
// batch touched. It is Prepare followed immediately by Commit.
//
// A failed Ingest is free of side effects: the batch is validated
// before anything is touched, all state is built into locals, and the
// session's epoch state (resources, counters, warm state, query
// staleness accounting) is advanced only after construction succeeds —
// so the caller can always retry or skip the batch and the session
// behaves as if the failed call never happened.
func (s *Session) Ingest(batch []okb.Triple) (IngestStats, error) {
	return s.IngestTraced(trace.SpanContext{}, batch)
}

// IngestTraced is Ingest running under a request trace: a request
// trace rooted at parent (a fresh trace id when parent is invalid) is
// opened around the whole ingest, the stage breakdown lands in it, and
// it is tail-sampled on End. With tracing disabled the span is nil and
// the call is exactly Ingest.
func (s *Session) IngestTraced(parent trace.SpanContext, batch []okb.Triple) (IngestStats, error) {
	sp := s.tracer.StartRequest("ingest", parent)
	p, err := s.PrepareSpan(batch, sp)
	if err != nil {
		sp.EndStatus(trace.StatusError, err.Error())
		return IngestStats{}, err
	}
	st := p.Commit()
	sp.End()
	return st, nil
}

// Retract tombstones every live triple matching a batch member by
// (subject, predicate, object) and re-infers without the retracted
// evidence. It is PrepareRetract followed immediately by Commit. The
// epoch's frozen statistics still count the retracted triples until
// the next refresh (see Refresh / Config.RefreshEvery), after which
// the session state is indistinguishable — up to frozen-model
// pinning — from a stream that never contained them.
func (s *Session) Retract(batch []okb.Triple) (IngestStats, error) {
	return s.RetractTraced(trace.SpanContext{}, batch)
}

// RetractTraced is Retract running under a request trace (see
// IngestTraced).
func (s *Session) RetractTraced(parent trace.SpanContext, batch []okb.Triple) (IngestStats, error) {
	sp := s.tracer.StartRequest("retract", parent)
	p, err := s.PrepareRetractSpan(batch, sp)
	if err != nil {
		sp.EndStatus(trace.StatusError, err.Error())
		return IngestStats{}, err
	}
	st := p.Commit()
	sp.End()
	return st, nil
}

// Refresh forces an epoch rebuild on the next Ingest: the frozen
// statistics are re-derived over every triple seen so far and the next
// inference pass is a full re-solve.
func (s *Session) Refresh() {
	s.prepMu.Lock()
	defer s.prepMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.res = nil
	s.cache = nil
	s.warm = nil
}

// Snapshot returns the result of the last successful Ingest, or nil
// before the first. It never blocks behind an in-flight ingest. The
// result is shared, not copied — treat it as read-only.
func (s *Session) Snapshot() *core.Result {
	s.pub.Lock()
	defer s.pub.Unlock()
	return s.last
}

// Stats returns the cumulative counters as of the last successful
// Ingest. It never blocks behind an in-flight ingest. The query-index
// fields are read live from the index (they are accurate even before
// the first ingest, and the reported MaxResults is the cap the index
// actually enforces).
func (s *Session) Stats() Stats {
	s.pub.Lock()
	out := s.cumStats
	s.pub.Unlock()
	if s.qidx != nil {
		out.QueryEnabled = true
		out.QueryLayers = s.qidx.Layers()
		out.QueryMaxResults = s.qidx.Limits().MaxResults
		if gi, ok := s.qidx.Generation(); ok {
			out.QueryGeneration = gi.Generation
		}
	}
	return out
}
