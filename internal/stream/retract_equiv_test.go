package stream

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/embedding"
	"repro/internal/okb"
	"repro/internal/ppdb"
	"repro/internal/query"
)

// The tentpole proof obligation for retraction support: a stream that
// ingested triples and later retracted some of them must converge to
// the state of a fresh stream that never contained them. Before the
// next refresh the two legitimately differ — the dirty stream's frozen
// epoch statistics still count the retracted evidence — so the claim is
// convergence at the refresh boundary: bitwise on the no-cut path,
// within the 0.02 agreement tolerance on the hub-cut path (partition
// memory is path-dependent), and preserved across a checkpoint v3
// save/restore.

// sameLiveQueryContent asserts both sessions' query indexes serve the
// same content for every live surface, ignoring generation stamps and
// triple ids (the dirty session's ids have tombstone gaps the fresh
// session never had; the facts behind them must still match 1:1 in
// stream order).
func sameLiveQueryContent(t *testing.T, dirty, fresh *Session) {
	t.Helper()
	a, b := dirty.Query(), fresh.Query()
	for _, np := range fresh.res.OKB.NPs() {
		ra, okA := a.ResolveNP(np)
		rb, okB := b.ResolveNP(np)
		if okA != okB {
			t.Errorf("ResolveNP(%q) ok diverges (dirty %v, fresh %v)", np, okA, okB)
			continue
		}
		ra.Gen, rb.Gen = query.GenInfo{}, query.GenInfo{}
		if !reflect.DeepEqual(ra, rb) {
			t.Errorf("ResolveNP(%q) diverges\ndirty: %+v\nfresh: %+v", np, ra, rb)
		}
		ca, _ := a.NPCluster(np)
		cb, _ := b.NPCluster(np)
		ca.Gen, cb.Gen = query.GenInfo{}, query.GenInfo{}
		if !reflect.DeepEqual(ca, cb) {
			t.Errorf("NPCluster(%q) diverges\ndirty: %+v\nfresh: %+v", np, ca, cb)
		}
		ta, _ := a.TriplesBySubject(np, 0)
		tb, _ := b.TriplesBySubject(np, 0)
		if ta.Total != tb.Total || len(ta.Triples) != len(tb.Triples) {
			t.Errorf("TriplesBySubject(%q) count diverges (%d vs %d)", np, ta.Total, tb.Total)
			continue
		}
		for i := range ta.Triples {
			x, y := ta.Triples[i], tb.Triples[i]
			if x.Subj != y.Subj || x.Pred != y.Pred || x.Obj != y.Obj {
				t.Errorf("TriplesBySubject(%q)[%d] diverges: %+v vs %+v", np, i, x, y)
			}
		}
	}
}

func TestRetractedStreamConvergesToFreshStreamNoCut(t *testing.T) {
	cfg := Config{Core: core.DefaultConfig(), Query: query.Config{Enable: true}}
	dirty := microSession(t, cfg)
	fresh := microSession(t, cfg)

	doomed := okb.Triple{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"}
	b1 := []okb.Triple{
		{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"},
		doomed,
		{Subj: "epsilonics", Pred: "sue", Obj: "zetafoundry"},
	}
	b2 := []okb.Triple{
		{Subj: "alpha corp", Pred: "acquire", Obj: "betalabs"},
		{Subj: "alphacorp", Pred: "acquire", Obj: "deltasoft"},
	}
	b3 := []okb.Triple{
		{Subj: "omegaventures", Pred: "acquire", Obj: "alphacorp"},
	}
	b1Fresh := []okb.Triple{b1[0], b1[2]}

	for _, b := range [][]okb.Triple{b1, b2} {
		if _, err := dirty.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	st, err := dirty.Retract([]okb.Triple{doomed})
	if err != nil {
		t.Fatal(err)
	}
	if st.Retracted != 1 {
		t.Fatalf("retract stats = %+v, want 1 tombstone", st)
	}
	dirty.Refresh()
	if _, err := dirty.Ingest(b3); err != nil {
		t.Fatal(err)
	}

	for _, b := range [][]okb.Triple{b1Fresh, b2} {
		if _, err := fresh.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	fresh.Refresh()
	if _, err := fresh.Ingest(b3); err != nil {
		t.Fatal(err)
	}

	// Post-refresh the frozen statistics were recounted over live triples
	// only: the decoded outputs must be bitwise-identical to the stream
	// that never saw the retracted triple.
	sameResults(t, "no-cut convergence", dirty.Snapshot(), fresh.Snapshot())
	sameLiveQueryContent(t, dirty, fresh)

	// The retracted evidence is gone from the dirty stream's read path,
	// and its physical positions stayed put (never reused by b3).
	if _, ok := dirty.Query().ResolveRP("hire"); ok {
		t.Error("retracted relation still resolves after refresh")
	}
	ds := dirty.Stats()
	if ds.Retractions != 1 || ds.DeadTriples != 1 {
		t.Errorf("dirty stats = %+v, want 1 retraction / 1 dead triple", ds)
	}
	if ds.TotalTriples != fresh.Stats().TotalTriples+1 {
		t.Errorf("dead position vanished from the log: %d vs %d live-only",
			ds.TotalTriples, fresh.Stats().TotalTriples)
	}
}

func TestRetractedStreamConvergesToFreshStreamHubCut(t *testing.T) {
	ds, err := datasets.Generate(datasets.ReVerb45K(0.01))
	if err != nil {
		t.Fatal(err)
	}
	coreCfg := core.DefaultConfig()
	coreCfg.Segment.Enable = true
	cfg := Config{Core: coreCfg, Query: query.Config{Enable: true}}
	dirty := New(ds.CKB, ds.Emb, ds.PPDB, cfg)
	fresh := New(ds.CKB, ds.Emb, ds.PPDB, cfg)

	triples := ds.OKB.Triples()
	n := len(triples)
	c1, c2, c3 := triples[:n/2], triples[n/2:7*n/8], triples[7*n/8:]

	// Doom every 17th triple of the first chunk whose fact does not
	// recur in the final chunk (a recurrence would legitimately re-add
	// the fact to the dirty stream after the retraction, which is not
	// the scenario under test). Retraction supersedes by (S,P,O), so the
	// fresh stream must drop every duplicate of a doomed fact.
	spo := func(tr okb.Triple) [3]string { return [3]string{tr.Subj, tr.Pred, tr.Obj} }
	inTail := map[[3]string]bool{}
	for _, tr := range c3 {
		inTail[spo(tr)] = true
	}
	doomedSet := map[[3]string]bool{}
	var doomed []okb.Triple
	for i := 0; i < len(c1); i += 17 {
		if k := spo(c1[i]); !inTail[k] && !doomedSet[k] {
			doomedSet[k] = true
			doomed = append(doomed, c1[i])
		}
	}
	if len(doomed) < 5 {
		t.Fatalf("only %d doomed facts — scenario too small to mean anything", len(doomed))
	}
	filter := func(in []okb.Triple) []okb.Triple {
		out := make([]okb.Triple, 0, len(in))
		for _, tr := range in {
			if !doomedSet[spo(tr)] {
				out = append(out, tr)
			}
		}
		return out
	}

	for _, c := range [][]okb.Triple{c1, c2} {
		if _, err := dirty.Ingest(c); err != nil {
			t.Fatal(err)
		}
	}
	st, err := dirty.Retract(doomed)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retracted < len(doomed) {
		t.Fatalf("retracted %d positions for %d doomed facts", st.Retracted, len(doomed))
	}
	dirty.Refresh()
	stD, err := dirty.Ingest(c3)
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range [][]okb.Triple{filter(c1), filter(c2)} {
		if _, err := fresh.Ingest(c); err != nil {
			t.Fatal(err)
		}
	}
	fresh.Refresh()
	stF, err := fresh.Ingest(filter(c3))
	if err != nil {
		t.Fatal(err)
	}
	if stD.CutVariables == 0 || stF.CutVariables == 0 {
		t.Fatalf("hub-cut workload produced no cuts (dirty %d, fresh %d)", stD.CutVariables, stF.CutVariables)
	}

	const tol = 0.02
	a, b := dirty.Snapshot(), fresh.Snapshot()
	if got := agreement(a.NPLinks, b.NPLinks); got < 1-tol {
		t.Errorf("NP link agreement %.4f below %.4f", got, 1-tol)
	}
	if got := agreement(a.RPLinks, b.RPLinks); got < 1-tol {
		t.Errorf("RP link agreement %.4f below %.4f", got, 1-tol)
	}
	if got := agreement(canonicalOf(a.NPGroups), canonicalOf(b.NPGroups)); got < 1-tol {
		t.Errorf("NP cluster agreement %.4f below %.4f", got, 1-tol)
	}
	if got := agreement(canonicalOf(a.RPGroups), canonicalOf(b.RPGroups)); got < 1-tol {
		t.Errorf("RP cluster agreement %.4f below %.4f", got, 1-tol)
	}
}

func TestRetractionsSurviveCheckpointRestore(t *testing.T) {
	world := microWorld(t)
	emb := embedding.Train(nil, embedding.Config{Dim: 8, Seed: 1})
	db := ppdb.NewBuilder().Build()
	cfg := Config{Core: core.DefaultConfig(), Query: query.Config{Enable: true}}

	uninterrupted := New(world, emb, db, cfg)
	live := New(world, emb, db, cfg)
	b1 := []okb.Triple{
		{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"},
		{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"},
	}
	b2 := []okb.Triple{
		{Subj: "epsilonics", Pred: "sue", Obj: "zetafoundry"},
		{Subj: "alphacorp", Pred: "acquire", Obj: "deltasoft"},
	}
	doomed := []okb.Triple{{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"}}
	for _, s := range []*Session{uninterrupted, live} {
		for _, b := range [][]okb.Triple{b1, b2} {
			if _, err := s.Ingest(b); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Retract(doomed); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := live.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(bytes.NewReader(buf.Bytes()), world, emb, db, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The tombstones, counters, and every retained generation came back:
	// head reads and as-of reads answer bitwise-identically.
	rs, us := restored.Stats(), uninterrupted.Stats()
	if rs.Retractions != 1 || rs.DeadTriples != 1 || rs.TotalTriples != us.TotalTriples {
		t.Fatalf("restored counters diverge: %+v vs %+v", rs, us)
	}
	sameResults(t, "post-restore", restored.Snapshot(), uninterrupted.Snapshot())
	compareQueryAnswers(t, restored, uninterrupted)
	ri, ui := restored.Query(), uninterrupted.Query()
	if !reflect.DeepEqual(ri.Retained(), ui.Retained()) {
		t.Fatalf("retention rings diverge: %v vs %v", ri.Retained(), ui.Retained())
	}
	for _, gen := range ui.Retained() {
		for _, np := range []string{"alphacorp", "gammaworks", "epsilonics"} {
			ra, okA := ri.ResolveNP(np, query.AsOf(gen))
			rb, okB := ui.ResolveNP(np, query.AsOf(gen))
			if okA != okB || !reflect.DeepEqual(ra, rb) {
				t.Errorf("as-of gen %d ResolveNP(%q) diverges across restore: %+v/%v vs %+v/%v",
					gen, np, ra, okA, rb, okB)
			}
		}
	}

	// Re-retracting the already-dead fact must fail on the restored
	// session: the tombstones are real, not re-playable.
	if _, err := restored.Retract(doomed); !errors.Is(err, ErrNoLiveMatch) {
		t.Fatalf("re-retracting a restored tombstone returned %v, want ErrNoLiveMatch", err)
	}

	// And the streams stay in lockstep: another append + retraction on
	// both sides decode identically.
	b3 := []okb.Triple{{Subj: "omegaventures", Pred: "acquire", Obj: "alphacorp"}}
	undo := []okb.Triple{{Subj: "epsilonics", Pred: "sue", Obj: "zetafoundry"}}
	for _, s := range []*Session{restored, uninterrupted} {
		if _, err := s.Ingest(b3); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Retract(undo); err != nil {
			t.Fatal(err)
		}
	}
	sameResults(t, "post-restore stream", restored.Snapshot(), uninterrupted.Snapshot())
	compareQueryAnswers(t, restored, uninterrupted)
}

// TestConcurrentRetractQueryCheckpoint is the -race exercise for the
// retraction write path: retractions interleaved with appends on one
// goroutine, checkpoint captures on another, and head + as-of readers
// hammering the index throughout. Run by the race matrix (Makefile
// test-race and the ci.yml race step both include this package).
func TestConcurrentRetractQueryCheckpoint(t *testing.T) {
	cfg := Config{Core: core.DefaultConfig(), Query: query.Config{Enable: true, RetainGenerations: 3}}
	sess := microSession(t, cfg)
	if _, err := sess.Ingest([]okb.Triple{
		{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"},
		{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"},
		{Subj: "epsilonics", Pred: "sue", Obj: "zetafoundry"},
	}); err != nil {
		t.Fatal(err)
	}

	names := []string{"gammaworks", "deltasoft", "epsilonics", "zetafoundry", "omegaventures"}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			tr := okb.Triple{Subj: names[i], Pred: "acquire", Obj: names[i+1]}
			if _, err := sess.Ingest([]okb.Triple{tr}); err != nil {
				t.Error(err)
			}
			if _, err := sess.Retract([]okb.Triple{tr}); err != nil {
				t.Error(err)
			}
		}
	}()
	checkpoints := make([]*bytes.Buffer, 0, 8)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			var buf bytes.Buffer
			if err := sess.Checkpoint(&buf); err != nil {
				t.Error(err)
			}
			checkpoints = append(checkpoints, &buf)
		}
	}()
	go func() {
		defer wg.Done()
		ix := sess.Query()
		for i := 0; i < 200; i++ {
			ix.ResolveNP("alphacorp")
			ix.TriplesBySubject("alphacorp", 0)
			for _, gen := range ix.Retained() {
				ix.ResolveNP("gammaworks", query.AsOf(gen))
			}
			sess.Stats()
		}
	}()
	wg.Wait()

	// Every checkpoint captured mid-churn restores, and its dead set is
	// internally consistent with its retraction counter.
	emb := embedding.Train(nil, embedding.Config{Dim: 8, Seed: 1})
	world := microWorld(t)
	db := ppdb.NewBuilder().Build()
	for i, buf := range checkpoints {
		r, err := RestoreSession(bytes.NewReader(buf.Bytes()), world, emb, db, cfg)
		if err != nil {
			t.Fatalf("checkpoint %d not restorable: %v", i, err)
		}
		if rs := r.Stats(); rs.DeadTriples > rs.TotalTriples {
			t.Fatalf("checkpoint %d restored an impossible dead set: %+v", i, rs)
		}
	}
	if st := sess.Stats(); st.Retractions != 4 || st.DeadTriples != 4 {
		t.Errorf("final stats = %+v, want 4 retractions / 4 dead triples", st)
	}
}
