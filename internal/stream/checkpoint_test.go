package stream

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/embedding"
	"repro/internal/okb"
	"repro/internal/ppdb"
	"repro/internal/query"
)

// sameResults asserts two published results decode identically —
// groups, links, and membership indexes.
func sameResults(t *testing.T, label string, a, b *core.Result) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("%s: nil result (a=%v b=%v)", label, a == nil, b == nil)
	}
	if !reflect.DeepEqual(a.NPGroups, b.NPGroups) || !reflect.DeepEqual(a.RPGroups, b.RPGroups) {
		t.Errorf("%s: canonicalization groups diverge", label)
	}
	if !reflect.DeepEqual(a.NPLinks, b.NPLinks) || !reflect.DeepEqual(a.RPLinks, b.RPLinks) {
		t.Errorf("%s: links diverge", label)
	}
}

// canonicalOf maps every surface to its group's lexicographically
// smallest member — the stable cluster id the query layer uses.
func canonicalOf(groups [][]string) map[string]string {
	out := map[string]string{}
	for _, g := range groups {
		min := g[0]
		for _, m := range g[1:] {
			if m < min {
				min = m
			}
		}
		for _, m := range g {
			out[m] = min
		}
	}
	return out
}

// agreement returns the fraction of keys (union of both maps) on which
// the two maps agree.
func agreement(a, b map[string]string) float64 {
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	if len(keys) == 0 {
		return 1
	}
	same := 0
	for k := range keys {
		if a[k] == b[k] {
			same++
		}
	}
	return float64(same) / float64(len(keys))
}

// compareQueryAnswers asserts both sessions' query indexes answer every
// surface identically at the same generation.
func compareQueryAnswers(t *testing.T, a, b *Session) {
	t.Helper()
	ia, ib := a.Query(), b.Query()
	if ia == nil || ib == nil {
		t.Fatalf("query index missing (a=%v b=%v)", ia == nil, ib == nil)
	}
	ga, okA := ia.Generation()
	gb, okB := ib.Generation()
	if !okA || !okB || ga.Generation != gb.Generation || ga.Behind != gb.Behind || ga.Triples != gb.Triples {
		t.Fatalf("generations diverge: %+v ok=%v vs %+v ok=%v", ga, okA, gb, okB)
	}
	for _, np := range a.res.OKB.NPs() {
		ra, okRA := ia.ResolveNP(np)
		rb, okRB := ib.ResolveNP(np)
		if okRA != okRB || !reflect.DeepEqual(ra, rb) {
			t.Fatalf("ResolveNP(%q) diverges: %+v/%v vs %+v/%v", np, ra, okRA, rb, okRB)
		}
		ca, _ := ia.NPCluster(np)
		cb, _ := ib.NPCluster(np)
		if !reflect.DeepEqual(ca, cb) {
			t.Fatalf("NPCluster(%q) diverges", np)
		}
		ta, _ := ia.TriplesBySubject(np, 0)
		tb, _ := ib.TriplesBySubject(np, 0)
		if !reflect.DeepEqual(ta, tb) {
			t.Fatalf("TriplesBySubject(%q) diverges", np)
		}
	}
	for _, rp := range a.res.OKB.RPs() {
		ra, okRA := ia.ResolveRP(rp)
		rb, okRB := ib.ResolveRP(rp)
		if okRA != okRB || !reflect.DeepEqual(ra, rb) {
			t.Fatalf("ResolveRP(%q) diverges", rp)
		}
		ta, _ := ia.TriplesByRelation(rp, 0)
		tb, _ := ib.TriplesByRelation(rp, 0)
		if !reflect.DeepEqual(ta, tb) {
			t.Fatalf("TriplesByRelation(%q) diverges", rp)
		}
	}
}

func TestIngestFailureLeavesSessionUntouched(t *testing.T) {
	cfg := Config{Core: core.DefaultConfig(), Query: query.Config{Enable: true}}
	sess := microSession(t, cfg)
	control := microSession(t, cfg)

	good := [][]okb.Triple{
		{
			{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"},
			{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"},
		},
		{
			{Subj: "epsilonics", Pred: "sue", Obj: "zetafoundry"},
		},
		{
			{Subj: "alphacorp", Pred: "acquire", Obj: "deltasoft"},
		},
	}
	if _, err := sess.Ingest(good[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := control.Ingest(good[0]); err != nil {
		t.Fatal(err)
	}

	before := sess.Stats()
	snapBefore := sess.Snapshot()
	genBefore, _ := sess.Query().Generation()

	// Invalid batches must fail without touching epoch state, published
	// results, or the query index's staleness accounting.
	bad := [][]okb.Triple{
		nil,
		{{Subj: "alphacorp", Pred: "", Obj: "betalabs"}},
		{{Subj: "", Pred: "acquire", Obj: "betalabs"}},
		{{Subj: "alphacorp", Pred: "acquire", Obj: ""}},
	}
	for i, batch := range bad {
		if _, err := sess.Ingest(batch); err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
	}
	after := sess.Stats()
	if !reflect.DeepEqual(before, after) {
		t.Errorf("failed ingests moved the stats:\nbefore %+v\nafter  %+v", before, after)
	}
	if sess.Snapshot() != snapBefore {
		t.Errorf("failed ingests replaced the published result")
	}
	genAfter, _ := sess.Query().Generation()
	if genAfter.Behind != 0 || genAfter.Generation != genBefore.Generation {
		t.Errorf("failed ingests skewed staleness accounting: %+v -> %+v", genBefore, genAfter)
	}

	// After the failures, the session must behave exactly like one that
	// never saw them.
	for _, batch := range good[1:] {
		if _, err := sess.Ingest(batch); err != nil {
			t.Fatal(err)
		}
		if _, err := control.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
	sameResults(t, "ingest-after-failure", sess.Snapshot(), control.Snapshot())
	if got, want := sess.Stats().Batches, control.Stats().Batches; got != want {
		t.Errorf("batch count diverged: %d vs %d", got, want)
	}
	compareQueryAnswers(t, sess, control)
}

func TestCheckpointRoundTripNoCut(t *testing.T) {
	// restore(checkpoint(S)) then N more ingests must match a
	// never-restarted session bitwise: same decoded outputs, same warm
	// state, same query answers at the same generation.
	world := microWorld(t)
	emb := embedding.Train(nil, embedding.Config{Dim: 8, Seed: 1})
	db := ppdb.NewBuilder().Build()
	cfg := Config{Core: core.DefaultConfig(), RefreshEvery: 4, Query: query.Config{Enable: true}}

	batches := [][]okb.Triple{
		{
			{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"},
			{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"},
		},
		{
			{Subj: "epsilonics", Pred: "sue", Obj: "zetafoundry"},
			{Subj: "alphacorp", Pred: "acquire", Obj: "deltasoft"},
		},
		{
			{Subj: "alpha corp", Pred: "acquire", Obj: "betalabs"},
		},
		{
			{Subj: "omegaventures", Pred: "acquire", Obj: "alphacorp"},
		},
		{
			{Subj: "gammaworks", Pred: "sue", Obj: "omegaventures"},
		},
	}
	const cutAt = 2 // checkpoint after this many batches

	uninterrupted := New(world, emb, db, cfg)
	live := New(world, emb, db, cfg)
	for _, b := range batches[:cutAt] {
		if _, err := uninterrupted.Ingest(b); err != nil {
			t.Fatal(err)
		}
		if _, err := live.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := live.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(bytes.NewReader(buf.Bytes()), world, emb, db, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Immediately after restore: same published result, same query
	// answers at the same generation, same counters.
	sameResults(t, "post-restore", restored.Snapshot(), uninterrupted.Snapshot())
	compareQueryAnswers(t, restored, uninterrupted)
	rs, us := restored.Stats(), uninterrupted.Stats()
	if rs.Batches != us.Batches || rs.TotalTriples != us.TotalTriples || rs.Refreshes != us.Refreshes {
		t.Fatalf("restored counters diverge: %+v vs %+v", rs, us)
	}

	// N more ingests on both: bitwise-equal decodes and warm state,
	// and the restored session's first post-restore batch must reuse
	// warm components rather than re-run everything (RefreshEvery=4
	// keeps these batches inside the epoch).
	for i, b := range batches[cutAt:] {
		stR, err := restored.Ingest(b)
		if err != nil {
			t.Fatal(err)
		}
		stU, err := uninterrupted.Ingest(b)
		if err != nil {
			t.Fatal(err)
		}
		if stR.Refreshed != stU.Refreshed {
			t.Fatalf("post-restore batch %d: refresh schedule diverged (%v vs %v)", i, stR.Refreshed, stU.Refreshed)
		}
		if stR.DirtyComponents != stU.DirtyComponents || stR.CleanComponents != stU.CleanComponents {
			t.Errorf("post-restore batch %d: dirtiness diverged: restored %d/%d vs uninterrupted %d/%d",
				i, stR.DirtyComponents, stR.CleanComponents, stU.DirtyComponents, stU.CleanComponents)
		}
		if !stR.Refreshed && stR.WarmFactors == 0 {
			t.Errorf("post-restore batch %d transplanted no warm messages", i)
		}
	}
	sameResults(t, "post-restore stream", restored.Snapshot(), uninterrupted.Snapshot())
	if !reflect.DeepEqual(restored.warm.Msgs, uninterrupted.warm.Msgs) {
		t.Errorf("warm message state diverged after restored stream")
	}
	compareQueryAnswers(t, restored, uninterrupted)
}

func TestCheckpointRoundTripHubCut(t *testing.T) {
	// The hub-cut configuration on a realistic fused workload: a
	// restored session must keep blocks warm, repair the carried
	// partition, and track the uninterrupted session within the 0.02
	// quality tolerance (in practice the restore is exact; the
	// tolerance guards the assertion, not the mechanism).
	ds, err := datasets.Generate(datasets.ReVerb45K(0.01))
	if err != nil {
		t.Fatal(err)
	}
	coreCfg := core.DefaultConfig()
	coreCfg.Segment.Enable = true
	cfg := Config{Core: coreCfg, Query: query.Config{Enable: true}}

	triples := ds.OKB.Triples()
	n := len(triples)
	chunks := [][]okb.Triple{triples[:n/2], triples[n/2 : 5*n/8], triples[5*n/8 : 3*n/4], triples[3*n/4:]}
	const cutAt = 2

	uninterrupted := New(ds.CKB, ds.Emb, ds.PPDB, cfg)
	live := New(ds.CKB, ds.Emb, ds.PPDB, cfg)
	for _, c := range chunks[:cutAt] {
		if _, err := uninterrupted.Ingest(c); err != nil {
			t.Fatal(err)
		}
		if _, err := live.Ingest(c); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := live.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(bytes.NewReader(buf.Bytes()), ds.CKB, ds.Emb, ds.PPDB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareQueryAnswers(t, restored, uninterrupted)

	for i, c := range chunks[cutAt:] {
		stR, err := restored.Ingest(c)
		if err != nil {
			t.Fatal(err)
		}
		stU, err := uninterrupted.Ingest(c)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			// The continuation must be warm: the first post-restore build
			// repairs the carried partition and serves blocks from the
			// restored messages instead of re-solving cold.
			if !stR.PartitionRepaired {
				t.Errorf("first post-restore ingest did not repair the carried partition: %+v", stR)
			}
			if stR.CleanComponents == 0 {
				t.Errorf("first post-restore ingest served no blocks warm: %+v", stR)
			}
			if stR.RepairBlocksReused == 0 {
				t.Errorf("first post-restore ingest adopted no blocks: %+v", stR)
			}
		}
		if stR.CutVariables == 0 || stU.CutVariables == 0 {
			t.Fatalf("hub-cut workload produced no cuts (restored %d, uninterrupted %d)", stR.CutVariables, stU.CutVariables)
		}
	}

	const tol = 0.02
	a, b := restored.Snapshot(), uninterrupted.Snapshot()
	if got := agreement(a.NPLinks, b.NPLinks); got < 1-tol {
		t.Errorf("NP link agreement %.4f below %.4f", got, 1-tol)
	}
	if got := agreement(a.RPLinks, b.RPLinks); got < 1-tol {
		t.Errorf("RP link agreement %.4f below %.4f", got, 1-tol)
	}
	if got := agreement(canonicalOf(a.NPGroups), canonicalOf(b.NPGroups)); got < 1-tol {
		t.Errorf("NP cluster agreement %.4f below %.4f", got, 1-tol)
	}
	if got := agreement(canonicalOf(a.RPGroups), canonicalOf(b.RPGroups)); got < 1-tol {
		t.Errorf("RP cluster agreement %.4f below %.4f", got, 1-tol)
	}
	gr, _ := restored.Query().Generation()
	gu, _ := uninterrupted.Query().Generation()
	if gr.Generation != gu.Generation || gr.Behind != 0 {
		t.Errorf("generations diverged after restored stream: %+v vs %+v", gr, gu)
	}
}

func TestCheckpointCarriesPendingRefresh(t *testing.T) {
	// Refresh() tears the epoch down before the next ingest; a
	// checkpoint taken in that window must restore a session that still
	// pays the forced full re-solve on the same batch an uninterrupted
	// one would — not one that quietly resumes the old frozen epoch.
	world := microWorld(t)
	emb := embedding.Train(nil, embedding.Config{Dim: 8, Seed: 1})
	db := ppdb.NewBuilder().Build()
	cfg := Config{Core: core.DefaultConfig(), Query: query.Config{Enable: true}}

	live := New(world, emb, db, cfg)
	control := New(world, emb, db, cfg)
	first := []okb.Triple{{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"}}
	for _, s := range []*Session{live, control} {
		if _, err := s.Ingest(first); err != nil {
			t.Fatal(err)
		}
		s.Refresh()
	}

	var buf bytes.Buffer
	if err := live.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(bytes.NewReader(buf.Bytes()), world, emb, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	next := []okb.Triple{{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"}}
	stR, err := restored.Ingest(next)
	if err != nil {
		t.Fatal(err)
	}
	stC, err := control.Ingest(next)
	if err != nil {
		t.Fatal(err)
	}
	if !stR.Refreshed || !stC.Refreshed {
		t.Fatalf("pending refresh lost across restore: restored %v, control %v", stR.Refreshed, stC.Refreshed)
	}
	if restored.Stats().Refreshes != control.Stats().Refreshes {
		t.Errorf("refresh counters diverged: %d vs %d", restored.Stats().Refreshes, control.Stats().Refreshes)
	}
	sameResults(t, "pending-refresh restore", restored.Snapshot(), control.Snapshot())
}

func TestCheckpointEmptySessionRoundTrip(t *testing.T) {
	cfg := Config{Core: core.DefaultConfig(), Query: query.Config{Enable: true}}
	sess := microSession(t, cfg)
	var buf bytes.Buffer
	if err := sess.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	emb := embedding.Train(nil, embedding.Config{Dim: 8, Seed: 1})
	restored, err := RestoreSession(bytes.NewReader(buf.Bytes()), microWorld(t), emb, ppdb.NewBuilder().Build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Snapshot() != nil || restored.Stats().Batches != 0 {
		t.Fatalf("restored empty session not empty: %+v", restored.Stats())
	}
	if _, err := restored.Ingest([]okb.Triple{{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"}}); err != nil {
		t.Fatal(err)
	}
	if restored.Snapshot() == nil {
		t.Fatal("restored empty session cannot ingest")
	}
}

func TestCheckpointConcurrentWithIngestAndQueries(t *testing.T) {
	// Checkpoint capture must be safe under concurrent ingest and reads
	// (exercised by the -race job): the capture grabs published
	// immutable state under the locks, serialization runs outside them.
	cfg := Config{Core: core.DefaultConfig(), Query: query.Config{Enable: true}}
	sess := microSession(t, cfg)
	if _, err := sess.Ingest([]okb.Triple{{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"}}); err != nil {
		t.Fatal(err)
	}
	names := []string{"gammaworks", "deltasoft", "epsilonics", "zetafoundry", "omegaventures"}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			batch := []okb.Triple{{Subj: names[i], Pred: "acquire", Obj: names[i+1]}}
			if _, err := sess.Ingest(batch); err != nil {
				t.Error(err)
			}
		}
	}()
	checkpoints := make([]*bytes.Buffer, 0, 8)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			var buf bytes.Buffer
			if err := sess.Checkpoint(&buf); err != nil {
				t.Error(err)
			}
			checkpoints = append(checkpoints, &buf)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			sess.Query().ResolveNP("alphacorp")
			sess.Stats()
			sess.Snapshot()
		}
	}()
	wg.Wait()
	// Every captured checkpoint must be restorable.
	emb := embedding.Train(nil, embedding.Config{Dim: 8, Seed: 1})
	world := microWorld(t)
	for i, buf := range checkpoints {
		if _, err := RestoreSession(bytes.NewReader(buf.Bytes()), world, emb, ppdb.NewBuilder().Build(), cfg); err != nil {
			t.Fatalf("checkpoint %d not restorable: %v", i, err)
		}
	}
}

func TestCheckpointRoundTripsSymbolTable(t *testing.T) {
	// The interning table must ride through a checkpoint with every id
	// exactly where the live session assigned it: the warm state,
	// partition memory, and result delta all carry these ids, and ids
	// are assigned in first-intern order, so a re-derived table would
	// silently mismatch them all.
	world := microWorld(t)
	emb := embedding.Train(nil, embedding.Config{Dim: 8, Seed: 1})
	db := ppdb.NewBuilder().Build()
	cfg := Config{Core: core.DefaultConfig()}

	live := New(world, emb, db, cfg)
	batches := [][]okb.Triple{
		{
			{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"},
			{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"},
		},
		{
			{Subj: "alpha corp", Pred: "acquire", Obj: "betalabs"},
		},
	}
	for _, b := range batches {
		if _, err := live.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if live.Symbols().Len() == 0 {
		t.Fatal("ingests interned no symbols")
	}

	var buf bytes.Buffer
	if err := live.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(bytes.NewReader(buf.Bytes()), world, emb, db, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ls, rs := live.Symbols(), restored.Symbols()
	if ls.Len() != rs.Len() {
		t.Fatalf("symbol table length changed across restore: %d vs %d", rs.Len(), ls.Len())
	}
	for id := int32(0); int(id) < ls.Len(); id++ {
		if got, want := rs.Surface(id), ls.Surface(id); got != want {
			t.Fatalf("id %d resolves to %q after restore, was %q", id, got, want)
		}
	}
	// Surfaces keep their ids: re-interning an already-known phrase in
	// the restored session must be a pure lookup, never a new id.
	for _, b := range batches {
		for _, tr := range b {
			want, ok := ls.Lookup(tr.Subj)
			if !ok {
				t.Fatalf("live session never interned %q", tr.Subj)
			}
			if got := rs.Intern(tr.Subj); got != want {
				t.Fatalf("restored table re-interned %q at %d, live had %d", tr.Subj, got, want)
			}
		}
	}
}
