package stream

import (
	"fmt"
	"io"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/ckb"
	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/okb"
	"repro/internal/ppdb"
	"repro/internal/signals"
)

// This file is the durability boundary of the serving stack: it maps a
// live Session to and from the checkpoint.Snapshot the internal
// checkpoint package serializes. The contract is "persist exactly the
// incremental state we already maintain, re-derive the rest": the
// snapshot carries the accumulated triples, epoch markers, learned
// weights, the factor-graph warm state (messages, boundary baselines,
// block fingerprints, partition memory), the last published result,
// and the query index's generation id — while the signal resources,
// construction cache, and materialized query views are rebuilt
// deterministically on restore. A restored session therefore continues
// ingesting warm: adopted blocks stay warm, partition repairs pick up
// the carried cuts, and query generations resume with correct Behind
// accounting.

// CheckpointState captures the session's durable state as a snapshot.
// The capture itself holds the ingest locks only long enough to copy
// counters and grab references to the immutable published structures
// (committed triple prefixes, exported warm state, and results are
// never mutated after publication), so serializing and writing the
// snapshot — the expensive part — runs entirely off the ingest locks'
// hot path and concurrent Ingest/Query calls proceed undisturbed.
//
// With the two-phase ingest pipeline, the capture first quiesces:
// holding prepMu blocks new prepares, then the capture waits for every
// prepared-but-uncommitted batch to commit before reading state. A
// snapshot therefore never records triples whose inference has not
// landed — prepare-side and commit-side state are captured at the same
// batch boundary.
func (s *Session) CheckpointState() *checkpoint.Snapshot {
	s.prepMu.Lock()
	defer s.prepMu.Unlock()
	s.pendMu.Lock()
	for s.pending > 0 {
		s.pendCond.Wait()
	}
	// pending can only fall while prepMu is held, so dropping the leaf
	// lock here (before taking mu, which commits acquire first) cannot
	// let a new batch slip in ahead of the capture.
	s.pendMu.Unlock()
	s.mu.Lock()
	snap := &checkpoint.Snapshot{
		Triples:        s.triples[:len(s.triples):len(s.triples)],
		EpochTriples:   s.epochTriples,
		Batches:        s.batches,
		SinceEpoch:     s.sinceEpoch,
		Refreshes:      s.nRefresh,
		PendingRefresh: s.res == nil && s.batches > 0,
		BlocksTouched:  s.blocksTouched,
		BlocksWarm:     s.blocksWarm,
		Repairs:        s.repairs,
		RepairReused:   s.repairReused,
		IndexMS:        s.indexMS,
		Warm:           s.warm,
		Symbols:        s.syms.Snapshot(),
		QueryEnabled:   s.qidx != nil,
		Dead:           s.dead,
		EpochDead:      s.epochDead,
		Retractions:    s.retractions,
	}
	if n := len(s.cfg.Core.InitialWeights); n > 0 {
		snap.Weights = make(map[string]float64, n)
		for k, v := range s.cfg.Core.InitialWeights {
			snap.Weights[k] = v
		}
	}
	if s.qidx != nil {
		if gi, ok := s.qidx.Generation(); ok {
			snap.QueryGeneration = gi.Generation
		}
		// The retention ring rides along flattened, so as-of reads answer
		// bitwise-identically across a restart. The flatten copies each
		// retained generation's keyspace — the expensive part of the
		// capture — but runs before mu is released, which is still off
		// the reader hot path (readers never take mu).
		snap.QueryGenerations = s.qidx.RetainedSnapshot()
	}
	s.pub.Lock()
	snap.Result = s.last
	s.pub.Unlock()
	s.mu.Unlock()
	return snap
}

// Checkpoint writes a versioned, integrity-checked snapshot of the
// session to w (see internal/checkpoint for the format). Only the
// brief state capture synchronizes with ingests; the serialization and
// the write happen off the ingest lock. Size, duration, and outcome
// feed the checkpoint telemetry when enabled.
func (s *Session) Checkpoint(w io.Writer) error {
	t0 := time.Now()
	snap := s.CheckpointState()
	cw := &countWriter{w: w}
	err := checkpoint.Write(cw, snap)
	s.ObserveCheckpoint(cw.n, snap.Batches, time.Since(t0), err)
	return err
}

// RestoreSession reads a checkpoint written by Session.Checkpoint and
// reconstructs the session against the same substrate resources the
// original was built on. The curated KB, embedding model, paraphrase
// DB, and configuration must match the checkpointing session's — they
// are intentionally not serialized (they are the offline-trained
// substrate, shared across restarts) and a mismatch changes factor
// potentials, silently discarding the warm state via fingerprint
// mismatches.
func RestoreSession(r io.Reader, ckbStore *ckb.Store, emb *embedding.Model, db *ppdb.DB, cfg Config) (*Session, error) {
	snap, err := checkpoint.Read(r)
	if err != nil {
		return nil, err
	}
	return RestoreSnapshot(snap, ckbStore, emb, db, cfg)
}

// RestoreSnapshot reconstructs a session from an already-decoded
// snapshot (see RestoreSession). The epoch's frozen signal statistics
// are re-derived over the snapshot's epoch prefix and frozen-extended
// over the remainder — bit-identical to the live session's state,
// because both paths freeze the same IDF tables over the same prefix —
// the construction cache restarts empty (it refills lazily with
// identical values), and the query index, when enabled, is rebuilt
// from the restored result under the restored generation id.
func RestoreSnapshot(snap *checkpoint.Snapshot, ckbStore *ckb.Store, emb *embedding.Model, db *ppdb.DB, cfg Config) (*Session, error) {
	if snap == nil {
		return nil, fmt.Errorf("stream: nil snapshot")
	}
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	s := New(ckbStore, emb, db, cfg)
	if snap.Batches == 0 {
		return s, nil
	}
	if snap.EpochTriples == 0 {
		return nil, fmt.Errorf("stream: snapshot with %d batches has no epoch prefix", snap.Batches)
	}
	// Install the checkpointed interning table before anything re-interns
	// a phrase: the warm state, partition memory, and result delta carry
	// its ids, and ids are assigned in first-intern order, so rebuilding
	// resources against a fresh table would silently mismatch them all.
	if snap.Symbols != nil {
		syms, err := okb.NewSymbolTableFromSnapshot(snap.Symbols)
		if err != nil {
			return nil, fmt.Errorf("stream: restoring symbol table: %w", err)
		}
		s.syms = syms
	}
	if len(s.cfg.Core.InitialWeights) == 0 && len(snap.Weights) > 0 {
		w := make(map[string]float64, len(snap.Weights))
		for k, v := range snap.Weights {
			w[k] = v
		}
		s.cfg.Core.InitialWeights = w
	}

	// Re-derive the epoch resources from the prefix — excluding the
	// triples that were already dead at the refresh, exactly as the live
	// epoch build did — then frozen-extend with the suffix ingested
	// since (including triples retracted later: their positions are
	// load-bearing), and finally re-tombstone everything retracted after
	// the refresh. The store state depends only on (triples, dead,
	// epoch-time dead), not on the interleaving of appends and
	// retractions, so this replay is bit-identical to the live
	// session's. A snapshot taken after Refresh() skips all of it: the
	// live session had already torn its resources down, and the restored
	// one must likewise pay the full epoch rebuild on its next ingest.
	var res *signals.Resources
	if !snap.PendingRefresh {
		epoch := okb.NewStoreRetaining(snap.Triples[:snap.EpochTriples], snap.EpochDead, s.syms)
		res = signals.New(epoch, ckbStore, emb, db)
		if snap.EpochTriples < len(snap.Triples) {
			res = res.Extend(epoch.Append(snap.Triples[snap.EpochTriples:], true))
		}
		if laterDead := diffInts(snap.Dead, snap.EpochDead); len(laterDead) > 0 {
			store, _ := res.OKB.RetractIDs(laterDead)
			res = res.Extend(store)
		}
	}

	s.triples = snap.Triples[:len(snap.Triples):len(snap.Triples)]
	s.dead = snap.Dead
	s.epochDead = snap.EpochDead
	s.retractions = snap.Retractions
	s.res = res
	s.cache = core.NewSimCache()
	s.warm = snap.Warm
	s.batches = snap.Batches
	s.prepSeq = snap.Batches
	s.sinceEpoch = snap.SinceEpoch
	s.nRefresh = snap.Refreshes
	s.epochTriples = snap.EpochTriples
	s.blocksTouched = snap.BlocksTouched
	s.blocksWarm = snap.BlocksWarm
	s.repairs = snap.Repairs
	s.repairReused = snap.RepairReused
	s.indexMS = snap.IndexMS
	if s.qidx != nil {
		if len(snap.QueryGenerations) > 0 {
			// Reinstate the retained ring verbatim: as-of reads answer
			// bitwise-identically to the checkpointing session's.
			if err := s.qidx.RestoreRetained(snap.QueryGenerations, s.triples); err != nil {
				return nil, fmt.Errorf("stream: restoring query generations: %w", err)
			}
		} else {
			s.qidx.Restore(snap.Result, s.triples, snap.Dead, snap.QueryGeneration, s.syms)
		}
	}

	cut := 0
	if snap.Warm != nil && snap.Warm.Partition != nil {
		cut = len(snap.Warm.Partition.CutSyms)
	}
	nps, rps := 0, 0
	if res != nil {
		nps, rps = len(res.OKB.NPs()), len(res.OKB.RPs())
	} else if snap.Result != nil {
		nps, rps = len(snap.Result.NPLinks), len(snap.Result.RPLinks)
	}
	cum := Stats{
		Batches:            s.batches,
		TotalTriples:       len(s.triples),
		NPs:                nps,
		RPs:                rps,
		Refreshes:          s.nRefresh,
		BlocksTouched:      s.blocksTouched,
		BlocksWarm:         s.blocksWarm,
		CutVariables:       cut,
		Repairs:            s.repairs,
		RepairBlocksReused: s.repairReused,
	}
	if s.qidx != nil {
		cum.IndexMS = s.indexMS
	}
	cum.Retractions = s.retractions
	cum.DeadTriples = len(s.dead)
	s.pub.Lock()
	s.last = snap.Result
	s.cumStats = cum
	s.pub.Unlock()
	return s, nil
}

// diffInts returns all - sub for sorted ascending id slices (sub ⊆ all).
func diffInts(all, sub []int) []int {
	if len(sub) == 0 {
		return all
	}
	out := make([]int, 0, len(all)-len(sub))
	j := 0
	for _, id := range all {
		for j < len(sub) && sub[j] < id {
			j++
		}
		if j < len(sub) && sub[j] == id {
			continue
		}
		out = append(out, id)
	}
	return out
}
