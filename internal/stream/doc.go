// Package stream is the incremental serving subsystem: it keeps a JOCL
// system alive across triple batches arriving over time, instead of
// rebuilding and re-solving the whole pipeline per batch the way the
// one-shot examples do.
//
// The design follows the factor graph's decomposition into partition
// blocks (factorgraph.Partition — exact connected components by
// default, hub-cut blocks under Core.Segment.Enable, realizing the
// graph-segmentation idea of Jo et al. in shared memory). A batch of
// triples touches a bounded set of phrases, and therefore a bounded
// set of blocks; everything else is untouched, and its posteriors are
// still valid. On hub-fused graphs, where popular relation phrases
// couple thousands of triples into one giant component, the hub-cut
// partition is what restores that locality: the hubs are cut out of
// the blocks and served by frozen-boundary outer rounds instead. A
// Session therefore maintains three kinds of state:
//
//   - the epoch resources: IDF tables, embeddings, paraphrase DB, AMIE
//     rules, and the KBP classifier, frozen at the last refresh so that
//     signal values for existing phrases do not drift on every append
//     (okb.Store.Append(freezeIDF), signals.Resources.Extend);
//   - the construction cache (core.SimCache), so rebuilding the factor
//     graph after a batch re-evaluates signals only for new pairs;
//   - the warm state (factorgraph.WarmState), messages keyed by factor
//     identity, which lets core.RunIncremental serve unchanged
//     components verbatim and re-run BP only on dirty ones, warm-started,
//     on a bounded worker pool. The warm state also carries the
//     persistent partition identity (factorgraph.PartitionMemory): each
//     rebuild repairs the previous build's hub cut — re-running
//     selection only inside blocks whose degree profile changed — so
//     block identities, and with them the warm messages and boundary
//     baselines, survive the rebuild.
//
// Periodic epoch refreshes (Config.RefreshEvery, or an explicit
// Refresh call) re-derive the frozen statistics over everything seen so
// far; the following inference pass is a full re-solve, exactly as if
// the accumulated triples had arrived in one batch.
//
// Session is consumed through the public jocl.Session wrapper; the
// jocl-serve command exposes it over HTTP. docs/ARCHITECTURE.md walks
// the whole ingest lifecycle.
package stream
