package stream

import (
	"reflect"
	"testing"

	"repro/internal/ckb"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/embedding"
	"repro/internal/okb"
	"repro/internal/ppdb"
)

// microWorld builds a tiny CKB of token-disjoint entities/relations, so
// every triple over one entity family stays in its own connected
// component of the factor graph.
func microWorld(t *testing.T) *ckb.Store {
	t.Helper()
	store, err := ckb.NewStore(
		[]ckb.Entity{
			{ID: "e1", Name: "Alphacorp", Aliases: []string{"alphacorp"}},
			{ID: "e2", Name: "Betalabs", Aliases: []string{"betalabs"}},
			{ID: "e3", Name: "Gammaworks", Aliases: []string{"gammaworks"}},
			{ID: "e4", Name: "Deltasoft", Aliases: []string{"deltasoft"}},
			{ID: "e5", Name: "Epsilonics", Aliases: []string{"epsilonics"}},
			{ID: "e6", Name: "Zetafoundry", Aliases: []string{"zetafoundry"}},
		},
		[]ckb.Relation{
			{ID: "r1", Name: "acquire", Aliases: []string{"acquire"}},
			{ID: "r2", Name: "hire", Aliases: []string{"hire"}},
			{ID: "r3", Name: "sue", Aliases: []string{"sue"}},
		},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func microSession(t *testing.T, cfg Config) *Session {
	t.Helper()
	emb := embedding.Train(nil, embedding.Config{Dim: 8, Seed: 1})
	return New(microWorld(t), emb, ppdb.NewBuilder().Build(), cfg)
}

func TestIngestReRunsOnlyTouchedComponents(t *testing.T) {
	sess := microSession(t, Config{Core: core.DefaultConfig()})

	first, err := sess.Ingest([]okb.Triple{
		{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"},
		{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"},
		{Subj: "epsilonics", Pred: "sue", Obj: "zetafoundry"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Refreshed {
		t.Errorf("first batch must build the epoch")
	}
	if first.Components < 3 {
		t.Fatalf("expected >= 3 disjoint components, got %d", first.Components)
	}
	if first.DirtyComponents != first.Components {
		t.Errorf("first batch must run everything: %+v", first)
	}

	// The second batch repeats the alphacorp assertion: it touches only
	// that triple's component (one new fact-inclusion factor), so of the
	// n components exactly the touched k=1 re-run BP.
	second, err := sess.Ingest([]okb.Triple{
		{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.Refreshed {
		t.Fatalf("second batch must stay within the epoch")
	}
	if second.DirtyComponents != 1 {
		t.Errorf("batch touching 1 of %d components re-ran %d", second.Components, second.DirtyComponents)
	}
	if second.CleanComponents != second.Components-1 {
		t.Errorf("expected %d clean components, got %d", second.Components-1, second.CleanComponents)
	}
	if second.SweepsTotal == 0 {
		t.Errorf("the touched component must actually sweep")
	}

	// A batch with an entirely new entity family dirties only the new
	// component it creates.
	third, err := sess.Ingest([]okb.Triple{
		{Subj: "omegaventures", Pred: "acquire", Obj: "alphacorp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if third.DirtyComponents >= third.Components {
		t.Errorf("third batch dirtied everything: %+v", third)
	}
}

func TestIncrementalMatchesColdResolveOnSameEpoch(t *testing.T) {
	cfg := Config{Core: core.DefaultConfig()}
	sess := microSession(t, cfg)
	batches := [][]okb.Triple{
		{
			{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"},
			{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"},
		},
		{
			{Subj: "epsilonics", Pred: "sue", Obj: "zetafoundry"},
			{Subj: "alphacorp", Pred: "acquire", Obj: "deltasoft"},
		},
		{
			{Subj: "alpha corp", Pred: "acquire", Obj: "betalabs"},
		},
	}
	for _, b := range batches {
		if _, err := sess.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	got := sess.Snapshot()

	// Cold comparator: solve the same epoch's resources from scratch,
	// every component dirty. Incremental serving must be exact — not an
	// approximation of — this re-solve.
	cold, err := core.NewSystem(sess.res, cfg.Core)
	if err != nil {
		t.Fatal(err)
	}
	want, _, st := cold.RunIncremental(nil, 4)
	if st.Dirty != st.Components {
		t.Fatalf("comparator must run cold: %+v", st)
	}
	if !reflect.DeepEqual(got.NPGroups, want.NPGroups) || !reflect.DeepEqual(got.RPGroups, want.RPGroups) {
		t.Errorf("incremental groups diverge from cold re-solve")
	}
	if !reflect.DeepEqual(got.NPLinks, want.NPLinks) || !reflect.DeepEqual(got.RPLinks, want.RPLinks) {
		t.Errorf("incremental links diverge from cold re-solve")
	}
}

func TestRefreshForcesEpochRebuild(t *testing.T) {
	sess := microSession(t, Config{Core: core.DefaultConfig()})
	if _, err := sess.Ingest([]okb.Triple{{Subj: "alphacorp", Pred: "acquire", Obj: "betalabs"}}); err != nil {
		t.Fatal(err)
	}
	sess.Refresh()
	st, err := sess.Ingest([]okb.Triple{{Subj: "gammaworks", Pred: "hire", Obj: "deltasoft"}})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Refreshed || st.DirtyComponents != st.Components {
		t.Errorf("refresh must force a full re-solve: %+v", st)
	}
	if sess.Stats().Refreshes != 2 {
		t.Errorf("refresh count = %d, want 2", sess.Stats().Refreshes)
	}
}

func TestRefreshEveryTriggersAutomatically(t *testing.T) {
	sess := microSession(t, Config{Core: core.DefaultConfig(), RefreshEvery: 2})
	names := [][2]string{
		{"alphacorp", "betalabs"},
		{"gammaworks", "deltasoft"},
		{"epsilonics", "zetafoundry"},
		{"alphacorp", "deltasoft"},
	}
	var refreshes []bool
	for _, n := range names {
		st, err := sess.Ingest([]okb.Triple{{Subj: n[0], Pred: "acquire", Obj: n[1]}})
		if err != nil {
			t.Fatal(err)
		}
		refreshes = append(refreshes, st.Refreshed)
	}
	// RefreshEvery=2 means every second batch re-derives the epoch:
	// batches 1 (first build), 3, 5, ...
	want := []bool{true, false, true, false}
	if !reflect.DeepEqual(refreshes, want) {
		t.Errorf("refresh pattern = %v, want %v", refreshes, want)
	}
}

func TestSessionOnGeneratedBenchmark(t *testing.T) {
	// End-to-end smoke over a realistic generated dataset. Note the
	// generated graphs fuse into one giant component (popular relation
	// phrases are hubs: every triple's fact-inclusion factor couples
	// into its predicate's linking variable), so component reuse is nil
	// here and the streaming win comes from the construction cache,
	// pinned epoch resources, and warm-started messages; the
	// dirty-component machinery is exercised by the micro-world tests
	// above.
	ds, err := datasets.Generate(datasets.ReVerb45K(0.01))
	if err != nil {
		t.Fatal(err)
	}
	sess := New(ds.CKB, ds.Emb, ds.PPDB, Config{Core: core.DefaultConfig()})
	triples := ds.OKB.Triples()
	n := len(triples)
	cut1, cut2 := n/2, 3*n/4
	chunks := [][]okb.Triple{triples[:cut1], triples[cut1:cut2], triples[cut2:]}
	var stats []IngestStats
	for _, c := range chunks {
		st, err := sess.Ingest(c)
		if err != nil {
			t.Fatal(err)
		}
		stats = append(stats, st)
	}
	if got := sess.Stats().TotalTriples; got != n {
		t.Fatalf("session holds %d triples, want %d", got, n)
	}
	res := sess.Snapshot()
	if res == nil || len(res.NPGroups) == 0 || len(res.NPLinks) == 0 {
		t.Fatalf("empty snapshot after streaming the benchmark")
	}
	for _, st := range stats[1:] {
		if st.Refreshed {
			t.Errorf("later batch left the epoch: %+v", st)
		}
		if st.WarmFactors == 0 {
			t.Errorf("later batch transplanted no messages: %+v", st)
		}
	}
	if sess.Stats().CacheEntries == 0 {
		t.Errorf("construction cache unused across rebuilds")
	}
}

func TestSegmentedSessionReusesBlocksOnHubFusedWorkload(t *testing.T) {
	// The same generated workload as above, but with hub-cut
	// segmentation: the fused graph shatters into blocks and later
	// batches must serve a substantial share of them warm — the
	// locality the no-cut path cannot provide here.
	ds, err := datasets.Generate(datasets.ReVerb45K(0.01))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Segment.Enable = true
	sess := New(ds.CKB, ds.Emb, ds.PPDB, Config{Core: cfg})
	triples := ds.OKB.Triples()
	n := len(triples)
	chunks := [][]okb.Triple{triples[:n/2], triples[n/2 : 3*n/4], triples[3*n/4:]}
	var stats []IngestStats
	for _, c := range chunks {
		st, err := sess.Ingest(c)
		if err != nil {
			t.Fatal(err)
		}
		stats = append(stats, st)
	}
	last := stats[len(stats)-1]
	if last.CutVariables == 0 {
		t.Fatalf("hub-fused workload produced no cut variables: %+v", last)
	}
	if last.Components < 4 {
		t.Fatalf("segmentation left only %d blocks", last.Components)
	}
	if last.CleanComponents == 0 {
		t.Errorf("segmented ingest served no blocks warm: %+v", last)
	}
	cum := sess.Stats()
	if cum.BlocksWarm == 0 || cum.BlocksTouched == 0 || cum.CutVariables != last.CutVariables {
		t.Errorf("cumulative block counters not reported: %+v", cum)
	}
	if res := sess.Snapshot(); res == nil || len(res.NPGroups) == 0 {
		t.Fatalf("empty snapshot after segmented streaming")
	}
}

func TestSessionRepairsPartitionAcrossIngests(t *testing.T) {
	// After the first (cold) build, every rebuild must repair the
	// previous build's partition rather than re-derive it, reuse at
	// least one block verbatim, and report the repair through both the
	// per-ingest and cumulative stats.
	ds, err := datasets.Generate(datasets.ReVerb45K(0.01))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Segment.Enable = true
	sess := New(ds.CKB, ds.Emb, ds.PPDB, Config{Core: cfg})
	triples := ds.OKB.Triples()
	n := len(triples)
	chunks := [][]okb.Triple{triples[:n/2], triples[n/2 : 3*n/4], triples[3*n/4:]}
	var stats []IngestStats
	for _, c := range chunks {
		st, err := sess.Ingest(c)
		if err != nil {
			t.Fatal(err)
		}
		stats = append(stats, st)
	}
	if stats[0].PartitionRepaired {
		t.Fatalf("first ingest cannot repair a partition: %+v", stats[0])
	}
	for i, st := range stats[1:] {
		if !st.PartitionRepaired {
			t.Errorf("ingest %d did not repair the partition: %+v", i+2, st)
		}
		if st.RepairBlocksReused == 0 {
			t.Errorf("ingest %d reused no blocks during repair: %+v", i+2, st)
		}
	}
	cum := sess.Stats()
	if cum.Repairs != len(chunks)-1 {
		t.Errorf("cumulative repairs = %d, want %d", cum.Repairs, len(chunks)-1)
	}
	if cum.RepairBlocksReused == 0 {
		t.Errorf("cumulative repair reuse not reported: %+v", cum)
	}
}
