package text

import "strings"

// irregular maps common irregular inflected forms to their lemma. The
// table is small by design: it covers the verbs and nouns that actually
// occur in relation phrases and noun phrases of OIE extractions
// (be/have/do paradigms, frequent strong verbs, frequent irregular
// plurals). Everything else goes through the suffix stripper.
var irregular = map[string]string{
	// be / have / do paradigms.
	"is": "be", "are": "be", "was": "be", "were": "be", "been": "be",
	"being": "be", "am": "be",
	"has": "have", "had": "have", "having": "have",
	"does": "do", "did": "do", "done": "do", "doing": "do",
	// Frequent strong verbs seen in relation phrases.
	"went": "go", "gone": "go", "goes": "go",
	"made": "make", "makes": "make", "making": "make",
	"took": "take", "taken": "take", "takes": "take", "taking": "take",
	"gave": "give", "given": "give", "gives": "give", "giving": "give",
	"got": "get", "gotten": "get", "gets": "get", "getting": "get",
	"held": "hold", "holds": "hold", "holding": "hold",
	"led": "lead", "leads": "lead", "leading": "lead",
	"ran": "run", "runs": "run", "running": "run",
	"won": "win", "wins": "win", "winning": "win",
	"wrote": "write", "written": "write", "writes": "write", "writing": "write",
	"said": "say", "says": "say", "saying": "say",
	"met": "meet", "meets": "meet", "meeting": "meet",
	"found": "find", "finds": "find", "finding": "find",
	"founded": "found", "founds": "found", "founding": "found",
	"became": "become", "becomes": "become", "becoming": "become",
	"began": "begin", "begun": "begin", "begins": "begin", "beginning": "begin",
	"bought": "buy", "buys": "buy", "buying": "buy",
	"sold": "sell", "sells": "sell", "selling": "sell",
	"built": "build", "builds": "build", "building": "build",
	"taught": "teach", "teaches": "teach", "teaching": "teach",
	"left": "leave", "leaves": "leave", "leaving": "leave",
	"grew": "grow", "grown": "grow", "grows": "grow", "growing": "grow",
	"knew": "know", "known": "know", "knows": "know", "knowing": "know",
	"spoke": "speak", "spoken": "speak", "speaks": "speak", "speaking": "speak",
	// Frequent irregular plurals.
	"men": "man", "women": "woman", "children": "child",
	"people": "person", "feet": "foot", "teeth": "tooth",
	"mice": "mouse", "geese": "goose", "lives": "life",
	"countries": "country", "cities": "city", "companies": "company",
	"universities": "university", "parties": "party",
	"studies": "study", "bodies": "body", "families": "family",
}

// vowel reports whether b is an ASCII vowel.
func vowel(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// Stem reduces a lowercase token to an approximate lemma. It applies the
// irregular-form table first, then strips common inflectional suffixes
// (plural -s/-es/-ies, past -ed, progressive -ing, adverbial -ly) with
// guards that keep short stems intact. It is intentionally lighter than
// a full Porter stemmer: the goal is matching inflectional variants of
// the same word, not aggressive conflation.
func Stem(t string) string {
	if lemma, ok := irregular[t]; ok {
		return lemma
	}
	n := len(t)
	switch {
	case n > 4 && strings.HasSuffix(t, "ies"):
		return t[:n-3] + "y"
	case n > 4 && strings.HasSuffix(t, "sses"):
		return t[:n-2]
	case n > 3 && strings.HasSuffix(t, "es") &&
		(strings.HasSuffix(t, "ches") || strings.HasSuffix(t, "shes") ||
			strings.HasSuffix(t, "xes") || strings.HasSuffix(t, "zes")):
		return t[:n-2]
	case n > 3 && strings.HasSuffix(t, "s") && !strings.HasSuffix(t, "ss") &&
		!strings.HasSuffix(t, "us") && !strings.HasSuffix(t, "is"):
		return t[:n-1]
	case n > 4 && strings.HasSuffix(t, "ied"):
		return t[:n-3] + "y"
	case n > 4 && strings.HasSuffix(t, "ed"):
		stem := t[:n-2]
		if len(stem) > 2 && stem[len(stem)-1] == stem[len(stem)-2] && !vowel(stem[len(stem)-1]) {
			// Doubled final consonant ("stopped" -> "stop").
			if stem[len(stem)-1] != 'l' && stem[len(stem)-1] != 's' {
				stem = stem[:len(stem)-1]
			}
		} else if len(stem) > 2 && !vowel(stem[len(stem)-1]) && vowel(stem[len(stem)-2]) &&
			len(stem) >= 3 && !vowel(stem[len(stem)-3]) {
			// CVC ending usually dropped an e: "located" -> "locate".
			stem += "e"
		}
		return stem
	case n > 5 && strings.HasSuffix(t, "ing"):
		stem := t[:n-3]
		if len(stem) > 2 && stem[len(stem)-1] == stem[len(stem)-2] && !vowel(stem[len(stem)-1]) {
			if stem[len(stem)-1] != 'l' && stem[len(stem)-1] != 's' {
				stem = stem[:len(stem)-1]
			}
		} else if len(stem) > 2 && !vowel(stem[len(stem)-1]) && vowel(stem[len(stem)-2]) &&
			len(stem) >= 3 && !vowel(stem[len(stem)-3]) {
			// CVC pattern usually dropped an e: "making" handled by table,
			// "locating" -> "locate".
			stem += "e"
		}
		return stem
	case n > 4 && strings.HasSuffix(t, "ly"):
		return t[:n-2]
	}
	return t
}

// StemAll stems every token in ts, returning a new slice.
func StemAll(ts []string) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = Stem(t)
	}
	return out
}
