// Package text provides the lexical substrate shared by every JOCL
// component: tokenization, stopword filtering, a light inflectional
// stemmer, the morphological normalizer used both by the Morph Norm
// baseline and by AMIE preprocessing, and document-frequency tables
// backing the IDF token-overlap signal.
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lowercase word tokens. Tokens are maximal runs
// of letters and digits; everything else (punctuation, whitespace,
// hyphens) is a separator. The tokenizer is deliberately simple and
// deterministic: the same function is used when building the IDF table,
// the embedding corpus, and every similarity signal, so all components
// agree on token boundaries.
func Tokenize(s string) []string {
	var toks []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			toks = append(toks, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return toks
}

// TokenSet returns the set of distinct tokens in s.
func TokenSet(s string) map[string]bool {
	set := make(map[string]bool)
	for _, t := range Tokenize(s) {
		set[t] = true
	}
	return set
}

// stopwords is the closed-class word list stripped by Normalize and by
// ContentTokens. It covers determiners, auxiliaries, prepositions and
// conjunctions — the classes the paper's Morph Norm baseline removes.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true,
	"be": true, "is": true, "are": true, "was": true, "were": true,
	"been": true, "being": true, "am": true,
	"do": true, "does": true, "did": true, "done": true,
	"have": true, "has": true, "had": true, "having": true,
	"will": true, "would": true, "shall": true, "should": true,
	"can": true, "could": true, "may": true, "might": true, "must": true,
	"of": true, "in": true, "on": true, "at": true, "to": true,
	"for": true, "from": true, "by": true, "with": true, "about": true,
	"into": true, "onto": true, "over": true, "under": true,
	"and": true, "or": true, "but": true, "nor": true,
	"as": true, "if": true, "than": true, "then": true,
	"this": true, "that": true, "these": true, "those": true,
	"it": true, "its": true, "he": true, "she": true, "they": true,
	"his": true, "her": true, "their": true,
	"not": true, "no": true, "so": true, "such": true,
	"there": true, "here": true, "up": true, "out": true, "off": true,
	"very": true, "also": true, "just": true, "only": true,
}

// IsStopword reports whether the lowercase token t is a stopword.
func IsStopword(t string) bool { return stopwords[t] }

// ContentTokens tokenizes s and drops stopwords. If every token is a
// stopword the full token list is returned instead, so short function-
// word-only phrases ("be in") still normalize to something non-empty.
func ContentTokens(s string) []string {
	all := Tokenize(s)
	var content []string
	for _, t := range all {
		if !stopwords[t] {
			content = append(content, t)
		}
	}
	if len(content) == 0 {
		return all
	}
	return content
}
