package text

import "strings"

// Normalize applies the morphological normalization the paper's Morph
// Norm baseline (Fader et al. 2011) performs on phrases: lowercase,
// tokenize, drop auxiliaries/determiners/other stopwords, and stem each
// remaining token (removing tense and pluralization). The result is a
// canonical space-joined key; two phrases with equal keys are treated as
// morphological variants of each other.
//
// The same normalization is applied to relation phrases before AMIE rule
// mining, exactly as the paper describes ("We take morphological
// normalized OIE triples as the input of AMIE").
func Normalize(phrase string) string {
	toks := ContentTokens(phrase)
	stemmed := StemAll(toks)
	return strings.Join(stemmed, " ")
}

// NormalizeTokens returns the normalized token list of phrase (stemmed
// content tokens), for callers that need tokens rather than a joined key.
func NormalizeTokens(phrase string) []string {
	return StemAll(ContentTokens(phrase))
}

// EqualNormalized reports whether two phrases share a normalized form.
func EqualNormalized(a, b string) bool {
	return Normalize(a) == Normalize(b)
}
