package text

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"University of Maryland", []string{"university", "of", "maryland"}},
		{"be-a-member-of", []string{"be", "a", "member", "of"}},
		{"  spaced   out  ", []string{"spaced", "out"}},
		{"U21", []string{"u21"}},
		{"", nil},
		{"...!!!", nil},
		{"O'Brien's", []string{"o", "brien", "s"}},
		{"AT&T 2018", []string{"at", "t", "2018"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeLowercases(t *testing.T) {
	for _, tok := range Tokenize("MiXeD CaSe") {
		if tok != strings.ToLower(tok) {
			t.Errorf("token %q not lowercase", tok)
		}
	}
}

func TestTokenSet(t *testing.T) {
	set := TokenSet("the cat and the hat")
	if len(set) != 4 {
		t.Fatalf("want 4 distinct tokens, got %d: %v", len(set), set)
	}
	for _, w := range []string{"the", "cat", "and", "hat"} {
		if !set[w] {
			t.Errorf("missing token %q", w)
		}
	}
}

func TestStopwords(t *testing.T) {
	for _, w := range []string{"the", "of", "is", "was", "be", "and"} {
		if !IsStopword(w) {
			t.Errorf("%q should be a stopword", w)
		}
	}
	for _, w := range []string{"university", "maryland", "member", "capital"} {
		if IsStopword(w) {
			t.Errorf("%q should not be a stopword", w)
		}
	}
}

func TestContentTokens(t *testing.T) {
	got := ContentTokens("be a member of")
	if !reflect.DeepEqual(got, []string{"member"}) {
		t.Errorf("ContentTokens = %v, want [member]", got)
	}
	// Phrases made only of stopwords keep their raw tokens.
	got = ContentTokens("is in")
	if len(got) == 0 {
		t.Error("all-stopword phrase must not normalize to empty")
	}
}

func TestStemRegular(t *testing.T) {
	cases := map[string]string{
		"members":      "member",
		"cities":       "city",
		"churches":     "church",
		"boxes":        "box",
		"located":      "locate",
		"locating":     "locate",
		"stopped":      "stop",
		"studied":      "study",
		"quickly":      "quick",
		"capital":      "capital",
		"universities": "university",
		"glasses":      "glass",
		"bus":          "bus",
		"analysis":     "analysis",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemIrregular(t *testing.T) {
	cases := map[string]string{
		"was": "be", "were": "be", "is": "be",
		"founded": "found", "became": "become",
		"children": "child", "companies": "company",
		"wrote": "write", "held": "hold",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemIdempotentOnShortWords(t *testing.T) {
	for _, w := range []string{"a", "as", "us", "go", "it", "ed"} {
		if got := Stem(w); got == "" {
			t.Errorf("Stem(%q) produced empty string", w)
		}
	}
}

func TestNormalizeMergesVariants(t *testing.T) {
	pairs := [][2]string{
		{"be a member of", "members"},
		{"is the capital of", "capital"},
		{"was located in", "locate"},
		{"the United States", "united state"},
	}
	for _, p := range pairs {
		if Normalize(p[0]) != Normalize(p[1]) {
			t.Errorf("Normalize(%q)=%q != Normalize(%q)=%q",
				p[0], Normalize(p[0]), p[1], Normalize(p[1]))
		}
	}
}

func TestNormalizeDistinguishes(t *testing.T) {
	if Normalize("capital of france") == Normalize("president of france") {
		t.Error("distinct relations must not collapse")
	}
	if !EqualNormalized("is a member of", "be a member of") {
		t.Error("tense variants should be equal after normalization")
	}
}

func TestIDFOverlapIdentity(t *testing.T) {
	tbl := NewIDFTable([]string{"university of maryland", "university of virginia"})
	if got := tbl.Overlap("university of maryland", "university of maryland"); math.Abs(got-1) > 1e-12 {
		t.Errorf("self overlap = %v, want 1", got)
	}
}

func TestIDFOverlapRareWordDominates(t *testing.T) {
	// "university" and "of" are frequent; "buffett" is rare.
	var phrases []string
	for i := 0; i < 50; i++ {
		phrases = append(phrases, "university of somewhere")
	}
	phrases = append(phrases, "warren buffett", "buffett")
	tbl := NewIDFTable(phrases)

	rare := tbl.Overlap("warren buffett", "buffett")
	freq := tbl.Overlap("university of maryland", "university of virginia")
	if rare <= freq {
		t.Errorf("sharing rare word (%v) should outscore sharing frequent words (%v)", rare, freq)
	}
}

func TestIDFOverlapDisjoint(t *testing.T) {
	tbl := NewIDFTable([]string{"alpha beta", "gamma delta"})
	if got := tbl.Overlap("alpha beta", "gamma delta"); got != 0 {
		t.Errorf("disjoint overlap = %v, want 0", got)
	}
}

func TestIDFOverlapEmpty(t *testing.T) {
	tbl := NewIDFTable(nil)
	if got := tbl.Overlap("", "x"); got != 0 {
		t.Errorf("empty phrase overlap = %v, want 0", got)
	}
}

func TestIDFOverlapProperties(t *testing.T) {
	tbl := NewIDFTable([]string{"a b c", "c d e", "e f g", "university of maryland"})
	f := func(a, b string) bool {
		s := tbl.Overlap(a, b)
		if s < 0 || s > 1 {
			return false
		}
		// Symmetry.
		return math.Abs(s-tbl.Overlap(b, a)) < 1e-12
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestIDFTableAccounting(t *testing.T) {
	tbl := NewIDFTable([]string{"a a b", "b c"})
	if tbl.Freq("a") != 2 || tbl.Freq("b") != 2 || tbl.Freq("c") != 1 {
		t.Errorf("frequencies wrong: a=%d b=%d c=%d", tbl.Freq("a"), tbl.Freq("b"), tbl.Freq("c"))
	}
	if tbl.TotalTokens() != 5 {
		t.Errorf("TotalTokens = %d, want 5", tbl.TotalTokens())
	}
}
