package text

import "math"

// IDFTable holds word frequencies over a phrase collection and computes
// the IDF token-overlap similarity of Galárraga et al. (2014), which the
// paper adopts as its primary NP/RP canonicalization signal and as the
// blocking function for generating canonicalization pair variables.
type IDFTable struct {
	freq  map[string]int
	total int
}

// NewIDFTable builds a frequency table from the words of all given
// phrases. f(x) is the number of occurrences of word x across the whole
// collection (token occurrences, not document frequency), matching the
// paper's definition "f(x) is the frequency of the word x in the
// collection of all words that appear in the NPs of the OIE triples".
func NewIDFTable(phrases []string) *IDFTable {
	t := &IDFTable{freq: make(map[string]int)}
	for _, p := range phrases {
		t.Add(p)
	}
	return t
}

// Add incorporates the words of one phrase into the table.
func (t *IDFTable) Add(phrase string) {
	for _, w := range Tokenize(phrase) {
		t.freq[w]++
		t.total++
	}
}

// Freq returns the collection frequency of word w.
func (t *IDFTable) Freq(w string) int { return t.freq[w] }

// TotalTokens returns the total number of token occurrences added.
func (t *IDFTable) TotalTokens() int { return t.total }

// weight is the IDF weight log(1+f(x))^-1 from the paper. Unseen words
// get f(x)=0 and thus weight 1/log(2) — the maximum, as befits maximally
// informative (rare) words.
func (t *IDFTable) weight(w string) float64 {
	return 1.0 / math.Log(2.0+float64(t.freq[w]))
}

// Overlap computes Sim_idf(a, b): the IDF-weighted Jaccard overlap
//
//	sum_{x in w(a) ∩ w(b)} log(1+f(x))^-1
//	------------------------------------
//	sum_{x in w(a) ∪ w(b)} log(1+f(x))^-1
//
// Identical phrases score 1; phrases sharing only frequent words score
// near 0. Result is in [0, 1]. Two empty phrases score 0.
//
// Accumulation follows token encounter order, not map order: float
// addition is non-associative, and downstream the streaming layer
// fingerprints factor potentials to detect unchanged subgraphs, so the
// same phrase pair must score bit-identically on every call. This is a
// hot path (every candidate pair during blocking), so it works on the
// token slices directly — phrases are a handful of words, for which
// linear scans beat per-call maps.
func (t *IDFTable) Overlap(a, b string) float64 {
	ta := dedupTokens(Tokenize(a))
	tb := dedupTokens(Tokenize(b))
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	var inter, union float64
	for _, w := range ta {
		wt := t.weight(w)
		union += wt
		if containsToken(tb, w) {
			inter += wt
		}
	}
	for _, w := range tb {
		if !containsToken(ta, w) {
			union += t.weight(w)
		}
	}
	if union == 0 {
		return 0
	}
	return inter / union
}

// dedupTokens removes duplicates in place, preserving encounter order.
func dedupTokens(ts []string) []string {
	out := ts[:0]
	for _, w := range ts {
		if !containsToken(out, w) {
			out = append(out, w)
		}
	}
	return out
}

func containsToken(ts []string, w string) bool {
	for _, x := range ts {
		if x == w {
			return true
		}
	}
	return false
}
