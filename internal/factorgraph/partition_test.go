package factorgraph

import (
	"math"
	"math/rand"
	"testing"
)

// hubbyGraph builds a seeded hub-heavy graph: one high-degree hub
// variable coupled by a pairwise factor into each of n otherwise
// disconnected loopy triangles. Cutting the hub restores the islands;
// keeping it fuses everything into one component.
func hubbyGraph(t *testing.T, n int, seed int64) (*Graph, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New()
	hub := g.AddVariable("hub", 2)
	rnd := func() []float64 {
		tb := make([]float64, 4)
		for i := range tb {
			tb[i] = 0.2 + rng.Float64()
		}
		return tb
	}
	for island := 0; island < n; island++ {
		a := g.AddVariable("a", 2)
		b := g.AddVariable("b", 2)
		c := g.AddVariable("c", 2)
		tableFactor(g, "ab", []int{a, b}, rnd())
		tableFactor(g, "bc", []int{b, c}, rnd())
		tableFactor(g, "ca", []int{c, a}, rnd())
		tableFactor(g, "ha", []int{hub, a}, rnd())
	}
	g.Finalize()
	return g, hub
}

func TestNoCutPartitionMatchesWholeGraphRunBitwise(t *testing.T) {
	g := loopyIslands(t, 6, 11)
	// Unreachable tolerance pins the sweep count, so the whole-graph run
	// and every per-block scoped run perform identical sweeps and their
	// messages must agree bit for bit.
	opt := RunOptions{MaxSweeps: 8, Tolerance: 1e-300}

	whole := NewBP(g)
	whole.Run(opt)

	p := NewComponentPartition(g)
	if len(p.Cut) != 0 {
		t.Fatalf("component partition has %d cut variables", len(p.Cut))
	}
	beliefs, pr := ParallelBPPartition(g, p, opt, 4)
	if pr.OuterRounds != 1 {
		t.Fatalf("no-cut partition ran %d outer rounds", pr.OuterRounds)
	}
	for vid := 0; vid < g.NumVariables(); vid++ {
		want := whole.VarBelief(vid)
		for s := range want {
			if beliefs[vid][s] != want[s] {
				t.Fatalf("var %d state %d: partition %v != whole-graph %v (must be bitwise identical)",
					vid, s, beliefs[vid], want)
			}
		}
	}
}

func TestHubCutStaysWithinBoundaryTolerance(t *testing.T) {
	g, hub := hubbyGraph(t, 24, 5)
	opt := RunOptions{MaxSweeps: 80, Tolerance: 1e-9}

	exact := NewBP(g)
	if !exact.Run(opt) {
		t.Fatalf("exact whole-graph run did not converge")
	}

	tol := 0.01
	p := NewHubCutPartition(g, PartitionOptions{
		MinHubDegree:      4, // the hub's degree is 24; islands are degree <= 3
		MaxOuterRounds:    8,
		BoundaryTolerance: tol,
	})
	if len(p.Cut) != 1 || p.Cut[0] != hub {
		t.Fatalf("expected exactly the hub cut, got %v", p.Cut)
	}
	if len(p.Blocks) < 24 {
		t.Fatalf("hub cut left only %d blocks", len(p.Blocks))
	}
	beliefs, pr := ParallelBPPartition(g, p, opt, 4)
	if !pr.Converged {
		t.Fatalf("frozen-boundary outer loop did not converge (residual %g)", pr.BoundaryResidual)
	}
	// The cut bounds the error: frozen-boundary beliefs must stay within
	// a small multiple of the boundary tolerance of the exact run.
	worst := 0.0
	for vid := 0; vid < g.NumVariables(); vid++ {
		want := exact.VarBelief(vid)
		for s := range want {
			if d := math.Abs(beliefs[vid][s] - want[s]); d > worst {
				worst = d
			}
		}
	}
	if worst > 5*tol {
		t.Fatalf("hub-cut beliefs drift %g from exact, tolerance %g", worst, tol)
	}
}

func TestHubCutRefinementCapsBlockSize(t *testing.T) {
	// A long chain of pairwise-coupled variables has no degree hubs at
	// all (every degree <= 2), so only the size-cap refinement stage can
	// split it.
	g := New()
	rng := rand.New(rand.NewSource(9))
	prev := g.AddVariable("v", 2)
	for i := 1; i < 120; i++ {
		cur := g.AddVariable("v", 2)
		tb := make([]float64, 4)
		for k := range tb {
			tb[k] = 0.2 + rng.Float64()
		}
		tableFactor(g, "e", []int{prev, cur}, tb)
		prev = cur
	}
	g.Finalize()

	p := NewHubCutPartition(g, PartitionOptions{MaxBlockVars: 30})
	if len(p.Cut) == 0 {
		t.Fatalf("refinement cut nothing on an oversized chain")
	}
	for ci, block := range p.Blocks {
		if len(block) > 30 {
			t.Fatalf("block %d has %d vars, cap 30", ci, len(block))
		}
	}
}

func TestWarmStateSurvivesRepartitioningRebuild(t *testing.T) {
	// Build the same hub-heavy graph twice with different variable
	// insertion order; run the first with a hub-cut partition, export,
	// import into the second, and re-partition. Transplanted messages
	// must reproduce identical beliefs and identical boundary baselines
	// without any further sweeps.
	build := func(reversed bool) *Graph {
		g := New()
		names := []string{"p", "q", "hub", "r", "s"}
		if reversed {
			names = []string{"s", "r", "hub", "q", "p"}
		}
		ids := map[string]int{}
		for _, n := range names {
			ids[n] = namedVar(g, n, 2)
		}
		tableFactor(g, "pq", []int{ids["p"], ids["q"]}, []float64{0.9, 0.2, 0.4, 0.8})
		tableFactor(g, "rs", []int{ids["r"], ids["s"]}, []float64{0.7, 0.3, 0.1, 0.6})
		tableFactor(g, "hp", []int{ids["hub"], ids["p"]}, []float64{0.5, 0.8, 0.3, 0.9})
		tableFactor(g, "hq", []int{ids["hub"], ids["q"]}, []float64{0.2, 0.6, 0.7, 0.4})
		tableFactor(g, "hr", []int{ids["hub"], ids["r"]}, []float64{0.8, 0.1, 0.5, 0.5})
		tableFactor(g, "hs", []int{ids["hub"], ids["s"]}, []float64{0.3, 0.9, 0.6, 0.2})
		g.Finalize()
		return g
	}
	popt := PartitionOptions{MinHubDegree: 3, MaxOuterRounds: 6, BoundaryTolerance: 1e-6}
	opt := RunOptions{MaxSweeps: 60, Tolerance: 1e-10}

	g1 := build(false)
	p1 := NewHubCutPartition(g1, popt)
	if len(p1.Cut) != 1 {
		t.Fatalf("expected one cut variable, got %v", p1.Cut)
	}
	bp1 := NewBP(g1)
	RunPartition(bp1, p1, opt, 2, nil)
	sigs1 := g1.Signatures()
	warm := bp1.Export(sigs1)
	warm.Boundary = p1.BoundaryBeliefs(bp1)

	g2 := build(true)
	p2 := NewHubCutPartition(g2, popt)
	bp2 := NewBP(g2)
	sigs2 := g2.Signatures()
	if n := bp2.Import(warm, sigs2); n != g2.NumFactors() {
		t.Fatalf("imported %d of %d factors", n, g2.NumFactors())
	}
	for name := range map[string]bool{"p": true, "q": true, "hub": true, "r": true, "s": true} {
		var v1, v2 int
		for vid := 0; vid < g1.NumVariables(); vid++ {
			if g1.Variable(vid).Name == name {
				v1 = vid
			}
		}
		for vid := 0; vid < g2.NumVariables(); vid++ {
			if g2.Variable(vid).Name == name {
				v2 = vid
			}
		}
		b1, b2 := bp1.VarBelief(v1), bp2.VarBelief(v2)
		for s := range b1 {
			if b1[s] != b2[s] {
				t.Fatalf("var %s: transplanted belief %v != original %v", name, b2, b1)
			}
		}
	}
	// Boundary baselines must match across the rebuild: the serving
	// layer serves a block warm only while the imported cut beliefs stay
	// within tolerance of the beliefs the block last ran against.
	cur := p2.BoundaryBeliefs(bp2)
	if len(cur) != len(warm.Boundary) {
		t.Fatalf("baseline count changed across rebuild: %d != %d", len(cur), len(warm.Boundary))
	}
	for key, base := range warm.Boundary {
		if !p2.WithinBoundaryTolerance(base, cur[key]) {
			t.Errorf("block %d: boundary beliefs drifted across identical rebuild", key)
		}
		for sym, b := range base {
			for s := range b {
				if cur[key][sym][s] != b[s] {
					t.Errorf("block %d cut var sym %d: belief not bitwise identical across rebuild", key, sym)
				}
			}
		}
	}
}

func TestRunComponentsSingleBlockFastPathMatchesPool(t *testing.T) {
	g := loopyIslands(t, 3, 21)
	p := NewComponentPartition(g)
	opt := RunOptions{MaxSweeps: 12, Tolerance: 1e-300}

	pooled := NewBP(g)
	RunComponents(pooled, p, opt, 8, []int{1, 2})

	inline := NewBP(g)
	// One block at a time exercises the no-goroutine fast path.
	RunComponents(inline, p, opt, 8, []int{1})
	RunComponents(inline, p, opt, 8, []int{2})

	for _, ci := range []int{1, 2} {
		for _, vid := range p.Blocks[ci] {
			a, b := pooled.VarBelief(vid), inline.VarBelief(vid)
			for s := range a {
				if a[s] != b[s] {
					t.Fatalf("var %d: fast path %v != pooled %v", vid, b, a)
				}
			}
		}
	}
}
