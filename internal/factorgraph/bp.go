package factorgraph

import "math"

// Schedule prescribes the order in which loopy belief propagation
// updates messages within one sweep, mirroring the paper's Section 3.4
// working procedure: factor-to-variable messages are sent group by
// group in the listed order, then variable-to-factor messages group by
// group. A nil schedule means flooding (all factors, then all
// variables, in id order).
type Schedule struct {
	FactorGroups [][]int // ordered groups of factor ids
	VarGroups    [][]int // ordered groups of variable ids
}

// RunOptions configures an LBP run.
type RunOptions struct {
	MaxSweeps int     // maximum full sweeps (default 50)
	Damping   float64 // message damping in [0,1); 0 = none
	Tolerance float64 // convergence threshold on belief change (default 1e-6)
	Schedule  *Schedule
}

func (o *RunOptions) defaults() {
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 50
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-6
	}
}

// BP holds message state for loopy belief propagation over a finalized
// graph. Create with NewBP; reusable across runs (Reset re-initializes
// messages, Run iterates to convergence).
type BP struct {
	g *Graph
	// msgFV[f][i][s]: message from factor f to the i-th of its
	// variables, for state s. msgVF is the reverse direction.
	msgFV [][][]float64
	msgVF [][][]float64

	// varPos[f][i] caches, for factor f's i-th variable, that factor's
	// position within the variable's adjacency list (unused today but
	// kept symmetric); posInFactor[v] maps factor id -> position of v.
	posInFactor []map[int]int

	prevBelief [][]float64
	sweepsRun  int
}

// NewBP allocates message state for g, which must be finalized.
func NewBP(g *Graph) *BP {
	if !g.finalized {
		panic("factorgraph: NewBP before Finalize")
	}
	bp := &BP{g: g}
	bp.msgFV = make([][][]float64, len(g.factors))
	bp.msgVF = make([][][]float64, len(g.factors))
	for fi, f := range g.factors {
		bp.msgFV[fi] = make([][]float64, len(f.Vars))
		bp.msgVF[fi] = make([][]float64, len(f.Vars))
		for i, vid := range f.Vars {
			card := g.vars[vid].Card
			bp.msgFV[fi][i] = make([]float64, card)
			bp.msgVF[fi][i] = make([]float64, card)
		}
	}
	bp.posInFactor = make([]map[int]int, len(g.vars))
	for _, v := range g.vars {
		bp.posInFactor[v.id] = make(map[int]int, len(v.factors))
	}
	for _, f := range g.factors {
		for i, vid := range f.Vars {
			bp.posInFactor[vid][f.id] = i
		}
	}
	bp.prevBelief = make([][]float64, len(g.vars))
	for _, v := range g.vars {
		bp.prevBelief[v.id] = make([]float64, v.Card)
	}
	bp.Reset()
	return bp
}

// Reset re-initializes all messages to uniform (respecting clamps on
// the variable-to-factor side).
func (bp *BP) Reset() {
	for fi, f := range bp.g.factors {
		for i, vid := range f.Vars {
			card := bp.g.vars[vid].Card
			for s := 0; s < card; s++ {
				bp.msgFV[fi][i][s] = 1.0 / float64(card)
			}
			bp.setVFMessage(fi, i, vid)
		}
	}
	bp.sweepsRun = 0
}

// setVFMessage initializes/refreshes msgVF for a clamped or uniform
// start state.
func (bp *BP) setVFMessage(fi, i, vid int) {
	v := bp.g.vars[vid]
	msg := bp.msgVF[fi][i]
	if v.clamp >= 0 {
		for s := range msg {
			msg[s] = 0
		}
		msg[v.clamp] = 1
		return
	}
	for s := range msg {
		msg[s] = 1.0 / float64(len(msg))
	}
}

// Sweeps returns the number of sweeps the last Run performed.
func (bp *BP) Sweeps() int { return bp.sweepsRun }

// Run iterates scheduled message passing until beliefs change by less
// than opt.Tolerance or MaxSweeps is reached. It returns whether the
// run converged.
func (bp *BP) Run(opt RunOptions) bool {
	opt.defaults()
	sched := opt.Schedule
	if sched == nil {
		all := make([]int, len(bp.g.factors))
		for i := range all {
			all[i] = i
		}
		vs := make([]int, len(bp.g.vars))
		for i := range vs {
			vs[i] = i
		}
		sched = &Schedule{FactorGroups: [][]int{all}, VarGroups: [][]int{vs}}
	}
	bp.snapshotBeliefs()
	for sweep := 0; sweep < opt.MaxSweeps; sweep++ {
		bp.sweepsRun = sweep + 1
		for _, group := range sched.FactorGroups {
			for _, fid := range group {
				bp.updateFactorMessages(fid, opt.Damping)
			}
		}
		for _, group := range sched.VarGroups {
			for _, vid := range group {
				bp.updateVariableMessages(vid)
			}
		}
		if bp.beliefDelta() < opt.Tolerance {
			return true
		}
		bp.snapshotBeliefs()
	}
	return false
}

// updateFactorMessages recomputes the messages from factor fid to each
// of its variables: m_{a->i}(x_i) = sum over the factor's assignments
// consistent with x_i of pot * prod of incoming messages from the
// other variables.
func (bp *BP) updateFactorMessages(fid int, damping float64) {
	f := bp.g.factors[fid]
	n := len(f.Vars)
	states := make([]int, n)
	for i := range f.Vars {
		out := make([]float64, f.cards[i])
		for a := range f.pot {
			f.assignment(a, states)
			p := f.pot[a]
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				p *= bp.msgVF[fid][j][states[j]]
			}
			out[states[i]] += p
		}
		normalize(out)
		old := bp.msgFV[fid][i]
		if damping > 0 {
			for s := range out {
				out[s] = damping*old[s] + (1-damping)*out[s]
			}
			normalize(out)
		}
		copy(old, out)
	}
}

// updateVariableMessages recomputes the messages from variable vid to
// each adjacent factor: the product of messages from all other factors
// (times the clamp indicator when observed).
func (bp *BP) updateVariableMessages(vid int) {
	v := bp.g.vars[vid]
	for _, fid := range v.factors {
		i := bp.posInFactor[vid][fid]
		msg := bp.msgVF[fid][i]
		if v.clamp >= 0 {
			for s := range msg {
				msg[s] = 0
			}
			msg[v.clamp] = 1
			continue
		}
		for s := 0; s < v.Card; s++ {
			p := 1.0
			for _, ofid := range v.factors {
				if ofid == fid {
					continue
				}
				p *= bp.msgFV[ofid][bp.posInFactor[vid][ofid]][s]
			}
			msg[s] = p
		}
		normalize(msg)
	}
}

// VarBelief returns the (approximate) marginal distribution of a
// variable under the current messages.
func (bp *BP) VarBelief(vid int) []float64 {
	v := bp.g.vars[vid]
	b := make([]float64, v.Card)
	if v.clamp >= 0 {
		b[v.clamp] = 1
		return b
	}
	for s := 0; s < v.Card; s++ {
		p := 1.0
		for _, fid := range v.factors {
			p *= bp.msgFV[fid][bp.posInFactor[vid][fid]][s]
		}
		b[s] = p
	}
	normalize(b)
	return b
}

// FactorBelief returns the (approximate) joint distribution over a
// factor's assignments, indexed by the factor's assignment index. This
// is what the learning gradient integrates feature functions against.
func (bp *BP) FactorBelief(fid int) []float64 {
	f := bp.g.factors[fid]
	n := len(f.Vars)
	states := make([]int, n)
	b := make([]float64, len(f.pot))
	for a := range f.pot {
		f.assignment(a, states)
		p := f.pot[a]
		for j := 0; j < n; j++ {
			p *= bp.msgVF[fid][j][states[j]]
		}
		b[a] = p
	}
	normalize(b)
	return b
}

// Decode returns the max-marginal state of every variable.
func (bp *BP) Decode() []int {
	out := make([]int, len(bp.g.vars))
	for _, v := range bp.g.vars {
		b := bp.VarBelief(v.id)
		best, arg := -1.0, 0
		for s, p := range b {
			if p > best {
				best, arg = p, s
			}
		}
		out[v.id] = arg
	}
	return out
}

func (bp *BP) snapshotBeliefs() {
	for _, v := range bp.g.vars {
		copy(bp.prevBelief[v.id], bp.VarBelief(v.id))
	}
}

func (bp *BP) beliefDelta() float64 {
	max := 0.0
	for _, v := range bp.g.vars {
		b := bp.VarBelief(v.id)
		for s, p := range b {
			d := math.Abs(p - bp.prevBelief[v.id][s])
			if d > max {
				max = d
			}
		}
	}
	return max
}

// normalize scales a non-negative vector to sum 1; an all-zero vector
// (numerical underflow or contradictory clamps) becomes uniform so
// inference degrades gracefully instead of emitting NaNs.
func normalize(v []float64) {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		for i := range v {
			v[i] = 1.0 / float64(len(v))
		}
		return
	}
	for i := range v {
		v[i] /= sum
	}
}
