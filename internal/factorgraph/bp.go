package factorgraph

import "math"

// Schedule prescribes the order in which loopy belief propagation
// updates messages within one sweep, mirroring the paper's Section 3.4
// working procedure: factor-to-variable messages are sent group by
// group in the listed order, then variable-to-factor messages group by
// group. A nil schedule means flooding (all factors, then all
// variables, in id order).
type Schedule struct {
	FactorGroups [][]int // ordered groups of factor ids
	VarGroups    [][]int // ordered groups of variable ids
}

// RunOptions configures an LBP run.
type RunOptions struct {
	MaxSweeps int     // maximum full sweeps (default 50)
	Damping   float64 // message damping in [0,1); 0 = none
	Tolerance float64 // convergence threshold on belief change (default 1e-6)
	Schedule  *Schedule
}

func (o *RunOptions) defaults() {
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 50
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-6
	}
}

// Stack-scratch bounds for the message-update hot loops. Factors wider
// than stackArity variables or states beyond stackCard fall back to a
// heap buffer; every factor family the JOCL system builds (arity <= 3,
// card <= candidates+1) fits comfortably.
const (
	stackArity = 8
	stackCard  = 16
)

// BP holds message state for loopy belief propagation over a finalized
// graph. Create with NewBP; reusable across runs (Reset re-initializes
// messages, Run iterates to convergence).
//
// All message and belief state lives in one flat float64 slab indexed
// by the geometry Finalize computed (Factor.off/posOff, Graph.varOff),
// so a steady-state ingest that recycles slabs through a BufferPool
// performs O(1) buffer allocations per graph instead of O(factors).
type BP struct {
	g *Graph
	// slab = msgFV | msgVF | prevBelief. msgFV[msgBase(f,i)+s] is the
	// message from factor f to its i-th variable for state s; msgVF is
	// the reverse direction; prevBelief[varOff[v]+s] is the belief
	// snapshot convergence is measured against.
	slab       []float64
	msgFV      []float64
	msgVF      []float64
	prevBelief []float64

	// imported[f] records that factor f's messages were seeded from a
	// WarmState (Import matched its signature). Export uses it to
	// decide which factors' messages can be carried over by reference.
	imported []bool

	pool      *BufferPool
	sweepsRun int
}

// NewBP allocates message state for g, which must be finalized.
func NewBP(g *Graph) *BP { return NewBPWithPool(g, nil) }

// NewBPWithPool allocates message state for g, drawing the message slab
// from pool when non-nil. Call Release when done with the BP to return
// the slab; the exported WarmState never aliases it.
func NewBPWithPool(g *Graph, pool *BufferPool) *BP {
	if !g.finalized {
		panic("factorgraph: NewBP before Finalize")
	}
	need := 2*g.msgSlots + int(g.varOff[len(g.vars)])
	var slab []float64
	if pool != nil {
		slab = pool.get(need)
	} else {
		slab = make([]float64, need)
	}
	bp := &BP{g: g, slab: slab, pool: pool}
	bp.msgFV = slab[:g.msgSlots:g.msgSlots]
	bp.msgVF = slab[g.msgSlots : 2*g.msgSlots : 2*g.msgSlots]
	bp.prevBelief = slab[2*g.msgSlots:need:need]
	for i := range bp.prevBelief {
		bp.prevBelief[i] = 0
	}
	bp.imported = make([]bool, len(g.factors))
	bp.Reset()
	return bp
}

// Release returns the BP's slab to its pool (a no-op for unpooled BPs)
// and drops the buffers. The BP must not be used afterwards.
func (bp *BP) Release() {
	if bp.pool != nil && bp.slab != nil {
		bp.pool.put(bp.slab)
	}
	bp.slab, bp.msgFV, bp.msgVF, bp.prevBelief = nil, nil, nil, nil
}

// Reset re-initializes all messages to uniform (respecting clamps on
// the variable-to-factor side).
func (bp *BP) Reset() {
	for _, f := range bp.g.factors {
		for i, vid := range f.Vars {
			card := f.cards[i]
			base := msgBase(f, i)
			u := 1.0 / float64(card)
			for s := 0; s < card; s++ {
				bp.msgFV[base+s] = u
			}
			bp.setVFMessage(f, i, vid)
		}
	}
	for i := range bp.imported {
		bp.imported[i] = false
	}
	bp.sweepsRun = 0
}

// setVFMessage initializes/refreshes msgVF for a clamped or uniform
// start state.
func (bp *BP) setVFMessage(f *Factor, i, vid int) {
	v := bp.g.vars[vid]
	base := msgBase(f, i)
	card := f.cards[i]
	if v.clamp >= 0 {
		for s := 0; s < card; s++ {
			bp.msgVF[base+s] = 0
		}
		bp.msgVF[base+v.clamp] = 1
		return
	}
	u := 1.0 / float64(card)
	for s := 0; s < card; s++ {
		bp.msgVF[base+s] = u
	}
}

// Sweeps returns the number of sweeps the last Run performed.
func (bp *BP) Sweeps() int { return bp.sweepsRun }

// Run iterates scheduled message passing until beliefs change by less
// than opt.Tolerance or MaxSweeps is reached. It returns whether the
// run converged.
func (bp *BP) Run(opt RunOptions) bool {
	opt.defaults()
	sched := opt.Schedule
	if sched == nil {
		all := make([]int, len(bp.g.factors))
		for i := range all {
			all[i] = i
		}
		vs := make([]int, len(bp.g.vars))
		for i := range vs {
			vs[i] = i
		}
		sched = &Schedule{FactorGroups: [][]int{all}, VarGroups: [][]int{vs}}
	}
	bp.snapshotBeliefs()
	for sweep := 0; sweep < opt.MaxSweeps; sweep++ {
		bp.sweepsRun = sweep + 1
		for _, group := range sched.FactorGroups {
			for _, fid := range group {
				bp.updateFactorMessages(fid, opt.Damping)
			}
		}
		for _, group := range sched.VarGroups {
			for _, vid := range group {
				bp.updateVariableMessages(vid)
			}
		}
		if bp.beliefDelta() < opt.Tolerance {
			return true
		}
		bp.snapshotBeliefs()
	}
	return false
}

// updateFactorMessages recomputes the messages from factor fid to each
// of its variables: m_{a->i}(x_i) = sum over the factor's assignments
// consistent with x_i of pot * prod of incoming messages from the
// other variables. Safe to call concurrently for factors whose message
// blocks (and incoming variables' blocks) are disjoint — the partition
// runner relies on this.
func (bp *BP) updateFactorMessages(fid int, damping float64) {
	f := bp.g.factors[fid]
	n := len(f.Vars)
	var stStack [stackArity]int
	var outStack [stackCard]float64
	states := stStack[:n:n]
	if n > stackArity {
		states = make([]int, n)
	}
	for i := range f.Vars {
		card := f.cards[i]
		out := outStack[:card:card]
		if card > stackCard {
			out = make([]float64, card)
		}
		for s := range out {
			out[s] = 0
		}
		for s := range states {
			states[s] = 0
		}
		for a := range f.pot {
			p := f.pot[a]
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				p *= bp.msgVF[int(f.off+f.posOff[j])+states[j]]
			}
			out[states[i]] += p
			nextAssignment(states, f.cards)
		}
		normalize(out)
		base := msgBase(f, i)
		old := bp.msgFV[base : base+card]
		if damping > 0 {
			for s := range out {
				out[s] = damping*old[s] + (1-damping)*out[s]
			}
			normalize(out)
		}
		copy(old, out)
	}
}

// updateVariableMessages recomputes the messages from variable vid to
// each adjacent factor: the product of messages from all other factors
// (times the clamp indicator when observed).
func (bp *BP) updateVariableMessages(vid int) {
	v := bp.g.vars[vid]
	g := bp.g
	for ai, fid := range v.factors {
		f := g.factors[fid]
		base := int(f.off + f.posOff[v.pos[ai]])
		msg := bp.msgVF[base : base+v.Card]
		if v.clamp >= 0 {
			for s := range msg {
				msg[s] = 0
			}
			msg[v.clamp] = 1
			continue
		}
		for s := 0; s < v.Card; s++ {
			p := 1.0
			for aj, ofid := range v.factors {
				if ofid == fid {
					continue
				}
				of := g.factors[ofid]
				p *= bp.msgFV[int(of.off+of.posOff[v.pos[aj]])+s]
			}
			msg[s] = p
		}
		normalize(msg)
	}
}

// VarBelief returns the (approximate) marginal distribution of a
// variable under the current messages.
func (bp *BP) VarBelief(vid int) []float64 {
	return bp.varBeliefInto(vid, make([]float64, bp.g.vars[vid].Card))
}

// varBeliefInto computes the marginal of vid into b (len >= Card) and
// returns b[:Card]. The non-allocating core of VarBelief.
func (bp *BP) varBeliefInto(vid int, b []float64) []float64 {
	v := bp.g.vars[vid]
	b = b[:v.Card]
	if v.clamp >= 0 {
		for s := range b {
			b[s] = 0
		}
		b[v.clamp] = 1
		return b
	}
	g := bp.g
	for s := 0; s < v.Card; s++ {
		p := 1.0
		for ai, fid := range v.factors {
			f := g.factors[fid]
			p *= bp.msgFV[int(f.off+f.posOff[v.pos[ai]])+s]
		}
		b[s] = p
	}
	normalize(b)
	return b
}

// prevVar returns variable vid's block of the prevBelief snapshot.
func (bp *BP) prevVar(vid int) []float64 {
	return bp.prevBelief[bp.g.varOff[vid]:bp.g.varOff[vid+1]]
}

// FactorBelief returns the (approximate) joint distribution over a
// factor's assignments, indexed by the factor's assignment index. This
// is what the learning gradient integrates feature functions against.
func (bp *BP) FactorBelief(fid int) []float64 {
	f := bp.g.factors[fid]
	n := len(f.Vars)
	states := make([]int, n)
	b := make([]float64, len(f.pot))
	for a := range f.pot {
		p := f.pot[a]
		for j := 0; j < n; j++ {
			p *= bp.msgVF[int(f.off+f.posOff[j])+states[j]]
		}
		b[a] = p
		nextAssignment(states, f.cards)
	}
	normalize(b)
	return b
}

// Decode returns the max-marginal state of every variable.
func (bp *BP) Decode() []int {
	out := make([]int, len(bp.g.vars))
	var buf [stackCard]float64
	for _, v := range bp.g.vars {
		b := bp.varBeliefInto(v.id, beliefScratch(buf[:], v.Card))
		best, arg := -1.0, 0
		for s, p := range b {
			if p > best {
				best, arg = p, s
			}
		}
		out[v.id] = arg
	}
	return out
}

// beliefScratch returns a belief buffer of the given cardinality,
// preferring the caller's stack array.
func beliefScratch(stack []float64, card int) []float64 {
	if card <= len(stack) {
		return stack[:card]
	}
	return make([]float64, card)
}

func (bp *BP) snapshotBeliefs() {
	var buf [stackCard]float64
	for _, v := range bp.g.vars {
		b := bp.varBeliefInto(v.id, beliefScratch(buf[:], v.Card))
		copy(bp.prevVar(v.id), b)
	}
}

func (bp *BP) beliefDelta() float64 {
	max := 0.0
	var buf [stackCard]float64
	for _, v := range bp.g.vars {
		b := bp.varBeliefInto(v.id, beliefScratch(buf[:], v.Card))
		prev := bp.prevVar(v.id)
		for s, p := range b {
			d := math.Abs(p - prev[s])
			if d > max {
				max = d
			}
		}
	}
	return max
}

// normalize scales a non-negative vector to sum 1; an all-zero vector
// (numerical underflow or contradictory clamps) becomes uniform so
// inference degrades gracefully instead of emitting NaNs.
func normalize(v []float64) {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		for i := range v {
			v[i] = 1.0 / float64(len(v))
		}
		return
	}
	for i := range v {
		v[i] /= sum
	}
}
