package factorgraph

import (
	"math/rand"
	"testing"
)

// loopyIslands builds a graph of n disconnected triangles (loopy
// components, so BP needs several sweeps) with random potentials.
func loopyIslands(t *testing.T, n int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New()
	for island := 0; island < n; island++ {
		a := g.AddVariable("a", 2)
		b := g.AddVariable("b", 2)
		c := g.AddVariable("c", 2)
		rnd := func() []float64 {
			tb := make([]float64, 4)
			for i := range tb {
				tb[i] = 0.2 + rng.Float64()
			}
			return tb
		}
		tableFactor(g, "ab", []int{a, b}, rnd())
		tableFactor(g, "bc", []int{b, c}, rnd())
		tableFactor(g, "ca", []int{c, a}, rnd())
	}
	g.Finalize()
	return g
}

func TestRunComponentsParallelBitwiseEqualsSerial(t *testing.T) {
	g := loopyIslands(t, 8, 3)
	opt := RunOptions{MaxSweeps: 25, Tolerance: 1e-8}

	serial := NewBP(g)
	idx := NewComponentPartition(g)
	RunComponents(serial, idx, opt, 1, nil)

	parallel := NewBP(g)
	RunComponents(parallel, idx, opt, 6, nil)

	for vid := 0; vid < g.NumVariables(); vid++ {
		ws, wp := serial.VarBelief(vid), parallel.VarBelief(vid)
		for s := range ws {
			if ws[s] != wp[s] {
				t.Fatalf("var %d state %d: parallel %v != serial %v (must be bitwise identical)", vid, s, wp, ws)
			}
		}
	}
}

func TestWarmStartConvergesInFewerSweeps(t *testing.T) {
	g := loopyIslands(t, 1, 7)
	idx := NewComponentPartition(g)
	opt := RunOptions{MaxSweeps: 50, Tolerance: 1e-8}

	bp := NewBP(g)
	conv, cold := bp.RunScoped(opt, idx.Blocks[0], idx.Factors[0])
	if !conv {
		t.Fatalf("cold run did not converge in %d sweeps", opt.MaxSweeps)
	}
	if cold < 2 {
		t.Fatalf("cold run converged in %d sweeps; test needs a loopy component", cold)
	}
	conv, warm := bp.RunScoped(opt, idx.Blocks[0], idx.Factors[0])
	if !conv {
		t.Fatalf("warm re-run did not converge")
	}
	if warm >= cold {
		t.Errorf("warm re-run took %d sweeps, cold took %d; warm start must be faster", warm, cold)
	}
}

func TestWarmStateTransplantAcrossRebuild(t *testing.T) {
	// Build the same graph twice with different variable insertion order;
	// signatures key on symbol ids, so messages must transplant and
	// reproduce identical beliefs without any further sweeps.
	build := func(reversed bool) *Graph {
		g := New()
		names := []string{"p", "q"}
		if reversed {
			names = []string{"q", "p"}
		}
		ids := map[string]int{}
		for _, n := range names {
			ids[n] = namedVar(g, n, 2)
		}
		tableFactor(g, "f", []int{ids["p"], ids["q"]}, []float64{0.9, 0.2, 0.4, 0.8})
		tableFactor(g, "u", []int{ids["p"]}, []float64{0.3, 0.7})
		g.Finalize()
		return g
	}
	g1 := build(false)
	bp1 := NewBP(g1)
	bp1.Run(RunOptions{MaxSweeps: 40, Tolerance: 1e-10})
	sigs1 := g1.Signatures()
	warm := bp1.Export(sigs1)

	g2 := build(true)
	bp2 := NewBP(g2)
	sigs2 := g2.Signatures()
	if n := bp2.Import(warm, sigs2); n != g2.NumFactors() {
		t.Fatalf("imported %d of %d factors", n, g2.NumFactors())
	}
	for _, name := range []string{"p", "q"} {
		var v1, v2 int
		for vid := 0; vid < g1.NumVariables(); vid++ {
			if g1.Variable(vid).Name == name {
				v1 = vid
			}
		}
		for vid := 0; vid < g2.NumVariables(); vid++ {
			if g2.Variable(vid).Name == name {
				v2 = vid
			}
		}
		b1, b2 := bp1.VarBelief(v1), bp2.VarBelief(v2)
		for s := range b1 {
			if b1[s] != b2[s] {
				t.Fatalf("var %s: transplanted belief %v != original %v", name, b2, b1)
			}
		}
	}
	// The adjacency fingerprints of the rebuilt graph must match the
	// exported ones (same neighborhoods), the cleanliness criterion the
	// serving layer uses.
	adj2 := VarAdjacency(g2, sigs2)
	for sym, a := range warm.VarAdj {
		if adj2[sym] != a {
			t.Errorf("var sym %d: adjacency fingerprint changed across identical rebuild", sym)
		}
	}
}

func TestSignaturesDisambiguateDuplicates(t *testing.T) {
	g := New()
	a := g.AddVariable("a", 2)
	tableFactor(g, "f", []int{a}, []float64{1, 2})
	tableFactor(g, "f", []int{a}, []float64{1, 2})
	g.Finalize()
	sigs := g.Signatures()
	if sigs[0] == sigs[1] {
		t.Errorf("duplicate factors share a signature: %+v", sigs[0])
	}
}

func TestSignatureTracksPotentials(t *testing.T) {
	g := New()
	a := g.AddVariable("a", 2)
	w := g.AddWeight("w", 1.0)
	g.AddFactor("f", []int{a}, []int{w}, func(states []int) []float64 {
		return []float64{float64(states[0])}
	})
	g.Finalize()
	before := g.Signatures()[0]
	g.SetWeight(w, 2.0)
	g.RefreshPotentials()
	after := g.Signatures()[0]
	if before == after {
		t.Errorf("signature did not change with the potentials")
	}
}
