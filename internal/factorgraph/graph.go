package factorgraph

import (
	"fmt"
	"math"
)

// Variable is a discrete random variable with Card states 0..Card-1.
type Variable struct {
	Name string
	Card int

	id      int
	factors []int // factor ids touching this variable
	clamp   int   // observed/clamped state, or -1
}

// ID returns the variable's id in its graph.
func (v *Variable) ID() int { return v.id }

// Factors returns the ids of factors adjacent to the variable.
func (v *Variable) Factors() []int { return v.factors }

// FeatureFunc computes the feature vector of a factor for one joint
// assignment to its variables. It must be deterministic and must always
// return the same number of features. Feature values conventionally lie
// in [0, 1] (all of the paper's feature functions do).
type FeatureFunc func(states []int) []float64

// Factor couples a set of variables through an exponential-linear
// potential: psi(x) = exp(sum_k w[WeightIDs[k]] * Features(x)[k]). The
// per-factor normalizer Z_j from the paper cancels in message passing
// (messages are renormalized), so it is not materialized.
type Factor struct {
	Name      string
	Vars      []int // variable ids
	WeightIDs []int // indexes into the graph's weight vector

	id    int
	cards []int // cached cardinalities of Vars
	// feats[a][k]: feature k of assignment index a (mixed-radix over
	// Vars). Precomputed once; features never change, only weights do.
	feats [][]float64
	// pot[a]: exp potential of assignment a for the current weights.
	pot []float64
}

// ID returns the factor's id in its graph.
func (f *Factor) ID() int { return f.id }

// NumAssignments returns the number of joint assignments of the factor.
func (f *Factor) NumAssignments() int { return len(f.pot) }

// assignment decodes index a into the per-variable states buffer.
func (f *Factor) assignment(a int, states []int) {
	for i := 0; i < len(f.cards); i++ {
		states[i] = a % f.cards[i]
		a /= f.cards[i]
	}
}

// index encodes per-variable states into an assignment index.
func (f *Factor) index(states []int) int {
	a, mult := 0, 1
	for i, c := range f.cards {
		a += states[i] * mult
		mult *= c
	}
	return a
}

// Graph is a factor graph under construction or inference. Build the
// structure with AddVariable / AddWeight / AddFactor, then call
// Finalize once before running inference.
type Graph struct {
	vars    []*Variable
	factors []*Factor

	weights     []float64
	weightNames []string

	finalized bool
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddVariable adds a latent variable with the given state count and
// returns its id.
func (g *Graph) AddVariable(name string, card int) int {
	if card < 1 {
		panic(fmt.Sprintf("factorgraph: variable %q needs card >= 1, got %d", name, card))
	}
	v := &Variable{Name: name, Card: card, id: len(g.vars), clamp: -1}
	g.vars = append(g.vars, v)
	return v.id
}

// AddWeight registers a named weight with an initial value and returns
// its id. Several factors may share a weight id (parameter tying): all
// F1 factors share one alpha vector, exactly as in the paper.
func (g *Graph) AddWeight(name string, init float64) int {
	g.weights = append(g.weights, init)
	g.weightNames = append(g.weightNames, name)
	return len(g.weights) - 1
}

// AddFactor adds a factor over the given variables whose feature vector
// is computed by feat and weighted by the registered weight ids. The
// feature table is materialized immediately.
func (g *Graph) AddFactor(name string, vars []int, weightIDs []int, feat FeatureFunc) int {
	f := &Factor{
		Name:      name,
		Vars:      append([]int(nil), vars...),
		WeightIDs: append([]int(nil), weightIDs...),
		id:        len(g.factors),
	}
	f.cards = make([]int, len(vars))
	n := 1
	for i, vid := range vars {
		f.cards[i] = g.vars[vid].Card
		n *= f.cards[i]
	}
	f.feats = make([][]float64, n)
	f.pot = make([]float64, n)
	states := make([]int, len(vars))
	for a := 0; a < n; a++ {
		f.assignment(a, states)
		fv := feat(states)
		if len(fv) != len(weightIDs) {
			panic(fmt.Sprintf("factorgraph: factor %q: %d features for %d weights", name, len(fv), len(weightIDs)))
		}
		f.feats[a] = append([]float64(nil), fv...)
	}
	g.factors = append(g.factors, f)
	for _, vid := range vars {
		g.vars[vid].factors = append(g.vars[vid].factors, f.id)
	}
	return f.id
}

// Finalize freezes the structure and computes initial potentials. It
// must be called once, after all variables and factors are added.
func (g *Graph) Finalize() {
	g.finalized = true
	g.RefreshPotentials()
}

// RefreshPotentials recomputes every factor's potential table from the
// current weights. Call after changing weights.
func (g *Graph) RefreshPotentials() {
	for _, f := range g.factors {
		for a := range f.pot {
			s := 0.0
			for k, wid := range f.WeightIDs {
				s += g.weights[wid] * f.feats[a][k]
			}
			f.pot[a] = math.Exp(s)
		}
	}
}

// NumVariables returns the number of variables.
func (g *Graph) NumVariables() int { return len(g.vars) }

// NumFactors returns the number of factors.
func (g *Graph) NumFactors() int { return len(g.factors) }

// Variable returns the variable with id.
func (g *Graph) Variable(id int) *Variable { return g.vars[id] }

// Factor returns the factor with id.
func (g *Graph) Factor(id int) *Factor { return g.factors[id] }

// Weights returns the live weight slice (callers may read; use
// SetWeight to mutate so potentials can be refreshed in bulk).
func (g *Graph) Weights() []float64 { return g.weights }

// WeightName returns the registered name of a weight.
func (g *Graph) WeightName(id int) string { return g.weightNames[id] }

// SetWeight updates one weight value. RefreshPotentials must be called
// before the next inference run.
func (g *Graph) SetWeight(id int, v float64) { g.weights[id] = v }

// Clamp fixes a variable to a state (for observed evidence or for the
// clamped learning pass). Pass state -1 to unclamp.
func (g *Graph) Clamp(varID, state int) {
	v := g.vars[varID]
	if state >= v.Card {
		panic(fmt.Sprintf("factorgraph: clamp %q to %d, card %d", v.Name, state, v.Card))
	}
	v.clamp = state
}

// UnclampAll removes every clamp, returning all variables to latent.
func (g *Graph) UnclampAll() {
	for _, v := range g.vars {
		v.clamp = -1
	}
}

// Clamped returns the clamped state of a variable, or -1.
func (g *Graph) Clamped(varID int) int { return g.vars[varID].clamp }
