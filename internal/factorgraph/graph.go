package factorgraph

import (
	"fmt"
	"math"
)

// Variable is a discrete random variable with Card states 0..Card-1.
type Variable struct {
	Name string
	Card int
	// Sym is the variable's stable external identity: an okb symbol id
	// for graphs built over an interned store. Warm state, partitions
	// and deltas are keyed on Sym, so a variable keeps its identity
	// across per-ingest graph rebuilds even though its dense id (and
	// the surrounding graph) changes. Graphs built with AddVariable get
	// Sym = id.
	Sym int32

	id      int
	factors []int // factor ids touching this variable
	// pos[i] is this variable's position within factor factors[i] (its
	// index in that factor's Vars). Parallel to factors; precomputed at
	// AddFactor time so message passing never consults a map.
	pos   []int32
	clamp int // observed/clamped state, or -1
}

// ID returns the variable's id in its graph.
func (v *Variable) ID() int { return v.id }

// Factors returns the ids of factors adjacent to the variable.
func (v *Variable) Factors() []int { return v.factors }

// FeatureFunc computes the feature vector of a factor for one joint
// assignment to its variables. It must be deterministic and must always
// return the same number of features. Feature values conventionally lie
// in [0, 1] (all of the paper's feature functions do).
type FeatureFunc func(states []int) []float64

// Factor couples a set of variables through an exponential-linear
// potential: psi(x) = exp(sum_k w[WeightIDs[k]] * Features(x)[k]). The
// per-factor normalizer Z_j from the paper cancels in message passing
// (messages are renormalized), so it is not materialized.
type Factor struct {
	Name      string
	Vars      []int // variable ids
	WeightIDs []int // indexes into the graph's weight vector

	id    int
	cards []int // cached cardinalities of Vars
	// feats holds feature k of assignment a (mixed-radix over Vars) at
	// feats[a*nf+k]. Precomputed once; features never change, only
	// weights do.
	feats []float64
	nf    int
	// pot[a]: exp potential of assignment a for the current weights.
	pot []float64

	// Message-buffer layout, filled in by Finalize: the factor's
	// messages live in a flat per-graph array at [off, off+totCard),
	// with position i's block starting at off+posOff[i] and spanning
	// cards[i] slots.
	off     int32
	posOff  []int32
	totCard int32
}

// ID returns the factor's id in its graph.
func (f *Factor) ID() int { return f.id }

// NumAssignments returns the number of joint assignments of the factor.
func (f *Factor) NumAssignments() int { return len(f.pot) }

// featAt returns feature k of assignment a.
func (f *Factor) featAt(a, k int) float64 { return f.feats[a*f.nf+k] }

// assignment decodes index a into the per-variable states buffer.
func (f *Factor) assignment(a int, states []int) {
	for i := 0; i < len(f.cards); i++ {
		states[i] = a % f.cards[i]
		a /= f.cards[i]
	}
}

// index encodes per-variable states into an assignment index.
func (f *Factor) index(states []int) int {
	a, mult := 0, 1
	for i, c := range f.cards {
		a += states[i] * mult
		mult *= c
	}
	return a
}

// nextAssignment advances states to the next mixed-radix assignment
// (little-endian, matching assignment's decode order) without the per
// position div/mod a full decode pays.
func nextAssignment(states, cards []int) {
	for i := 0; i < len(cards); i++ {
		states[i]++
		if states[i] < cards[i] {
			return
		}
		states[i] = 0
	}
}

// Graph is a factor graph under construction or inference. Build the
// structure with AddVariable / AddWeight / AddFactor, then call
// Finalize once before running inference.
type Graph struct {
	vars    []*Variable
	factors []*Factor

	weights     []float64
	weightNames []string

	// Flat message-buffer geometry, computed by Finalize. msgSlots is
	// the total factor->variable (equivalently variable->factor)
	// message slots across all factor positions; varOff[v]..varOff[v+1]
	// is variable v's belief block; maxCard bounds stack scratch.
	msgSlots int
	varOff   []int32
	maxCard  int

	finalized bool
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddVariable adds a latent variable with the given state count and
// returns its id. The variable's Sym defaults to its id; use
// AddVariableSym when the variable has a stable cross-graph identity.
func (g *Graph) AddVariable(name string, card int) int {
	id := g.AddVariableSym(int32(len(g.vars)), card)
	g.vars[id].Name = name
	return id
}

// AddVariableSym adds a latent variable carrying the given symbol id as
// its stable identity and returns its graph-local id.
func (g *Graph) AddVariableSym(sym int32, card int) int {
	if card < 1 {
		panic(fmt.Sprintf("factorgraph: variable sym %d needs card >= 1, got %d", sym, card))
	}
	v := &Variable{Sym: sym, Card: card, id: len(g.vars), clamp: -1}
	g.vars = append(g.vars, v)
	return v.id
}

// AddWeight registers a named weight with an initial value and returns
// its id. Several factors may share a weight id (parameter tying): all
// F1 factors share one alpha vector, exactly as in the paper.
func (g *Graph) AddWeight(name string, init float64) int {
	g.weights = append(g.weights, init)
	g.weightNames = append(g.weightNames, name)
	return len(g.weights) - 1
}

// AddFactor adds a factor over the given variables whose feature vector
// is computed by feat and weighted by the registered weight ids. The
// feature table is materialized immediately.
func (g *Graph) AddFactor(name string, vars []int, weightIDs []int, feat FeatureFunc) int {
	f := &Factor{
		Name:      name,
		Vars:      append([]int(nil), vars...),
		WeightIDs: append([]int(nil), weightIDs...),
		id:        len(g.factors),
	}
	f.cards = make([]int, len(vars))
	n := 1
	for i, vid := range vars {
		f.cards[i] = g.vars[vid].Card
		n *= f.cards[i]
	}
	f.nf = len(weightIDs)
	f.feats = make([]float64, n*f.nf)
	f.pot = make([]float64, n)
	states := make([]int, len(vars))
	for a := 0; a < n; a++ {
		fv := feat(states)
		if len(fv) != len(weightIDs) {
			panic(fmt.Sprintf("factorgraph: factor %q: %d features for %d weights", name, len(fv), len(weightIDs)))
		}
		copy(f.feats[a*f.nf:(a+1)*f.nf], fv)
		nextAssignment(states, f.cards)
	}
	g.factors = append(g.factors, f)
	for i, vid := range vars {
		v := g.vars[vid]
		v.factors = append(v.factors, f.id)
		v.pos = append(v.pos, int32(i))
	}
	return f.id
}

// Finalize freezes the structure, lays out the flat message-buffer
// geometry, and computes initial potentials. It must be called once,
// after all variables and factors are added.
func (g *Graph) Finalize() {
	off := int32(0)
	for _, f := range g.factors {
		f.off = off
		f.posOff = make([]int32, len(f.Vars))
		o := int32(0)
		for i, c := range f.cards {
			f.posOff[i] = o
			o += int32(c)
		}
		f.totCard = o
		off += o
	}
	g.msgSlots = int(off)
	g.varOff = make([]int32, len(g.vars)+1)
	g.maxCard = 0
	bo := int32(0)
	for i, v := range g.vars {
		g.varOff[i] = bo
		bo += int32(v.Card)
		if v.Card > g.maxCard {
			g.maxCard = v.Card
		}
	}
	g.varOff[len(g.vars)] = bo
	g.finalized = true
	g.RefreshPotentials()
}

// msgBase returns the offset of factor f's position-i message block in
// the graph's flat message arrays.
func msgBase(f *Factor, i int) int { return int(f.off + f.posOff[i]) }

// RefreshPotentials recomputes every factor's potential table from the
// current weights. Call after changing weights.
func (g *Graph) RefreshPotentials() {
	for _, f := range g.factors {
		for a := range f.pot {
			s := 0.0
			base := a * f.nf
			for k, wid := range f.WeightIDs {
				s += g.weights[wid] * f.feats[base+k]
			}
			f.pot[a] = math.Exp(s)
		}
	}
}

// NumVariables returns the number of variables.
func (g *Graph) NumVariables() int { return len(g.vars) }

// NumFactors returns the number of factors.
func (g *Graph) NumFactors() int { return len(g.factors) }

// Variable returns the variable with id.
func (g *Graph) Variable(id int) *Variable { return g.vars[id] }

// Factor returns the factor with id.
func (g *Graph) Factor(id int) *Factor { return g.factors[id] }

// Weights returns the live weight slice (callers may read; use
// SetWeight to mutate so potentials can be refreshed in bulk).
func (g *Graph) Weights() []float64 { return g.weights }

// WeightName returns the registered name of a weight.
func (g *Graph) WeightName(id int) string { return g.weightNames[id] }

// SetWeight updates one weight value. RefreshPotentials must be called
// before the next inference run.
func (g *Graph) SetWeight(id int, v float64) { g.weights[id] = v }

// Clamp fixes a variable to a state (for observed evidence or for the
// clamped learning pass). Pass state -1 to unclamp.
func (g *Graph) Clamp(varID, state int) {
	v := g.vars[varID]
	if state >= v.Card {
		panic(fmt.Sprintf("factorgraph: clamp var %d (sym %d) to %d, card %d", varID, v.Sym, state, v.Card))
	}
	v.clamp = state
}

// UnclampAll removes every clamp, returning all variables to latent.
func (g *Graph) UnclampAll() {
	for _, v := range g.vars {
		v.clamp = -1
	}
}

// Clamped returns the clamped state of a variable, or -1.
func (g *Graph) Clamped(varID int) int { return g.vars[varID].clamp }
