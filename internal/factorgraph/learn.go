package factorgraph

import "math"

// TrainOptions configures maximum-likelihood weight learning.
type TrainOptions struct {
	LearnRate float64 // gradient-ascent step (paper: 0.05)
	MaxIters  int     // maximum gradient iterations (paper: ~20 suffice)
	Tolerance float64 // stop when the gradient inf-norm drops below this
	BP        RunOptions
	// L2 is an optional ridge penalty keeping weights bounded on small
	// validation sets; 0 disables it (the paper does not regularize).
	L2 float64
}

func (o *TrainOptions) defaults() {
	if o.LearnRate == 0 {
		o.LearnRate = 0.05
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 20
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-4
	}
}

// TrainResult reports the outcome of Train.
type TrainResult struct {
	Iters     int
	GradNorm  float64 // final gradient inf-norm
	Converged bool
}

// ExpectedFeatures runs BP with the current clamps and integrates every
// factor's feature vector against its belief, accumulating per-weight
// expectations E[Q_k]. The caller chooses the clamping (labels for the
// clamped pass, none for the free pass).
func ExpectedFeatures(g *Graph, bp *BP, opt RunOptions) []float64 {
	bp.Reset()
	bp.Run(opt)
	exp := make([]float64, len(g.weights))
	for _, f := range g.factors {
		b := bp.FactorBelief(f.id)
		for a, p := range b {
			if p == 0 {
				continue
			}
			for k, wid := range f.WeightIDs {
				exp[wid] += p * f.featAt(a, k)
			}
		}
	}
	return exp
}

// Train maximizes the conditional log-likelihood of the labeled
// variables by gradient ascent (Formula 6 of the paper): the gradient
// of each weight is the clamped expectation of its feature sum minus
// the free expectation. labels maps variable ids to their observed
// states; all other variables stay latent in both passes. Pre-existing
// clamps are cleared. On return the graph holds the learned weights and
// no clamps.
func Train(g *Graph, labels map[int]int, opt TrainOptions) TrainResult {
	opt.defaults()
	bp := NewBP(g)
	res := TrainResult{}
	for iter := 0; iter < opt.MaxIters; iter++ {
		res.Iters = iter + 1

		// Clamped pass: evidence fixed to the labels.
		g.UnclampAll()
		for vid, s := range labels {
			g.Clamp(vid, s)
		}
		clamped := ExpectedFeatures(g, bp, opt.BP)

		// Free pass: everything latent.
		g.UnclampAll()
		free := ExpectedFeatures(g, bp, opt.BP)

		norm := 0.0
		for k := range g.weights {
			grad := clamped[k] - free[k] - opt.L2*g.weights[k]
			g.weights[k] += opt.LearnRate * grad
			if a := math.Abs(grad); a > norm {
				norm = a
			}
		}
		g.RefreshPotentials()
		res.GradNorm = norm
		if norm < opt.Tolerance {
			res.Converged = true
			break
		}
	}
	g.UnclampAll()
	return res
}
