package factorgraph

// ExactMarginals computes every variable's marginal distribution by
// brute-force enumeration of the joint. It is exponential in the number
// of variables and exists as a correctness oracle for LBP in tests and
// for the tiny graphs in examples. Clamped variables are respected.
func (g *Graph) ExactMarginals() [][]float64 {
	marg := make([][]float64, len(g.vars))
	for _, v := range g.vars {
		marg[v.id] = make([]float64, v.Card)
	}
	states := make([]int, len(g.vars))
	scratch := make([]int, 8)
	var rec func(i int, p float64)
	total := 0.0
	// Joint potential of a full assignment: product over factors. We
	// accumulate lazily: enumerate variables depth-first and multiply
	// factor potentials once all their variables are fixed (at the
	// deepest variable of the factor).
	deepest := make([][]int, len(g.vars)) // var id -> factors completed there
	for _, f := range g.factors {
		d := 0
		for _, vid := range f.Vars {
			if vid > d {
				d = vid
			}
		}
		deepest[d] = append(deepest[d], f.id)
	}
	rec = func(i int, p float64) {
		if i == len(g.vars) {
			total += p
			for vid, s := range states {
				marg[vid][s] += p
			}
			return
		}
		v := g.vars[i]
		lo, hi := 0, v.Card
		if v.clamp >= 0 {
			lo, hi = v.clamp, v.clamp+1
		}
		for s := lo; s < hi; s++ {
			states[i] = s
			q := p
			for _, fid := range deepest[i] {
				f := g.factors[fid]
				if len(f.Vars) > len(scratch) {
					scratch = make([]int, len(f.Vars))
				}
				for k, vid := range f.Vars {
					scratch[k] = states[vid]
				}
				q *= f.pot[f.index(scratch[:len(f.Vars)])]
			}
			rec(i+1, q)
		}
	}
	rec(0, 1)
	if total > 0 {
		for _, m := range marg {
			for s := range m {
				m[s] /= total
			}
		}
	}
	return marg
}
