package factorgraph

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
)

// This file is the factor-graph half of the streaming subsystem: it
// makes belief propagation schedulable per partition block and makes
// message state transplantable between graph builds, so a serving
// session can re-run inference only on the blocks a triple batch
// touched and warm-start everything else. The partition itself —
// exact components or hub cuts — lives in partition.go.
//
// The key invariant exploited throughout: one BP sweep is a pure
// function of the previous sweep's messages, and messages never cross
// block boundaries (cut variables' outgoing messages are frozen while
// blocks run). Factor updates read only their own incoming messages
// and variable updates read only factor-to-variable messages, so
// sweeps over disjoint blocks commute — scoped runs on disjoint
// blocks may safely share one BP's message buffers, serially or in
// parallel, and produce bitwise-identical messages either way.

// RunScoped iterates scheduled message passing confined to one scope
// (vars + factors) until the scope's beliefs change by less than
// opt.Tolerance or MaxSweeps is reached. Messages outside the scope
// are neither read nor written, so concurrent RunScoped calls on
// disjoint scopes are safe on a shared BP. Unlike Run, it does not
// start from Reset: the current messages — uniform from NewBP, or
// transplanted by Import — are the starting point, which is what makes
// warm-started re-runs converge in fewer sweeps.
//
// It returns whether the scope converged and the sweeps performed.
func (bp *BP) RunScoped(opt RunOptions, vars, factors []int) (bool, int) {
	sub := &Schedule{
		FactorGroups: filterGroups(opt.Schedule, factors, vars, true),
		VarGroups:    filterGroups(opt.Schedule, factors, vars, false),
	}
	return bp.runScopedScheduled(opt, vars, sub)
}

// runScopedScheduled is RunScoped with the scope's sub-schedule already
// built — the hot path for partitioned runs, which precompute one
// sub-schedule per block and reuse it across sweeps and ingests.
func (bp *BP) runScopedScheduled(opt RunOptions, vars []int, sub *Schedule) (bool, int) {
	opt.defaults()
	for _, vid := range vars {
		copy(bp.prevBelief[vid], bp.VarBelief(vid))
	}
	for sweep := 0; sweep < opt.MaxSweeps; sweep++ {
		for _, group := range sub.FactorGroups {
			for _, fid := range group {
				bp.updateFactorMessages(fid, opt.Damping)
			}
		}
		for _, group := range sub.VarGroups {
			for _, vid := range group {
				bp.updateVariableMessages(vid)
			}
		}
		delta := 0.0
		for _, vid := range vars {
			b := bp.VarBelief(vid)
			for s, p := range b {
				if d := math.Abs(p - bp.prevBelief[vid][s]); d > delta {
					delta = d
				}
			}
			copy(bp.prevBelief[vid], b)
		}
		if delta < opt.Tolerance {
			return true, sweep + 1
		}
	}
	return false, opt.MaxSweeps
}

// Signatures returns a stable identity string for every factor: its
// name, the names and cardinalities of its variables, and a hash of its
// current potential table, with a disambiguating counter appended to
// duplicates (e.g. two fact-inclusion factors of a repeated triple).
// Two factors from different graph builds with equal signatures are
// interchangeable for inference, which is what lets message state
// survive a rebuild: variable ids may shift as phrases are inserted,
// but signatures follow the phrase-derived names.
//
// Potentials depend on the graph's weights, so signatures must be taken
// after Finalize/RefreshPotentials with the weights that inference will
// use.
func (g *Graph) Signatures() []string {
	out := make([]string, len(g.factors))
	seen := map[string]int{}
	var b strings.Builder
	for fi, f := range g.factors {
		b.Reset()
		b.WriteString(f.Name)
		for _, vid := range f.Vars {
			v := g.vars[vid]
			fmt.Fprintf(&b, "|%s/%d", v.Name, v.Card)
		}
		h := fnv.New64a()
		var buf [8]byte
		for _, p := range f.pot {
			bits := math.Float64bits(p)
			for k := 0; k < 8; k++ {
				buf[k] = byte(bits >> (8 * k))
			}
			h.Write(buf[:])
		}
		fmt.Fprintf(&b, "|%016x", h.Sum64())
		sig := b.String()
		if n := seen[sig]; n > 0 {
			seen[sig] = n + 1
			sig = fmt.Sprintf("%s#%d", sig, n)
		} else {
			seen[sig] = 1
		}
		out[fi] = sig
	}
	return out
}

// VarAdjacency returns, per variable name, the sorted concatenation of
// the signatures of its adjacent factors. Equal adjacency strings
// across two builds mean the variable sits in an identical subgraph
// neighborhood; when that holds for every variable of a component, the
// component's BP fixed point is unchanged and its cached messages can
// be served as-is.
func VarAdjacency(g *Graph, sigs []string) map[string]string {
	out := make(map[string]string, len(g.vars))
	for _, v := range g.vars {
		adj := make([]string, len(v.factors))
		for i, fid := range v.factors {
			adj[i] = sigs[fid]
		}
		sort.Strings(adj)
		out[v.Name] = strings.Join(adj, "\n")
	}
	return out
}

// FactorMessages is the transplantable message state of one factor:
// factor-to-variable and variable-to-factor messages per adjacent
// variable position.
type FactorMessages struct {
	FV [][]float64
	VF [][]float64
}

// WarmState is the exportable inference state of one graph build, keyed
// by factor signature so it can be re-imported into a later build whose
// variable ids differ.
type WarmState struct {
	Msgs   map[string]FactorMessages
	VarAdj map[string]string
	// Boundary holds, per block key, the boundary cut-variable beliefs
	// the block last actually ran against (see
	// Partition.BoundaryBeliefs). Nil for runs over no-cut partitions.
	Boundary map[string]map[string][]float64
	// BlockFP condenses, per block key, the block's variables' VarAdj
	// strings into one hash (Partition.BlockFingerprints): the next
	// build clears an unchanged block with a single comparison instead
	// of walking its members, so a repaired partition whose blocks are
	// identical keeps every block warm. Nil on states exported before
	// fingerprinting existed; the importer falls back to per-variable
	// comparison.
	BlockFP map[string]uint64
	// Partition is the persistent partition identity (cut names, block
	// degree profiles, tuned size cap) RepairPartition carries across
	// rebuilds. Nil when the exporting run used no hub-cut partition.
	Partition *PartitionMemory
}

// Export captures the BP's current messages keyed by the given factor
// signatures (from Graph.Signatures on the same graph).
func (bp *BP) Export(sigs []string) *WarmState {
	w := &WarmState{
		Msgs:   make(map[string]FactorMessages, len(bp.g.factors)),
		VarAdj: VarAdjacency(bp.g, sigs),
	}
	for fi, f := range bp.g.factors {
		fm := FactorMessages{
			FV: make([][]float64, len(f.Vars)),
			VF: make([][]float64, len(f.Vars)),
		}
		for i := range f.Vars {
			fm.FV[i] = append([]float64(nil), bp.msgFV[fi][i]...)
			fm.VF[i] = append([]float64(nil), bp.msgVF[fi][i]...)
		}
		w.Msgs[sigs[fi]] = fm
	}
	return w
}

// Import copies messages from a previous build's WarmState into this
// BP for every factor whose signature matches, leaving the rest at
// their current (uniform) initialization. It returns the number of
// factors warm-started.
func (bp *BP) Import(w *WarmState, sigs []string) int {
	if w == nil {
		return 0
	}
	matched := 0
	for fi, f := range bp.g.factors {
		fm, ok := w.Msgs[sigs[fi]]
		if !ok || len(fm.FV) != len(f.Vars) {
			continue
		}
		fits := true
		for i, vid := range f.Vars {
			if len(fm.FV[i]) != bp.g.vars[vid].Card || len(fm.VF[i]) != bp.g.vars[vid].Card {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		for i := range f.Vars {
			copy(bp.msgFV[fi][i], fm.FV[i])
			copy(bp.msgVF[fi][i], fm.VF[i])
		}
		matched++
	}
	return matched
}
