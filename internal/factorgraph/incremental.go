package factorgraph

import (
	"math"
	"slices"
)

// This file is the factor-graph half of the streaming subsystem: it
// makes belief propagation schedulable per partition block and makes
// message state transplantable between graph builds, so a serving
// session can re-run inference only on the blocks a triple batch
// touched and warm-start everything else. The partition itself —
// exact components or hub cuts — lives in partition.go.
//
// The key invariant exploited throughout: one BP sweep is a pure
// function of the previous sweep's messages, and messages never cross
// block boundaries (cut variables' outgoing messages are frozen while
// blocks run). Factor updates read only their own incoming messages
// and variable updates read only factor-to-variable messages, so
// sweeps over disjoint blocks commute — scoped runs on disjoint
// blocks may safely share one BP's message buffers, serially or in
// parallel, and produce bitwise-identical messages either way.
//
// Identity across builds is numeric end to end: variables carry okb
// symbol ids (Variable.Sym), factors are identified by SigKey (a
// 64-bit FNV over the factor's family name, its variables' (sym, card)
// pairs and its potential bits, plus a duplicate counter), and all
// warm state is keyed on those. No per-ingest string building.

// RunScoped iterates scheduled message passing confined to one scope
// (vars + factors) until the scope's beliefs change by less than
// opt.Tolerance or MaxSweeps is reached. Messages outside the scope
// are neither read nor written, so concurrent RunScoped calls on
// disjoint scopes are safe on a shared BP. Unlike Run, it does not
// start from Reset: the current messages — uniform from NewBP, or
// transplanted by Import — are the starting point, which is what makes
// warm-started re-runs converge in fewer sweeps.
//
// It returns whether the scope converged and the sweeps performed.
func (bp *BP) RunScoped(opt RunOptions, vars, factors []int) (bool, int) {
	sub := &Schedule{
		FactorGroups: filterGroups(opt.Schedule, factors, vars, true),
		VarGroups:    filterGroups(opt.Schedule, factors, vars, false),
	}
	return bp.runScopedScheduled(opt, vars, sub)
}

// runScopedScheduled is RunScoped with the scope's sub-schedule already
// built — the hot path for partitioned runs, which precompute one
// sub-schedule per block and reuse it across sweeps and ingests.
func (bp *BP) runScopedScheduled(opt RunOptions, vars []int, sub *Schedule) (bool, int) {
	opt.defaults()
	var buf [stackCard]float64
	for _, vid := range vars {
		b := bp.varBeliefInto(vid, beliefScratch(buf[:], bp.g.vars[vid].Card))
		copy(bp.prevVar(vid), b)
	}
	for sweep := 0; sweep < opt.MaxSweeps; sweep++ {
		for _, group := range sub.FactorGroups {
			for _, fid := range group {
				bp.updateFactorMessages(fid, opt.Damping)
			}
		}
		for _, group := range sub.VarGroups {
			for _, vid := range group {
				bp.updateVariableMessages(vid)
			}
		}
		delta := 0.0
		for _, vid := range vars {
			b := bp.varBeliefInto(vid, beliefScratch(buf[:], bp.g.vars[vid].Card))
			prev := bp.prevVar(vid)
			for s, p := range b {
				if d := math.Abs(p - prev[s]); d > delta {
					delta = d
				}
			}
			copy(prev, b)
		}
		if delta < opt.Tolerance {
			return true, sweep + 1
		}
	}
	return false, opt.MaxSweeps
}

// SigKey is the stable identity of a factor across graph builds: a
// 64-bit FNV-1a hash over the factor's name, its variables' (sym,
// card) pairs in position order, and its potential table's bits, plus
// a counter disambiguating byte-identical duplicates (e.g. two
// fact-inclusion factors of a repeated triple). Two factors from
// different builds with equal keys are interchangeable for inference,
// which is what lets message state survive a rebuild.
type SigKey struct {
	H   uint64
	Dup int32
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a hash, byte by byte in
// little-endian order.
func fnvMix(h, v uint64) uint64 {
	for k := 0; k < 64; k += 8 {
		h = (h ^ ((v >> k) & 0xff)) * fnvPrime64
	}
	return h
}

// sigHash condenses a SigKey to a single word for adjacency hashing.
func sigHash(k SigKey) uint64 { return fnvMix(k.H, uint64(uint32(k.Dup))) }

// Signatures returns the SigKey of every factor. Potentials depend on
// the graph's weights, so signatures must be taken after
// Finalize/RefreshPotentials with the weights that inference will use.
func (g *Graph) Signatures() []SigKey {
	out := make([]SigKey, len(g.factors))
	seen := make(map[uint64]int32, len(g.factors))
	for fi, f := range g.factors {
		h := uint64(fnvOffset64)
		for i := 0; i < len(f.Name); i++ {
			h = (h ^ uint64(f.Name[i])) * fnvPrime64
		}
		for _, vid := range f.Vars {
			v := g.vars[vid]
			h = fnvMix(h, uint64(uint32(v.Sym)))
			h = fnvMix(h, uint64(v.Card))
		}
		for _, p := range f.pot {
			h = fnvMix(h, math.Float64bits(p))
		}
		dup := seen[h]
		seen[h] = dup + 1
		out[fi] = SigKey{H: h, Dup: dup}
	}
	return out
}

// VarAdjacency returns, per variable sym, a hash of the sorted
// signatures of its adjacent factors. Equal adjacency hashes across
// two builds mean the variable sits in an identical subgraph
// neighborhood; when that holds for every variable of a component, the
// component's BP fixed point is unchanged and its cached messages can
// be served as-is.
func VarAdjacency(g *Graph, sigs []SigKey) map[int32]uint64 {
	out := make(map[int32]uint64, len(g.vars))
	scratch := make([]uint64, 0, 32)
	for _, v := range g.vars {
		scratch = scratch[:0]
		for _, fid := range v.factors {
			scratch = append(scratch, sigHash(sigs[fid]))
		}
		slices.Sort(scratch)
		h := uint64(fnvOffset64)
		for _, x := range scratch {
			h = fnvMix(h, x)
		}
		out[v.Sym] = h
	}
	return out
}

// FactorMessages is the transplantable message state of one factor:
// factor-to-variable and variable-to-factor messages per adjacent
// variable position.
type FactorMessages struct {
	FV [][]float64
	VF [][]float64
}

// WarmState is the exportable inference state of one graph build, keyed
// by factor signature so it can be re-imported into a later build whose
// variable ids differ. All keys are numeric (SigKey / symbol id); the
// state owns its buffers — it never aliases a BP's pooled slab — so it
// stays valid after the BP is released, including inside checkpoints.
type WarmState struct {
	Msgs   map[SigKey]FactorMessages
	VarAdj map[int32]uint64
	// Boundary holds, per block key, the boundary cut-variable beliefs
	// (by cut-variable sym) the block last actually ran against (see
	// Partition.BoundaryBeliefs). Nil for runs over no-cut partitions.
	Boundary map[int32]map[int32][]float64
	// BlockFP condenses, per block key, the block's variables' VarAdj
	// hashes into one hash (Partition.BlockFingerprints): the next
	// build clears an unchanged block with a single comparison instead
	// of walking its members, so a repaired partition whose blocks are
	// identical keeps every block warm.
	BlockFP map[int32]uint64
	// Partition is the persistent partition identity (cut syms, block
	// degree profiles, tuned size cap) RepairPartition carries across
	// rebuilds. Nil when the exporting run used no hub-cut partition.
	Partition *PartitionMemory
}

// Export captures the BP's current messages keyed by the given factor
// signatures (from Graph.Signatures on the same graph). Every factor's
// messages are deep-copied.
func (bp *BP) Export(sigs []SigKey) *WarmState {
	return bp.ExportReusing(sigs, VarAdjacency(bp.g, sigs), nil, nil)
}

// ExportReusing is Export with two steady-state shortcuts: the caller
// supplies the adjacency map (typically already computed for dirty
// detection), and may pass the previous build's WarmState together
// with a per-factor clean mask. A clean factor's messages are carried
// into the new state by reference instead of copied — sound because
// WarmState buffers are immutable once exported and a clean factor is
// one whose messages this run provably did not touch (imported intact,
// block never swept, boundary refresh never wrote to it). With a
// steady stream, the copy cost per ingest is O(dirty), not O(graph).
func (bp *BP) ExportReusing(sigs []SigKey, adj map[int32]uint64, prev *WarmState, clean []bool) *WarmState {
	w := &WarmState{
		Msgs:   make(map[SigKey]FactorMessages, len(bp.g.factors)),
		VarAdj: adj,
	}
	if w.VarAdj == nil {
		w.VarAdj = VarAdjacency(bp.g, sigs)
	}
	for fi, f := range bp.g.factors {
		if clean != nil && clean[fi] && prev != nil {
			if fm, ok := prev.Msgs[sigs[fi]]; ok {
				w.Msgs[sigs[fi]] = fm
				continue
			}
		}
		n := len(f.Vars)
		tc := int(f.totCard)
		buf := make([]float64, 2*tc)
		copy(buf[:tc], bp.msgFV[f.off:int(f.off)+tc])
		copy(buf[tc:], bp.msgVF[f.off:int(f.off)+tc])
		fm := FactorMessages{
			FV: make([][]float64, n),
			VF: make([][]float64, n),
		}
		for i := 0; i < n; i++ {
			lo, hi := f.posOff[i], f.posOff[i]+int32(f.cards[i])
			fm.FV[i] = buf[lo:hi:hi]
			fm.VF[i] = buf[tc+int(lo) : tc+int(hi) : tc+int(hi)]
		}
		w.Msgs[sigs[fi]] = fm
	}
	return w
}

// Import copies messages from a previous build's WarmState into this
// BP for every factor whose signature matches, leaving the rest at
// their current (uniform) initialization. It returns the number of
// factors warm-started.
func (bp *BP) Import(w *WarmState, sigs []SigKey) int {
	if w == nil {
		return 0
	}
	matched := 0
	for fi, f := range bp.g.factors {
		fm, ok := w.Msgs[sigs[fi]]
		if !ok || len(fm.FV) != len(f.Vars) {
			continue
		}
		fits := true
		for i := range f.Vars {
			if len(fm.FV[i]) != f.cards[i] || len(fm.VF[i]) != f.cards[i] {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		for i := range f.Vars {
			base := msgBase(f, i)
			copy(bp.msgFV[base:base+f.cards[i]], fm.FV[i])
			copy(bp.msgVF[base:base+f.cards[i]], fm.VF[i])
		}
		bp.imported[fi] = true
		matched++
	}
	return matched
}

// Imported reports whether factor fid's messages were seeded from a
// WarmState by Import.
func (bp *BP) Imported(fid int) bool { return bp.imported[fid] }
