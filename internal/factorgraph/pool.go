package factorgraph

import "sync"

// BufferPool recycles BP message slabs across inference runs. A serving
// session constructs one graph per ingest; with a pool, the slab for
// each run is the previous run's (grown only when the graph outgrows
// it), so steady-state ingest allocates message buffers O(1) per run
// instead of O(factors).
//
// Safe for concurrent use. Slabs are handed out uninitialized beyond
// what NewBPWithPool resets itself; callers never see stale data.
type BufferPool struct {
	p sync.Pool
}

// NewBufferPool returns an empty pool.
func NewBufferPool() *BufferPool { return &BufferPool{} }

func (p *BufferPool) get(n int) []float64 {
	if v := p.p.Get(); v != nil {
		s := *(v.(*[]float64))
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]float64, n)
}

func (p *BufferPool) put(s []float64) {
	s = s[:0]
	p.p.Put(&s)
}
