package factorgraph

import (
	"runtime"
	"slices"
	"sort"
)

// This file makes Partition a persistent structure: instead of
// re-deriving the hub cut from scratch on every graph rebuild — which
// re-runs the size-cap refinement's global component sweeps and lets
// percentile jitter re-shuffle block identities — a build exports a
// PartitionMemory (cut variables by stable sym, per-block degree
// profiles) and the next build repairs it. RepairPartition carries the
// previous cut set across the id shifts of a rebuild, re-runs hub
// selection and refinement only inside blocks whose degree profile or
// size actually changed, and leaves every other block — and therefore
// its BlockKey, its boundary baseline, and its warm messages — exactly
// as the previous build left them.

// BlockProfile fingerprints one block for change detection across
// rebuilds: its variable count plus a hash of the members' (sym,
// factor-degree) pairs. Equal profiles mean the block holds the same
// phrases' variables with the same factor degrees, so neither the hub
// threshold stage nor the size-cap refinement could cut it differently
// than the previous build did.
type BlockProfile struct {
	Vars int
	Hash uint64
}

// PartitionMemory is the persistent identity of a partition, carried
// across graph rebuilds inside WarmState. Variable ids shift as phrases
// are inserted, so everything is keyed by stable symbol ids: CutSyms
// lists the cut variables, Blocks the per-block degree profiles under
// their BlockKey, and TunedBlockVars records the auto-tuned
// MaxBlockVars in effect (0 when the knob was set explicitly), so a
// repaired partition keeps the cap its blocks were refined under
// instead of chasing the graph's growth.
type PartitionMemory struct {
	CutSyms        []int32
	Blocks         map[int32]BlockProfile
	TunedBlockVars int
}

// RepairStats reports how much of the previous partition a repair
// preserved.
type RepairStats struct {
	// Repaired is false when the partition was built from scratch (no
	// memory, or repair disabled).
	Repaired bool
	// BlocksReused counts blocks whose degree profile matched the
	// previous build and were adopted without re-running selection;
	// BlocksRecut counts blocks re-run through the threshold and
	// refinement stages (new, changed, or oversized).
	BlocksReused int
	BlocksRecut  int
	// CutCarried / CutAdded split the final cut set into variables
	// carried over from the previous build and fresh cuts; CutDropped
	// counts previous cut syms that no longer qualify (variable gone,
	// or degree fell to the un-cut hysteresis floor).
	CutCarried int
	CutAdded   int
	CutDropped int
}

// Memory exports the partition's persistent identity for the next
// build's RepairPartition call. TunedBlockVars is left zero; the caller
// records the auto-tuned cap if one is in effect.
func (p *Partition) Memory() *PartitionMemory {
	degrees := factorDegrees(p.g)
	m := &PartitionMemory{Blocks: make(map[int32]BlockProfile, len(p.Blocks))}
	syms := make(map[int32]bool, len(p.Cut))
	for _, vid := range p.Cut {
		syms[p.g.vars[vid].Sym] = true
	}
	m.CutSyms = make([]int32, 0, len(syms))
	for sym := range syms {
		m.CutSyms = append(m.CutSyms, sym)
	}
	slices.Sort(m.CutSyms)
	for ci, block := range p.Blocks {
		m.Blocks[p.BlockKey(ci)] = blockProfile(p.g, degrees, block)
	}
	return m
}

func factorDegrees(g *Graph) []int {
	degrees := make([]int, g.NumVariables())
	for i := range degrees {
		degrees[i] = len(g.vars[i].factors)
	}
	return degrees
}

// blockProfile hashes the block's (sym, degree) pairs order-
// independently: entries are sorted before hashing so two builds that
// enumerate the same block in different variable-id order produce the
// same profile.
func blockProfile(g *Graph, degrees []int, block []int) BlockProfile {
	type sd struct {
		sym int32
		deg int
	}
	sds := make([]sd, len(block))
	for i, vid := range block {
		sds[i] = sd{g.vars[vid].Sym, degrees[vid]}
	}
	sort.Slice(sds, func(a, b int) bool {
		if sds[a].sym != sds[b].sym {
			return sds[a].sym < sds[b].sym
		}
		return sds[a].deg < sds[b].deg
	})
	h := uint64(fnvOffset64)
	for _, e := range sds {
		h = fnvMix(h, uint64(uint32(e.sym)))
		h = fnvMix(h, uint64(e.deg))
	}
	return BlockProfile{Vars: len(block), Hash: h}
}

// RepairPartition rebuilds a hub-cut partition on a new graph build by
// repairing the previous build's partition instead of re-deriving it:
//
//  1. The previous cut set is re-identified by variable sym. A carried
//     cut survives while its variable exists and its factor degree still
//     exceeds the MinHubDegree floor — percentile drift alone never
//     un-cuts a variable (hysteresis), so block identities do not
//     reshuffle when the degree distribution shifts slightly.
//  2. The residual blocks under the carried cut are fingerprinted
//     (BlockProfile) and compared to the memory. A block whose profile
//     matches and whose size respects MaxBlockVars is adopted as-is.
//  3. Hub selection (the degree-percentile threshold stage) and the
//     size-cap refinement re-run only over the variables of changed,
//     new, or oversized blocks; reused blocks share no variables with
//     them, so their membership — and thus their BlockKey, boundary
//     baseline, and warm messages — is untouched.
//
// With an unchanged graph the repair is a no-op: every block is reused
// and the partition is identical to the previous build's. Passing a nil
// memory falls back to NewHubCutPartition.
func RepairPartition(g *Graph, mem *PartitionMemory, opt PartitionOptions) (*Partition, RepairStats) {
	if mem == nil {
		return NewHubCutPartition(g, opt), RepairStats{}
	}
	opt.defaults()
	degrees := factorDegrees(g)
	n := g.NumVariables()

	// Stage 1: carry the cut set across the rebuild by sym.
	prevCut := make(map[int32]bool, len(mem.CutSyms))
	for _, sym := range mem.CutSyms {
		prevCut[sym] = true
	}
	var isCut []bool
	carried := make(map[int32]bool, len(prevCut))
	for vid := 0; vid < n; vid++ {
		sym := g.vars[vid].Sym
		if prevCut[sym] && degrees[vid] > opt.MinHubDegree {
			if isCut == nil {
				isCut = make([]bool, n)
			}
			isCut[vid] = true
			carried[sym] = true
		}
	}

	// Stage 2: fingerprint the residual blocks and find the changed ones.
	blocks := residualComponents(g, isCut)
	st := RepairStats{Repaired: true}
	var within []bool
	for _, block := range blocks {
		key := minBlockSym(g, block)
		prof := blockProfile(g, degrees, block)
		if prev, ok := mem.Blocks[key]; ok && prev == prof &&
			(opt.MaxBlockVars <= 0 || len(block) <= opt.MaxBlockVars) {
			st.BlocksReused++
			continue
		}
		st.BlocksRecut++
		if within == nil {
			within = make([]bool, n)
		}
		for _, vid := range block {
			within[vid] = true
		}
	}

	// Stage 3: re-run selection scoped to the changed region.
	if within != nil {
		thr := hubDegreeThreshold(degrees, opt)
		for vid := 0; vid < n; vid++ {
			if within[vid] && degrees[vid] > thr {
				if isCut == nil {
					isCut = make([]bool, n)
				}
				isCut[vid] = true
			}
		}
		if opt.MaxBlockVars > 0 {
			isCut = refineOversizedScoped(g, isCut, degrees, opt.MaxBlockVars, within)
		}
	}

	p := buildPartition(g, isCut, opt)
	for _, vid := range p.Cut {
		if carried[g.vars[vid].Sym] {
			st.CutCarried++
		} else {
			st.CutAdded++
		}
	}
	seen := make(map[int32]bool, len(p.Cut))
	for _, vid := range p.Cut {
		seen[g.vars[vid].Sym] = true
	}
	for sym := range prevCut {
		if !seen[sym] {
			st.CutDropped++
		}
	}
	return p, st
}

// hubDegreeThreshold places the threshold-stage cut bar exactly as
// NewHubCutPartition does: the degree at the configured percentile of
// the degree distribution, floored by MinHubDegree.
func hubDegreeThreshold(degrees []int, opt PartitionOptions) int {
	sorted := append([]int(nil), degrees...)
	sort.Ints(sorted)
	thr := 0
	if len(sorted) > 0 {
		thr = sorted[int(opt.HubDegreePercentile*float64(len(sorted)-1))]
	}
	if thr < opt.MinHubDegree {
		thr = opt.MinHubDegree
	}
	return thr
}

// AutoTuneMaxBlockVars derives a MaxBlockVars cap from a target
// blocks-per-worker ratio: roughly numVars/cap blocks come out of the
// size-cap refinement, so cap = numVars/(workers*targetBlocksPerWorker)
// aims for targetBlocksPerWorker schedulable blocks per pool worker —
// enough parallel slack that a straggler block cannot idle the pool,
// without shattering the graph into cut-dominated fragments. The result
// is clamped to [64, 384]; workers <= 0 reads GOMAXPROCS and
// targetBlocksPerWorker <= 0 takes 4.
func AutoTuneMaxBlockVars(numVars, workers, targetBlocksPerWorker int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if targetBlocksPerWorker <= 0 {
		targetBlocksPerWorker = 4
	}
	cap := numVars / (workers * targetBlocksPerWorker)
	if cap < 64 {
		cap = 64
	}
	if cap > 384 {
		cap = 384
	}
	return cap
}

// BlockFingerprints condenses, per block key, the block's variables'
// neighborhood-adjacency hashes (VarAdjacency of the same build) into
// one hash. Two builds whose fingerprints match for a block key hold an
// identical block — same variables in bit-identical factor
// neighborhoods — so the incremental path can clear the whole block
// with one comparison instead of walking every member variable, and a
// no-op repair keeps all blocks warm even though the partition object
// was rebuilt.
func (p *Partition) BlockFingerprints(adj map[int32]uint64) map[int32]uint64 {
	out := make(map[int32]uint64, len(p.Blocks))
	syms := make([]int32, 0, 64)
	for ci, block := range p.Blocks {
		syms = syms[:0]
		for _, vid := range block {
			syms = append(syms, p.g.vars[vid].Sym)
		}
		slices.Sort(syms)
		h := uint64(fnvOffset64)
		for _, sym := range syms {
			h = fnvMix(h, uint64(uint32(sym)))
			h = fnvMix(h, adj[sym])
		}
		out[p.BlockKey(ci)] = h
	}
	return out
}

// refineOversizedScoped is refineOversized restricted to the variables
// with within[vid] set: only blocks made entirely of scoped variables
// are size-capped, and the per-round component sweep unions only the
// scoped subgraph instead of the whole graph. Reused blocks from a
// repair share no variables with the scope, so they cannot be touched.
func refineOversizedScoped(g *Graph, isCut []bool, degrees []int, maxBlockVars int, within []bool) []bool {
	const maxRounds = 64
	for round := 0; round < maxRounds; round++ {
		blocks := scopedComponents(g, isCut, within)
		oversized := false
		for _, block := range blocks {
			if len(block) <= maxBlockVars {
				continue
			}
			oversized = true
			if isCut == nil {
				isCut = make([]bool, g.NumVariables())
			}
			want := (len(block) + maxBlockVars - 1) / maxBlockVars
			if bite := len(block) / 48; bite > want {
				want = bite
			}
			top := append([]int(nil), block...)
			sort.Slice(top, func(a, b int) bool {
				if degrees[top[a]] != degrees[top[b]] {
					return degrees[top[a]] > degrees[top[b]]
				}
				return g.vars[top[a]].Sym < g.vars[top[b]].Sym
			})
			for _, vid := range top[:want] {
				isCut[vid] = true
			}
		}
		if !oversized {
			break
		}
	}
	return isCut
}

// scopedComponents returns the connected components of the graph
// restricted to non-cut variables inside the scope. A nil scope means
// all variables (residualComponents is this with no scope).
func scopedComponents(g *Graph, isCut []bool, within []bool) [][]int {
	skip := func(vid int) bool {
		return (isCut != nil && isCut[vid]) || (within != nil && !within[vid])
	}
	parent := make([]int, len(g.vars))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, f := range g.factors {
		first := -1
		for _, vid := range f.Vars {
			if skip(vid) {
				continue
			}
			if first < 0 {
				first = vid
				continue
			}
			ra, rb := find(first), find(vid)
			if ra != rb {
				parent[rb] = ra
			}
		}
	}
	byRoot := map[int][]int{}
	for vid := range g.vars {
		if skip(vid) {
			continue
		}
		byRoot[find(vid)] = append(byRoot[find(vid)], vid)
	}
	out := make([][]int, 0, len(byRoot))
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}
