package factorgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxProductTreeMatchesExactMAP(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		g := New()
		v := []int{g.AddVariable("a", 2), g.AddVariable("b", 3), g.AddVariable("c", 2)}
		rnd := func(n int) []float64 {
			tb := make([]float64, n)
			for i := range tb {
				tb[i] = 0.1 + rng.Float64()
			}
			return tb
		}
		tableFactor(g, "ab", []int{v[0], v[1]}, rnd(6))
		tableFactor(g, "bc", []int{v[1], v[2]}, rnd(6))
		g.Finalize()

		mp := NewMaxProduct(g)
		got := mp.Run(RunOptions{MaxSweeps: 50})
		want, _ := g.ExactMAP()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: max-product %v != exact MAP %v", trial, got, want)
			}
		}
	}
}

func TestMaxProductRespectsClamp(t *testing.T) {
	g := New()
	a := g.AddVariable("a", 2)
	b := g.AddVariable("b", 2)
	tableFactor(g, "eq", []int{a, b}, []float64{10, 0.1, 0.1, 10})
	g.Finalize()
	g.Clamp(a, 1)
	mp := NewMaxProduct(g)
	got := mp.Run(RunOptions{MaxSweeps: 20})
	if got[a] != 1 || got[b] != 1 {
		t.Errorf("clamped MAP = %v, want [1 1]", got)
	}
}

func TestExactMAPSimple(t *testing.T) {
	g := New()
	a := g.AddVariable("a", 3)
	tableFactor(g, "f", []int{a}, []float64{1, 7, 2})
	g.Finalize()
	got, score := g.ExactMAP()
	if got[a] != 1 {
		t.Errorf("MAP = %v, want state 1", got)
	}
	if math.Abs(score-math.Log(7)) > 1e-9 {
		t.Errorf("score = %v, want log 7", score)
	}
}

func TestComponents(t *testing.T) {
	g := New()
	a := g.AddVariable("a", 2)
	b := g.AddVariable("b", 2)
	c := g.AddVariable("c", 2)
	d := g.AddVariable("d", 2)
	tableFactor(g, "ab", []int{a, b}, []float64{1, 1, 1, 1})
	tableFactor(g, "cd", []int{c, d}, []float64{1, 1, 1, 1})
	g.Finalize()
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %v, want 2", comps)
	}
	if len(comps[0]) != 2 || len(comps[1]) != 2 {
		t.Errorf("component sizes wrong: %v", comps)
	}
}

func TestComponentsSingletons(t *testing.T) {
	g := New()
	g.AddVariable("a", 2)
	g.AddVariable("b", 2)
	g.Finalize()
	if got := g.Components(); len(got) != 2 {
		t.Errorf("isolated variables should be singleton components: %v", got)
	}
}

func TestParallelBPMatchesSequential(t *testing.T) {
	// Several disconnected islands: the parallel per-component run must
	// produce the same beliefs as a whole-graph run.
	rng := rand.New(rand.NewSource(21))
	g := New()
	var vars []int
	for island := 0; island < 6; island++ {
		a := g.AddVariable("a", 2)
		b := g.AddVariable("b", 3)
		vars = append(vars, a, b)
		tb := make([]float64, 6)
		for i := range tb {
			tb[i] = 0.2 + rng.Float64()
		}
		tableFactor(g, "f", []int{a, b}, tb)
	}
	g.Finalize()

	seq := NewBP(g)
	seq.Run(RunOptions{MaxSweeps: 30})

	par := ParallelBP(g, RunOptions{MaxSweeps: 30}, 3)
	for _, vid := range vars {
		want := seq.VarBelief(vid)
		got := par[vid]
		for s := range want {
			if math.Abs(want[s]-got[s]) > 1e-9 {
				t.Fatalf("var %d: parallel %v vs sequential %v", vid, got, want)
			}
		}
	}
}

func TestParallelBPWorkerCounts(t *testing.T) {
	g := New()
	a := g.AddVariable("a", 2)
	tableFactor(g, "f", []int{a}, []float64{1, 3})
	g.Finalize()
	for _, w := range []int{0, 1, 8} {
		beliefs := ParallelBP(g, RunOptions{MaxSweeps: 10}, w)
		if math.Abs(beliefs[a][1]-0.75) > 1e-9 {
			t.Errorf("workers=%d: belief %v, want [0.25 0.75]", w, beliefs[a])
		}
	}
}

func TestMaxProductAgreesWithSumProductWhenPeaked(t *testing.T) {
	// With near-deterministic potentials, max-product and sum-product
	// decoding must agree.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		a := g.AddVariable("a", 2)
		b := g.AddVariable("b", 2)
		tb := make([]float64, 4)
		peak := rng.Intn(4)
		for i := range tb {
			tb[i] = 0.01
		}
		tb[peak] = 100
		tableFactor(g, "f", []int{a, b}, tb)
		g.Finalize()

		bp := NewBP(g)
		bp.Run(RunOptions{MaxSweeps: 30})
		sum := bp.Decode()

		mp := NewMaxProduct(g)
		max := mp.Run(RunOptions{MaxSweeps: 30})
		return sum[a] == max[a] && sum[b] == max[b]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
