package factorgraph

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// testSyms assigns stable symbol ids by variable name, standing in for
// the okb interning table the serving layer feeds AddVariableSym. The
// repair and transplant tests rebuild the "same" logical graph in
// different shapes and insertion orders, and cross-build identity lives
// in the sym — positional AddVariable ids would shift with the shape.
var (
	testSymMu sync.Mutex
	testSymID = map[string]int32{}
)

func testSym(name string) int32 {
	testSymMu.Lock()
	defer testSymMu.Unlock()
	id, ok := testSymID[name]
	if !ok {
		id = int32(len(testSymID))
		testSymID[name] = id
	}
	return id
}

// namedVar adds a variable whose sym is interned from its name, so
// rebuilding the graph with the same names yields the same identities.
func namedVar(g *Graph, name string, card int) int {
	id := g.AddVariableSym(testSym(name), card)
	g.vars[id].Name = name
	return id
}

// repairOpt is the partition configuration the repair tests share: the
// median-degree threshold with a floor of 3 cuts exactly the island
// hubs of islandWorld (degree 6) and never the leaves (degree <= 3).
func repairOpt() PartitionOptions {
	return PartitionOptions{
		HubDegreePercentile: 0.5,
		MinHubDegree:        3,
		MaxOuterRounds:      8,
		BoundaryTolerance:   1e-4,
	}
}

// islandWorld builds n uniquely-named hub islands: island i couples a
// hub variable hub<i> (degree 6) into a chain of six leaves v<i>_j
// (degree <= 3). Each island's factor tables are seeded by the island
// index alone, so island i is bit-identical across builds whatever the
// total island count — the rebuild shape a streaming ingest produces.
// extraLeaves > 0 appends that many extra leaves to island 0's chain,
// modelling a batch that touches an existing region.
func islandWorld(t *testing.T, n, extraLeaves int) *Graph {
	t.Helper()
	g := New()
	for island := 0; island < n; island++ {
		rng := rand.New(rand.NewSource(int64(1000 + island)))
		rnd := func() []float64 {
			tb := make([]float64, 4)
			for i := range tb {
				tb[i] = 0.2 + rng.Float64()
			}
			return tb
		}
		hub := namedVar(g, name2("hub", island, -1), 2)
		leaves := 6
		if island == 0 {
			leaves += extraLeaves
		}
		prev := -1
		for j := 0; j < leaves; j++ {
			v := namedVar(g, name2("v", island, j), 2)
			tableFactor(g, name2("h", island, j), []int{hub, v}, rnd())
			if prev >= 0 {
				tableFactor(g, name2("c", island, j), []int{prev, v}, rnd())
			}
			prev = v
		}
	}
	g.Finalize()
	return g
}

func name2(prefix string, i, j int) string {
	const digits = "0123456789"
	out := prefix
	for _, n := range []int{i, j} {
		if n < 0 {
			continue
		}
		out += "_"
		if n >= 10 {
			out += string(digits[n/10])
		}
		out += string(digits[n%10])
	}
	return out
}

func cutNames(g *Graph, p *Partition) map[string]bool {
	out := map[string]bool{}
	for _, vid := range p.Cut {
		out[g.Variable(vid).Name] = true
	}
	return out
}

func blockKeySet(p *Partition) map[int32]bool {
	out := map[int32]bool{}
	for ci := range p.Blocks {
		out[p.BlockKey(ci)] = true
	}
	return out
}

func TestRepairNoOpReusesEveryBlock(t *testing.T) {
	g1 := islandWorld(t, 8, 0)
	p1 := NewHubCutPartition(g1, repairOpt())
	if len(p1.Cut) != 8 {
		t.Fatalf("expected the 8 hubs cut, got %d cut variables", len(p1.Cut))
	}
	mem := p1.Memory()

	// Identical logical graph, fresh build: the repair must adopt every
	// block verbatim and re-derive nothing.
	g2 := islandWorld(t, 8, 0)
	p2, rs := RepairPartition(g2, mem, repairOpt())
	if !rs.Repaired {
		t.Fatalf("repair with memory reported Repaired=false")
	}
	if rs.BlocksRecut != 0 || rs.BlocksReused != p1.NumBlocks() {
		t.Fatalf("no-op repair re-cut blocks: %+v (want %d reused)", rs, p1.NumBlocks())
	}
	if rs.CutAdded != 0 || rs.CutDropped != 0 || rs.CutCarried != len(p1.Cut) {
		t.Fatalf("no-op repair changed the cut set: %+v", rs)
	}
	want, got := cutNames(g1, p1), cutNames(g2, p2)
	for name := range want {
		if !got[name] {
			t.Errorf("cut variable %q lost across no-op repair", name)
		}
	}
	wantKeys, gotKeys := blockKeySet(p1), blockKeySet(p2)
	for key := range wantKeys {
		if !gotKeys[key] {
			t.Errorf("block key %d lost across no-op repair", key)
		}
	}
}

func TestRepairedPartitionMatchesFromScratchWithinTolerance(t *testing.T) {
	// Satellite acceptance: after a batched ingest (two new islands plus
	// growth inside island 0), the repaired partition's beliefs must
	// stay within the boundary tolerance regime of a from-scratch
	// partition of the same graph.
	g1 := islandWorld(t, 8, 0)
	p1 := NewHubCutPartition(g1, repairOpt())
	mem := p1.Memory()

	g2 := islandWorld(t, 10, 2)
	repaired, rs := RepairPartition(g2, mem, repairOpt())
	if rs.BlocksReused == 0 {
		t.Fatalf("growth repair reused nothing: %+v", rs)
	}
	if rs.BlocksRecut == 0 {
		t.Fatalf("growth repair re-cut nothing despite new islands: %+v", rs)
	}
	scratch := NewHubCutPartition(g2, repairOpt())

	opt := RunOptions{MaxSweeps: 80, Tolerance: 1e-9}
	repBeliefs, repRun := ParallelBPPartition(g2, repaired, opt, 4)
	scrBeliefs, scrRun := ParallelBPPartition(g2, scratch, opt, 4)
	if !repRun.Converged || !scrRun.Converged {
		t.Fatalf("outer loops did not converge (repaired %v, scratch %v)", repRun.Converged, scrRun.Converged)
	}
	tol := repaired.BoundaryTolerance
	worst := 0.0
	for vid := 0; vid < g2.NumVariables(); vid++ {
		for s := range repBeliefs[vid] {
			if d := math.Abs(repBeliefs[vid][s] - scrBeliefs[vid][s]); d > worst {
				worst = d
			}
		}
	}
	if worst > 5*tol {
		t.Fatalf("repaired partition drifts %g from from-scratch partition (tolerance %g)", worst, tol)
	}
}

func TestRepairKeepsBlockKeysAcrossThreeConsecutiveRepairs(t *testing.T) {
	sizes := []int{6, 7, 8, 9}
	g := islandWorld(t, sizes[0], 0)
	p := NewHubCutPartition(g, repairOpt())
	mem := p.Memory()
	prevKeys := blockKeySet(p)
	prevCuts := cutNames(g, p)

	for step, n := range sizes[1:] {
		g = islandWorld(t, n, 0)
		var rs RepairStats
		p, rs = RepairPartition(g, mem, repairOpt())
		if !rs.Repaired || rs.BlocksReused == 0 {
			t.Fatalf("repair %d: nothing reused: %+v", step+1, rs)
		}
		keys := blockKeySet(p)
		for key := range prevKeys {
			if !keys[key] {
				t.Errorf("repair %d: block key %d not preserved", step+1, key)
			}
		}
		cuts := cutNames(g, p)
		for name := range prevCuts {
			if !cuts[name] {
				t.Errorf("repair %d: cut variable %q not preserved", step+1, name)
			}
		}
		mem = p.Memory()
		prevKeys, prevCuts = keys, cuts
	}
}

func TestParallelBoundaryRefreshIsWorkerCountInvariant(t *testing.T) {
	// 80 cut hubs clears the minParallelBoundary threshold, so the
	// workers=8 run exercises the chunked parallel refresh while
	// workers=1 runs it inline; the cut variables are independent given
	// frozen block messages, so the beliefs must agree bit for bit.
	g := islandWorld(t, 80, 0)
	p1 := NewHubCutPartition(g, repairOpt())
	if len(p1.Cut) < minParallelBoundary {
		t.Fatalf("world has %d cut variables, need >= %d to exercise the parallel path", len(p1.Cut), minParallelBoundary)
	}
	opt := RunOptions{MaxSweeps: 12, Tolerance: 1e-300}

	serial, _ := ParallelBPPartition(g, p1, opt, 1)
	p2 := NewHubCutPartition(g, repairOpt())
	parallel, _ := ParallelBPPartition(g, p2, opt, 8)

	for vid := 0; vid < g.NumVariables(); vid++ {
		for s := range serial[vid] {
			if serial[vid][s] != parallel[vid][s] {
				t.Fatalf("var %d state %d: parallel refresh %v != serial %v (must be bitwise identical)",
					vid, s, parallel[vid], serial[vid])
			}
		}
	}
}

func TestAutoTuneMaxBlockVars(t *testing.T) {
	cases := []struct {
		vars, workers, ratio, want int
	}{
		{10000, 8, 4, 312},  // 10000/32
		{100000, 8, 4, 384}, // clamped high
		{500, 8, 4, 64},     // clamped low
		{4096, 4, 0, 256},   // ratio defaults to 4: 4096/16
	}
	for _, c := range cases {
		if got := AutoTuneMaxBlockVars(c.vars, c.workers, c.ratio); got != c.want {
			t.Errorf("AutoTuneMaxBlockVars(%d, %d, %d) = %d, want %d", c.vars, c.workers, c.ratio, got, c.want)
		}
	}
}
