package factorgraph

import (
	"runtime"
	"sort"
	"sync"
)

// Components partitions the graph's variables into connected
// components (variables joined through shared factors). JOCL graphs
// decompose naturally — blocked phrase pairs form many small islands —
// so inference can run per component, in parallel. This realizes, in
// shared memory, the graph-segmentation idea the paper cites for
// distributed LBP (Jo et al., WSDM 2018).
func (g *Graph) Components() [][]int {
	parent := make([]int, len(g.vars))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, f := range g.factors {
		for _, vid := range f.Vars[1:] {
			union(f.Vars[0], vid)
		}
	}
	byRoot := map[int][]int{}
	for i := range g.vars {
		r := find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	comps := make([][]int, 0, len(roots))
	for _, r := range roots {
		comps = append(comps, byRoot[r])
	}
	return comps
}

// ParallelBP runs loopy BP over each connected component concurrently
// and returns per-variable beliefs. Messages never cross component
// boundaries, so the result is identical to a whole-graph run with the
// same options (up to floating-point association); the win is
// wall-clock time on multi-core machines.
//
// The caller's schedule, if any, is filtered per component. Workers
// default to GOMAXPROCS.
func ParallelBP(g *Graph, opt RunOptions, workers int) [][]float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	comps := g.Components()
	beliefs := make([][]float64, len(g.vars))

	// Component membership for factor filtering.
	compOf := make([]int, len(g.vars))
	for ci, comp := range comps {
		for _, vid := range comp {
			compOf[vid] = ci
		}
	}
	factorsOf := make([][]int, len(comps))
	for _, f := range g.factors {
		if len(f.Vars) == 0 {
			continue
		}
		ci := compOf[f.Vars[0]]
		factorsOf[ci] = append(factorsOf[ci], f.id)
	}

	type job struct{ ci int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One message buffer per worker, shared across that worker's
			// jobs (the graph structure and potentials are immutable and
			// shared by all workers). Reset touches the whole buffer, so
			// per-job cost is O(graph) regardless of component size —
			// acceptable because the schedule confines the expensive
			// message updates to the component.
			bp := NewBP(g)
			for j := range jobs {
				comp := comps[j.ci]
				sub := &Schedule{
					FactorGroups: filterGroups(opt.Schedule, factorsOf[j.ci], comp, true),
					VarGroups:    filterGroups(opt.Schedule, factorsOf[j.ci], comp, false),
				}
				bp.Reset()
				runOpt := opt
				runOpt.Schedule = sub
				bp.Run(runOpt)
				for _, vid := range comp {
					beliefs[vid] = bp.VarBelief(vid)
				}
			}
		}()
	}
	for ci := range comps {
		jobs <- job{ci}
	}
	close(jobs)
	wg.Wait()
	return beliefs
}

// filterGroups restricts a schedule's groups to one component; with a
// nil schedule it synthesizes single flooding groups.
func filterGroups(sched *Schedule, factors []int, vars []int, factorSide bool) [][]int {
	if sched == nil {
		if factorSide {
			return [][]int{factors}
		}
		return [][]int{vars}
	}
	inFactors := map[int]bool{}
	for _, f := range factors {
		inFactors[f] = true
	}
	inVars := map[int]bool{}
	for _, v := range vars {
		inVars[v] = true
	}
	var src [][]int
	if factorSide {
		src = sched.FactorGroups
	} else {
		src = sched.VarGroups
	}
	var out [][]int
	for _, grp := range src {
		var kept []int
		for _, id := range grp {
			if (factorSide && inFactors[id]) || (!factorSide && inVars[id]) {
				kept = append(kept, id)
			}
		}
		if len(kept) > 0 {
			out = append(out, kept)
		}
	}
	if len(out) == 0 {
		if factorSide {
			return [][]int{factors}
		}
		return [][]int{vars}
	}
	return out
}
