package factorgraph

import (
	"runtime"
	"sync"
)

// Components partitions the graph's variables into connected
// components (variables joined through shared factors). JOCL graphs
// decompose naturally — blocked phrase pairs form many small islands —
// so inference can run per component, in parallel. This realizes, in
// shared memory, the graph-segmentation idea the paper cites for
// distributed LBP (Jo et al., WSDM 2018). Partition generalizes this
// decomposition (see partition.go); Components remains the raw
// variable grouping — the residual components with nothing cut.
func (g *Graph) Components() [][]int {
	return residualComponents(g, nil)
}

// ParallelBP runs loopy BP over each connected component concurrently
// and returns per-variable beliefs. Messages never cross component
// boundaries, so the result is identical to a whole-graph run with the
// same options (up to the convergence test being per-component rather
// than global); the win is wall-clock time on multi-core machines.
//
// All workers share one BP: scoped runs on disjoint blocks touch
// disjoint message slices (see RunScoped), so the shared buffer is both
// safe and allocation-free per job, and the worker count cannot change
// the bits of the result.
//
// The caller's schedule, if any, is filtered per block. Workers
// default to GOMAXPROCS. This is ParallelBPPartition over the trivial
// no-cut partition.
func ParallelBP(g *Graph, opt RunOptions, workers int) [][]float64 {
	beliefs, _ := ParallelBPPartition(g, NewComponentPartition(g), opt, workers)
	return beliefs
}

// ParallelBPPartition runs partitioned loopy BP over every block of p
// concurrently (frozen-boundary outer rounds when p carries cut
// variables) and returns per-variable beliefs plus the run report.
func ParallelBPPartition(g *Graph, p *Partition, opt RunOptions, workers int) ([][]float64, PartitionRun) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	bp := NewBP(g)
	pr := RunPartition(bp, p, opt, workers, nil)
	beliefs := make([][]float64, len(g.vars))
	for vid := range beliefs {
		beliefs[vid] = bp.VarBelief(vid)
	}
	return beliefs, pr
}

// ComponentRun reports one block's scoped inference outcome.
type ComponentRun struct {
	Converged bool
	Sweeps    int
}

// RunComponents executes one scoped pass over the selected blocks of p
// on a bounded worker pool sharing bp's message state, returning the
// per-block outcomes (indexed like p.Blocks; skipped blocks are zero).
// A nil selection runs every block. Cut variables, if any, stay frozen
// throughout — this is the inner pass of RunPartition, which adds the
// boundary refresh between rounds.
//
// The pool is sized to min(workers, len(selected)), and a single
// selected block runs inline: serving sessions mostly touch one or two
// blocks per batch, where per-call goroutine/channel setup used to
// dominate the scoped sweeps themselves.
func RunComponents(bp *BP, p *Partition, opt RunOptions, workers int, selected []int) []ComponentRun {
	if selected == nil {
		selected = make([]int, len(p.Blocks))
		for ci := range p.Blocks {
			selected[ci] = ci
		}
	}
	out := make([]ComponentRun, len(p.Blocks))
	if len(selected) == 0 {
		return out
	}
	scheds := p.blockSchedules(opt.Schedule)
	if len(selected) == 1 {
		ci := selected[0]
		conv, sweeps := bp.runScopedScheduled(opt, p.Blocks[ci], scheds[ci])
		out[ci] = ComponentRun{Converged: conv, Sweeps: sweeps}
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(selected) {
		workers = len(selected)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range jobs {
				conv, sweeps := bp.runScopedScheduled(opt, p.Blocks[ci], scheds[ci])
				out[ci] = ComponentRun{Converged: conv, Sweeps: sweeps}
			}
		}()
	}
	for _, ci := range selected {
		jobs <- ci
	}
	close(jobs)
	wg.Wait()
	return out
}

// filterGroups restricts a schedule's groups to one block; with a
// nil schedule it synthesizes single flooding groups. RunScoped uses
// it for ad-hoc scopes; partitioned runs use the precomputed per-block
// schedules instead (Partition.blockSchedules).
func filterGroups(sched *Schedule, factors []int, vars []int, factorSide bool) [][]int {
	if sched == nil {
		if factorSide {
			return [][]int{factors}
		}
		return [][]int{vars}
	}
	inFactors := map[int]bool{}
	for _, f := range factors {
		inFactors[f] = true
	}
	inVars := map[int]bool{}
	for _, v := range vars {
		inVars[v] = true
	}
	var src [][]int
	if factorSide {
		src = sched.FactorGroups
	} else {
		src = sched.VarGroups
	}
	var out [][]int
	for _, grp := range src {
		var kept []int
		for _, id := range grp {
			if (factorSide && inFactors[id]) || (!factorSide && inVars[id]) {
				kept = append(kept, id)
			}
		}
		if len(kept) > 0 {
			out = append(out, kept)
		}
	}
	if len(out) == 0 {
		if factorSide {
			return [][]int{factors}
		}
		return [][]int{vars}
	}
	return out
}
