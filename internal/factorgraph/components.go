package factorgraph

import (
	"runtime"
	"sort"
	"sync"
)

// Components partitions the graph's variables into connected
// components (variables joined through shared factors). JOCL graphs
// decompose naturally — blocked phrase pairs form many small islands —
// so inference can run per component, in parallel. This realizes, in
// shared memory, the graph-segmentation idea the paper cites for
// distributed LBP (Jo et al., WSDM 2018).
func (g *Graph) Components() [][]int {
	parent := make([]int, len(g.vars))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, f := range g.factors {
		for _, vid := range f.Vars[1:] {
			union(f.Vars[0], vid)
		}
	}
	byRoot := map[int][]int{}
	for i := range g.vars {
		r := find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	comps := make([][]int, 0, len(roots))
	for _, r := range roots {
		comps = append(comps, byRoot[r])
	}
	return comps
}

// ParallelBP runs loopy BP over each connected component concurrently
// and returns per-variable beliefs. Messages never cross component
// boundaries, so the result is identical to a whole-graph run with the
// same options (up to the convergence test being per-component rather
// than global); the win is wall-clock time on multi-core machines.
//
// All workers share one BP: scoped runs on disjoint components touch
// disjoint message slices (see RunScoped), so the shared buffer is both
// safe and allocation-free per job, and the worker count cannot change
// the bits of the result.
//
// The caller's schedule, if any, is filtered per component. Workers
// default to GOMAXPROCS.
func ParallelBP(g *Graph, opt RunOptions, workers int) [][]float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	idx := NewComponentIndex(g)
	bp := NewBP(g)
	RunComponents(bp, idx, opt, workers, nil)
	beliefs := make([][]float64, len(g.vars))
	for vid := range beliefs {
		beliefs[vid] = bp.VarBelief(vid)
	}
	return beliefs
}

// ComponentRun reports one component's scoped inference outcome.
type ComponentRun struct {
	Converged bool
	Sweeps    int
}

// RunComponents executes RunScoped for the selected components of idx
// on a bounded worker pool sharing bp's message state, returning the
// per-component outcomes (indexed like idx.Comps; skipped components
// are zero). A nil selection runs every component.
func RunComponents(bp *BP, idx *ComponentIndex, opt RunOptions, workers int, selected []int) []ComponentRun {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if selected == nil {
		selected = make([]int, len(idx.Comps))
		for ci := range idx.Comps {
			selected[ci] = ci
		}
	}
	out := make([]ComponentRun, len(idx.Comps))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range jobs {
				conv, sweeps := bp.RunScoped(opt, idx.Comps[ci], idx.Factors[ci])
				out[ci] = ComponentRun{Converged: conv, Sweeps: sweeps}
			}
		}()
	}
	for _, ci := range selected {
		jobs <- ci
	}
	close(jobs)
	wg.Wait()
	return out
}

// filterGroups restricts a schedule's groups to one component; with a
// nil schedule it synthesizes single flooding groups.
func filterGroups(sched *Schedule, factors []int, vars []int, factorSide bool) [][]int {
	if sched == nil {
		if factorSide {
			return [][]int{factors}
		}
		return [][]int{vars}
	}
	inFactors := map[int]bool{}
	for _, f := range factors {
		inFactors[f] = true
	}
	inVars := map[int]bool{}
	for _, v := range vars {
		inVars[v] = true
	}
	var src [][]int
	if factorSide {
		src = sched.FactorGroups
	} else {
		src = sched.VarGroups
	}
	var out [][]int
	for _, grp := range src {
		var kept []int
		for _, id := range grp {
			if (factorSide && inFactors[id]) || (!factorSide && inVars[id]) {
				kept = append(kept, id)
			}
		}
		if len(kept) > 0 {
			out = append(out, kept)
		}
	}
	if len(out) == 0 {
		if factorSide {
			return [][]int{factors}
		}
		return [][]int{vars}
	}
	return out
}
