package factorgraph

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"time"
)

// This file defines Partition, the single partitioning abstraction the
// scoped-inference machinery runs on. A partition splits a graph's
// variables into blocks whose message passing never interacts within
// one run, plus an optional set of cut variables sitting between
// blocks. Exact connected components are the trivial no-cut partition
// (NewComponentPartition); hub-cut partitions (NewHubCutPartition)
// additionally remove the few highest-degree variables from the
// blocks, shattering hub-fused graphs back into many small islands at
// a bounded approximation cost.
//
// Cut variables are owned by no block. During a block run their
// outgoing messages stay frozen at their last values (uniform after
// NewBP, transplanted after Import, or whatever the previous outer
// round left), so blocks decouple; between outer rounds the cut
// variables' messages are refreshed from the blocks' new factor
// messages and blocks whose boundary moved re-run, until the cut
// beliefs change by less than BoundaryTolerance or MaxOuterRounds is
// reached. With an empty cut set this degenerates to one exact pass
// over the components, bit-identical to the pre-partition code path.

// PartitionOptions tunes hub-cut selection and the frozen-boundary
// outer loop. Zero values select the defaults noted per field.
type PartitionOptions struct {
	// HubDegreePercentile places the degree threshold: variables whose
	// factor degree strictly exceeds the degree at this percentile of
	// the graph's degree distribution become cut candidates. Default
	// 0.99.
	HubDegreePercentile float64
	// MinHubDegree is an absolute floor: a variable is never cut unless
	// its degree exceeds this, whatever the percentile says. It keeps
	// small or uniformly sparse graphs uncut. Default 8.
	MinHubDegree int
	// MaxBlockVars caps block size: after the threshold stage, any block
	// still larger than this is refined by repeatedly cutting its
	// highest-degree variables until it splits below the cap (or the
	// refinement round limit is hit). Realistic graphs need this stage:
	// the consistency-factor web is an expander, so no small set of
	// global hubs disconnects it, but cutting the locally densest
	// variables block by block does. 0 takes the default 256; negative
	// disables refinement (threshold cuts only).
	MaxBlockVars int
	// MaxOuterRounds bounds the block-run / boundary-refresh iterations
	// of RunPartition. Default 4.
	MaxOuterRounds int
	// BoundaryTolerance is the convergence threshold on cut-variable
	// belief change between outer rounds. Default 0.005.
	BoundaryTolerance float64
}

func (o *PartitionOptions) defaults() {
	if o.HubDegreePercentile <= 0 || o.HubDegreePercentile >= 1 {
		o.HubDegreePercentile = 0.99
	}
	if o.MinHubDegree <= 0 {
		o.MinHubDegree = 8
	}
	if o.MaxBlockVars == 0 {
		o.MaxBlockVars = 256
	}
	if o.MaxOuterRounds <= 0 {
		o.MaxOuterRounds = 4
	}
	if o.BoundaryTolerance <= 0 {
		o.BoundaryTolerance = 0.005
	}
}

// Partition is a decomposition of a finalized graph into blocks of
// variables plus an optional cut set, together with everything scoped
// inference needs per block: the block's factors, its boundary (the
// adjacent cut variables), and memoized per-block message schedules.
type Partition struct {
	Blocks  [][]int // variable ids per block, ascending
	Factors [][]int // factor ids per block, ascending
	BlockOf []int   // variable id -> block index; cut variables hold -1
	Cut     []int   // cut variable ids, ascending
	// CutFactors are factors all of whose variables are cut; they belong
	// to no block and are updated during the boundary refresh.
	CutFactors []int
	// Boundary lists, per block, the cut variable ids adjacent to the
	// block's factors, ascending.
	Boundary [][]int

	// MaxOuterRounds / BoundaryTolerance govern RunPartition's frozen-
	// boundary outer loop (irrelevant when Cut is empty).
	MaxOuterRounds    int
	BoundaryTolerance float64

	g           *Graph
	factorBlock []int   // factor id -> block index (-1 for CutFactors)
	cutBlocks   [][]int // per index into Cut: blocks bordering that cut variable

	// Per-block schedules filtered from one caller schedule are
	// precomputed on first use and reused by every scoped run of this
	// partition (all sweeps and outer rounds of a RunPartition call) —
	// the per-scoped-run membership maps the old filterGroups rebuilt
	// showed up in serving profiles.
	schedMu    sync.Mutex
	schedFor   *Schedule
	schedValid bool
	scheds     []*Schedule
}

// NewComponentPartition decomposes a finalized graph into its exact
// connected components: the trivial no-cut partition. RunPartition on
// it reproduces whole-graph inference bit for bit (see RunComponents).
func NewComponentPartition(g *Graph) *Partition {
	opt := PartitionOptions{}
	opt.defaults()
	return buildPartition(g, nil, opt)
}

// NewHubCutPartition decomposes a finalized graph after removing its
// hub variables, in two degree-driven stages. The threshold stage cuts
// every variable whose factor degree exceeds both the configured
// degree percentile and the MinHubDegree floor — the global hubs. The
// refinement stage then size-caps the blocks: while a residual block
// exceeds MaxBlockVars, its highest-degree variables are cut too. The
// second stage is what makes segmentation effective on realistic JOCL
// graphs: fact-inclusion factors fuse them through popular-phrase
// hubs, but the consistency-factor web underneath is an expander with
// no small global separator, so hubs must be cut relative to the block
// they hold together, not only relative to the whole graph. If nothing
// qualifies the result is the plain component partition.
//
// Selection is deterministic (degree, then variable sym), so two
// builds of the same logical graph cut the same phrases' variables
// regardless of id shifts — the stability the serving layer's warm
// reuse depends on.
func NewHubCutPartition(g *Graph, opt PartitionOptions) *Partition {
	opt.defaults()
	n := g.NumVariables()
	degrees := factorDegrees(g)
	thr := hubDegreeThreshold(degrees, opt)
	var isCut []bool
	for i, d := range degrees {
		if d > thr {
			if isCut == nil {
				isCut = make([]bool, n)
			}
			isCut[i] = true
		}
	}
	if opt.MaxBlockVars > 0 {
		isCut = refineOversized(g, isCut, degrees, opt.MaxBlockVars)
	}
	return buildPartition(g, isCut, opt)
}

// refineOversized cuts, round by round, the highest-degree variables
// of every residual block still larger than maxBlockVars, until all
// blocks fit or the round limit is reached (a safety valve). Each
// round removes ~1/48 of an oversized block (at least
// ceil(size/maxBlockVars)): the consistency web is an expander, so
// shattering a fused block takes cuts proportional to its size, and
// smaller per-round bites would exhaust the round budget before the
// cap is reached. Repairs run the same loop scoped to changed blocks
// only (refineOversizedScoped in repair.go).
func refineOversized(g *Graph, isCut []bool, degrees []int, maxBlockVars int) []bool {
	return refineOversizedScoped(g, isCut, degrees, maxBlockVars, nil)
}

// residualComponents returns the connected components of the graph
// restricted to non-cut variables.
func residualComponents(g *Graph, isCut []bool) [][]int {
	return scopedComponents(g, isCut, nil)
}

// buildPartition unions the non-cut variables through shared factors
// and assembles the block/boundary indexes. A nil isCut means no cuts.
func buildPartition(g *Graph, isCut []bool, opt PartitionOptions) *Partition {
	if !g.finalized {
		panic("factorgraph: partition before Finalize")
	}
	cut := func(vid int) bool { return isCut != nil && isCut[vid] }

	p := &Partition{
		Blocks:            residualComponents(g, isCut),
		BlockOf:           make([]int, len(g.vars)),
		MaxOuterRounds:    opt.MaxOuterRounds,
		BoundaryTolerance: opt.BoundaryTolerance,
		g:                 g,
	}
	for vid := range g.vars {
		if cut(vid) {
			p.BlockOf[vid] = -1
			p.Cut = append(p.Cut, vid)
		}
	}
	for ci, block := range p.Blocks {
		for _, vid := range block {
			p.BlockOf[vid] = ci
		}
	}

	p.Factors = make([][]int, len(p.Blocks))
	p.factorBlock = make([]int, len(g.factors))
	boundarySets := make([]map[int]bool, len(p.Blocks))
	for _, f := range g.factors {
		ci := -1
		for _, vid := range f.Vars {
			if !cut(vid) {
				ci = p.BlockOf[vid]
				break
			}
		}
		p.factorBlock[f.id] = ci
		if ci < 0 {
			p.CutFactors = append(p.CutFactors, f.id)
			continue
		}
		p.Factors[ci] = append(p.Factors[ci], f.id)
		for _, vid := range f.Vars {
			if cut(vid) {
				if boundarySets[ci] == nil {
					boundarySets[ci] = map[int]bool{}
				}
				boundarySets[ci][vid] = true
			}
		}
	}
	p.Boundary = make([][]int, len(p.Blocks))
	for ci, set := range boundarySets {
		b := make([]int, 0, len(set))
		for vid := range set {
			b = append(b, vid)
		}
		sort.Ints(b)
		p.Boundary[ci] = b
	}

	if len(p.Cut) > 0 {
		cutIdx := make(map[int]int, len(p.Cut))
		for i, vid := range p.Cut {
			cutIdx[vid] = i
		}
		p.cutBlocks = make([][]int, len(p.Cut))
		for ci, b := range p.Boundary {
			for _, vid := range b {
				i := cutIdx[vid]
				p.cutBlocks[i] = append(p.cutBlocks[i], ci)
			}
		}
	}
	return p
}

// NumBlocks returns the number of blocks.
func (p *Partition) NumBlocks() int { return len(p.Blocks) }

// BlockKey returns a sym-based identity for a block that is stable
// across graph rebuilds (variable ids shift as phrases are inserted;
// syms follow the phrases): the smallest variable sym in the block.
// It keys the boundary-belief baselines the serving layer stores in
// WarmState and the block profiles in PartitionMemory.
func (p *Partition) BlockKey(ci int) int32 {
	return minBlockSym(p.g, p.Blocks[ci])
}

// minBlockSym is the one definition of the block-key rule; repair
// looks memory entries up by the same function that produced them.
func minBlockSym(g *Graph, block []int) int32 {
	key := int32(-1)
	for _, vid := range block {
		if sym := g.vars[vid].Sym; key == -1 || sym < key {
			key = sym
		}
	}
	return key
}

// FactorBlock returns the block index owning factor fid, or -1 for cut
// factors. The serving layer uses it to decide which factors' exported
// messages can be carried over by reference.
func (p *Partition) FactorBlock(fid int) int { return p.factorBlock[fid] }

// blockSchedules filters the caller's schedule into one sub-schedule
// per block (cut variables fall out of every block, which is what
// freezes their outgoing messages during block runs). The result is
// memoized for the schedule pointer, so every scoped run of this
// partition — all blocks, sweeps, and outer rounds of a RunPartition
// call — reuses one filtering pass instead of rebuilding membership
// maps per scoped run. (A partition lives for one build; the memo does
// not span ingests.)
func (p *Partition) blockSchedules(sched *Schedule) []*Schedule {
	p.schedMu.Lock()
	defer p.schedMu.Unlock()
	if p.schedValid && p.schedFor == sched {
		return p.scheds
	}
	out := make([]*Schedule, len(p.Blocks))
	if sched == nil {
		for ci := range p.Blocks {
			out[ci] = &Schedule{
				FactorGroups: [][]int{p.Factors[ci]},
				VarGroups:    [][]int{p.Blocks[ci]},
			}
		}
	} else {
		fGroups := p.splitGroups(sched.FactorGroups, true)
		vGroups := p.splitGroups(sched.VarGroups, false)
		for ci := range p.Blocks {
			fg, vg := fGroups[ci], vGroups[ci]
			if len(fg) == 0 {
				fg = [][]int{p.Factors[ci]}
			}
			if len(vg) == 0 {
				vg = [][]int{p.Blocks[ci]}
			}
			out[ci] = &Schedule{FactorGroups: fg, VarGroups: vg}
		}
	}
	p.schedFor, p.scheds, p.schedValid = sched, out, true
	return out
}

// splitGroups buckets each schedule group's members by block,
// preserving group order and dropping groups that come up empty for a
// block (mirroring the old filterGroups semantics).
func (p *Partition) splitGroups(groups [][]int, factorSide bool) [][][]int {
	out := make([][][]int, len(p.Blocks))
	for _, grp := range groups {
		buckets := map[int][]int{}
		var touched []int
		for _, id := range grp {
			var ci int
			if factorSide {
				ci = p.factorBlock[id]
			} else {
				ci = p.BlockOf[id]
			}
			if ci < 0 {
				continue
			}
			if _, ok := buckets[ci]; !ok {
				touched = append(touched, ci)
			}
			buckets[ci] = append(buckets[ci], id)
		}
		for _, ci := range touched {
			out[ci] = append(out[ci], buckets[ci])
		}
	}
	return out
}

// PartitionRun reports one RunPartition execution.
type PartitionRun struct {
	// Blocks holds the latest scoped outcome per block (indexed like
	// p.Blocks; blocks never selected are zero).
	Blocks []ComponentRun
	// OuterRounds counts block-run/boundary-refresh iterations (1 for
	// no-cut partitions). BlocksRun totals block executions across all
	// rounds; SweepsTotal/SweepsMax aggregate their sweeps.
	OuterRounds int
	BlocksRun   int
	SweepsTotal int
	SweepsMax   int
	// BoundaryResidual is the final refresh's max cut-belief change;
	// Converged reports whether it fell below BoundaryTolerance (no-cut
	// partitions: whether every selected block converged).
	BoundaryResidual float64
	Converged        bool
	// Elapsed is the wall-clock cost of the whole execution (all outer
	// rounds and boundary refreshes included).
	Elapsed time.Duration
	// Unsettled lists the indexes into p.Cut whose beliefs were still
	// moving beyond tolerance when MaxOuterRounds ran out: the blocks
	// bordering them were left with refreshed frozen inputs they never
	// re-ran against, so callers caching state must not record those
	// blocks as settled (see RunIncremental's baseline pruning).
	Unsettled []int
}

// RunPartition executes scoped inference for the selected blocks (nil
// selects all) on a bounded worker pool sharing bp's message state.
// For a no-cut partition this is exactly one RunComponents pass. With
// cut variables it alternates block runs with boundary refreshes: cut
// variables' outgoing messages stay frozen while blocks run, then are
// recomputed from the blocks' new factor messages; blocks bordering a
// cut variable whose belief moved more than BoundaryTolerance re-run
// in the next round, until the boundary settles or MaxOuterRounds is
// reached. An empty (non-nil) selection returns immediately without
// touching any message.
func RunPartition(bp *BP, p *Partition, opt RunOptions, workers int, selected []int) PartitionRun {
	t0 := time.Now()
	pr := runPartition(bp, p, opt, workers, selected)
	pr.Elapsed = time.Since(t0)
	return pr
}

func runPartition(bp *BP, p *Partition, opt RunOptions, workers int, selected []int) PartitionRun {
	pr := PartitionRun{Blocks: make([]ComponentRun, len(p.Blocks))}
	if selected == nil {
		selected = make([]int, len(p.Blocks))
		for ci := range p.Blocks {
			selected[ci] = ci
		}
	}
	if len(selected) == 0 {
		return pr
	}

	runRound := func(sel []int) {
		runs := RunComponents(bp, p, opt, workers, sel)
		for _, ci := range sel {
			pr.Blocks[ci] = runs[ci]
			pr.SweepsTotal += runs[ci].Sweeps
			if runs[ci].Sweeps > pr.SweepsMax {
				pr.SweepsMax = runs[ci].Sweeps
			}
		}
		pr.BlocksRun += len(sel)
	}

	if len(p.Cut) == 0 {
		runRound(selected)
		pr.OuterRounds = 1
		pr.Converged = true
		for _, ci := range selected {
			if !pr.Blocks[ci].Converged {
				pr.Converged = false
				break
			}
		}
		return pr
	}

	// Baseline the cut beliefs so the first refresh measures real
	// movement, not distance from the zeroed prevBelief buffers.
	var buf [stackCard]float64
	for _, vid := range p.Cut {
		b := bp.varBeliefInto(vid, beliefScratch(buf[:], bp.g.vars[vid].Card))
		copy(bp.prevVar(vid), b)
	}
	sel := selected
	for round := 1; ; round++ {
		runRound(sel)
		pr.OuterRounds = round
		residual, moved := bp.refreshBoundary(p, opt.Damping, workers)
		pr.BoundaryResidual = residual
		if len(moved) == 0 {
			pr.Converged = true
			return pr
		}
		if round >= p.MaxOuterRounds {
			pr.Unsettled = moved
			return pr
		}
		sel = p.BlocksBordering(moved)
	}
}

// BlocksBordering returns the sorted block set adjacent to the given
// indexes into p.Cut.
func (p *Partition) BlocksBordering(cutIdxs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, i := range cutIdxs {
		for _, ci := range p.cutBlocks[i] {
			if !seen[ci] {
				seen[ci] = true
				out = append(out, ci)
			}
		}
	}
	sort.Ints(out)
	return out
}

// minParallelBoundary is the cut-set size below which refreshBoundary
// runs inline: goroutine fan-out on a handful of cut variables costs
// more than the message recomputations it spreads.
const minParallelBoundary = 64

// parallelRanges splits [0, n) into one contiguous chunk per worker and
// runs fn on the chunks concurrently; small inputs (or one worker) run
// inline. fn must touch only disjoint state per index.
func parallelRanges(n, workers int, fn func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || n < minParallelBoundary {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// refreshBoundary recomputes the cut variables' view of the graph
// after a round of block runs: factors living entirely between cut
// variables update first, then every cut variable's outgoing messages
// are recomputed from the new factor messages. It returns the maximum
// cut-belief change and the indexes (into p.Cut) of variables that
// moved more than the boundary tolerance.
//
// Both phases parallelize over the given worker count once the cut set
// reaches minParallelBoundary. Given frozen block messages the cut
// variables are independent: a cut factor's update writes only its own
// outgoing messages, and a cut variable's update writes only its own
// slices of msgVF (two cut variables sharing a factor write different
// positions), so each phase's results are bitwise identical to the
// serial sweep for any worker count. Deltas are collected per index and
// aggregated serially, keeping the moved list deterministic.
func (bp *BP) refreshBoundary(p *Partition, damping float64, workers int) (float64, []int) {
	parallelRanges(len(p.CutFactors), workers, func(lo, hi int) {
		for _, fid := range p.CutFactors[lo:hi] {
			bp.updateFactorMessages(fid, damping)
		}
	})
	deltas := make([]float64, len(p.Cut))
	parallelRanges(len(p.Cut), workers, func(lo, hi int) {
		var buf [stackCard]float64
		for i := lo; i < hi; i++ {
			vid := p.Cut[i]
			b := bp.varBeliefInto(vid, beliefScratch(buf[:], bp.g.vars[vid].Card))
			prev := bp.prevVar(vid)
			delta := 0.0
			for s, v := range b {
				if d := math.Abs(v - prev[s]); d > delta {
					delta = d
				}
			}
			copy(prev, b)
			deltas[i] = delta
			bp.updateVariableMessages(vid)
		}
	})
	maxDelta := 0.0
	var moved []int
	for i, delta := range deltas {
		if delta > maxDelta {
			maxDelta = delta
		}
		if delta > p.BoundaryTolerance {
			moved = append(moved, i)
		}
	}
	return maxDelta, moved
}

// BoundaryBeliefs snapshots, per block with a non-empty boundary, the
// current beliefs of the block's adjacent cut variables, keyed by
// BlockKey and cut-variable sym (both stable across the id shifts of
// a rebuild). The serving layer stores, for each block, the boundary
// beliefs the block last actually ran against: on a later build the
// block may be served warm only while the imported cut beliefs stay
// within BoundaryTolerance of that baseline, so sub-tolerance drift
// cannot silently accumulate across ingests — the baseline moves only
// when the block re-runs.
func (p *Partition) BoundaryBeliefs(bp *BP) map[int32]map[int32][]float64 {
	out := map[int32]map[int32][]float64{}
	cache := map[int][]float64{}
	for ci := range p.Blocks {
		if len(p.Boundary[ci]) == 0 {
			continue
		}
		m := make(map[int32][]float64, len(p.Boundary[ci]))
		for _, vid := range p.Boundary[ci] {
			b, ok := cache[vid]
			if !ok {
				b = bp.VarBelief(vid)
				cache[vid] = b
			}
			m[p.g.vars[vid].Sym] = b
		}
		out[p.BlockKey(ci)] = m
	}
	return out
}

// WithinBoundaryTolerance reports whether every belief in cur has a
// counterpart in base within the partition's BoundaryTolerance
// (L-infinity). Missing or reshaped entries count as out of tolerance.
func (p *Partition) WithinBoundaryTolerance(base, cur map[int32][]float64) bool {
	if len(base) != len(cur) {
		return false
	}
	for sym, c := range cur {
		b, ok := base[sym]
		if !ok || len(b) != len(c) {
			return false
		}
		for s := range c {
			if math.Abs(c[s]-b[s]) > p.BoundaryTolerance {
				return false
			}
		}
	}
	return true
}
