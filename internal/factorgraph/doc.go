// Package factorgraph implements the probabilistic-graphical-model
// substrate of JOCL: discrete factor graphs with exponential-linear
// factor functions (Formula 1 of the paper), sum-product loopy belief
// propagation with damping and caller-defined message schedules
// (Section 3.4), marginal and factor beliefs, exact enumeration for
// small graphs (used as a test oracle), and maximum-likelihood weight
// learning via the clamped-vs-free expectation gradient (Formula 6).
//
// The package is generic: it knows nothing about canonicalization or
// linking. JOCL's internal/core package builds its graph on top of it.
//
// # Layout
//
//   - graph.go — Graph, Variable, Factor construction and Finalize
//   - bp.go — BP message state, Run, beliefs, Decode
//   - exact.go, maxproduct.go, learn.go — enumeration oracle, MAP
//     decoding, weight learning
//   - components.go — connected components, ParallelBP worker pool,
//     RunComponents (one scoped pass over selected blocks)
//   - partition.go — Partition, the single partitioning abstraction
//     scoped inference runs on: exact components (no cut) or hub-cut
//     blocks with frozen-boundary outer rounds (RunPartition)
//   - repair.go — persistent partitions: PartitionMemory,
//     RepairPartition (incremental cut repair across graph rebuilds),
//     AutoTuneMaxBlockVars, per-block fingerprints
//   - incremental.go — RunScoped, factor Signatures, VarAdjacency, and
//     WarmState: transplantable message state keyed by factor identity,
//     which is what lets a serving session re-run only the blocks a
//     triple batch touched
//
// # Invariants the streaming path relies on
//
// One BP sweep is a pure function of the previous sweep's messages, and
// messages never cross block boundaries (cut variables' outgoing
// messages are frozen while blocks run), so scoped runs on disjoint
// blocks may share one BP's buffers — serially or in parallel — and
// produce bitwise-identical messages either way. Factor signatures and
// variable names are stable across rebuilds while variable ids are not;
// everything that must survive a rebuild (warm messages, block keys,
// cut sets, boundary baselines) is therefore keyed by name or
// signature, never by id.
package factorgraph
