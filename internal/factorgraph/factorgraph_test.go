package factorgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// tableFactor adds a factor whose potential equals the given table
// exactly: one feature returning log(table[a]) with a unit weight.
func tableFactor(g *Graph, name string, vars []int, table []float64) int {
	w := g.AddWeight(name+".w", 1)
	return g.AddFactor(name, vars, []int{w}, func(states []int) []float64 {
		// Recompute the assignment index locally (mixed radix in the
		// same order AddFactor enumerates).
		idx, mult := 0, 1
		for k, vid := range vars {
			idx += states[k] * mult
			mult *= g.Variable(vid).Card
		}
		return []float64{math.Log(table[idx])}
	})
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleFactorMarginal(t *testing.T) {
	g := New()
	x := g.AddVariable("x", 2)
	tableFactor(g, "f", []int{x}, []float64{1, 3})
	g.Finalize()
	bp := NewBP(g)
	bp.Run(RunOptions{})
	b := bp.VarBelief(x)
	if !almostEqual(b[0], 0.25, 1e-9) || !almostEqual(b[1], 0.75, 1e-9) {
		t.Errorf("belief = %v, want [0.25 0.75]", b)
	}
}

func TestTreeExactAgreement(t *testing.T) {
	// Chain x0 - x1 - x2 with random potentials: BP is exact on trees.
	rng := rand.New(rand.NewSource(7))
	g := New()
	v := []int{g.AddVariable("x0", 2), g.AddVariable("x1", 3), g.AddVariable("x2", 2)}
	rnd := func(n int) []float64 {
		tb := make([]float64, n)
		for i := range tb {
			tb[i] = 0.1 + rng.Float64()
		}
		return tb
	}
	tableFactor(g, "f01", []int{v[0], v[1]}, rnd(6))
	tableFactor(g, "f12", []int{v[1], v[2]}, rnd(6))
	tableFactor(g, "f1", []int{v[1]}, rnd(3))
	g.Finalize()

	bp := NewBP(g)
	if !bp.Run(RunOptions{MaxSweeps: 100}) {
		t.Fatal("BP on a tree should converge")
	}
	exact := g.ExactMarginals()
	for _, vid := range v {
		b := bp.VarBelief(vid)
		for s := range b {
			if !almostEqual(b[s], exact[vid][s], 1e-6) {
				t.Errorf("var %d state %d: BP %v vs exact %v", vid, s, b, exact[vid])
			}
		}
	}
}

func TestLoopyCloseToExact(t *testing.T) {
	// Triangle loop with moderate potentials: LBP is approximate but
	// must land near the exact marginals.
	rng := rand.New(rand.NewSource(3))
	g := New()
	v := []int{g.AddVariable("a", 2), g.AddVariable("b", 2), g.AddVariable("c", 2)}
	rnd := func() []float64 {
		tb := make([]float64, 4)
		for i := range tb {
			tb[i] = 0.5 + rng.Float64()
		}
		return tb
	}
	tableFactor(g, "ab", []int{v[0], v[1]}, rnd())
	tableFactor(g, "bc", []int{v[1], v[2]}, rnd())
	tableFactor(g, "ca", []int{v[2], v[0]}, rnd())
	g.Finalize()

	bp := NewBP(g)
	bp.Run(RunOptions{MaxSweeps: 200, Damping: 0.3})
	exact := g.ExactMarginals()
	for _, vid := range v {
		b := bp.VarBelief(vid)
		for s := range b {
			if !almostEqual(b[s], exact[vid][s], 0.05) {
				t.Errorf("var %d: LBP %v too far from exact %v", vid, b, exact[vid])
			}
		}
	}
}

func TestClampPropagates(t *testing.T) {
	// Two variables coupled by a near-deterministic equality factor;
	// clamping one should drag the other.
	g := New()
	a := g.AddVariable("a", 2)
	b := g.AddVariable("b", 2)
	tableFactor(g, "eq", []int{a, b}, []float64{10, 0.1, 0.1, 10})
	g.Finalize()
	g.Clamp(a, 1)
	bp := NewBP(g)
	bp.Run(RunOptions{})
	bb := bp.VarBelief(b)
	if bb[1] < 0.95 {
		t.Errorf("clamp failed to propagate: belief(b) = %v", bb)
	}
	ba := bp.VarBelief(a)
	if ba[1] != 1 {
		t.Errorf("clamped var belief = %v, want delta at 1", ba)
	}
}

func TestDecode(t *testing.T) {
	g := New()
	a := g.AddVariable("a", 3)
	tableFactor(g, "f", []int{a}, []float64{1, 5, 2})
	g.Finalize()
	bp := NewBP(g)
	bp.Run(RunOptions{})
	if got := bp.Decode(); got[a] != 1 {
		t.Errorf("Decode = %v, want state 1", got)
	}
}

func TestBeliefsAreDistributions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 2 + rng.Intn(5)
		vars := make([]int, n)
		for i := range vars {
			vars[i] = g.AddVariable("v", 2+rng.Intn(3))
		}
		// Random pairwise factors.
		for k := 0; k < n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			size := g.Variable(vars[i]).Card * g.Variable(vars[j]).Card
			tb := make([]float64, size)
			for x := range tb {
				tb[x] = 0.1 + rng.Float64()
			}
			tableFactor(g, "p", []int{vars[i], vars[j]}, tb)
		}
		g.Finalize()
		bp := NewBP(g)
		bp.Run(RunOptions{MaxSweeps: 30, Damping: 0.2})
		for _, vid := range vars {
			b := bp.VarBelief(vid)
			sum := 0.0
			for _, p := range b {
				if p < 0 || math.IsNaN(p) {
					return false
				}
				sum += p
			}
			if !almostEqual(sum, 1, 1e-9) {
				return false
			}
		}
		for fid := 0; fid < g.NumFactors(); fid++ {
			fb := bp.FactorBelief(fid)
			sum := 0.0
			for _, p := range fb {
				sum += p
			}
			if !almostEqual(sum, 1, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestScheduleMatchesFlooding(t *testing.T) {
	build := func() *Graph {
		g := New()
		a := g.AddVariable("a", 2)
		b := g.AddVariable("b", 2)
		c := g.AddVariable("c", 2)
		tableFactor(g, "ab", []int{a, b}, []float64{2, 1, 1, 2})
		tableFactor(g, "bc", []int{b, c}, []float64{1, 3, 3, 1})
		g.Finalize()
		return g
	}
	g1 := build()
	bp1 := NewBP(g1)
	bp1.Run(RunOptions{MaxSweeps: 100})

	g2 := build()
	bp2 := NewBP(g2)
	sched := &Schedule{
		FactorGroups: [][]int{{1}, {0}}, // reversed order
		VarGroups:    [][]int{{2, 1, 0}},
	}
	bp2.Run(RunOptions{MaxSweeps: 100, Schedule: sched})

	for vid := 0; vid < 3; vid++ {
		x, y := bp1.VarBelief(vid), bp2.VarBelief(vid)
		for s := range x {
			if !almostEqual(x[s], y[s], 1e-6) {
				t.Errorf("var %d: flooding %v vs scheduled %v", vid, x, y)
			}
		}
	}
}

func TestExactMarginalsClamped(t *testing.T) {
	g := New()
	a := g.AddVariable("a", 2)
	b := g.AddVariable("b", 2)
	tableFactor(g, "eq", []int{a, b}, []float64{4, 1, 1, 4})
	g.Finalize()
	g.Clamp(a, 0)
	m := g.ExactMarginals()
	if m[a][0] != 1 {
		t.Errorf("clamped exact marginal = %v", m[a])
	}
	if !almostEqual(m[b][0], 0.8, 1e-12) {
		t.Errorf("conditional marginal = %v, want [0.8 0.2]", m[b])
	}
}

// TestTrainLearnsSignalWeight builds the paper's shape in miniature: a
// set of binary "canonicalization" variables, each with one feature
// factor whose feature value is a similarity score. Positive labels
// co-occur with high similarity, so training must drive the shared
// weight positive and make inference recover the labels.
func TestTrainLearnsSignalWeight(t *testing.T) {
	g := New()
	wPos := g.AddWeight("sim", 0)

	sims := []float64{0.9, 0.85, 0.8, 0.15, 0.1, 0.2}
	labels := map[int]int{}
	var vars []int
	for i, sim := range sims {
		v := g.AddVariable("x", 2)
		vars = append(vars, v)
		s := sim
		g.AddFactor("F", []int{v}, []int{wPos}, func(states []int) []float64 {
			if states[0] == 1 {
				return []float64{s}
			}
			return []float64{1 - s}
		})
		if sim > 0.5 {
			labels[v] = 1
		} else {
			labels[v] = 0
		}
		_ = i
	}
	g.Finalize()

	res := Train(g, labels, TrainOptions{LearnRate: 0.5, MaxIters: 200, Tolerance: 1e-5})
	if g.Weights()[wPos] <= 0 {
		t.Fatalf("learned weight = %v, want > 0 (result %+v)", g.Weights()[wPos], res)
	}

	bp := NewBP(g)
	bp.Run(RunOptions{})
	decoded := bp.Decode()
	for i, v := range vars {
		if decoded[v] != labels[v] {
			t.Errorf("var %d (sim %v): decoded %d, want %d", i, sims[i], decoded[v], labels[v])
		}
	}
}

func TestTrainZeroGradientAtUniform(t *testing.T) {
	// With no labels clamped differently from the prior, clamped == free
	// and the gradient is ~0: weights should not move.
	g := New()
	w := g.AddWeight("w", 0.3)
	v := g.AddVariable("x", 2)
	g.AddFactor("F", []int{v}, []int{w}, func(states []int) []float64 {
		return []float64{0.5} // constant feature: uninformative
	})
	g.Finalize()
	Train(g, map[int]int{}, TrainOptions{LearnRate: 0.5, MaxIters: 5})
	if !almostEqual(g.Weights()[w], 0.3, 1e-9) {
		t.Errorf("weight moved to %v on empty labels", g.Weights()[w])
	}
}

func TestRefreshPotentialsAfterSetWeight(t *testing.T) {
	g := New()
	w := g.AddWeight("w", 0)
	v := g.AddVariable("x", 2)
	g.AddFactor("F", []int{v}, []int{w}, func(states []int) []float64 {
		return []float64{float64(states[0])}
	})
	g.Finalize()
	bp := NewBP(g)
	bp.Run(RunOptions{})
	b0 := bp.VarBelief(v)
	if !almostEqual(b0[0], 0.5, 1e-9) {
		t.Fatalf("zero weight should give uniform, got %v", b0)
	}
	g.SetWeight(w, 3)
	g.RefreshPotentials()
	bp.Reset()
	bp.Run(RunOptions{})
	b1 := bp.VarBelief(v)
	want := math.Exp(3) / (1 + math.Exp(3))
	if !almostEqual(b1[1], want, 1e-9) {
		t.Errorf("belief = %v, want p(1) = %v", b1, want)
	}
}

func TestUnclampAll(t *testing.T) {
	g := New()
	a := g.AddVariable("a", 2)
	g.AddFactor("F", []int{a}, nil, func([]int) []float64 { return nil })
	g.Finalize()
	g.Clamp(a, 1)
	if g.Clamped(a) != 1 {
		t.Fatal("clamp not recorded")
	}
	g.UnclampAll()
	if g.Clamped(a) != -1 {
		t.Error("UnclampAll failed")
	}
}

func TestAddFactorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on feature/weight length mismatch")
		}
	}()
	g := New()
	v := g.AddVariable("x", 2)
	w := g.AddWeight("w", 0)
	g.AddFactor("bad", []int{v}, []int{w}, func([]int) []float64 {
		return []float64{1, 2} // two features, one weight
	})
}

func TestTrainWithL2ShrinksWeights(t *testing.T) {
	build := func(l2 float64) float64 {
		g := New()
		w := g.AddWeight("sim", 0)
		for i := 0; i < 4; i++ {
			v := g.AddVariable("x", 2)
			g.AddFactor("F", []int{v}, []int{w}, func(states []int) []float64 {
				if states[0] == 1 {
					return []float64{0.9}
				}
				return []float64{0.1}
			})
			g.Clamp(v, 1)
		}
		g.Finalize()
		labels := map[int]int{0: 1, 1: 1, 2: 1, 3: 1}
		Train(g, labels, TrainOptions{LearnRate: 0.5, MaxIters: 60, L2: l2})
		return g.Weights()[w]
	}
	free := build(0)
	ridge := build(0.5)
	if !(free > 0 && ridge > 0) {
		t.Fatalf("weights should be positive: free=%v ridge=%v", free, ridge)
	}
	if ridge >= free {
		t.Errorf("L2 should shrink the weight: free=%v ridge=%v", free, ridge)
	}
}

func TestTrainResultConvergence(t *testing.T) {
	g := New()
	w := g.AddWeight("w", 0)
	v := g.AddVariable("x", 2)
	g.AddFactor("F", []int{v}, []int{w}, func(states []int) []float64 {
		return []float64{float64(states[0])}
	})
	g.Finalize()
	// Label matches the prior at weight 0 -> gradient small from the
	// start; training should converge quickly and report it.
	res := Train(g, map[int]int{}, TrainOptions{MaxIters: 5})
	if !res.Converged {
		t.Errorf("empty-label training should converge immediately: %+v", res)
	}
}

func TestBPSweepsReported(t *testing.T) {
	g := New()
	a := g.AddVariable("a", 2)
	tableFactor(g, "f", []int{a}, []float64{1, 2})
	g.Finalize()
	bp := NewBP(g)
	bp.Run(RunOptions{MaxSweeps: 7})
	if bp.Sweeps() == 0 || bp.Sweeps() > 7 {
		t.Errorf("Sweeps = %d", bp.Sweeps())
	}
}

func TestVariableAccessors(t *testing.T) {
	g := New()
	a := g.AddVariable("alpha", 3)
	w := g.AddWeight("wt", 1.5)
	f := g.AddFactor("fac", []int{a}, []int{w}, func([]int) []float64 { return []float64{0} })
	g.Finalize()
	if g.Variable(a).Card != 3 || g.Variable(a).ID() != a {
		t.Error("variable accessors wrong")
	}
	if g.Factor(f).Name != "fac" || g.Factor(f).ID() != f {
		t.Error("factor accessors wrong")
	}
	if g.Factor(f).NumAssignments() != 3 {
		t.Errorf("NumAssignments = %d", g.Factor(f).NumAssignments())
	}
	if g.WeightName(w) != "wt" || g.Weights()[w] != 1.5 {
		t.Error("weight accessors wrong")
	}
	if got := g.Variable(a).Factors(); len(got) != 1 || got[0] != f {
		t.Errorf("Factors() = %v", got)
	}
}
