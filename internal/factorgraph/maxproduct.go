package factorgraph

import "math"

// MaxProduct runs loopy max-product (belief revision) message passing
// and returns the approximate MAP assignment. Where sum-product
// marginals answer "how probable is each state", max-product answers
// "which joint assignment is most probable" — on tree graphs it is
// exact (Viterbi), on loopy graphs a strong local optimum. JOCL's
// decoding uses max-marginals from sum-product (as the paper
// describes); MaxProduct is provided for callers that want a single
// coherent joint assignment, e.g. when downstream consumers cannot
// tolerate marginally-inconsistent decisions.
type MaxProduct struct {
	g     *Graph
	msgFV [][][]float64
	msgVF [][][]float64
}

// NewMaxProduct allocates max-product state for a finalized graph.
func NewMaxProduct(g *Graph) *MaxProduct {
	if !g.finalized {
		panic("factorgraph: NewMaxProduct before Finalize")
	}
	mp := &MaxProduct{g: g}
	mp.msgFV = make([][][]float64, len(g.factors))
	mp.msgVF = make([][][]float64, len(g.factors))
	for fi, f := range g.factors {
		mp.msgFV[fi] = make([][]float64, len(f.Vars))
		mp.msgVF[fi] = make([][]float64, len(f.Vars))
		for i, vid := range f.Vars {
			card := g.vars[vid].Card
			mp.msgFV[fi][i] = uniform(card)
			mp.msgVF[fi][i] = uniform(card)
		}
	}
	mp.resetClamps()
	return mp
}

func uniform(card int) []float64 {
	m := make([]float64, card)
	for i := range m {
		m[i] = 1.0 / float64(card)
	}
	return m
}

func (mp *MaxProduct) resetClamps() {
	for fi, f := range mp.g.factors {
		for i, vid := range f.Vars {
			v := mp.g.vars[vid]
			if v.clamp >= 0 {
				msg := mp.msgVF[fi][i]
				for s := range msg {
					msg[s] = 0
				}
				msg[v.clamp] = 1
			}
		}
	}
}

// Run iterates max-product sweeps and returns the decoded assignment.
func (mp *MaxProduct) Run(opt RunOptions) []int {
	opt.defaults()
	g := mp.g
	prev := make([]int, len(g.vars))
	for i := range prev {
		prev[i] = -1
	}
	for sweep := 0; sweep < opt.MaxSweeps; sweep++ {
		// Factor -> variable: maximize over the other variables.
		for fi, f := range g.factors {
			n := len(f.Vars)
			states := make([]int, n)
			for i := range f.Vars {
				out := make([]float64, f.cards[i])
				for a := range f.pot {
					f.assignment(a, states)
					p := f.pot[a]
					for j := 0; j < n; j++ {
						if j == i {
							continue
						}
						p *= mp.msgVF[fi][j][states[j]]
					}
					if p > out[states[i]] {
						out[states[i]] = p
					}
				}
				normalize(out)
				if opt.Damping > 0 {
					old := mp.msgFV[fi][i]
					for s := range out {
						out[s] = opt.Damping*old[s] + (1-opt.Damping)*out[s]
					}
					normalize(out)
				}
				copy(mp.msgFV[fi][i], out)
			}
		}
		// Variable -> factor.
		for _, v := range g.vars {
			for ai, fid := range v.factors {
				msg := mp.msgVF[fid][v.pos[ai]]
				if v.clamp >= 0 {
					for s := range msg {
						msg[s] = 0
					}
					msg[v.clamp] = 1
					continue
				}
				for s := 0; s < v.Card; s++ {
					p := 1.0
					for aj, ofid := range v.factors {
						if ofid == fid {
							continue
						}
						p *= mp.msgFV[ofid][v.pos[aj]][s]
					}
					msg[s] = p
				}
				normalize(msg)
			}
		}
		decoded := mp.Decode()
		if equalInts(decoded, prev) {
			return decoded
		}
		prev = decoded
	}
	return prev
}

// Decode returns the current max-belief state of every variable.
func (mp *MaxProduct) Decode() []int {
	out := make([]int, len(mp.g.vars))
	for _, v := range mp.g.vars {
		if v.clamp >= 0 {
			out[v.id] = v.clamp
			continue
		}
		best, arg := -1.0, 0
		for s := 0; s < v.Card; s++ {
			p := 1.0
			for ai, fid := range v.factors {
				p *= mp.msgFV[fid][v.pos[ai]][s]
			}
			if p > best {
				best, arg = p, s
			}
		}
		out[v.id] = arg
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ExactMAP computes the exact MAP assignment by brute-force
// enumeration (a test oracle; exponential in the number of variables).
func (g *Graph) ExactMAP() ([]int, float64) {
	states := make([]int, len(g.vars))
	best := make([]int, len(g.vars))
	bestScore := math.Inf(-1)
	scratch := make([]int, 8)
	deepest := make([][]int, len(g.vars))
	for _, f := range g.factors {
		d := 0
		for _, vid := range f.Vars {
			if vid > d {
				d = vid
			}
		}
		deepest[d] = append(deepest[d], f.id)
	}
	var rec func(i int, logp float64)
	rec = func(i int, logp float64) {
		if i == len(g.vars) {
			if logp > bestScore {
				bestScore = logp
				copy(best, states)
			}
			return
		}
		v := g.vars[i]
		lo, hi := 0, v.Card
		if v.clamp >= 0 {
			lo, hi = v.clamp, v.clamp+1
		}
		for s := lo; s < hi; s++ {
			states[i] = s
			q := logp
			for _, fid := range deepest[i] {
				f := g.factors[fid]
				if len(f.Vars) > len(scratch) {
					scratch = make([]int, len(f.Vars))
				}
				for k, vid := range f.Vars {
					scratch[k] = states[vid]
				}
				q += math.Log(f.pot[f.index(scratch[:len(f.Vars)])] + 1e-300)
			}
			rec(i+1, q)
		}
	}
	rec(0, 0)
	return best, bestScore
}
