// Package trace is the request-scoped span tracer of the serving
// stack: where internal/telemetry's TraceBuilder records the stage
// breakdown of one *session ingest*, this package follows one
// *submission* — from the HTTP request (or IngestContext call) that
// carried it, through the ingress queue, into the merged group the
// coalescing preparer sealed it into, down to commit and publication.
//
// The model is a deliberately small subset of W3C Trace Context /
// OpenTelemetry, with zero dependencies:
//
//   - A SpanContext is a (trace id, span id) pair. Incoming requests
//     may carry one as a `traceparent` header (ParseTraceparent);
//     requests without one get a fresh id (NewSpanContext). The ids
//     ride a context.Context via ContextWith/FromContext.
//   - A Tracer starts request traces (one per submission) and group
//     traces (one per merged session ingest). Spans nest via
//     StartChild, carry terminal statuses (ok, error, shed, cancelled,
//     poisoned), and may Link to another trace's SpanContext — the
//     edge that makes cost attribution across coalescing explicit:
//     each member submission's root span links to the shared group
//     trace whose Prepare/Commit actually carried it.
//   - Finished traces land in two bounded newest-first stores. Group
//     traces are always retained; request traces are *tail-sampled* —
//     kept only when the request was slow (Config.SlowThreshold) or
//     ended abnormally — so the store holds exactly the traces worth
//     debugging. jocl-serve serves both at GET /debug/requests.
//
// Every method on Tracer and Span is nil-receiver-safe: with tracing
// disabled the serving layers hold nil pointers and every call
// degrades to a no-op, keeping the hot path free of conditionals.
package trace
