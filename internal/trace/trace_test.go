package trace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestParseTraceparent(t *testing.T) {
	sc := NewSpanContext()
	h := sc.Traceparent()
	got, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("round-trip parse failed for %q", h)
	}
	if got != sc {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, sc)
	}

	bad := []string{
		"",
		"00-" + sc.TraceID.String() + "-" + sc.SpanID.String(),          // missing flags
		"01-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01",  // unknown version
		"00-" + strings.Repeat("0", 32) + "-" + sc.SpanID.String() + "-01", // zero trace id
		"00-" + sc.TraceID.String() + "-" + strings.Repeat("0", 16) + "-01", // zero span id
		"00-" + strings.Repeat("g", 32) + "-" + sc.SpanID.String() + "-01",  // non-hex
		h + "0", // wrong length
	}
	for _, b := range bad {
		if _, ok := ParseTraceparent(b); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", b)
		}
	}
}

func TestParseTraceID(t *testing.T) {
	sc := NewSpanContext()
	id, ok := ParseTraceID(sc.TraceID.String())
	if !ok || id != sc.TraceID {
		t.Fatalf("round trip failed: %v %v", id, ok)
	}
	for _, b := range []string{"", "abc", strings.Repeat("0", 32), strings.Repeat("x", 32)} {
		if _, ok := ParseTraceID(b); ok {
			t.Errorf("ParseTraceID(%q) accepted malformed input", b)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	sc := NewSpanContext()
	ctx := ContextWith(context.Background(), sc)
	if got := FromContext(ctx); got != sc {
		t.Fatalf("FromContext = %+v, want %+v", got, sc)
	}
	if got := FromContext(context.Background()); got.Valid() {
		t.Fatalf("empty context yielded valid span context %+v", got)
	}
	if ctx2 := ContextWith(context.Background(), SpanContext{}); FromContext(ctx2).Valid() {
		t.Fatal("invalid span context was attached")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRequest("x", SpanContext{})
	if sp != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	// All of these must be no-ops, not panics.
	sp.SetAttr("k", "v")
	sp.Link(NewSpanContext())
	sp.AddSpan("stage", time.Now(), time.Millisecond)
	child := sp.StartChild("c")
	child.End()
	sp.EndStatus(StatusError, "boom")
	if sp.Context().Valid() {
		t.Fatal("nil span has valid context")
	}
	if got := tr.Recent(10); got != nil {
		t.Fatal("nil tracer returned traces")
	}
	if _, ok := tr.Get(TraceID{1}); ok {
		t.Fatal("nil tracer found a trace")
	}
	if tr.SlowThreshold() != 0 {
		t.Fatal("nil tracer has a threshold")
	}
}

func TestRequestTraceLifecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(Config{SlowThreshold: -1, Capacity: 8}, reg)

	parent := NewSpanContext()
	root := tr.StartRequest("ingest", parent)
	if root.Context().TraceID != parent.TraceID {
		t.Fatalf("request did not adopt parent trace id")
	}
	root.SetAttr("batch", "3")
	enq := root.StartChild("enqueue")
	if enq.Context().TraceID != parent.TraceID {
		t.Fatal("child changed trace id")
	}
	time.Sleep(time.Millisecond)
	enq.End()
	link := NewSpanContext()
	root.Link(link)
	root.End()

	fin, ok := tr.Get(parent.TraceID)
	if !ok {
		t.Fatal("finished trace not retained under SlowThreshold<0")
	}
	if fin.Kind != "request" || fin.Status != StatusOK || fin.SampledFor != "all" {
		t.Fatalf("unexpected finished trace: %+v", fin)
	}
	if len(fin.Spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(fin.Spans))
	}
	// Sorted by start: root first.
	rootRec := fin.Spans[0]
	if rootRec.Name != "ingest" || rootRec.Parent != parent.SpanID {
		t.Fatalf("root record wrong: %+v", rootRec)
	}
	if len(rootRec.Links) != 1 || rootRec.Links[0] != link {
		t.Fatalf("link not recorded: %+v", rootRec.Links)
	}
	if rootRec.Attrs["batch"] != "3" {
		t.Fatalf("attr not recorded: %+v", rootRec.Attrs)
	}
	if fin.Spans[1].Parent != rootRec.ID {
		t.Fatalf("child parented wrong: %+v", fin.Spans[1])
	}

	// Double End is idempotent.
	root.End()
	if got := len(tr.Recent(0)); got != 1 {
		t.Fatalf("double End duplicated trace: %d retained", got)
	}
}

func TestTailSampling(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(Config{SlowThreshold: time.Hour, Capacity: 8}, reg)

	fast := tr.StartRequest("ingest", SpanContext{})
	fastID := fast.Context().TraceID
	fast.End()
	if _, ok := tr.Get(fastID); ok {
		t.Fatal("fast ok request was retained")
	}

	shed := tr.StartRequest("ingest", SpanContext{})
	shedID := shed.Context().TraceID
	shed.EndStatus(StatusShed, "queue full")
	fin, ok := tr.Get(shedID)
	if !ok || fin.Status != StatusShed || fin.SampledFor != "shed" {
		t.Fatalf("shed request not retained correctly: %+v ok=%v", fin, ok)
	}

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"jocl_trace_requests_total 2",
		`jocl_trace_sampled_total{reason="shed"} 1`,
		"jocl_trace_active 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestGroupTracesAlwaysRetained(t *testing.T) {
	tr := New(Config{SlowThreshold: time.Hour}, nil)
	g := tr.StartGroup("ingest-group")
	gid := g.Context().TraceID
	g.AddSpan("bp", time.Now(), 2*time.Millisecond)
	g.End()
	fin, ok := tr.Get(gid)
	if !ok || fin.Kind != "group" || fin.SampledFor != "group" {
		t.Fatalf("group trace not retained: %+v ok=%v", fin, ok)
	}
	if len(fin.Spans) != 2 {
		t.Fatalf("want root+stage spans, got %d", len(fin.Spans))
	}
	if len(tr.RecentGroups(0)) != 1 || len(tr.Recent(0)) != 0 {
		t.Fatal("group landed in the wrong store")
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(Config{SlowThreshold: -1, Capacity: 3}, nil)
	var ids []TraceID
	for i := 0; i < 5; i++ {
		sp := tr.StartRequest("ingest", SpanContext{})
		ids = append(ids, sp.Context().TraceID)
		sp.End()
	}
	got := tr.Recent(0)
	if len(got) != 3 {
		t.Fatalf("capacity not enforced: %d", len(got))
	}
	// Newest first.
	for i := 0; i < 3; i++ {
		if got[i].TraceID != ids[4-i] {
			t.Fatalf("order wrong at %d: %v", i, got[i].TraceID)
		}
	}
	if _, ok := tr.Get(ids[0]); ok {
		t.Fatal("evicted trace still retrievable")
	}
}

func TestFinishedJSON(t *testing.T) {
	tr := New(Config{SlowThreshold: -1}, nil)
	sp := tr.StartRequest("ingest", SpanContext{})
	sp.Link(NewSpanContext())
	sp.End()
	fin := tr.Recent(1)[0]
	raw, err := json.Marshal(fin)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"trace_id", "kind", "status", "begin", "total_ms", "spans"} {
		if _, ok := m[k]; !ok {
			t.Errorf("JSON missing %q: %s", k, raw)
		}
	}
	spans := m["spans"].([]any)
	span0 := spans[0].(map[string]any)
	if _, ok := span0["links"]; !ok {
		t.Errorf("span JSON missing links: %s", raw)
	}
	if _, ok := span0["parent_id"]; ok {
		t.Errorf("root span should omit zero parent_id: %s", raw)
	}
}

func TestConcurrentTraces(t *testing.T) {
	tr := New(Config{SlowThreshold: -1, Capacity: 256}, telemetry.NewRegistry())
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				sp := tr.StartRequest("ingest", SpanContext{})
				c := sp.StartChild("enqueue")
				c.End()
				sp.Link(NewSpanContext())
				sp.End()
			}
		}()
	}
	wg.Wait()
	got := tr.Recent(0)
	if len(got) != 256 {
		t.Fatalf("retained %d, want full ring 256", len(got))
	}
	for _, f := range got {
		if len(f.Spans) != 2 {
			t.Fatalf("incomplete tree: %+v", f)
		}
	}
}
