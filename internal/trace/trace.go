package trace

import (
	"encoding/json"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Config tunes a Tracer. The zero value is usable; Enable exists for
// the embedding layers (stream.Config, jocl options) that treat
// tracing as optional — the trace package itself ignores it.
type Config struct {
	// Enable switches request tracing on in the embedding layers.
	// Sessions with telemetry enable it by default.
	Enable bool
	// SlowThreshold is the tail-sampling latency bar: a request trace
	// is retained when its end-to-end duration reaches it, or when the
	// request ended abnormally (shed, cancelled, poisoned, error).
	// 0 takes the default (1s); a negative value retains every request
	// trace, which is what tests and low-traffic debugging want.
	SlowThreshold time.Duration
	// Capacity bounds each of the two finished-trace stores (request
	// and group), default 128. Oldest entries are evicted first.
	Capacity int
}

// DefaultSlowThreshold is the tail-sampling latency bar when
// Config.SlowThreshold is zero.
const DefaultSlowThreshold = time.Second

func (c Config) withDefaults() Config {
	if c.SlowThreshold == 0 {
		c.SlowThreshold = DefaultSlowThreshold
	}
	if c.Capacity <= 0 {
		c.Capacity = 128
	}
	return c
}

// Status is a span's (and thereby a trace's) terminal state.
type Status string

// The span terminal states. Everything except StatusOK marks a request
// worth retaining in the tail-sample store.
const (
	// StatusOK is a span that completed normally.
	StatusOK Status = "ok"
	// StatusError is a span that ended in an error outside the more
	// specific states below.
	StatusError Status = "error"
	// StatusShed marks a submission refused past the ingress
	// high-water mark.
	StatusShed Status = "shed"
	// StatusCancelled marks a submission withdrawn by context
	// cancellation while still queued.
	StatusCancelled Status = "cancelled"
	// StatusPoisoned marks a submission whose batch was rejected by
	// Prepare (alone, or isolated out of a merged group by the split
	// retry).
	StatusPoisoned Status = "poisoned"
	// StatusActive appears only in flight-recorder snapshots
	// (Tracer.Active): the trace had not finished when it was captured.
	StatusActive Status = "active"
)

// SpanRecord is one finished span inside a Finished trace. Start is
// the offset from the trace's begin time.
type SpanRecord struct {
	// Name is the span's stage name (e.g. "enqueue", "prepare", "bp").
	Name string
	// ID is the span's id; Parent is the parent span's id (zero for
	// the trace root).
	ID     SpanID
	Parent SpanID
	// Start is the span's offset from the trace begin; Duration its
	// wall clock.
	Start    time.Duration
	Duration time.Duration
	// Status is the span's terminal state and Note an optional human
	// detail (typically the error message).
	Status Status
	Note   string
	// Links point at spans in *other* traces — a member submission's
	// root links to the merged-group trace that carried it.
	Links []SpanContext
	// Attrs are optional small key/value annotations (batch sizes,
	// coalesce counts).
	Attrs map[string]string
}

// MarshalJSON renders offsets and durations as millisecond floats, the
// unit every other jocl artifact reports in.
func (s SpanRecord) MarshalJSON() ([]byte, error) {
	out := struct {
		Name    string            `json:"name"`
		ID      string            `json:"span_id"`
		Parent  string            `json:"parent_id,omitempty"`
		StartMS float64           `json:"start_ms"`
		MS      float64           `json:"ms"`
		Status  Status            `json:"status"`
		Note    string            `json:"note,omitempty"`
		Links   []SpanContext     `json:"links,omitempty"`
		Attrs   map[string]string `json:"attrs,omitempty"`
	}{
		Name: s.Name, ID: s.ID.String(),
		StartMS: durMS(s.Start), MS: durMS(s.Duration),
		Status: s.Status, Note: s.Note, Links: s.Links, Attrs: s.Attrs,
	}
	if s.Parent.IsValid() {
		out.Parent = s.Parent.String()
	}
	return json.Marshal(out)
}

// Finished is one completed trace: the root's identity and terminal
// state plus every recorded span, sorted by start offset.
type Finished struct {
	// TraceID identifies the trace; Kind is "request" (one submission)
	// or "group" (one merged session ingest).
	TraceID TraceID
	Kind    string
	// Status is the root span's terminal state; SampledFor is why the
	// tail sampler kept a request trace ("slow", "error", "shed",
	// "cancelled", "poisoned", or "all" under a negative threshold).
	// Group traces are always retained and report "group".
	Status     Status
	SampledFor string
	// Begin is the trace's wall-clock start; Duration the root span's
	// end-to-end wall clock.
	Begin    time.Time
	Duration time.Duration
	// Spans are the recorded spans, sorted by start offset; the root
	// span has a zero Parent.
	Spans []SpanRecord
}

// MarshalJSON renders the total as a millisecond float next to the
// spans.
func (f Finished) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		TraceID    string       `json:"trace_id"`
		Kind       string       `json:"kind"`
		Status     Status       `json:"status"`
		SampledFor string       `json:"sampled_for,omitempty"`
		Begin      time.Time    `json:"begin"`
		TotalMS    float64      `json:"total_ms"`
		Spans      []SpanRecord `json:"spans"`
	}{f.TraceID.String(), f.Kind, f.Status, f.SampledFor, f.Begin, durMS(f.Duration), f.Spans})
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// state is one in-flight trace's accumulator.
type state struct {
	id    TraceID
	kind  string
	begin time.Time
	spans []SpanRecord
}

// Span is one live span. A Span is owned by the goroutine that drives
// its stage; the happens-before edges of the ingress pipeline (channel
// handoffs) order the cross-goroutine uses. All methods are safe on a
// nil receiver — a disabled tracer hands out nil spans and every call
// degrades to a no-op.
type Span struct {
	tr     *Tracer
	st     *state
	name   string
	sc     SpanContext
	parent SpanID
	start  time.Time
	root   bool

	links []SpanContext
	attrs map[string]string
	ended bool
}

// Context returns the span's wire identity (zero on a nil span).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// StartChild opens a child span under s. On a nil span it returns nil.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tr: s.tr, st: s.st, name: name,
		sc:     SpanContext{TraceID: s.sc.TraceID, SpanID: newSpanID()},
		parent: s.sc.SpanID,
		start:  time.Now(),
	}
}

// Link attaches a cross-trace edge: sc identifies a span in another
// trace (the merged-group trace a member submission was carried by).
// Invalid contexts and nil spans are ignored.
func (s *Span) Link(sc SpanContext) {
	if s == nil || !sc.Valid() {
		return
	}
	s.links = append(s.links, sc)
}

// SetAttr annotates the span with a small key/value pair.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[k] = v
}

// AddSpan records an already-measured child stage at an explicit wall
// clock start — how the session's TraceBuilder stage spans are
// replayed into the group trace at commit time.
func (s *Span) AddSpan(name string, start time.Time, d time.Duration) {
	if s == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	rec := SpanRecord{
		Name: name, ID: newSpanID(), Parent: s.sc.SpanID,
		Start: start.Sub(s.st.begin), Duration: d, Status: StatusOK,
	}
	s.tr.record(s.st, rec, false, StatusOK)
}

// End seals the span with StatusOK. Ending the trace's root span
// finishes the trace (and, for request traces, runs the tail sampler).
func (s *Span) End() { s.EndStatus(StatusOK, "") }

// EndStatus seals the span with an explicit terminal state and an
// optional note. Double ends are ignored.
func (s *Span) EndStatus(status Status, note string) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	rec := SpanRecord{
		Name: s.name, ID: s.sc.SpanID, Parent: s.parent,
		Start: s.start.Sub(s.st.begin), Duration: time.Since(s.start),
		Status: status, Note: note, Links: s.links, Attrs: s.attrs,
	}
	s.tr.record(s.st, rec, s.root, status)
}

// Tracer owns the in-flight trace states and the two bounded
// finished-trace stores. All methods are safe for concurrent use and
// on a nil receiver (every call is then a no-op).
type Tracer struct {
	cfg Config

	mu       sync.Mutex
	active   map[*state]struct{}
	requests *ring
	groups   *ring

	reqTotal   *telemetry.Counter
	groupTotal *telemetry.Counter
	spanTotal  *telemetry.Counter
	sampled    *telemetry.CounterVec
}

// New builds a Tracer and registers its jocl_trace_* metric families
// on r (skipped when r is nil).
func New(cfg Config, r *telemetry.Registry) *Tracer {
	cfg = cfg.withDefaults()
	t := &Tracer{
		cfg:      cfg,
		active:   map[*state]struct{}{},
		requests: newRing(cfg.Capacity),
		groups:   newRing(cfg.Capacity),
	}
	if r != nil {
		t.reqTotal = r.Counter("jocl_trace_requests_total",
			"Request traces finished (sampled or not).")
		t.groupTotal = r.Counter("jocl_trace_groups_total",
			"Merged-group traces finished (always retained).")
		t.spanTotal = r.Counter("jocl_trace_spans_total",
			"Spans recorded across all traces.")
		t.sampled = r.CounterVec("jocl_trace_sampled_total",
			"Request traces retained by the tail sampler, by reason.", "reason")
		r.GaugeFunc("jocl_trace_active",
			"Traces started but not yet finished.",
			func() float64 {
				t.mu.Lock()
				defer t.mu.Unlock()
				return float64(len(t.active))
			})
	}
	return t
}

// SlowThreshold reports the tail-sampling latency bar in effect
// (negative = every request trace is retained; 0 on a nil tracer).
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.cfg.SlowThreshold
}

// StartRequest opens a request trace for one submission. A valid
// parent (from an incoming traceparent header) pins the trace id and
// becomes the root span's parent; otherwise a fresh trace id is
// drawn. Nil tracers return nil spans.
func (t *Tracer) StartRequest(name string, parent SpanContext) *Span {
	return t.start(name, "request", parent)
}

// StartGroup opens a group trace for one merged session ingest — the
// shared trace every member submission links to.
func (t *Tracer) StartGroup(name string) *Span {
	return t.start(name, "group", SpanContext{})
}

func (t *Tracer) start(name, kind string, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	tid := parent.TraceID
	if !tid.IsValid() {
		tid = newTraceID()
	}
	st := &state{id: tid, kind: kind, begin: time.Now()}
	t.mu.Lock()
	t.active[st] = struct{}{}
	t.mu.Unlock()
	return &Span{
		tr: t, st: st, name: name,
		sc:     SpanContext{TraceID: tid, SpanID: newSpanID()},
		parent: parent.SpanID,
		start:  st.begin,
		root:   true,
	}
}

// record stores one finished span, and — when it was the trace root —
// finishes the trace.
func (t *Tracer) record(st *state, rec SpanRecord, root bool, status Status) {
	t.mu.Lock()
	st.spans = append(st.spans, rec)
	if t.spanTotal != nil {
		t.spanTotal.Inc()
	}
	if !root {
		t.mu.Unlock()
		return
	}
	delete(t.active, st)
	spans := st.spans
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	fin := Finished{
		TraceID: st.id, Kind: st.kind, Status: status,
		Begin: st.begin, Duration: rec.Duration, Spans: spans,
	}
	if st.kind == "group" {
		fin.SampledFor = "group"
		t.groups.push(fin)
		if t.groupTotal != nil {
			t.groupTotal.Inc()
		}
		t.mu.Unlock()
		return
	}
	if t.reqTotal != nil {
		t.reqTotal.Inc()
	}
	reason := ""
	switch {
	case status != StatusOK:
		reason = string(status)
	case t.cfg.SlowThreshold < 0:
		reason = "all"
	case rec.Duration >= t.cfg.SlowThreshold:
		reason = "slow"
	}
	if reason != "" {
		fin.SampledFor = reason
		t.requests.push(fin)
		if t.sampled != nil {
			t.sampled.With(reason).Inc()
		}
	}
	t.mu.Unlock()
}

// Active snapshots every in-flight trace (StatusActive, Duration =
// elapsed so far, spans recorded so far), newest first — the
// flight-recorder view of what a stalled pipeline was in the middle
// of. Nil on a nil tracer.
func (t *Tracer) Active() []Finished {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Finished, 0, len(t.active))
	for st := range t.active {
		spans := append([]SpanRecord(nil), st.spans...)
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		out = append(out, Finished{
			TraceID: st.id, Kind: st.kind, Status: StatusActive,
			Begin: st.begin, Duration: time.Since(st.begin), Spans: spans,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Begin.After(out[j].Begin) })
	return out
}

// Recent returns up to n retained request traces, newest first
// (n <= 0 means all retained; nil on a nil tracer).
func (t *Tracer) Recent(n int) []Finished {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.requests.last(n)
}

// RecentGroups returns up to n retained group traces, newest first.
func (t *Tracer) RecentGroups(n int) []Finished {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.groups.last(n)
}

// Get looks a retained trace up by id, searching requests then groups.
func (t *Tracer) Get(id TraceID) (Finished, bool) {
	if t == nil {
		return Finished{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if f, ok := t.requests.get(id); ok {
		return f, true
	}
	return t.groups.get(id)
}

// ring is a bounded newest-first store of finished traces. It is
// guarded by the owning Tracer's mutex.
type ring struct {
	buf  []Finished
	next int
	full bool
}

func newRing(n int) *ring {
	if n < 1 {
		n = 1
	}
	return &ring{buf: make([]Finished, n)}
}

func (r *ring) push(f Finished) {
	r.buf[r.next] = f
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

func (r *ring) size() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

func (r *ring) last(n int) []Finished {
	size := r.size()
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Finished, 0, n)
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + 2*len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

func (r *ring) get(id TraceID) (Finished, bool) {
	size := r.size()
	for i := 0; i < size; i++ {
		idx := (r.next - 1 - i + 2*len(r.buf)) % len(r.buf)
		if r.buf[idx].TraceID == id {
			return r.buf[idx], true
		}
	}
	return Finished{}, false
}
