package trace

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"math/rand/v2"
)

// TraceID identifies one request or merged-group trace: 16 bytes,
// rendered as 32 lowercase hex characters on the wire (the W3C
// trace-id). The all-zero value is invalid.
type TraceID [16]byte

// String renders the id as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsValid reports whether the id is non-zero (the W3C invalid value is
// all zeroes).
func (t TraceID) IsValid() bool { return t != TraceID{} }

// SpanID identifies one span within a trace: 8 bytes, 16 hex
// characters on the wire. The all-zero value is invalid.
type SpanID [8]byte

// String renders the id as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsValid reports whether the id is non-zero.
func (s SpanID) IsValid() bool { return s != SpanID{} }

// SpanContext is the wire identity of one span: the trace it belongs
// to and its own span id. It is what crosses layer boundaries — the
// traceparent header, the context.Context, a span Link.
type SpanContext struct {
	// TraceID is the trace the span belongs to.
	TraceID TraceID
	// SpanID is the span's own id within the trace.
	SpanID SpanID
}

// Valid reports whether both ids are non-zero.
func (sc SpanContext) Valid() bool { return sc.TraceID.IsValid() && sc.SpanID.IsValid() }

// Traceparent renders the context as a W3C traceparent header value
// (version 00, sampled flag set): "00-<trace id>-<span id>-01".
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01"
}

// MarshalJSON renders the context as {"trace_id": hex, "span_id": hex}.
func (sc SpanContext) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		TraceID string `json:"trace_id"`
		SpanID  string `json:"span_id"`
	}{sc.TraceID.String(), sc.SpanID.String()})
}

// ParseTraceparent parses a W3C traceparent header value,
// "<2 hex version>-<32 hex trace id>-<16 hex span id>-<2 hex flags>".
// ok is false for a malformed value, an unknown version, or all-zero
// ids — callers then synthesize a fresh context instead.
func ParseTraceparent(h string) (SpanContext, bool) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	if h[0] != '0' || h[1] != '0' { // only version 00 is understood
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], []byte(h[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(h[36:52])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(make([]byte, 1), []byte(h[53:55])); err != nil {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// ParseTraceID parses a 32-hex-character trace id (the form /debug
// endpoints accept for lookups). ok is false for malformed or all-zero
// input.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return TraceID{}, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return t, t.IsValid()
}

// NewSpanContext returns a fresh random span context — what a serving
// layer synthesizes when a request arrives without a traceparent
// header. Ids come from math/rand/v2 (concurrency-safe, not
// cryptographic): trace ids need uniqueness, not unpredictability.
func NewSpanContext() SpanContext {
	return SpanContext{TraceID: newTraceID(), SpanID: newSpanID()}
}

func newTraceID() TraceID {
	var t TraceID
	for !t.IsValid() {
		binary.BigEndian.PutUint64(t[:8], rand.Uint64())
		binary.BigEndian.PutUint64(t[8:], rand.Uint64())
	}
	return t
}

func newSpanID() SpanID {
	var s SpanID
	for !s.IsValid() {
		binary.BigEndian.PutUint64(s[:], rand.Uint64())
	}
	return s
}

// ctxKey keys the SpanContext a request carries through its
// context.Context.
type ctxKey struct{}

// ContextWith returns a context carrying sc, for FromContext to
// recover at a lower layer. An invalid sc returns ctx unchanged.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext returns the SpanContext carried by ctx, or the zero
// (invalid) context when none is attached.
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}
