// Package core implements JOCL, the paper's contribution: a factor
// graph that jointly solves OKB canonicalization and OKB linking and
// makes the two tasks reinforce each other (Section 3).
//
// The graph contains, per blocked pair of noun (relation) phrases, a
// binary canonicalization variable — the paper's x_ij (y_ij, z_ij) —
// scored by the exponential-linear canonicalization factors F1 (F2,
// F3); per distinct noun (relation) phrase, a linking variable over
// its CKB candidates plus a NIL state — the paper's e_si (r_pi, e_oi) —
// scored by the linking factors F4 (F5, F6); transitive-relation
// factors U1–U3 over triangles of canonicalization variables; fact-
// inclusion factors U4 over the three linking variables of each OIE
// triple; and consistency factors U5–U7 coupling each canonicalization
// variable with its pair of linking variables, which is where the two
// tasks interact.
//
// One deliberate simplification relative to the paper's notation: the
// paper distinguishes subject-position from object-position NP
// variables (x_ij vs z_ij, F1 vs F3, U1 vs U3, U5 vs U7) although both
// use identical signal sets. This implementation canonicalizes and
// links at the level of distinct NP surface forms, so each NP pair has
// one variable regardless of the slots it occupies; F1/F3 (and U1/U3,
// U5/U7) collapse into one parameter vector. docs/ARCHITECTURE.md
// records this substitution; Table-5-style feature ablations are
// unaffected.
//
// # Layout
//
//   - config.go — Config, FeatureSet, SegmentConfig, and the paper's
//     default hyperparameters (DefaultConfig)
//   - system.go — System: graph construction from signal resources
//   - infer.go — batch Run: weight learning, inference, decoding,
//     conflict resolution
//   - incremental.go — the streaming hooks: SimCache (memoized signal
//     evaluation across rebuilds) and RunIncremental (dirty-block
//     inference over a persistent, repairable partition, warm-started
//     from the previous build's WarmState)
//
// Batch pipelines call System.Run once; serving sessions
// (internal/stream) rebuild the System per ingested batch and call
// RunIncremental, which re-runs belief propagation only on the
// partition blocks whose neighborhood fingerprints or boundary
// baselines changed.
package core
